/**
 * @file
 * Memory safety for C (Section 5.1): a capability-aware allocator
 * returns each allocation as a capability with exact bounds, const
 * pointers drop the store permission via CAndPerm, and revocation is
 * implemented by the OS unmapping pages under live capabilities.
 *
 * The allocator mirrors what a CHERI malloc() does: one mmap-style
 * delegation from the OS, then pure user-space capability derivation
 * per allocation — no system call per malloc (Section 4.2).
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/cap_allocator.h"
#include "os/simple_os.h"

using namespace cheri;
using namespace cheri::isa::reg;

namespace
{

/** Run a tiny guest that accesses [c1 + offset] with op (0=load,
 *  1=store) and report whether it trapped and why. */
core::RunResult
accessThrough(os::SimpleOs &kernel, const cap::Capability &capability,
              std::int32_t offset, bool store)
{
    isa::Assembler a(os::kTextBase);
    if (store)
        a.csd(t0, 1, zero, offset);
    else
        a.cld(t0, 1, zero, offset);
    a.li(v0, os::kSysExit);
    a.li(a0, 0);
    a.syscall();

    kernel.exec(a.finish());
    kernel.machine().cpu().caps().write(1, capability);
    return kernel.run();
}

const char *
outcome(const core::RunResult &result)
{
    static std::string text;
    if (result.reason == core::StopReason::kExited)
        return "allowed";
    text = "TRAP: ";
    text += cap::capCauseName(result.trap.cap_cause);
    return text.c_str();
}

} // namespace

int
main()
{
    core::Machine machine;
    os::SimpleOs kernel(machine);

    std::printf("memory_safety: capability-aware allocation "
                "(Section 5.1)\n\n");

    // The heap the OS delegates: one capability over 64 KB.
    cap::Capability heap =
        cap::Capability::make(os::kHeapBase, 64 * 1024, cap::kPermAll);
    os::CapAllocator allocator(heap);

    // malloc() returns capabilities with exact bounds.
    auto small = allocator.allocate(24);
    auto large = allocator.allocate(1000);
    std::printf("malloc(24)   -> %s\n", small->toString().c_str());
    std::printf("malloc(1000) -> %s\n", large->toString().c_str());
    std::printf("(no system call was made for either allocation)\n\n");

    // In-bounds and out-of-bounds accesses through the small object.
    // The OS must map the heap pages for the guest runs below.
    std::printf("Accessing the 24-byte object:\n");
    struct Case
    {
        const char *label;
        std::int32_t offset;
        bool store;
    };
    const Case cases[] = {
        {"load  [obj+0]  (in bounds) ", 0, false},
        {"load  [obj+16] (in bounds) ", 16, false},
        {"store [obj+16] (in bounds) ", 16, true},
        {"load  [obj+24] (overflow)  ", 24, false},
        {"store [obj+32] (overflow)  ", 32, true},
    };
    for (const Case &c : cases) {
        core::RunResult result =
            accessThrough(kernel, *small, c.offset, c.store);
        std::printf("  %s -> %s\n", c.label, outcome(result));
    }

    // const enforcement: drop the store permission (CAndPerm).
    std::printf("\nconst-qualified pointer (CAndPerm drops store):\n");
    cap::CapOpResult read_only =
        cap::andPerm(*small, cap::kPermLoad);
    core::RunResult load_result =
        accessThrough(kernel, read_only.value, 0, false);
    core::RunResult store_result =
        accessThrough(kernel, read_only.value, 0, true);
    std::printf("  load  through const pointer -> %s\n",
                outcome(load_result));
    std::printf("  store through const pointer -> %s\n",
                outcome(store_result));

    // Monotonicity: the program cannot regrow a freed/shrunk
    // capability.
    std::printf("\nMonotonicity (rights only shrink):\n");
    cap::CapOpResult grow = cap::setLen(*small, 4096);
    std::printf("  CSetLen(24 -> 4096) -> %s\n",
                grow.ok() ? "ALLOWED (bug!)"
                          : cap::capCauseName(grow.cause));

    // Revocation: the OS unmaps the heap page under a live
    // capability; the capability stays tagged but every use faults.
    std::printf("\nRevocation via page unmapping (Section 6.1):\n");
    {
        isa::Assembler a(os::kTextBase);
        a.cld(t0, 1, zero, 0);
        a.li(v0, os::kSysExit);
        a.syscall();
        int pid = kernel.exec(a.finish());
        kernel.machine().cpu().caps().write(1, *small);
        kernel.revokeRange(kernel.process(pid), os::kHeapBase, 4096);
        core::RunResult result = kernel.run();
        std::printf("  dereference after revoke -> %s\n",
                    result.reason == core::StopReason::kTrap
                        ? result.trap.toString().c_str()
                        : "allowed (bug!)");
    }

    std::printf("\nAllocator stats: %llu allocations, %llu bytes "
                "outstanding\n",
                static_cast<unsigned long long>(
                    allocator.stats().get("alloc.calls")),
                static_cast<unsigned long long>(allocator.bytesInUse()));
    return 0;
}
