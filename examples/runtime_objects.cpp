/**
 * @file
 * Managed-language runtime support (Section 5.2): the runtime
 * represents each heap object as a capability, so JIT-compiled method
 * code gets hardware-enforced object bounds "for free" — no
 * segment-table scaling limits (the iAPX-432/80286 problem), no
 * software array-bounds checks (the Java problem).
 *
 * The host side plays the runtime/JIT: it allocates objects, hands
 * object capabilities to guest "methods", and shows that a method
 * can address only its receiver.
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/cap_allocator.h"
#include "os/simple_os.h"

using namespace cheri;
using namespace cheri::isa::reg;

namespace
{

/**
 * "JIT" one method: sum the elements of an int64 array object whose
 * length the runtime placed in its first word. All bounds safety
 * comes from the object capability in c1 — the method body contains
 * no checks.
 */
std::vector<std::uint32_t>
jitSumMethod()
{
    isa::Assembler a(os::kTextBase);
    auto loop = a.newLabel();
    auto done = a.newLabel();
    a.cld(t0, 1, zero, 0); // element count
    a.li(t1, 0);           // index
    a.li(v1, 0);           // sum
    a.bind(loop);
    a.slt(t2, t1, t0);
    a.beq(t2, zero, done);
    a.nop();
    a.daddiu(t3, t1, 1);   // element i lives at offset (i+1)*8
    a.dsll(t3, t3, 3);
    a.cld(t4, 1, t3, 0);
    a.daddu(v1, v1, t4);
    a.daddiu(t1, t1, 1);
    a.b(loop);
    a.nop();
    a.bind(done);
    a.li(v0, os::kSysExit);
    a.move(a0, v1);
    a.syscall();
    return a.finish();
}

} // namespace

int
main()
{
    core::Machine machine;
    os::SimpleOs kernel(machine);

    std::printf("runtime_objects: hardware object bounds for a "
                "managed runtime (Section 5.2)\n\n");

    // The runtime's heap: delegated once, then managed in user space.
    cap::Capability heap =
        cap::Capability::make(os::kHeapBase, 64 * 1024, cap::kPermAll);
    os::CapAllocator allocator(heap);

    // Two adjacent array objects.
    auto obj_a = allocator.allocate((1 + 4) * 8); // 4 elements
    auto obj_b = allocator.allocate((1 + 3) * 8); // 3 elements

    std::vector<std::uint32_t> method = jitSumMethod();

    // Run the method on object A: header says 4, elements 10..40.
    int pid = kernel.exec(method);
    os::Process &proc = kernel.process(pid);
    kernel.mapRange(proc, os::kHeapBase, 64 * 1024);
    std::uint64_t words_a[5] = {4, 10, 20, 30, 40};
    kernel.writeMemory(proc, obj_a->base(), words_a, sizeof(words_a));
    std::uint64_t words_b[4] = {3, 7, 8, 9};
    kernel.writeMemory(proc, obj_b->base(), words_b, sizeof(words_b));

    kernel.machine().cpu().caps().write(1, *obj_a);
    core::RunResult result = kernel.run();
    std::printf("sum(objectA[4 elems]) -> %lld (expected 100), via "
                "capability %s\n",
                static_cast<long long>(result.exit_code),
                obj_a->toString().c_str());

    // A buggy (or malicious) method: the runtime wrote a corrupted
    // header claiming 100 elements. On a conventional runtime this
    // reads straight into object B and beyond; under CHERI the first
    // out-of-bounds element access traps.
    pid = kernel.exec(method);
    os::Process &proc2 = kernel.process(pid);
    kernel.mapRange(proc2, os::kHeapBase, 64 * 1024);
    std::uint64_t corrupted[5] = {100, 10, 20, 30, 40};
    kernel.writeMemory(proc2, obj_a->base(), corrupted,
                       sizeof(corrupted));
    kernel.machine().cpu().caps().write(1, *obj_a);
    result = kernel.run();
    if (result.reason == core::StopReason::kTrap) {
        std::printf("sum with corrupted length 100 -> %s\n",
                    result.trap.toString().c_str());
        std::printf("  Object B's fields were never readable: the "
                    "receiver capability ends at 0x%llx.\n",
                    static_cast<unsigned long long>(obj_a->top()));
    } else {
        std::printf("UNEXPECTED: out-of-bounds read succeeded "
                    "(sum=%lld)\n",
                    static_cast<long long>(result.exit_code));
        return 1;
    }

    std::printf("\nEvery object reference is a capability: bounds "
                "scale with the heap, not with\na segment table, and "
                "the JIT emits zero check instructions.\n");
    return 0;
}
