/**
 * @file
 * Temporal safety (Section 11): "Tags allow us to identify all
 * references, so we can provide accurate garbage collection to
 * low-level languages such as C. Possibilities include a non-reuse
 * allocator ... that periodically runs a tracing pass to identify
 * reusable address space."
 *
 * This example runs that exact design: a non-reuse allocator
 * quarantines freed blocks; the tag-accurate sweeper proves when a
 * quarantined block has no remaining references (anywhere — registers
 * or memory) and revokes the stragglers, after which the address
 * space is safe to recycle. Use-after-free becomes a trap instead of
 * a silent corruption.
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/cap_allocator.h"
#include "os/revoker.h"
#include "os/simple_os.h"

using namespace cheri;
using namespace cheri::isa::reg;

int
main()
{
    core::Machine machine;
    os::SimpleOs kernel(machine);

    std::printf("temporal_safety: non-reuse allocation + tag-accurate "
                "revocation (Section 11)\n\n");

    int pid = kernel.exec({0});
    os::Process &proc = kernel.process(pid);
    kernel.mapRange(proc, os::kHeapBase, 64 * 1024);

    // Park the register file so the almighty boot capabilities don't
    // count as references to everything.
    for (unsigned i = 0; i < cap::kNumCapRegs; ++i)
        machine.cpu().caps().write(
            i, cap::Capability::make(os::kTextBase, 4096,
                                     cap::kPermLoad));

    cap::Capability heap = cap::Capability::make(
        os::kHeapBase, 64 * 1024, cap::kPermAll);
    os::CapAllocator allocator(heap, os::ReusePolicy::kNoReuse);
    os::CapabilityRevoker revoker(machine);

    // 1. Allocate an object and spread references around: one in a
    //    register, one stored inside another heap object.
    auto object = allocator.allocate(128);
    auto holder = allocator.allocate(64);
    machine.cpu().caps().write(9, *object);
    machine.cpu().debugWriteCap(holder->base(), *object);
    std::printf("Allocated %s\n", object->toString().c_str());
    std::printf("References now reachable: %llu (register c9 + a copy "
                "inside another object)\n",
                static_cast<unsigned long long>(revoker.countReferences(
                    object->base(), object->length())));

    // 2. Free it. The allocator never recycles the addresses, so the
    //    dangling copies are inert-but-present — the quarantine state.
    allocator.free(*object);
    std::printf("\nfree() called; block quarantined. Dangling "
                "references remaining: %llu\n",
                static_cast<unsigned long long>(revoker.countReferences(
                    object->base(), object->length())));

    // 3. The periodic tracing pass: revoke every capability into the
    //    quarantined range.
    os::SweepStats stats =
        revoker.revoke(object->base(), object->length());
    std::printf("\nRevocation sweep: scanned %llu tagged lines, found "
                "%llu capabilities,\nrevoked %llu in memory and %llu "
                "in registers (modeled cost %llu cycles)\n",
                static_cast<unsigned long long>(stats.lines_scanned),
                static_cast<unsigned long long>(stats.caps_found),
                static_cast<unsigned long long>(stats.caps_revoked),
                static_cast<unsigned long long>(stats.regs_revoked),
                static_cast<unsigned long long>(stats.cycles));
    std::printf("References after sweep: %llu — the address space can "
                "now be reused safely.\n",
                static_cast<unsigned long long>(revoker.countReferences(
                    object->base(), object->length())));

    // 4. Use-after-free attempt: the register copy is now untagged,
    //    so dereferencing it traps.
    isa::Assembler a(os::kTextBase);
    a.cld(t0, 9, zero, 0);
    a.break_();
    kernel.exec(a.finish()); // fresh process with fresh registers
    // Plant the revoked (now untagged) capability as the dangling
    // pointer the buggy program still holds.
    cap::Capability revoked = *object;
    revoked.clearTag();
    machine.cpu().caps().write(9, revoked);

    core::RunResult result = kernel.run();
    if (result.reason == core::StopReason::kTrap) {
        std::printf("\nUse-after-free attempt: %s\n",
                    result.trap.toString().c_str());
        std::printf("The dangling pointer is not a corruption bug; it "
                    "is an immediate, accurate trap.\n");
        return 0;
    }
    std::printf("\nUNEXPECTED: use-after-free succeeded\n");
    return 1;
}
