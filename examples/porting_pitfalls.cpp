/**
 * @file
 * Porting pitfalls (Section 10): "practical C implementations
 * tolerate undefined pointer behaviors that CHERI capabilities will
 * not. ... Some applications routinely construct pointers that extend
 * significantly beyond the end of valid buffers (disallowed by the C
 * specification), which will trigger exceptions on CHERI."
 *
 * Three idioms from real C code, and what happens to each here:
 *
 *  1. `p = buf + n; while (q < p)` — one-past-the-end pointer: legal
 *     C, representable as a zero-length capability, works.
 *  2. `p = buf + n + 64` then compare-only — far-out-of-bounds
 *     construction: undefined C that conventional compilation
 *     tolerates; under CHERI the *construction* itself traps
 *     (CIncBase beyond length), exactly the tcpdump-adaptation
 *     experience Section 10 reports.
 *  3. decrement-below-base scanning — same story from the other end.
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/simple_os.h"
#include "support/logging.h"

using namespace cheri;
using namespace cheri::isa::reg;

namespace
{

const char *
describe(const core::RunResult &result)
{
    static std::string text;
    switch (result.reason) {
      case core::StopReason::kExited:
        text = support::format("ran to completion (exit %lld)",
                               static_cast<long long>(
                                   result.exit_code));
        break;
      case core::StopReason::kTrap:
        text = result.trap.toString();
        break;
      default:
        text = "stopped unexpectedly";
        break;
    }
    return text.c_str();
}

core::RunResult
runIdiom(void (*emit)(isa::Assembler &))
{
    core::Machine machine;
    os::SimpleOs kernel(machine);
    isa::Assembler a(os::kTextBase);
    // Common prologue: c1 = 64-byte buffer at the heap base.
    a.li(t0, static_cast<std::int32_t>(os::kHeapBase));
    a.cincbase(1, 0, t0);
    a.li(t1, 64);
    a.csetlen(1, 1, t1);
    emit(a);
    kernel.exec(a.finish());
    return kernel.run();
}

/** Idiom 1: one-past-the-end loop bound — legal C. */
void
emitOnePastEnd(isa::Assembler &a)
{
    // end = buf + 64 (capability with zero length): construction OK.
    a.li(t2, 64);
    a.cincbase(2, 1, t2);
    // Walk q from buf to end, comparing bases (pointer compare).
    a.cgetbase(t3, 2); // end address
    a.li(t4, 0);       // offset cursor
    auto loop = a.newLabel();
    a.bind(loop);
    a.cld(t5, 1, t4, 0); // read buf[q]
    a.daddiu(t4, t4, 8);
    a.cgetbase(t6, 1);
    a.daddu(t6, t6, t4);
    a.bne(t6, t3, loop); // q != end
    a.nop();
    a.li(v0, os::kSysExit);
    a.li(a0, 0);
    a.syscall();
}

/** Idiom 2: construct buf + 64 + 64 "just for comparison" — UB. */
void
emitFarOutOfBounds(isa::Assembler &a)
{
    a.li(t2, 128);
    a.cincbase(2, 1, t2); // traps here: beyond the capability's length
    a.li(v0, os::kSysExit);
    a.li(a0, 0);
    a.syscall();
}

/** Idiom 3: scan downward past the base — UB. */
void
emitBelowBase(isa::Assembler &a)
{
    a.li(t2, -8);
    a.cld(t3, 1, t2, 0); // buf[-1]: below base
    a.li(v0, os::kSysExit);
    a.li(a0, 0);
    a.syscall();
}

} // namespace

int
main()
{
    std::printf("porting_pitfalls: which C pointer idioms survive "
                "CHERI adaptation (Section 10)\n\n");

    std::printf("1. one-past-the-end loop bound (legal C):\n   -> %s\n",
                describe(runIdiom(emitOnePastEnd)));
    std::printf("\n2. pointer constructed 64 bytes past the end, used "
                "only in comparisons (UB,\n   tolerated by "
                "conventional compilation):\n   -> %s\n",
                describe(runIdiom(emitFarOutOfBounds)));
    std::printf("\n3. scanning below the buffer base (UB):\n   -> %s\n",
                describe(runIdiom(emitBelowBase)));

    std::printf(
        "\nThis is the Olden-vs-tcpdump contrast of Section 10: the "
        "Olden suite adapted\ntrivially, while tcpdump's "
        "out-of-bounds pointer constructions trapped — and\nseveral "
        "of those turned out to be real, potentially exploitable "
        "bugs that\nconventional compilation silently tolerated.\n");
    return 0;
}
