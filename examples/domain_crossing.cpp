/**
 * @file
 * Protected domain crossing (Section 11): two mutually distrusting
 * components inside one process. A "secret keeper" domain holds a
 * password-protected counter behind a sealed code/data pair; the
 * untrusted caller can invoke it only through CCall — and can neither
 * read the secret directly nor forge an entry point into the middle
 * of the keeper's code.
 *
 * The paper's prototype "traps to the OS to emulate a protected
 * procedure-call instruction"; SimpleOs plays that OS here, with a
 * kernel-held trusted stack.
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/domain.h"
#include "os/simple_os.h"

using namespace cheri;
using namespace cheri::isa::reg;

int
main()
{
    core::Machine machine;
    os::SimpleOs kernel(machine);

    std::printf("domain_crossing: mutually distrusting domains in one "
                "process (Section 11)\n\n");

    // --- guest program: caller + keeper domains -----------------
    isa::Assembler a(os::kTextBase);
    auto keeper = a.newLabel();

    // Caller: invoke the keeper three times, then try to read the
    // keeper's private memory directly through the sealed capability.
    a.li(s0, 3);
    auto call_loop = a.newLabel();
    a.bind(call_loop);
    a.li(s1, static_cast<std::int32_t>(os::kHeapBase));
    a.clc(3, 0, s1, 0x200);  // reload sealed code cap
    a.clc(4, 0, s1, 0x220);  // reload sealed data cap
    a.ccall(3, 4);
    a.move(s2, v0);          // keeper's reply
    a.daddiu(s0, s0, -1);
    a.bne(s0, zero, call_loop);
    a.nop();
    // Attack: dereference the sealed data capability directly.
    a.clc(5, 0, s1, 0x220);
    a.cld(s3, 5, zero, 0);
    a.break_();

    // Keeper: C0 is its private data; increments its counter.
    std::uint64_t keeper_offset = a.here() - os::kTextBase;
    a.bind(keeper);
    a.cld(t0, 0, zero, 0);
    a.daddiu(t0, t0, 1);
    a.csd(t0, 0, zero, 0);
    a.move(v0, t0);
    a.creturn();

    int pid = kernel.exec(a.finish());
    os::Process &proc = kernel.process(pid);

    // --- package the keeper as a protected object ---------------
    const std::uint64_t keeper_data = os::kHeapBase + 0x800;
    std::uint64_t initial = 100;
    kernel.writeMemory(proc, keeper_data, &initial, 8);

    cap::Capability code = cap::Capability::make(
        os::kTextBase + keeper_offset, 5 * 4,
        cap::kPermExecute | cap::kPermLoad);
    cap::Capability data = cap::Capability::make(
        keeper_data, 64, cap::kPermLoad | cap::kPermStore);
    os::ProtectedObject object =
        kernel.domains().createObject(code, data);

    std::printf("Keeper packaged as a sealed pair (otype %llu):\n",
                static_cast<unsigned long long>(object.otype));
    std::printf("  code: %s\n", object.sealed_code.toString().c_str());
    std::printf("  data: %s\n", object.sealed_data.toString().c_str());

    // Hand the sealed pair to the caller through memory.
    machine.cpu().debugWriteCap(os::kHeapBase + 0x200,
                                object.sealed_code);
    machine.cpu().debugWriteCap(os::kHeapBase + 0x220,
                                object.sealed_data);

    // --- run ------------------------------------------------------
    core::RunResult result = kernel.run();

    std::printf("\nThree protected calls made; keeper's last reply: "
                "%llu (expected 103)\n",
                static_cast<unsigned long long>(machine.cpu().gpr(s2)));
    std::printf("Domain transitions: %llu calls, %llu returns, "
                "trusted stack now %zu deep\n",
                static_cast<unsigned long long>(
                    kernel.domains().stats().get("domain.calls")),
                static_cast<unsigned long long>(
                    kernel.domains().stats().get("domain.returns")),
                kernel.domains().depth());

    if (result.reason == core::StopReason::kTrap &&
        result.trap.cap_cause == cap::CapCause::kSealViolation) {
        std::printf("\nDirect dereference of the sealed data "
                    "capability: %s\n",
                    result.trap.toString().c_str());
        std::printf("The caller can INVOKE the keeper but never READ "
                    "its state: the only way\nthrough a sealed pair "
                    "is CCall, which atomically installs the keeper's "
                    "own\nPCC and C0 and records the return path on "
                    "the kernel's trusted stack.\n");
        return 0;
    }
    std::printf("UNEXPECTED: sealed capability was dereferenced!\n");
    return 1;
}
