/**
 * @file
 * Preemptive multitasking (Section 4.3): "The kernel saves and
 * restores per-thread capability-register state on context switches."
 * Two processes run in round-robin time slices; each holds a private
 * derived capability in the same register number, and each keeps a
 * counter in its own page at the same virtual address. Neither the
 * capability nor the memory of one process is ever visible to the
 * other.
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/simple_os.h"

using namespace cheri;
using namespace cheri::isa::reg;

namespace
{

/** A guest that increments heap[0] forever (until preempted). */
std::vector<std::uint32_t>
counterProgram(std::int32_t step)
{
    isa::Assembler a(os::kTextBase);
    auto loop = a.newLabel();
    a.li(t0, static_cast<std::int32_t>(os::kHeapBase));
    a.bind(loop);
    a.ld(t1, t0, 0);
    a.daddiu(t1, t1, step);
    a.sd(t1, t0, 0);
    a.b(loop);
    a.nop();
    return a.finish();
}

} // namespace

int
main()
{
    core::Machine machine;
    os::SimpleOs kernel(machine);

    std::printf("multitasking: capability state across time slices "
                "(Section 4.3)\n\n");

    int pid_a = kernel.exec(counterProgram(1));
    // Give A a distinctive private capability in c9.
    machine.cpu().caps().write(
        9, cap::Capability::make(0xaaaa000, 0x100, cap::kPermLoad));

    int pid_b = kernel.exec(counterProgram(100));
    machine.cpu().caps().write(
        9, cap::Capability::make(0xbbbb000, 0x200, cap::kPermStore));

    // Round-robin scheduler: 10 slices of 5000 instructions each.
    int current = pid_b;
    for (int slice = 0; slice < 10; ++slice) {
        core::RunResult result = kernel.run(5000);
        if (result.reason != core::StopReason::kInstLimit) {
            std::printf("unexpected stop: %s\n",
                        result.trap.toString().c_str());
            return 1;
        }
        current = current == pid_a ? pid_b : pid_a;
        kernel.switchTo(current);
    }

    auto counter_of = [&](int pid) {
        std::uint64_t value = 0;
        kernel.readMemory(kernel.process(pid), os::kHeapBase, &value,
                          8);
        return value;
    };

    std::printf("After 10 slices of 5000 instructions:\n");
    std::printf("  process A counter (step 1):   %llu\n",
                static_cast<unsigned long long>(counter_of(pid_a)));
    std::printf("  process B counter (step 100): %llu\n",
                static_cast<unsigned long long>(counter_of(pid_b)));

    kernel.switchTo(pid_a);
    cap::Capability c9_a = machine.cpu().caps().read(9);
    kernel.switchTo(pid_b);
    cap::Capability c9_b = machine.cpu().caps().read(9);
    std::printf("\nPer-process capability register c9 after all the "
                "switching:\n");
    std::printf("  A: %s\n", c9_a.toString().c_str());
    std::printf("  B: %s\n", c9_b.toString().c_str());

    bool ok = counter_of(pid_a) > 0 && counter_of(pid_b) > 0 &&
              counter_of(pid_a) != counter_of(pid_b) &&
              c9_a.base() == 0xaaaa000 && c9_b.base() == 0xbbbb000;
    if (!ok) {
        std::printf("\nUNEXPECTED: state leaked between processes\n");
        return 1;
    }
    std::printf("\nSame virtual address, same register number — two "
                "disjoint protection\ndomains, preserved across every "
                "context switch by the kernel's capability\nsave/"
                "restore (and the TLB switch underneath).\n");
    return 0;
}
