/**
 * @file
 * Quickstart: boot a CHERI machine, run a guest program that derives
 * a bounded capability for a buffer, writes through it safely, and
 * then walks off the end — demonstrating that the out-of-bounds store
 * is caught by hardware, not by software checks.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/simple_os.h"

using namespace cheri;
using namespace cheri::isa::reg;

int
main()
{
    // 1. A complete CHERI system: DRAM + tag table, caches with tag
    //    propagation, TLB, and the CPU with its capability
    //    coprocessor.
    core::Machine machine;
    os::SimpleOs kernel(machine);

    // 2. A guest program, written with the structured assembler.
    //    It derives c1 = [heap, heap+64) from the almighty C0 the OS
    //    delegated at exec time, then stores 10 words through it.
    //    Iteration 8 steps past the 64-byte bound.
    isa::Assembler a(os::kTextBase);
    auto loop = a.newLabel();
    a.li(t0, static_cast<std::int32_t>(os::kHeapBase));
    a.cincbase(1, 0, t0);  // c1 = c0 advanced to the buffer
    a.li(t1, 64);
    a.csetlen(1, 1, t1);   // c1 now exactly covers 64 bytes
    a.li(t2, 0);           // index
    a.bind(loop);
    a.dsll(t3, t2, 3);     // byte offset = index * 8
    a.csd(t2, 1, t3, 0);   // store through the capability
    a.daddiu(t2, t2, 1);
    a.slti(t4, t2, 10);
    a.bne(t4, zero, loop);
    a.nop();
    a.li(v0, os::kSysExit);
    a.li(a0, 0);
    a.syscall();

    // 3. Run it.
    kernel.exec(a.finish());
    core::RunResult result = kernel.run();

    std::printf("quickstart: CHERI bounds checking in hardware\n\n");
    std::printf("Guest stored words through a 64-byte capability in a "
                "10-iteration loop.\n");
    if (result.reason == core::StopReason::kTrap) {
        std::printf("Result: trapped as expected.\n");
        std::printf("  %s\n", result.trap.toString().c_str());
        std::printf("  (stores 0..7 landed; store 8 at offset 64 was "
                    "rejected before touching memory)\n");
    } else {
        std::printf("Result: UNEXPECTED - no trap (reason %d)\n",
                    static_cast<int>(result.reason));
        return 1;
    }

    // 4. Inspect the memory the guest wrote: exactly 8 words.
    os::Process &proc = kernel.process(kernel.currentPid());
    std::printf("\nBuffer contents after the trap:\n  ");
    for (int i = 0; i < 10; ++i) {
        std::uint64_t word = 0;
        kernel.readMemory(proc, os::kHeapBase + i * 8, &word, 8);
        std::printf("%llu ", static_cast<unsigned long long>(word));
    }
    std::printf("\n  (indices 8 and 9 remain zero: the overflow never "
                "reached memory)\n");
    return 0;
}
