/**
 * @file
 * Sandboxing unmodified legacy code (Section 5.3): a conventional
 * MIPS binary — no CHERI instructions at all — runs inside a
 * micro-address-space defined by restricted C0 and PCC. Inside its
 * window it computes normally; any attempt to read secrets outside,
 * or to jump out, is stopped by the capability checks applied to
 * every legacy access.
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/sandbox.h"
#include "os/simple_os.h"

using namespace cheri;
using namespace cheri::isa::reg;

namespace
{

constexpr std::uint64_t kSecretAddr = 0x80000;
constexpr std::uint64_t kBoxCode = 0x40000;
constexpr std::uint64_t kBoxData = 0x50000;
constexpr std::uint64_t kBoxDataLen = 0x1000;

} // namespace

int
main()
{
    core::Machine machine;

    // The parent address space holds a secret outside the sandbox.
    machine.mapRange(kSecretAddr, 4096);
    machine.mapRange(kBoxData, kBoxDataLen);
    std::uint64_t scratch = 0;
    {
        auto pte = machine.pageTable().lookup(kSecretAddr / 4096);
        machine.memory().write(pte->pfn * 4096, 8, 0xdeadbeef,
                               scratch);
    }

    std::printf("sandbox: confining unmodified MIPS code via C0/PCC "
                "(Section 5.3)\n\n");

    // Legacy program: plain MIPS, knows nothing about capabilities.
    // Phase 1: it sums the words of its own data window (legal -
    // legacy loads are implicitly offset and bounded by C0).
    // Phase 2: it tries to read the parent's secret by absolute
    // address - but addresses are offsets within C0, and the secret
    // lies beyond the window.
    isa::Assembler a(kBoxCode);
    auto loop = a.newLabel();
    a.li(t0, 0);  // offset
    a.li(t1, 0);  // sum
    a.bind(loop);
    a.ld(t2, t0, 0);        // legacy load: C0-relative
    a.daddu(t1, t1, t2);
    a.daddiu(t0, t0, 8);
    a.sltiu(t3, t0, 64);
    a.bne(t3, zero, loop);
    a.nop();
    a.sd(t1, zero, 64);     // store the sum at offset 64 (legal)
    // Escape attempt: read the secret's absolute address.
    a.li64(t4, kSecretAddr);
    a.ld(t5, t4, 0);        // C0-relative offset 0x80000 -> violation
    a.break_();
    std::vector<std::uint32_t> code = a.finish();

    machine.loadProgram(kBoxCode, code);

    // Seed the sandbox's data window with some values.
    for (int i = 0; i < 8; ++i) {
        auto pte = machine.pageTable().lookup(kBoxData / 4096);
        machine.memory().write(pte->pfn * 4096 + i * 8, 8,
                               static_cast<std::uint64_t>(i + 1),
                               scratch);
    }

    // Build the sandbox from the machine's almighty authority and
    // enter it.
    os::SandboxResult sandbox = os::makeSandbox(
        cap::Capability::almighty(), kBoxCode, code.size() * 4,
        kBoxData, kBoxDataLen);
    if (!sandbox.ok()) {
        std::printf("sandbox derivation failed\n");
        return 1;
    }
    std::printf("Sandbox code: %s\n",
                sandbox.caps.pcc.toString().c_str());
    std::printf("Sandbox data: %s\n",
                sandbox.caps.c0.toString().c_str());
    os::enterSandbox(machine.cpu(), sandbox.caps, kBoxCode);

    core::RunResult result = machine.cpu().run(100000);

    // The legal phase must have completed: the sum (1+..+8 = 36)
    // sits at data offset 64.
    std::uint64_t sum = 0;
    machine.cpu().debugRead(kBoxData + 64, 8, sum);
    std::printf("\nPhase 1 (legal): sandbox summed its window: %llu "
                "(expected 36)\n",
                static_cast<unsigned long long>(sum));

    // The escape attempt must have trapped.
    if (result.reason == core::StopReason::kTrap) {
        std::printf("Phase 2 (escape): %s\n",
                    result.trap.toString().c_str());
        std::printf("  The absolute address became an offset beyond "
                    "C0's %llu-byte window.\n",
                    static_cast<unsigned long long>(kBoxDataLen));
    } else {
        std::printf("Phase 2: UNEXPECTED - sandbox escaped!\n");
        return 1;
    }

    std::printf("\nThe sandboxed binary used only legacy MIPS "
                "instructions - no recompilation,\n"
                "no CHERI awareness - yet could not reach the secret "
                "at 0x%llx.\n",
                static_cast<unsigned long long>(kSecretAddr));
    return 0;
}
