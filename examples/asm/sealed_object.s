# sealed_object.s — seal a data capability, show that using it traps,
# unseal it, and read through the unsealed copy.
# Run: cheri-run examples/asm/sealed_object.s

        li       $t0, 0x1000000
        cincbase $c2, $c0, $t0      # c2 -> heap object
        li       $t1, 64
        csetlen  $c2, $c2, $t1
        li       $t2, 99
        csd      $t2, 0($c2)        # store a value while unsealed

        li       $t3, 7             # object type 7
        cincbase $c3, $c0, $t3      # build a sealing authority
        li       $t4, 1
        csetlen  $c3, $c3, $t4
        li       $t5, 32            # kPermSeal
        candperm $c3, $c3, $t5

        cseal    $c4, $c2, $c3      # c4 = sealed object
        cgettype $s0, $c4           # s0 = 7
        cunseal  $c5, $c4, $c3
        cld      $s1, 0($c5)        # reads 99 through unsealed copy
        cld      $s2, 0($c4)        # sealed dereference -> trap
        break
