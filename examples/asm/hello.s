# hello.s — write a greeting to the console and exit.
# Run: cheri-run examples/asm/hello.s

        li    $t0, 0x1000000        # heap base (kSysWrite source)
        li    $t1, 72               # 'H'
        sb    $t1, 0($t0)
        li    $t1, 105              # 'i'
        sb    $t1, 1($t0)
        li    $t1, 10               # '\n'
        sb    $t1, 2($t0)
        li    $v0, 4                # kSysWrite
        li    $a0, 0x1000000
        li    $a1, 3
        syscall
        li    $v0, 1                # kSysExit
        li    $a0, 0
        syscall
