# domain_call.s — protected domain crossing entirely from assembly:
# the program packages its own callee as a sealed object (deriving a
# sealing authority from C0), invokes it with ccall, and gets the
# result back through creturn.
# Run: cheri-run examples/asm/domain_call.s   (exits 42)

        # c3 = sealing authority for object type 9.
        li       $t0, 9
        cincbase $c3, $c0, $t0
        li       $t1, 1
        csetlen  $c3, $c3, $t1
        li       $t2, 32            # kPermSeal
        candperm $c3, $c3, $t2

        # c4 = code capability over the callee (at 'callee', 3 words).
        li       $t3, 0x10064       # callee address (word 25)
        cincbase $c4, $c0, $t3
        li       $t4, 12
        csetlen  $c4, $c4, $t4
        li       $t5, 5             # execute | load
        candperm $c4, $c4, $t5

        # c5 = the callee's private data capability.
        li       $t6, 0x1000100
        cincbase $c5, $c0, $t6
        li       $t7, 64
        csetlen  $c5, $c5, $t7

        # Seal both halves with the same otype and call.
        cseal    $c6, $c4, $c3
        cseal    $c7, $c5, $c3
        li       $s0, 41
        ccall    $c6, $c7
        # creturn resumes here with v0 = callee's answer.
        move     $a0, $v0
        li       $v0, 1             # kSysExit
        syscall

callee: daddiu   $v0, $s0, 1        # GPRs flow through the crossing
        creturn
        nop
