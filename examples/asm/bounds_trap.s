# bounds_trap.s — derive a 64-byte capability and run off its end.
# Run: cheri-run examples/asm/bounds_trap.s   (expects a trap)

        li       $t0, 0x1000000
        cincbase $c1, $c0, $t0      # c1 -> heap buffer
        li       $t1, 64
        csetlen  $c1, $c1, $t1      # exactly 64 bytes
        li       $t2, 0             # index
loop:
        dsll     $t3, $t2, 3
        csd      $t2, $t3, 0($c1)   # store through the capability
        daddiu   $t2, $t2, 1
        slti     $t4, $t2, 10       # 10 iterations: 8 fit, #8 traps
        bne      $t4, $zero, loop
        nop
        li       $v0, 1
        li       $a0, 0
        syscall
