/**
 * @file
 * Tag-oblivious memcpy (Section 4.2): capability registers may hold
 * general-purpose data with the tag cleared, so a memcpy implemented
 * with CLC/CSC moves 256-bit blocks without caring whether they hold
 * data or capabilities — tags are preserved for capabilities and stay
 * clear for data. A byte-wise memcpy of the same structure destroys
 * the capabilities, demonstrating why the loop must be
 * capability-sized and why that is sufficient.
 */

#include <cstdio>

#include "core/machine.h"
#include "isa/assembler.h"
#include "os/simple_os.h"

using namespace cheri;
using namespace cheri::isa::reg;

namespace
{

constexpr std::int32_t kStructBytes = 4 * 32; // 4 lines: mixed content

/** Guest memcpy(dst, src, 128) using CLC/CSC (cap-oblivious). */
void
emitCapMemcpy(isa::Assembler &a, unsigned dst_cap, unsigned src_cap)
{
    auto loop = a.newLabel();
    a.li(t0, 0);
    a.bind(loop);
    a.clc(4, src_cap, t0, 0);  // 257-bit load (data or capability)
    a.csc(4, dst_cap, t0, 0);  // 257-bit store, tag preserved
    a.daddiu(t0, t0, 32);
    a.slti(t1, t0, kStructBytes);
    a.bne(t1, zero, loop);
    a.nop();
}

/** Guest memcpy(dst, src, 128) using byte loads/stores. */
void
emitByteMemcpy(isa::Assembler &a, unsigned dst_cap, unsigned src_cap)
{
    auto loop = a.newLabel();
    a.li(t0, 0);
    a.bind(loop);
    a.clbu(t2, src_cap, t0, 0);
    a.csb(t2, dst_cap, t0, 0);
    a.daddiu(t0, t0, 1);
    a.slti(t1, t0, kStructBytes);
    a.bne(t1, zero, loop);
    a.nop();
}

void
describeStruct(os::SimpleOs &kernel, const char *label,
               std::uint64_t base)
{
    std::printf("%s\n", label);
    for (int line = 0; line < 4; ++line) {
        cap::Capability word;
        kernel.machine().cpu().debugReadCap(base + line * 32, word);
        std::uint64_t first = 0;
        kernel.machine().cpu().debugRead(base + line * 32, 8, first);
        std::printf("  line %d: tag=%d  first-word=0x%llx%s\n", line,
                    word.tag() ? 1 : 0,
                    static_cast<unsigned long long>(first),
                    word.tag() ? "  <- live capability" : "");
    }
}

} // namespace

int
main()
{
    core::Machine machine;
    os::SimpleOs kernel(machine);

    std::printf("tagged_memcpy: copying structures that mix data and "
                "capabilities (Section 4.2)\n\n");

    const std::uint64_t src = os::kHeapBase;
    const std::uint64_t dst_cap_copy = os::kHeapBase + 0x400;
    const std::uint64_t dst_byte_copy = os::kHeapBase + 0x800;

    // Guest program: build the source structure, then copy it twice.
    isa::Assembler a(os::kTextBase);
    // c1 = src, c2 = dst (capability copy), c3 = dst (byte copy).
    a.li(t0, static_cast<std::int32_t>(src));
    a.cincbase(1, 0, t0);
    a.li(t0, static_cast<std::int32_t>(dst_cap_copy));
    a.cincbase(2, 0, t0);
    a.li(t0, static_cast<std::int32_t>(dst_byte_copy));
    a.cincbase(3, 0, t0);

    // Source structure: line 0 = integer data; line 1 = a capability
    // to the heap (c5); line 2 = more data; line 3 = another
    // capability (c6, read-only).
    a.li64(t2, 0x1111111111111111ULL);
    a.csd(t2, 1, zero, 0);
    a.li(t3, 0x1000);
    a.cincbase(5, 1, zero);
    a.csetlen(5, 5, t3);
    a.csc(5, 1, zero, 32);
    a.li64(t2, 0x2222222222222222ULL);
    a.csd(t2, 1, zero, 64);
    a.li(t4, static_cast<std::int32_t>(cap::kPermLoad));
    a.candperm(6, 5, t4);
    a.csc(6, 1, zero, 96);

    emitCapMemcpy(a, 2, 1);
    emitByteMemcpy(a, 3, 1);

    a.li(v0, os::kSysExit);
    a.li(a0, 0);
    a.syscall();

    kernel.exec(a.finish());
    // The heap page at kHeapBase is mapped by exec; map the copies.
    os::Process &proc = kernel.process(kernel.currentPid());
    kernel.mapRange(proc, os::kHeapBase, 0x1000);
    core::RunResult result = kernel.run();
    if (result.reason != core::StopReason::kExited) {
        std::printf("guest failed: %s\n", result.trap.toString().c_str());
        return 1;
    }

    describeStruct(kernel, "Source structure:", src);
    describeStruct(kernel, "\nCLC/CSC copy (tag-oblivious, correct):",
                   dst_cap_copy);
    describeStruct(kernel,
                   "\nByte-wise copy (tags destroyed, as required):",
                   dst_byte_copy);

    std::printf("\nThe capability-sized copy preserved both "
                "capabilities AND plain data exactly;\n"
                "the byte-wise copy moved the same bits but every tag "
                "is clear - the copied\n\"capabilities\" are inert "
                "data and cannot be dereferenced. memcpy() needs no\n"
                "knowledge of what it is copying (Section 4.2).\n");
    return 0;
}
