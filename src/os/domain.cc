#include "os/domain.h"

#include "support/logging.h"

namespace cheri::os
{

DomainManager::DomainManager()
    : sealing_root_(cap::Capability::make(0, 1ULL << 24, cap::kPermSeal))
{
}

ProtectedObject
DomainManager::createObject(const cap::Capability &code,
                            const cap::Capability &data)
{
    // A per-object sealing capability: exactly one otype.
    cap::CapOpResult authority =
        cap::incBase(sealing_root_, next_otype_);
    if (authority.ok())
        authority = cap::setLen(authority.value, 1);
    if (!authority.ok())
        support::guestFault("os",
                            "sealing authority derivation failed");

    ProtectedObject object;
    object.otype = next_otype_++;
    cap::CapOpResult sealed_code = cap::seal(code, authority.value);
    cap::CapOpResult sealed_data = cap::seal(data, authority.value);
    if (!sealed_code.ok() || !sealed_data.ok())
        support::fatal("cannot seal domain: %s",
                       cap::capCauseName(sealed_code.ok()
                                             ? sealed_data.cause
                                             : sealed_code.cause));
    object.sealed_code = sealed_code.value;
    object.sealed_data = sealed_data.value;
    return object;
}

DomainOutcome
DomainManager::handleCCall(core::Cpu &cpu, const core::Trap &trap)
{
    const cap::Capability &code = cpu.caps().read(trap.cap_reg);
    const cap::Capability &data = cpu.caps().read(trap.cap_reg2);

    // Validation: both sealed, same object type, code executable.
    if (!code.tag() || !data.tag() || !code.sealed() ||
        !data.sealed() || code.otype() != data.otype() ||
        !code.hasPerms(cap::kPermExecute)) {
        stats_.add("domain.faults");
        return DomainOutcome::kBadCall;
    }

    cap::CapOpResult unsealed_code = cap::unseal(code, sealing_root_);
    cap::CapOpResult unsealed_data = cap::unseal(data, sealing_root_);
    if (!unsealed_code.ok() || !unsealed_data.ok()) {
        stats_.add("domain.faults");
        return DomainOutcome::kBadCall;
    }

    trusted_stack_.push_back(
        Frame{cpu.caps().pcc(), cpu.caps().c0(), trap.epc + 4});

    // Enter the callee domain: clear every capability register except
    // the declared argument window, then install its C0 and PCC.
    for (unsigned i = 0; i < cap::kNumCapRegs; ++i) {
        if (i < kCapArgFirst || i > kCapArgLast)
            cpu.caps().write(i, cap::Capability());
    }
    cpu.caps().write(0, unsealed_data.value);
    cpu.caps().setPcc(unsealed_code.value);
    cpu.setPc(unsealed_code.value.base());
    cpu.chargeCycles(kDomainCrossingCycles);
    stats_.add("domain.calls");
    return DomainOutcome::kTransitioned;
}

DomainOutcome
DomainManager::handleCReturn(core::Cpu &cpu)
{
    if (trusted_stack_.empty()) {
        stats_.add("domain.faults");
        return DomainOutcome::kStackEmpty;
    }
    Frame frame = trusted_stack_.back();
    trusted_stack_.pop_back();

    // The capability return value rides in c3; clear the rest so the
    // callee's authority cannot leak back.
    for (unsigned i = 0; i < cap::kNumCapRegs; ++i) {
        if (i != 3)
            cpu.caps().write(i, cap::Capability());
    }
    cpu.caps().write(0, frame.caller_c0);
    cpu.caps().setPcc(frame.caller_pcc);
    cpu.setPc(frame.return_pc);
    cpu.chargeCycles(kDomainCrossingCycles);
    stats_.add("domain.returns");
    return DomainOutcome::kTransitioned;
}

} // namespace cheri::os
