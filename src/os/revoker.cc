#include "os/revoker.h"

namespace cheri::os
{

namespace
{
/** Cycle model: one cycle per 64 lines of tag-table scan (bitmap
 *  words), plus a DRAM round trip per tagged line touched. */
constexpr std::uint64_t kTagScanLinesPerCycle = 64;
constexpr std::uint64_t kLineVisitCycles = 12;
} // namespace

CapabilityRevoker::CapabilityRevoker(core::Machine &machine)
    : machine_(machine)
{
}

bool
CapabilityRevoker::intersects(const cap::Capability &capability,
                              std::uint64_t base, std::uint64_t length)
{
    if (!capability.tag())
        return false;
    std::uint64_t end = base + length;
    return capability.base() < end && capability.top() > base;
}

SweepStats
CapabilityRevoker::revoke(std::uint64_t base, std::uint64_t length)
{
    SweepStats stats;

    // Make DRAM + tag table authoritative.
    machine_.memory().flushAll();

    // 1. Register file (PCC exempt; see header).
    core::Cpu &cpu = machine_.cpu();
    for (unsigned i = 0; i < cap::kNumCapRegs; ++i) {
        const cap::Capability &capability = cpu.caps().read(i);
        if (intersects(capability, base, length)) {
            cap::Capability cleared = capability;
            cleared.clearTag();
            cpu.caps().write(i, cleared);
            ++stats.regs_revoked;
        }
    }

    // 2. Tagged physical memory, via the tag table: only tagged
    //    lines are ever read.
    mem::PhysicalMemory &dram = machine_.dram();
    mem::TagTable &tags = machine_.tagTable();
    std::uint64_t total_lines = dram.size() / mem::kLineBytes;
    stats.cycles += total_lines / kTagScanLinesPerCycle;

    for (std::uint64_t line = 0; line < total_lines; ++line) {
        std::uint64_t paddr = line * mem::kLineBytes;
        if (!tags.get(paddr))
            continue;
        ++stats.lines_scanned;
        stats.cycles += kLineVisitCycles;

        cap::Capability capability =
            cap::Capability::fromRaw(dram.readLine(paddr), true);
        ++stats.caps_found;
        if (intersects(capability, base, length)) {
            tags.set(paddr, false);
            ++stats.caps_revoked;
            stats.cycles += kLineVisitCycles; // write-back of the tag
        }
    }
    return stats;
}

std::uint64_t
CapabilityRevoker::countReferences(std::uint64_t base,
                                   std::uint64_t length)
{
    machine_.memory().flushAll();
    mem::PhysicalMemory &dram = machine_.dram();
    mem::TagTable &tags = machine_.tagTable();
    std::uint64_t total_lines = dram.size() / mem::kLineBytes;
    std::uint64_t count = 0;

    core::Cpu &cpu = machine_.cpu();
    for (unsigned i = 0; i < cap::kNumCapRegs; ++i) {
        if (intersects(cpu.caps().read(i), base, length))
            ++count;
    }
    for (std::uint64_t line = 0; line < total_lines; ++line) {
        std::uint64_t paddr = line * mem::kLineBytes;
        if (!tags.get(paddr))
            continue;
        cap::Capability capability =
            cap::Capability::fromRaw(dram.readLine(paddr), true);
        if (intersects(capability, base, length))
            ++count;
    }
    return count;
}

} // namespace cheri::os
