/**
 * @file
 * SimpleOs: the minimal operating-system layer the paper's CHERI
 * needs from FreeBSD (Section 4.3) — and nothing more:
 *
 *  - process creation that delegates the entire user virtual address
 *    space to the new process's capability register file;
 *  - per-process page tables layered under the capability model;
 *  - saving and restoring capability-register state on context switch;
 *  - a small syscall surface (exit, write, sbrk, mmap) so guest
 *    programs can allocate and report without kernel involvement in
 *    capability management.
 */

#ifndef CHERI_OS_SIMPLE_OS_H
#define CHERI_OS_SIMPLE_OS_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.h"
#include "os/domain.h"
#include "tlb/page_table.h"

namespace cheri::os
{

/** Syscall numbers (passed in v0). */
enum Syscall : std::uint64_t
{
    kSysExit = 1,    ///< a0 = exit code
    kSysWrite = 4,   ///< a0 = buffer vaddr, a1 = length; to console
    kSysSbrk = 9,    ///< a0 = delta; returns old break in v0
    kSysMmap = 10,   ///< a0 = length; returns fresh mapping in v0
    kSysPutChar = 11,///< a0 = character; to console
};

/** Default user address-space layout. */
constexpr std::uint64_t kTextBase = 0x10000;
constexpr std::uint64_t kStackTop = 0x7ff0000;
constexpr std::uint64_t kHeapBase = 0x1000000;
constexpr std::uint64_t kMmapBase = 0x4000000;
/** One-past-the-end of the user virtual address space. */
constexpr std::uint64_t kUserTop = 0x8000000;

/** One user process. */
struct Process
{
    int pid = -1;
    tlb::PageTable table;
    std::array<std::uint64_t, 32> gpr{};
    std::uint64_t pc = 0, hi = 0, lo = 0;
    cap::CapRegFile::Snapshot caps;
    std::uint64_t brk = kHeapBase;
    std::uint64_t mmap_next = kMmapBase;
    std::string console;
    bool exited = false;
    std::int64_t exit_code = 0;
};

/** The OS. Owns all processes; exactly one is current at a time. */
class SimpleOs
{
  public:
    explicit SimpleOs(core::Machine &machine);

    /**
     * Create a process from a text image, map its stack and initial
     * heap, delegate the whole user address space to its capability
     * registers (C0 and PCC almighty over [0, kUserTop)), and make it
     * current. Returns the pid.
     */
    int exec(const std::vector<std::uint32_t> &text,
             std::uint64_t entry = kTextBase,
             std::uint64_t stack_bytes = 64 * 1024);

    /**
     * Context switch: save the current process's integer and
     * capability register state, restore the target's, and repoint
     * the TLB at its page table.
     */
    void switchTo(int pid);

    /**
     * Run the current process for up to max_instructions. CCall and
     * CReturn traps are handled transparently by the domain manager
     * (the Section 11 trap-to-OS protected procedure call); an
     * invalid call surfaces as a CP2 seal-violation trap.
     */
    core::RunResult run(std::uint64_t max_instructions = 1'000'000'000);

    /**
     * Watchdog variant: run until the instruction or cycle budget is
     * exhausted (kInstLimit / kCycleLimit), so a runaway guest
     * returns a structured result instead of hanging the host.
     */
    core::RunResult run(const core::RunLimits &limits);

    /** The protected-domain-crossing service. */
    DomainManager &domains() { return domains_; }

    Process &process(int pid);
    int currentPid() const { return current_; }
    core::Machine &machine() { return machine_; }

    /** Map [vaddr, vaddr+bytes) in a process's address space. */
    void mapRange(Process &proc, std::uint64_t vaddr,
                  std::uint64_t bytes, tlb::PteFlags flags = {});

    /**
     * Unmap a virtual range and flush the TLB: the OS-side revocation
     * mechanism the paper describes (capabilities to the range remain
     * tagged but every dereference now faults).
     */
    void revokeRange(Process &proc, std::uint64_t vaddr,
                     std::uint64_t bytes);

    /** Copy bytes into a process's memory (loader / test setup). */
    void writeMemory(Process &proc, std::uint64_t vaddr,
                     const void *data, std::uint64_t len);

    /** Copy bytes out of a process's memory. */
    void readMemory(Process &proc, std::uint64_t vaddr, void *data,
                    std::uint64_t len);

  private:
    core::SyscallAction handleSyscall(core::Cpu &cpu);

    /** Physical address of vaddr in proc (fatal if unmapped). */
    std::uint64_t translate(Process &proc, std::uint64_t vaddr);

    core::Machine &machine_;
    std::vector<std::unique_ptr<Process>> processes_;
    DomainManager domains_;
    int current_ = -1;
};

} // namespace cheri::os

#endif // CHERI_OS_SIMPLE_OS_H
