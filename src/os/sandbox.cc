#include "os/sandbox.h"

namespace cheri::os
{

namespace
{

/** Derive a sub-capability [base, base+len) with perms from parent. */
cap::CapOpResult
derive(const cap::Capability &parent, std::uint64_t base,
       std::uint64_t len, std::uint32_t perms)
{
    cap::CapOpResult result = cap::incBase(parent, base - parent.base());
    if (result.ok())
        result = cap::setLen(result.value, len);
    if (result.ok())
        result = cap::andPerm(result.value, perms);
    return result;
}

} // namespace

SandboxResult
makeSandbox(const cap::Capability &parent, std::uint64_t code_base,
            std::uint64_t code_len, std::uint64_t data_base,
            std::uint64_t data_len)
{
    SandboxResult result;

    cap::CapOpResult code = derive(parent, code_base, code_len,
                                   cap::kPermExecute | cap::kPermLoad);
    if (!code.ok()) {
        result.cause = code.cause;
        return result;
    }
    cap::CapOpResult data = derive(parent, data_base, data_len,
                                   cap::kPermLoad | cap::kPermStore);
    if (!data.ok()) {
        result.cause = data.cause;
        return result;
    }
    result.caps.pcc = code.value;
    result.caps.c0 = data.value;
    return result;
}

void
enterSandbox(core::Cpu &cpu, const SandboxCaps &caps,
             std::uint64_t entry_pc)
{
    for (unsigned i = 0; i < cap::kNumCapRegs; ++i)
        cpu.caps().write(i, cap::Capability());
    cpu.caps().write(0, caps.c0);
    cpu.caps().setPcc(caps.pcc);
    cpu.setPc(entry_pc);
}

} // namespace cheri::os
