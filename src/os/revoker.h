/**
 * @file
 * Temporal safety via tag-accurate capability revocation (Section
 * 11): "Tags allow us to identify all references, so we can provide
 * accurate garbage collection to low-level languages such as C." A
 * non-reuse allocator quarantines freed address space; this sweeper
 * is the periodic tracing pass — it finds every capability in the
 * system (registers and tagged memory) that grants access to a
 * quarantined range and invalidates it, after which the range can be
 * reused with no dangling capability left anywhere.
 */

#ifndef CHERI_OS_REVOKER_H
#define CHERI_OS_REVOKER_H

#include <cstdint>

#include "core/machine.h"

namespace cheri::os
{

/** Results of one revocation sweep. */
struct SweepStats
{
    std::uint64_t lines_scanned = 0; ///< tagged lines examined
    std::uint64_t caps_found = 0;    ///< valid capabilities seen
    std::uint64_t caps_revoked = 0;  ///< memory capabilities cleared
    std::uint64_t regs_revoked = 0;  ///< register capabilities cleared
    /** Modeled cycle cost (tag-table scan + line reads/writes). */
    std::uint64_t cycles = 0;
};

/**
 * Stop-the-world capability sweeper. The machine must be paused; the
 * sweep flushes the cache hierarchy so DRAM and the tag table are
 * authoritative, then walks the tag table — only tagged lines are
 * read, which is what makes tag-accurate scanning cheap relative to
 * conservative scanning of all memory.
 */
class CapabilityRevoker
{
  public:
    explicit CapabilityRevoker(core::Machine &machine);

    /**
     * Invalidate every capability whose range intersects
     * [base, base+length) — in the capability register file and in
     * all of tagged physical memory. PCC is exempt (revoking the
     * executing code capability is an OS policy decision, not a
     * sweep's).
     */
    SweepStats revoke(std::uint64_t base, std::uint64_t length);

    /** Count live (tagged) capabilities pointing into a range. */
    std::uint64_t countReferences(std::uint64_t base,
                                  std::uint64_t length);

  private:
    static bool intersects(const cap::Capability &capability,
                           std::uint64_t base, std::uint64_t length);

    core::Machine &machine_;
};

} // namespace cheri::os

#endif // CHERI_OS_REVOKER_H
