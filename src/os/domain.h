/**
 * @file
 * Protected domain crossing (Section 11): the paper's prototype traps
 * to the OS to emulate a protected procedure-call instruction. This
 * manager is that OS side. A protection domain is packaged as a
 * sealed code/data capability pair sharing an object type; CCall
 * validates the pair, saves the caller's {PCC, C0, return PC} on a
 * kernel-held trusted stack, and installs the unsealed pair; CReturn
 * pops the frame. Register clearing enforces mutual distrust: the
 * callee sees only its own authority plus the declared argument
 * registers.
 */

#ifndef CHERI_OS_DOMAIN_H
#define CHERI_OS_DOMAIN_H

#include <cstdint>
#include <vector>

#include "cap/cap_ops.h"
#include "core/cpu.h"
#include "core/exceptions.h"
#include "support/stats.h"

namespace cheri::os
{

/** Capability registers that carry arguments across a CCall. */
constexpr unsigned kCapArgFirst = 3;
constexpr unsigned kCapArgLast = 10;

/** Modeled cycle cost of the trap-based domain transition. */
constexpr std::uint64_t kDomainCrossingCycles = 100;

/** A sealed code/data pair representing one protection domain. */
struct ProtectedObject
{
    cap::Capability sealed_code;
    cap::Capability sealed_data;
    std::uint64_t otype = 0;
};

/** Outcome of a CCall/CReturn emulation. */
enum class DomainOutcome
{
    kTransitioned, ///< transition performed; execution may resume
    kBadCall,      ///< validation failed (treated as a CP2 fault)
    kStackEmpty,   ///< CReturn with no matching CCall
};

/**
 * The OS domain-transition service. Owns the sealing root (the
 * kernel reserves the whole object-type space) and the trusted stack.
 */
class DomainManager
{
  public:
    DomainManager();

    /**
     * Package a domain: seal 'code' and 'data' with a fresh object
     * type. The resulting pair can be handed to distrusting code —
     * neither half is dereferenceable or modifiable until CCall
     * unseals them together.
     */
    ProtectedObject createObject(const cap::Capability &code,
                                 const cap::Capability &data);

    /**
     * Emulate CCall on a trapped CPU: validate the sealed pair named
     * by the trap's capability registers, push the caller frame, and
     * enter the callee domain (PCC = unsealed code, C0 = unsealed
     * data, PC = code base; non-argument capability registers are
     * cleared).
     */
    DomainOutcome handleCCall(core::Cpu &cpu, const core::Trap &trap);

    /**
     * Emulate CReturn: pop the caller frame and restore its PCC, C0
     * and PC. The capability return value travels in c3; every other
     * capability register is cleared.
     */
    DomainOutcome handleCReturn(core::Cpu &cpu);

    /** Current trusted-stack depth (live nested calls). */
    std::size_t depth() const { return trusted_stack_.size(); }

    /** Counters: "domain.calls", "domain.returns", "domain.faults". */
    const support::StatSet &stats() const { return stats_; }

  private:
    struct Frame
    {
        cap::Capability caller_pcc;
        cap::Capability caller_c0;
        std::uint64_t return_pc = 0;
    };

    /** Kernel sealing authority over the whole otype space. */
    cap::Capability sealing_root_;
    std::uint64_t next_otype_ = 1;
    std::vector<Frame> trusted_stack_;
    support::StatSet stats_;
};

} // namespace cheri::os

#endif // CHERI_OS_DOMAIN_H
