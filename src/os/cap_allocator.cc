#include "os/cap_allocator.h"

#include "support/bits.h"
#include "support/logging.h"

namespace cheri::os
{

namespace
{
/** Alignment so any allocation can store capabilities. */
constexpr std::uint64_t kAllocAlign = 32;
} // namespace

CapAllocator::CapAllocator(cap::Capability heap_cap, ReusePolicy policy)
    : heap_(heap_cap), policy_(policy)
{
    if (!heap_.tag())
        support::fatal("CapAllocator needs a tagged heap capability");
    if (heap_.base() % kAllocAlign != 0)
        support::fatal("heap capability base must be 32-byte aligned");
    free_blocks_[0] = heap_.length();
}

std::optional<cap::Capability>
CapAllocator::allocate(std::uint64_t size, std::uint32_t perms)
{
    stats_.add("alloc.calls");
    if (size == 0)
        return std::nullopt;
    std::uint64_t block_size = support::roundUp(size, kAllocAlign);

    // First fit over the free map (ordered by offset).
    for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
        auto [offset, avail] = *it;
        if (avail < block_size)
            continue;
        free_blocks_.erase(it);
        if (avail > block_size)
            free_blocks_[offset + block_size] = avail - block_size;
        live_blocks_[offset] = block_size;
        bytes_in_use_ += block_size;
        stats_.add("alloc.bytes", block_size);

        // Derive the object capability exactly as compiled code
        // would: CIncBase to the block, CSetLen to the request,
        // CAndPerm to the requested rights (Section 5.1).
        cap::CapOpResult derived = cap::incBase(heap_, offset);
        if (derived.ok())
            derived = cap::setLen(derived.value, size);
        if (derived.ok())
            derived = cap::andPerm(derived.value, perms);
        if (!derived.ok())
            support::guestFault(
                "os", "allocator derivation failed: %s",
                cap::capCauseName(derived.cause));
        return derived.value;
    }
    stats_.add("alloc.failures");
    return std::nullopt;
}

void
CapAllocator::free(const cap::Capability &capability)
{
    stats_.add("alloc.free_calls");
    if (!capability.tag()) {
        support::warn("free of untagged capability ignored");
        return;
    }
    // A sealed capability or one derived from a different region must
    // not reach the offset arithmetic below: base() - heap_.base()
    // would underflow to a garbage offset before the live_blocks_
    // lookup. Either is allocator-metadata corruption from the
    // guest's point of view, so it goes through the guest-failure
    // barrier rather than aborting a whole fleet.
    if (capability.sealed())
        support::guestFault(
            "os", "free of sealed capability (otype %llu)",
            static_cast<unsigned long long>(capability.otype()));
    if (capability.base() < heap_.base() ||
        capability.top() > heap_.top())
        support::guestFault(
            "os",
            "free of capability outside the heap: "
            "[0x%llx, 0x%llx) not within [0x%llx, 0x%llx)",
            static_cast<unsigned long long>(capability.base()),
            static_cast<unsigned long long>(capability.top()),
            static_cast<unsigned long long>(heap_.base()),
            static_cast<unsigned long long>(heap_.top()));
    std::uint64_t offset = capability.base() - heap_.base();
    auto it = live_blocks_.find(offset);
    if (it == live_blocks_.end()) {
        support::warn("free of unknown block at offset 0x%llx",
                      static_cast<unsigned long long>(offset));
        return;
    }
    std::uint64_t block_size = it->second;
    live_blocks_.erase(it);
    bytes_in_use_ -= block_size;

    if (policy_ == ReusePolicy::kNoReuse)
        return; // address space is never recycled (Section 11)

    // Insert and coalesce with neighbours.
    auto [pos, inserted] = free_blocks_.emplace(offset, block_size);
    if (!inserted)
        support::guestFault("os", "double free at offset 0x%llx",
                            static_cast<unsigned long long>(offset));
    // Merge with next.
    auto next = std::next(pos);
    if (next != free_blocks_.end() &&
        pos->first + pos->second == next->first) {
        pos->second += next->second;
        free_blocks_.erase(next);
    }
    // Merge with previous.
    if (pos != free_blocks_.begin()) {
        auto prev = std::prev(pos);
        if (prev->first + prev->second == pos->first) {
            prev->second += pos->second;
            free_blocks_.erase(pos);
        }
    }
}

} // namespace cheri::os
