/**
 * @file
 * Sandboxing of unmodified (legacy) code inside a micro-address-space
 * (Section 5.3): conventional binaries are confined by constraining
 * C0 and PCC, so every legacy load, store and instruction fetch is
 * bounded without recompilation.
 */

#ifndef CHERI_OS_SANDBOX_H
#define CHERI_OS_SANDBOX_H

#include <cstdint>

#include "cap/cap_ops.h"
#include "core/cpu.h"

namespace cheri::os
{

/** The capability pair defining a sandbox. */
struct SandboxCaps
{
    cap::Capability pcc; ///< code: execute-only over the text range
    cap::Capability c0;  ///< data: load/store over the data range
};

/**
 * Derive sandbox capabilities from a parent authority. The code
 * capability covers [code_base, code_base+code_len) with execute (and
 * load, so constants in the text segment stay readable); the data
 * capability covers [data_base, data_base+data_len) with load/store
 * only — deliberately no capability load/store, so the sandbox cannot
 * exfiltrate or receive authority through memory.
 *
 * Returns untagged capabilities (and a fault cause) if the parent
 * does not cover the requested ranges — a sandbox can never exceed
 * its creator's authority.
 */
struct SandboxResult
{
    cap::CapCause cause = cap::CapCause::kNone;
    SandboxCaps caps;

    bool ok() const { return cause == cap::CapCause::kNone; }
};

SandboxResult makeSandbox(const cap::Capability &parent,
                          std::uint64_t code_base, std::uint64_t code_len,
                          std::uint64_t data_base, std::uint64_t data_len);

/**
 * Install sandbox capabilities on a CPU: C0 and PCC are replaced and,
 * because compromised sandbox code could read any capability
 * register, every other capability register is cleared to the
 * untagged NULL capability.
 */
void enterSandbox(core::Cpu &cpu, const SandboxCaps &caps,
                  std::uint64_t entry_pc);

} // namespace cheri::os

#endif // CHERI_OS_SANDBOX_H
