/**
 * @file
 * A capability-aware memory allocator (Section 4.3): manages a guest
 * heap region entirely in user space — no system call per allocation,
 * the property Section 4.2 argues is essential — and returns each
 * allocation as a capability whose bounds exactly cover the object,
 * built with the same CIncBase/CSetLen derivation chain the compiler
 * would emit.
 *
 * Also implements the paper's revocation options: a non-reuse mode
 * (freed address space is never recycled) and page revocation through
 * the OS.
 */

#ifndef CHERI_OS_CAP_ALLOCATOR_H
#define CHERI_OS_CAP_ALLOCATOR_H

#include <cstdint>
#include <map>
#include <optional>

#include "cap/cap_ops.h"
#include "cap/capability.h"
#include "support/stats.h"

namespace cheri::os
{

/** Allocation policy. */
enum class ReusePolicy
{
    kFirstFit, ///< coalescing free list, addresses are reused
    kNoReuse,  ///< bump allocation only; free() never recycles
};

/**
 * User-space allocator over a delegated heap capability. The
 * allocator itself never holds more authority than the heap
 * capability it was constructed with; every returned capability is
 * derived from it monotonically.
 */
class CapAllocator
{
  public:
    /**
     * Manage the region covered by heap_cap. Allocations are aligned
     * to 32 bytes so any allocation can hold capabilities.
     */
    CapAllocator(cap::Capability heap_cap,
                 ReusePolicy policy = ReusePolicy::kFirstFit);

    /**
     * Allocate size bytes; the returned capability has base at the
     * block, length exactly size, and the requested permissions
     * (intersected with the heap capability's own).
     */
    std::optional<cap::Capability> allocate(std::uint64_t size,
                                            std::uint32_t perms =
                                                cap::kPermAll);

    /** Return a block. The capability must come from allocate(). */
    void free(const cap::Capability &capability);

    /** Bytes currently allocated. */
    std::uint64_t bytesInUse() const { return bytes_in_use_; }

    /** Counters: "alloc.calls", "alloc.free_calls", ... */
    const support::StatSet &stats() const { return stats_; }

  private:
    cap::Capability heap_;
    ReusePolicy policy_;
    /** Free blocks by offset from heap base -> size. */
    std::map<std::uint64_t, std::uint64_t> free_blocks_;
    /** Live blocks by offset -> size (validates free()). */
    std::map<std::uint64_t, std::uint64_t> live_blocks_;
    std::uint64_t bytes_in_use_ = 0;
    support::StatSet stats_;
};

} // namespace cheri::os

#endif // CHERI_OS_CAP_ALLOCATOR_H
