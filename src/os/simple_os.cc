#include "os/simple_os.h"

#include <cstring>

#include "isa/assembler.h"
#include "support/bits.h"
#include "support/logging.h"

namespace cheri::os
{

SimpleOs::SimpleOs(core::Machine &machine) : machine_(machine)
{
    machine_.cpu().setSyscallHandler(
        [this](core::Cpu &cpu) { return handleSyscall(cpu); });
}

Process &
SimpleOs::process(int pid)
{
    if (pid < 0 || static_cast<std::size_t>(pid) >= processes_.size())
        support::guestFault("os", "unknown pid %d", pid);
    return *processes_[static_cast<std::size_t>(pid)];
}

void
SimpleOs::mapRange(Process &proc, std::uint64_t vaddr,
                   std::uint64_t bytes, tlb::PteFlags flags)
{
    std::uint64_t first_vpn = vaddr / tlb::kPageBytes;
    std::uint64_t last_vpn = (vaddr + bytes - 1) / tlb::kPageBytes;
    for (std::uint64_t vpn = first_vpn; vpn <= last_vpn; ++vpn) {
        if (!proc.table.lookup(vpn))
            proc.table.map(vpn, machine_.allocFrame(), flags);
    }
}

void
SimpleOs::revokeRange(Process &proc, std::uint64_t vaddr,
                      std::uint64_t bytes)
{
    std::uint64_t first_vpn = vaddr / tlb::kPageBytes;
    std::uint64_t last_vpn = (vaddr + bytes - 1) / tlb::kPageBytes;
    for (std::uint64_t vpn = first_vpn; vpn <= last_vpn; ++vpn)
        proc.table.unmap(vpn);
    machine_.tlb().flush();
    // Dirty cache lines for the revoked frames are harmless: the
    // frames are never reused by this allocator-free OS model.
}

std::uint64_t
SimpleOs::translate(Process &proc, std::uint64_t vaddr)
{
    auto pte = proc.table.lookup(vaddr / tlb::kPageBytes);
    if (!pte) {
        // Guest-triggerable (e.g. a syscall passing an unmapped buffer
        // address), so this is a user error, not an emulator bug.
        support::fatal("OS access to unmapped vaddr 0x%llx (pid %d)",
                       static_cast<unsigned long long>(vaddr), proc.pid);
    }
    return pte->pfn * tlb::kPageBytes + vaddr % tlb::kPageBytes;
}

void
SimpleOs::writeMemory(Process &proc, std::uint64_t vaddr,
                      const void *data, std::uint64_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t scratch = 0;
    for (std::uint64_t i = 0; i < len; ++i) {
        // Route through the cache hierarchy so guest loads observe
        // the write (and so tags are cleared like any data store).
        machine_.memory().write(translate(proc, vaddr + i), 1, bytes[i],
                                scratch);
    }
}

void
SimpleOs::readMemory(Process &proc, std::uint64_t vaddr, void *data,
                     std::uint64_t len)
{
    auto *bytes = static_cast<std::uint8_t *>(data);
    std::uint64_t scratch = 0;
    for (std::uint64_t i = 0; i < len; ++i) {
        bytes[i] = static_cast<std::uint8_t>(
            machine_.memory().read(translate(proc, vaddr + i), 1,
                                   scratch));
    }
}

int
SimpleOs::exec(const std::vector<std::uint32_t> &text,
               std::uint64_t entry, std::uint64_t stack_bytes)
{
    auto proc = std::make_unique<Process>();
    proc->pid = static_cast<int>(processes_.size());

    // Text.
    mapRange(*proc, kTextBase, text.size() * 4);
    // Stack (grows down from kStackTop).
    mapRange(*proc, kStackTop - stack_bytes, stack_bytes);
    // Initial heap page.
    mapRange(*proc, kHeapBase, tlb::kPageBytes);
    proc->brk = kHeapBase + tlb::kPageBytes;

    for (std::size_t i = 0; i < text.size(); ++i) {
        std::uint64_t paddr = translate(*proc, kTextBase + i * 4);
        machine_.dram().write(paddr, 4, text[i]);
    }

    proc->pc = entry;
    proc->gpr[29] = kStackTop - 64; // sp, small slack below the top

    // Delegate the entire user virtual address space (Section 4.3):
    // every capability register, C0 and PCC, spans [0, kUserTop) with
    // all permissions. The process restricts from there.
    cap::Capability user_space =
        cap::Capability::make(0, kUserTop, cap::kPermAll);
    proc->caps.regs.fill(user_space);
    proc->caps.pcc = user_space;

    processes_.push_back(std::move(proc));
    int pid = static_cast<int>(processes_.size()) - 1;
    switchTo(pid);
    return pid;
}

void
SimpleOs::switchTo(int pid)
{
    Process &target = process(pid);
    core::Cpu &cpu = machine_.cpu();

    if (current_ >= 0) {
        Process &old = process(current_);
        for (unsigned i = 0; i < 32; ++i)
            old.gpr[i] = cpu.gpr(i);
        old.pc = cpu.pc();
        old.hi = cpu.hi();
        old.lo = cpu.lo();
        // The kernel saves per-thread capability-register state
        // (Section 4.3).
        old.caps = cpu.caps().save();
    }

    for (unsigned i = 0; i < 32; ++i)
        cpu.setGpr(i, target.gpr[i]);
    cpu.setPc(target.pc);
    cpu.caps().restore(target.caps);
    machine_.tlb().setTable(target.table);
    current_ = pid;
}

core::RunResult
SimpleOs::run(std::uint64_t max_instructions)
{
    core::RunLimits limits;
    limits.max_instructions = max_instructions;
    return run(limits);
}

core::RunResult
SimpleOs::run(const core::RunLimits &limits)
{
    if (current_ < 0)
        support::fatal("SimpleOs::run with no current process");

    core::Cpu &cpu = machine_.cpu();
    core::RunLimits remaining = limits;
    core::RunResult result;
    std::uint64_t total_instructions = 0;
    std::uint64_t total_cycles = 0;

    while (true) {
        result = cpu.run(remaining);
        total_instructions += result.instructions;
        total_cycles += result.cycles;
        remaining.max_instructions -=
            std::min(remaining.max_instructions, result.instructions);
        remaining.max_cycles -=
            std::min(remaining.max_cycles, result.cycles);

        // Transparent domain transitions (Section 11). Handled even
        // when the budgets are exhausted: the transition is OS work,
        // not guest instructions, and leaving a half-made CCall
        // visible would expose microarchitectural state.
        if (result.reason == core::StopReason::kTrap) {
            DomainOutcome outcome = DomainOutcome::kBadCall;
            bool is_domain_trap = false;
            if (result.trap.code == core::ExcCode::kCCall) {
                is_domain_trap = true;
                outcome = domains_.handleCCall(cpu, result.trap);
            } else if (result.trap.code == core::ExcCode::kCReturn) {
                is_domain_trap = true;
                outcome = domains_.handleCReturn(cpu);
            }
            if (is_domain_trap) {
                if (outcome == DomainOutcome::kTransitioned) {
                    if (remaining.max_cycles == 0) {
                        result.reason = core::StopReason::kCycleLimit;
                        break;
                    }
                    if (remaining.max_instructions == 0) {
                        result.reason = core::StopReason::kInstLimit;
                        break;
                    }
                    continue;
                }
                // Invalid call/return: surface as a seal violation.
                result.trap.code = core::ExcCode::kCp2;
                result.trap.cap_cause = cap::CapCause::kSealViolation;
            }
        }
        break;
    }

    result.instructions = total_instructions;
    result.cycles = total_cycles;
    if (result.reason == core::StopReason::kExited) {
        Process &proc = process(current_);
        proc.exited = true;
        proc.exit_code = result.exit_code;
    }
    return result;
}

core::SyscallAction
SimpleOs::handleSyscall(core::Cpu &cpu)
{
    using namespace isa::reg;
    core::SyscallAction action;
    Process &proc = process(current_);
    std::uint64_t number = cpu.gpr(v0);

    switch (number) {
      case kSysExit:
        action.exit = true;
        action.exit_code = static_cast<std::int64_t>(cpu.gpr(a0));
        break;
      case kSysWrite: {
        std::uint64_t buf = cpu.gpr(a0);
        std::uint64_t len = cpu.gpr(a1);
        std::string data(len, '\0');
        readMemory(proc, buf, data.data(), len);
        proc.console += data;
        cpu.setGpr(v0, len);
        break;
      }
      case kSysSbrk: {
        std::uint64_t old_brk = proc.brk;
        std::int64_t delta = static_cast<std::int64_t>(cpu.gpr(a0));
        if (delta > 0) {
            mapRange(proc, proc.brk, static_cast<std::uint64_t>(delta));
            proc.brk += static_cast<std::uint64_t>(delta);
        }
        // Negative deltas release the break without unmapping, like
        // most real sbrk implementations.
        else if (delta < 0) {
            proc.brk -= static_cast<std::uint64_t>(-delta);
        }
        cpu.setGpr(v0, old_brk);
        break;
      }
      case kSysMmap: {
        std::uint64_t len = support::roundUp(cpu.gpr(a0),
                                             tlb::kPageBytes);
        std::uint64_t addr = proc.mmap_next;
        mapRange(proc, addr, len);
        proc.mmap_next += len;
        cpu.setGpr(v0, addr);
        break;
      }
      case kSysPutChar:
        proc.console += static_cast<char>(cpu.gpr(a0));
        cpu.setGpr(v0, 0);
        break;
      default:
        support::warn("unknown syscall %llu (pid %d)",
                      static_cast<unsigned long long>(number), proc.pid);
        cpu.setGpr(v0, static_cast<std::uint64_t>(-1));
        break;
    }
    return action;
}

} // namespace cheri::os
