/**
 * @file
 * Binary instruction encoders: one function per instruction form,
 * producing the 32-bit words the Decoder consumes. The Assembler
 * builds programs on top of these.
 */

#ifndef CHERI_ISA_ENCODER_H
#define CHERI_ISA_ENCODER_H

#include <cstdint>

#include "isa/isa.h"

namespace cheri::isa::encode
{

/** SPECIAL-major R-type: opcode 0, fields rs/rt/rd/sa/funct. */
std::uint32_t rType(unsigned funct, unsigned rs, unsigned rt,
                    unsigned rd, unsigned sa = 0);

/** I-type: opcode, rs, rt, 16-bit immediate. */
std::uint32_t iType(unsigned opcode, unsigned rs, unsigned rt,
                    std::int32_t imm);

/** J-type: opcode, 26-bit word target. */
std::uint32_t jType(unsigned opcode, std::uint32_t target);

/** Encode any register-register ALU / shift / jump-register form. */
std::uint32_t alu(Opcode op, unsigned rd, unsigned rs, unsigned rt,
                  unsigned sa = 0);

/** Encode a COP2 register operation (sub-opcode under major 0x12). */
std::uint32_t cop2(unsigned sub, unsigned f1, unsigned f2, unsigned f3);

/** CBTU/CBTS: capability tag branch with signed word offset. */
std::uint32_t capBranch(bool on_set, unsigned cb, std::int32_t offset);

/**
 * Capability-relative data access (CLx/CSx): rd data register, cb
 * capability, rt register offset, imm signed element-scaled immediate,
 * size_log2 in 0..3, is_load and zero_extend selectors.
 */
std::uint32_t capMem(bool is_load, bool zero_extend, unsigned size_log2,
                     unsigned rd, unsigned cb, unsigned rt,
                     std::int32_t imm);

/** CLC/CSC: capability load/store, imm scaled by 32 bytes. */
std::uint32_t capCapMem(bool is_load, unsigned cd, unsigned cb,
                        unsigned rt, std::int32_t imm);

} // namespace cheri::isa::encode

#endif // CHERI_ISA_ENCODER_H
