#include "isa/assembler.h"

#include "support/logging.h"

namespace cheri::isa
{

using namespace encode;

Assembler::Assembler(std::uint64_t base_addr) : base_addr_(base_addr)
{
    if (base_addr % 4 != 0)
        support::fatal("code base address 0x%llx must be word aligned",
                       static_cast<unsigned long long>(base_addr));
}

Assembler::Label
Assembler::newLabel()
{
    Label label{static_cast<unsigned>(label_offsets_.size())};
    label_offsets_.push_back(-1);
    return label;
}

void
Assembler::bind(Label label)
{
    if (label.id >= label_offsets_.size())
        support::panic("bind of unknown label %u", label.id);
    if (label_offsets_[label.id] >= 0)
        support::panic("label %u bound twice", label.id);
    label_offsets_[label.id] = static_cast<std::int64_t>(words_.size());
}

std::uint64_t
Assembler::here() const
{
    return base_addr_ + words_.size() * 4;
}

void
Assembler::emit(std::uint32_t word)
{
    if (finished_)
        support::panic("emit after finish()");
    words_.push_back(word);
}

std::vector<std::uint32_t>
Assembler::finish()
{
    finished_ = true;
    for (const Fixup &fixup : fixups_) {
        if (label_offsets_[fixup.label_id] < 0)
            support::panic("label %u never bound", fixup.label_id);
        std::int64_t target = label_offsets_[fixup.label_id];
        std::int64_t source = static_cast<std::int64_t>(fixup.word_index);
        std::uint32_t &word = words_[fixup.word_index];
        if (fixup.kind == FixupKind::kBranch16) {
            // Branch offsets are in words relative to the delay slot.
            std::int64_t delta = target - (source + 1);
            if (delta < -(1 << 15) || delta >= (1 << 15))
                support::panic("branch to label %u out of range (%lld)",
                               fixup.label_id,
                               static_cast<long long>(delta));
            word = (word & 0xffff0000u) |
                   (static_cast<std::uint32_t>(delta) & 0xffff);
        } else {
            std::uint64_t addr =
                base_addr_ + static_cast<std::uint64_t>(target) * 4;
            word = (word & 0xfc000000u) |
                   (static_cast<std::uint32_t>(addr >> 2) & 0x03ffffff);
        }
    }
    return words_;
}

void
Assembler::move(unsigned rd, unsigned rs)
{
    or_(rd, rs, reg::zero);
}

void
Assembler::li(unsigned rd, std::int32_t value)
{
    if (value >= -32768 && value <= 32767) {
        daddiu(rd, reg::zero, value);
    } else {
        lui(rd, static_cast<std::int16_t>(value >> 16));
        if (value & 0xffff)
            ori(rd, rd, static_cast<std::uint32_t>(value) & 0xffff);
    }
}

void
Assembler::li64(unsigned rd, std::uint64_t value)
{
    std::int64_t sval = static_cast<std::int64_t>(value);
    if (sval >= INT32_MIN && sval <= INT32_MAX) {
        li(rd, static_cast<std::int32_t>(sval));
        return;
    }
    // Build from the top: lui high, or in pieces with shifts.
    lui(rd, static_cast<std::int16_t>(value >> 48));
    ori(rd, rd, (value >> 32) & 0xffff);
    dsll(rd, rd, 16);
    ori(rd, rd, (value >> 16) & 0xffff);
    dsll(rd, rd, 16);
    ori(rd, rd, value & 0xffff);
}

void
Assembler::b(Label label)
{
    beq(reg::zero, reg::zero, label);
}

void Assembler::sll(unsigned rd, unsigned rt, unsigned sa)
{ emit(alu(Opcode::kSll, rd, 0, rt, sa)); }
void Assembler::srl(unsigned rd, unsigned rt, unsigned sa)
{ emit(alu(Opcode::kSrl, rd, 0, rt, sa)); }
void Assembler::sra(unsigned rd, unsigned rt, unsigned sa)
{ emit(alu(Opcode::kSra, rd, 0, rt, sa)); }
void Assembler::dsll(unsigned rd, unsigned rt, unsigned sa)
{ emit(alu(Opcode::kDsll, rd, 0, rt, sa)); }
void Assembler::dsrl(unsigned rd, unsigned rt, unsigned sa)
{ emit(alu(Opcode::kDsrl, rd, 0, rt, sa)); }
void Assembler::dsra(unsigned rd, unsigned rt, unsigned sa)
{ emit(alu(Opcode::kDsra, rd, 0, rt, sa)); }
void Assembler::dsll32(unsigned rd, unsigned rt, unsigned sa)
{ emit(alu(Opcode::kDsll32, rd, 0, rt, sa)); }
void Assembler::dsrl32(unsigned rd, unsigned rt, unsigned sa)
{ emit(alu(Opcode::kDsrl32, rd, 0, rt, sa)); }
void Assembler::sllv(unsigned rd, unsigned rt, unsigned rs)
{ emit(alu(Opcode::kSllv, rd, rs, rt)); }
void Assembler::srlv(unsigned rd, unsigned rt, unsigned rs)
{ emit(alu(Opcode::kSrlv, rd, rs, rt)); }
void Assembler::srav(unsigned rd, unsigned rt, unsigned rs)
{ emit(alu(Opcode::kSrav, rd, rs, rt)); }
void Assembler::dsllv(unsigned rd, unsigned rt, unsigned rs)
{ emit(alu(Opcode::kDsllv, rd, rs, rt)); }
void Assembler::dsrlv(unsigned rd, unsigned rt, unsigned rs)
{ emit(alu(Opcode::kDsrlv, rd, rs, rt)); }
void Assembler::dsrav(unsigned rd, unsigned rt, unsigned rs)
{ emit(alu(Opcode::kDsrav, rd, rs, rt)); }

void Assembler::addu(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kAddu, rd, rs, rt)); }
void Assembler::daddu(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kDaddu, rd, rs, rt)); }
void Assembler::subu(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kSubu, rd, rs, rt)); }
void Assembler::dsubu(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kDsubu, rd, rs, rt)); }
void Assembler::and_(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kAnd, rd, rs, rt)); }
void Assembler::or_(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kOr, rd, rs, rt)); }
void Assembler::xor_(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kXor, rd, rs, rt)); }
void Assembler::nor(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kNor, rd, rs, rt)); }
void Assembler::slt(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kSlt, rd, rs, rt)); }
void Assembler::sltu(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kSltu, rd, rs, rt)); }
void Assembler::movz(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kMovz, rd, rs, rt)); }
void Assembler::movn(unsigned rd, unsigned rs, unsigned rt)
{ emit(alu(Opcode::kMovn, rd, rs, rt)); }
void Assembler::dmult(unsigned rs, unsigned rt)
{ emit(alu(Opcode::kDmult, 0, rs, rt)); }
void Assembler::dmultu(unsigned rs, unsigned rt)
{ emit(alu(Opcode::kDmultu, 0, rs, rt)); }
void Assembler::ddiv(unsigned rs, unsigned rt)
{ emit(alu(Opcode::kDdiv, 0, rs, rt)); }
void Assembler::ddivu(unsigned rs, unsigned rt)
{ emit(alu(Opcode::kDdivu, 0, rs, rt)); }
void Assembler::mfhi(unsigned rd) { emit(alu(Opcode::kMfhi, rd, 0, 0)); }
void Assembler::mflo(unsigned rd) { emit(alu(Opcode::kMflo, rd, 0, 0)); }

void Assembler::addiu(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajAddiu, rs, rt, imm)); }
void Assembler::daddiu(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajDaddiu, rs, rt, imm)); }
void Assembler::slti(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajSlti, rs, rt, imm)); }
void Assembler::sltiu(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajSltiu, rs, rt, imm)); }

void
Assembler::andi(unsigned rt, unsigned rs, std::uint32_t imm)
{
    if (imm > 0xffff)
        support::panic("andi immediate 0x%x too wide", imm);
    emit((kMajAndi << 26) | (rs << 21) | (rt << 16) | imm);
}

void
Assembler::ori(unsigned rt, unsigned rs, std::uint32_t imm)
{
    if (imm > 0xffff)
        support::panic("ori immediate 0x%x too wide", imm);
    emit((kMajOri << 26) | (rs << 21) | (rt << 16) | imm);
}

void
Assembler::xori(unsigned rt, unsigned rs, std::uint32_t imm)
{
    if (imm > 0xffff)
        support::panic("xori immediate 0x%x too wide", imm);
    emit((kMajXori << 26) | (rs << 21) | (rt << 16) | imm);
}

void Assembler::lui(unsigned rt, std::int32_t imm)
{ emit(iType(kMajLui, 0, rt, imm)); }

void
Assembler::branch(unsigned opcode, unsigned rs, unsigned rt, Label label)
{
    fixups_.push_back(
        {words_.size(), label.id, FixupKind::kBranch16});
    emit(iType(opcode, rs, rt, 0));
}

void
Assembler::regimm(unsigned sel, unsigned rs, Label label)
{
    fixups_.push_back(
        {words_.size(), label.id, FixupKind::kBranch16});
    emit(iType(kMajRegimm, rs, sel, 0));
}

void
Assembler::j(Label label)
{
    fixups_.push_back({words_.size(), label.id, FixupKind::kJump26});
    emit(jType(kMajJ, 0));
}

void
Assembler::jal(Label label)
{
    fixups_.push_back({words_.size(), label.id, FixupKind::kJump26});
    emit(jType(kMajJal, 0));
}

void Assembler::jr(unsigned rs) { emit(alu(Opcode::kJr, 0, rs, 0)); }
void Assembler::jalr(unsigned rd, unsigned rs)
{ emit(alu(Opcode::kJalr, rd, rs, 0)); }
void Assembler::beq(unsigned rs, unsigned rt, Label label)
{ branch(kMajBeq, rs, rt, label); }
void Assembler::bne(unsigned rs, unsigned rt, Label label)
{ branch(kMajBne, rs, rt, label); }
void Assembler::blez(unsigned rs, Label label)
{ branch(kMajBlez, rs, 0, label); }
void Assembler::bgtz(unsigned rs, Label label)
{ branch(kMajBgtz, rs, 0, label); }
void Assembler::bltz(unsigned rs, Label label) { regimm(0, rs, label); }
void Assembler::bgez(unsigned rs, Label label) { regimm(1, rs, label); }
void Assembler::syscall() { emit(alu(Opcode::kSyscall, 0, 0, 0)); }
void Assembler::break_() { emit(alu(Opcode::kBreak, 0, 0, 0)); }

void Assembler::lb(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajLb, rs, rt, imm)); }
void Assembler::lbu(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajLbu, rs, rt, imm)); }
void Assembler::lh(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajLh, rs, rt, imm)); }
void Assembler::lhu(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajLhu, rs, rt, imm)); }
void Assembler::lw(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajLw, rs, rt, imm)); }
void Assembler::lwu(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajLwu, rs, rt, imm)); }
void Assembler::ld(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajLd, rs, rt, imm)); }
void Assembler::sb(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajSb, rs, rt, imm)); }
void Assembler::sh(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajSh, rs, rt, imm)); }
void Assembler::sw(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajSw, rs, rt, imm)); }
void Assembler::sd(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajSd, rs, rt, imm)); }
void Assembler::lld(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajLld, rs, rt, imm)); }
void Assembler::scd(unsigned rt, unsigned rs, std::int32_t imm)
{ emit(iType(kMajScd, rs, rt, imm)); }

void Assembler::cgetbase(unsigned rd, unsigned cb)
{ emit(cop2(kC2GetBase, rd, cb, 0)); }
void Assembler::cgetlen(unsigned rd, unsigned cb)
{ emit(cop2(kC2GetLen, rd, cb, 0)); }
void Assembler::cgettag(unsigned rd, unsigned cb)
{ emit(cop2(kC2GetTag, rd, cb, 0)); }
void Assembler::cgetperm(unsigned rd, unsigned cb)
{ emit(cop2(kC2GetPerm, rd, cb, 0)); }
void Assembler::cgetpcc(unsigned cd, unsigned rd)
{ emit(cop2(kC2GetPcc, cd, rd, 0)); }

void Assembler::cincbase(unsigned cd, unsigned cb, unsigned rt)
{ emit(cop2(kC2IncBase, cd, cb, rt)); }
void Assembler::csetlen(unsigned cd, unsigned cb, unsigned rt)
{ emit(cop2(kC2SetLen, cd, cb, rt)); }
void Assembler::ccleartag(unsigned cd, unsigned cb)
{ emit(cop2(kC2ClearTag, cd, cb, 0)); }
void Assembler::candperm(unsigned cd, unsigned cb, unsigned rt)
{ emit(cop2(kC2AndPerm, cd, cb, rt)); }

void Assembler::ctoptr(unsigned rd, unsigned cb, unsigned ct)
{ emit(cop2(kC2ToPtr, rd, cb, ct)); }
void Assembler::cfromptr(unsigned cd, unsigned cb, unsigned rt)
{ emit(cop2(kC2FromPtr, cd, cb, rt)); }

void
Assembler::cbtu(unsigned cb, Label label)
{
    fixups_.push_back({words_.size(), label.id, FixupKind::kBranch16});
    emit(capBranch(/*on_set=*/false, cb, 0));
}

void
Assembler::cbts(unsigned cb, Label label)
{
    fixups_.push_back({words_.size(), label.id, FixupKind::kBranch16});
    emit(capBranch(/*on_set=*/true, cb, 0));
}

void Assembler::clc(unsigned cd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capCapMem(true, cd, cb, rt, imm)); }
void Assembler::csc(unsigned cd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capCapMem(false, cd, cb, rt, imm)); }

void Assembler::clb(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(true, false, 0, rd, cb, rt, imm)); }
void Assembler::clbu(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(true, true, 0, rd, cb, rt, imm)); }
void Assembler::clh(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(true, false, 1, rd, cb, rt, imm)); }
void Assembler::clhu(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(true, true, 1, rd, cb, rt, imm)); }
void Assembler::clw(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(true, false, 2, rd, cb, rt, imm)); }
void Assembler::clwu(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(true, true, 2, rd, cb, rt, imm)); }
void Assembler::cld(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(true, false, 3, rd, cb, rt, imm)); }
void Assembler::csb(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(false, false, 0, rd, cb, rt, imm)); }
void Assembler::csh(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(false, false, 1, rd, cb, rt, imm)); }
void Assembler::csw(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(false, false, 2, rd, cb, rt, imm)); }
void Assembler::csd(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm)
{ emit(capMem(false, false, 3, rd, cb, rt, imm)); }

void Assembler::clld(unsigned rd, unsigned cb, unsigned rt)
{ emit(cop2(kC2Lld, rd, cb, rt)); }
void Assembler::cscd(unsigned rd, unsigned cb, unsigned rt)
{ emit(cop2(kC2Scd, rd, cb, rt)); }

void Assembler::cjr(unsigned cb, unsigned rt)
{ emit(cop2(kC2Jr, cb, rt, 0)); }
void Assembler::cjalr(unsigned cd, unsigned cb, unsigned rt)
{ emit(cop2(kC2Jalr, cd, cb, rt)); }

void Assembler::cseal(unsigned cd, unsigned cb, unsigned ct)
{ emit(cop2(kC2Seal, cd, cb, ct)); }
void Assembler::cunseal(unsigned cd, unsigned cb, unsigned ct)
{ emit(cop2(kC2Unseal, cd, cb, ct)); }
void Assembler::cgettype(unsigned rd, unsigned cb)
{ emit(cop2(kC2GetType, rd, cb, 0)); }
void Assembler::ccall(unsigned cs, unsigned cb)
{ emit(cop2(kC2Call, cs, cb, 0)); }
void Assembler::creturn() { emit(cop2(kC2Return, 0, 0, 0)); }

} // namespace cheri::isa
