#include "isa/isa.h"

#include "support/logging.h"

namespace cheri::isa
{

const char *const kRegNames[32] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

bool
Instruction::hasDelaySlot() const
{
    switch (op) {
      case Opcode::kJ:
      case Opcode::kJal:
      case Opcode::kJr:
      case Opcode::kJalr:
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlez:
      case Opcode::kBgtz:
      case Opcode::kBltz:
      case Opcode::kBgez:
      case Opcode::kCBtu:
      case Opcode::kCBts:
      case Opcode::kCJr:
      case Opcode::kCJalr:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isCapMemory() const
{
    switch (op) {
      case Opcode::kCLc:
      case Opcode::kCSc:
      case Opcode::kClb:
      case Opcode::kClbu:
      case Opcode::kClh:
      case Opcode::kClhu:
      case Opcode::kClw:
      case Opcode::kClwu:
      case Opcode::kCld:
      case Opcode::kCsb:
      case Opcode::kCsh:
      case Opcode::kCsw:
      case Opcode::kCsd:
      case Opcode::kClld:
      case Opcode::kCscd:
        return true;
      default:
        return false;
    }
}

void
accessSizePanic(Opcode op)
{
    support::panic("accessSizeLog2 on non-memory opcode %s",
                   opcodeName(op));
}

bool
loadIsUnsigned(Opcode op)
{
    switch (op) {
      case Opcode::kLbu:
      case Opcode::kLhu:
      case Opcode::kLwu:
      case Opcode::kClbu:
      case Opcode::kClhu:
      case Opcode::kClwu:
        return true;
      default:
        return false;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kInvalid: return "invalid";
      case Opcode::kSll: return "sll";
      case Opcode::kSrl: return "srl";
      case Opcode::kSra: return "sra";
      case Opcode::kSllv: return "sllv";
      case Opcode::kSrlv: return "srlv";
      case Opcode::kSrav: return "srav";
      case Opcode::kDsll: return "dsll";
      case Opcode::kDsrl: return "dsrl";
      case Opcode::kDsra: return "dsra";
      case Opcode::kDsll32: return "dsll32";
      case Opcode::kDsrl32: return "dsrl32";
      case Opcode::kDsra32: return "dsra32";
      case Opcode::kDsllv: return "dsllv";
      case Opcode::kDsrlv: return "dsrlv";
      case Opcode::kDsrav: return "dsrav";
      case Opcode::kAddu: return "addu";
      case Opcode::kDaddu: return "daddu";
      case Opcode::kSubu: return "subu";
      case Opcode::kDsubu: return "dsubu";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kNor: return "nor";
      case Opcode::kSlt: return "slt";
      case Opcode::kSltu: return "sltu";
      case Opcode::kMovz: return "movz";
      case Opcode::kMovn: return "movn";
      case Opcode::kDmult: return "dmult";
      case Opcode::kDmultu: return "dmultu";
      case Opcode::kDdiv: return "ddiv";
      case Opcode::kDdivu: return "ddivu";
      case Opcode::kMfhi: return "mfhi";
      case Opcode::kMflo: return "mflo";
      case Opcode::kAddiu: return "addiu";
      case Opcode::kDaddiu: return "daddiu";
      case Opcode::kSlti: return "slti";
      case Opcode::kSltiu: return "sltiu";
      case Opcode::kAndi: return "andi";
      case Opcode::kOri: return "ori";
      case Opcode::kXori: return "xori";
      case Opcode::kLui: return "lui";
      case Opcode::kJ: return "j";
      case Opcode::kJal: return "jal";
      case Opcode::kJr: return "jr";
      case Opcode::kJalr: return "jalr";
      case Opcode::kBeq: return "beq";
      case Opcode::kBne: return "bne";
      case Opcode::kBlez: return "blez";
      case Opcode::kBgtz: return "bgtz";
      case Opcode::kBltz: return "bltz";
      case Opcode::kBgez: return "bgez";
      case Opcode::kSyscall: return "syscall";
      case Opcode::kBreak: return "break";
      case Opcode::kLb: return "lb";
      case Opcode::kLbu: return "lbu";
      case Opcode::kLh: return "lh";
      case Opcode::kLhu: return "lhu";
      case Opcode::kLw: return "lw";
      case Opcode::kLwu: return "lwu";
      case Opcode::kLd: return "ld";
      case Opcode::kSb: return "sb";
      case Opcode::kSh: return "sh";
      case Opcode::kSw: return "sw";
      case Opcode::kSd: return "sd";
      case Opcode::kLld: return "lld";
      case Opcode::kScd: return "scd";
      case Opcode::kCGetBase: return "cgetbase";
      case Opcode::kCGetLen: return "cgetlen";
      case Opcode::kCGetTag: return "cgettag";
      case Opcode::kCGetPerm: return "cgetperm";
      case Opcode::kCGetPcc: return "cgetpcc";
      case Opcode::kCIncBase: return "cincbase";
      case Opcode::kCSetLen: return "csetlen";
      case Opcode::kCClearTag: return "ccleartag";
      case Opcode::kCAndPerm: return "candperm";
      case Opcode::kCToPtr: return "ctoptr";
      case Opcode::kCFromPtr: return "cfromptr";
      case Opcode::kCBtu: return "cbtu";
      case Opcode::kCBts: return "cbts";
      case Opcode::kCLc: return "clc";
      case Opcode::kCSc: return "csc";
      case Opcode::kClb: return "clb";
      case Opcode::kClbu: return "clbu";
      case Opcode::kClh: return "clh";
      case Opcode::kClhu: return "clhu";
      case Opcode::kClw: return "clw";
      case Opcode::kClwu: return "clwu";
      case Opcode::kCld: return "cld";
      case Opcode::kCsb: return "csb";
      case Opcode::kCsh: return "csh";
      case Opcode::kCsw: return "csw";
      case Opcode::kCsd: return "csd";
      case Opcode::kClld: return "clld";
      case Opcode::kCscd: return "cscd";
      case Opcode::kCJr: return "cjr";
      case Opcode::kCJalr: return "cjalr";
      case Opcode::kCSeal: return "cseal";
      case Opcode::kCUnseal: return "cunseal";
      case Opcode::kCGetType: return "cgettype";
      case Opcode::kCCall: return "ccall";
      case Opcode::kCReturn: return "creturn";
    }
    return "unknown";
}

} // namespace cheri::isa
