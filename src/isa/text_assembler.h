/**
 * @file
 * A text-syntax assembler on top of the structured Assembler, so
 * guest programs can be written as ordinary .s files and run with the
 * cheri-run tool. Supports the full implemented instruction set
 * (MIPS subset + every CHERI instruction), labels, common pseudo-ops
 * and data words.
 *
 * Syntax (one statement per line):
 *
 *   # comment           ; comment          // comment
 *   label:              (optionally followed by an instruction)
 *   daddiu $t0, $t1, -4
 *   ld     $t0, 8($sp)
 *   cincbase $c1, $c0, $t0
 *   cld    $t0, $t1, 8($c1)     # rd, index-register, offset(cap)
 *   clc    $c2, $t0, 32($c1)
 *   cjr    $ra($c4)
 *   cjalr  $c4, $t3($c2)
 *   beq    $t0, $zero, done
 *   li     $t0, 0x1000          # pseudo; li64 for 64-bit constants
 *   .word  0x0000000d
 *
 * Registers are written $zero/$t0/... or $0..$31; capability
 * registers are $c0..$c31.
 */

#ifndef CHERI_ISA_TEXT_ASSEMBLER_H
#define CHERI_ISA_TEXT_ASSEMBLER_H

#include <cstdint>
#include <string>
#include <vector>

namespace cheri::isa
{

/** One assembly diagnostic. */
struct AsmError
{
    unsigned line = 0; ///< 1-based source line
    std::string message;
};

/** Result of assembling a source file. */
struct AsmResult
{
    std::vector<std::uint32_t> words;
    std::vector<AsmError> errors;

    bool ok() const { return errors.empty(); }
};

/** Assemble source text for code loaded at base_addr. */
AsmResult assembleText(const std::string &source,
                       std::uint64_t base_addr);

} // namespace cheri::isa

#endif // CHERI_ISA_TEXT_ASSEMBLER_H
