/**
 * @file
 * A small structured assembler for building guest programs in C++.
 * Each method emits one instruction (or a documented pseudo-op
 * sequence); labels provide forward references for branches and jumps.
 * This substitutes for the paper's LLVM/Clang CHERI back end: guest
 * code for the examples and tests is written against this API.
 */

#ifndef CHERI_ISA_ASSEMBLER_H
#define CHERI_ISA_ASSEMBLER_H

#include <cstdint>
#include <vector>

#include "isa/encoder.h"
#include "isa/isa.h"

namespace cheri::isa
{

/** MIPS ABI register numbers for readable guest code. */
namespace reg
{
constexpr unsigned zero = 0, at = 1, v0 = 2, v1 = 3;
constexpr unsigned a0 = 4, a1 = 5, a2 = 6, a3 = 7;
constexpr unsigned t0 = 8, t1 = 9, t2 = 10, t3 = 11;
constexpr unsigned t4 = 12, t5 = 13, t6 = 14, t7 = 15;
constexpr unsigned s0 = 16, s1 = 17, s2 = 18, s3 = 19;
constexpr unsigned s4 = 20, s5 = 21, s6 = 22, s7 = 23;
constexpr unsigned t8 = 24, t9 = 25, k0 = 26, k1 = 27;
constexpr unsigned gp = 28, sp = 29, fp = 30, ra = 31;
} // namespace reg

/**
 * Incremental program builder. Typical use:
 * @code
 *   Assembler a(0x1000);
 *   auto loop = a.newLabel();
 *   a.li(reg::t0, 10);
 *   a.bind(loop);
 *   a.daddiu(reg::t0, reg::t0, -1);
 *   a.bne(reg::t0, reg::zero, loop);
 *   a.nop();                       // delay slot
 *   std::vector<uint32_t> code = a.finish();
 * @endcode
 */
class Assembler
{
  public:
    /** Opaque label handle. */
    struct Label
    {
        unsigned id = ~0u;
    };

    /** Create an assembler for code loaded at base_addr. */
    explicit Assembler(std::uint64_t base_addr = 0);

    /** Allocate a label for later bind()/branch use. */
    Label newLabel();

    /** Bind a label to the current position. */
    void bind(Label label);

    /** Address of the next instruction to be emitted. */
    std::uint64_t here() const;

    /** Finalize: patch all label references and return the words. */
    std::vector<std::uint32_t> finish();

    // --- raw emission ---
    void emit(std::uint32_t word);

    // --- pseudo instructions ---
    void nop() { emit(0); }
    void move(unsigned rd, unsigned rs);
    /** Load a 32-bit signed constant (1-2 instructions). */
    void li(unsigned rd, std::int32_t value);
    /** Load an arbitrary 64-bit constant (up to 6 instructions). */
    void li64(unsigned rd, std::uint64_t value);
    /** Unconditional branch (beq zero, zero). */
    void b(Label label);

    // --- shifts ---
    void sll(unsigned rd, unsigned rt, unsigned sa);
    void srl(unsigned rd, unsigned rt, unsigned sa);
    void sra(unsigned rd, unsigned rt, unsigned sa);
    void dsll(unsigned rd, unsigned rt, unsigned sa);
    void dsrl(unsigned rd, unsigned rt, unsigned sa);
    void dsra(unsigned rd, unsigned rt, unsigned sa);
    void dsll32(unsigned rd, unsigned rt, unsigned sa);
    void dsrl32(unsigned rd, unsigned rt, unsigned sa);
    void sllv(unsigned rd, unsigned rt, unsigned rs);
    void srlv(unsigned rd, unsigned rt, unsigned rs);
    void srav(unsigned rd, unsigned rt, unsigned rs);
    void dsllv(unsigned rd, unsigned rt, unsigned rs);
    void dsrlv(unsigned rd, unsigned rt, unsigned rs);
    void dsrav(unsigned rd, unsigned rt, unsigned rs);

    // --- ALU register ---
    void addu(unsigned rd, unsigned rs, unsigned rt);
    void daddu(unsigned rd, unsigned rs, unsigned rt);
    void subu(unsigned rd, unsigned rs, unsigned rt);
    void dsubu(unsigned rd, unsigned rs, unsigned rt);
    void and_(unsigned rd, unsigned rs, unsigned rt);
    void or_(unsigned rd, unsigned rs, unsigned rt);
    void xor_(unsigned rd, unsigned rs, unsigned rt);
    void nor(unsigned rd, unsigned rs, unsigned rt);
    void slt(unsigned rd, unsigned rs, unsigned rt);
    void sltu(unsigned rd, unsigned rs, unsigned rt);
    void movz(unsigned rd, unsigned rs, unsigned rt);
    void movn(unsigned rd, unsigned rs, unsigned rt);
    void dmult(unsigned rs, unsigned rt);
    void dmultu(unsigned rs, unsigned rt);
    void ddiv(unsigned rs, unsigned rt);
    void ddivu(unsigned rs, unsigned rt);
    void mfhi(unsigned rd);
    void mflo(unsigned rd);

    // --- ALU immediate ---
    void addiu(unsigned rt, unsigned rs, std::int32_t imm);
    void daddiu(unsigned rt, unsigned rs, std::int32_t imm);
    void slti(unsigned rt, unsigned rs, std::int32_t imm);
    void sltiu(unsigned rt, unsigned rs, std::int32_t imm);
    void andi(unsigned rt, unsigned rs, std::uint32_t imm);
    void ori(unsigned rt, unsigned rs, std::uint32_t imm);
    void xori(unsigned rt, unsigned rs, std::uint32_t imm);
    void lui(unsigned rt, std::int32_t imm);

    // --- control flow ---
    void j(Label label);
    void jal(Label label);
    void jr(unsigned rs);
    void jalr(unsigned rd, unsigned rs);
    void beq(unsigned rs, unsigned rt, Label label);
    void bne(unsigned rs, unsigned rt, Label label);
    void blez(unsigned rs, Label label);
    void bgtz(unsigned rs, Label label);
    void bltz(unsigned rs, Label label);
    void bgez(unsigned rs, Label label);
    void syscall();
    void break_();

    // --- legacy memory (via C0) ---
    void lb(unsigned rt, unsigned rs, std::int32_t imm);
    void lbu(unsigned rt, unsigned rs, std::int32_t imm);
    void lh(unsigned rt, unsigned rs, std::int32_t imm);
    void lhu(unsigned rt, unsigned rs, std::int32_t imm);
    void lw(unsigned rt, unsigned rs, std::int32_t imm);
    void lwu(unsigned rt, unsigned rs, std::int32_t imm);
    void ld(unsigned rt, unsigned rs, std::int32_t imm);
    void sb(unsigned rt, unsigned rs, std::int32_t imm);
    void sh(unsigned rt, unsigned rs, std::int32_t imm);
    void sw(unsigned rt, unsigned rs, std::int32_t imm);
    void sd(unsigned rt, unsigned rs, std::int32_t imm);
    void lld(unsigned rt, unsigned rs, std::int32_t imm);
    void scd(unsigned rt, unsigned rs, std::int32_t imm);

    // --- CHERI: inspection ---
    void cgetbase(unsigned rd, unsigned cb);
    void cgetlen(unsigned rd, unsigned cb);
    void cgettag(unsigned rd, unsigned cb);
    void cgetperm(unsigned rd, unsigned cb);
    void cgetpcc(unsigned cd, unsigned rd);

    // --- CHERI: manipulation ---
    void cincbase(unsigned cd, unsigned cb, unsigned rt);
    void csetlen(unsigned cd, unsigned cb, unsigned rt);
    void ccleartag(unsigned cd, unsigned cb);
    void candperm(unsigned cd, unsigned cb, unsigned rt);

    // --- CHERI: pointer interop ---
    void ctoptr(unsigned rd, unsigned cb, unsigned ct);
    void cfromptr(unsigned cd, unsigned cb, unsigned rt);

    // --- CHERI: tag branches ---
    void cbtu(unsigned cb, Label label);
    void cbts(unsigned cb, Label label);

    // --- CHERI: memory ---
    void clc(unsigned cd, unsigned cb, unsigned rt, std::int32_t imm);
    void csc(unsigned cd, unsigned cb, unsigned rt, std::int32_t imm);
    void clb(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void clbu(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void clh(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void clhu(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void clw(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void clwu(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void cld(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void csb(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void csh(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void csw(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void csd(unsigned rd, unsigned cb, unsigned rt, std::int32_t imm);
    void clld(unsigned rd, unsigned cb, unsigned rt);
    void cscd(unsigned rd, unsigned cb, unsigned rt);

    // --- CHERI: jumps ---
    void cjr(unsigned cb, unsigned rt);
    void cjalr(unsigned cd, unsigned cb, unsigned rt);

    // --- CHERI: sealing and domain crossing (Section 11) ---
    void cseal(unsigned cd, unsigned cb, unsigned ct);
    void cunseal(unsigned cd, unsigned cb, unsigned ct);
    void cgettype(unsigned rd, unsigned cb);
    void ccall(unsigned cs, unsigned cb);
    void creturn();

  private:
    enum class FixupKind { kBranch16, kJump26 };

    struct Fixup
    {
        std::size_t word_index;
        unsigned label_id;
        FixupKind kind;
    };

    void branch(unsigned opcode, unsigned rs, unsigned rt, Label label);
    void regimm(unsigned sel, unsigned rs, Label label);

    std::uint64_t base_addr_;
    std::vector<std::uint32_t> words_;
    std::vector<std::int64_t> label_offsets_; ///< -1 = unbound
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace cheri::isa

#endif // CHERI_ISA_ASSEMBLER_H
