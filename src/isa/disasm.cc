#include "isa/disasm.h"

#include "support/logging.h"

namespace cheri::isa
{

namespace
{

std::string
r(unsigned index)
{
    return kRegNames[index & 31];
}

std::string
c(unsigned index)
{
    return support::format("c%u", index & 31);
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    using support::format;
    const char *name = opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::kInvalid:
        return format("invalid(0x%08x)", inst.raw);
      case Opcode::kSll:
        if (inst.raw == 0)
            return "nop";
        [[fallthrough]];
      case Opcode::kSrl:
      case Opcode::kSra:
      case Opcode::kDsll:
      case Opcode::kDsrl:
      case Opcode::kDsra:
      case Opcode::kDsll32:
      case Opcode::kDsrl32:
      case Opcode::kDsra32:
        return format("%s %s, %s, %u", name, r(inst.rd).c_str(),
                      r(inst.rt).c_str(), inst.sa);
      case Opcode::kSllv:
      case Opcode::kSrlv:
      case Opcode::kSrav:
      case Opcode::kDsllv:
      case Opcode::kDsrlv:
      case Opcode::kDsrav:
        return format("%s %s, %s, %s", name, r(inst.rd).c_str(),
                      r(inst.rt).c_str(), r(inst.rs).c_str());
      case Opcode::kAddu:
      case Opcode::kDaddu:
      case Opcode::kSubu:
      case Opcode::kDsubu:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kNor:
      case Opcode::kSlt:
      case Opcode::kSltu:
      case Opcode::kMovz:
      case Opcode::kMovn:
        return format("%s %s, %s, %s", name, r(inst.rd).c_str(),
                      r(inst.rs).c_str(), r(inst.rt).c_str());
      case Opcode::kDmult:
      case Opcode::kDmultu:
      case Opcode::kDdiv:
      case Opcode::kDdivu:
        return format("%s %s, %s", name, r(inst.rs).c_str(),
                      r(inst.rt).c_str());
      case Opcode::kMfhi:
      case Opcode::kMflo:
        return format("%s %s", name, r(inst.rd).c_str());
      case Opcode::kAddiu:
      case Opcode::kDaddiu:
      case Opcode::kSlti:
      case Opcode::kSltiu:
        return format("%s %s, %s, %d", name, r(inst.rt).c_str(),
                      r(inst.rs).c_str(), inst.imm);
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
        return format("%s %s, %s, 0x%x", name, r(inst.rt).c_str(),
                      r(inst.rs).c_str(), inst.imm & 0xffff);
      case Opcode::kLui:
        return format("%s %s, 0x%x", name, r(inst.rt).c_str(),
                      inst.imm & 0xffff);
      case Opcode::kJ:
      case Opcode::kJal:
        return format("%s 0x%x", name, inst.target << 2);
      case Opcode::kJr:
        return format("%s %s", name, r(inst.rs).c_str());
      case Opcode::kJalr:
        return format("%s %s, %s", name, r(inst.rd).c_str(),
                      r(inst.rs).c_str());
      case Opcode::kBeq:
      case Opcode::kBne:
        return format("%s %s, %s, %d", name, r(inst.rs).c_str(),
                      r(inst.rt).c_str(), inst.imm);
      case Opcode::kBlez:
      case Opcode::kBgtz:
      case Opcode::kBltz:
      case Opcode::kBgez:
        return format("%s %s, %d", name, r(inst.rs).c_str(), inst.imm);
      case Opcode::kSyscall:
      case Opcode::kBreak:
        return name;
      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLw:
      case Opcode::kLwu:
      case Opcode::kLd:
      case Opcode::kSb:
      case Opcode::kSh:
      case Opcode::kSw:
      case Opcode::kSd:
      case Opcode::kLld:
      case Opcode::kScd:
        return format("%s %s, %d(%s)", name, r(inst.rt).c_str(),
                      inst.imm, r(inst.rs).c_str());
      case Opcode::kCGetBase:
      case Opcode::kCGetLen:
      case Opcode::kCGetTag:
      case Opcode::kCGetPerm:
        return format("%s %s, %s", name, r(inst.rd).c_str(),
                      c(inst.cb).c_str());
      case Opcode::kCGetPcc:
        return format("%s %s, %s", name, c(inst.cd).c_str(),
                      r(inst.rd).c_str());
      case Opcode::kCIncBase:
      case Opcode::kCSetLen:
      case Opcode::kCAndPerm:
      case Opcode::kCFromPtr:
        return format("%s %s, %s, %s", name, c(inst.cd).c_str(),
                      c(inst.cb).c_str(), r(inst.rt).c_str());
      case Opcode::kCClearTag:
        return format("%s %s, %s", name, c(inst.cd).c_str(),
                      c(inst.cb).c_str());
      case Opcode::kCToPtr:
        return format("%s %s, %s, %s", name, r(inst.rd).c_str(),
                      c(inst.cb).c_str(), c(inst.ct).c_str());
      case Opcode::kCBtu:
      case Opcode::kCBts:
        return format("%s %s, %d", name, c(inst.cb).c_str(), inst.imm);
      case Opcode::kCLc:
      case Opcode::kCSc:
        return format("%s %s, %s, %d(%s)", name, c(inst.cd).c_str(),
                      r(inst.rt).c_str(), inst.imm, c(inst.cb).c_str());
      case Opcode::kClb:
      case Opcode::kClbu:
      case Opcode::kClh:
      case Opcode::kClhu:
      case Opcode::kClw:
      case Opcode::kClwu:
      case Opcode::kCld:
      case Opcode::kCsb:
      case Opcode::kCsh:
      case Opcode::kCsw:
      case Opcode::kCsd:
        return format("%s %s, %s, %d(%s)", name, r(inst.rd).c_str(),
                      r(inst.rt).c_str(), inst.imm, c(inst.cb).c_str());
      case Opcode::kClld:
      case Opcode::kCscd:
        return format("%s %s, %s(%s)", name, r(inst.rd).c_str(),
                      r(inst.rt).c_str(), c(inst.cb).c_str());
      case Opcode::kCJr:
        return format("%s %s(%s)", name, r(inst.rt).c_str(),
                      c(inst.cb).c_str());
      case Opcode::kCJalr:
        return format("%s %s, %s(%s)", name, c(inst.cd).c_str(),
                      r(inst.rt).c_str(), c(inst.cb).c_str());
      case Opcode::kCSeal:
      case Opcode::kCUnseal:
        return format("%s %s, %s, %s", name, c(inst.cd).c_str(),
                      c(inst.cb).c_str(), c(inst.ct).c_str());
      case Opcode::kCGetType:
        return format("%s %s, %s", name, r(inst.rd).c_str(),
                      c(inst.cb).c_str());
      case Opcode::kCCall:
        return format("%s %s, %s", name, c(inst.cb).c_str(),
                      c(inst.ct).c_str());
      case Opcode::kCReturn:
        return name;
    }
    return name;
}

} // namespace cheri::isa
