#include "isa/decoder.h"

#include "support/bits.h"

namespace cheri::isa
{

namespace
{

using support::bits;
using support::signExtend;

Instruction
decodeSpecial(std::uint32_t word, Instruction inst)
{
    unsigned funct = bits(word, 0, 6);
    inst.rs = static_cast<std::uint8_t>(bits(word, 21, 5));
    inst.rt = static_cast<std::uint8_t>(bits(word, 16, 5));
    inst.rd = static_cast<std::uint8_t>(bits(word, 11, 5));
    inst.sa = static_cast<std::uint8_t>(bits(word, 6, 5));
    switch (funct) {
      case 0x00: inst.op = Opcode::kSll; break;
      case 0x02: inst.op = Opcode::kSrl; break;
      case 0x03: inst.op = Opcode::kSra; break;
      case 0x04: inst.op = Opcode::kSllv; break;
      case 0x06: inst.op = Opcode::kSrlv; break;
      case 0x07: inst.op = Opcode::kSrav; break;
      case 0x08: inst.op = Opcode::kJr; break;
      case 0x09: inst.op = Opcode::kJalr; break;
      case 0x0a: inst.op = Opcode::kMovz; break;
      case 0x0b: inst.op = Opcode::kMovn; break;
      case 0x0c: inst.op = Opcode::kSyscall; break;
      case 0x0d: inst.op = Opcode::kBreak; break;
      case 0x10: inst.op = Opcode::kMfhi; break;
      case 0x12: inst.op = Opcode::kMflo; break;
      case 0x14: inst.op = Opcode::kDsllv; break;
      case 0x16: inst.op = Opcode::kDsrlv; break;
      case 0x17: inst.op = Opcode::kDsrav; break;
      case 0x1c: inst.op = Opcode::kDmult; break;
      case 0x1d: inst.op = Opcode::kDmultu; break;
      case 0x1e: inst.op = Opcode::kDdiv; break;
      case 0x1f: inst.op = Opcode::kDdivu; break;
      case 0x21: inst.op = Opcode::kAddu; break;
      case 0x23: inst.op = Opcode::kSubu; break;
      case 0x24: inst.op = Opcode::kAnd; break;
      case 0x25: inst.op = Opcode::kOr; break;
      case 0x26: inst.op = Opcode::kXor; break;
      case 0x27: inst.op = Opcode::kNor; break;
      case 0x2a: inst.op = Opcode::kSlt; break;
      case 0x2b: inst.op = Opcode::kSltu; break;
      case 0x2d: inst.op = Opcode::kDaddu; break;
      case 0x2f: inst.op = Opcode::kDsubu; break;
      case 0x38: inst.op = Opcode::kDsll; break;
      case 0x3a: inst.op = Opcode::kDsrl; break;
      case 0x3b: inst.op = Opcode::kDsra; break;
      case 0x3c: inst.op = Opcode::kDsll32; break;
      case 0x3e: inst.op = Opcode::kDsrl32; break;
      case 0x3f: inst.op = Opcode::kDsra32; break;
      default: inst.op = Opcode::kInvalid; break;
    }
    return inst;
}

Instruction
decodeCop2(std::uint32_t word, Instruction inst)
{
    unsigned sub = bits(word, 21, 5);
    unsigned f1 = bits(word, 16, 5);
    unsigned f2 = bits(word, 11, 5);
    unsigned f3 = bits(word, 6, 5);
    switch (sub) {
      case kC2GetBase:
      case kC2GetLen:
      case kC2GetTag:
      case kC2GetPerm:
        inst.rd = static_cast<std::uint8_t>(f1);
        inst.cb = static_cast<std::uint8_t>(f2);
        inst.op = sub == kC2GetBase  ? Opcode::kCGetBase
                : sub == kC2GetLen   ? Opcode::kCGetLen
                : sub == kC2GetTag   ? Opcode::kCGetTag
                                     : Opcode::kCGetPerm;
        break;
      case kC2GetPcc:
        inst.cd = static_cast<std::uint8_t>(f1);
        inst.rd = static_cast<std::uint8_t>(f2);
        inst.op = Opcode::kCGetPcc;
        break;
      case kC2IncBase:
      case kC2SetLen:
      case kC2AndPerm:
      case kC2FromPtr:
        inst.cd = static_cast<std::uint8_t>(f1);
        inst.cb = static_cast<std::uint8_t>(f2);
        inst.rt = static_cast<std::uint8_t>(f3);
        inst.op = sub == kC2IncBase ? Opcode::kCIncBase
                : sub == kC2SetLen  ? Opcode::kCSetLen
                : sub == kC2AndPerm ? Opcode::kCAndPerm
                                    : Opcode::kCFromPtr;
        break;
      case kC2ClearTag:
        inst.cd = static_cast<std::uint8_t>(f1);
        inst.cb = static_cast<std::uint8_t>(f2);
        inst.op = Opcode::kCClearTag;
        break;
      case kC2ToPtr:
        inst.rd = static_cast<std::uint8_t>(f1);
        inst.cb = static_cast<std::uint8_t>(f2);
        inst.ct = static_cast<std::uint8_t>(f3);
        inst.op = Opcode::kCToPtr;
        break;
      case kC2Btu:
      case kC2Bts:
        inst.cb = static_cast<std::uint8_t>(f1);
        inst.imm = static_cast<std::int32_t>(signExtend(word, 16));
        inst.op = sub == kC2Btu ? Opcode::kCBtu : Opcode::kCBts;
        break;
      case kC2Jr:
        inst.cb = static_cast<std::uint8_t>(f1);
        inst.rt = static_cast<std::uint8_t>(f2);
        inst.op = Opcode::kCJr;
        break;
      case kC2Jalr:
        inst.cd = static_cast<std::uint8_t>(f1);
        inst.cb = static_cast<std::uint8_t>(f2);
        inst.rt = static_cast<std::uint8_t>(f3);
        inst.op = Opcode::kCJalr;
        break;
      case kC2Lld:
      case kC2Scd:
        inst.rd = static_cast<std::uint8_t>(f1);
        inst.cb = static_cast<std::uint8_t>(f2);
        inst.rt = static_cast<std::uint8_t>(f3);
        inst.op = sub == kC2Lld ? Opcode::kClld : Opcode::kCscd;
        break;
      case kC2Seal:
      case kC2Unseal:
        inst.cd = static_cast<std::uint8_t>(f1);
        inst.cb = static_cast<std::uint8_t>(f2);
        inst.ct = static_cast<std::uint8_t>(f3);
        inst.op = sub == kC2Seal ? Opcode::kCSeal : Opcode::kCUnseal;
        break;
      case kC2GetType:
        inst.rd = static_cast<std::uint8_t>(f1);
        inst.cb = static_cast<std::uint8_t>(f2);
        inst.op = Opcode::kCGetType;
        break;
      case kC2Call:
        inst.cb = static_cast<std::uint8_t>(f1); // sealed code
        inst.ct = static_cast<std::uint8_t>(f2); // sealed data
        inst.op = Opcode::kCCall;
        break;
      case kC2Return:
        inst.op = Opcode::kCReturn;
        break;
      default:
        inst.op = Opcode::kInvalid;
        break;
    }
    return inst;
}

Instruction
decodeCapMem(std::uint32_t word, bool is_load, Instruction inst)
{
    inst.rd = static_cast<std::uint8_t>(bits(word, 21, 5));
    inst.cb = static_cast<std::uint8_t>(bits(word, 16, 5));
    inst.rt = static_cast<std::uint8_t>(bits(word, 11, 5));
    unsigned size = bits(word, 0, 2);
    bool zero_extend = bits(word, 2, 1) != 0;
    std::int32_t scaled =
        static_cast<std::int32_t>(signExtend(bits(word, 3, 8), 8));
    inst.imm = scaled * (1 << size);
    if (is_load) {
        static const Opcode signed_ops[4] = {Opcode::kClb, Opcode::kClh,
                                             Opcode::kClw, Opcode::kCld};
        static const Opcode unsigned_ops[4] = {
            Opcode::kClbu, Opcode::kClhu, Opcode::kClwu, Opcode::kCld};
        inst.op = zero_extend ? unsigned_ops[size] : signed_ops[size];
    } else {
        static const Opcode store_ops[4] = {Opcode::kCsb, Opcode::kCsh,
                                            Opcode::kCsw, Opcode::kCsd};
        inst.op = store_ops[size];
    }
    return inst;
}

Instruction
decodeCapCapMem(std::uint32_t word, bool is_load, Instruction inst)
{
    inst.cd = static_cast<std::uint8_t>(bits(word, 21, 5));
    inst.cb = static_cast<std::uint8_t>(bits(word, 16, 5));
    inst.rt = static_cast<std::uint8_t>(bits(word, 11, 5));
    std::int32_t scaled =
        static_cast<std::int32_t>(signExtend(bits(word, 0, 11), 11));
    inst.imm = scaled * 32;
    inst.op = is_load ? Opcode::kCLc : Opcode::kCSc;
    return inst;
}

} // namespace

Instruction
decode(std::uint32_t word)
{
    Instruction inst;
    inst.raw = word;
    unsigned major = bits(word, 26, 6);

    switch (major) {
      case kMajSpecial:
        return decodeSpecial(word, inst);
      case kMajRegimm: {
        unsigned sel = bits(word, 16, 5);
        inst.rs = static_cast<std::uint8_t>(bits(word, 21, 5));
        inst.imm = static_cast<std::int32_t>(signExtend(word, 16));
        inst.op = sel == 0   ? Opcode::kBltz
                : sel == 1   ? Opcode::kBgez
                             : Opcode::kInvalid;
        return inst;
      }
      case kMajJ:
      case kMajJal:
        inst.target = static_cast<std::uint32_t>(bits(word, 0, 26));
        inst.op = major == kMajJ ? Opcode::kJ : Opcode::kJal;
        return inst;
      case kMajCop2:
        return decodeCop2(word, inst);
      case kMajClx:
        return decodeCapMem(word, /*is_load=*/true, inst);
      case kMajCsx:
        return decodeCapMem(word, /*is_load=*/false, inst);
      case kMajClc:
        return decodeCapCapMem(word, /*is_load=*/true, inst);
      case kMajCsc:
        return decodeCapCapMem(word, /*is_load=*/false, inst);
      default:
        break;
    }

    // Remaining majors are I-type.
    inst.rs = static_cast<std::uint8_t>(bits(word, 21, 5));
    inst.rt = static_cast<std::uint8_t>(bits(word, 16, 5));
    inst.imm = static_cast<std::int32_t>(signExtend(word, 16));
    switch (major) {
      case kMajBeq: inst.op = Opcode::kBeq; break;
      case kMajBne: inst.op = Opcode::kBne; break;
      case kMajBlez: inst.op = Opcode::kBlez; break;
      case kMajBgtz: inst.op = Opcode::kBgtz; break;
      case kMajAddiu: inst.op = Opcode::kAddiu; break;
      case kMajSlti: inst.op = Opcode::kSlti; break;
      case kMajSltiu: inst.op = Opcode::kSltiu; break;
      case kMajAndi: inst.op = Opcode::kAndi; break;
      case kMajOri: inst.op = Opcode::kOri; break;
      case kMajXori: inst.op = Opcode::kXori; break;
      case kMajLui: inst.op = Opcode::kLui; break;
      case kMajDaddiu: inst.op = Opcode::kDaddiu; break;
      case kMajLb: inst.op = Opcode::kLb; break;
      case kMajLh: inst.op = Opcode::kLh; break;
      case kMajLw: inst.op = Opcode::kLw; break;
      case kMajLbu: inst.op = Opcode::kLbu; break;
      case kMajLhu: inst.op = Opcode::kLhu; break;
      case kMajLwu: inst.op = Opcode::kLwu; break;
      case kMajLd: inst.op = Opcode::kLd; break;
      case kMajSb: inst.op = Opcode::kSb; break;
      case kMajSh: inst.op = Opcode::kSh; break;
      case kMajSw: inst.op = Opcode::kSw; break;
      case kMajSd: inst.op = Opcode::kSd; break;
      case kMajLld: inst.op = Opcode::kLld; break;
      case kMajScd: inst.op = Opcode::kScd; break;
      default: inst.op = Opcode::kInvalid; break;
    }
    return inst;
}

void
decodeLine(const std::uint8_t *bytes, Instruction *out,
           std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t word = 0;
        for (unsigned b = 0; b < 4; ++b) {
            word |= static_cast<std::uint32_t>(bytes[4 * i + b])
                    << (8 * b);
        }
        out[i] = decode(word);
    }
}

} // namespace cheri::isa
