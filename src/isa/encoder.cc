#include "isa/encoder.h"

#include "support/logging.h"

namespace cheri::isa::encode
{

namespace
{

void
checkReg(unsigned r)
{
    if (r >= 32)
        support::panic("register index %u out of range", r);
}

void
checkSignedField(std::int32_t value, unsigned bits, const char *what)
{
    std::int32_t lo = -(1 << (bits - 1));
    std::int32_t hi = (1 << (bits - 1)) - 1;
    if (value < lo || value > hi)
        support::panic("%s %d does not fit %u signed bits", what, value,
                       bits);
}

} // namespace

std::uint32_t
rType(unsigned funct, unsigned rs, unsigned rt, unsigned rd, unsigned sa)
{
    checkReg(rs);
    checkReg(rt);
    checkReg(rd);
    if (sa >= 32) {
        support::panic("shift amount %u does not fit the sa field; "
                       "use the *32 shift forms", sa);
    }
    return (0u << 26) | (rs << 21) | (rt << 16) | (rd << 11) |
           ((sa & 31) << 6) | (funct & 63);
}

std::uint32_t
iType(unsigned opcode, unsigned rs, unsigned rt, std::int32_t imm)
{
    checkReg(rs);
    checkReg(rt);
    checkSignedField(imm, 16, "immediate");
    return (opcode << 26) | (rs << 21) | (rt << 16) |
           (static_cast<std::uint32_t>(imm) & 0xffff);
}

std::uint32_t
jType(unsigned opcode, std::uint32_t target)
{
    return (opcode << 26) | (target & 0x03ffffff);
}

std::uint32_t
alu(Opcode op, unsigned rd, unsigned rs, unsigned rt, unsigned sa)
{
    switch (op) {
      case Opcode::kSll: return rType(0x00, 0, rt, rd, sa);
      case Opcode::kSrl: return rType(0x02, 0, rt, rd, sa);
      case Opcode::kSra: return rType(0x03, 0, rt, rd, sa);
      case Opcode::kSllv: return rType(0x04, rs, rt, rd);
      case Opcode::kSrlv: return rType(0x06, rs, rt, rd);
      case Opcode::kSrav: return rType(0x07, rs, rt, rd);
      case Opcode::kJr: return rType(0x08, rs, 0, 0);
      case Opcode::kJalr: return rType(0x09, rs, 0, rd);
      case Opcode::kMovz: return rType(0x0a, rs, rt, rd);
      case Opcode::kMovn: return rType(0x0b, rs, rt, rd);
      case Opcode::kSyscall: return rType(0x0c, 0, 0, 0);
      case Opcode::kBreak: return rType(0x0d, 0, 0, 0);
      case Opcode::kMfhi: return rType(0x10, 0, 0, rd);
      case Opcode::kMflo: return rType(0x12, 0, 0, rd);
      case Opcode::kDsllv: return rType(0x14, rs, rt, rd);
      case Opcode::kDsrlv: return rType(0x16, rs, rt, rd);
      case Opcode::kDsrav: return rType(0x17, rs, rt, rd);
      case Opcode::kDmult: return rType(0x1c, rs, rt, 0);
      case Opcode::kDmultu: return rType(0x1d, rs, rt, 0);
      case Opcode::kDdiv: return rType(0x1e, rs, rt, 0);
      case Opcode::kDdivu: return rType(0x1f, rs, rt, 0);
      case Opcode::kAddu: return rType(0x21, rs, rt, rd);
      case Opcode::kSubu: return rType(0x23, rs, rt, rd);
      case Opcode::kAnd: return rType(0x24, rs, rt, rd);
      case Opcode::kOr: return rType(0x25, rs, rt, rd);
      case Opcode::kXor: return rType(0x26, rs, rt, rd);
      case Opcode::kNor: return rType(0x27, rs, rt, rd);
      case Opcode::kSlt: return rType(0x2a, rs, rt, rd);
      case Opcode::kSltu: return rType(0x2b, rs, rt, rd);
      case Opcode::kDaddu: return rType(0x2d, rs, rt, rd);
      case Opcode::kDsubu: return rType(0x2f, rs, rt, rd);
      case Opcode::kDsll: return rType(0x38, 0, rt, rd, sa);
      case Opcode::kDsrl: return rType(0x3a, 0, rt, rd, sa);
      case Opcode::kDsra: return rType(0x3b, 0, rt, rd, sa);
      case Opcode::kDsll32: return rType(0x3c, 0, rt, rd, sa);
      case Opcode::kDsrl32: return rType(0x3e, 0, rt, rd, sa);
      case Opcode::kDsra32: return rType(0x3f, 0, rt, rd, sa);
      default:
        support::panic("alu() cannot encode opcode %s", opcodeName(op));
    }
}

std::uint32_t
cop2(unsigned sub, unsigned f1, unsigned f2, unsigned f3)
{
    checkReg(f1);
    checkReg(f2);
    checkReg(f3);
    if (sub >= 32)
        support::panic("COP2 sub-opcode %u out of range", sub);
    return (kMajCop2 << 26) | (sub << 21) | (f1 << 16) | (f2 << 11) |
           (f3 << 6);
}

std::uint32_t
capBranch(bool on_set, unsigned cb, std::int32_t offset)
{
    checkReg(cb);
    checkSignedField(offset, 16, "branch offset");
    unsigned sub = on_set ? kC2Bts : kC2Btu;
    return (kMajCop2 << 26) | (sub << 21) | (cb << 16) |
           (static_cast<std::uint32_t>(offset) & 0xffff);
}

std::uint32_t
capMem(bool is_load, bool zero_extend, unsigned size_log2, unsigned rd,
       unsigned cb, unsigned rt, std::int32_t imm)
{
    checkReg(rd);
    checkReg(cb);
    checkReg(rt);
    if (size_log2 > 3)
        support::panic("capMem size_log2 %u out of range", size_log2);
    std::int32_t scale = 1 << size_log2;
    if (imm % scale != 0)
        support::panic("capMem immediate %d not a multiple of %d", imm,
                       scale);
    std::int32_t scaled = imm / scale;
    checkSignedField(scaled, 8, "scaled immediate");
    unsigned major = is_load ? kMajClx : kMajCsx;
    return (major << 26) | (rd << 21) | (cb << 16) | (rt << 11) |
           ((static_cast<std::uint32_t>(scaled) & 0xff) << 3) |
           ((zero_extend ? 1u : 0u) << 2) | size_log2;
}

std::uint32_t
capCapMem(bool is_load, unsigned cd, unsigned cb, unsigned rt,
          std::int32_t imm)
{
    checkReg(cd);
    checkReg(cb);
    checkReg(rt);
    if (imm % 32 != 0)
        support::panic("capability load/store immediate %d not a "
                       "multiple of 32", imm);
    std::int32_t scaled = imm / 32;
    checkSignedField(scaled, 11, "scaled immediate");
    unsigned major = is_load ? kMajClc : kMajCsc;
    return (major << 26) | (cd << 21) | (cb << 16) | (rt << 11) |
           (static_cast<std::uint32_t>(scaled) & 0x7ff);
}

} // namespace cheri::isa::encode
