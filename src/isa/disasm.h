/**
 * @file
 * Minimal disassembler used for traces, fault reports and tests.
 */

#ifndef CHERI_ISA_DISASM_H
#define CHERI_ISA_DISASM_H

#include <string>

#include "isa/isa.h"

namespace cheri::isa
{

/** Render a decoded instruction like "daddiu t0, t0, -1". */
std::string disassemble(const Instruction &inst);

} // namespace cheri::isa

#endif // CHERI_ISA_DISASM_H
