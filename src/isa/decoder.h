/**
 * @file
 * Binary instruction decoder: inverts every encoding in encoder.h and
 * produces the decoded Instruction the executor consumes. Unknown
 * encodings decode to Opcode::kInvalid, which the CPU turns into a
 * reserved-instruction exception.
 */

#ifndef CHERI_ISA_DECODER_H
#define CHERI_ISA_DECODER_H

#include <cstddef>
#include <cstdint>

#include "isa/isa.h"

namespace cheri::isa
{

/** Decode one 32-bit instruction word. */
Instruction decode(std::uint32_t word);

/**
 * Decode count consecutive little-endian 32-bit words from bytes into
 * out. Used by the CPU's predecoded-instruction cache to decode a
 * whole fetched line in one pass.
 */
void decodeLine(const std::uint8_t *bytes, Instruction *out,
                std::size_t count);

} // namespace cheri::isa

#endif // CHERI_ISA_DECODER_H
