/**
 * @file
 * Instruction-set definitions for the 64-bit MIPS subset plus the
 * CHERI extensions of Table 1. The MIPS encodings follow MIPS IV; the
 * CHERI encodings live in the COP2 opcode space (major 0x12) and the
 * LWC2/SWC2/LDC2/SDC2 majors for capability-relative memory accesses,
 * mirroring how the paper implements CHERI as coprocessor 2.
 *
 * Encoding summary for the CHERI additions (fields are [hi:lo]):
 *
 *  COP2 register ops   [31:26]=0x12, [25:21]=sub-opcode, then
 *                      cd/rd=[20:16], cb=[15:11], rt/ct=[10:6]
 *  CBTU/CBTS           [31:26]=0x12, [25:21]=sub, cb=[20:16],
 *                      offset=[15:0] (signed words)
 *  CL[BHWD][U]         [31:26]=0x32, rd=[25:21], cb=[20:16],
 *                      rt=[15:11], imm8=[10:3] (signed, scaled by
 *                      size), s=[2], size=[1:0] (log2 bytes)
 *  CS[BHWD]            [31:26]=0x3a, same layout (s unused)
 *  CLC                 [31:26]=0x36, cd=[25:21], cb=[20:16],
 *                      rt=[15:11], imm11=[10:0] (signed, x32)
 *  CSC                 [31:26]=0x3e, same layout
 */

#ifndef CHERI_ISA_ISA_H
#define CHERI_ISA_ISA_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace cheri::isa
{

/** Semantic opcode after decode. */
enum class Opcode
{
    kInvalid,

    // --- MIPS64 subset: shifts ---
    kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
    kDsll, kDsrl, kDsra, kDsll32, kDsrl32, kDsra32,
    kDsllv, kDsrlv, kDsrav,

    // --- ALU register ---
    kAddu, kDaddu, kSubu, kDsubu,
    kAnd, kOr, kXor, kNor, kSlt, kSltu,
    kMovz, kMovn,
    kDmult, kDmultu, kDdiv, kDdivu, kMfhi, kMflo,

    // --- ALU immediate ---
    kAddiu, kDaddiu, kSlti, kSltiu, kAndi, kOri, kXori, kLui,

    // --- control flow ---
    kJ, kJal, kJr, kJalr,
    kBeq, kBne, kBlez, kBgtz, kBltz, kBgez,
    kSyscall, kBreak,

    // --- legacy loads/stores (implicitly via C0) ---
    kLb, kLbu, kLh, kLhu, kLw, kLwu, kLd,
    kSb, kSh, kSw, kSd,
    kLld, kScd,

    // --- CHERI: inspection (Table 1) ---
    kCGetBase, kCGetLen, kCGetTag, kCGetPerm, kCGetPcc,

    // --- CHERI: monotonic manipulation ---
    kCIncBase, kCSetLen, kCClearTag, kCAndPerm,

    // --- CHERI: pointer interop ---
    kCToPtr, kCFromPtr,

    // --- CHERI: tag branches ---
    kCBtu, kCBts,

    // --- CHERI: capability loads/stores ---
    kCLc, kCSc,
    kClb, kClbu, kClh, kClhu, kClw, kClwu, kCld,
    kCsb, kCsh, kCsw, kCsd,
    kClld, kCscd,

    // --- CHERI: jumps ---
    kCJr, kCJalr,

    // --- CHERI: sealing and protected domain crossing (Section 11) ---
    kCSeal, kCUnseal, kCGetType, kCCall, kCReturn,
};

/** One past the last Opcode value: sizes handler/dispatch tables. */
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::kCReturn) + 1;

/** Major opcodes used by the encodings. */
enum MajorOpcode : std::uint32_t
{
    kMajSpecial = 0x00,
    kMajRegimm = 0x01,
    kMajJ = 0x02,
    kMajJal = 0x03,
    kMajBeq = 0x04,
    kMajBne = 0x05,
    kMajBlez = 0x06,
    kMajBgtz = 0x07,
    kMajAddiu = 0x09,
    kMajSlti = 0x0a,
    kMajSltiu = 0x0b,
    kMajAndi = 0x0c,
    kMajOri = 0x0d,
    kMajXori = 0x0e,
    kMajLui = 0x0f,
    kMajCop2 = 0x12,
    kMajDaddiu = 0x19,
    kMajLb = 0x20,
    kMajLh = 0x21,
    kMajLw = 0x23,
    kMajLbu = 0x24,
    kMajLhu = 0x25,
    kMajLwu = 0x27,
    kMajSb = 0x28,
    kMajSh = 0x29,
    kMajSw = 0x2b,
    kMajClx = 0x32, ///< capability-relative loads (LWC2 space)
    kMajLld = 0x34,
    kMajClc = 0x36, ///< capability load (LDC2 space)
    kMajLd = 0x37,
    kMajCsx = 0x3a, ///< capability-relative stores (SWC2 space)
    kMajScd = 0x3c,
    kMajCsc = 0x3e, ///< capability store (SDC2 space)
    kMajSd = 0x3f,
};

/** COP2 sub-opcodes (bits [25:21] under major 0x12). */
enum Cop2Sub : std::uint32_t
{
    kC2GetBase = 0,
    kC2GetLen = 1,
    kC2GetTag = 2,
    kC2GetPerm = 3,
    kC2GetPcc = 4,
    kC2IncBase = 5,
    kC2SetLen = 6,
    kC2ClearTag = 7,
    kC2AndPerm = 8,
    kC2ToPtr = 9,
    kC2FromPtr = 10,
    kC2Btu = 11,
    kC2Bts = 12,
    kC2Jr = 13,
    kC2Jalr = 14,
    kC2Lld = 15,
    kC2Scd = 16,
    kC2Seal = 17,
    kC2Unseal = 18,
    kC2Call = 19,
    kC2Return = 20,
    kC2GetType = 21,
};

/**
 * A decoded instruction: semantic opcode plus every field any
 * instruction uses (unused fields are zero).
 */
struct Instruction
{
    Opcode op = Opcode::kInvalid;
    std::uint8_t rs = 0; ///< integer source register
    std::uint8_t rt = 0; ///< integer source/dest register
    std::uint8_t rd = 0; ///< integer dest register
    std::uint8_t sa = 0; ///< shift amount
    std::uint8_t cd = 0; ///< capability dest register
    std::uint8_t cb = 0; ///< capability base register
    std::uint8_t ct = 0; ///< capability source register
    std::int32_t imm = 0; ///< sign-extended immediate (unscaled)
    std::uint32_t target = 0; ///< J/JAL 26-bit target field
    std::uint32_t raw = 0; ///< original encoding

    /** True for instructions with an architectural delay slot. */
    bool hasDelaySlot() const;

    /** True for loads/stores through a capability register. */
    bool isCapMemory() const;
};

/** Dies on a non-memory opcode handed to accessSizeLog2. */
[[noreturn]] void accessSizePanic(Opcode op);

/** Log2 access size in bytes for a memory opcode (0,1,2,3 → 1..8B).
 *  Inline: runs once per simulated load/store. */
inline unsigned
accessSizeLog2(Opcode op)
{
    switch (op) {
      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kSb:
      case Opcode::kClb:
      case Opcode::kClbu:
      case Opcode::kCsb:
        return 0;
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kSh:
      case Opcode::kClh:
      case Opcode::kClhu:
      case Opcode::kCsh:
        return 1;
      case Opcode::kLw:
      case Opcode::kLwu:
      case Opcode::kSw:
      case Opcode::kClw:
      case Opcode::kClwu:
      case Opcode::kCsw:
        return 2;
      case Opcode::kLd:
      case Opcode::kSd:
      case Opcode::kLld:
      case Opcode::kScd:
      case Opcode::kCld:
      case Opcode::kCsd:
      case Opcode::kClld:
      case Opcode::kCscd:
        return 3;
      case Opcode::kCLc:
      case Opcode::kCSc:
        return 5;
      default:
        accessSizePanic(op);
    }
}

/** True when the memory opcode zero-extends (unsigned load). */
bool loadIsUnsigned(Opcode op);

/**
 * True when a superblock may continue *through* this instruction:
 * anything whose execution never consults or perturbs the fetch
 * stream mid-block. Control flow, SYSCALL/BREAK (run-loop exits),
 * CCALL/CRETURN (always trap), CJR/CJALR (swap PCC over two slots)
 * and kInvalid are excluded. Inline: runs only at block-mint time.
 */
inline bool
superblockBody(Opcode op)
{
    switch (op) {
      case Opcode::kInvalid:
      case Opcode::kJ:
      case Opcode::kJal:
      case Opcode::kJr:
      case Opcode::kJalr:
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlez:
      case Opcode::kBgtz:
      case Opcode::kBltz:
      case Opcode::kBgez:
      case Opcode::kCBtu:
      case Opcode::kCBts:
      case Opcode::kCJr:
      case Opcode::kCJalr:
      case Opcode::kSyscall:
      case Opcode::kBreak:
      case Opcode::kCCall:
      case Opcode::kCReturn:
        return false;
      default:
        return true;
    }
}

/**
 * True when this instruction may *terminate* a superblock together
 * with its delay slot: branches and jumps that keep PCC unchanged.
 * CJR/CJALR are excluded (the PCC swap countdown spans the block
 * boundary); they always fall back to the per-instruction path.
 */
inline bool
superblockTerminal(Opcode op)
{
    switch (op) {
      case Opcode::kJ:
      case Opcode::kJal:
      case Opcode::kJr:
      case Opcode::kJalr:
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlez:
      case Opcode::kBgtz:
      case Opcode::kBltz:
      case Opcode::kBgez:
      case Opcode::kCBtu:
      case Opcode::kCBts:
        return true;
      default:
        return false;
    }
}

/**
 * True for the conditional branches: when one is not taken,
 * execution falls through its delay slot to the next sequential
 * instruction, so a superblock may keep minting past the pair and
 * simply exit early at run time when the branch is taken. The
 * unconditional jumps (and JR/JALR) always leave, so a block never
 * continues past them.
 */
inline bool
superblockFallsThrough(Opcode op)
{
    switch (op) {
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlez:
      case Opcode::kBgtz:
      case Opcode::kBltz:
      case Opcode::kBgez:
      case Opcode::kCBtu:
      case Opcode::kCBts:
        return true;
      default:
        return false;
    }
}

/**
 * True for the straight-line ALU opcodes, whose handlers touch only
 * the integer register file (plus HI/LO and a host-side stat): they
 * cannot trap, branch, or consult the PC. Superblock dispatch skips
 * all per-slot PC bookkeeping across them and reconstructs it at the
 * next full slot or block exit. Inline: runs only at block-mint time.
 */
inline bool
superblockSimple(Opcode op)
{
    static_assert(static_cast<int>(Opcode::kLui) -
                          static_cast<int>(Opcode::kSll) ==
                      40,
                  "ALU opcodes must stay contiguous");
    return op >= Opcode::kSll && op <= Opcode::kLui;
}

/**
 * True when executing this instruction can touch the data side of
 * the memory system — a legacy or capability load/store. Everything
 * else can neither move the TLB's LRU, change its generation, nor
 * store into code, so the superblock tier may skip its per-slot
 * translation re-checks after such an instruction. Inline: runs only
 * at block-mint time.
 */
inline bool
touchesDataMemory(Opcode op)
{
    static_assert(static_cast<int>(Opcode::kScd) -
                          static_cast<int>(Opcode::kLb) ==
                      12,
                  "legacy load/store opcodes must stay contiguous");
    static_assert(static_cast<int>(Opcode::kCscd) -
                          static_cast<int>(Opcode::kCLc) ==
                      14,
                  "capability load/store opcodes must stay contiguous");
    return (op >= Opcode::kLb && op <= Opcode::kScd) ||
           (op >= Opcode::kCLc && op <= Opcode::kCscd);
}

/** Conventional MIPS ABI register names, index 0..31. */
extern const char *const kRegNames[32];

/** Mnemonic for an opcode (lower case, as in Table 1 style). */
const char *opcodeName(Opcode op);

} // namespace cheri::isa

#endif // CHERI_ISA_ISA_H
