/**
 * @file
 * Instruction-set definitions for the 64-bit MIPS subset plus the
 * CHERI extensions of Table 1. The MIPS encodings follow MIPS IV; the
 * CHERI encodings live in the COP2 opcode space (major 0x12) and the
 * LWC2/SWC2/LDC2/SDC2 majors for capability-relative memory accesses,
 * mirroring how the paper implements CHERI as coprocessor 2.
 *
 * Encoding summary for the CHERI additions (fields are [hi:lo]):
 *
 *  COP2 register ops   [31:26]=0x12, [25:21]=sub-opcode, then
 *                      cd/rd=[20:16], cb=[15:11], rt/ct=[10:6]
 *  CBTU/CBTS           [31:26]=0x12, [25:21]=sub, cb=[20:16],
 *                      offset=[15:0] (signed words)
 *  CL[BHWD][U]         [31:26]=0x32, rd=[25:21], cb=[20:16],
 *                      rt=[15:11], imm8=[10:3] (signed, scaled by
 *                      size), s=[2], size=[1:0] (log2 bytes)
 *  CS[BHWD]            [31:26]=0x3a, same layout (s unused)
 *  CLC                 [31:26]=0x36, cd=[25:21], cb=[20:16],
 *                      rt=[15:11], imm11=[10:0] (signed, x32)
 *  CSC                 [31:26]=0x3e, same layout
 */

#ifndef CHERI_ISA_ISA_H
#define CHERI_ISA_ISA_H

#include <cstdint>
#include <string>

namespace cheri::isa
{

/** Semantic opcode after decode. */
enum class Opcode
{
    kInvalid,

    // --- MIPS64 subset: shifts ---
    kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
    kDsll, kDsrl, kDsra, kDsll32, kDsrl32, kDsra32,
    kDsllv, kDsrlv, kDsrav,

    // --- ALU register ---
    kAddu, kDaddu, kSubu, kDsubu,
    kAnd, kOr, kXor, kNor, kSlt, kSltu,
    kMovz, kMovn,
    kDmult, kDmultu, kDdiv, kDdivu, kMfhi, kMflo,

    // --- ALU immediate ---
    kAddiu, kDaddiu, kSlti, kSltiu, kAndi, kOri, kXori, kLui,

    // --- control flow ---
    kJ, kJal, kJr, kJalr,
    kBeq, kBne, kBlez, kBgtz, kBltz, kBgez,
    kSyscall, kBreak,

    // --- legacy loads/stores (implicitly via C0) ---
    kLb, kLbu, kLh, kLhu, kLw, kLwu, kLd,
    kSb, kSh, kSw, kSd,
    kLld, kScd,

    // --- CHERI: inspection (Table 1) ---
    kCGetBase, kCGetLen, kCGetTag, kCGetPerm, kCGetPcc,

    // --- CHERI: monotonic manipulation ---
    kCIncBase, kCSetLen, kCClearTag, kCAndPerm,

    // --- CHERI: pointer interop ---
    kCToPtr, kCFromPtr,

    // --- CHERI: tag branches ---
    kCBtu, kCBts,

    // --- CHERI: capability loads/stores ---
    kCLc, kCSc,
    kClb, kClbu, kClh, kClhu, kClw, kClwu, kCld,
    kCsb, kCsh, kCsw, kCsd,
    kClld, kCscd,

    // --- CHERI: jumps ---
    kCJr, kCJalr,

    // --- CHERI: sealing and protected domain crossing (Section 11) ---
    kCSeal, kCUnseal, kCGetType, kCCall, kCReturn,
};

/** Major opcodes used by the encodings. */
enum MajorOpcode : std::uint32_t
{
    kMajSpecial = 0x00,
    kMajRegimm = 0x01,
    kMajJ = 0x02,
    kMajJal = 0x03,
    kMajBeq = 0x04,
    kMajBne = 0x05,
    kMajBlez = 0x06,
    kMajBgtz = 0x07,
    kMajAddiu = 0x09,
    kMajSlti = 0x0a,
    kMajSltiu = 0x0b,
    kMajAndi = 0x0c,
    kMajOri = 0x0d,
    kMajXori = 0x0e,
    kMajLui = 0x0f,
    kMajCop2 = 0x12,
    kMajDaddiu = 0x19,
    kMajLb = 0x20,
    kMajLh = 0x21,
    kMajLw = 0x23,
    kMajLbu = 0x24,
    kMajLhu = 0x25,
    kMajLwu = 0x27,
    kMajSb = 0x28,
    kMajSh = 0x29,
    kMajSw = 0x2b,
    kMajClx = 0x32, ///< capability-relative loads (LWC2 space)
    kMajLld = 0x34,
    kMajClc = 0x36, ///< capability load (LDC2 space)
    kMajLd = 0x37,
    kMajCsx = 0x3a, ///< capability-relative stores (SWC2 space)
    kMajScd = 0x3c,
    kMajCsc = 0x3e, ///< capability store (SDC2 space)
    kMajSd = 0x3f,
};

/** COP2 sub-opcodes (bits [25:21] under major 0x12). */
enum Cop2Sub : std::uint32_t
{
    kC2GetBase = 0,
    kC2GetLen = 1,
    kC2GetTag = 2,
    kC2GetPerm = 3,
    kC2GetPcc = 4,
    kC2IncBase = 5,
    kC2SetLen = 6,
    kC2ClearTag = 7,
    kC2AndPerm = 8,
    kC2ToPtr = 9,
    kC2FromPtr = 10,
    kC2Btu = 11,
    kC2Bts = 12,
    kC2Jr = 13,
    kC2Jalr = 14,
    kC2Lld = 15,
    kC2Scd = 16,
    kC2Seal = 17,
    kC2Unseal = 18,
    kC2Call = 19,
    kC2Return = 20,
    kC2GetType = 21,
};

/**
 * A decoded instruction: semantic opcode plus every field any
 * instruction uses (unused fields are zero).
 */
struct Instruction
{
    Opcode op = Opcode::kInvalid;
    std::uint8_t rs = 0; ///< integer source register
    std::uint8_t rt = 0; ///< integer source/dest register
    std::uint8_t rd = 0; ///< integer dest register
    std::uint8_t sa = 0; ///< shift amount
    std::uint8_t cd = 0; ///< capability dest register
    std::uint8_t cb = 0; ///< capability base register
    std::uint8_t ct = 0; ///< capability source register
    std::int32_t imm = 0; ///< sign-extended immediate (unscaled)
    std::uint32_t target = 0; ///< J/JAL 26-bit target field
    std::uint32_t raw = 0; ///< original encoding

    /** True for instructions with an architectural delay slot. */
    bool hasDelaySlot() const;

    /** True for loads/stores through a capability register. */
    bool isCapMemory() const;
};

/** Dies on a non-memory opcode handed to accessSizeLog2. */
[[noreturn]] void accessSizePanic(Opcode op);

/** Log2 access size in bytes for a memory opcode (0,1,2,3 → 1..8B).
 *  Inline: runs once per simulated load/store. */
inline unsigned
accessSizeLog2(Opcode op)
{
    switch (op) {
      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kSb:
      case Opcode::kClb:
      case Opcode::kClbu:
      case Opcode::kCsb:
        return 0;
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kSh:
      case Opcode::kClh:
      case Opcode::kClhu:
      case Opcode::kCsh:
        return 1;
      case Opcode::kLw:
      case Opcode::kLwu:
      case Opcode::kSw:
      case Opcode::kClw:
      case Opcode::kClwu:
      case Opcode::kCsw:
        return 2;
      case Opcode::kLd:
      case Opcode::kSd:
      case Opcode::kLld:
      case Opcode::kScd:
      case Opcode::kCld:
      case Opcode::kCsd:
      case Opcode::kClld:
      case Opcode::kCscd:
        return 3;
      case Opcode::kCLc:
      case Opcode::kCSc:
        return 5;
      default:
        accessSizePanic(op);
    }
}

/** True when the memory opcode zero-extends (unsigned load). */
bool loadIsUnsigned(Opcode op);

/** Conventional MIPS ABI register names, index 0..31. */
extern const char *const kRegNames[32];

/** Mnemonic for an opcode (lower case, as in Table 1 style). */
const char *opcodeName(Opcode op);

} // namespace cheri::isa

#endif // CHERI_ISA_ISA_H
