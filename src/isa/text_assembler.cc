#include "isa/text_assembler.h"

#include <cctype>
#include <functional>
#include <map>
#include <optional>
#include <sstream>

#include "isa/assembler.h"
#include "support/logging.h"

namespace cheri::isa
{

namespace
{

/** A parsed operand. */
struct Operand
{
    enum class Kind
    {
        kGpr,   ///< $t0 / $8
        kCap,   ///< $c1
        kImm,   ///< 42 / -8 / 0x1000
        kLabel, ///< bare identifier
        kMem,   ///< offset($base): offset is imm or gpr, base gpr/cap
    };

    Kind kind;
    unsigned reg = 0;        ///< kGpr/kCap register number
    std::int64_t imm = 0;    ///< kImm value / kMem immediate offset
    std::string label;       ///< kLabel name
    // kMem fields:
    bool base_is_cap = false;
    unsigned base_reg = 0;
    bool offset_is_reg = false;
    unsigned offset_reg = 0;
};

std::string
trim(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    std::size_t last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

/** Strip comments (#, ;, //) outside of any context. */
std::string
stripComment(const std::string &line)
{
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '#' || c == ';')
            return line.substr(0, i);
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
    }
    return line;
}

/** Parse a register token like "t0", "8", "c3", "zero". */
std::optional<std::pair<bool, unsigned>> // {is_cap, index}
parseRegisterName(const std::string &name)
{
    if (name.empty())
        return std::nullopt;
    // Capability register: c0..c31.
    if (name[0] == 'c' && name.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(name[1]))) {
        unsigned index = 0;
        for (std::size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                return std::nullopt;
            index = index * 10 + static_cast<unsigned>(name[i] - '0');
        }
        if (index >= 32)
            return std::nullopt;
        return std::make_pair(true, index);
    }
    // Numeric GPR.
    if (std::isdigit(static_cast<unsigned char>(name[0]))) {
        unsigned index = 0;
        for (char c : name) {
            if (!std::isdigit(static_cast<unsigned char>(c)))
                return std::nullopt;
            index = index * 10 + static_cast<unsigned>(c - '0');
        }
        if (index >= 32)
            return std::nullopt;
        return std::make_pair(false, index);
    }
    // ABI name.
    for (unsigned i = 0; i < 32; ++i) {
        if (name == kRegNames[i])
            return std::make_pair(false, i);
    }
    return std::nullopt;
}

std::optional<std::int64_t>
parseImmediate(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    std::size_t pos = 0;
    bool negative = false;
    if (text[0] == '-' || text[0] == '+') {
        negative = text[0] == '-';
        pos = 1;
    }
    if (pos >= text.size())
        return std::nullopt;
    int base = 10;
    if (text.size() > pos + 1 && text[pos] == '0' &&
        (text[pos + 1] == 'x' || text[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
    }
    std::uint64_t value = 0;
    bool any = false;
    for (; pos < text.size(); ++pos) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(text[pos])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return std::nullopt;
        value = value * static_cast<std::uint64_t>(base) +
                static_cast<std::uint64_t>(digit);
        any = true;
    }
    if (!any)
        return std::nullopt;
    std::int64_t result = static_cast<std::int64_t>(value);
    return negative ? -result : result;
}

std::optional<Operand>
parseOperand(const std::string &raw)
{
    std::string text = trim(raw);
    if (text.empty())
        return std::nullopt;

    // offset($base) — offset may be empty, an immediate, or $reg.
    std::size_t open = text.find('(');
    if (open != std::string::npos && text.back() == ')') {
        std::string offset_text = trim(text.substr(0, open));
        std::string base_text =
            trim(text.substr(open + 1, text.size() - open - 2));
        if (base_text.empty() || base_text[0] != '$')
            return std::nullopt;
        auto base = parseRegisterName(base_text.substr(1));
        if (!base)
            return std::nullopt;

        Operand op;
        op.kind = Operand::Kind::kMem;
        op.base_is_cap = base->first;
        op.base_reg = base->second;
        if (offset_text.empty()) {
            op.imm = 0;
        } else if (offset_text[0] == '$') {
            auto offset = parseRegisterName(offset_text.substr(1));
            if (!offset || offset->first)
                return std::nullopt;
            op.offset_is_reg = true;
            op.offset_reg = offset->second;
        } else {
            auto imm = parseImmediate(offset_text);
            if (!imm)
                return std::nullopt;
            op.imm = *imm;
        }
        return op;
    }

    if (text[0] == '$') {
        auto reg = parseRegisterName(text.substr(1));
        if (!reg)
            return std::nullopt;
        Operand op;
        op.kind = reg->first ? Operand::Kind::kCap : Operand::Kind::kGpr;
        op.reg = reg->second;
        return op;
    }

    if (auto imm = parseImmediate(text)) {
        Operand op;
        op.kind = Operand::Kind::kImm;
        op.imm = *imm;
        return op;
    }

    // Identifier -> label reference.
    if (std::isalpha(static_cast<unsigned char>(text[0])) ||
        text[0] == '_' || text[0] == '.') {
        Operand op;
        op.kind = Operand::Kind::kLabel;
        op.label = text;
        return op;
    }
    return std::nullopt;
}

/** Statement context handed to per-mnemonic emitters. */
class LineAssembler
{
  public:
    LineAssembler(Assembler &assembler,
                  std::map<std::string, Assembler::Label> &labels)
        : assembler_(assembler), labels_(labels)
    {
    }

    Assembler &a() { return assembler_; }

    Assembler::Label
    labelFor(const std::string &name)
    {
        auto it = labels_.find(name);
        if (it != labels_.end())
            return it->second;
        Assembler::Label label = assembler_.newLabel();
        labels_.emplace(name, label);
        return label;
    }

  private:
    Assembler &assembler_;
    std::map<std::string, Assembler::Label> &labels_;
};

using Ops = std::vector<Operand>;
using Emitter =
    std::function<bool(LineAssembler &, const Ops &, std::string &)>;

bool
expectKinds(const Ops &ops, std::initializer_list<Operand::Kind> kinds,
            std::string &error)
{
    if (ops.size() != kinds.size()) {
        error = support::format("expected %zu operands, got %zu",
                                kinds.size(), ops.size());
        return false;
    }
    std::size_t index = 0;
    for (Operand::Kind kind : kinds) {
        if (ops[index].kind != kind) {
            error = support::format("operand %zu has the wrong form",
                                    index + 1);
            return false;
        }
        ++index;
    }
    return true;
}

constexpr auto kGpr = Operand::Kind::kGpr;
constexpr auto kCap = Operand::Kind::kCap;
constexpr auto kImm = Operand::Kind::kImm;
constexpr auto kLabel = Operand::Kind::kLabel;
constexpr auto kMem = Operand::Kind::kMem;

/** Build the mnemonic dispatch table. */
const std::map<std::string, Emitter> &
emitters()
{
    static const std::map<std::string, Emitter> table = [] {
        std::map<std::string, Emitter> t;

        auto r3 = [](void (Assembler::*fn)(unsigned, unsigned,
                                           unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kGpr, kGpr}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg, ops[2].reg);
                return true;
            };
        };
        t["addu"] = r3(&Assembler::addu);
        t["daddu"] = r3(&Assembler::daddu);
        t["subu"] = r3(&Assembler::subu);
        t["dsubu"] = r3(&Assembler::dsubu);
        t["and"] = r3(&Assembler::and_);
        t["or"] = r3(&Assembler::or_);
        t["xor"] = r3(&Assembler::xor_);
        t["nor"] = r3(&Assembler::nor);
        t["slt"] = r3(&Assembler::slt);
        t["sltu"] = r3(&Assembler::sltu);
        t["movz"] = r3(&Assembler::movz);
        t["movn"] = r3(&Assembler::movn);
        // Variable shifts: rd, rt, rs.
        t["sllv"] = r3(&Assembler::dsllv); // placeholder replaced below
        t.erase("sllv");
        auto shift_var = [](void (Assembler::*fn)(unsigned, unsigned,
                                                  unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kGpr, kGpr}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg, ops[2].reg);
                return true;
            };
        };
        t["sllv"] = shift_var(&Assembler::sllv);
        t["srlv"] = shift_var(&Assembler::srlv);
        t["srav"] = shift_var(&Assembler::srav);
        t["dsllv"] = shift_var(&Assembler::dsllv);
        t["dsrlv"] = shift_var(&Assembler::dsrlv);
        t["dsrav"] = shift_var(&Assembler::dsrav);

        auto shift_imm = [](void (Assembler::*fn)(unsigned, unsigned,
                                                  unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kGpr, kImm}, error))
                    return false;
                if (ops[2].imm < 0 || ops[2].imm > 31) {
                    error = "shift amount out of range";
                    return false;
                }
                (ctx.a().*fn)(ops[0].reg, ops[1].reg,
                              static_cast<unsigned>(ops[2].imm));
                return true;
            };
        };
        t["sll"] = shift_imm(&Assembler::sll);
        t["srl"] = shift_imm(&Assembler::srl);
        t["sra"] = shift_imm(&Assembler::sra);
        t["dsll"] = shift_imm(&Assembler::dsll);
        t["dsrl"] = shift_imm(&Assembler::dsrl);
        t["dsra"] = shift_imm(&Assembler::dsra);
        t["dsll32"] = shift_imm(&Assembler::dsll32);
        t["dsrl32"] = shift_imm(&Assembler::dsrl32);

        auto itype = [](void (Assembler::*fn)(unsigned, unsigned,
                                              std::int32_t)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kGpr, kImm}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg,
                              static_cast<std::int32_t>(ops[2].imm));
                return true;
            };
        };
        t["addiu"] = itype(&Assembler::addiu);
        t["daddiu"] = itype(&Assembler::daddiu);
        t["slti"] = itype(&Assembler::slti);
        t["sltiu"] = itype(&Assembler::sltiu);

        auto logic_imm = [](void (Assembler::*fn)(unsigned, unsigned,
                                                  std::uint32_t)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kGpr, kImm}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg,
                              static_cast<std::uint32_t>(ops[2].imm));
                return true;
            };
        };
        t["andi"] = logic_imm(&Assembler::andi);
        t["ori"] = logic_imm(&Assembler::ori);
        t["xori"] = logic_imm(&Assembler::xori);

        t["lui"] = [](LineAssembler &ctx, const Ops &ops,
                      std::string &error) {
            if (!expectKinds(ops, {kGpr, kImm}, error))
                return false;
            ctx.a().lui(ops[0].reg,
                        static_cast<std::int32_t>(ops[1].imm));
            return true;
        };

        auto muldiv = [](void (Assembler::*fn)(unsigned, unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kGpr}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg);
                return true;
            };
        };
        t["dmult"] = muldiv(&Assembler::dmult);
        t["dmultu"] = muldiv(&Assembler::dmultu);
        t["ddiv"] = muldiv(&Assembler::ddiv);
        t["ddivu"] = muldiv(&Assembler::ddivu);

        auto hilo = [](void (Assembler::*fn)(unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg);
                return true;
            };
        };
        t["mfhi"] = hilo(&Assembler::mfhi);
        t["mflo"] = hilo(&Assembler::mflo);

        // --- branches / jumps ---
        auto branch2 = [](void (Assembler::*fn)(unsigned, unsigned,
                                                Assembler::Label)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kGpr, kLabel}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg,
                              ctx.labelFor(ops[2].label));
                return true;
            };
        };
        t["beq"] = branch2(&Assembler::beq);
        t["bne"] = branch2(&Assembler::bne);

        auto branch1 = [](void (Assembler::*fn)(unsigned,
                                                Assembler::Label)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kLabel}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ctx.labelFor(ops[1].label));
                return true;
            };
        };
        t["blez"] = branch1(&Assembler::blez);
        t["bgtz"] = branch1(&Assembler::bgtz);
        t["bltz"] = branch1(&Assembler::bltz);
        t["bgez"] = branch1(&Assembler::bgez);

        t["b"] = [](LineAssembler &ctx, const Ops &ops,
                    std::string &error) {
            if (!expectKinds(ops, {kLabel}, error))
                return false;
            ctx.a().b(ctx.labelFor(ops[0].label));
            return true;
        };
        t["j"] = [](LineAssembler &ctx, const Ops &ops,
                    std::string &error) {
            if (!expectKinds(ops, {kLabel}, error))
                return false;
            ctx.a().j(ctx.labelFor(ops[0].label));
            return true;
        };
        t["jal"] = [](LineAssembler &ctx, const Ops &ops,
                      std::string &error) {
            if (!expectKinds(ops, {kLabel}, error))
                return false;
            ctx.a().jal(ctx.labelFor(ops[0].label));
            return true;
        };
        t["jr"] = [](LineAssembler &ctx, const Ops &ops,
                     std::string &error) {
            if (!expectKinds(ops, {kGpr}, error))
                return false;
            ctx.a().jr(ops[0].reg);
            return true;
        };
        t["jalr"] = [](LineAssembler &ctx, const Ops &ops,
                       std::string &error) {
            if (ops.size() == 1 && ops[0].kind == kGpr) {
                ctx.a().jalr(reg::ra, ops[0].reg);
                return true;
            }
            if (!expectKinds(ops, {kGpr, kGpr}, error))
                return false;
            ctx.a().jalr(ops[0].reg, ops[1].reg);
            return true;
        };

        t["syscall"] = [](LineAssembler &ctx, const Ops &ops,
                          std::string &error) {
            if (!expectKinds(ops, {}, error))
                return false;
            ctx.a().syscall();
            return true;
        };
        t["break"] = [](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
            if (!expectKinds(ops, {}, error))
                return false;
            ctx.a().break_();
            return true;
        };
        t["nop"] = [](LineAssembler &ctx, const Ops &ops,
                      std::string &error) {
            if (!expectKinds(ops, {}, error))
                return false;
            ctx.a().nop();
            return true;
        };

        // --- legacy memory: op $rt, imm($rs) ---
        auto mem = [](void (Assembler::*fn)(unsigned, unsigned,
                                            std::int32_t)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kMem}, error))
                    return false;
                const Operand &ref = ops[1];
                if (ref.base_is_cap || ref.offset_is_reg) {
                    error = "legacy memory operand must be imm($gpr)";
                    return false;
                }
                (ctx.a().*fn)(ops[0].reg, ref.base_reg,
                              static_cast<std::int32_t>(ref.imm));
                return true;
            };
        };
        t["lb"] = mem(&Assembler::lb);
        t["lbu"] = mem(&Assembler::lbu);
        t["lh"] = mem(&Assembler::lh);
        t["lhu"] = mem(&Assembler::lhu);
        t["lw"] = mem(&Assembler::lw);
        t["lwu"] = mem(&Assembler::lwu);
        t["ld"] = mem(&Assembler::ld);
        t["sb"] = mem(&Assembler::sb);
        t["sh"] = mem(&Assembler::sh);
        t["sw"] = mem(&Assembler::sw);
        t["sd"] = mem(&Assembler::sd);
        t["lld"] = mem(&Assembler::lld);
        t["scd"] = mem(&Assembler::scd);

        // --- CHERI: inspection ---
        auto cap_get = [](void (Assembler::*fn)(unsigned, unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kGpr, kCap}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg);
                return true;
            };
        };
        t["cgetbase"] = cap_get(&Assembler::cgetbase);
        t["cgetlen"] = cap_get(&Assembler::cgetlen);
        t["cgettag"] = cap_get(&Assembler::cgettag);
        t["cgetperm"] = cap_get(&Assembler::cgetperm);
        t["cgettype"] = cap_get(&Assembler::cgettype);
        t["cgetpcc"] = [](LineAssembler &ctx, const Ops &ops,
                          std::string &error) {
            if (!expectKinds(ops, {kCap, kGpr}, error))
                return false;
            ctx.a().cgetpcc(ops[0].reg, ops[1].reg);
            return true;
        };

        // --- CHERI: manipulation cd, cb, $rt ---
        auto cap_manip = [](void (Assembler::*fn)(unsigned, unsigned,
                                                  unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kCap, kCap, kGpr}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg, ops[2].reg);
                return true;
            };
        };
        t["cincbase"] = cap_manip(&Assembler::cincbase);
        t["csetlen"] = cap_manip(&Assembler::csetlen);
        t["candperm"] = cap_manip(&Assembler::candperm);
        t["cfromptr"] = cap_manip(&Assembler::cfromptr);
        t["ccleartag"] = [](LineAssembler &ctx, const Ops &ops,
                            std::string &error) {
            if (!expectKinds(ops, {kCap, kCap}, error))
                return false;
            ctx.a().ccleartag(ops[0].reg, ops[1].reg);
            return true;
        };
        t["ctoptr"] = [](LineAssembler &ctx, const Ops &ops,
                         std::string &error) {
            if (!expectKinds(ops, {kGpr, kCap, kCap}, error))
                return false;
            ctx.a().ctoptr(ops[0].reg, ops[1].reg, ops[2].reg);
            return true;
        };

        // --- CHERI: sealing ---
        auto cap3 = [](void (Assembler::*fn)(unsigned, unsigned,
                                             unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (!expectKinds(ops, {kCap, kCap, kCap}, error))
                    return false;
                (ctx.a().*fn)(ops[0].reg, ops[1].reg, ops[2].reg);
                return true;
            };
        };
        t["cseal"] = cap3(&Assembler::cseal);
        t["cunseal"] = cap3(&Assembler::cunseal);
        t["ccall"] = [](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
            if (!expectKinds(ops, {kCap, kCap}, error))
                return false;
            ctx.a().ccall(ops[0].reg, ops[1].reg);
            return true;
        };
        t["creturn"] = [](LineAssembler &ctx, const Ops &ops,
                          std::string &error) {
            if (!expectKinds(ops, {}, error))
                return false;
            ctx.a().creturn();
            return true;
        };

        // --- CHERI: tag branches ---
        t["cbtu"] = [](LineAssembler &ctx, const Ops &ops,
                       std::string &error) {
            if (!expectKinds(ops, {kCap, kLabel}, error))
                return false;
            ctx.a().cbtu(ops[0].reg, ctx.labelFor(ops[1].label));
            return true;
        };
        t["cbts"] = [](LineAssembler &ctx, const Ops &ops,
                       std::string &error) {
            if (!expectKinds(ops, {kCap, kLabel}, error))
                return false;
            ctx.a().cbts(ops[0].reg, ctx.labelFor(ops[1].label));
            return true;
        };

        // --- CHERI: memory — op $r, $index, imm($cap) form ---
        auto cap_mem = [](void (Assembler::*fn)(unsigned, unsigned,
                                                unsigned,
                                                std::int32_t)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                // rd, rt, imm(cb)  or  rd, imm(cb) with rt = zero.
                if (ops.size() == 2 && ops[1].kind == kMem) {
                    const Operand &ref = ops[1];
                    if (!ref.base_is_cap || ref.offset_is_reg) {
                        error = "capability memory operand must be "
                                "imm($cN)";
                        return false;
                    }
                    unsigned data = ops[0].reg;
                    (ctx.a().*fn)(data, ref.base_reg, reg::zero,
                                  static_cast<std::int32_t>(ref.imm));
                    return true;
                }
                if (ops.size() != 3 || ops[1].kind != kGpr ||
                    ops[2].kind != kMem) {
                    error = "expected $r, $index, imm($cN)";
                    return false;
                }
                const Operand &ref = ops[2];
                if (!ref.base_is_cap || ref.offset_is_reg) {
                    error = "capability memory operand must be imm($cN)";
                    return false;
                }
                (ctx.a().*fn)(ops[0].reg, ref.base_reg, ops[1].reg,
                              static_cast<std::int32_t>(ref.imm));
                return true;
            };
        };
        t["clb"] = cap_mem(&Assembler::clb);
        t["clbu"] = cap_mem(&Assembler::clbu);
        t["clh"] = cap_mem(&Assembler::clh);
        t["clhu"] = cap_mem(&Assembler::clhu);
        t["clw"] = cap_mem(&Assembler::clw);
        t["clwu"] = cap_mem(&Assembler::clwu);
        t["cld"] = cap_mem(&Assembler::cld);
        t["csb"] = cap_mem(&Assembler::csb);
        t["csh"] = cap_mem(&Assembler::csh);
        t["csw"] = cap_mem(&Assembler::csw);
        t["csd"] = cap_mem(&Assembler::csd);
        t["clc"] = cap_mem(&Assembler::clc);
        t["csc"] = cap_mem(&Assembler::csc);

        // clld/cscd: $rd, $rt($cN)
        auto cap_llsc = [](void (Assembler::*fn)(unsigned, unsigned,
                                                 unsigned)) {
            return [fn](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
                if (ops.size() != 2 || ops[0].kind != kGpr ||
                    ops[1].kind != kMem) {
                    error = "expected $r, $index($cN)";
                    return false;
                }
                const Operand &ref = ops[1];
                if (!ref.base_is_cap || !ref.offset_is_reg) {
                    error = "expected $r, $index($cN)";
                    return false;
                }
                (ctx.a().*fn)(ops[0].reg, ref.base_reg, ref.offset_reg);
                return true;
            };
        };
        t["clld"] = cap_llsc(&Assembler::clld);
        t["cscd"] = cap_llsc(&Assembler::cscd);

        // cjr $rt($cN) / cjalr $cd, $rt($cN)
        t["cjr"] = [](LineAssembler &ctx, const Ops &ops,
                      std::string &error) {
            if (ops.size() != 1 || ops[0].kind != kMem ||
                !ops[0].base_is_cap || !ops[0].offset_is_reg) {
                error = "expected $index($cN)";
                return false;
            }
            ctx.a().cjr(ops[0].base_reg, ops[0].offset_reg);
            return true;
        };
        t["cjalr"] = [](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
            if (ops.size() != 2 || ops[0].kind != kCap ||
                ops[1].kind != kMem || !ops[1].base_is_cap ||
                !ops[1].offset_is_reg) {
                error = "expected $cd, $index($cN)";
                return false;
            }
            ctx.a().cjalr(ops[0].reg, ops[1].base_reg,
                          ops[1].offset_reg);
            return true;
        };

        // --- pseudo-ops ---
        t["move"] = [](LineAssembler &ctx, const Ops &ops,
                       std::string &error) {
            if (!expectKinds(ops, {kGpr, kGpr}, error))
                return false;
            ctx.a().move(ops[0].reg, ops[1].reg);
            return true;
        };
        t["li"] = [](LineAssembler &ctx, const Ops &ops,
                     std::string &error) {
            if (!expectKinds(ops, {kGpr, kImm}, error))
                return false;
            if (ops[1].imm < INT32_MIN || ops[1].imm > INT32_MAX) {
                error = "constant does not fit li; use li64";
                return false;
            }
            ctx.a().li(ops[0].reg,
                       static_cast<std::int32_t>(ops[1].imm));
            return true;
        };
        t["li64"] = [](LineAssembler &ctx, const Ops &ops,
                       std::string &error) {
            if (!expectKinds(ops, {kGpr, kImm}, error))
                return false;
            ctx.a().li64(ops[0].reg,
                         static_cast<std::uint64_t>(ops[1].imm));
            return true;
        };
        t[".word"] = [](LineAssembler &ctx, const Ops &ops,
                        std::string &error) {
            if (!expectKinds(ops, {kImm}, error))
                return false;
            ctx.a().emit(static_cast<std::uint32_t>(ops[0].imm));
            return true;
        };
        return t;
    }();
    return table;
}

} // namespace

AsmResult
assembleText(const std::string &source, std::uint64_t base_addr)
{
    AsmResult result;
    Assembler assembler(base_addr);
    std::map<std::string, Assembler::Label> labels;
    std::map<std::string, bool> bound;
    LineAssembler ctx(assembler, labels);

    std::istringstream stream(source);
    std::string raw_line;
    unsigned line_number = 0;

    while (std::getline(stream, raw_line)) {
        ++line_number;
        std::string line = trim(stripComment(raw_line));

        // Peel leading labels ("name:").
        while (true) {
            std::size_t colon = line.find(':');
            if (colon == std::string::npos)
                break;
            std::string head = trim(line.substr(0, colon));
            // Only treat as label when the head is a lone identifier.
            bool is_label = !head.empty();
            for (char c : head) {
                if (!std::isalnum(static_cast<unsigned char>(c)) &&
                    c != '_' && c != '.')
                    is_label = false;
            }
            if (!is_label ||
                std::isdigit(static_cast<unsigned char>(head[0])))
                break;
            if (bound[head]) {
                result.errors.push_back(
                    {line_number,
                     support::format("label '%s' bound twice",
                                     head.c_str())});
            } else {
                assembler.bind(ctx.labelFor(head));
                bound[head] = true;
            }
            line = trim(line.substr(colon + 1));
        }
        if (line.empty())
            continue;

        // Mnemonic and operand list.
        std::size_t space = line.find_first_of(" \t");
        std::string mnemonic = line.substr(0, space);
        for (char &c : mnemonic)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        std::string rest =
            space == std::string::npos ? "" : trim(line.substr(space));

        Ops ops;
        bool parse_ok = true;
        if (!rest.empty()) {
            std::size_t start = 0;
            while (start <= rest.size()) {
                std::size_t comma = rest.find(',', start);
                std::string piece =
                    comma == std::string::npos
                        ? rest.substr(start)
                        : rest.substr(start, comma - start);
                auto operand = parseOperand(piece);
                if (!operand) {
                    result.errors.push_back(
                        {line_number,
                         support::format("cannot parse operand '%s'",
                                         trim(piece).c_str())});
                    parse_ok = false;
                    break;
                }
                ops.push_back(*operand);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        }
        if (!parse_ok)
            continue;

        auto it = emitters().find(mnemonic);
        if (it == emitters().end()) {
            result.errors.push_back(
                {line_number, support::format("unknown mnemonic '%s'",
                                              mnemonic.c_str())});
            continue;
        }
        std::string error;
        if (!it->second(ctx, ops, error))
            result.errors.push_back({line_number, error});
    }

    // Unbound labels referenced by branches would panic in finish();
    // report them as errors instead.
    for (const auto &[name, label] : labels) {
        if (!bound[name]) {
            result.errors.push_back(
                {0, support::format("label '%s' never defined",
                                    name.c_str())});
        }
    }
    if (!result.errors.empty())
        return result;

    result.words = assembler.finish();
    return result;
}

} // namespace cheri::isa
