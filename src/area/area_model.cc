#include "area/area_model.h"

#include "support/logging.h"

namespace cheri::area
{

namespace
{

/** Representative absolute scale for the Stratix IV soft core. */
constexpr double kCheriTotalAlms = 100000.0;

/** Paper frequencies (Section 9). */
constexpr double kFmaxBeri = 110.84;
constexpr double kFmaxCheri = 102.54;

} // namespace

AreaModel::AreaModel()
    : cheri_total_alms_(kCheriTotalAlms), fmax_beri_mhz_(kFmaxBeri),
      fmax_cheri_mhz_(kFmaxCheri)
{
    // Figure 6 shares. The widening fractions apportion the datapath
    // logic that exists only to move 256-bit capabilities through the
    // pipeline and caches; they are calibrated so the BERI total is
    // exactly CHERI/1.32, the Section 9 figure.
    //
    // CHERI-only components: 14.7% + 4.0% = 18.7%. BERI must total
    // 100/1.32 = 75.76%, so widening spread over the pipeline and the
    // data-side caches accounts for the remaining 5.54 points.
    components_ = {
        {"BERI Pipeline", 0.186, false, 0.030 / 0.186},
        {"Floating Point", 0.318, false, 0.0},
        {"Capability Unit", 0.147, true, 1.0},
        {"Tag Cache", 0.040, true, 1.0},
        {"CPro0 & TLB", 0.078, false, 0.0},
        {"Level 2 Cache", 0.066, false, 0.0144 / 0.066},
        {"L1 Data Cache", 0.046, false, 0.0100 / 0.046},
        {"L1 Instr. Cache", 0.024, false, 0.0},
        {"Debug", 0.047, false, 0.0},
        {"Multiply & Divide", 0.026, false, 0.0},
        {"Branch Predictor", 0.023, false, 0.0},
    };

    double total = 0;
    for (const Component &c : components_)
        total += c.cheri_fraction;
    if (total < 0.99 || total > 1.01)
        support::panic("Figure 6 shares sum to %.3f, expected 1.0",
                       total);
}

Synthesis
AreaModel::synthesizeCheri() const
{
    Synthesis result;
    for (const Component &c : components_) {
        double alms = c.cheri_fraction * cheri_total_alms_;
        result.component_alms.emplace_back(c.name, alms);
        result.total_alms += alms;
    }
    result.fmax_mhz = fmax_cheri_mhz_;
    return result;
}

Synthesis
AreaModel::synthesizeBeri() const
{
    Synthesis result;
    for (const Component &c : components_) {
        if (c.cheri_only)
            continue;
        double alms = c.cheri_fraction * (1.0 - c.widening_fraction) *
                      cheri_total_alms_;
        result.component_alms.emplace_back(c.name, alms);
        result.total_alms += alms;
    }
    result.fmax_mhz = fmax_beri_mhz_;
    return result;
}

Synthesis
AreaModel::synthesizeCheriWidth(unsigned cap_bits) const
{
    double scale = static_cast<double>(cap_bits) / 256.0;
    Synthesis result;
    for (const Component &c : components_) {
        double fixed = c.cheri_fraction * (1.0 - c.widening_fraction);
        double scaled = c.cheri_fraction * c.widening_fraction * scale;
        double alms = (fixed + scaled) * cheri_total_alms_;
        result.component_alms.emplace_back(c.name, alms);
        result.total_alms += alms;
    }
    // Narrower datapaths relax the critical path toward the BERI
    // frequency: linear interpolation on width.
    result.fmax_mhz =
        fmax_beri_mhz_ - (fmax_beri_mhz_ - fmax_cheri_mhz_) * scale;
    return result;
}

double
AreaModel::logicOverhead() const
{
    double beri = synthesizeBeri().total_alms;
    return synthesizeCheri().total_alms / beri - 1.0;
}

double
AreaModel::clockReduction() const
{
    // The paper's 8.1% is relative to the CHERI frequency:
    // 110.84 / 102.54 - 1 = 8.09%.
    return fmax_beri_mhz_ / fmax_cheri_mhz_ - 1.0;
}

} // namespace cheri::area
