/**
 * @file
 * FPGA area and clock-speed model (Section 9, Figure 6). The paper
 * reports a synthesis of CHERI on an Altera Stratix IV: 32% more
 * logic elements than BERI, a component breakdown (Figure 6), and
 * maximum frequencies of 110.84 MHz (BERI) versus 102.54 MHz (CHERI).
 *
 * This model regenerates those numbers from per-component parameters:
 * each component has a CHERI share (Figure 6) and a widening factor
 * describing how much of it exists only to move 256-bit capabilities
 * (the paper notes the 32% includes "logic in the main pipeline to
 * allow loading and storing 256-bit capabilities into the data
 * cache"). Scaling the capability width re-derives the area of the
 * proposed 128-bit variant — the ablation Section 9 gestures at.
 */

#ifndef CHERI_AREA_AREA_MODEL_H
#define CHERI_AREA_AREA_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace cheri::area
{

/** One synthesized component. */
struct Component
{
    std::string name;
    /** Share of total CHERI logic (Figure 6), as a fraction. */
    double cheri_fraction;
    /** True when the component exists only in CHERI (cap unit, tag
     *  cache): it contributes nothing to BERI. */
    bool cheri_only;
    /** Fraction of this component that is capability-width datapath
     *  widening (absent from BERI, scales with capability size). */
    double widening_fraction;
};

/** A synthesis result. */
struct Synthesis
{
    double total_alms = 0;
    std::vector<std::pair<std::string, double>> component_alms;
    double fmax_mhz = 0;
};

/** The CHERI/BERI area and timing model. */
class AreaModel
{
  public:
    AreaModel();

    /** Component table (Figure 6 breakdown). */
    const std::vector<Component> &components() const
    {
        return components_;
    }

    /** Synthesize the full CHERI core (256-bit capabilities). */
    Synthesis synthesizeCheri() const;

    /** Synthesize the BERI baseline (no capability support). */
    Synthesis synthesizeBeri() const;

    /**
     * Synthesize a CHERI variant with the given capability width in
     * bits (128 models the proposed production format): capability-
     * unit, tag-cache and widening logic scale with width/256.
     */
    Synthesis synthesizeCheriWidth(unsigned cap_bits) const;

    /** Logic-element overhead of CHERI over BERI (paper: 32%). */
    double logicOverhead() const;

    /** Clock-speed reduction (paper: 8.1%). */
    double clockReduction() const;

  private:
    std::vector<Component> components_;
    double cheri_total_alms_;
    double fmax_beri_mhz_;
    double fmax_cheri_mhz_;
};

} // namespace cheri::area

#endif // CHERI_AREA_AREA_MODEL_H
