#include "cap/cap_ops.h"

namespace cheri::cap
{

CapOpResult
incBase(const Capability &cap, std::uint64_t delta)
{
    if (!cap.tag())
        return {CapCause::kTagViolation, cap};
    if (cap.sealed())
        return {CapCause::kSealViolation, cap};
    if (delta > cap.length())
        return {CapCause::kLengthViolation, cap};
    Capability out = cap;
    out.setBaseRaw(cap.base() + delta);
    out.setLengthRaw(cap.length() - delta);
    return {CapCause::kNone, out};
}

CapOpResult
setLen(const Capability &cap, std::uint64_t new_length)
{
    if (!cap.tag())
        return {CapCause::kTagViolation, cap};
    if (cap.sealed())
        return {CapCause::kSealViolation, cap};
    if (new_length > cap.length())
        return {CapCause::kMonotonicityViolation, cap};
    Capability out = cap;
    out.setLengthRaw(new_length);
    return {CapCause::kNone, out};
}

CapOpResult
andPerm(const Capability &cap, std::uint32_t mask)
{
    if (!cap.tag())
        return {CapCause::kTagViolation, cap};
    if (cap.sealed())
        return {CapCause::kSealViolation, cap};
    Capability out = cap;
    out.setPermsRaw(cap.perms() & mask & kPermMask);
    return {CapCause::kNone, out};
}

std::uint64_t
toPtr(const Capability &cap, const Capability &c0)
{
    if (!cap.tag())
        return 0;
    return cap.base() - c0.base();
}

CapOpResult
fromPtr(const Capability &c0, std::uint64_t ptr)
{
    if (ptr == 0)
        return {CapCause::kNone, Capability()}; // untagged NULL
    return incBase(c0, ptr);
}

namespace
{

/** Validate a sealing authority against an object type. */
CapCause
checkAuthority(const Capability &authority, std::uint64_t otype)
{
    if (!authority.tag())
        return CapCause::kTagViolation;
    if (authority.sealed())
        return CapCause::kSealViolation;
    if (!authority.hasPerms(kPermSeal))
        return CapCause::kSealViolation;
    if (!authority.covers(otype, 1))
        return CapCause::kSealViolation;
    return CapCause::kNone;
}

} // namespace

CapOpResult
seal(const Capability &cap, const Capability &authority)
{
    if (!cap.tag())
        return {CapCause::kTagViolation, cap};
    if (cap.sealed())
        return {CapCause::kSealViolation, cap};
    std::uint64_t otype = authority.base();
    if (otype > 0xffffff)
        return {CapCause::kSealViolation, cap};
    CapCause cause = checkAuthority(authority, otype);
    if (cause != CapCause::kNone)
        return {cause, cap};
    Capability out = cap;
    out.setSealedRaw(true, otype);
    return {CapCause::kNone, out};
}

CapOpResult
unseal(const Capability &cap, const Capability &authority)
{
    if (!cap.tag())
        return {CapCause::kTagViolation, cap};
    if (!cap.sealed())
        return {CapCause::kSealViolation, cap};
    CapCause cause = checkAuthority(authority, cap.otype());
    if (cause != CapCause::kNone)
        return {cause, cap};
    Capability out = cap;
    out.setSealedRaw(false, 0);
    return {CapCause::kNone, out};
}

} // namespace cheri::cap
