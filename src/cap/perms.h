/**
 * @file
 * The 31-bit capability permissions vector (Figure 1). A "1" in each
 * position indicates an allowed permission for the region. The paper
 * names load data, store data, execute, and capability load/store; the
 * remaining bits are reserved for experimentation — we expose a few of
 * them as user-defined (software) permissions, as the CHERI ISA does.
 */

#ifndef CHERI_CAP_PERMS_H
#define CHERI_CAP_PERMS_H

#include <cstdint>
#include <string>

namespace cheri::cap
{

/** Permission bit positions within the 31-bit vector. */
enum Perm : std::uint32_t
{
    kPermLoad = 1u << 0,     ///< Load data through the capability.
    kPermStore = 1u << 1,    ///< Store data through the capability.
    kPermExecute = 1u << 2,  ///< Fetch instructions through it.
    kPermLoadCap = 1u << 3,  ///< Load capabilities (CLC).
    kPermStoreCap = 1u << 4, ///< Store capabilities (CSC).
    /** Seal/unseal authority for object types within the capability's
     *  range (one of the experimental bits of Section 11). */
    kPermSeal = 1u << 5,
    /** First of the software-defined permission bits. */
    kPermUser0 = 1u << 15,
};

/** Mask of all architecturally valid permission bits (31 bits). */
constexpr std::uint32_t kPermMask = 0x7fffffffu;

/** All permissions set: the reset / almighty value. */
constexpr std::uint32_t kPermAll = kPermMask;

/** Render a permission set like "rwxRW" for diagnostics. */
std::string permString(std::uint32_t perms);

} // namespace cheri::cap

#endif // CHERI_CAP_PERMS_H
