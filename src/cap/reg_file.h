/**
 * @file
 * The capability register file: 32 capability registers mirroring the
 * MIPS integer register count (Section 4.1), plus the program-counter
 * capability PCC. C0 (register 0) is the default data capability that
 * implicitly offsets legacy MIPS loads and stores.
 */

#ifndef CHERI_CAP_REG_FILE_H
#define CHERI_CAP_REG_FILE_H

#include <array>
#include <cstdint>

#include "cap/capability.h"
#include "support/logging.h"

namespace cheri::cap
{

/** Number of architectural capability registers. */
constexpr unsigned kNumCapRegs = 32;

/**
 * CP2 architectural register state. Unlike the integer file, register
 * 0 is a real register (the default data capability C0), not a
 * hardwired zero.
 */
class CapRegFile
{
  public:
    /** Reset state: every register and PCC almighty (Section 4.3). */
    CapRegFile();

    /** Read capability register 'index'. Inline: every legacy load
     *  and store consults C0 several times on its hot path. */
    const Capability &
    read(unsigned index) const
    {
        if (index >= kNumCapRegs)
            support::panic("capability register index %u out of range",
                           index);
        return regs_[index];
    }

    /** Write capability register 'index'. */
    void
    write(unsigned index, const Capability &value)
    {
        if (index >= kNumCapRegs)
            support::panic("capability register index %u out of range",
                           index);
        regs_[index] = value;
    }

    /** The default data capability C0. */
    const Capability &c0() const { return regs_[0]; }

    /** The program-counter capability. */
    const Capability &pcc() const { return pcc_; }

    /** Replace PCC (jumps, domain transitions, reset). */
    void
    setPcc(const Capability &value)
    {
        pcc_ = value;
        ++pcc_version_;
    }

    /**
     * Counts every PCC replacement (setPcc, restore). Lets the CPU
     * cache values derived from PCC — the fetch bounds check — and
     * refresh them only when PCC has actually changed, which is once
     * per jump/domain crossing rather than once per instruction.
     */
    std::uint64_t pccVersion() const { return pcc_version_; }

    /**
     * Snapshot/restore of the full CP2 state: what the kernel saves on
     * a context switch (Section 4.3).
     */
    struct Snapshot
    {
        std::array<Capability, kNumCapRegs> regs;
        Capability pcc;
    };

    Snapshot save() const;
    void restore(const Snapshot &snapshot);

  private:
    std::array<Capability, kNumCapRegs> regs_;
    Capability pcc_;
    std::uint64_t pcc_version_ = 0;
};

} // namespace cheri::cap

#endif // CHERI_CAP_REG_FILE_H
