/**
 * @file
 * The 128-bit compressed capability variant evaluated in the limit
 * study (Section 7). Following the paper's suggestion of "128 bits
 * using 40-bit virtual addresses", the format packs:
 *
 *   bits   0..39  base     (40-bit virtual address)
 *   bits  40..79  length   (40 bits)
 *   bits  80..110 perms    (full 31-bit vector)
 *   bits 111..127 reserved
 *
 * Compression is exact within a 40-bit address space; capabilities
 * whose base or top exceed 2^40 are not representable and must stay in
 * the 256-bit format (the production tradeoff the paper discusses).
 */

#ifndef CHERI_CAP_CAP128_H
#define CHERI_CAP_CAP128_H

#include <cstdint>
#include <optional>

#include "cap/capability.h"

namespace cheri::cap
{

/** Size of the compressed in-memory representation. */
constexpr unsigned kCap128Bytes = 16;

/** Virtual-address width the compressed format supports. */
constexpr unsigned kCap128AddrBits = 40;

/** A compressed 128-bit capability image plus its tag. */
class Cap128
{
  public:
    Cap128() = default;

    /** True when cap's fields fit the 40-bit compressed format. */
    static bool isRepresentable(const Capability &cap);

    /**
     * Compress a 256-bit capability. Returns nullopt when the fields
     * do not fit (tagged capabilities only; untagged data cannot be
     * meaningfully compressed and also yields nullopt).
     */
    static std::optional<Cap128> compress(const Capability &cap);

    /** Expand back to the 256-bit architectural form. */
    Capability expand() const;

    bool tag() const { return tag_; }
    std::uint64_t base() const;
    std::uint64_t length() const;
    std::uint32_t perms() const;

    /** Raw 128-bit image (two little-endian 64-bit words). */
    std::uint64_t low() const { return lo_; }
    std::uint64_t high() const { return hi_; }

    bool operator==(const Cap128 &other) const = default;

  private:
    std::uint64_t lo_ = 0;
    std::uint64_t hi_ = 0;
    bool tag_ = false;
};

} // namespace cheri::cap

#endif // CHERI_CAP_CAP128_H
