#include "cap/cap128.h"

#include "support/bits.h"

namespace cheri::cap
{

namespace
{
constexpr std::uint64_t kFieldMask = (1ULL << kCap128AddrBits) - 1;
} // namespace

bool
Cap128::isRepresentable(const Capability &cap)
{
    if (!cap.tag())
        return false;
    if (cap.base() > kFieldMask || cap.length() > kFieldMask)
        return false;
    // The top must also stay inside the 40-bit space.
    return cap.base() + cap.length() <= (1ULL << kCap128AddrBits);
}

std::optional<Cap128>
Cap128::compress(const Capability &cap)
{
    if (!isRepresentable(cap))
        return std::nullopt;
    Cap128 c;
    // lo: base[0..39] | length[40..63] (low 24 bits of length)
    // hi: length[24..39] in bits 0..15 | perms in bits 16..46
    c.lo_ = (cap.base() & kFieldMask) |
            ((cap.length() & 0xffffff) << 40);
    c.hi_ = ((cap.length() >> 24) & 0xffff) |
            (static_cast<std::uint64_t>(cap.perms() & kPermMask) << 16);
    c.tag_ = true;
    return c;
}

std::uint64_t
Cap128::base() const
{
    return lo_ & kFieldMask;
}

std::uint64_t
Cap128::length() const
{
    return ((lo_ >> 40) & 0xffffff) | ((hi_ & 0xffff) << 24);
}

std::uint32_t
Cap128::perms() const
{
    return static_cast<std::uint32_t>((hi_ >> 16) & kPermMask);
}

Capability
Cap128::expand() const
{
    if (!tag_)
        return Capability();
    return Capability::make(base(), length(), perms());
}

} // namespace cheri::cap
