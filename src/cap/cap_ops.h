/**
 * @file
 * Guest-visible capability operations (Table 1 semantics), shared by
 * the instruction executor and the host-level API. Every mutating
 * operation strictly reduces privilege — these functions are the single
 * place where monotonicity is enforced.
 *
 * Failures are returned as CapCause values (architectural faults), not
 * host exceptions: the executor converts them into CP2 exceptions.
 */

#ifndef CHERI_CAP_CAP_OPS_H
#define CHERI_CAP_CAP_OPS_H

#include <cstdint>

#include "cap/capability.h"

namespace cheri::cap
{

/** Result of a capability-producing operation. */
struct CapOpResult
{
    CapCause cause = CapCause::kNone;
    Capability value;

    bool ok() const { return cause == CapCause::kNone; }
};

/**
 * CIncBase: advance base by delta and shrink length by the same
 * amount. Faults with kTagViolation on an untagged source (unless
 * delta is zero, the CFromPtr NULL-cast case handled by fromPtr) and
 * kLengthViolation when delta exceeds length.
 */
CapOpResult incBase(const Capability &cap, std::uint64_t delta);

/**
 * CSetLen: reduce length to new_length. Faults with kTagViolation on
 * an untagged source and kMonotonicityViolation on any attempt to grow.
 */
CapOpResult setLen(const Capability &cap, std::uint64_t new_length);

/**
 * CAndPerm: intersect permissions with mask. Faults with
 * kTagViolation on an untagged source. Never grows rights by
 * construction.
 */
CapOpResult andPerm(const Capability &cap, std::uint32_t mask);

/**
 * CToPtr: derive a C0-relative integer pointer from cap. An untagged
 * capability yields 0 (the NULL pointer), supporting pointer
 * round-trips for legacy interop (Section 4.3).
 */
std::uint64_t toPtr(const Capability &cap, const Capability &c0);

/**
 * CFromPtr: derive a capability from a C0-relative integer pointer.
 * A zero pointer yields the untagged NULL capability; otherwise this
 * is CIncBase on c0 (Section 4.3 / Table 1).
 */
CapOpResult fromPtr(const Capability &c0, std::uint64_t ptr);

/**
 * CSeal: seal 'cap' with the object type named by the sealing
 * authority 'authority' (its base is the otype). Requires authority
 * to be tagged, unsealed, hold kPermSeal, and cover the otype within
 * its range. A sealed capability is immutable and non-dereferenceable
 * until unsealed (Section 11 domain crossing).
 */
CapOpResult seal(const Capability &cap, const Capability &authority);

/**
 * CUnseal: remove the seal from 'cap' using an authority whose range
 * covers cap's object type and which holds kPermSeal.
 */
CapOpResult unseal(const Capability &cap, const Capability &authority);

/**
 * Check a data access of 'size' bytes at offset 'offset' from cap's
 * base, needing permission mask 'perm'. Returns the fault cause or
 * kNone. Offsets are 64-bit wrapping values, so a negative signed
 * index arrives as a large unsigned offset and is rejected by the
 * bounds check unless the capability genuinely covers the wrapped
 * address (only the almighty capability does). When require_alignment
 * is set (capability loads/stores), the effective address must be
 * size-aligned.
 */
inline CapCause
checkDataAccess(const Capability &cap, std::uint64_t offset,
                std::uint64_t size, std::uint32_t perm,
                bool require_alignment = false)
{
    if (!cap.tag())
        return CapCause::kTagViolation;
    if (cap.sealed())
        return CapCause::kSealViolation;
    if (!cap.hasPerms(perm)) {
        if (perm & kPermStoreCap)
            return CapCause::kPermitStoreCapViolation;
        if (perm & kPermLoadCap)
            return CapCause::kPermitLoadCapViolation;
        if (perm & kPermStore)
            return CapCause::kPermitStoreViolation;
        if (perm & kPermLoad)
            return CapCause::kPermitLoadViolation;
        return CapCause::kPermitLoadViolation;
    }
    std::uint64_t addr = cap.base() + offset;
    if (!cap.covers(addr, size))
        return CapCause::kLengthViolation;
    if (require_alignment && size != 0 && addr % size != 0)
        return CapCause::kAlignmentViolation;
    return CapCause::kNone;
}

/**
 * Check an instruction fetch of 4 bytes at absolute address pc against
 * the program-counter capability (Section 4.4: the implementation
 * validates an absolute PC against PCC). Inline: this runs once per
 * simulated instruction.
 */
inline CapCause
checkFetch(const Capability &pcc, std::uint64_t pc)
{
    if (!pcc.tag())
        return CapCause::kTagViolation;
    if (pcc.sealed())
        return CapCause::kSealViolation;
    if (!pcc.hasPerms(kPermExecute))
        return CapCause::kPermitExecuteViolation;
    if (!pcc.covers(pc, 4))
        return CapCause::kLengthViolation;
    return CapCause::kNone;
}

/** Effective address of a capability-relative access (wrapping). */
inline std::uint64_t
effectiveAddress(const Capability &cap, std::uint64_t offset)
{
    return cap.base() + offset;
}

} // namespace cheri::cap

#endif // CHERI_CAP_CAP_OPS_H
