/**
 * @file
 * The 256-bit architectural capability (Figure 1): a 64-bit base, a
 * 64-bit length, a 31-bit permissions vector, and an out-of-band tag.
 *
 * A capability register may also hold general-purpose data with its
 * tag cleared (Section 4.2) — memcpy implemented with CLC/CSC must
 * round-trip arbitrary 256-bit patterns. The register therefore stores
 * the raw 32-byte image as its canonical representation, with the
 * architectural fields decoded from fixed word positions:
 *
 *   word 0 (bits   0..63): permissions in the low 31 bits; bit 31 is
 *                          the sealed flag and bits 32..55 the object
 *                          type (Section 11 experimental fields)
 *   word 1 (bits  64..127): reserved (preserved verbatim)
 *   word 2 (bits 128..191): base
 *   word 3 (bits 192..255): length
 */

#ifndef CHERI_CAP_CAPABILITY_H
#define CHERI_CAP_CAPABILITY_H

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "cap/cap_cause.h"
#include "cap/perms.h"

namespace cheri::cap
{

/** Size of the in-memory capability representation. */
constexpr unsigned kCapBytes = 32;

/**
 * One capability register or in-memory capability: a raw 256-bit image
 * plus the tag bit. Field mutation goes through the monotonic
 * operations in cap_ops.h when modelling guest instructions; the raw
 * setters here are for machine initialization and tests.
 */
class Capability
{
  public:
    /** Untagged, zero-filled capability (the NULL capability). */
    Capability() = default;

    /** Build a tagged capability with explicit fields. */
    static Capability make(std::uint64_t base, std::uint64_t length,
                           std::uint32_t perms);

    /**
     * The almighty capability delegated at reset: base 0, maximum
     * length, all permissions (Section 4.3).
     */
    static Capability almighty();

    /** Reconstruct from a raw 256-bit memory image plus tag. */
    static Capability fromRaw(const std::array<std::uint8_t, kCapBytes> &raw,
                              bool tag);

    /** The raw 256-bit image as stored in memory. */
    const std::array<std::uint8_t, kCapBytes> &raw() const { return raw_; }

    bool tag() const { return tag_; }
    std::uint64_t base() const { return word(2); }
    std::uint64_t length() const { return word(3); }
    std::uint32_t
    perms() const
    {
        return static_cast<std::uint32_t>(word(0)) & kPermMask;
    }

    /** Sealed capabilities are immutable and non-dereferenceable
     *  until unsealed (Section 11 domain crossing). */
    bool sealed() const { return (word(0) >> 31) & 1; }

    /** Object type of a sealed capability (24 bits). */
    std::uint64_t otype() const { return (word(0) >> 32) & 0xffffff; }

    /** One-past-the-end address; saturates at 2^64-1. */
    std::uint64_t
    top() const
    {
        std::uint64_t b = base();
        std::uint64_t t = b + length();
        if (t < b) // overflow: saturate at the top of the address space
            return ~0ULL;
        return t;
    }

    /** True when [addr, addr+size) falls inside [base, top). */
    bool
    covers(std::uint64_t addr, std::uint64_t size) const
    {
        if (addr < base())
            return false;
        std::uint64_t end = addr + size;
        if (end < addr) // wrapped
            return false;
        return end <= top();
    }

    /** True when every permission in mask is granted. */
    bool
    hasPerms(std::uint32_t mask) const
    {
        return (perms() & mask) == mask;
    }

    /** Clear the tag, keeping the data image (CClearTag). */
    void clearTag() { tag_ = false; }

    // Raw field setters: machine initialization and test use only;
    // guest-visible mutation must go through cap_ops.h so that
    // monotonicity is enforced in one place.
    void setBaseRaw(std::uint64_t base) { setWord(2, base); }
    void setLengthRaw(std::uint64_t length) { setWord(3, length); }
    void setPermsRaw(std::uint32_t perms);
    void setTagRaw(bool tag) { tag_ = tag; }
    void setSealedRaw(bool sealed, std::uint64_t otype);

    /** Bytewise-equal image and equal tag. */
    bool operator==(const Capability &other) const = default;

    /** Diagnostic rendering: tag, base, length, perms. */
    std::string toString() const;

  private:
    // Inline so field reads on the check-per-instruction hot path
    // (checkFetch, covers) compile down to single loads. The image's
    // serialization is little-endian regardless of host: memcpy plus
    // an explicit swap on big-endian hosts is one 8-byte load on the
    // common case, where a byte-assembly loop was observed to survive
    // optimization as an actual 8-iteration loop.
    std::uint64_t
    word(unsigned index) const
    {
        std::uint64_t value;
        std::memcpy(&value, raw_.data() + index * 8, 8);
        if constexpr (std::endian::native == std::endian::big)
            value = __builtin_bswap64(value);
        return value;
    }

    void
    setWord(unsigned index, std::uint64_t value)
    {
        if constexpr (std::endian::native == std::endian::big)
            value = __builtin_bswap64(value);
        std::memcpy(raw_.data() + index * 8, &value, 8);
    }

    std::array<std::uint8_t, kCapBytes> raw_{};
    bool tag_ = false;
};

} // namespace cheri::cap

#endif // CHERI_CAP_CAPABILITY_H
