#include "cap/capability.h"

#include <limits>

#include "support/logging.h"

namespace cheri::cap
{

Capability
Capability::make(std::uint64_t base, std::uint64_t length,
                 std::uint32_t perms)
{
    Capability c;
    c.setBaseRaw(base);
    c.setLengthRaw(length);
    c.setPermsRaw(perms);
    c.tag_ = true;
    return c;
}

Capability
Capability::almighty()
{
    return make(0, std::numeric_limits<std::uint64_t>::max(), kPermAll);
}

Capability
Capability::fromRaw(const std::array<std::uint8_t, kCapBytes> &raw,
                    bool tag)
{
    Capability c;
    c.raw_ = raw;
    c.tag_ = tag;
    return c;
}

void
Capability::setPermsRaw(std::uint32_t perms)
{
    std::uint64_t w = word(0);
    w = (w & ~static_cast<std::uint64_t>(kPermMask)) | (perms & kPermMask);
    setWord(0, w);
}

void
Capability::setSealedRaw(bool sealed, std::uint64_t otype)
{
    std::uint64_t w = word(0);
    w &= ~(0xffffffULL << 32);      // clear otype
    w &= ~(1ULL << 31);             // clear sealed flag
    if (sealed)
        w |= (1ULL << 31) | ((otype & 0xffffff) << 32);
    setWord(0, w);
}

std::string
Capability::toString() const
{
    std::string seal_info;
    if (sealed())
        seal_info = support::format(" sealed(otype=0x%llx)",
                                    static_cast<unsigned long long>(
                                        otype()));
    return support::format(
        "cap{tag=%d base=0x%llx len=0x%llx perms=%s%s}", tag_ ? 1 : 0,
        static_cast<unsigned long long>(base()),
        static_cast<unsigned long long>(length()),
        permString(perms()).c_str(), seal_info.c_str());
}

std::string
permString(std::uint32_t perms)
{
    std::string s;
    s += (perms & kPermLoad) ? 'r' : '-';
    s += (perms & kPermStore) ? 'w' : '-';
    s += (perms & kPermExecute) ? 'x' : '-';
    s += (perms & kPermLoadCap) ? 'R' : '-';
    s += (perms & kPermStoreCap) ? 'W' : '-';
    return s;
}

const char *
capCauseName(CapCause cause)
{
    switch (cause) {
      case CapCause::kNone: return "none";
      case CapCause::kTagViolation: return "tag violation";
      case CapCause::kSealViolation: return "seal violation";
      case CapCause::kLengthViolation: return "length violation";
      case CapCause::kMonotonicityViolation:
        return "monotonicity violation";
      case CapCause::kPermitLoadViolation: return "permit-load violation";
      case CapCause::kPermitStoreViolation:
        return "permit-store violation";
      case CapCause::kPermitExecuteViolation:
        return "permit-execute violation";
      case CapCause::kPermitLoadCapViolation:
        return "permit-load-capability violation";
      case CapCause::kPermitStoreCapViolation:
        return "permit-store-capability violation";
      case CapCause::kTlbNoLoadCap: return "TLB capability-load denied";
      case CapCause::kTlbNoStoreCap: return "TLB capability-store denied";
      case CapCause::kAlignmentViolation: return "alignment violation";
    }
    return "unknown";
}

} // namespace cheri::cap
