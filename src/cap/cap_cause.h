/**
 * @file
 * Capability exception causes. These are guest-visible architectural
 * values delivered through the CP2 cause register when a capability
 * check fails; they are never host C++ exceptions.
 */

#ifndef CHERI_CAP_CAP_CAUSE_H
#define CHERI_CAP_CAP_CAUSE_H

namespace cheri::cap
{

/** Why a capability instruction or checked access faulted. */
enum class CapCause
{
    kNone,
    /** Operated on or dereferenced an untagged capability. */
    kTagViolation,
    /** Operated on or dereferenced a sealed capability, or seal /
     *  unseal authority was missing or mismatched (Section 11's
     *  protected domain-crossing experiments). */
    kSealViolation,
    /** Offset or extent fell outside [base, base+length). */
    kLengthViolation,
    /** Attempted to grow length or move base backwards. */
    kMonotonicityViolation,
    /** Load-data permission missing. */
    kPermitLoadViolation,
    /** Store-data permission missing. */
    kPermitStoreViolation,
    /** Execute permission missing. */
    kPermitExecuteViolation,
    /** Load-capability permission missing. */
    kPermitLoadCapViolation,
    /** Store-capability permission missing. */
    kPermitStoreCapViolation,
    /** TLB page did not authorize a capability load (PTE bit). */
    kTlbNoLoadCap,
    /** TLB page did not authorize a capability store (PTE bit). */
    kTlbNoStoreCap,
    /** Capability-relative access was not naturally aligned. */
    kAlignmentViolation,
};

/** Human-readable cause name (for traps, logs and tests). */
const char *capCauseName(CapCause cause);

} // namespace cheri::cap

#endif // CHERI_CAP_CAP_CAUSE_H
