#include "cap/reg_file.h"

#include "support/logging.h"

namespace cheri::cap
{

CapRegFile::CapRegFile()
{
    regs_.fill(Capability::almighty());
    pcc_ = Capability::almighty();
}

const Capability &
CapRegFile::read(unsigned index) const
{
    if (index >= kNumCapRegs)
        support::panic("capability register index %u out of range", index);
    return regs_[index];
}

void
CapRegFile::write(unsigned index, const Capability &value)
{
    if (index >= kNumCapRegs)
        support::panic("capability register index %u out of range", index);
    regs_[index] = value;
}

CapRegFile::Snapshot
CapRegFile::save() const
{
    return Snapshot{regs_, pcc_};
}

void
CapRegFile::restore(const Snapshot &snapshot)
{
    regs_ = snapshot.regs;
    setPcc(snapshot.pcc);
}

} // namespace cheri::cap
