#include "cap/reg_file.h"

#include "support/logging.h"

namespace cheri::cap
{

CapRegFile::CapRegFile()
{
    regs_.fill(Capability::almighty());
    pcc_ = Capability::almighty();
}

CapRegFile::Snapshot
CapRegFile::save() const
{
    return Snapshot{regs_, pcc_};
}

void
CapRegFile::restore(const Snapshot &snapshot)
{
    regs_ = snapshot.regs;
    setPcc(snapshot.pcc);
}

} // namespace cheri::cap
