/**
 * @file
 * The concrete protection models of the Section 7 limit study:
 * Mondrian, iMPX (table and fat-pointer modes), software fat
 * pointers, Hardbound, the M-Machine, and CHERI in its 256-bit and
 * 128-bit forms — plus the plain MMU for the Table 2 feature matrix.
 */

#ifndef CHERI_MODELS_LIMIT_MODELS_H
#define CHERI_MODELS_LIMIT_MODELS_H

#include "models/protection_model.h"

namespace cheri::models
{

/** Conventional MMU (Section 6.1). Table 2 only: page-granularity
 *  address validity provides no per-pointer protection to measure. */
class MmuModel : public ProtectionModel
{
  public:
    std::string name() const override { return "MMU"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

/** Mondrian memory protection (Section 6.2): supervisor-maintained
 *  word-granularity permission tables behind a PLB. */
class MondrianModel : public ProtectionModel
{
  public:
    std::string name() const override { return "Mondrian"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

/** iMPX with architecturally-supported look-aside bounds tables
 *  (Section 6.4), ABI-preserving. */
class MpxTableModel : public ProtectionModel
{
  public:
    std::string name() const override { return "MPX"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

/** iMPX with compiler-managed consecutive fat pointers. */
class MpxFatPtrModel : public ProtectionModel
{
  public:
    std::string name() const override { return "MPX(FP)"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

/** Pure software fat pointers (Cyclone/CCured style, Section 5.1). */
class SoftFatPtrModel : public ProtectionModel
{
  public:
    std::string name() const override { return "SoftwareFP"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

/** Hardbound (Section 6.3): shadow base/bounds table, tag table, and
 *  pointer compression for small word-aligned objects. */
class HardboundModel : public ProtectionModel
{
  public:
    std::string name() const override { return "Hardbound"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

/** M-Machine guarded pointers (Section 6.5): 64-bit compressed fat
 *  pointers, power-of-two segment padding. */
class MMachineModel : public ProtectionModel
{
  public:
    std::string name() const override { return "M-Machine"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

/** CHERI with the 256-bit research capability format (Figure 1). */
class Cheri256Model : public ProtectionModel
{
  public:
    std::string name() const override { return "CHERI"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

/** CHERI with the proposed 128-bit production format (Section 7). */
class Cheri128Model : public ProtectionModel
{
  public:
    std::string name() const override { return "128b CHERI"; }
    Overheads evaluate(const trace::TraceProfile &p) const override;
    FeatureRow features() const override;
};

} // namespace cheri::models

#endif // CHERI_MODELS_LIMIT_MODELS_H
