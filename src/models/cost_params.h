/**
 * @file
 * Cost parameters for the limit-study models (Section 7). Each value
 * is an explicit modeling decision, documented against the paper's
 * description of how it adapted the scheme to 64-bit MIPS.
 */

#ifndef CHERI_MODELS_COST_PARAMS_H
#define CHERI_MODELS_COST_PARAMS_H

#include <cstdint>

namespace cheri::models
{

/** Instructions for a minimal kernel entry/exit (Mondrian's per-
 *  allocation domain switch; Section 6.2). */
constexpr std::uint64_t kSyscallInstructions = 150;

/** Mondrian: one 64-bit record holds permissions for 16 nodes of 8
 *  bytes = 128 bytes of address space (Section 7, "records are
 *  extended to 64 bits and hold permissions for 16 nodes"). */
constexpr std::uint64_t kMondrianRecordCoverage = 128;
constexpr std::uint64_t kMondrianRecordBytes = 8;
/** Instructions of the "minimal table fill algorithm in C" charged
 *  per record written. Kernel entry/exit is NOT included here: the
 *  paper reports the system-call rate as a separate metric, so the
 *  instruction panels carry only the fill algorithm itself. */
constexpr std::uint64_t kMondrianFillInstrPerRecord = 4;
/** Table-walk traffic on first touch of a page: first- and mid-level
 *  reads of 8 bytes each. */
constexpr std::uint64_t kMondrianWalkBytes = 16;
constexpr std::uint64_t kMondrianWalkRefs = 2;

/** iMPX: a bounds-table leaf entry is 256 bits (base, bound, the
 *  expected pointer value, and 64 reserved bits; Section 6.4). */
constexpr std::uint64_t kMpxEntryBytes = 32;
/** Directory read accompanying each BNDLDX/BNDSTX table access. */
constexpr std::uint64_t kMpxDirectoryBytes = 8;
/** Explicit check instructions per checked access (BNDCL + BNDCU). */
constexpr std::uint64_t kMpxCheckInstr = 2;
/** Leaf table inflation: >4 table pages per page of pointers
 *  ("maintaining 256 bits in the leaf nodes for each 64-bit memory
 *  location", Section 7). */
constexpr std::uint64_t kMpxTablePagesPerPtrPage = 4;

/** iMPX fat-pointer mode: no compression, 320 bits per pointer, so 32
 *  extra bytes alongside each 8-byte pointer (Section 6.4). */
constexpr std::uint64_t kMpxFpExtraBytesPerPtr = 32;
constexpr std::uint64_t kMpxFpExtraRefsPerPtr = 4;

/** Software fat pointers: {pointer, base, bound} = 24 bytes, 16 extra;
 *  a software bounds check costs ~4 instructions (two compares, two
 *  branches). */
constexpr std::uint64_t kSoftFpExtraBytesPerPtr = 16;
constexpr std::uint64_t kSoftFpExtraRefsPerPtr = 2;
constexpr std::uint64_t kSoftFpCheckInstr = 4;
constexpr std::uint64_t kSoftFpMallocInstr = 2;

/** Hardbound: 64-bit base + 64-bit bound per incompressible pointer,
 *  fetched from the direct-offset shadow table in one 128-bit access
 *  (Section 7). */
constexpr std::uint64_t kHardboundTableBytes = 16;
/** Tag table: 2 bits per 64-bit word = footprint/32 bytes. */
constexpr std::uint64_t kHardboundTagDivisor = 32;

/** CHERI: tag table is 1 bit per 256-bit line = footprint/256 bytes
 *  (Section 4.2: 4 MB per GB). */
constexpr std::uint64_t kCheriTagDivisor = 256;
/** Extra in-line pointer bytes: 256-bit capability vs 64-bit ptr. */
constexpr std::uint64_t kCheri256ExtraBytesPerPtr = 24;
/** And the 128-bit production variant. */
constexpr std::uint64_t kCheri128ExtraBytesPerPtr = 8;

/** Fat-pointer-setup instructions charged per allocation for the
 *  hardware schemes (Section 8: "CHERI requires one extra instruction
 *  for each allocation to set bounds"). */
constexpr std::uint64_t kHwSetBoundsInstr = 1;

constexpr std::uint64_t kPageBytes = 4096;

} // namespace cheri::models

#endif // CHERI_MODELS_COST_PARAMS_H
