/**
 * @file
 * The protection-model interface for the Section 7 limit study. Each
 * model consumes the shared trace profile and reports the five
 * overhead metrics of Figure 3 plus the system-call count, all
 * normalized against the unprotected 64-bit MIPS baseline. Each model
 * also carries its Table 2 feature row.
 */

#ifndef CHERI_MODELS_PROTECTION_MODEL_H
#define CHERI_MODELS_PROTECTION_MODEL_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/profile.h"

namespace cheri::models
{

/** The five Figure 3 panels plus the syscall rate, as overheads. */
struct Overheads
{
    /** Fractional overheads vs baseline (0.15 == +15%). */
    double pages = 0.0;        ///< virtual memory footprint (pages)
    double traffic_bytes = 0.0;///< memory I/O (bytes)
    double refs = 0.0;         ///< memory references (count)
    double instr_optimistic = 0.0;
    double instr_pessimistic = 0.0;
    /** Absolute protection-related system calls. */
    std::uint64_t syscalls = 0;
};

/** Tri-state entry for the Table 2 feature matrix. */
enum class Feature
{
    kYes,
    kNo,
    kNotApplicable,
    kPartial, ///< Mondrian's heap-only fine granularity (footnote **)
};

/** One Table 2 row. */
struct FeatureRow
{
    Feature unprivileged_use;
    Feature fine_grained;
    Feature unforgeable;
    Feature access_control;
    Feature pointer_safety;
    Feature segment_scalability;
    Feature domain_scalability;
    Feature incremental_deployment;
};

/** Render a Feature cell like the paper's check/dash/n-a marks. */
const char *featureMark(Feature feature);

/** A protection scheme evaluated by the limit study. */
class ProtectionModel
{
  public:
    virtual ~ProtectionModel() = default;

    /** Display name, as in Figure 3's x-axis. */
    virtual std::string name() const = 0;

    /** Evaluate the model's overheads against a trace profile. */
    virtual Overheads evaluate(const trace::TraceProfile &p) const = 0;

    /** This model's Table 2 row. */
    virtual FeatureRow features() const = 0;
};

/**
 * All models in the paper's Figure 3 order: Mondrian, MPX, MPX(FP),
 * Software FP, Hardbound, M-Machine, CHERI (256-bit), 128-bit CHERI.
 */
std::vector<std::unique_ptr<ProtectionModel>> limitStudyModels();

/**
 * All models in Table 2 order (MMU first, which is not in the limit
 * study because it cannot provide per-pointer protection at all).
 */
std::vector<std::unique_ptr<ProtectionModel>> featureTableModels();

} // namespace cheri::models

#endif // CHERI_MODELS_PROTECTION_MODEL_H
