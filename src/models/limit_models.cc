#include "models/limit_models.h"

#include "models/cost_params.h"

namespace cheri::models
{

namespace
{

double
frac(double extra, double base)
{
    return base > 0.0 ? extra / base : 0.0;
}

constexpr Feature kYes = Feature::kYes;
constexpr Feature kNo = Feature::kNo;
constexpr Feature kNa = Feature::kNotApplicable;

} // namespace

// --------------------------------------------------------------- MMU

Overheads
MmuModel::evaluate(const trace::TraceProfile &) const
{
    // Page-granularity address validation adds nothing per pointer:
    // there is no per-pointer protection whose overhead could be
    // measured, which is exactly why the MMU row exists only in the
    // functional comparison (Table 2).
    return Overheads{};
}

FeatureRow
MmuModel::features() const
{
    return {kNo, kNo, kNo, kYes, kNo, kNo, kNo, kYes};
}

// ---------------------------------------------------------- Mondrian

Overheads
MondrianModel::evaluate(const trace::TraceProfile &p) const
{
    Overheads o;
    const trace::BaselineStats &b = p.base;

    // Protection table: one 8-byte record per 128 bytes of protected
    // footprint, plus two upper-level pages.
    double table_bytes =
        static_cast<double>(p.footprint_bytes) / kMondrianRecordCoverage *
        kMondrianRecordBytes;
    double table_pages = table_bytes / kPageBytes + 2.0;
    o.pages = frac(table_pages, static_cast<double>(b.pages_touched));

    // Records written over the block's lifetime: the kernel fill
    // dirties each record on malloc, and the free-time clear
    // write-combines into the same cache lines, so the DRAM traffic
    // is one record-set write per allocate/free pair.
    double records =
        static_cast<double>(b.heap_bytes) / kMondrianRecordCoverage +
        static_cast<double>(b.mallocs);
    double update_bytes = records * kMondrianRecordBytes;
    // Table walks: one two-level read per first-touched page.
    double walk_bytes =
        static_cast<double>(b.pages_touched) * kMondrianWalkBytes;
    o.traffic_bytes =
        frac(update_bytes + walk_bytes,
             static_cast<double>(b.memory_bytes));

    double extra_refs =
        static_cast<double>(b.pages_touched) * kMondrianWalkRefs +
        records;
    o.refs = frac(extra_refs, static_cast<double>(b.memory_refs));

    // Every allocation and free is a domain switch (Section 6.2); the
    // kernel entry/exit burden is reported as the system-call rate
    // (the paper's separate metric), while the instruction panels
    // carry the software table-fill algorithm itself.
    double instr = 2.0 * records * kMondrianFillInstrPerRecord;
    o.instr_optimistic = frac(instr, static_cast<double>(b.instructions));
    o.instr_pessimistic = o.instr_optimistic;
    o.syscalls = b.mallocs + b.frees;
    return o;
}

FeatureRow
MondrianModel::features() const
{
    return {kNo, Feature::kPartial, kNo, kYes, kNo, kYes, kNo, kYes};
}

// --------------------------------------------------------- MPX table

Overheads
MpxTableModel::evaluate(const trace::TraceProfile &p) const
{
    Overheads o;
    const trace::BaselineStats &b = p.base;

    // Leaf tables: >4 pages of table per page of pointers, plus a
    // directory page per 512 leaf pages.
    double table_pages =
        static_cast<double>(p.ptr_pages) * kMpxTablePagesPerPtrPage;
    table_pages += table_pages / 512.0 + 1.0;
    o.pages = frac(table_pages, static_cast<double>(b.pages_touched));

    // BNDLDX/BNDSTX walk the directory and move one 32-byte entry for
    // every pointer load and store.
    double per_ref_bytes = kMpxEntryBytes + kMpxDirectoryBytes;
    o.traffic_bytes = frac(static_cast<double>(p.ptr_refs) * per_ref_bytes,
                           static_cast<double>(b.memory_bytes));
    o.refs = frac(static_cast<double>(p.ptr_refs) * 2.0,
                  static_cast<double>(b.memory_refs));

    // One BNDLDX/BNDSTX per pointer move; explicit BNDCL/BNDCU checks
    // once per pointer load (optimistic) or per dereference
    // (pessimistic).
    double moves = static_cast<double>(p.ptr_refs);
    double opt = moves + kMpxCheckInstr *
                             static_cast<double>(b.pointer_loads);
    double pess =
        moves + kMpxCheckInstr * static_cast<double>(p.derefs);
    o.instr_optimistic = frac(opt, static_cast<double>(b.instructions));
    o.instr_pessimistic = frac(pess, static_cast<double>(b.instructions));
    return o;
}

FeatureRow
MpxTableModel::features() const
{
    return {kYes, kYes, kYes, kNo, kYes, kYes, kNa, kYes};
}

// ---------------------------------------------------------- MPX (FP)

Overheads
MpxFatPtrModel::evaluate(const trace::TraceProfile &p) const
{
    Overheads o;
    const trace::BaselineStats &b = p.base;

    double inflation = static_cast<double>(p.ptr_locations) *
                       kMpxFpExtraBytesPerPtr;
    o.pages = frac(inflation / kPageBytes,
                   static_cast<double>(b.pages_touched));

    o.traffic_bytes =
        frac(static_cast<double>(p.ptr_refs) * kMpxFpExtraBytesPerPtr,
             static_cast<double>(b.memory_bytes));
    o.refs = frac(static_cast<double>(p.ptr_refs) *
                      kMpxFpExtraRefsPerPtr,
                  static_cast<double>(b.memory_refs));

    double moves =
        static_cast<double>(p.ptr_refs) * kMpxFpExtraRefsPerPtr;
    double opt = moves + kMpxCheckInstr *
                             static_cast<double>(b.pointer_loads);
    double pess = moves + kMpxCheckInstr * static_cast<double>(p.derefs);
    o.instr_optimistic = frac(opt, static_cast<double>(b.instructions));
    o.instr_pessimistic = frac(pess, static_cast<double>(b.instructions));
    return o;
}

FeatureRow
MpxFatPtrModel::features() const
{
    return {kYes, kYes, kNo, kNo, kYes, kYes, kNa, kNo};
}

// ------------------------------------------------------- Software FP

Overheads
SoftFatPtrModel::evaluate(const trace::TraceProfile &p) const
{
    Overheads o;
    const trace::BaselineStats &b = p.base;

    double inflation = static_cast<double>(p.ptr_locations) *
                       kSoftFpExtraBytesPerPtr;
    o.pages = frac(inflation / kPageBytes,
                   static_cast<double>(b.pages_touched));

    o.traffic_bytes =
        frac(static_cast<double>(p.ptr_refs) * kSoftFpExtraBytesPerPtr,
             static_cast<double>(b.memory_bytes));
    o.refs = frac(static_cast<double>(p.ptr_refs) *
                      kSoftFpExtraRefsPerPtr,
                  static_cast<double>(b.memory_refs));

    double moves =
        static_cast<double>(p.ptr_refs) * kSoftFpExtraRefsPerPtr;
    double setup = static_cast<double>(b.mallocs) * kSoftFpMallocInstr;
    double opt = moves + setup +
                 kSoftFpCheckInstr * static_cast<double>(b.pointer_loads);
    double pess = moves + setup +
                  kSoftFpCheckInstr * static_cast<double>(p.derefs);
    o.instr_optimistic = frac(opt, static_cast<double>(b.instructions));
    o.instr_pessimistic = frac(pess, static_cast<double>(b.instructions));
    return o;
}

FeatureRow
SoftFatPtrModel::features() const
{
    // Software fat pointers behave like the iMPX fat-pointer row:
    // forgeable, no access control, intrusive to the ABI.
    return {kYes, kYes, kNo, kNo, kYes, kYes, kNa, kNo};
}

// --------------------------------------------------------- Hardbound

Overheads
HardboundModel::evaluate(const trace::TraceProfile &p) const
{
    Overheads o;
    const trace::BaselineStats &b = p.base;

    double incompressible = static_cast<double>(
        p.ptr_refs - p.compressible_ptr_refs);
    double incompressible_fraction =
        p.ptr_refs ? incompressible / static_cast<double>(p.ptr_refs)
                   : 0.0;

    // Shadow bounds table: two table pages per pointer page, scaled by
    // the fraction of pointers that actually need entries; plus the
    // 2-bits-per-word tag table.
    double table_pages = 2.0 * static_cast<double>(p.ptr_pages) *
                         incompressible_fraction;
    double tag_pages = static_cast<double>(p.footprint_bytes) /
                       kHardboundTagDivisor / kPageBytes;
    o.pages = frac(table_pages + tag_pages,
                   static_cast<double>(b.pages_touched));

    // Tag-table traffic scales with data traffic (2 bits per 64-bit
    // word travel with every access, modulo caching), plus the
    // bounds-table accesses for incompressible pointers.
    double table_bytes = incompressible * kHardboundTableBytes;
    double tag_bytes = static_cast<double>(b.memory_bytes) /
                       kHardboundTagDivisor +
                       static_cast<double>(p.footprint_bytes) /
                           kHardboundTagDivisor;
    o.traffic_bytes = frac(table_bytes + tag_bytes,
                           static_cast<double>(b.memory_bytes));
    o.refs = frac(incompressible + tag_bytes / 32.0,
                  static_cast<double>(b.memory_refs));

    // Hardware checks are implicit; the only extra instruction is
    // setbound at allocation.
    double instr = static_cast<double>(b.mallocs) * kHwSetBoundsInstr;
    o.instr_optimistic = frac(instr, static_cast<double>(b.instructions));
    o.instr_pessimistic = o.instr_optimistic;
    return o;
}

FeatureRow
HardboundModel::features() const
{
    return {kYes, kYes, kYes, kNo, kYes, kYes, kNa, kYes};
}

// --------------------------------------------------------- M-Machine

Overheads
MMachineModel::evaluate(const trace::TraceProfile &p) const
{
    Overheads o;
    const trace::BaselineStats &b = p.base;

    // Guarded pointers stay 64-bit; the cost is power-of-two padding
    // of every allocation (Section 6.5).
    o.pages = frac(static_cast<double>(p.pow2_padding_bytes) /
                       kPageBytes,
                   static_cast<double>(b.pages_touched));
    o.traffic_bytes = 0.0;
    o.refs = 0.0;

    double instr = static_cast<double>(b.mallocs) * kHwSetBoundsInstr;
    o.instr_optimistic = frac(instr, static_cast<double>(b.instructions));
    o.instr_pessimistic = o.instr_optimistic;
    return o;
}

FeatureRow
MMachineModel::features() const
{
    return {kYes, kNo, kYes, kYes, kYes, kYes, kYes, kNo};
}

// ------------------------------------------------------------- CHERI

namespace
{

Overheads
cheriOverheads(const trace::TraceProfile &p,
               std::uint64_t extra_bytes_per_ptr)
{
    Overheads o;
    const trace::BaselineStats &b = p.base;

    // Inline capabilities inflate structures holding pointers; tags
    // add 1 bit per 256-bit line of footprint.
    double inflation = static_cast<double>(p.ptr_locations) *
                       static_cast<double>(extra_bytes_per_ptr);
    double tag_bytes =
        static_cast<double>(p.footprint_bytes) / kCheriTagDivisor;
    o.pages = frac((inflation + tag_bytes) / kPageBytes,
                   static_cast<double>(b.pages_touched));

    // Every pointer load/store moves a whole capability; the tag
    // travels with the cache line, so there is no separate reference,
    // and the tag table costs only its cold-fill traffic (the 8 KB
    // tag cache absorbs re-references; Section 4.2).
    o.traffic_bytes =
        frac(static_cast<double>(p.ptr_refs) *
                     static_cast<double>(extra_bytes_per_ptr) +
                 tag_bytes,
             static_cast<double>(b.memory_bytes));
    o.refs = 0.0;

    // CIncBase/CSetLen at allocation; all checks are implicit.
    double instr = static_cast<double>(b.mallocs) * kHwSetBoundsInstr;
    o.instr_optimistic = frac(instr, static_cast<double>(b.instructions));
    o.instr_pessimistic = o.instr_optimistic;
    return o;
}

} // namespace

Overheads
Cheri256Model::evaluate(const trace::TraceProfile &p) const
{
    return cheriOverheads(p, kCheri256ExtraBytesPerPtr);
}

FeatureRow
Cheri256Model::features() const
{
    return {kYes, kYes, kYes, kYes, kYes, kYes, kYes, kYes};
}

Overheads
Cheri128Model::evaluate(const trace::TraceProfile &p) const
{
    return cheriOverheads(p, kCheri128ExtraBytesPerPtr);
}

FeatureRow
Cheri128Model::features() const
{
    return {kYes, kYes, kYes, kYes, kYes, kYes, kYes, kYes};
}

// ---------------------------------------------------------- registry

std::vector<std::unique_ptr<ProtectionModel>>
limitStudyModels()
{
    std::vector<std::unique_ptr<ProtectionModel>> models;
    models.push_back(std::make_unique<MondrianModel>());
    models.push_back(std::make_unique<MpxTableModel>());
    models.push_back(std::make_unique<MpxFatPtrModel>());
    models.push_back(std::make_unique<SoftFatPtrModel>());
    models.push_back(std::make_unique<HardboundModel>());
    models.push_back(std::make_unique<MMachineModel>());
    models.push_back(std::make_unique<Cheri256Model>());
    models.push_back(std::make_unique<Cheri128Model>());
    return models;
}

std::vector<std::unique_ptr<ProtectionModel>>
featureTableModels()
{
    std::vector<std::unique_ptr<ProtectionModel>> models;
    models.push_back(std::make_unique<MmuModel>());
    models.push_back(std::make_unique<MondrianModel>());
    models.push_back(std::make_unique<HardboundModel>());
    models.push_back(std::make_unique<MpxTableModel>());
    models.push_back(std::make_unique<MpxFatPtrModel>());
    models.push_back(std::make_unique<MMachineModel>());
    models.push_back(std::make_unique<Cheri256Model>());
    return models;
}

const char *
featureMark(Feature feature)
{
    switch (feature) {
      case Feature::kYes: return "yes";
      case Feature::kNo: return "-";
      case Feature::kNotApplicable: return "n/a";
      case Feature::kPartial: return "yes**";
    }
    return "?";
}

} // namespace cheri::models
