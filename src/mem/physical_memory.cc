#include "mem/physical_memory.h"

#include <cstring>

#include "support/logging.h"

namespace cheri::mem
{

PhysicalMemory::PhysicalMemory(std::uint64_t size_bytes)
    : data_(size_bytes, 0)
{
    if (size_bytes == 0 || size_bytes % kLineBytes != 0) {
        support::fatal("DRAM size %llu must be a nonzero multiple of "
                       "%llu bytes",
                       static_cast<unsigned long long>(size_bytes),
                       static_cast<unsigned long long>(kLineBytes));
    }
}

void
PhysicalMemory::checkRange(std::uint64_t paddr, std::uint64_t len) const
{
    if (paddr > data_.size() || len > data_.size() - paddr) {
        support::panic("physical access [0x%llx, +%llu) beyond DRAM "
                       "size 0x%llx",
                       static_cast<unsigned long long>(paddr),
                       static_cast<unsigned long long>(len),
                       static_cast<unsigned long long>(data_.size()));
    }
}

std::uint8_t
PhysicalMemory::readByte(std::uint64_t paddr) const
{
    checkRange(paddr, 1);
    return data_[paddr];
}

void
PhysicalMemory::writeByte(std::uint64_t paddr, std::uint8_t value)
{
    checkRange(paddr, 1);
    data_[paddr] = value;
}

std::uint64_t
PhysicalMemory::read(std::uint64_t paddr, unsigned size_bytes) const
{
    checkRange(paddr, size_bytes);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size_bytes; ++i)
        value |= static_cast<std::uint64_t>(data_[paddr + i]) << (8 * i);
    return value;
}

void
PhysicalMemory::write(std::uint64_t paddr, unsigned size_bytes,
                      std::uint64_t value)
{
    checkRange(paddr, size_bytes);
    for (unsigned i = 0; i < size_bytes; ++i)
        data_[paddr + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

Line
PhysicalMemory::readLine(std::uint64_t paddr) const
{
    if (paddr % kLineBytes != 0)
        support::panic("unaligned line read at 0x%llx",
                       static_cast<unsigned long long>(paddr));
    checkRange(paddr, kLineBytes);
    Line line;
    std::memcpy(line.data(), data_.data() + paddr, kLineBytes);
    return line;
}

void
PhysicalMemory::writeLine(std::uint64_t paddr, const Line &line)
{
    if (paddr % kLineBytes != 0)
        support::panic("unaligned line write at 0x%llx",
                       static_cast<unsigned long long>(paddr));
    checkRange(paddr, kLineBytes);
    std::memcpy(data_.data() + paddr, line.data(), kLineBytes);
}

void
PhysicalMemory::writeBlock(std::uint64_t paddr, const std::uint8_t *src,
                           std::uint64_t len)
{
    checkRange(paddr, len);
    std::memcpy(data_.data() + paddr, src, len);
}

void
PhysicalMemory::restore(const Snapshot &snapshot)
{
    if (snapshot.data.size() != data_.size()) {
        support::panic("DRAM snapshot size 0x%llx does not match "
                       "configured size 0x%llx",
                       static_cast<unsigned long long>(
                           snapshot.data.size()),
                       static_cast<unsigned long long>(data_.size()));
    }
    data_ = snapshot.data;
}

} // namespace cheri::mem
