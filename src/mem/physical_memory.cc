#include "mem/physical_memory.h"

#include "support/logging.h"

namespace cheri::mem
{

PhysicalMemory::PhysicalMemory(std::uint64_t size_bytes)
    : store_(std::make_shared<CowStore>(size_bytes))
{
}

PhysicalMemory::PhysicalMemory(std::shared_ptr<CowStore> store)
    : store_(std::move(store))
{
    if (!store_)
        support::panic("PhysicalMemory built over a null store");
}

std::uint8_t
PhysicalMemory::readByte(std::uint64_t paddr) const
{
    return store_->readByte(paddr);
}

void
PhysicalMemory::writeByte(std::uint64_t paddr, std::uint8_t value)
{
    store_->writeByte(paddr, value);
}

std::uint64_t
PhysicalMemory::read(std::uint64_t paddr, unsigned size_bytes) const
{
    std::uint8_t bytes[8];
    store_->readBytes(paddr, bytes, size_bytes);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size_bytes; ++i)
        value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return value;
}

void
PhysicalMemory::write(std::uint64_t paddr, unsigned size_bytes,
                      std::uint64_t value)
{
    std::uint8_t bytes[8];
    for (unsigned i = 0; i < size_bytes; ++i)
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    store_->writeBytes(paddr, bytes, size_bytes);
}

Line
PhysicalMemory::readLine(std::uint64_t paddr) const
{
    if (paddr % kLineBytes != 0)
        support::guestFault("mem", "unaligned line read at 0x%llx",
                            static_cast<unsigned long long>(paddr));
    Line line;
    store_->readBytes(paddr, line.data(), kLineBytes);
    return line;
}

void
PhysicalMemory::writeLine(std::uint64_t paddr, const Line &line)
{
    if (paddr % kLineBytes != 0)
        support::guestFault("mem", "unaligned line write at 0x%llx",
                            static_cast<unsigned long long>(paddr));
    store_->writeBytes(paddr, line.data(), kLineBytes);
}

void
PhysicalMemory::writeBlock(std::uint64_t paddr, const std::uint8_t *src,
                           std::uint64_t len)
{
    store_->writeBytes(paddr, src, len);
}

void
PhysicalMemory::restore(const Snapshot &snapshot)
{
    store_->assignData(snapshot.data);
}

} // namespace cheri::mem
