/**
 * @file
 * The tag manager sits below the last-level cache and presents a
 * 257-bit tagged-memory interface to the cache hierarchy (Section
 * 4.2): each 256-bit line travels with its capability tag. The manager
 * fetches tags from the DRAM-resident tag table, and an 8 KB tag cache
 * absorbs most table lookups so tagging "does not noticeably degrade
 * performance".
 */

#ifndef CHERI_MEM_TAG_MANAGER_H
#define CHERI_MEM_TAG_MANAGER_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mem/physical_memory.h"
#include "mem/tag_table.h"
#include "support/stats.h"

namespace cheri::mem
{

/** A 256-bit line plus its capability tag: the 257-bit interface. */
struct TaggedLine
{
    Line data{};
    bool tag = false;
};

/** Configuration for the tag cache below the LLC. */
struct TagCacheConfig
{
    /** Total tag-cache capacity in bytes of tag-table data (8 KB). */
    std::uint64_t capacity_bytes = 8 * 1024;
    /** Tag-table bytes cached per entry (one 32-byte table line). */
    std::uint64_t entry_bytes = 32;
};

/**
 * Tagged DRAM endpoint. All reads and writes from the cache hierarchy
 * terminate here; the manager keeps data and tags consistent and
 * accounts for the extra DRAM traffic the tag table would cost, net of
 * the tag cache.
 *
 * Stats exposed via stats():
 *  - "dram.reads", "dram.writes": data-line transactions;
 *  - "tag.lookups": transactions needing a tag;
 *  - "tag.cache_hits" / "tag.cache_misses": tag-cache behaviour;
 *  - "tag.table_reads" / "tag.table_writes": DRAM tag-table accesses.
 */
class TagManager
{
  public:
    TagManager(PhysicalMemory &dram, TagTable &tags,
               TagCacheConfig config = {});

    /** Read a 257-bit line (data + tag). */
    TaggedLine readLine(std::uint64_t paddr);

    /** Write a 257-bit line (data + tag). */
    void writeLine(std::uint64_t paddr, const TaggedLine &line);

    /**
     * Read the tag without the data (used when a narrow store needs
     * the invalidate-on-write semantics checked by tests).
     */
    bool readTag(std::uint64_t paddr);

    /** Accumulated statistics. */
    const support::StatSet &stats() const { return stats_; }

    /** Reset statistics (not state). */
    void resetStats() { stats_.reset(); }

    /**
     * Tag-cache occupancy (most-recent-first) plus statistics,
     * captured for machine checkpointing. Data and tags themselves
     * live in PhysicalMemory/TagTable and are snapshotted there.
     */
    struct Snapshot
    {
        std::vector<std::uint64_t> lru;
        support::StatSet stats;
    };

    /** Capture tag-cache contents and statistics. */
    Snapshot save() const;

    /** Restore tag-cache contents and statistics. */
    void restore(const Snapshot &snapshot);

  private:
    /** Touch the tag cache for the table line covering paddr. */
    void touchTagCache(std::uint64_t paddr, bool dirtying);

    PhysicalMemory &dram_;
    TagTable &tags_;
    TagCacheConfig config_;

    /** LRU over cached tag-table line indices. */
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator> cached_;
    std::uint64_t max_entries_;

    support::StatSet stats_;
    // Pre-resolved counter slots (see StatSet::counter): a DRAM
    // transaction bumps several of these, and string-map lookups per
    // transaction dominate the miss path otherwise.
    std::uint64_t *dram_reads_ = nullptr;
    std::uint64_t *dram_writes_ = nullptr;
    std::uint64_t *tag_lookups_ = nullptr;
    std::uint64_t *tag_cache_hits_ = nullptr;
    std::uint64_t *tag_cache_misses_ = nullptr;
    std::uint64_t *tag_table_reads_ = nullptr;
    std::uint64_t *tag_table_writes_ = nullptr;
};

} // namespace cheri::mem

#endif // CHERI_MEM_TAG_MANAGER_H
