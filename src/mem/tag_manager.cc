#include "mem/tag_manager.h"

namespace cheri::mem
{

TagManager::TagManager(PhysicalMemory &dram, TagTable &tags,
                       TagCacheConfig config)
    : dram_(dram), tags_(tags), config_(config),
      max_entries_(config.capacity_bytes / config.entry_bytes)
{
}

void
TagManager::touchTagCache(std::uint64_t paddr, bool dirtying)
{
    stats_.add("tag.lookups");
    std::uint64_t table_line =
        tags_.tableByteFor(paddr) / config_.entry_bytes;

    auto it = cached_.find(table_line);
    if (it != cached_.end()) {
        stats_.add("tag.cache_hits");
        lru_.splice(lru_.begin(), lru_, it->second);
        if (dirtying)
            stats_.add("tag.table_writes");
        return;
    }

    stats_.add("tag.cache_misses");
    stats_.add("tag.table_reads");
    if (dirtying)
        stats_.add("tag.table_writes");

    if (cached_.size() >= max_entries_ && !lru_.empty()) {
        std::uint64_t victim = lru_.back();
        lru_.pop_back();
        cached_.erase(victim);
    }
    lru_.push_front(table_line);
    cached_[table_line] = lru_.begin();
}

TaggedLine
TagManager::readLine(std::uint64_t paddr)
{
    stats_.add("dram.reads");
    touchTagCache(paddr, /*dirtying=*/false);
    TaggedLine line;
    line.data = dram_.readLine(paddr);
    line.tag = tags_.get(paddr);
    return line;
}

void
TagManager::writeLine(std::uint64_t paddr, const TaggedLine &line)
{
    stats_.add("dram.writes");
    touchTagCache(paddr, /*dirtying=*/true);
    dram_.writeLine(paddr, line.data);
    tags_.set(paddr, line.tag);
}

bool
TagManager::readTag(std::uint64_t paddr)
{
    touchTagCache(paddr, /*dirtying=*/false);
    return tags_.get(paddr);
}

} // namespace cheri::mem
