#include "mem/tag_manager.h"

namespace cheri::mem
{

TagManager::TagManager(PhysicalMemory &dram, TagTable &tags,
                       TagCacheConfig config)
    : dram_(dram), tags_(tags), config_(config),
      max_entries_(config.capacity_bytes / config.entry_bytes)
{
    dram_reads_ = &stats_.counter("dram.reads");
    dram_writes_ = &stats_.counter("dram.writes");
    tag_lookups_ = &stats_.counter("tag.lookups");
    tag_cache_hits_ = &stats_.counter("tag.cache_hits");
    tag_cache_misses_ = &stats_.counter("tag.cache_misses");
    tag_table_reads_ = &stats_.counter("tag.table_reads");
    tag_table_writes_ = &stats_.counter("tag.table_writes");
}

void
TagManager::touchTagCache(std::uint64_t paddr, bool dirtying)
{
    ++*tag_lookups_;
    std::uint64_t table_line =
        tags_.tableByteFor(paddr) / config_.entry_bytes;

    auto it = cached_.find(table_line);
    if (it != cached_.end()) {
        ++*tag_cache_hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        if (dirtying)
            ++*tag_table_writes_;
        return;
    }

    ++*tag_cache_misses_;
    ++*tag_table_reads_;
    if (dirtying)
        ++*tag_table_writes_;

    if (cached_.size() >= max_entries_ && !lru_.empty()) {
        std::uint64_t victim = lru_.back();
        lru_.pop_back();
        cached_.erase(victim);
    }
    lru_.push_front(table_line);
    cached_[table_line] = lru_.begin();
}

TaggedLine
TagManager::readLine(std::uint64_t paddr)
{
    ++*dram_reads_;
    touchTagCache(paddr, /*dirtying=*/false);
    TaggedLine line;
    line.data = dram_.readLine(paddr);
    line.tag = tags_.get(paddr);
    return line;
}

void
TagManager::writeLine(std::uint64_t paddr, const TaggedLine &line)
{
    ++*dram_writes_;
    touchTagCache(paddr, /*dirtying=*/true);
    dram_.writeLine(paddr, line.data);
    tags_.set(paddr, line.tag);
}

bool
TagManager::readTag(std::uint64_t paddr)
{
    touchTagCache(paddr, /*dirtying=*/false);
    return tags_.get(paddr);
}

TagManager::Snapshot
TagManager::save() const
{
    Snapshot snapshot;
    snapshot.lru.assign(lru_.begin(), lru_.end());
    snapshot.stats = stats_;
    return snapshot;
}

void
TagManager::restore(const Snapshot &snapshot)
{
    lru_.clear();
    cached_.clear();
    for (std::uint64_t table_line : snapshot.lru) {
        lru_.push_back(table_line);
        cached_[table_line] = std::prev(lru_.end());
    }
    stats_.assignFrom(snapshot.stats);
}

} // namespace cheri::mem
