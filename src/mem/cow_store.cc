#include "mem/cow_store.h"

#include <bit>
#include <cstring>

#include "support/logging.h"

namespace cheri::mem
{

CowStore::CowStore(std::uint64_t size_bytes)
    : size_bytes_(size_bytes), line_count_(size_bytes / kLineBytes)
{
    if (size_bytes == 0 || size_bytes % kLineBytes != 0) {
        support::fatal("DRAM size %llu must be a nonzero multiple of "
                       "%llu bytes",
                       static_cast<unsigned long long>(size_bytes),
                       static_cast<unsigned long long>(kLineBytes));
    }
    std::uint64_t pages = (size_bytes + kCowPageBytes - 1) / kCowPageBytes;
    // Every fresh slot shares one zero page, so a new store (and the
    // first machine built over it) is O(page count), not O(bytes).
    std::shared_ptr<CowPage> zero = std::make_shared<CowPage>();
    pages_.assign(pages, zero);
}

CowStore::CowStore(const CowStore &parent, ForkTag)
    : size_bytes_(parent.size_bytes_), line_count_(parent.line_count_),
      pages_(parent.pages_)
{
}

std::shared_ptr<CowStore>
CowStore::fork() const
{
    return std::shared_ptr<CowStore>(new CowStore(*this, ForkTag{}));
}

void
CowStore::checkRange(std::uint64_t paddr, std::uint64_t len) const
{
    if (paddr > size_bytes_ || len > size_bytes_ - paddr) {
        support::guestFault(
            "mem", "physical access [0x%llx, +%llu) beyond DRAM size 0x%llx",
            static_cast<unsigned long long>(paddr),
            static_cast<unsigned long long>(len),
            static_cast<unsigned long long>(size_bytes_));
    }
}

CowPage &
CowStore::pageForWrite(std::uint64_t page_index)
{
    std::shared_ptr<CowPage> &slot = pages_[page_index];
    if (slot.use_count() != 1) {
        // The page is visible from another store (or is the initial
        // zero page): clone data + tag slice together, then write the
        // private copy. Shared pages are never mutated in place, so
        // this is safe against sibling stores on other threads.
        slot = std::make_shared<CowPage>(*slot);
        ++cow_faults_;
    }
    return *slot;
}

std::uint8_t
CowStore::readByte(std::uint64_t paddr) const
{
    checkRange(paddr, 1);
    return page(paddr / kCowPageBytes).data[paddr % kCowPageBytes];
}

void
CowStore::writeByte(std::uint64_t paddr, std::uint8_t value)
{
    checkRange(paddr, 1);
    pageForWrite(paddr / kCowPageBytes).data[paddr % kCowPageBytes] =
        value;
}

void
CowStore::readBytes(std::uint64_t paddr, std::uint8_t *dst,
                    std::uint64_t len) const
{
    checkRange(paddr, len);
    while (len > 0) {
        std::uint64_t offset = paddr % kCowPageBytes;
        std::uint64_t chunk = std::min(len, kCowPageBytes - offset);
        std::memcpy(dst, page(paddr / kCowPageBytes).data.data() + offset,
                    chunk);
        dst += chunk;
        paddr += chunk;
        len -= chunk;
    }
}

void
CowStore::writeBytes(std::uint64_t paddr, const std::uint8_t *src,
                     std::uint64_t len)
{
    checkRange(paddr, len);
    while (len > 0) {
        std::uint64_t offset = paddr % kCowPageBytes;
        std::uint64_t chunk = std::min(len, kCowPageBytes - offset);
        std::memcpy(pageForWrite(paddr / kCowPageBytes).data.data() +
                        offset,
                    src, chunk);
        src += chunk;
        paddr += chunk;
        len -= chunk;
    }
}

bool
CowStore::tagGet(std::uint64_t line_index) const
{
    if (line_index >= line_count_) {
        support::guestFault(
            "mem", "tag read beyond DRAM: line %llu of %llu",
            static_cast<unsigned long long>(line_index),
            static_cast<unsigned long long>(line_count_));
    }
    std::uint64_t word = line_index / 64;
    const CowPage &p = page(word / kCowPageTagWords);
    return (p.tags[word % kCowPageTagWords] >> (line_index % 64)) & 1;
}

void
CowStore::tagSet(std::uint64_t line_index, bool tag)
{
    if (line_index >= line_count_) {
        support::guestFault(
            "mem", "tag write beyond DRAM: line %llu of %llu",
            static_cast<unsigned long long>(line_index),
            static_cast<unsigned long long>(line_count_));
    }
    std::uint64_t word = line_index / 64;
    CowPage &p = pageForWrite(word / kCowPageTagWords);
    std::uint64_t mask = 1ULL << (line_index % 64);
    if (tag)
        p.tags[word % kCowPageTagWords] |= mask;
    else
        p.tags[word % kCowPageTagWords] &= ~mask;
}

std::uint64_t
CowStore::tagPopCount() const
{
    std::uint64_t n = 0;
    std::uint64_t words = tagWordCount();
    for (std::uint64_t w = 0; w < words; ++w) {
        n += static_cast<std::uint64_t>(std::popcount(
            page(w / kCowPageTagWords).tags[w % kCowPageTagWords]));
    }
    return n;
}

std::vector<std::uint8_t>
CowStore::flattenData() const
{
    std::vector<std::uint8_t> out(size_bytes_);
    readBytes(0, out.data(), size_bytes_);
    return out;
}

std::vector<std::uint64_t>
CowStore::flattenTags() const
{
    std::uint64_t words = tagWordCount();
    std::vector<std::uint64_t> out(words);
    for (std::uint64_t w = 0; w < words; ++w)
        out[w] = page(w / kCowPageTagWords).tags[w % kCowPageTagWords];
    return out;
}

void
CowStore::assignData(const std::vector<std::uint8_t> &data)
{
    if (data.size() != size_bytes_) {
        support::panic("DRAM snapshot size 0x%llx does not match "
                       "configured size 0x%llx",
                       static_cast<unsigned long long>(data.size()),
                       static_cast<unsigned long long>(size_bytes_));
    }
    writeBytes(0, data.data(), data.size());
}

void
CowStore::assignTags(const std::vector<std::uint64_t> &bits)
{
    if (bits.size() != tagWordCount()) {
        support::panic("tag-table snapshot covers %llu words, table "
                       "has %llu",
                       static_cast<unsigned long long>(bits.size()),
                       static_cast<unsigned long long>(tagWordCount()));
    }
    for (std::uint64_t w = 0; w < bits.size(); ++w) {
        std::uint64_t slot = w % kCowPageTagWords;
        pageForWrite(w / kCowPageTagWords).tags[slot] = bits[w];
    }
}

std::uint64_t
CowStore::sharedPages() const
{
    std::uint64_t shared = 0;
    for (const std::shared_ptr<CowPage> &p : pages_)
        shared += p.use_count() != 1 ? 1 : 0;
    return shared;
}

} // namespace cheri::mem
