/**
 * @file
 * The capability tag table: one tag bit per 256-bit line of physical
 * memory, i.e. 4 MB of tag space per GB of DRAM (Section 4.2). The
 * paper stores this table in DRAM; TagManager models the cost of
 * reaching it.
 */

#ifndef CHERI_MEM_TAG_TABLE_H
#define CHERI_MEM_TAG_TABLE_H

#include <cstdint>
#include <vector>

#include "mem/physical_memory.h"

namespace cheri::mem
{

/**
 * One bit of capability-validity state per aligned 32-byte physical
 * line. Indexing is by physical address; the table covers all of DRAM.
 */
class TagTable
{
  public:
    /** Create an all-clear table covering dram_bytes of memory. */
    explicit TagTable(std::uint64_t dram_bytes);

    /** Tag bit for the line containing paddr. */
    bool get(std::uint64_t paddr) const;

    /** Set or clear the tag bit for the line containing paddr. */
    void set(std::uint64_t paddr, bool tag);

    /** Number of lines covered. */
    std::uint64_t lineCount() const { return line_count_; }

    /** Count of currently set tags (diagnostics and tests). */
    std::uint64_t popCount() const;

    /**
     * Byte offset within the (conceptual, DRAM-resident) tag table of
     * the byte holding this line's tag; used by the tag-cache model to
     * decide which tag-table lines a transaction touches.
     */
    std::uint64_t
    tableByteFor(std::uint64_t paddr) const
    {
        return (paddr / kLineBytes) / 8;
    }

    /** Full tag bitmap, captured for machine checkpointing. */
    struct Snapshot
    {
        std::vector<std::uint64_t> bits;
    };

    /** Capture the full tag bitmap. */
    Snapshot save() const { return Snapshot{bits_}; }

    /** Restore a captured bitmap; the size must match this table. */
    void restore(const Snapshot &snapshot);

  private:
    std::uint64_t lineIndex(std::uint64_t paddr) const;

    std::uint64_t line_count_;
    std::vector<std::uint64_t> bits_;
};

} // namespace cheri::mem

#endif // CHERI_MEM_TAG_TABLE_H
