/**
 * @file
 * The capability tag table: one tag bit per 256-bit line of physical
 * memory, i.e. 4 MB of tag space per GB of DRAM (Section 4.2). The
 * paper stores this table in DRAM; TagManager models the cost of
 * reaching it.
 *
 * Since the COW refactor the bits live in the same CowStore as the
 * data bytes — a page's tag slice is cloned together with its data
 * on a write fault, so a forked guest's tags can never skew against
 * its bytes.
 */

#ifndef CHERI_MEM_TAG_TABLE_H
#define CHERI_MEM_TAG_TABLE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cow_store.h"
#include "mem/physical_memory.h"

namespace cheri::mem
{

/**
 * One bit of capability-validity state per aligned 32-byte physical
 * line. Indexing is by physical address; the table covers all of DRAM.
 */
class TagTable
{
  public:
    /** Create an all-clear table covering dram_bytes of memory. */
    explicit TagTable(std::uint64_t dram_bytes);

    /** Share a store (the same one the paired PhysicalMemory wraps). */
    explicit TagTable(std::shared_ptr<CowStore> store);

    /** Tag bit for the line containing paddr. */
    bool get(std::uint64_t paddr) const;

    /** Set or clear the tag bit for the line containing paddr. */
    void set(std::uint64_t paddr, bool tag);

    /** Number of lines covered. */
    std::uint64_t lineCount() const { return store_->lineCount(); }

    /** Count of currently set tags (diagnostics and tests). */
    std::uint64_t popCount() const { return store_->tagPopCount(); }

    /**
     * Byte offset within the (conceptual, DRAM-resident) tag table of
     * the byte holding this line's tag; used by the tag-cache model to
     * decide which tag-table lines a transaction touches.
     */
    std::uint64_t
    tableByteFor(std::uint64_t paddr) const
    {
        return (paddr / kLineBytes) / 8;
    }

    /** Full tag bitmap, captured for machine checkpointing. */
    struct Snapshot
    {
        std::vector<std::uint64_t> bits;
    };

    /** Capture the full tag bitmap (flattens the COW pages). */
    Snapshot save() const { return Snapshot{store_->flattenTags()}; }

    /** Restore a captured bitmap; the size must match this table. */
    void restore(const Snapshot &snapshot);

  private:
    std::uint64_t lineIndex(std::uint64_t paddr) const;

    std::shared_ptr<CowStore> store_;
};

} // namespace cheri::mem

#endif // CHERI_MEM_TAG_TABLE_H
