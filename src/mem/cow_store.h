/**
 * @file
 * Page-granular copy-on-write backing store for DRAM and the
 * capability tag table. A CowPage is the unit of sharing: 4 KB of
 * data plus the slice of the tag table covering those lines, so a
 * single write fault materialises both planes together and a forked
 * guest can never observe a parent's data with a child's tags (or
 * vice versa).
 *
 * Sharing is plain shared_ptr refcounting per page — there is no
 * base-image chain to walk. fork() copies the page-reference vector
 * (O(page count) atomic increments); a write to a page whose
 * reference is shared clones it first (a "COW fault"). Fresh stores
 * point every slot at one zero page, so construction is O(page
 * count) too and an idle forked guest costs ~8 bytes per page.
 *
 * Thread-safety: pages reachable from more than one store are never
 * written in place (the use_count()==1 test), so concurrent guests
 * forked from a quiescent parent can fault pages independently; the
 * only shared mutable state is the shared_ptr control block, which
 * is atomic. A single store is not internally synchronised — one
 * guest, one thread, as everywhere else in the emulator.
 */

#ifndef CHERI_MEM_COW_STORE_H
#define CHERI_MEM_COW_STORE_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace cheri::mem
{

/** Bytes per tagged line: 256 bits, the capability size (Figure 1). */
constexpr std::uint64_t kLineBytes = 32;

/** COW granule: one 4 KB page of DRAM plus its tag-table slice. */
constexpr std::uint64_t kCowPageBytes = 4096;
/** Lines per COW page (128). */
constexpr std::uint64_t kCowPageLines = kCowPageBytes / kLineBytes;
/**
 * Tag-bitmap words per COW page (2). kCowPageLines is a multiple of
 * 64, so a tag word never straddles two pages and the global word at
 * index w lives in page w / kCowPageTagWords.
 */
constexpr std::uint64_t kCowPageTagWords = kCowPageLines / 64;

/** One shareable page: data bytes plus the covering tag bits. */
struct CowPage
{
    std::array<std::uint8_t, kCowPageBytes> data{};
    std::array<std::uint64_t, kCowPageTagWords> tags{};
};

/**
 * The refcounted page store PhysicalMemory and TagTable are facades
 * over. Addresses and line indices are host-checked by the facades;
 * the store panics on its own bounds as a second line of defence.
 */
class CowStore
{
  public:
    /** Zero-filled store; size must be a nonzero multiple of a line. */
    explicit CowStore(std::uint64_t size_bytes);

    CowStore(const CowStore &) = delete;
    CowStore &operator=(const CowStore &) = delete;

    /** DRAM bytes covered. */
    std::uint64_t sizeBytes() const { return size_bytes_; }
    /** Tagged lines covered. */
    std::uint64_t lineCount() const { return line_count_; }
    /** COW pages (including a trailing partial page). */
    std::uint64_t pageCount() const { return pages_.size(); }
    /** 64-bit words in the flattened tag bitmap. */
    std::uint64_t tagWordCount() const { return (line_count_ + 63) / 64; }

    /**
     * Mint a child store sharing every page of this one. O(page
     * count): the child copies the reference vector and bumps each
     * page's refcount; no data moves until someone writes.
     */
    std::shared_ptr<CowStore> fork() const;

    /** Read one byte. */
    std::uint8_t readByte(std::uint64_t paddr) const;
    /** Write one byte (may COW-fault its page). */
    void writeByte(std::uint64_t paddr, std::uint8_t value);
    /** Read len bytes (may straddle pages). */
    void readBytes(std::uint64_t paddr, std::uint8_t *dst,
                   std::uint64_t len) const;
    /** Write len bytes (may straddle pages and fault several). */
    void writeBytes(std::uint64_t paddr, const std::uint8_t *src,
                    std::uint64_t len);

    /** Tag bit for an in-range line index. */
    bool tagGet(std::uint64_t line_index) const;
    /** Set/clear a tag bit (may COW-fault the covering page). */
    void tagSet(std::uint64_t line_index, bool tag);
    /** Count of set tags across the store. */
    std::uint64_t tagPopCount() const;

    /** Flatten the data plane (deep snapshots). */
    std::vector<std::uint8_t> flattenData() const;
    /** Flatten the tag plane as tagWordCount() words. */
    std::vector<std::uint64_t> flattenTags() const;
    /** Overwrite the data plane from a sizeBytes()-byte image. */
    void assignData(const std::vector<std::uint8_t> &data);
    /** Overwrite the tag plane from a tagWordCount()-word bitmap. */
    void assignTags(const std::vector<std::uint64_t> &bits);

    /**
     * Pages this store has had to clone on write since construction
     * (includes first writes to the initial shared zero page).
     * Deterministic per guest while the fork parent stays alive.
     */
    std::uint64_t cowFaults() const { return cow_faults_; }
    /** Page slots currently shared with another store (or the zero
     *  page); sizeBytes()/kCowPageBytes minus the private pages. */
    std::uint64_t sharedPages() const;

  private:
    struct ForkTag
    {
    };
    CowStore(const CowStore &parent, ForkTag);

    /** The page for a write: clones first when the slot is shared. */
    CowPage &pageForWrite(std::uint64_t page_index);
    const CowPage &page(std::uint64_t page_index) const
    {
        return *pages_[page_index];
    }
    void checkRange(std::uint64_t paddr, std::uint64_t len) const;

    std::uint64_t size_bytes_;
    std::uint64_t line_count_;
    std::vector<std::shared_ptr<CowPage>> pages_;
    std::uint64_t cow_faults_ = 0;
};

} // namespace cheri::mem

#endif // CHERI_MEM_COW_STORE_H
