#include "mem/tag_table.h"

#include <bit>

#include "support/logging.h"

namespace cheri::mem
{

TagTable::TagTable(std::uint64_t dram_bytes)
    : line_count_(dram_bytes / kLineBytes),
      bits_((line_count_ + 63) / 64, 0)
{
}

std::uint64_t
TagTable::lineIndex(std::uint64_t paddr) const
{
    std::uint64_t idx = paddr / kLineBytes;
    if (idx >= line_count_) {
        support::panic("tag access beyond DRAM: paddr 0x%llx",
                       static_cast<unsigned long long>(paddr));
    }
    return idx;
}

bool
TagTable::get(std::uint64_t paddr) const
{
    std::uint64_t idx = lineIndex(paddr);
    return (bits_[idx / 64] >> (idx % 64)) & 1;
}

void
TagTable::set(std::uint64_t paddr, bool tag)
{
    std::uint64_t idx = lineIndex(paddr);
    std::uint64_t mask = 1ULL << (idx % 64);
    if (tag)
        bits_[idx / 64] |= mask;
    else
        bits_[idx / 64] &= ~mask;
}

void
TagTable::restore(const Snapshot &snapshot)
{
    if (snapshot.bits.size() != bits_.size()) {
        support::panic("tag-table snapshot covers %llu words, table "
                       "has %llu",
                       static_cast<unsigned long long>(
                           snapshot.bits.size()),
                       static_cast<unsigned long long>(bits_.size()));
    }
    bits_ = snapshot.bits;
}

std::uint64_t
TagTable::popCount() const
{
    std::uint64_t n = 0;
    for (std::uint64_t word : bits_)
        n += static_cast<std::uint64_t>(std::popcount(word));
    return n;
}

} // namespace cheri::mem
