#include "mem/tag_table.h"

#include "support/logging.h"

namespace cheri::mem
{

TagTable::TagTable(std::uint64_t dram_bytes)
    : store_(std::make_shared<CowStore>(dram_bytes))
{
}

TagTable::TagTable(std::shared_ptr<CowStore> store)
    : store_(std::move(store))
{
    if (!store_)
        support::panic("TagTable built over a null store");
}

std::uint64_t
TagTable::lineIndex(std::uint64_t paddr) const
{
    std::uint64_t idx = paddr / kLineBytes;
    if (idx >= store_->lineCount()) {
        support::guestFault("mem", "tag access beyond DRAM: paddr 0x%llx",
                            static_cast<unsigned long long>(paddr));
    }
    return idx;
}

bool
TagTable::get(std::uint64_t paddr) const
{
    return store_->tagGet(lineIndex(paddr));
}

void
TagTable::set(std::uint64_t paddr, bool tag)
{
    store_->tagSet(lineIndex(paddr), tag);
}

void
TagTable::restore(const Snapshot &snapshot)
{
    store_->assignTags(snapshot.bits);
}

} // namespace cheri::mem
