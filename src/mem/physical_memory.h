/**
 * @file
 * Flat physical memory (DRAM) for the emulated machine. Data only;
 * capability tags live in the separate TagTable, mirroring the paper's
 * design where the tag table is held in DRAM alongside ordinary data
 * (Section 4.2).
 *
 * Since the COW refactor this is a facade over a shared CowStore
 * (cow_store.h): a PhysicalMemory built from a size owns a private
 * store; one built from an existing store shares pages with whoever
 * forked it. The byte-level API is unchanged — no caller ever holds a
 * raw pointer into DRAM storage, which is precisely what makes the
 * COW layer invisible above the physical-address abstraction.
 */

#ifndef CHERI_MEM_PHYSICAL_MEMORY_H
#define CHERI_MEM_PHYSICAL_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cow_store.h"

namespace cheri::mem
{

/** One 256-bit line of raw data. */
using Line = std::array<std::uint8_t, kLineBytes>;

/**
 * Byte-addressable flat DRAM. All accesses are host-checked: an
 * out-of-range physical address is an emulator bug (the guest-facing
 * layers bound-check before reaching DRAM), so it panics.
 */
class PhysicalMemory
{
  public:
    /** Create zero-filled DRAM of the given byte size. */
    explicit PhysicalMemory(std::uint64_t size_bytes);

    /** Wrap an existing (typically forked) backing store. */
    explicit PhysicalMemory(std::shared_ptr<CowStore> store);

    /** Total DRAM size in bytes. */
    std::uint64_t size() const { return store_->sizeBytes(); }

    /** Read one byte. */
    std::uint8_t readByte(std::uint64_t paddr) const;

    /** Write one byte. */
    void writeByte(std::uint64_t paddr, std::uint8_t value);

    /**
     * Read a little-endian value of 1, 2, 4 or 8 bytes. The access may
     * straddle line boundaries; DRAM itself imposes no alignment.
     */
    std::uint64_t read(std::uint64_t paddr, unsigned size_bytes) const;

    /** Write a little-endian value of 1, 2, 4 or 8 bytes. */
    void write(std::uint64_t paddr, unsigned size_bytes,
               std::uint64_t value);

    /** Read one aligned 256-bit line. */
    Line readLine(std::uint64_t paddr) const;

    /** Write one aligned 256-bit line. */
    void writeLine(std::uint64_t paddr, const Line &line);

    /** Copy a block of bytes into DRAM (loader use). */
    void writeBlock(std::uint64_t paddr, const std::uint8_t *src,
                    std::uint64_t len);

    /** Full DRAM image, captured for machine checkpointing. */
    struct Snapshot
    {
        std::vector<std::uint8_t> data;
    };

    /** Capture the full DRAM image (flattens the COW pages). */
    Snapshot save() const { return Snapshot{store_->flattenData()}; }

    /** Restore a captured image; the size must match this DRAM. */
    void restore(const Snapshot &snapshot);

    /** The backing store (Machine::fork shares it with children). */
    const std::shared_ptr<CowStore> &store() const { return store_; }

  private:
    std::shared_ptr<CowStore> store_;
};

} // namespace cheri::mem

#endif // CHERI_MEM_PHYSICAL_MEMORY_H
