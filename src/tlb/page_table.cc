#include "tlb/page_table.h"

namespace cheri::tlb
{

void
PageTable::map(std::uint64_t vpn, std::uint64_t pfn, PteFlags flags)
{
    entries_[vpn] = Pte{pfn, flags};
}

void
PageTable::unmap(std::uint64_t vpn)
{
    entries_.erase(vpn);
}

std::optional<Pte>
PageTable::lookup(std::uint64_t vpn) const
{
    auto it = entries_.find(vpn);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

bool
PageTable::protect(std::uint64_t vpn, PteFlags flags)
{
    auto it = entries_.find(vpn);
    if (it == entries_.end())
        return false;
    it->second.flags = flags;
    return true;
}

} // namespace cheri::tlb
