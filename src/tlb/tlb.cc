#include "tlb/tlb.h"

namespace cheri::tlb
{

Tlb::Tlb(const PageTable &table, TlbConfig config)
    : table_(&table), config_(config)
{
    hits_ = &stats_.counter("tlb.hits");
    misses_ = &stats_.counter("tlb.misses");
    faults_ = &stats_.counter("tlb.faults");
}

void
Tlb::setTable(const PageTable &table)
{
    table_ = &table;
    flush();
}

void
Tlb::flush()
{
    lru_.clear();
    cached_.clear();
    ++generation_; // every outstanding FetchHint is now stale
}

void
Tlb::flushPage(std::uint64_t vaddr)
{
    std::uint64_t vpn = vaddr / kPageBytes;
    auto it = cached_.find(vpn);
    if (it != cached_.end()) {
        lru_.erase(it->second.lru_it);
        cached_.erase(it);
        ++generation_;
    }
}

TlbResult
Tlb::translateSlow(std::uint64_t vaddr, Access access)
{
    std::uint64_t vpn = vaddr / kPageBytes;

    auto it = cached_.find(vpn);
    if (it != cached_.end()) {
        ++*hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        memo_[vpn & (memo_.size() - 1)] =
            TranslateMemo{vpn, generation_, &it->second};
        return checkPte(it->second.pte, vaddr, access, 0);
    }

    ++*misses_;
    std::optional<Pte> pte = table_->lookup(vpn);
    if (!pte) {
        ++*faults_;
        TlbResult result;
        result.fault = TlbFault::kNoMapping;
        result.penalty_cycles = config_.refill_cycles;
        return result;
    }

    if (cached_.size() >= config_.entries && !lru_.empty()) {
        std::uint64_t victim = lru_.back();
        lru_.pop_back();
        cached_.erase(victim);
        ++generation_;
    }
    lru_.push_front(vpn);
    auto ins =
        cached_.insert_or_assign(vpn, CachedEntry{*pte, lru_.begin()});
    memo_[vpn & (memo_.size() - 1)] =
        TranslateMemo{vpn, generation_, &ins.first->second};
    return checkPte(*pte, vaddr, access, config_.refill_cycles);
}

std::vector<std::uint64_t>
Tlb::cachedVpns() const
{
    return std::vector<std::uint64_t>(lru_.begin(), lru_.end());
}

bool
Tlb::corruptEntry(std::uint64_t vpn, const Pte &pte)
{
    auto it = cached_.find(vpn);
    if (it == cached_.end())
        return false;
    it->second.pte = pte;
    // Drop every outstanding host hint/memo: they snapshot PTE fields
    // at mint time, and the corruption must be observed consistently.
    ++generation_;
    memo_.fill(TranslateMemo{});
    return true;
}

Tlb::Snapshot
Tlb::save() const
{
    Snapshot snapshot;
    snapshot.entries.reserve(cached_.size());
    for (std::uint64_t vpn : lru_)
        snapshot.entries.emplace_back(vpn, cached_.at(vpn).pte);
    snapshot.stats = stats_;
    return snapshot;
}

void
Tlb::restore(const Snapshot &snapshot)
{
    lru_.clear();
    cached_.clear();
    for (const auto &[vpn, pte] : snapshot.entries) {
        lru_.push_back(vpn);
        cached_.emplace(vpn, CachedEntry{pte, std::prev(lru_.end())});
    }
    // The generation stays monotonic (never restored): outstanding
    // hints hold CachedEntry pointers into the container we just
    // rebuilt, and only a fresh generation value keeps them all stale.
    ++generation_;
    memo_.fill(TranslateMemo{});
    stats_.assignFrom(snapshot.stats);
}

TlbResult
Tlb::translateFetchMiss(std::uint64_t vaddr, FetchHint &hint)
{
    std::uint64_t vpn = vaddr / kPageBytes;
    TlbResult result = translate(vaddr, Access::kFetch);
    if (result.ok()) {
        auto it = cached_.find(vpn); // translate just (re)cached it
        hint.vpn = vpn;
        hint.paddr_base = it->second.pte.pfn * kPageBytes;
        hint.generation = generation_;
        hint.entry = &it->second;
    }
    return result;
}

} // namespace cheri::tlb
