#include "tlb/tlb.h"

namespace cheri::tlb
{

Tlb::Tlb(const PageTable &table, TlbConfig config)
    : table_(&table), config_(config)
{
}

void
Tlb::setTable(const PageTable &table)
{
    table_ = &table;
    flush();
}

void
Tlb::flush()
{
    lru_.clear();
    cached_.clear();
}

void
Tlb::flushPage(std::uint64_t vaddr)
{
    std::uint64_t vpn = vaddr / kPageBytes;
    auto it = cached_.find(vpn);
    if (it != cached_.end()) {
        lru_.erase(it->second.lru_it);
        cached_.erase(it);
    }
}

TlbResult
Tlb::checkPte(const Pte &pte, std::uint64_t vaddr, Access access,
              std::uint64_t penalty)
{
    TlbResult result;
    result.penalty_cycles = penalty;
    result.paddr = pte.pfn * kPageBytes + vaddr % kPageBytes;

    const PteFlags &f = pte.flags;
    switch (access) {
      case Access::kFetch:
        if (!f.executable)
            result.fault = TlbFault::kNotExecutable;
        break;
      case Access::kLoad:
        if (!f.readable)
            result.fault = TlbFault::kNotReadable;
        break;
      case Access::kStore:
        if (!f.writable)
            result.fault = TlbFault::kNotWritable;
        break;
      case Access::kCapLoad:
        if (!f.readable)
            result.fault = TlbFault::kNotReadable;
        else if (!f.cap_load)
            result.fault = TlbFault::kCapLoadDenied;
        break;
      case Access::kCapStore:
        if (!f.writable)
            result.fault = TlbFault::kNotWritable;
        else if (!f.cap_store)
            result.fault = TlbFault::kCapStoreDenied;
        break;
    }
    if (result.fault != TlbFault::kNone)
        stats_.add("tlb.faults");
    return result;
}

TlbResult
Tlb::translate(std::uint64_t vaddr, Access access)
{
    std::uint64_t vpn = vaddr / kPageBytes;

    auto it = cached_.find(vpn);
    if (it != cached_.end()) {
        stats_.add("tlb.hits");
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        return checkPte(it->second.pte, vaddr, access, 0);
    }

    stats_.add("tlb.misses");
    std::optional<Pte> pte = table_->lookup(vpn);
    if (!pte) {
        stats_.add("tlb.faults");
        TlbResult result;
        result.fault = TlbFault::kNoMapping;
        result.penalty_cycles = config_.refill_cycles;
        return result;
    }

    if (cached_.size() >= config_.entries && !lru_.empty()) {
        std::uint64_t victim = lru_.back();
        lru_.pop_back();
        cached_.erase(victim);
    }
    lru_.push_front(vpn);
    cached_[vpn] = CachedEntry{*pte, lru_.begin()};
    return checkPte(*pte, vaddr, access, config_.refill_cycles);
}

} // namespace cheri::tlb
