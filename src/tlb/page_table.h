/**
 * @file
 * A software page table mapping virtual to physical pages, with the
 * CHERI page-table-entry extension: per-page bits authorizing
 * capability loads and capability stores (Sections 4.3 and 6.1). The
 * OS uses these to implement revocation and to share memory between
 * processes without creating a capability channel.
 */

#ifndef CHERI_TLB_PAGE_TABLE_H
#define CHERI_TLB_PAGE_TABLE_H

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace cheri::tlb
{

/** Page size; 4 KB, the common MMU minimum the paper contrasts with. */
constexpr std::uint64_t kPageBytes = 4096;

/** Per-page protection and the CHERI capability-authorization bits. */
struct PteFlags
{
    bool readable = true;
    bool writable = true;
    bool executable = true;
    /** CHERI extension: page may be the source of capability loads. */
    bool cap_load = true;
    /** CHERI extension: page may be the target of capability stores. */
    bool cap_store = true;
};

/** One page-table entry. */
struct Pte
{
    std::uint64_t pfn = 0; ///< physical frame number
    PteFlags flags;
};

/**
 * The per-address-space page table walked on TLB refill. Sparse:
 * unmapped virtual pages simply have no entry.
 */
class PageTable
{
  public:
    /** Map virtual page vpn to physical frame pfn with flags. */
    void map(std::uint64_t vpn, std::uint64_t pfn, PteFlags flags = {});

    /** Remove the mapping for vpn (revocation, unmap). */
    void unmap(std::uint64_t vpn);

    /** Look up vpn; nullopt when unmapped. */
    std::optional<Pte> lookup(std::uint64_t vpn) const;

    /** Update flags of an existing mapping; false when unmapped. */
    bool protect(std::uint64_t vpn, PteFlags flags);

    /** Number of mappings. */
    std::size_t size() const { return entries_.size(); }

    /** All mappings, captured for machine checkpointing. */
    struct Snapshot
    {
        std::unordered_map<std::uint64_t, Pte> entries;
    };

    /** Capture all mappings. */
    Snapshot save() const { return Snapshot{entries_}; }

    /** Restore all mappings (the TLB is restored by its owner). */
    void restore(const Snapshot &snapshot) { entries_ = snapshot.entries; }

  private:
    std::unordered_map<std::uint64_t, Pte> entries_;
};

} // namespace cheri::tlb

#endif // CHERI_TLB_PAGE_TABLE_H
