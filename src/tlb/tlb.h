/**
 * @file
 * Translation lookaside buffer. R4000-flavoured in spirit but with a
 * hardware-assisted refill from the PageTable (at a modeled cycle
 * cost) so the emulator does not need a software refill handler on the
 * hot path. Default capacity covers 1 MB of 4 KB pages, matching the
 * knee the paper observes in Figure 5.
 *
 * Capability addressing occurs *before* translation (Section 1): the
 * CPU bounds-checks the virtual address against a capability, then
 * asks the TLB for the physical address. The TLB additionally gates
 * capability loads and stores on the CHERI PTE bits.
 */

#ifndef CHERI_TLB_TLB_H
#define CHERI_TLB_TLB_H

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/stats.h"
#include "tlb/page_table.h"

namespace cheri::tlb
{

/** What kind of access is being translated. */
enum class Access
{
    kFetch,
    kLoad,
    kStore,
    kCapLoad,  ///< CLC: loads a capability (checks PTE cap_load)
    kCapStore, ///< CSC: stores a capability (checks PTE cap_store)
};

/** Why a translation failed. */
enum class TlbFault
{
    kNone,
    kNoMapping,   ///< page not present in the page table
    kNotReadable,
    kNotWritable,
    kNotExecutable,
    kCapLoadDenied,  ///< CHERI PTE bit absent for a capability load
    kCapStoreDenied, ///< CHERI PTE bit absent for a capability store
};

/** Result of a translation. */
struct TlbResult
{
    TlbFault fault = TlbFault::kNone;
    std::uint64_t paddr = 0;
    /** Extra cycles charged for this translation (refill cost). */
    std::uint64_t penalty_cycles = 0;

    bool ok() const { return fault == TlbFault::kNone; }
};

/** TLB configuration. */
struct TlbConfig
{
    /** Entries; 256 x 4 KB pages = 1 MB of coverage (Figure 5). */
    unsigned entries = 256;
    /** Modeled refill penalty on a miss that hits the page table. */
    std::uint64_t refill_cycles = 30;
};

/**
 * Fully associative, LRU-replaced TLB backed by a PageTable.
 *
 * Stats: "tlb.hits", "tlb.misses", "tlb.faults".
 */
class Tlb
{
  private:
    struct CachedEntry;

  public:
    explicit Tlb(const PageTable &table, TlbConfig config = {});

    /**
     * Translate vaddr for the given access kind. Inline: the memo-hit
     * path (the common case on the interpreter's per-access hot path)
     * replays the full hit — stat bump, LRU move, permission check —
     * without a cross-TU call; everything else falls through to
     * translateSlow.
     */
    TlbResult
    translate(std::uint64_t vaddr, Access access)
    {
        std::uint64_t vpn = vaddr / kPageBytes;
        TranslateMemo &memo = memo_[vpn & (memo_.size() - 1)];
        if (memo.generation == generation_ && memo.vpn == vpn) {
            // Replay of the hit path in translateSlow without the
            // hash find; the splice guard is a no-op difference
            // (front-to-front splices do nothing).
            ++*hits_;
            auto &lru_it = memo.entry->lru_it;
            if (lru_.begin() != lru_it)
                lru_.splice(lru_.begin(), lru_, lru_it);
            return checkPte(memo.entry->pte, vaddr, access, 0);
        }
        return translateSlow(vaddr, access);
    }

    /**
     * Caller-held accelerator for instruction-fetch translations.
     * Sequential fetches hit the same page almost every cycle, so the
     * CPU keeps one of these per fetch stream and translateFetch can
     * skip the hash lookup while the hint is fresh. Hints are
     * invalidated wholesale by a generation bump whenever any cached
     * entry is dropped (flush, flushPage, setTable, or capacity
     * eviction), so a stale hint can never alias a different page.
     * Default-constructed hints never match and are always safe.
     */
    struct FetchHint
    {
        std::uint64_t vpn = ~0ULL;
        std::uint64_t paddr_base = 0;
        std::uint64_t generation = ~0ULL;
        CachedEntry *entry = nullptr;
    };

    /**
     * Translate vaddr for instruction fetch, consulting and refreshing
     * the hint. Exactly equivalent to translate(vaddr, kFetch) in
     * stats, LRU state, penalty cycles, and result — the hint only
     * short-circuits the host-side hash find on the hit path. Inline:
     * this runs once per simulated instruction.
     */
    TlbResult
    translateFetch(std::uint64_t vaddr, FetchHint &hint)
    {
        std::uint64_t vpn = vaddr / kPageBytes;
        if (hint.generation == generation_ && hint.vpn == vpn) {
            // Replay of the translate() hit path: same stat bump, same
            // LRU outcome (splicing the front element to the front is
            // a no-op, so the guard below changes nothing observable),
            // zero penalty. checkPte is skipped because the hint is
            // only minted for entries that passed the executable
            // check, and cached PTEs never mutate in place.
            ++*hits_;
            auto &lru_it = hint.entry->lru_it;
            if (lru_.begin() != lru_it)
                lru_.splice(lru_.begin(), lru_, lru_it);
            TlbResult result;
            result.paddr = hint.paddr_base + vaddr % kPageBytes;
            return result;
        }
        return translateFetchMiss(vaddr, hint);
    }

    /**
     * Mint a fetch hint for the page containing vaddr if it is
     * currently cached with execute permission. Pure host-side probe
     * (no stats, no LRU movement, no penalty): the superblock tier
     * uses it at block mint/entry so a block on a page the fetch
     * stream has not touched recently can still validate its
     * translation without simulated effects. The executable check
     * matters — hints skip checkPte on replay, so one may only be
     * minted for entries that would pass it.
     */
    bool probeFetchHint(std::uint64_t vaddr, FetchHint &hint)
    {
        auto it = cached_.find(vaddr / kPageBytes);
        if (it == cached_.end() || !it->second.pte.flags.executable)
            return false;
        hint.vpn = vaddr / kPageBytes;
        hint.paddr_base = it->second.pte.pfn * kPageBytes;
        hint.generation = generation_;
        hint.entry = &it->second;
        return true;
    }

    /**
     * Replay the LRU half of the translateFetch() hit path for a
     * still-valid hint (caller checked the generation): same LRU
     * outcome, zero penalty. checkPte is skipped for the same reason
     * translateFetch skips it — hints are only minted for entries
     * that passed the executable check and cached PTEs never mutate
     * in place. The stat half is deferred: the superblock tier counts
     * hits locally and settles them through applyDeferredFetchHits on
     * block exit, so the TLB hit counter and LRU order stay
     * bit-identical to the per-instruction path at every commit
     * boundary.
     */
    void replayFetchHitLru(const FetchHint &hint)
    {
        auto &lru_it = hint.entry->lru_it;
        if (lru_.begin() != lru_it)
            lru_.splice(lru_.begin(), lru_, lru_it);
    }

    /**
     * Settle n deferred fetch hits counted by the superblock tier.
     * Pure counter arithmetic — increments commute with the data-side
     * translations that may have interleaved, so the total equals n
     * individual bumps at the original points.
     */
    void applyDeferredFetchHits(std::uint64_t n) { *hits_ += n; }

    /**
     * Caller-held memo for data-side translations — the CPU's data
     * fast path keeps one per memoized line. Like FetchHint it is
     * guarded by the generation counter, so any flush, flushPage,
     * setTable (address-space / ASID change) or capacity eviction
     * invalidates every outstanding hint wholesale. Unlike FetchHint
     * it additionally snapshots the PTE permission flags at mint time
     * (cached PTEs never mutate in place), so the holder can pick the
     * bit its access kind needs and fall back to the slow path — which
     * replays the hit *and* the fault — when it is clear.
     */
    struct DataHint
    {
        std::uint64_t paddr_base = 0;
        std::uint64_t generation = ~0ULL;
        CachedEntry *entry = nullptr;
        PteFlags flags{};
    };

    /** Host-side generation guarding caller-held hints: a hint whose
     *  generation still equals this points at its live entry. */
    std::uint64_t generation() const { return generation_; }

    /**
     * Mint a data hint for the page containing vaddr if it is
     * currently cached. Pure host-side probe: no stats, no LRU
     * movement, no penalty — call it after a successful translate()
     * so the simulated effects have already been counted.
     */
    bool probeDataHint(std::uint64_t vaddr, DataHint &hint)
    {
        auto it = cached_.find(vaddr / kPageBytes);
        if (it == cached_.end())
            return false;
        hint.paddr_base = it->second.pte.pfn * kPageBytes;
        hint.generation = generation_;
        hint.entry = &it->second;
        hint.flags = it->second.pte.flags;
        return true;
    }

    /**
     * Replay the translate() hit path for an entry named by a
     * still-valid hint (caller checked generation and the permission
     * bit): same stat bump, same LRU outcome, zero penalty. checkPte
     * is skipped for exactly the reason translateFetch may skip it —
     * the flags snapshot was taken from the live entry and cached
     * PTEs never mutate in place. Inline: this runs once per
     * memoized data access.
     */
    void replayHit(const DataHint &hint)
    {
        ++*hits_;
        auto &lru_it = hint.entry->lru_it;
        if (lru_.begin() != lru_it)
            lru_.splice(lru_.begin(), lru_, lru_it);
    }

    /**
     * Side-effect-free translation probe for the cache prefetcher: if
     * the page containing vaddr is currently TLB-resident and
     * readable, produce the physical address. No stats, no LRU
     * movement, no page-table refill, and no fault — a prefetch is a
     * hint, so a miss simply returns false. Residency at any demand
     * miss point is host-mode invariant (the fast-path replays
     * maintain hits, LRU, and evictions identically), so prefetch
     * decisions gated on this probe cannot diverge across modes.
     */
    bool
    probePrefetch(std::uint64_t vaddr, std::uint64_t &paddr) const
    {
        auto it = cached_.find(vaddr / kPageBytes);
        if (it == cached_.end() || !it->second.pte.flags.readable)
            return false;
        paddr = it->second.pte.pfn * kPageBytes + vaddr % kPageBytes;
        return true;
    }

    /**
     * Switch to another address space's page table (context switch);
     * flushes all cached entries.
     */
    void setTable(const PageTable &table);

    /** Drop every cached entry (context switch, unmap/revocation). */
    void flush();

    /** Drop any cached entry for the page containing vaddr. */
    void flushPage(std::uint64_t vaddr);

    const support::StatSet &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    // --- fault-injection introspection (host-side; no stats) ---

    /** Cached vpns, most-recently-used first — a deterministic
     *  enumeration for fault-candidate selection. */
    std::vector<std::uint64_t> cachedVpns() const;

    /**
     * Overwrite the cached PTE for vpn (fault injection). Bumps the
     * generation and clears the memo so every outstanding host hint is
     * dropped and all subsequent translations consistently observe the
     * corrupted entry. Returns false when vpn is not cached.
     */
    bool corruptEntry(std::uint64_t vpn, const Pte &pte);

    /**
     * Cached entries in LRU order plus statistics, captured for
     * machine checkpointing. The backing PageTable is snapshotted
     * separately by its owner.
     */
    struct Snapshot
    {
        /** (vpn, pte), most-recently-used first. */
        std::vector<std::pair<std::uint64_t, Pte>> entries;
        support::StatSet stats;
    };

    /** Capture cached entries and statistics. */
    Snapshot save() const;

    /**
     * Restore cached entries and statistics. Bumps the generation and
     * clears the memo, so host-side hints re-mint through the slow
     * path — which replays hits exactly, leaving counters unperturbed.
     */
    void restore(const Snapshot &snapshot);

  private:
    /** Out-of-line halves of translate/translateFetch. */
    TlbResult translateSlow(std::uint64_t vaddr, Access access);
    TlbResult translateFetchMiss(std::uint64_t vaddr, FetchHint &hint);

    /** Permission check + physical-address assembly for a cached or
     *  freshly refilled PTE. Inline: runs on every translation. */
    TlbResult
    checkPte(const Pte &pte, std::uint64_t vaddr, Access access,
             std::uint64_t penalty)
    {
        TlbResult result;
        result.penalty_cycles = penalty;
        result.paddr = pte.pfn * kPageBytes + vaddr % kPageBytes;

        const PteFlags &f = pte.flags;
        switch (access) {
          case Access::kFetch:
            if (!f.executable)
                result.fault = TlbFault::kNotExecutable;
            break;
          case Access::kLoad:
            if (!f.readable)
                result.fault = TlbFault::kNotReadable;
            break;
          case Access::kStore:
            if (!f.writable)
                result.fault = TlbFault::kNotWritable;
            break;
          case Access::kCapLoad:
            if (!f.readable)
                result.fault = TlbFault::kNotReadable;
            else if (!f.cap_load)
                result.fault = TlbFault::kCapLoadDenied;
            break;
          case Access::kCapStore:
            if (!f.writable)
                result.fault = TlbFault::kNotWritable;
            else if (!f.cap_store)
                result.fault = TlbFault::kCapStoreDenied;
            break;
        }
        if (result.fault != TlbFault::kNone)
            ++*faults_;
        return result;
    }

    const PageTable *table_;
    TlbConfig config_;

    std::list<std::uint64_t> lru_; ///< vpns, most recent first
    struct CachedEntry
    {
        Pte pte;
        std::list<std::uint64_t>::iterator lru_it;
    };
    std::unordered_map<std::uint64_t, CachedEntry> cached_;

    /**
     * Small direct-mapped memo in front of cached_ for data-side
     * translations (the fetch side has its own caller-held hint).
     * Guarded by the same generation as FetchHints; purely a host
     * shortcut — the hit path replays the full translate() hit
     * (stat, LRU, checkPte) so simulated behaviour is unchanged.
     */
    struct TranslateMemo
    {
        std::uint64_t vpn = ~0ULL;
        std::uint64_t generation = ~0ULL;
        CachedEntry *entry = nullptr;
    };
    // 64 slots: the Olden working sets touch dozens of data pages and
    // a 4-entry memo thrashed (over half of data translations fell
    // through to the hash find).
    std::array<TranslateMemo, 64> memo_{};

    /** Bumped whenever any cached entry is erased; guards FetchHints.
     *  CachedEntry pointers are stable under rehash and under
     *  insert/erase of *other* keys, so a hint whose generation still
     *  matches is guaranteed to point at its live entry. */
    std::uint64_t generation_ = 0;

    support::StatSet stats_;
    // Pre-resolved counter slots for the per-access hot path.
    std::uint64_t *hits_ = nullptr;
    std::uint64_t *misses_ = nullptr;
    std::uint64_t *faults_ = nullptr;
};

} // namespace cheri::tlb

#endif // CHERI_TLB_TLB_H
