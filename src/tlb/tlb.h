/**
 * @file
 * Translation lookaside buffer. R4000-flavoured in spirit but with a
 * hardware-assisted refill from the PageTable (at a modeled cycle
 * cost) so the emulator does not need a software refill handler on the
 * hot path. Default capacity covers 1 MB of 4 KB pages, matching the
 * knee the paper observes in Figure 5.
 *
 * Capability addressing occurs *before* translation (Section 1): the
 * CPU bounds-checks the virtual address against a capability, then
 * asks the TLB for the physical address. The TLB additionally gates
 * capability loads and stores on the CHERI PTE bits.
 */

#ifndef CHERI_TLB_TLB_H
#define CHERI_TLB_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "support/stats.h"
#include "tlb/page_table.h"

namespace cheri::tlb
{

/** What kind of access is being translated. */
enum class Access
{
    kFetch,
    kLoad,
    kStore,
    kCapLoad,  ///< CLC: loads a capability (checks PTE cap_load)
    kCapStore, ///< CSC: stores a capability (checks PTE cap_store)
};

/** Why a translation failed. */
enum class TlbFault
{
    kNone,
    kNoMapping,   ///< page not present in the page table
    kNotReadable,
    kNotWritable,
    kNotExecutable,
    kCapLoadDenied,  ///< CHERI PTE bit absent for a capability load
    kCapStoreDenied, ///< CHERI PTE bit absent for a capability store
};

/** Result of a translation. */
struct TlbResult
{
    TlbFault fault = TlbFault::kNone;
    std::uint64_t paddr = 0;
    /** Extra cycles charged for this translation (refill cost). */
    std::uint64_t penalty_cycles = 0;

    bool ok() const { return fault == TlbFault::kNone; }
};

/** TLB configuration. */
struct TlbConfig
{
    /** Entries; 256 x 4 KB pages = 1 MB of coverage (Figure 5). */
    unsigned entries = 256;
    /** Modeled refill penalty on a miss that hits the page table. */
    std::uint64_t refill_cycles = 30;
};

/**
 * Fully associative, LRU-replaced TLB backed by a PageTable.
 *
 * Stats: "tlb.hits", "tlb.misses", "tlb.faults".
 */
class Tlb
{
  public:
    explicit Tlb(const PageTable &table, TlbConfig config = {});

    /** Translate vaddr for the given access kind. */
    TlbResult translate(std::uint64_t vaddr, Access access);

    /**
     * Switch to another address space's page table (context switch);
     * flushes all cached entries.
     */
    void setTable(const PageTable &table);

    /** Drop every cached entry (context switch, unmap/revocation). */
    void flush();

    /** Drop any cached entry for the page containing vaddr. */
    void flushPage(std::uint64_t vaddr);

    const support::StatSet &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  private:
    TlbResult checkPte(const Pte &pte, std::uint64_t vaddr,
                       Access access, std::uint64_t penalty);

    const PageTable *table_;
    TlbConfig config_;

    std::list<std::uint64_t> lru_; ///< vpns, most recent first
    struct CachedEntry
    {
        Pte pte;
        std::list<std::uint64_t>::iterator lru_it;
    };
    std::unordered_map<std::uint64_t, CachedEntry> cached_;

    support::StatSet stats_;
};

} // namespace cheri::tlb

#endif // CHERI_TLB_TLB_H
