#include "support/parse.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "support/parallel.h"

namespace cheri::support
{

bool
parseU64(const char *text, std::uint64_t &out, int base)
{
    if (text == nullptr || *text == '\0')
        return false;
    // strtoull happily accepts leading whitespace and '-' (wrapping
    // negatives to huge values); a flag value starting with either is
    // never what the caller meant.
    if (std::isspace(static_cast<unsigned char>(*text)) ||
        *text == '-' || *text == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, base);
    if (errno == ERANGE || end == text || *end != '\0')
        return false;
    out = value;
    return true;
}

std::uint64_t
parseU64OrFatal(const char *text, const char *what, int base)
{
    std::uint64_t value = 0;
    if (!parseU64(text, value, base)) {
        std::fprintf(stderr, "invalid numeric value '%s' for %s\n",
                     text == nullptr ? "" : text, what);
        std::exit(2);
    }
    return value;
}

unsigned
parseJobsOrFatal(const char *text, const char *what)
{
    std::uint64_t value = parseU64OrFatal(text, what);
    if (value == 0) {
        std::fprintf(stderr,
                     "%s: 0 is not a worker count (omit the flag for "
                     "the automatic default)\n",
                     what);
        std::exit(2);
    }
    return normalizeJobs(value);
}

} // namespace cheri::support
