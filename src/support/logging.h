/**
 * @file
 * Host-side status and error reporting, following the gem5 convention:
 * panic() for internal emulator bugs (aborts), fatal() for user/config
 * errors (clean exit), warn()/inform() for status messages.
 *
 * Guest-visible faults (capability violations, TLB misses, MIPS
 * exceptions) never use these; they travel through the architectural
 * exception path as modeled values.
 */

#ifndef CHERI_SUPPORT_LOGGING_H
#define CHERI_SUPPORT_LOGGING_H

#include <cstdarg>
#include <string>

namespace cheri::support
{

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** Format a printf-style message into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal emulator bug and abort. Call when a condition
 * arises that no guest program or configuration should be able to
 * trigger.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1). Call
 * when the emulator cannot continue because of caller-supplied input.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning about suspicious but survivable conditions. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit an informational status message. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Number of warnings emitted so far (for tests). The counter is
 * atomic: warn() may be called from parallel-runner workers
 * (support/parallel.h), so the count must stay exact under
 * CHERI_SANITIZE=thread.
 */
unsigned long warnCount();

} // namespace cheri::support

#endif // CHERI_SUPPORT_LOGGING_H
