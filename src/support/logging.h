/**
 * @file
 * Host-side status and error reporting, following the gem5 convention:
 * panic() for internal emulator bugs (aborts), fatal() for user/config
 * errors (clean exit), warn()/inform() for status messages.
 *
 * Guest-visible faults (capability violations, TLB misses, MIPS
 * exceptions) never use these; they travel through the architectural
 * exception path as modeled values.
 */

#ifndef CHERI_SUPPORT_LOGGING_H
#define CHERI_SUPPORT_LOGGING_H

#include <cstdarg>
#include <exception>
#include <string>

namespace cheri::support
{

/**
 * A guest-induced internal failure caught by the supervision barrier:
 * a state-integrity check fired that only corrupted guest state (an
 * injected fault, a poisoned fork) can reach. Thrown by guestFault()
 * when a PanicScope is active; carries the failing subsystem and the
 * formatted message so supervisors can classify the incident.
 */
class GuestFailure : public std::exception
{
  public:
    GuestFailure(std::string subsystem, std::string message)
        : subsystem_(std::move(subsystem)), message_(std::move(message)),
          what_(subsystem_ + ": " + message_)
    {
    }

    const std::string &subsystem() const { return subsystem_; }
    const std::string &message() const { return message_; }
    const char *what() const noexcept override { return what_.c_str(); }

  private:
    std::string subsystem_;
    std::string message_;
    std::string what_;
};

/**
 * RAII guest-failure barrier. While a PanicScope is active on the
 * current thread, guestFault() throws a GuestFailure that unwinds to
 * the supervisor instead of aborting the process; outside any scope,
 * guestFault() behaves exactly like panic(). Scopes nest, and the
 * flag is thread-local, so one worker supervising a corrupted guest
 * never changes how another worker's emulator bug is reported.
 */
class PanicScope
{
  public:
    PanicScope();
    ~PanicScope();

    PanicScope(const PanicScope &) = delete;
    PanicScope &operator=(const PanicScope &) = delete;

    /** True when a PanicScope is active on this thread. */
    static bool active();
};

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** Format a printf-style message into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal emulator bug and abort. Call when a condition
 * arises that no guest program or configuration should be able to
 * trigger.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal-state integrity violation that corrupted guest
 * state can reach (see DESIGN.md §15 for the audit). Under an active
 * PanicScope this throws GuestFailure so the supervising harness can
 * roll the guest back and retry; with no scope active it is
 * indistinguishable from panic() — the condition is still an
 * emulator-level impossibility for a healthy machine.
 */
[[noreturn]] void guestFault(const char *subsystem, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Report an unrecoverable user/configuration error and exit(1). Call
 * when the emulator cannot continue because of caller-supplied input.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning about suspicious but survivable conditions. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit an informational status message. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Number of warnings emitted so far (for tests). The counter is
 * atomic: warn() may be called from parallel-runner workers
 * (support/parallel.h), so the count must stay exact under
 * CHERI_SANITIZE=thread.
 */
unsigned long warnCount();

} // namespace cheri::support

#endif // CHERI_SUPPORT_LOGGING_H
