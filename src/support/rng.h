/**
 * @file
 * Deterministic pseudo-random number generation for workloads and
 * property tests. All randomness in the repository flows through
 * Xoshiro256StarStar seeded explicitly, so every experiment is
 * reproducible bit-for-bit.
 */

#ifndef CHERI_SUPPORT_RNG_H
#define CHERI_SUPPORT_RNG_H

#include <cstdint>

#include "support/logging.h"

namespace cheri::support
{

/**
 * xoshiro256** generator (Blackman & Vigna). Deterministic, fast, and
 * good enough for workload synthesis; not for cryptography.
 */
class Xoshiro256
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Xoshiro256(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Xoshiro256::nextBelow: zero bound");
        // Rejection-free Lemire-style reduction is overkill here; a
        // plain modulo bias of < 2^-40 is irrelevant for workloads.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t
    nextInRange(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo > hi)
            panic("Xoshiro256::nextInRange: lo > hi");
        std::uint64_t span = hi - lo + 1;
        // span wraps to 0 when the range covers all 2^64 values; the
        // raw draw is already uniform over exactly that range.
        if (span == 0)
            return next();
        return lo + nextBelow(span);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    nextBool(double p = 0.5)
    {
        return nextDouble() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace cheri::support

#endif // CHERI_SUPPORT_RNG_H
