/**
 * @file
 * Work-stealing guest scheduler: the generalization of the PR 5
 * batch pool from "each job runs once" to "each guest runs a
 * sequence of quanta until it reports done". parallelFor() is now a
 * thin wrapper whose quantum always finishes in one slice, so every
 * determinism property the harnesses rely on flows from one engine.
 *
 * Scheduling model: guests are dealt round-robin onto per-worker
 * deques. A worker pops its own newest guest first (LIFO), which
 * keeps the number of part-way-through guests bounded by roughly the
 * worker count — crucial when 10k lightweight forks would otherwise
 * all be resident at once — and steals the oldest guest from a
 * victim's deque (FIFO) when its own is empty. A preempted guest
 * (quantum returns kRunnable) goes back on its worker's own deque.
 *
 * Determinism contract (inherited from parallel.h): a guest may
 * touch only state it owns plus its private result slot, so the
 * schedule — which worker runs which guest, and in what interleaving
 * — can never change the bytes a guest produces; merging results by
 * guest index reproduces the serial run exactly. jobs == 1 runs
 * every guest to completion inline, in index order, with worker 0:
 * the reference schedule the parallel runs are byte-compared
 * against. If a quantum throws, the first exception is rethrown on
 * the calling thread after workers drain; the failing guest is
 * dropped and remaining guests are abandoned (not started).
 */

#ifndef CHERI_SUPPORT_SCHEDULER_H
#define CHERI_SUPPORT_SCHEDULER_H

#include <cstddef>
#include <functional>

namespace cheri::support
{

/** What a guest's quantum reports back to the scheduler. */
enum class QuantumResult
{
    kRunnable, ///< preempted: reschedule on the same worker's deque
    kDone,     ///< ran to completion: retire the guest
};

/**
 * Multiplexes N guests over M worker threads in RunLimits-sized
 * quanta. The scheduler itself is stateless between run() calls;
 * per-guest state (the forked Machine, quantum counters, result
 * slot) lives with the caller, indexed by guest index.
 */
class GuestScheduler
{
  public:
    using Quantum =
        std::function<QuantumResult(std::size_t guest, unsigned worker)>;

    /** jobs == 0 picks defaultJobs(); 1 is the inline serial path. */
    explicit GuestScheduler(unsigned jobs) : jobs_(jobs) {}

    /**
     * Run guests [0, count) to completion: each guest's quantum is
     * invoked repeatedly — always on one thread at a time, with a
     * happens-before edge between consecutive quanta even when a
     * steal moves the guest across workers — until it returns kDone.
     */
    void run(std::size_t count, const Quantum &quantum) const;

  private:
    unsigned jobs_;
};

} // namespace cheri::support

#endif // CHERI_SUPPORT_SCHEDULER_H
