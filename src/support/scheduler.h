/**
 * @file
 * Work-stealing guest scheduler: the generalization of the PR 5
 * batch pool from "each job runs once" to "each guest runs a
 * sequence of quanta until it reports done". parallelFor() is now a
 * thin wrapper whose quantum always finishes in one slice, so every
 * determinism property the harnesses rely on flows from one engine.
 *
 * Scheduling model: guests are dealt round-robin onto per-worker
 * deques. A worker pops its own newest guest first (LIFO), which
 * keeps the number of part-way-through guests bounded by roughly the
 * worker count — crucial when 10k lightweight forks would otherwise
 * all be resident at once — and steals the oldest guest from a
 * victim's deque (FIFO) when its own is empty. A preempted guest
 * (quantum returns kRunnable) goes back on its worker's own deque.
 *
 * Determinism contract (inherited from parallel.h): a guest may
 * touch only state it owns plus its private result slot, so the
 * schedule — which worker runs which guest, and in what interleaving
 * — can never change the bytes a guest produces; merging results by
 * guest index reproduces the serial run exactly. jobs == 1 runs
 * every guest to completion inline, in index order, with worker 0:
 * the reference schedule the parallel runs are byte-compared
 * against. If a quantum throws, the first exception is rethrown on
 * the calling thread after workers drain; the failing guest is
 * dropped and remaining guests are abandoned (not started).
 */

#ifndef CHERI_SUPPORT_SCHEDULER_H
#define CHERI_SUPPORT_SCHEDULER_H

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace cheri::support
{

/** What a guest's quantum reports back to the scheduler. */
enum class QuantumResult
{
    kRunnable, ///< preempted: reschedule on the same worker's deque
    kDone,     ///< ran to completion: retire the guest
};

/**
 * Multiplexes N guests over M worker threads in RunLimits-sized
 * quanta. The scheduler itself is stateless between run() calls;
 * per-guest state (the forked Machine, quantum counters, result
 * slot) lives with the caller, indexed by guest index.
 */
class GuestScheduler
{
  public:
    using Quantum =
        std::function<QuantumResult(std::size_t guest, unsigned worker)>;

    /** jobs == 0 picks defaultJobs(); 1 is the inline serial path. */
    explicit GuestScheduler(unsigned jobs) : jobs_(jobs) {}

    /**
     * Run guests [0, count) to completion: each guest's quantum is
     * invoked repeatedly — always on one thread at a time, with a
     * happens-before edge between consecutive quanta even when a
     * steal moves the guest across workers — until it returns kDone.
     */
    void run(std::size_t count, const Quantum &quantum) const;

  private:
    unsigned jobs_;
};

/** Final supervision verdict for one guest. */
enum class GuestVerdict
{
    kHealthy,     ///< completed with zero incidents
    kRecovered,   ///< failed, rolled back, and later completed clean
    kQuarantined, ///< exhausted its retry budget (or repeated one
                  ///< fault quarantine_after times in a row)
};

/** Stable lower-case name used in reports and JSON. */
const char *guestVerdictName(GuestVerdict verdict);

/** One recorded failure of one attempt. */
struct GuestIncident
{
    /** Zero-based attempt index the failure happened on. */
    unsigned attempt = 0;
    /** Caller-supplied stable failure class, e.g. "trap" or
     *  "internal_fault:mem". */
    std::string fault;
};

/** Per-guest supervision result, merged by guest index. */
struct GuestOutcome
{
    GuestVerdict verdict = GuestVerdict::kHealthy;
    /** Attempts started (>= 1; attempt indices are [0, attempts)). */
    unsigned attempts = 1;
    /** Every failure, in attempt order. Empty iff kHealthy. */
    std::vector<GuestIncident> incidents;
};

/**
 * Rollback-retry supervision layered on GuestScheduler: guests whose
 * quanta report structured failures are retried from scratch with a
 * bounded budget instead of killing the fleet, and guests that
 * exhaust it are quarantined with their incident history intact.
 *
 * The supervisor owns only the retry bookkeeping; the caller owns the
 * rollback itself. The quantum receives the current zero-based
 * attempt index, and a bumped attempt index IS the rollback signal:
 * the caller must discard the guest's poisoned state and re-create it
 * from its checkpoint (e.g. re-fork the COW parent) whenever the
 * attempt it is handed differs from the one it last minted state for.
 *
 * Determinism contract: incidents and verdicts are merged by guest
 * index and each guest's outcome depends only on what its own quanta
 * return per (guest, attempt), so a fleet whose quantum is a pure
 * function of those two values produces byte-identical outcomes at
 * any worker count — the same contract GuestScheduler gives for
 * records, extended to failure histories.
 */
class GuestSupervisor
{
  public:
    struct Config
    {
        /** Scheduler workers: 0 = hardware concurrency, 1 = serial
         *  reference schedule. */
        unsigned jobs = 0;
        /** Rollback-retries granted per guest: a guest may fail
         *  retry_budget + 1 times before it is quarantined. */
        unsigned retry_budget = 3;
        /** Quarantine early after this many consecutive incidents
         *  with an identical fault string (0 = disabled): a guest
         *  deterministically re-hitting the same fault will never
         *  recover, so retrying it further is wasted work. */
        unsigned quarantine_after = 0;
    };

    /** What one supervised quantum reports back. */
    struct Step
    {
        enum class Kind
        {
            kRunnable, ///< preempted mid-attempt: reschedule
            kDone,     ///< attempt completed clean: retire the guest
            kFailed,   ///< attempt failed: roll back or quarantine
        };
        Kind kind = Kind::kRunnable;
        std::string fault;

        static Step runnable() { return {}; }
        static Step done()
        {
            Step step;
            step.kind = Kind::kDone;
            return step;
        }
        static Step failed(std::string fault)
        {
            Step step;
            step.kind = Kind::kFailed;
            step.fault = std::move(fault);
            return step;
        }
    };

    using Quantum = std::function<Step(std::size_t guest,
                                       unsigned worker,
                                       unsigned attempt)>;

    explicit GuestSupervisor(const Config &config) : config_(config) {}

    /**
     * Supervise guests [0, count) to a verdict each. A guest's slot
     * in the returned vector is written only by the worker currently
     * running it (GuestScheduler's happens-before edge covers it), so
     * the result is safe to read once run() returns.
     */
    std::vector<GuestOutcome> run(std::size_t count,
                                  const Quantum &quantum) const;

  private:
    Config config_;
};

} // namespace cheri::support

#endif // CHERI_SUPPORT_SCHEDULER_H
