/**
 * @file
 * Bit-manipulation helpers shared across the emulator: field
 * extraction/insertion, sign extension, alignment and power-of-two
 * arithmetic on 64-bit values.
 */

#ifndef CHERI_SUPPORT_BITS_H
#define CHERI_SUPPORT_BITS_H

#include <bit>
#include <cstdint>

/** Inlining the interpreter's per-access helpers is worth several
 *  simulated MIPS; the attribute is advisory where unsupported. */
#if defined(__GNUC__) || defined(__clang__)
#define CHERI_FORCE_INLINE inline __attribute__((always_inline))
#else
#define CHERI_FORCE_INLINE inline
#endif

namespace cheri::support
{

/** Extract bits [lo, lo+width) of value (width in 1..64). */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned width)
{
    std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (value >> lo) & mask;
}

/** Insert the low 'width' bits of field at position lo of value. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned lo, unsigned width,
           std::uint64_t field)
{
    std::uint64_t mask =
        (width >= 64 ? ~0ULL : ((1ULL << width) - 1)) << lo;
    return (value & ~mask) | ((field << lo) & mask);
}

/** Sign-extend the low 'width' bits of value to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned width)
{
    if (width >= 64)
        return static_cast<std::int64_t>(value);
    std::uint64_t sign = 1ULL << (width - 1);
    std::uint64_t masked = value & ((1ULL << width) - 1);
    return static_cast<std::int64_t>((masked ^ sign) - sign);
}

/** True when value is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Round value up to the next multiple of align (align: power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round value down to a multiple of align (align: power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

/** Smallest power of two >= value (value <= 2^63). */
constexpr std::uint64_t
nextPowerOfTwo(std::uint64_t value)
{
    return value <= 1 ? 1 : std::bit_ceil(value);
}

/** Floor of log2(value); value must be nonzero. */
constexpr unsigned
log2Floor(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

} // namespace cheri::support

#endif // CHERI_SUPPORT_BITS_H
