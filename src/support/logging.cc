#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cheri::support
{

namespace
{
std::atomic<unsigned long> warn_count{0};

/** Nesting depth of PanicScope on this thread (thread-local so one
 *  supervised worker never softens another thread's panics). */
thread_local unsigned panic_scope_depth = 0;
} // namespace

PanicScope::PanicScope()
{
    ++panic_scope_depth;
}

PanicScope::~PanicScope()
{
    --panic_scope_depth;
}

bool
PanicScope::active()
{
    return panic_scope_depth != 0;
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
guestFault(const char *subsystem, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    if (PanicScope::active())
        throw GuestFailure(subsystem, s);
    std::fprintf(stderr, "panic: %s: %s\n", subsystem, s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    warn_count.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", s.c_str());
}

unsigned long
warnCount()
{
    return warn_count.load(std::memory_order_relaxed);
}

} // namespace cheri::support
