#include "support/stats.h"

#include <algorithm>
#include <iomanip>

#include "support/logging.h"

namespace cheri::support
{

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size()) {
        panic("TextTable row arity %zu != header arity %zu",
              row.size(), headers_.size());
    }
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << '\n';
    };

    emit_row(headers_);
    size_t total = headers_.size() - 1;
    for (size_t w : widths)
        total += w + 1;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
percent(double fraction)
{
    return format("%.1f%%", fraction * 100.0);
}

std::string
overheadPercent(double value, double base)
{
    if (base == 0.0)
        return "n/a";
    return format("%+.1f%%", (value / base - 1.0) * 100.0);
}

} // namespace cheri::support
