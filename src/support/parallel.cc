#include "support/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace cheri::support
{

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

unsigned
normalizeJobs(std::uint64_t requested)
{
    if (requested == 0)
        return defaultJobs();
    return requested > kMaxJobs
               ? kMaxJobs
               : static_cast<unsigned>(requested);
}

void
parallelFor(std::size_t count, unsigned jobs,
            const std::function<void(std::size_t, unsigned)> &fn)
{
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > count)
        jobs = count == 0 ? 1 : static_cast<unsigned>(count);

    if (jobs <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i, 0);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto drain = [&](unsigned worker) {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t index =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= count)
                return;
            try {
                fn(index, worker);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(jobs - 1);
    for (unsigned w = 1; w < jobs; ++w)
        workers.emplace_back(drain, w);
    drain(0);
    for (std::thread &worker : workers)
        worker.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace cheri::support
