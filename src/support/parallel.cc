#include "support/parallel.h"

#include <thread>

#include "support/scheduler.h"

namespace cheri::support
{

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

unsigned
normalizeJobs(std::uint64_t requested)
{
    if (requested == 0)
        return defaultJobs();
    return requested > kMaxJobs
               ? kMaxJobs
               : static_cast<unsigned>(requested);
}

void
parallelFor(std::size_t count, unsigned jobs,
            const std::function<void(std::size_t, unsigned)> &fn)
{
    // A batch job is a guest whose first quantum always completes:
    // parallelFor is the degenerate case of the guest scheduler, so
    // the exactly-once / first-exception / jobs==1-inline contract is
    // enforced by one engine for batches and quantum'd guests alike.
    GuestScheduler scheduler(jobs);
    scheduler.run(count, [&fn](std::size_t index, unsigned worker) {
        fn(index, worker);
        return QuantumResult::kDone;
    });
}

} // namespace cheri::support
