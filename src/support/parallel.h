/**
 * @file
 * Deterministic batch runner for the embarrassingly-parallel
 * harnesses (differential fuzzing, fault-injection campaigns, the
 * throughput bench grid), built on the work-stealing GuestScheduler
 * (scheduler.h). Worker threads drain independent, index-addressed
 * jobs; results are written into per-index slots, so merging in
 * index order reproduces the serial run byte-for-byte no matter how
 * the OS schedules the workers.
 *
 * Determinism contract: a job may touch only (a) state it creates
 * itself (its own Machine/RefCpu pair, its own RNG seeded from the job
 * index) and (b) its private result slot. Nothing in this file
 * serializes jobs against each other, so any shared mutable state is a
 * race — build with -DCHERI_SANITIZE=thread to check. With jobs == 1
 * everything runs inline on the calling thread, which is exactly the
 * pre-pool serial behaviour.
 */

#ifndef CHERI_SUPPORT_PARALLEL_H
#define CHERI_SUPPORT_PARALLEL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace cheri::support
{

/** Hardware concurrency, clamped to at least 1. */
unsigned defaultJobs();

/**
 * Normalize a --jobs request: 0 means "pick for me" (defaultJobs());
 * anything else is used as given, capped at kMaxJobs to keep a typo
 * like --jobs 1000000 from exhausting host threads.
 */
unsigned normalizeJobs(std::uint64_t requested);

/** Upper bound normalizeJobs() imposes on explicit requests. */
constexpr unsigned kMaxJobs = 256;

/**
 * Run fn(index, worker) for every index in [0, count) across 'jobs'
 * fixed worker threads. worker is in [0, jobs) and identifies the
 * thread running the job, so callers can keep per-worker state (e.g.
 * one emulated Machine per worker) without locking. Indices are
 * dealt across per-worker deques and rebalanced by work stealing
 * (this is the one-quantum case of scheduler.h's GuestScheduler) —
 * execution order across workers is unspecified, which is why jobs
 * must be independent.
 *
 * jobs == 1 (or count <= 1) runs every job inline on the calling
 * thread in index order with worker == 0: bit-for-bit the serial
 * behaviour, no threads created.
 *
 * If a job throws, the first exception (by completion order) is
 * rethrown on the calling thread after all workers join; remaining
 * queued jobs are abandoned.
 */
void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t index,
                                          unsigned worker)> &fn);

/**
 * Ordered map: run fn(index, worker) -> Result for every index and
 * return the results indexed by job — result[i] is always job i's
 * value regardless of scheduling, so downstream consumers (report
 * writers, reproducer dumps) see the serial order.
 */
template <typename Result, typename Fn>
std::vector<Result>
parallelMapOrdered(std::size_t count, unsigned jobs, Fn &&fn)
{
    std::vector<Result> results(count);
    parallelFor(count, jobs,
                [&](std::size_t index, unsigned worker) {
                    results[index] = fn(index, worker);
                });
    return results;
}

} // namespace cheri::support

#endif // CHERI_SUPPORT_PARALLEL_H
