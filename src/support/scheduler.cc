#include "support/scheduler.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/parallel.h"

namespace cheri::support
{

namespace
{

/** One worker's run queue. Own pops take the back (LIFO: finish the
 *  newest guest before starting another); steals take the front
 *  (FIFO: the guest its owner would have reached last). */
struct WorkerDeque
{
    std::mutex mutex;
    std::deque<std::size_t> guests;
};

} // namespace

void
GuestScheduler::run(std::size_t count, const Quantum &quantum) const
{
    unsigned jobs = jobs_ == 0 ? defaultJobs() : jobs_;
    if (jobs > count)
        jobs = count == 0 ? 1 : static_cast<unsigned>(count);

    if (jobs <= 1) {
        // Reference schedule: index order, run-to-completion, no
        // threads. Parallel runs are byte-compared against this.
        for (std::size_t i = 0; i < count; ++i)
            while (quantum(i, 0) == QuantumResult::kRunnable) {
            }
        return;
    }

    std::vector<WorkerDeque> deques(jobs);
    for (std::size_t i = 0; i < count; ++i)
        deques[i % jobs].guests.push_back(i);

    std::atomic<std::size_t> remaining{count};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto pop_own = [&](unsigned worker, std::size_t &guest) {
        std::lock_guard<std::mutex> lock(deques[worker].mutex);
        if (deques[worker].guests.empty())
            return false;
        guest = deques[worker].guests.back();
        deques[worker].guests.pop_back();
        return true;
    };
    auto steal = [&](unsigned thief, std::size_t &guest) {
        for (unsigned k = 1; k < jobs; ++k) {
            WorkerDeque &victim = deques[(thief + k) % jobs];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.guests.empty()) {
                guest = victim.guests.front();
                victim.guests.pop_front();
                return true;
            }
        }
        return false;
    };

    auto drain = [&](unsigned worker) {
        unsigned idle_scans = 0;
        while (!failed.load(std::memory_order_acquire) &&
               remaining.load(std::memory_order_acquire) != 0) {
            std::size_t guest;
            if (!pop_own(worker, guest) && !steal(worker, guest)) {
                // Every queued guest is in flight on another worker;
                // nothing to steal until one is preempted or done.
                if (++idle_scans < 64)
                    std::this_thread::yield();
                else
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                continue;
            }
            idle_scans = 0;
            try {
                if (quantum(guest, worker) == QuantumResult::kDone) {
                    remaining.fetch_sub(1, std::memory_order_acq_rel);
                } else {
                    std::lock_guard<std::mutex> lock(
                        deques[worker].mutex);
                    deques[worker].guests.push_back(guest);
                }
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
                failed.store(true, std::memory_order_release);
                return;
            }
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(jobs - 1);
    for (unsigned w = 1; w < jobs; ++w)
        workers.emplace_back(drain, w);
    drain(0);
    for (std::thread &worker : workers)
        worker.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

const char *
guestVerdictName(GuestVerdict verdict)
{
    switch (verdict) {
    case GuestVerdict::kHealthy:
        return "healthy";
    case GuestVerdict::kRecovered:
        return "recovered";
    case GuestVerdict::kQuarantined:
        return "quarantined";
    }
    return "unknown";
}

std::vector<GuestOutcome>
GuestSupervisor::run(std::size_t count, const Quantum &quantum) const
{
    std::vector<GuestOutcome> outcomes(count);
    GuestScheduler scheduler(config_.jobs);
    scheduler.run(count, [&](std::size_t guest, unsigned worker) {
        GuestOutcome &outcome = outcomes[guest];
        Step step = quantum(guest, worker, outcome.attempts - 1);
        switch (step.kind) {
        case Step::Kind::kRunnable:
            return QuantumResult::kRunnable;
        case Step::Kind::kDone:
            outcome.verdict = outcome.incidents.empty()
                                  ? GuestVerdict::kHealthy
                                  : GuestVerdict::kRecovered;
            return QuantumResult::kDone;
        case Step::Kind::kFailed:
            break;
        }
        outcome.incidents.push_back(
            {outcome.attempts - 1, std::move(step.fault)});
        bool exhausted = outcome.incidents.size() >
                         static_cast<std::size_t>(config_.retry_budget);
        bool stuck = false;
        if (config_.quarantine_after > 0 &&
            outcome.incidents.size() >= config_.quarantine_after) {
            stuck = true;
            const std::string &last = outcome.incidents.back().fault;
            for (std::size_t k =
                     outcome.incidents.size() - config_.quarantine_after;
                 k < outcome.incidents.size(); ++k) {
                if (outcome.incidents[k].fault != last) {
                    stuck = false;
                    break;
                }
            }
        }
        if (exhausted || stuck) {
            outcome.verdict = GuestVerdict::kQuarantined;
            return QuantumResult::kDone;
        }
        // Grant the retry: the bumped attempt index tells the caller
        // to roll the guest back to its checkpoint before running.
        ++outcome.attempts;
        return QuantumResult::kRunnable;
    });
    return outcomes;
}

} // namespace cheri::support
