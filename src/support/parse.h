/**
 * @file
 * Strict numeric parsing for CLI flags and environment variables. The
 * tools used to call std::strtoull(text, nullptr, 0) directly, which
 * silently returns 0 on garbage — so `cheri-fuzz --seeds banana` ran
 * zero seeds and exited success. These helpers reject empty strings,
 * trailing junk, negative signs, and out-of-range values instead of
 * folding them all into 0.
 */

#ifndef CHERI_SUPPORT_PARSE_H
#define CHERI_SUPPORT_PARSE_H

#include <cstdint>

namespace cheri::support
{

/**
 * Parse an unsigned 64-bit value with errno + end-pointer checking.
 * base follows strtoull (0 = auto-detect 0x/0 prefixes). Returns
 * false — leaving 'out' untouched — on empty input, leading '-',
 * trailing junk, or overflow.
 */
bool parseU64(const char *text, std::uint64_t &out, int base = 0);

/**
 * Parse an unsigned 64-bit CLI value or exit(2) (the tools' usage
 * exit code) with a one-line diagnostic naming 'what' (e.g. the flag
 * or environment variable the value came from).
 */
std::uint64_t parseU64OrFatal(const char *text, const char *what,
                              int base = 0);

/**
 * Parse an explicit --jobs value and return it normalized (capped at
 * kMaxJobs). A literal 0 is rejected with exit(2): internally 0 means
 * "auto", but a user typing --jobs 0 is asking for zero workers —
 * honouring it as "all cores" silently inverts their intent. Omit the
 * flag (or the environment variable) to get the automatic default.
 */
unsigned parseJobsOrFatal(const char *text, const char *what);

} // namespace cheri::support

#endif // CHERI_SUPPORT_PARSE_H
