/**
 * @file
 * Lightweight named-counter statistics used by the memory hierarchy,
 * models, and benchmark harnesses, plus table-formatting helpers so
 * every bench binary prints its paper table/figure the same way.
 */

#ifndef CHERI_SUPPORT_STATS_H
#define CHERI_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cheri::support
{

/** A bag of named monotonically increasing counters. */
class StatSet
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Current value of the named counter (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /**
     * Stable reference to a counter slot (created at zero). Hot paths
     * resolve their counters once and bump through the reference,
     * avoiding a string map lookup per event. References stay valid
     * for the StatSet's lifetime: reset() zeroes counters in place
     * instead of erasing them.
     */
    std::uint64_t &counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Reset every counter to zero (slots persist; see counter()). */
    void
    reset()
    {
        for (auto &entry : counters_)
            entry.second = 0;
    }

    /**
     * Overwrite this set's counters with other's values. Slots that
     * exist here but not in other are zeroed in place rather than
     * erased, so counter() references survive (mirrors reset()).
     * Used by snapshot restore to roll statistics back exactly.
     */
    void
    assignFrom(const StatSet &other)
    {
        for (auto &entry : counters_)
            entry.second = 0;
        for (const auto &entry : other.counters_)
            counters_[entry.first] = entry.second;
    }

    /** Add every counter of other into this set in one ordered pass. */
    void
    merge(const StatSet &other)
    {
        for (const auto &entry : other.counters_) {
            auto it = counters_.emplace_hint(counters_.end(),
                                             entry.first, 0);
            it->second += entry.second;
        }
    }

    /** All counters in name order. */
    const std::map<std::string, std::uint64_t> &
    all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Fixed-column text table used by the bench binaries to render the
 * paper's tables and figure series in a uniform plain-text form.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a ratio as a percentage string with one decimal ("12.3%"). */
std::string percent(double fraction);

/** Format an overhead (value/base - 1) as a percentage string. */
std::string overheadPercent(double value, double base);

} // namespace cheri::support

#endif // CHERI_SUPPORT_STATS_H
