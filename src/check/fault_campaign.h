/**
 * @file
 * The fault-injection campaign engine. For each guest kernel the
 * engine checkpoints the freshly loaded machine once
 * (core::Machine snapshot), measures a clean watchdog-bounded run,
 * proves that snapshot/restore alone does not perturb the
 * instruction/cycle counters, and then replays N trials from the
 * checkpoint: run a clean prefix in lockstep against the reference
 * CPU, apply one planned fault (check/fault_plan.h) at a seeded
 * retired-instruction count, and keep comparing until the pair stops.
 *
 * Every trial is classified:
 *  - detected_trap:       the fast CPU raised a trap the clean
 *                         reference did not (a CHERI capability or
 *                         TLB check caught the corruption);
 *  - detected_divergence: architectural state visibly diverged from
 *                         the reference without a trap;
 *  - detected_abort:      the corruption tripped an internal state-
 *                         integrity check (support::guestFault) and
 *                         the guest-failure barrier unwound the trial
 *                         cleanly instead of killing the campaign;
 *  - timeout:             the corrupted guest blew its instruction
 *                         budget (the watchdog fired);
 *  - masked:              the guest completed and final DRAM + tags
 *                         match the reference bit-for-bit;
 *  - silent_corruption:   the guest completed with clean
 *                         architectural state but the final memory
 *                         sweep found lingering corruption.
 *
 * All randomness flows through one seeded Xoshiro256 per guest, and
 * the JSON report has a fixed key order with no timestamps, so a
 * campaign is reproducible byte-for-byte.
 */

#ifndef CHERI_CHECK_FAULT_CAMPAIGN_H
#define CHERI_CHECK_FAULT_CAMPAIGN_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/fault_plan.h"
#include "core/machine.h"

namespace cheri::check
{

/** One guest kernel the campaign can run. */
struct CampaignGuest
{
    std::string name;
    /** Map memory, load the program, and reset the CPU to its entry. */
    std::function<void(core::Machine &)> load;
};

/** Campaign knobs. */
struct CampaignConfig
{
    /** Injection trials per guest. */
    std::uint64_t trials = 100;
    std::uint64_t seed = 1;
    std::uint64_t dram_bytes = 8 * 1024 * 1024;
    /** Run the fast machine with decode + data fast paths enabled. */
    bool fast_paths = true;
    /** Watchdog budget for the clean run (retired instructions). */
    std::uint64_t clean_budget = 100'000'000;
    /**
     * Worker threads replaying trials (0 = hardware concurrency,
     * 1 = serial). Each worker owns a private machine cloned from the
     * guest's checkpoint and trial plans are drawn serially up front,
     * so the report — including toJson(), which deliberately omits
     * this knob — is byte-identical for any value.
     */
    unsigned jobs = 1;
    /**
     * Draw each trial's machine as a copy-on-write fork of the
     * worker's pristine checkpoint parent instead of deep-restoring
     * the worker machine in place (Machine::fork() vs
     * restoreSnapshot()). A fork is an exact simulated-state clone,
     * so the report — which, like jobs, omits this knob from
     * toJson() — is byte-identical either way; tests assert exactly
     * that, which makes the campaign itself a fork correctness
     * oracle.
     */
    bool fork_machines = false;
};

/** How one trial ended (see file comment). */
enum class TrialOutcome
{
    kDetectedTrap,
    kDetectedDivergence,
    kDetectedAbort,
    kTimeout,
    kMasked,
    kSilentCorruption,
};

constexpr unsigned kNumTrialOutcomes = 6;

/** Stable lower-case name used in reports and JSON keys. */
const char *trialOutcomeName(TrialOutcome outcome);

/** One classified injection. */
struct TrialRecord
{
    std::uint64_t index = 0;
    FaultClass requested = FaultClass::kDramBitFlip;
    FaultClass applied = FaultClass::kDramBitFlip;
    std::uint64_t inject_at = 0;
    std::string target;
    TrialOutcome outcome = TrialOutcome::kMasked;
    /** Instructions the pair retired after the injection. */
    std::uint64_t instructions_after = 0;
    /** First line of the divergence/trap/sweep report, if any. */
    std::string detail;
};

/** Per-guest results. */
struct GuestReport
{
    std::string name;
    std::uint64_t clean_instructions = 0;
    std::uint64_t clean_cycles = 0;
    /**
     * True when restoring the pristine checkpoint and re-running the
     * guest did NOT reproduce the clean run's instruction/cycle
     * counters and checksum — i.e. snapshot/restore itself perturbed
     * the machine. Must be false everywhere.
     */
    bool restore_perturbed = false;
    std::vector<TrialRecord> trials;

    /** outcome counts for one fault class, indexed by TrialOutcome. */
    using OutcomeCounts = std::array<std::uint64_t, kNumTrialOutcomes>;
    /** counts[class][outcome], indexed by FaultClass (applied). */
    std::array<OutcomeCounts, kNumFaultClasses> counts{};
};

/** Whole-campaign results. */
struct CampaignReport
{
    CampaignConfig config;
    std::vector<GuestReport> guests;

    /**
     * Deterministic JSON: objects use a fixed (alphabetical) key
     * order, arrays follow trial order, no timestamps or host state.
     * Two runs with the same config are byte-identical.
     */
    std::string toJson() const;
};

/** Run the campaign over the given guests (in order). */
CampaignReport runCampaign(const CampaignConfig &config,
                           const std::vector<CampaignGuest> &guests);

} // namespace cheri::check

#endif // CHERI_CHECK_FAULT_CAMPAIGN_H
