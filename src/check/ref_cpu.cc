#include "check/ref_cpu.h"

#include "isa/decoder.h"
#include "support/bits.h"
#include "support/logging.h"

namespace cheri::check
{

using cap::CapCause;
using core::ExcCode;
using isa::Instruction;
using isa::Opcode;
using support::signExtend;

// ---------------------------------------------------------------------
// RefMemory
// ---------------------------------------------------------------------

RefMemory::RefMemory(std::uint64_t size_bytes)
    : data_(size_bytes, 0), tags_(size_bytes / mem::kLineBytes, 0)
{
}

std::uint64_t
RefMemory::read(std::uint64_t paddr, unsigned size) const
{
    if (paddr + size > data_.size())
        support::panic("RefMemory read [0x%llx, +%u) out of range",
                       static_cast<unsigned long long>(paddr), size);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<std::uint64_t>(data_[paddr + i]) << (8 * i);
    return value;
}

void
RefMemory::write(std::uint64_t paddr, unsigned size, std::uint64_t value)
{
    if (paddr + size > data_.size())
        support::panic("RefMemory write [0x%llx, +%u) out of range",
                       static_cast<unsigned long long>(paddr), size);
    for (unsigned i = 0; i < size; ++i)
        data_[paddr + i] = static_cast<std::uint8_t>(value >> (8 * i));
    tags_[lineIndex(paddr)] = 0; // data store clears the tag
}

mem::TaggedLine
RefMemory::readCapLine(std::uint64_t paddr) const
{
    std::uint64_t line_addr = paddr & ~(mem::kLineBytes - 1);
    mem::TaggedLine line;
    for (unsigned i = 0; i < mem::kLineBytes; ++i)
        line.data[i] = data_[line_addr + i];
    line.tag = tags_[lineIndex(paddr)] != 0;
    return line;
}

void
RefMemory::writeCapLine(std::uint64_t paddr, const mem::TaggedLine &line)
{
    std::uint64_t line_addr = paddr & ~(mem::kLineBytes - 1);
    for (unsigned i = 0; i < mem::kLineBytes; ++i)
        data_[line_addr + i] = line.data[i];
    tags_[lineIndex(paddr)] = line.tag ? 1 : 0;
}

bool
RefMemory::lineTag(std::uint64_t paddr) const
{
    return tags_[lineIndex(paddr)] != 0;
}

mem::Line
RefMemory::lineData(std::uint64_t paddr) const
{
    std::uint64_t line_addr = paddr & ~(mem::kLineBytes - 1);
    mem::Line line;
    for (unsigned i = 0; i < mem::kLineBytes; ++i)
        line[i] = data_[line_addr + i];
    return line;
}

void
RefMemory::writeBlock(std::uint64_t paddr, const std::uint8_t *src,
                      std::uint64_t len)
{
    if (paddr + len > data_.size())
        support::panic("RefMemory block [0x%llx, +%llu) out of range",
                       static_cast<unsigned long long>(paddr),
                       static_cast<unsigned long long>(len));
    for (std::uint64_t i = 0; i < len; ++i)
        data_[paddr + i] = src[i];
}

// ---------------------------------------------------------------------
// RefCpu
// ---------------------------------------------------------------------

namespace
{

/** Sign-extend a 32-bit result as MIPS64 word operations require. */
std::uint64_t
sext32(std::uint64_t value)
{
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(value)));
}

} // namespace

RefCpu::RefCpu(RefMemory &memory, const tlb::PageTable &table)
    : memory_(memory), table_(&table)
{
}

void
RefCpu::setGpr(unsigned index, std::uint64_t value)
{
    if (index >= 32)
        support::panic("RefCpu GPR index %u out of range", index);
    if (index != 0)
        gpr_[index] = value;
}

void
RefCpu::setPc(std::uint64_t pc)
{
    pc_ = pc;
    next_pc_ = pc + 4;
    branch_pending_ = false;
    pcc_swap_countdown_ = 0;
}

RefCpu::Translation
RefCpu::translate(std::uint64_t vaddr, tlb::Access access) const
{
    Translation result;
    std::optional<tlb::Pte> pte = table_->lookup(vaddr / tlb::kPageBytes);
    if (!pte) {
        result.fault = tlb::TlbFault::kNoMapping;
        return result;
    }
    result.paddr =
        pte->pfn * tlb::kPageBytes + vaddr % tlb::kPageBytes;
    const tlb::PteFlags &f = pte->flags;
    switch (access) {
      case tlb::Access::kFetch:
        if (!f.executable)
            result.fault = tlb::TlbFault::kNotExecutable;
        break;
      case tlb::Access::kLoad:
        if (!f.readable)
            result.fault = tlb::TlbFault::kNotReadable;
        break;
      case tlb::Access::kStore:
        if (!f.writable)
            result.fault = tlb::TlbFault::kNotWritable;
        break;
      case tlb::Access::kCapLoad:
        if (!f.readable)
            result.fault = tlb::TlbFault::kNotReadable;
        else if (!f.cap_load)
            result.fault = tlb::TlbFault::kCapLoadDenied;
        break;
      case tlb::Access::kCapStore:
        if (!f.writable)
            result.fault = tlb::TlbFault::kNotWritable;
        else if (!f.cap_store)
            result.fault = tlb::TlbFault::kCapStoreDenied;
        break;
    }
    return result;
}

void
RefCpu::raise(ExcCode code, std::uint64_t bad_vaddr)
{
    pending_trap_ = core::Trap{};
    pending_trap_.code = code;
    pending_trap_.epc = current_pc_;
    pending_trap_.bad_vaddr = bad_vaddr;
    pending_trap_.in_delay_slot = in_delay_slot_;
    trap_pending_ = true;
}

void
RefCpu::raiseCap(CapCause cause, std::uint8_t cap_reg,
                 std::uint64_t bad_vaddr)
{
    raise(ExcCode::kCp2, bad_vaddr);
    pending_trap_.cap_cause = cause;
    pending_trap_.cap_reg = cap_reg;
}

void
RefCpu::branchTo(std::uint64_t target)
{
    next_pc_ = target;
    branch_pending_ = true;
}

void
RefCpu::noteWrite(std::uint64_t paddr)
{
    lines_written_.push_back(paddr & ~(mem::kLineBytes - 1));
}

bool
RefCpu::checkedDataAccess(unsigned cap_index, std::uint64_t offset,
                          unsigned size, bool is_store, bool is_cap,
                          std::uint64_t &paddr_out)
{
    const cap::Capability &capr = caps_.read(cap_index);
    std::uint32_t perm;
    if (is_cap)
        perm = is_store ? cap::kPermStoreCap : cap::kPermLoadCap;
    else
        perm = is_store ? cap::kPermStore : cap::kPermLoad;

    std::uint64_t vaddr = cap::effectiveAddress(capr, offset);
    CapCause cause =
        cap::checkDataAccess(capr, offset, size, perm, is_cap);
    if (cause != CapCause::kNone) {
        raiseCap(cause, static_cast<std::uint8_t>(cap_index), vaddr);
        return false;
    }

    if (!is_cap && vaddr % size != 0) {
        raise(is_store ? ExcCode::kAddressErrorStore
                       : ExcCode::kAddressErrorLoad,
              vaddr);
        return false;
    }

    tlb::Access access;
    if (is_cap)
        access = is_store ? tlb::Access::kCapStore : tlb::Access::kCapLoad;
    else
        access = is_store ? tlb::Access::kStore : tlb::Access::kLoad;

    Translation result = translate(vaddr, access);
    if (!result.ok()) {
        switch (result.fault) {
          case tlb::TlbFault::kNoMapping:
          case tlb::TlbFault::kNotReadable:
            raise(is_store ? ExcCode::kTlbStore : ExcCode::kTlbLoad,
                  vaddr);
            break;
          case tlb::TlbFault::kNotWritable:
            raise(ExcCode::kTlbModified, vaddr);
            break;
          case tlb::TlbFault::kCapLoadDenied:
            raiseCap(CapCause::kTlbNoLoadCap,
                     static_cast<std::uint8_t>(cap_index), vaddr);
            break;
          case tlb::TlbFault::kCapStoreDenied:
            raiseCap(CapCause::kTlbNoStoreCap,
                     static_cast<std::uint8_t>(cap_index), vaddr);
            break;
          default:
            raise(ExcCode::kTlbLoad, vaddr);
            break;
        }
        return false;
    }
    paddr_out = result.paddr;
    return true;
}

RefStep
RefCpu::step()
{
    RefStep outcome;
    trap_pending_ = false;
    lines_written_.clear();
    current_pc_ = pc_;
    in_delay_slot_ = branch_pending_;

    // A control transfer takes effect after its delay slot; the PCC
    // swap of CJR/CJALR activates at the same moment.
    if (pcc_swap_countdown_ > 0 && --pcc_swap_countdown_ == 0)
        caps_.setPcc(pending_pcc_);

    // --- fetch: PCC check, PC alignment, translation, decode ---
    CapCause fetch_cause = cap::checkFetch(caps_.pcc(), pc_);
    if (fetch_cause != CapCause::kNone) {
        raiseCap(fetch_cause, core::kCapRegPcc, pc_);
        outcome.trapped = true;
        outcome.trap = pending_trap_;
        return outcome;
    }
    if (pc_ % 4 != 0) {
        raise(ExcCode::kAddressErrorLoad, pc_);
        outcome.trapped = true;
        outcome.trap = pending_trap_;
        return outcome;
    }
    Translation fetch_tr = translate(pc_, tlb::Access::kFetch);
    if (!fetch_tr.ok()) {
        raise(ExcCode::kTlbLoad, pc_);
        outcome.trapped = true;
        outcome.trap = pending_trap_;
        return outcome;
    }
    std::uint32_t word = static_cast<std::uint32_t>(
        memory_.read(fetch_tr.paddr, 4));
    Instruction inst = isa::decode(word);

    // --- advance control flow (branch targets land in next_pc_) ---
    pc_ = next_pc_;
    next_pc_ = pc_ + 4;
    branch_pending_ = false;

    // --- execute ---
    execute(inst);
    ++instructions_;
    outcome.retired = true;

    if (trap_pending_) {
        outcome.trapped = true;
        outcome.trap = pending_trap_;
        return outcome;
    }
    if (inst.op == Opcode::kBreak)
        outcome.hit_break = true;
    return outcome;
}

void
RefCpu::execute(const Instruction &inst)
{
    std::uint64_t rs = gpr_[inst.rs];
    std::uint64_t rt = gpr_[inst.rt];

    switch (inst.op) {
      // --- shifts ---
      case Opcode::kSll:
        setGpr(inst.rd, sext32(static_cast<std::uint32_t>(rt) << inst.sa));
        break;
      case Opcode::kSrl:
        setGpr(inst.rd, sext32(static_cast<std::uint32_t>(rt) >> inst.sa));
        break;
      case Opcode::kSra:
        setGpr(inst.rd,
               sext32(static_cast<std::uint32_t>(
                   static_cast<std::int32_t>(rt) >> inst.sa)));
        break;
      case Opcode::kSllv:
        setGpr(inst.rd,
               sext32(static_cast<std::uint32_t>(rt) << (rs & 31)));
        break;
      case Opcode::kSrlv:
        setGpr(inst.rd,
               sext32(static_cast<std::uint32_t>(rt) >> (rs & 31)));
        break;
      case Opcode::kSrav:
        setGpr(inst.rd,
               sext32(static_cast<std::uint32_t>(
                   static_cast<std::int32_t>(rt) >>
                   static_cast<int>(rs & 31))));
        break;
      case Opcode::kDsll:
        setGpr(inst.rd, rt << inst.sa);
        break;
      case Opcode::kDsrl:
        setGpr(inst.rd, rt >> inst.sa);
        break;
      case Opcode::kDsra:
        setGpr(inst.rd, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(rt) >> inst.sa));
        break;
      case Opcode::kDsll32:
        setGpr(inst.rd, rt << (inst.sa + 32));
        break;
      case Opcode::kDsrl32:
        setGpr(inst.rd, rt >> (inst.sa + 32));
        break;
      case Opcode::kDsra32:
        setGpr(inst.rd,
               static_cast<std::uint64_t>(static_cast<std::int64_t>(rt) >>
                                          (inst.sa + 32)));
        break;
      case Opcode::kDsllv:
        setGpr(inst.rd, rt << (rs & 63));
        break;
      case Opcode::kDsrlv:
        setGpr(inst.rd, rt >> (rs & 63));
        break;
      case Opcode::kDsrav:
        setGpr(inst.rd,
               static_cast<std::uint64_t>(static_cast<std::int64_t>(rt) >>
                                          static_cast<int>(rs & 63)));
        break;

      // --- ALU register ---
      case Opcode::kAddu:
        setGpr(inst.rd, sext32(rs + rt));
        break;
      case Opcode::kDaddu:
        setGpr(inst.rd, rs + rt);
        break;
      case Opcode::kSubu:
        setGpr(inst.rd, sext32(rs - rt));
        break;
      case Opcode::kDsubu:
        setGpr(inst.rd, rs - rt);
        break;
      case Opcode::kAnd:
        setGpr(inst.rd, rs & rt);
        break;
      case Opcode::kOr:
        setGpr(inst.rd, rs | rt);
        break;
      case Opcode::kXor:
        setGpr(inst.rd, rs ^ rt);
        break;
      case Opcode::kNor:
        setGpr(inst.rd, ~(rs | rt));
        break;
      case Opcode::kSlt:
        setGpr(inst.rd, static_cast<std::int64_t>(rs) <
                                static_cast<std::int64_t>(rt)
                            ? 1
                            : 0);
        break;
      case Opcode::kSltu:
        setGpr(inst.rd, rs < rt ? 1 : 0);
        break;
      case Opcode::kMovz:
        if (rt == 0)
            setGpr(inst.rd, rs);
        break;
      case Opcode::kMovn:
        if (rt != 0)
            setGpr(inst.rd, rs);
        break;
      case Opcode::kDmult: {
        __int128 product = static_cast<__int128>(
                               static_cast<std::int64_t>(rs)) *
                           static_cast<std::int64_t>(rt);
        lo_ = static_cast<std::uint64_t>(product);
        hi_ = static_cast<std::uint64_t>(product >> 64);
        break;
      }
      case Opcode::kDmultu: {
        unsigned __int128 product =
            static_cast<unsigned __int128>(rs) * rt;
        lo_ = static_cast<std::uint64_t>(product);
        hi_ = static_cast<std::uint64_t>(product >> 64);
        break;
      }
      case Opcode::kDdiv:
        if (rt != 0) {
            lo_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(rs) /
                static_cast<std::int64_t>(rt));
            hi_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(rs) %
                static_cast<std::int64_t>(rt));
        }
        break;
      case Opcode::kDdivu:
        if (rt != 0) {
            lo_ = rs / rt;
            hi_ = rs % rt;
        }
        break;
      case Opcode::kMfhi:
        setGpr(inst.rd, hi_);
        break;
      case Opcode::kMflo:
        setGpr(inst.rd, lo_);
        break;

      // --- ALU immediate ---
      case Opcode::kAddiu:
        setGpr(inst.rt, sext32(rs + static_cast<std::uint64_t>(
                                        static_cast<std::int64_t>(
                                            inst.imm))));
        break;
      case Opcode::kDaddiu:
        setGpr(inst.rt,
               rs + static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(inst.imm)));
        break;
      case Opcode::kSlti:
        setGpr(inst.rt, static_cast<std::int64_t>(rs) < inst.imm ? 1 : 0);
        break;
      case Opcode::kSltiu:
        setGpr(inst.rt,
               rs < static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(inst.imm))
                   ? 1
                   : 0);
        break;
      case Opcode::kAndi:
        setGpr(inst.rt, rs & (static_cast<std::uint32_t>(inst.imm) &
                              0xffff));
        break;
      case Opcode::kOri:
        setGpr(inst.rt, rs | (static_cast<std::uint32_t>(inst.imm) &
                              0xffff));
        break;
      case Opcode::kXori:
        setGpr(inst.rt, rs ^ (static_cast<std::uint32_t>(inst.imm) &
                              0xffff));
        break;
      case Opcode::kLui:
        setGpr(inst.rt, signExtend(
                            static_cast<std::uint64_t>(inst.imm & 0xffff)
                                << 16,
                            32));
        break;

      // --- control flow ---
      case Opcode::kJ:
        branchTo(((current_pc_ + 4) & ~0x0fffffffULL) |
                 (static_cast<std::uint64_t>(inst.target) << 2));
        break;
      case Opcode::kJal:
        setGpr(31, current_pc_ + 8);
        branchTo(((current_pc_ + 4) & ~0x0fffffffULL) |
                 (static_cast<std::uint64_t>(inst.target) << 2));
        break;
      case Opcode::kJr:
        branchTo(rs);
        break;
      case Opcode::kJalr:
        setGpr(inst.rd, current_pc_ + 8);
        branchTo(rs);
        break;
      case Opcode::kBeq:
        if (rs == rt)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      case Opcode::kBne:
        if (rs != rt)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      case Opcode::kBlez:
        if (static_cast<std::int64_t>(rs) <= 0)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      case Opcode::kBgtz:
        if (static_cast<std::int64_t>(rs) > 0)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      case Opcode::kBltz:
        if (static_cast<std::int64_t>(rs) < 0)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      case Opcode::kBgez:
        if (static_cast<std::int64_t>(rs) >= 0)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      case Opcode::kSyscall:
        // The reference machine has no OS upcall: SYSCALL always traps,
        // so lockstep programs must not rely on a syscall handler.
        raise(ExcCode::kSyscall);
        break;
      case Opcode::kBreak:
        break;

      // --- memory ---
      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLw:
      case Opcode::kLwu:
      case Opcode::kLd:
      case Opcode::kSb:
      case Opcode::kSh:
      case Opcode::kSw:
      case Opcode::kSd:
      case Opcode::kLld:
      case Opcode::kScd:
        executeMemory(inst);
        break;

      case Opcode::kInvalid:
        raise(ExcCode::kReservedInstruction);
        break;

      default:
        if (!cp2_enabled_) {
            raise(ExcCode::kCoprocessorUnusable);
            break;
        }
        executeCp2(inst);
        break;
    }
}

void
RefCpu::executeMemory(const Instruction &inst)
{
    unsigned size = 1u << isa::accessSizeLog2(inst.op);
    std::uint64_t offset =
        gpr_[inst.rs] +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.imm));
    bool is_store = inst.op == Opcode::kSb || inst.op == Opcode::kSh ||
                    inst.op == Opcode::kSw || inst.op == Opcode::kSd ||
                    inst.op == Opcode::kScd;

    if (inst.op == Opcode::kScd) {
        std::uint64_t paddr = 0;
        if (!checkedDataAccess(0, offset, size, true, false, paddr))
            return;
        if (ll_valid_ && ll_addr_ == paddr) {
            memory_.write(paddr, size, gpr_[inst.rt]);
            noteWrite(paddr);
            setGpr(inst.rt, 1);
        } else {
            setGpr(inst.rt, 0);
        }
        ll_valid_ = false;
        return;
    }

    std::uint64_t paddr = 0;
    if (!checkedDataAccess(0, offset, size, is_store, false, paddr))
        return;

    if (is_store) {
        memory_.write(paddr, size, gpr_[inst.rt]);
        noteWrite(paddr);
        if (ll_valid_ && ll_addr_ == paddr)
            ll_valid_ = false;
        return;
    }

    std::uint64_t value = memory_.read(paddr, size);
    if (!isa::loadIsUnsigned(inst.op) && size < 8)
        value = static_cast<std::uint64_t>(signExtend(value, size * 8));
    setGpr(inst.rt, value);

    if (inst.op == Opcode::kLld) {
        ll_valid_ = true;
        ll_addr_ = paddr;
    }
}

void
RefCpu::executeCapMemory(const Instruction &inst)
{
    std::uint64_t offset =
        gpr_[inst.rt] +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.imm));

    if (inst.op == Opcode::kCLc || inst.op == Opcode::kCSc) {
        bool is_store = inst.op == Opcode::kCSc;
        std::uint64_t paddr = 0;
        if (!checkedDataAccess(inst.cb, offset, mem::kLineBytes,
                               is_store, true, paddr))
            return;
        if (is_store) {
            const cap::Capability &src = caps_.read(inst.cd);
            memory_.writeCapLine(paddr,
                                 mem::TaggedLine{src.raw(), src.tag()});
            noteWrite(paddr);
        } else {
            mem::TaggedLine line = memory_.readCapLine(paddr);
            caps_.write(inst.cd,
                        cap::Capability::fromRaw(line.data, line.tag));
        }
        return;
    }

    unsigned size = 1u << isa::accessSizeLog2(inst.op);
    bool is_store = inst.op == Opcode::kCsb || inst.op == Opcode::kCsh ||
                    inst.op == Opcode::kCsw || inst.op == Opcode::kCsd ||
                    inst.op == Opcode::kCscd;

    if (inst.op == Opcode::kCscd) {
        std::uint64_t paddr = 0;
        if (!checkedDataAccess(inst.cb, offset, size, true, false, paddr))
            return;
        if (ll_valid_ && ll_addr_ == paddr) {
            memory_.write(paddr, size, gpr_[inst.rd]);
            noteWrite(paddr);
            setGpr(inst.rd, 1);
        } else {
            setGpr(inst.rd, 0);
        }
        ll_valid_ = false;
        return;
    }

    std::uint64_t paddr = 0;
    if (!checkedDataAccess(inst.cb, offset, size, is_store, false, paddr))
        return;

    if (is_store) {
        memory_.write(paddr, size, gpr_[inst.rd]);
        noteWrite(paddr);
        if (ll_valid_ && ll_addr_ == paddr)
            ll_valid_ = false;
        return;
    }

    std::uint64_t value = memory_.read(paddr, size);
    if (!isa::loadIsUnsigned(inst.op) && size < 8)
        value = static_cast<std::uint64_t>(signExtend(value, size * 8));
    setGpr(inst.rd, value);

    if (inst.op == Opcode::kClld) {
        ll_valid_ = true;
        ll_addr_ = paddr;
    }
}

void
RefCpu::executeCp2(const Instruction &inst)
{
    if (inst.isCapMemory()) {
        executeCapMemory(inst);
        return;
    }

    switch (inst.op) {
      case Opcode::kCGetBase:
        setGpr(inst.rd, caps_.read(inst.cb).base());
        break;
      case Opcode::kCGetLen:
        setGpr(inst.rd, caps_.read(inst.cb).length());
        break;
      case Opcode::kCGetTag:
        setGpr(inst.rd, caps_.read(inst.cb).tag() ? 1 : 0);
        break;
      case Opcode::kCGetPerm:
        setGpr(inst.rd, caps_.read(inst.cb).perms());
        break;
      case Opcode::kCGetPcc:
        caps_.write(inst.cd, caps_.pcc());
        setGpr(inst.rd, current_pc_);
        break;
      case Opcode::kCIncBase: {
        cap::CapOpResult result =
            cap::incBase(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCSetLen: {
        cap::CapOpResult result =
            cap::setLen(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCClearTag: {
        cap::Capability value = caps_.read(inst.cb);
        value.clearTag();
        caps_.write(inst.cd, value);
        break;
      }
      case Opcode::kCAndPerm: {
        cap::CapOpResult result = cap::andPerm(
            caps_.read(inst.cb),
            static_cast<std::uint32_t>(gpr_[inst.rt]));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCToPtr:
        setGpr(inst.rd,
               cap::toPtr(caps_.read(inst.cb), caps_.read(inst.ct)));
        break;
      case Opcode::kCFromPtr: {
        cap::CapOpResult result =
            cap::fromPtr(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCBtu:
        if (!caps_.read(inst.cb).tag())
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      case Opcode::kCBts:
        if (caps_.read(inst.cb).tag())
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      case Opcode::kCSeal: {
        cap::CapOpResult result =
            cap::seal(caps_.read(inst.cb), caps_.read(inst.ct));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCUnseal: {
        cap::CapOpResult result =
            cap::unseal(caps_.read(inst.cb), caps_.read(inst.ct));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCGetType: {
        const cap::Capability &sealed_cap = caps_.read(inst.cb);
        setGpr(inst.rd, sealed_cap.sealed() ? sealed_cap.otype()
                                            : ~0ULL);
        break;
      }
      case Opcode::kCCall:
        raise(ExcCode::kCCall);
        pending_trap_.cap_reg = inst.cb;
        pending_trap_.cap_reg2 = inst.ct;
        break;
      case Opcode::kCReturn:
        raise(ExcCode::kCReturn);
        break;
      case Opcode::kCJr:
      case Opcode::kCJalr: {
        const cap::Capability &target_cap = caps_.read(inst.cb);
        if (!target_cap.tag()) {
            raiseCap(CapCause::kTagViolation, inst.cb);
            break;
        }
        if (target_cap.sealed()) {
            raiseCap(CapCause::kSealViolation, inst.cb);
            break;
        }
        if (!target_cap.hasPerms(cap::kPermExecute)) {
            raiseCap(CapCause::kPermitExecuteViolation, inst.cb);
            break;
        }
        std::uint64_t target = target_cap.base() + gpr_[inst.rt];
        if (inst.op == Opcode::kCJalr) {
            caps_.write(inst.cd, caps_.pcc());
            setGpr(31, current_pc_ + 8 - caps_.pcc().base());
        }
        pending_pcc_ = target_cap;
        pcc_swap_countdown_ = 2;
        branchTo(target);
        break;
      }
      default:
        raise(ExcCode::kReservedInstruction);
        break;
    }
}

} // namespace cheri::check
