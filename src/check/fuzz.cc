#include "check/fuzz.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "cap/perms.h"
#include "core/machine.h"
#include "isa/assembler.h"
#include "isa/decoder.h"
#include "isa/disasm.h"
#include "support/logging.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "tlb/page_table.h"

namespace cheri::check
{

namespace
{

using isa::Assembler;
using Kind = FuzzOp::Kind;

/** Integer registers the fuzzer reads and writes freely. t8 is the
 *  address-staging register and is excluded; ra is clobbered only by
 *  the (trapping) jump ops. */
constexpr unsigned kDataRegs[] = {2,  3,  4,  5,  6,  7,  8, 9,
                                  10, 11, 12, 13, 14, 15, 25};
constexpr unsigned kNumDataRegs =
    sizeof(kDataRegs) / sizeof(kDataRegs[0]);
constexpr unsigned kAddrReg = 24; // t8

unsigned
dataReg(std::uint64_t index)
{
    return kDataRegs[index % kNumDataRegs];
}

/** Capability registers the preamble establishes (see fuzz.h). */
constexpr unsigned kCapArena = 1;     ///< rw over the whole arena
constexpr unsigned kCapSub = 2;       ///< 0x100-byte sub-range
constexpr unsigned kCapSealed = 3;    ///< sealed copy of c2
constexpr unsigned kCapSealAuth = 4;  ///< seal authority, otype 0x42
constexpr unsigned kCapUntagged = 5;  ///< untagged copy of c1
constexpr unsigned kCapLoadOnly = 6;  ///< c1 minus store perms
constexpr unsigned kCapRestricted = 13; ///< covers no-cap + ro pages
constexpr unsigned kCapStride = 14;   ///< covers the stride region
constexpr unsigned kCapScratchFirst = 7; ///< c7..c12 derive targets
constexpr unsigned kCapScratchCount = 6;

constexpr std::uint64_t kSubLen = 0x100;
constexpr std::uint64_t kRestrictedLen = 0x2000;

std::uint64_t
capLength(unsigned cap)
{
    switch (cap) {
      case kCapSub:
        return kSubLen;
      case kCapRestricted:
        return kRestrictedLen;
      case kCapStride:
        return kFuzzStrideLen;
      default:
        return kFuzzArenaLen;
    }
}

/** Boundary-biased in/out-of-bounds offset for a 'size'-byte access
 *  through a capability of length 'len'. */
std::uint64_t
biasedOffset(support::Xoshiro256 &rng, std::uint64_t len, unsigned size)
{
    std::uint64_t aligned_max = (len - size) & ~(std::uint64_t(size) - 1);
    switch (rng.nextBelow(10)) {
      case 0:
        return 0; // first byte
      case 1:
        return aligned_max; // last in-bounds slot
      case 2:
        return len; // one past the end: kLengthViolation
      case 3:
        return len * 2 + rng.nextBelow(64); // far out of bounds
      default:
        return rng.nextBelow(aligned_max / size + 1) * size;
    }
}

} // namespace

FuzzSpec
generateSpec(std::uint64_t seed)
{
    support::Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 0xc4ec4);
    FuzzSpec spec;
    spec.seed = seed;
    for (auto &value : spec.reg_seed)
        value = rng.next();

    unsigned count = 24 + static_cast<unsigned>(rng.nextBelow(25));
    spec.ops.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        FuzzOp op;
        // Weighted kind draw; memory and capability ops dominate.
        static const std::pair<Kind, unsigned> kWeights[] = {
            {Kind::kAluImm, 8},       {Kind::kAluReg, 8},
            {Kind::kShift, 5},        {Kind::kMulDiv, 3},
            {Kind::kLegacyLoad, 7},   {Kind::kLegacyStore, 7},
            {Kind::kCapLoad, 10},     {Kind::kCapStore, 10},
            {Kind::kCapLoadCap, 6},   {Kind::kCapStoreCap, 8},
            {Kind::kTagClearStore, 8},{Kind::kDerive, 8},
            {Kind::kPermQuery, 4},    {Kind::kSealUnseal, 4},
            {Kind::kBranch, 5},       {Kind::kCapBranch, 4},
            {Kind::kCapJumpTrap, 2},  {Kind::kLlSc, 5},
            {Kind::kTlbStride, 4},    {Kind::kPtrRoundTrip, 6},
        };
        unsigned total = 0;
        for (const auto &entry : kWeights)
            total += entry.second;
        std::uint64_t pick = rng.nextBelow(total);
        for (const auto &entry : kWeights) {
            if (pick < entry.second) {
                op.kind = entry.first;
                break;
            }
            pick -= entry.second;
        }

        switch (op.kind) {
          case Kind::kAluImm:
            op.a = rng.next(); // dst
            op.b = rng.next(); // src
            op.c = rng.nextBelow(6);
            op.d = static_cast<std::uint64_t>(
                static_cast<std::int16_t>(rng.next()));
            break;
          case Kind::kAluReg:
            op.a = rng.next();
            op.b = rng.next();
            op.c = rng.next();
            op.d = rng.nextBelow(12);
            break;
          case Kind::kShift:
            op.a = rng.next();
            op.b = rng.next();
            op.c = rng.nextBelow(32);
            op.d = rng.nextBelow(8);
            break;
          case Kind::kMulDiv:
            op.a = rng.next();
            op.b = rng.next();
            op.c = rng.nextBelow(4);
            op.d = rng.next(); // mflo/mfhi destinations
            break;
          case Kind::kLegacyLoad: {
            op.a = rng.next(); // dst
            op.c = rng.nextBelow(7); // lb..ld
            unsigned size = 1u << (op.c >= 6 ? 3
                                   : op.c >= 4 ? 2
                                   : op.c >= 2 ? 1
                                                : 0);
            std::uint64_t offset =
                rng.nextBelow(kFuzzArenaLen / size) * size;
            op.b = kFuzzArenaBase + offset;
            if (size > 1 && rng.nextBool(0.05))
                op.b += 1 + rng.nextBelow(size - 1); // AddressError
            break;
          }
          case Kind::kLegacyStore: {
            op.a = rng.next(); // src
            op.c = rng.nextBelow(4); // sb..sd
            unsigned size = 1u << op.c;
            std::uint64_t offset =
                rng.nextBelow(kFuzzArenaLen / size) * size;
            op.b = kFuzzArenaBase + offset;
            if (rng.nextBool(0.04))
                op.b = kFuzzRoPage + rng.nextBelow(4096 / size) * size;
            else if (size > 1 && rng.nextBool(0.05))
                op.b += 1 + rng.nextBelow(size - 1);
            break;
          }
          case Kind::kCapLoad: {
            op.a = rng.next();
            static const unsigned caps[] = {
                kCapArena, kCapArena, kCapSub,     kCapSub,
                kCapLoadOnly, kCapUntagged, kCapSealed, kCapStride};
            op.b = caps[rng.nextBelow(8)];
            op.c = rng.nextBelow(7);
            unsigned size = 1u << (op.c >= 6 ? 3
                                   : op.c >= 4 ? 2
                                   : op.c >= 2 ? 1
                                                : 0);
            op.d = biasedOffset(rng, capLength(op.b), size);
            break;
          }
          case Kind::kCapStore: {
            op.a = rng.next();
            static const unsigned caps[] = {
                kCapArena, kCapArena, kCapArena, kCapSub,
                kCapSub,   kCapLoadOnly, kCapUntagged, kCapStride};
            op.b = caps[rng.nextBelow(8)];
            op.c = rng.nextBelow(4);
            unsigned size = 1u << op.c;
            op.d = biasedOffset(rng, capLength(op.b), size);
            break;
          }
          case Kind::kCapLoadCap: {
            op.a = kCapScratchFirst + rng.nextBelow(kCapScratchCount);
            static const unsigned caps[] = {kCapArena, kCapArena,
                                            kCapArena, kCapSub,
                                            kCapRestricted};
            op.b = caps[rng.nextBelow(5)];
            op.d = biasedOffset(rng, capLength(op.b), 32);
            if (rng.nextBool(0.05))
                op.d += 8; // kAlignmentViolation
            break;
          }
          case Kind::kCapStoreCap: {
            static const unsigned srcs[] = {kCapSub, kCapSub,
                                            kCapUntagged, kCapSealed,
                                            kCapScratchFirst};
            op.a = srcs[rng.nextBelow(5)];
            static const unsigned caps[] = {kCapArena, kCapArena,
                                            kCapArena, kCapSub,
                                            kCapRestricted};
            op.b = caps[rng.nextBelow(5)];
            op.d = biasedOffset(rng, capLength(op.b), 32);
            break;
          }
          case Kind::kTagClearStore: {
            op.a = rng.next(); // value register
            op.c = rng.nextBelow(4); // sb..sd
            unsigned size = 1u << op.c;
            // Aim at the first few arena lines: line 0 holds the
            // capability the preamble stored; CSC ops salt others.
            std::uint64_t line = rng.nextBelow(8) * mem::kLineBytes;
            std::uint64_t within =
                rng.nextBelow(mem::kLineBytes / size) * size;
            op.b = kFuzzArenaBase + line + within;
            op.d = line; // CLC readback offset
            break;
          }
          case Kind::kDerive: {
            op.a = kCapScratchFirst + rng.nextBelow(kCapScratchCount);
            static const unsigned srcs[] = {kCapArena, kCapArena,
                                            kCapSub, kCapScratchFirst,
                                            kCapUntagged};
            op.b = srcs[rng.nextBelow(5)];
            op.c = rng.nextBelow(6);
            std::uint64_t len = capLength(static_cast<unsigned>(op.b));
            switch (op.c) {
              case 0: // cincbase: delta at/over the limit sometimes
                switch (rng.nextBelow(5)) {
                  case 0:
                    op.d = 0;
                    break;
                  case 1:
                    op.d = len; // shrinks to length 0 (legal)
                    break;
                  case 2:
                    op.d = len + 1 + rng.nextBelow(16); // fault
                    break;
                  default:
                    op.d = rng.nextBelow(len);
                    break;
                }
                break;
              case 1: // csetlen: growth faults
                switch (rng.nextBelow(5)) {
                  case 0:
                    op.d = 0;
                    break;
                  case 1:
                    op.d = len; // exactly current length (legal)
                    break;
                  case 2:
                    op.d = len + 1 + rng.nextBelow(16); // fault
                    break;
                  default:
                    op.d = rng.nextBelow(len);
                    break;
                }
                break;
              case 2: // candperm
                op.d = rng.next() & cap::kPermMask;
                break;
              case 3: // cfromptr
                op.d = rng.nextBool(0.2) ? 0 : rng.nextBelow(len);
                break;
              default: // ccleartag / ctoptr need no value
                op.d = rng.next();
                break;
            }
            break;
          }
          case Kind::kPermQuery:
            op.a = rng.next();
            op.b = rng.nextBelow(15); // any established cap
            op.c = rng.nextBelow(6);
            break;
          case Kind::kSealUnseal:
            op.c = rng.nextBelow(5);
            break;
          case Kind::kBranch:
            op.a = rng.nextBelow(6);
            op.b = rng.next();
            op.c = rng.next();
            op.d = 1 + rng.nextBelow(3);
            break;
          case Kind::kCapBranch: {
            op.a = rng.nextBelow(2);
            static const unsigned caps[] = {kCapUntagged, kCapSub,
                                            kCapSealed,
                                            kCapScratchFirst};
            op.b = caps[rng.nextBelow(4)];
            op.d = 1 + rng.nextBelow(3);
            break;
          }
          case Kind::kCapJumpTrap: {
            static const unsigned caps[] = {kCapUntagged, kCapSealed,
                                            kCapLoadOnly};
            op.b = caps[rng.nextBelow(3)];
            break;
          }
          case Kind::kLlSc:
            op.a = rng.next(); // store-value register
            op.b = kFuzzArenaBase +
                   rng.nextBelow(kFuzzArenaLen / 8) * 8;
            op.c = rng.nextBelow(4);
            break;
          case Kind::kTlbStride: {
            op.a = rng.next(); // destination register
            op.c = tlb::kPageBytes * (1 + rng.nextBelow(4));
            op.b = kFuzzStrideBase +
                   rng.nextBelow(kFuzzStrideLen / 8) * 8;
            op.d = 2 + rng.nextBelow(3); // accesses
            // Keep every access mapped unless the rare fault case.
            if (rng.nextBool(0.05))
                op.b = kFuzzUnmapped + rng.nextBelow(512) * 8;
            else if (op.b + (op.d - 1) * op.c >=
                     kFuzzStrideBase + kFuzzStrideLen)
                op.b = kFuzzStrideBase;
            break;
          }
          case Kind::kPtrRoundTrip: {
            op.a = kCapScratchFirst + rng.nextBelow(kCapScratchCount);
            static const unsigned srcs[] = {kCapArena, kCapSub,
                                            kCapSub, kCapUntagged,
                                            kCapScratchFirst};
            op.b = srcs[rng.nextBelow(5)];
            // 0/1: remint + tag/base query; 2: poison with ccleartag
            // first; 3: dereference the reminted capability (traps
            // on the NULL round-trip of an untagged source).
            op.c = rng.nextBelow(4);
            op.d = rng.next(); // data-register selector
            break;
          }
        }
        spec.ops.push_back(op);
    }
    return spec;
}

namespace
{

/** Pending forward-branch label: bind after 'remaining' more ops. */
struct PendingLabel
{
    Assembler::Label label;
    unsigned remaining;
};

void
emitOp(Assembler &a, const FuzzOp &op,
       std::vector<PendingLabel> &pending)
{
    switch (op.kind) {
      case Kind::kAluImm: {
        unsigned dst = dataReg(op.a), src = dataReg(op.b);
        auto imm = static_cast<std::int32_t>(
            static_cast<std::int16_t>(op.d));
        switch (op.c) {
          case 0: a.daddiu(dst, src, imm); break;
          case 1: a.addiu(dst, src, imm); break;
          case 2: a.ori(dst, src, static_cast<std::uint16_t>(op.d)); break;
          case 3: a.xori(dst, src, static_cast<std::uint16_t>(op.d)); break;
          case 4: a.andi(dst, src, static_cast<std::uint16_t>(op.d)); break;
          default: a.slti(dst, src, imm); break;
        }
        break;
      }
      case Kind::kAluReg: {
        unsigned dst = dataReg(op.a), s1 = dataReg(op.b),
                 s2 = dataReg(op.c);
        switch (op.d) {
          case 0: a.daddu(dst, s1, s2); break;
          case 1: a.dsubu(dst, s1, s2); break;
          case 2: a.addu(dst, s1, s2); break;
          case 3: a.subu(dst, s1, s2); break;
          case 4: a.and_(dst, s1, s2); break;
          case 5: a.or_(dst, s1, s2); break;
          case 6: a.xor_(dst, s1, s2); break;
          case 7: a.nor(dst, s1, s2); break;
          case 8: a.slt(dst, s1, s2); break;
          case 9: a.sltu(dst, s1, s2); break;
          case 10: a.movz(dst, s1, s2); break;
          default: a.movn(dst, s1, s2); break;
        }
        break;
      }
      case Kind::kShift: {
        unsigned dst = dataReg(op.a), src = dataReg(op.b);
        unsigned sa = static_cast<unsigned>(op.c);
        switch (op.d) {
          case 0: a.sll(dst, src, sa); break;
          case 1: a.srl(dst, src, sa); break;
          case 2: a.sra(dst, src, sa); break;
          case 3: a.dsll(dst, src, sa); break;
          case 4: a.dsrl(dst, src, sa); break;
          case 5: a.dsra(dst, src, sa); break;
          case 6: a.dsll32(dst, src, sa); break;
          default: a.dsrl32(dst, src, sa); break;
        }
        break;
      }
      case Kind::kMulDiv: {
        unsigned s1 = dataReg(op.a), s2 = dataReg(op.b);
        switch (op.c) {
          case 0: a.dmult(s1, s2); break;
          case 1: a.dmultu(s1, s2); break;
          case 2: a.ddiv(s1, s2); break;
          default: a.ddivu(s1, s2); break;
        }
        a.mflo(dataReg(op.d));
        a.mfhi(dataReg(op.d + 1));
        break;
      }
      case Kind::kLegacyLoad: {
        unsigned dst = dataReg(op.a);
        a.li64(kAddrReg, op.b);
        switch (op.c) {
          case 0: a.lb(dst, kAddrReg, 0); break;
          case 1: a.lbu(dst, kAddrReg, 0); break;
          case 2: a.lh(dst, kAddrReg, 0); break;
          case 3: a.lhu(dst, kAddrReg, 0); break;
          case 4: a.lw(dst, kAddrReg, 0); break;
          case 5: a.lwu(dst, kAddrReg, 0); break;
          default: a.ld(dst, kAddrReg, 0); break;
        }
        break;
      }
      case Kind::kLegacyStore: {
        unsigned src = dataReg(op.a);
        a.li64(kAddrReg, op.b);
        switch (op.c) {
          case 0: a.sb(src, kAddrReg, 0); break;
          case 1: a.sh(src, kAddrReg, 0); break;
          case 2: a.sw(src, kAddrReg, 0); break;
          default: a.sd(src, kAddrReg, 0); break;
        }
        break;
      }
      case Kind::kCapLoad: {
        unsigned dst = dataReg(op.a);
        unsigned cb = static_cast<unsigned>(op.b);
        a.li64(kAddrReg, op.d);
        switch (op.c) {
          case 0: a.clb(dst, cb, kAddrReg, 0); break;
          case 1: a.clbu(dst, cb, kAddrReg, 0); break;
          case 2: a.clh(dst, cb, kAddrReg, 0); break;
          case 3: a.clhu(dst, cb, kAddrReg, 0); break;
          case 4: a.clw(dst, cb, kAddrReg, 0); break;
          case 5: a.clwu(dst, cb, kAddrReg, 0); break;
          default: a.cld(dst, cb, kAddrReg, 0); break;
        }
        break;
      }
      case Kind::kCapStore: {
        unsigned src = dataReg(op.a);
        unsigned cb = static_cast<unsigned>(op.b);
        a.li64(kAddrReg, op.d);
        switch (op.c) {
          case 0: a.csb(src, cb, kAddrReg, 0); break;
          case 1: a.csh(src, cb, kAddrReg, 0); break;
          case 2: a.csw(src, cb, kAddrReg, 0); break;
          default: a.csd(src, cb, kAddrReg, 0); break;
        }
        break;
      }
      case Kind::kCapLoadCap:
        a.li64(kAddrReg, op.d);
        a.clc(static_cast<unsigned>(op.a),
              static_cast<unsigned>(op.b), kAddrReg, 0);
        break;
      case Kind::kCapStoreCap:
        a.li64(kAddrReg, op.d);
        a.csc(static_cast<unsigned>(op.a),
              static_cast<unsigned>(op.b), kAddrReg, 0);
        break;
      case Kind::kTagClearStore: {
        unsigned src = dataReg(op.a);
        a.li64(kAddrReg, op.b);
        switch (op.c) {
          case 0: a.sb(src, kAddrReg, 0); break;
          case 1: a.sh(src, kAddrReg, 0); break;
          case 2: a.sw(src, kAddrReg, 0); break;
          default: a.sd(src, kAddrReg, 0); break;
        }
        // Read the line back as a capability: the cleared tag must be
        // observed identically by both machines.
        a.li64(kAddrReg, op.d);
        a.clc(kCapScratchFirst + kCapScratchCount - 1, kCapArena,
              kAddrReg, 0);
        break;
      }
      case Kind::kDerive: {
        unsigned cd = static_cast<unsigned>(op.a);
        unsigned cb = static_cast<unsigned>(op.b);
        switch (op.c) {
          case 0:
            a.li64(kAddrReg, op.d);
            a.cincbase(cd, cb, kAddrReg);
            break;
          case 1:
            a.li64(kAddrReg, op.d);
            a.csetlen(cd, cb, kAddrReg);
            break;
          case 2:
            a.li64(kAddrReg, op.d);
            a.candperm(cd, cb, kAddrReg);
            break;
          case 3:
            a.li64(kAddrReg, op.d);
            a.cfromptr(cd, cb, kAddrReg);
            break;
          case 4:
            a.ccleartag(cd, cb);
            break;
          default:
            a.ctoptr(dataReg(op.d), cb, 0);
            break;
        }
        break;
      }
      case Kind::kPermQuery: {
        unsigned dst = dataReg(op.a);
        unsigned cb = static_cast<unsigned>(op.b);
        switch (op.c) {
          case 0: a.cgetbase(dst, cb); break;
          case 1: a.cgetlen(dst, cb); break;
          case 2: a.cgettag(dst, cb); break;
          case 3: a.cgetperm(dst, cb); break;
          case 4: a.cgettype(dst, cb); break;
          default:
            a.cgetpcc(kCapScratchFirst + kCapScratchCount - 2, dst);
            break;
        }
        break;
      }
      case Kind::kSealUnseal:
        switch (op.c) {
          case 0: // valid seal
            a.cseal(kCapScratchFirst, kCapSub, kCapSealAuth);
            break;
          case 1: // authority without a matching otype range
            a.cseal(kCapScratchFirst, kCapSub, kCapSub);
            break;
          case 2: // valid unseal of the preamble's sealed cap
            a.cunseal(kCapScratchFirst + 1, kCapSealed, kCapSealAuth);
            break;
          case 3: // unseal of an unsealed cap: faults
            a.cunseal(kCapScratchFirst + 1, kCapSub, kCapSealAuth);
            break;
          default: // seal through an untagged source: faults
            a.cseal(kCapScratchFirst, kCapUntagged, kCapSealAuth);
            break;
        }
        break;
      case Kind::kBranch: {
        Assembler::Label label = a.newLabel();
        unsigned rs = dataReg(op.b), rt = dataReg(op.c);
        switch (op.a) {
          case 0: a.beq(rs, rt, label); break;
          case 1: a.bne(rs, rt, label); break;
          case 2: a.blez(rs, label); break;
          case 3: a.bgtz(rs, label); break;
          case 4: a.bltz(rs, label); break;
          default: a.bgez(rs, label); break;
        }
        a.nop(); // delay slot
        pending.push_back({label, static_cast<unsigned>(op.d)});
        break;
      }
      case Kind::kCapBranch: {
        Assembler::Label label = a.newLabel();
        unsigned cb = static_cast<unsigned>(op.b);
        if (op.a == 0)
            a.cbtu(cb, label);
        else
            a.cbts(cb, label);
        a.nop();
        pending.push_back({label, static_cast<unsigned>(op.d)});
        break;
      }
      case Kind::kCapJumpTrap:
        a.cjr(static_cast<unsigned>(op.b), isa::reg::zero);
        a.nop();
        break;
      case Kind::kLlSc: {
        unsigned val = dataReg(op.a);
        unsigned val2 = dataReg(op.a + 1);
        a.li64(kAddrReg, op.b);
        switch (op.c) {
          case 0: // reservation held: SC succeeds
            a.lld(val2, kAddrReg, 0);
            a.scd(val, kAddrReg, 0);
            break;
          case 1: // intervening store to the same address: SC fails
            a.lld(val2, kAddrReg, 0);
            a.sd(val2, kAddrReg, 0);
            a.scd(val, kAddrReg, 0);
            break;
          case 2: { // store elsewhere: reservation survives
            a.lld(val2, kAddrReg, 0);
            bool at_end =
                op.b + 8 >= kFuzzArenaBase + kFuzzArenaLen;
            a.sd(val2, kAddrReg, at_end ? -8 : 8);
            a.scd(val, kAddrReg, 0);
            break;
          }
          default: // capability-relative LL/SC pair
            a.li64(kAddrReg, op.b - kFuzzArenaBase);
            a.clld(val2, kCapArena, kAddrReg);
            a.cscd(val, kCapArena, kAddrReg);
            break;
        }
        break;
      }
      case Kind::kTlbStride: {
        unsigned dst = dataReg(op.a);
        for (std::uint64_t i = 0; i < op.d; ++i) {
            a.li64(kAddrReg, op.b + i * op.c);
            a.ld(dst, kAddrReg, 0);
        }
        break;
      }
      case Kind::kPtrRoundTrip: {
        unsigned cd = static_cast<unsigned>(op.a);
        unsigned cb = static_cast<unsigned>(op.b);
        unsigned ptr = dataReg(op.d);
        // The managed-runtime interop idiom: a capability collapses
        // to its integer offset within the arena authority (0 for an
        // untagged source — the NULL convention), is reminted through
        // the authority, and is then either poisoned, queried, or
        // dereferenced. Both machines must agree on the tag at every
        // step.
        a.ctoptr(ptr, cb, kCapArena);
        a.cfromptr(cd, kCapArena, ptr);
        if (op.c == 2)
            a.ccleartag(cd, cd);
        if (op.c == 3) {
            a.li64(kAddrReg, 0);
            a.clc(cd, cd, kAddrReg, 0);
        } else {
            a.cgettag(dataReg(op.d + 1), cd);
            a.cgetbase(dataReg(op.d + 2), cd);
        }
        break;
      }
    }
}

} // namespace

std::vector<std::uint32_t>
assembleFuzzProgram(const FuzzSpec &spec)
{
    Assembler a(kFuzzCodeBase);

    // --- preamble: derive the capability cast ---
    a.li64(kAddrReg, kFuzzArenaBase);
    a.cincbase(kCapArena, 0, kAddrReg);
    a.li64(kAddrReg, kFuzzArenaLen);
    a.csetlen(kCapArena, kCapArena, kAddrReg);

    a.li64(kAddrReg, 0x40);
    a.cincbase(kCapSub, kCapArena, kAddrReg);
    a.li64(kAddrReg, kSubLen);
    a.csetlen(kCapSub, kCapSub, kAddrReg);

    a.li64(kAddrReg, 0x42); // the object type
    a.cincbase(kCapSealAuth, 0, kAddrReg);
    a.li64(kAddrReg, 0x10);
    a.csetlen(kCapSealAuth, kCapSealAuth, kAddrReg);

    a.cseal(kCapSealed, kCapSub, kCapSealAuth);
    a.ccleartag(kCapUntagged, kCapArena);

    a.li64(kAddrReg, cap::kPermLoad | cap::kPermLoadCap);
    a.candperm(kCapLoadOnly, kCapArena, kAddrReg);

    a.li64(kAddrReg, kFuzzNoCapPage);
    a.cincbase(kCapRestricted, 0, kAddrReg);
    a.li64(kAddrReg, kRestrictedLen);
    a.csetlen(kCapRestricted, kCapRestricted, kAddrReg);

    a.li64(kAddrReg, kFuzzStrideBase);
    a.cincbase(kCapStride, 0, kAddrReg);
    a.li64(kAddrReg, kFuzzStrideLen);
    a.csetlen(kCapStride, kCapStride, kAddrReg);

    // Plant a tagged capability at arena line 0 for tag-clear targets.
    a.li64(kAddrReg, 0);
    a.csc(kCapSub, kCapArena, kAddrReg, 0);

    // Seed the data registers.
    for (unsigned i = 0; i < spec.reg_seed.size(); ++i)
        a.li64(isa::reg::t0 + i, spec.reg_seed[i]);

    // --- body ---
    std::vector<PendingLabel> pending;
    for (const FuzzOp &op : spec.ops) {
        emitOp(a, op, pending);
        for (auto it = pending.begin(); it != pending.end();) {
            if (--it->remaining == 0) {
                a.bind(it->label);
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const PendingLabel &entry : pending)
        a.bind(entry.label);

    a.break_();
    return a.finish();
}

core::MachineConfig
fuzzMachineConfig()
{
    core::MachineConfig config;
    config.dram_bytes = 4 * 1024 * 1024;
    return config;
}

FuzzRunResult
runFuzzWords(const std::vector<std::uint32_t> &words,
             bool suppress_tag_clear,
             std::uint64_t max_instructions,
             DataFastPathMode data_mode, SuperblockMode sb_mode,
             core::Machine *fork_parent,
             cache::PrefetchConfig prefetch)
{
    FuzzRunResult result;
    for (bool fast : {true, false}) {
        // A fork of a pristine parent is simulated-state-identical
        // to a fresh machine, just without the 4 MB allocation; the
        // pass then COW-faults only the pages it actually touches.
        // A fork parent must already carry the requested prefetch
        // config (runFuzzSeeds builds its parents that way).
        core::MachineConfig fresh_config = fuzzMachineConfig();
        fresh_config.caches.prefetch = prefetch;
        std::unique_ptr<core::Machine> owned =
            fork_parent
                ? fork_parent->fork()
                : std::make_unique<core::Machine>(fresh_config);
        core::Machine &machine = *owned;
        machine.loadProgram(kFuzzCodeBase, words);
        machine.mapRange(kFuzzArenaBase, kFuzzArenaLen);
        tlb::PteFlags nocap;
        nocap.cap_load = false;
        nocap.cap_store = false;
        machine.mapRange(kFuzzNoCapPage, tlb::kPageBytes, nocap);
        tlb::PteFlags ro;
        ro.writable = false;
        ro.cap_store = false;
        machine.mapRange(kFuzzRoPage, tlb::kPageBytes, ro);
        machine.mapRange(kFuzzStrideBase, kFuzzStrideLen);
        machine.reset(kFuzzCodeBase);
        machine.cpu().setDecodeCacheEnabled(fast);
        bool data_fast = data_mode == DataFastPathMode::kForceOn ||
                         (data_mode == DataFastPathMode::kFollow && fast);
        machine.cpu().setDataFastPathEnabled(data_fast);
        bool sb = sb_mode == SuperblockMode::kForceOn ||
                  (sb_mode == SuperblockMode::kFollow && fast);
        machine.cpu().setSuperblocksEnabled(sb);
        machine.memory().setStoreTagClearSuppressed(suppress_tag_clear);

        LockstepConfig lockstep_config;
        lockstep_config.max_instructions = max_instructions;
        Lockstep lockstep(machine, lockstep_config);
        LockstepResult run = lockstep.run();
        if (run.diverged) {
            result.diverged = true;
            result.fast_path = fast;
            result.divergence = run.divergence;
            return result;
        }
    }
    return result;
}

std::vector<FuzzOp>
shrinkOps(const FuzzSpec &spec, bool suppress_tag_clear,
          std::uint64_t max_instructions, DataFastPathMode data_mode,
          SuperblockMode sb_mode, core::Machine *fork_parent,
          cache::PrefetchConfig prefetch)
{
    auto diverges = [&](const std::vector<FuzzOp> &ops) {
        FuzzSpec candidate = spec;
        candidate.ops = ops;
        return runFuzzWords(assembleFuzzProgram(candidate),
                            suppress_tag_clear, max_instructions,
                            data_mode, sb_mode, fork_parent, prefetch)
            .diverged;
    };

    std::vector<FuzzOp> current = spec.ops;
    std::size_t chunk = current.size();
    while (chunk >= 1) {
        bool removed = false;
        for (std::size_t start = 0;
             start < current.size() && !current.empty();
             /* advanced below */) {
            std::vector<FuzzOp> candidate;
            candidate.reserve(current.size());
            for (std::size_t i = 0; i < current.size(); ++i) {
                if (i < start || i >= start + chunk)
                    candidate.push_back(current[i]);
            }
            if (candidate.size() < current.size() &&
                diverges(candidate)) {
                current = std::move(candidate);
                removed = true;
                // Retry the same start: the next chunk shifted in.
            } else {
                start += chunk;
            }
        }
        if (chunk == 1 && !removed)
            break;
        chunk = chunk > 1 ? (chunk + 1) / 2 : 1;
        if (chunk == 1 && current.empty())
            break;
    }
    return current;
}

std::string
dumpReproducer(const std::vector<std::uint32_t> &words,
               std::uint64_t seed, const std::string &divergence)
{
    std::string out;
    out += "# cheri_fuzz reproducer (load at 0x10000, run to break)\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "# seed: %llu\n",
                  static_cast<unsigned long long>(seed));
    out += buf;
    out += "# divergence:\n";
    std::string line;
    for (char ch : divergence) {
        if (ch == '\n') {
            out += "#   " + line + "\n";
            line.clear();
        } else {
            line += ch;
        }
    }
    if (!line.empty())
        out += "#   " + line + "\n";
    for (std::size_t i = 0; i < words.size(); ++i) {
        std::uint64_t addr = kFuzzCodeBase + i * 4;
        isa::Instruction inst = isa::decode(words[i]);
        std::snprintf(buf, sizeof buf, ".word 0x%08x", words[i]);
        out += buf;
        std::snprintf(buf, sizeof buf, "  # 0x%llx: ",
                      static_cast<unsigned long long>(addr));
        out += buf;
        out += isa::disassemble(inst);
        out += "\n";
    }
    return out;
}

namespace
{

/** Generate, run, and (on divergence) shrink one seed; returns the
 *  exact text the CLI prints for it. Pure function of (config, seed) —
 *  the whole Machine/RefCpu pair lives on this call's stack (or is a
 *  COW fork of the worker's private pristine parent), so seeds can
 *  run on any worker thread in any order. */
FuzzSeedOutcome
runOneSeed(const FuzzCampaignConfig &config, std::uint64_t seed,
           core::Machine *fork_parent)
{
    FuzzSeedOutcome outcome;
    outcome.seed = seed;

    FuzzSpec spec = generateSpec(seed);
    std::vector<std::uint32_t> words = assembleFuzzProgram(spec);
    FuzzRunResult result =
        runFuzzWords(words, config.suppress_tag_clear,
                     config.max_instructions, config.data_mode,
                     config.sb_mode, fork_parent, config.prefetch);
    if (!result.diverged) {
        if (!config.quiet)
            outcome.text = support::format(
                "seed %llu: ok (%zu ops, %zu words)\n",
                static_cast<unsigned long long>(seed), spec.ops.size(),
                words.size());
        return outcome;
    }

    outcome.diverged = true;
    outcome.text = support::format(
        "seed %llu: DIVERGENCE (fast path %s)\n%s\n",
        static_cast<unsigned long long>(seed),
        result.fast_path ? "on" : "off", result.divergence.c_str());
    if (config.shrink) {
        FuzzSpec small = spec;
        small.ops = shrinkOps(spec, config.suppress_tag_clear,
                              config.max_instructions,
                              config.data_mode, config.sb_mode,
                              fork_parent, config.prefetch);
        std::vector<std::uint32_t> small_words =
            assembleFuzzProgram(small);
        FuzzRunResult small_result =
            runFuzzWords(small_words, config.suppress_tag_clear,
                         config.max_instructions, config.data_mode,
                         config.sb_mode, fork_parent, config.prefetch);
        outcome.text +=
            support::format("shrunk %zu ops -> %zu ops\n",
                            spec.ops.size(), small.ops.size());
        outcome.text += dumpReproducer(
            small_words, seed,
            small_result.diverged ? small_result.divergence
                                  : result.divergence);
    } else {
        outcome.text += dumpReproducer(words, seed, result.divergence);
    }
    return outcome;
}

} // namespace

std::string
FuzzCampaignResult::summaryLine() const
{
    return support::format(
        "cheri-fuzz: %llu/%llu seed(s) diverged\n",
        static_cast<unsigned long long>(diverged_count),
        static_cast<unsigned long long>(outcomes.size()));
}

std::string
FuzzCampaignResult::text() const
{
    std::string out;
    for (const FuzzSeedOutcome &outcome : outcomes)
        out += outcome.text;
    out += summaryLine();
    return out;
}

FuzzCampaignResult
runFuzzSeeds(const FuzzCampaignConfig &config)
{
    FuzzCampaignResult result;
    unsigned jobs = support::normalizeJobs(config.jobs);
    // Fork mode: each worker lazily builds one pristine parent and
    // every pass forks it. Parents are private per worker, so fork
    // construction races cannot occur.
    std::vector<std::unique_ptr<core::Machine>> parents(jobs);
    result.outcomes = support::parallelMapOrdered<FuzzSeedOutcome>(
        static_cast<std::size_t>(config.seeds), jobs,
        [&config, &parents](std::size_t index, unsigned worker) {
            core::Machine *parent = nullptr;
            if (config.fork_machines) {
                if (!parents[worker]) {
                    core::MachineConfig parent_config =
                        fuzzMachineConfig();
                    parent_config.caches.prefetch = config.prefetch;
                    parents[worker] =
                        std::make_unique<core::Machine>(parent_config);
                }
                parent = parents[worker].get();
            }
            return runOneSeed(config, config.start_seed + index,
                              parent);
        });
    for (const FuzzSeedOutcome &outcome : result.outcomes)
        if (outcome.diverged)
            ++result.diverged_count;
    return result;
}

} // namespace cheri::check
