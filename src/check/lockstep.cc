#include "check/lockstep.h"

#include <algorithm>
#include <cstdio>

#include "isa/disasm.h"

namespace cheri::check
{

namespace
{

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
lineHex(const mem::Line &line)
{
    std::string out;
    out.reserve(2 * line.size());
    for (std::uint8_t byte : line) {
        char buf[4];
        std::snprintf(buf, sizeof buf, "%02x", byte);
        out += buf;
    }
    return out;
}

std::string
describeTrap(const core::Trap &trap)
{
    return trap.toString();
}

} // namespace

Lockstep::Lockstep(core::Machine &machine, LockstepConfig config)
    : machine_(machine), config_(config),
      ref_memory_(machine.dram().size()),
      ref_(ref_memory_, machine.pageTable())
{
    // Make DRAM and the tag table current, then snapshot them.
    machine_.memory().flushAll();
    mem::PhysicalMemory &dram = machine_.dram();
    mem::TagTable &tags = machine_.tagTable();
    for (std::uint64_t paddr = 0; paddr < dram.size();
         paddr += mem::kLineBytes) {
        ref_memory_.writeCapLine(
            paddr, mem::TaggedLine{dram.readLine(paddr),
                                   tags.get(paddr)});
    }

    // Snapshot the architectural register state.
    core::Cpu &cpu = machine_.cpu();
    for (unsigned i = 0; i < 32; ++i)
        ref_.setGpr(i, cpu.gpr(i));
    ref_.setHi(cpu.hi());
    ref_.setLo(cpu.lo());
    ref_.setPc(cpu.pc());
    for (unsigned i = 0; i < cap::kNumCapRegs; ++i)
        ref_.caps().write(i, cpu.caps().read(i));
    ref_.caps().setPcc(cpu.caps().pcc());
    ref_.setCp2Enabled(cpu.cp2Enabled());

    machine_.memory().setStoreObserver(this);
    trace_.resize(config_.window == 0 ? 1 : config_.window);
    cpu.setTraceHook([this](std::uint64_t pc,
                            const isa::Instruction &inst) {
        TraceEntry &entry = trace_[trace_next_ % trace_.size()];
        entry.pc = pc;
        entry.text = isa::disassemble(inst);
        ++trace_next_;
    });
}

Lockstep::~Lockstep()
{
    machine_.memory().setStoreObserver(nullptr);
    machine_.cpu().setTraceHook({});
}

void
Lockstep::onLineWritten(std::uint64_t line_paddr)
{
    cpu_lines_.push_back(line_paddr);
}

std::string
Lockstep::windowText() const
{
    std::string out;
    std::uint64_t count =
        std::min<std::uint64_t>(trace_next_, trace_.size());
    for (std::uint64_t i = trace_next_ - count; i < trace_next_; ++i) {
        const TraceEntry &entry = trace_[i % trace_.size()];
        out += "    " + hex(entry.pc) + ": " + entry.text + "\n";
    }
    return out;
}

std::string
Lockstep::report(const std::string &detail) const
{
    std::string out = "divergence after " +
                      std::to_string(ref_.totalInstructions()) +
                      " instruction(s):\n  " + detail + "\n";
    std::string window = windowText();
    if (!window.empty())
        out += "  last fetched (fast CPU):\n" + window;
    return out;
}

bool
Lockstep::compareCore(std::string &out) const
{
    const core::Cpu &cpu = machine_.cpu();
    if (cpu.pc() != ref_.pc()) {
        out = "pc: fast=" + hex(cpu.pc()) + " ref=" + hex(ref_.pc());
        return false;
    }
    for (unsigned i = 0; i < 32; ++i) {
        if (cpu.gpr(i) != ref_.gpr(i)) {
            out = std::string("gpr ") + isa::kRegNames[i] +
                  ": fast=" + hex(cpu.gpr(i)) +
                  " ref=" + hex(ref_.gpr(i));
            return false;
        }
    }
    if (cpu.hi() != ref_.hi() || cpu.lo() != ref_.lo()) {
        out = "hi/lo: fast=" + hex(cpu.hi()) + "/" + hex(cpu.lo()) +
              " ref=" + hex(ref_.hi()) + "/" + hex(ref_.lo());
        return false;
    }
    for (unsigned i = 0; i < cap::kNumCapRegs; ++i) {
        if (!(cpu.caps().read(i) == ref_.caps().read(i))) {
            out = "c" + std::to_string(i) +
                  ": fast=" + cpu.caps().read(i).toString() +
                  " ref=" + ref_.caps().read(i).toString();
            return false;
        }
    }
    if (!(cpu.caps().pcc() == ref_.caps().pcc())) {
        out = "pcc: fast=" + cpu.caps().pcc().toString() +
              " ref=" + ref_.caps().pcc().toString();
        return false;
    }
    return true;
}

bool
Lockstep::compareLines(const std::vector<std::uint64_t> &lines,
                       std::string &out)
{
    for (std::uint64_t paddr : lines) {
        // Reading through the hierarchy perturbs simulated cache
        // timing but not architectural content (see file comment).
        std::uint64_t scratch = 0;
        mem::TaggedLine fast =
            machine_.memory().readCapLine(paddr, scratch);
        mem::TaggedLine ref = ref_memory_.readCapLine(paddr);
        if (fast.data != ref.data || fast.tag != ref.tag) {
            out = "memory line " + hex(paddr) +
                  ": fast=" + lineHex(fast.data) +
                  (fast.tag ? " tag=1" : " tag=0") +
                  " ref=" + lineHex(ref.data) +
                  (ref.tag ? " tag=1" : " tag=0");
            return false;
        }
    }
    return true;
}

bool
Lockstep::finalSweep(std::string &out)
{
    machine_.memory().flushAll();
    mem::PhysicalMemory &dram = machine_.dram();
    mem::TagTable &tags = machine_.tagTable();
    for (std::uint64_t paddr = 0; paddr < dram.size();
         paddr += mem::kLineBytes) {
        mem::Line fast = dram.readLine(paddr);
        bool fast_tag = tags.get(paddr);
        if (fast != ref_memory_.lineData(paddr) ||
            fast_tag != ref_memory_.lineTag(paddr)) {
            out = "final sweep: memory line " + hex(paddr) +
                  ": fast=" + lineHex(fast) +
                  (fast_tag ? " tag=1" : " tag=0") +
                  " ref=" + lineHex(ref_memory_.lineData(paddr)) +
                  (ref_memory_.lineTag(paddr) ? " tag=1" : " tag=0");
            return false;
        }
    }
    return true;
}

LockstepResult
Lockstep::run()
{
    LockstepResult result = runFor(config_.max_instructions);
    if (!result.diverged && config_.final_memory_sweep) {
        std::string detail;
        if (!finalSweep(detail)) {
            result.diverged = true;
            result.divergence = report(detail);
        }
    }
    return result;
}

LockstepResult
Lockstep::runFor(std::uint64_t max_instructions)
{
    LockstepResult result;
    core::Cpu &cpu = machine_.cpu();

    while (result.instructions < max_instructions) {
        cpu_lines_.clear();
        std::uint64_t before = cpu.totalInstructions();
        core::RunResult rr = cpu.run(1);
        std::uint64_t retired = cpu.totalInstructions() - before;
        if (rr.reason == core::StopReason::kInternalFault) {
            // The supervision barrier caught a corruption-induced
            // integrity failure inside the fast CPU. The machine is
            // poisoned mid-instruction, so stop the pair here and let
            // the caller classify the abort.
            result.fast_internal_fault = true;
            result.fast_fault = rr.fault;
            return result;
        }
        bool cpu_trapped = rr.reason == core::StopReason::kTrap;
        bool cpu_break = rr.reason == core::StopReason::kBreak;
        if (cpu_trapped) {
            result.fast_trapped = true;
            result.fast_trap = rr.trap;
        }

        // Match the reference to the fast CPU's stopping point: the
        // same number of retirements, plus — when the fast CPU faulted
        // at fetch, which retires nothing — one non-retiring step that
        // must produce the same fault.
        std::vector<std::uint64_t> ref_lines;
        std::uint64_t done = 0;
        bool ref_trapped = false;
        bool ref_break = false;
        core::Trap ref_trap;
        while (done < retired) {
            RefStep rs = ref_.step();
            ref_lines.insert(ref_lines.end(),
                             ref_.linesWrittenLastStep().begin(),
                             ref_.linesWrittenLastStep().end());
            if (rs.retired)
                ++done;
            if (rs.hit_break)
                ref_break = true;
            if (rs.trapped) {
                ref_trapped = true;
                ref_trap = rs.trap;
                break;
            }
            if (!rs.retired)
                break; // fetch fault without a trap cannot happen
        }
        if (cpu_trapped && !ref_trapped && done == retired) {
            RefStep rs = ref_.step();
            ref_lines.insert(ref_lines.end(),
                             ref_.linesWrittenLastStep().begin(),
                             ref_.linesWrittenLastStep().end());
            if (rs.trapped) {
                ref_trapped = true;
                ref_trap = rs.trap;
            }
            if (rs.retired) {
                result.diverged = true;
                result.divergence = report(
                    "fast CPU faulted at fetch but the reference "
                    "retired an instruction at pc " +
                    hex(ref_.pc()));
                return result;
            }
        }
        result.instructions += done;
        total_instructions_ += done;

        if (done != retired) {
            result.diverged = true;
            result.divergence = report(
                "retirement mismatch: fast retired " +
                std::to_string(retired) + ", reference " +
                std::to_string(done) +
                (ref_trapped ? " (reference trapped: " +
                                   describeTrap(ref_trap) + ")"
                             : ""));
            return result;
        }
        if (cpu_trapped != ref_trapped) {
            result.diverged = true;
            result.divergence = report(
                cpu_trapped
                    ? "fast CPU trapped (" + describeTrap(rr.trap) +
                          ") but the reference did not"
                    : "reference trapped (" + describeTrap(ref_trap) +
                          ") but the fast CPU did not");
            return result;
        }
        if (cpu_trapped) {
            const core::Trap &a = rr.trap;
            const core::Trap &b = ref_trap;
            if (a.code != b.code || a.cap_cause != b.cap_cause ||
                a.cap_reg != b.cap_reg || a.cap_reg2 != b.cap_reg2 ||
                a.epc != b.epc || a.bad_vaddr != b.bad_vaddr ||
                a.in_delay_slot != b.in_delay_slot) {
                result.diverged = true;
                result.divergence = report(
                    "trap mismatch: fast=" + describeTrap(a) +
                    " ref=" + describeTrap(b));
                return result;
            }
        }
        if (cpu_break != ref_break) {
            result.diverged = true;
            result.divergence = report(
                cpu_break ? "fast CPU hit BREAK but the reference "
                            "did not"
                          : "reference hit BREAK but the fast CPU "
                            "did not");
            return result;
        }

        std::string detail;
        if (!compareCore(detail)) {
            result.diverged = true;
            result.divergence = report(detail);
            return result;
        }

        // Diff the union of lines either side claims to have written:
        // a store present on one side only shows up as a content or
        // tag mismatch on the union.
        std::vector<std::uint64_t> lines = cpu_lines_;
        lines.insert(lines.end(), ref_lines.begin(), ref_lines.end());
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()),
                    lines.end());
        if (!compareLines(lines, detail)) {
            result.diverged = true;
            result.divergence = report(detail);
            return result;
        }

        if (cpu_trapped) {
            result.trapped = true;
            result.trap = rr.trap;
            break;
        }
        if (cpu_break) {
            result.hit_break = true;
            break;
        }
    }

    if (!result.diverged && !result.trapped && !result.hit_break)
        result.hit_limit = true;
    return result;
}

} // namespace cheri::check
