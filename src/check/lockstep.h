/**
 * @file
 * The co-simulation driver: runs the optimized Cpu and the simple
 * RefCpu (ref_cpu.h) over the same program instruction by instruction,
 * diffing every piece of architectural state at every retire — GPRs,
 * HI/LO, PC, all 32 capability registers and PCC (tag, base, length,
 * perms, seal, otype via bytewise image equality), the bytes and tag
 * of every stored-to memory line, and any raised exception down to
 * its CapCause and faulting register. The first divergence stops the
 * run and is reported with a disassembled window of the instructions
 * leading up to it.
 *
 * Timing note: the driver reads the fast machine's memory through the
 * cache hierarchy to diff stored lines, which perturbs simulated cache
 * state (hits/misses, LRU). The oracle therefore checks architectural
 * equivalence only; timing invariance between fast-path modes is
 * covered separately by tests/test_fetch_fastpath.cc.
 */

#ifndef CHERI_CHECK_LOCKSTEP_H
#define CHERI_CHECK_LOCKSTEP_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/ref_cpu.h"
#include "core/machine.h"

namespace cheri::check
{

/** Knobs for one lockstep run. */
struct LockstepConfig
{
    /** Stop (without divergence) after this many retired instructions. */
    std::uint64_t max_instructions = 100'000'000;
    /** Disassembled instructions shown before a divergence. */
    unsigned window = 8;
    /** Flush the fast machine and diff all of DRAM + tags at the end. */
    bool final_memory_sweep = true;
};

/** Outcome of a lockstep run. */
struct LockstepResult
{
    bool diverged = false;
    /** Both machines executed BREAK (the guest kernels' exit). */
    bool hit_break = false;
    /** Both machines raised the same trap (valid in 'trap'). */
    bool trapped = false;
    core::Trap trap;
    /** Stopped because the instruction budget ran out. */
    bool hit_limit = false;
    /**
     * The fast CPU raised a trap (valid in 'fast_trap'). When
     * 'trapped' is also set the reference raised the identical trap;
     * when 'diverged' is set instead, the trap itself is the
     * divergence (the usual signature of an injected fault caught by
     * a capability or TLB check).
     */
    bool fast_trapped = false;
    core::Trap fast_trap;
    /**
     * The fast CPU stopped with a guest-induced internal fault
     * (StopReason::kInternalFault — a corruption tripped a state-
     * integrity check under an active support::PanicScope). The fast
     * machine is poisoned and the pair must not be stepped further;
     * 'fast_fault' holds the captured context.
     */
    bool fast_internal_fault = false;
    core::InternalFault fast_fault;
    /** Instructions retired by the pair during this call. */
    std::uint64_t instructions = 0;
    /** Human-readable first-divergence report; empty when clean. */
    std::string divergence;
};

/**
 * Runs a Machine and a RefCpu in lockstep. Construction snapshots the
 * machine's current architectural state (registers, capabilities, all
 * of DRAM and the tag table) into the reference, so point it at a
 * loaded, reset machine and call run(). The driver temporarily
 * installs itself as the hierarchy's StoreObserver and the Cpu's trace
 * hook; both are restored on destruction.
 */
class Lockstep : private cache::StoreObserver
{
  public:
    explicit Lockstep(core::Machine &machine, LockstepConfig config = {});
    ~Lockstep() override;

    Lockstep(const Lockstep &) = delete;
    Lockstep &operator=(const Lockstep &) = delete;

    /** Run to break/trap/limit or first divergence. */
    LockstepResult run();

    /**
     * Resumable variant: run up to 'max_instructions' more retired
     * instructions and return (without the final memory sweep).
     * Position persists across calls, so a caller can pair a clean
     * prefix, mutate the fast machine (inject a fault), and continue
     * comparing — the reference stays pristine. Once a call reports
     * diverged/trapped/hit_break the pair should not be stepped
     * further.
     */
    LockstepResult runFor(std::uint64_t max_instructions);

    /**
     * Flush the fast machine and diff every DRAM line + tag against
     * the reference. Usable at any stopping point; 'out' receives the
     * first mismatch.
     */
    bool finalStateMatches(std::string &out) { return finalSweep(out); }

    /** Instructions retired by the pair since construction. */
    std::uint64_t totalInstructions() const { return total_instructions_; }

  private:
    void onLineWritten(std::uint64_t line_paddr) override;

    /** Compare registers, capabilities and PC; describe any mismatch. */
    bool compareCore(std::string &out) const;

    /** Compare the given memory lines between the two machines. */
    bool compareLines(const std::vector<std::uint64_t> &lines,
                      std::string &out);

    /** Flush the fast machine and diff every DRAM line + tag. */
    bool finalSweep(std::string &out);

    /** Render the ring buffer of recently fetched instructions. */
    std::string windowText() const;

    /** Prefix a mismatch description with position and window. */
    std::string report(const std::string &detail) const;

    core::Machine &machine_;
    LockstepConfig config_;
    RefMemory ref_memory_;
    RefCpu ref_;

    /** Lines the fast CPU stored to in the current round. */
    std::vector<std::uint64_t> cpu_lines_;

    struct TraceEntry
    {
        std::uint64_t pc = 0;
        std::string text;
    };
    std::vector<TraceEntry> trace_; ///< ring buffer, size config.window
    std::uint64_t trace_next_ = 0;
    /** Retired by the pair across all runFor/run calls. */
    std::uint64_t total_instructions_ = 0;
};

} // namespace cheri::check

#endif // CHERI_CHECK_LOCKSTEP_H
