#include "check/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "tlb/page_table.h"

namespace cheri::check
{

namespace
{

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Allocated physical bytes (frames handed out so far). */
std::uint64_t
allocatedBytes(core::Machine &machine)
{
    return machine.allocatedFrames() * tlb::kPageBytes;
}

/**
 * Tagged lines resident anywhere in the cache hierarchy, L1D first,
 * then L2, then L1I, each in way-index order, first occurrence kept.
 * The order is a pure function of machine state, so target selection
 * is reproducible.
 */
std::vector<std::uint64_t>
taggedResidentLines(core::Machine &machine)
{
    std::vector<std::uint64_t> lines =
        machine.memory().l1d().residentTaggedLines();
    for (const cache::Cache *level :
         {&machine.memory().l2(), &machine.memory().l1i()}) {
        for (std::uint64_t paddr : level->residentTaggedLines()) {
            if (std::find(lines.begin(), lines.end(), paddr) ==
                lines.end())
                lines.push_back(paddr);
        }
    }
    return lines;
}

bool
tryCacheTagDrop(core::Machine &machine, std::uint64_t pick,
                std::string &target)
{
    std::vector<std::uint64_t> lines = taggedResidentLines(machine);
    if (lines.empty())
        return false;
    std::uint64_t paddr = lines[pick % lines.size()];
    // Coherent drop: every cached copy plus the backing table, so a
    // clean-line eviction cannot resurrect the tag.
    machine.memory().l1d().clearTagIfResident(paddr);
    machine.memory().l1i().clearTagIfResident(paddr);
    machine.memory().l2().clearTagIfResident(paddr);
    machine.tagTable().set(paddr, false);
    target = "tag dropped on line " + hex(paddr);
    return true;
}

bool
tryMemoSkew(core::Machine &machine, std::uint64_t pick,
            std::string &target)
{
    if (!machine.cpu().injectMemoSkew(pick))
        return false;
    target = "data-memo L1D handle skewed (pick " +
             std::to_string(pick) + ")";
    return true;
}

bool
tryTlbCorruption(core::Machine &machine, std::uint64_t pick,
                 std::string &target)
{
    std::vector<std::uint64_t> vpns = machine.tlb().cachedVpns();
    if (vpns.empty())
        return false;
    std::uint64_t vpn = vpns[pick % vpns.size()];
    std::optional<tlb::Pte> pte = machine.pageTable().lookup(vpn);
    if (!pte)
        return false;
    std::uint64_t frames = machine.allocatedFrames();
    tlb::Pte corrupt = *pte;
    // Two corruption flavours: repoint the translation (surfaces as a
    // data divergence) or drop the write permission (surfaces as a
    // TLB-modified trap on the fast machine only).
    if ((pick >> 4) % 2 == 0 && frames >= 2) {
        corrupt.pfn =
            (pte->pfn + 1 + (pick >> 8) % (frames - 1)) % frames;
        target = "tlb vpn " + hex(vpn) + " pfn " +
                 std::to_string(pte->pfn) + " -> " +
                 std::to_string(corrupt.pfn);
    } else {
        corrupt.flags.writable = false;
        target = "tlb vpn " + hex(vpn) + " write permission dropped";
    }
    return machine.tlb().corruptEntry(vpn, corrupt);
}

bool
tryTagTableFlip(core::Machine &machine, std::uint64_t pick,
                std::string &target)
{
    std::uint64_t lines = allocatedBytes(machine) / mem::kLineBytes;
    if (lines == 0)
        return false;
    std::uint64_t paddr = (pick % lines) * mem::kLineBytes;
    bool old_tag = machine.tagTable().get(paddr);
    machine.tagTable().set(paddr, !old_tag);
    target = std::string("tag table bit for line ") + hex(paddr) +
             (old_tag ? " dropped" : " forged");
    return true;
}

bool
tryDramBitFlip(core::Machine &machine, std::uint64_t pick,
               std::string &target)
{
    std::uint64_t bytes = allocatedBytes(machine);
    if (bytes == 0)
        return false;
    std::uint64_t paddr = pick % bytes;
    unsigned bit = (pick / bytes) % 8;
    std::uint8_t value = static_cast<std::uint8_t>(
        machine.dram().read(paddr, 1));
    machine.dram().writeByte(paddr, value ^ (1u << bit));
    target = "dram bit " + std::to_string(bit) + " at byte " +
             hex(paddr) + " flipped";
    return true;
}

bool
tryClass(core::Machine &machine, FaultClass fault, std::uint64_t pick,
         std::string &target)
{
    switch (fault) {
    case FaultClass::kTagTableFlip:
        return tryTagTableFlip(machine, pick, target);
    case FaultClass::kDramBitFlip:
        return tryDramBitFlip(machine, pick, target);
    case FaultClass::kTlbCorruption:
        return tryTlbCorruption(machine, pick, target);
    case FaultClass::kCacheTagDrop:
        return tryCacheTagDrop(machine, pick, target);
    case FaultClass::kMemoStaleness:
        return tryMemoSkew(machine, pick, target);
    }
    return false;
}

} // namespace

const char *
faultClassName(FaultClass fault)
{
    switch (fault) {
    case FaultClass::kTagTableFlip:
        return "tag_table_flip";
    case FaultClass::kDramBitFlip:
        return "dram_bit_flip";
    case FaultClass::kTlbCorruption:
        return "tlb_corruption";
    case FaultClass::kCacheTagDrop:
        return "cache_tag_drop";
    case FaultClass::kMemoStaleness:
        return "memo_staleness";
    }
    return "unknown";
}

FaultOutcome
applyFault(core::Machine &machine, const FaultPlan &plan)
{
    FaultOutcome outcome;
    // Fixed cyclic rotation from the requested class; the DRAM and
    // tag-table classes always have targets, so this terminates.
    for (unsigned i = 0; i < kNumFaultClasses; ++i) {
        FaultClass fault = static_cast<FaultClass>(
            (static_cast<unsigned>(plan.fault) + i) % kNumFaultClasses);
        if (tryClass(machine, fault, plan.pick, outcome.target)) {
            outcome.applied = true;
            outcome.applied_class = fault;
            return outcome;
        }
    }
    return outcome;
}

} // namespace cheri::check
