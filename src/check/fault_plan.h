/**
 * @file
 * Generalized fault injection for the robustness campaign: one-shot
 * state corruptions applied to a running Machine at a chosen
 * retired-instruction count. Each fault class models a distinct
 * physical failure the CHERI protection model (or the co-simulation
 * oracle) should catch:
 *
 *  - kTagTableFlip:  a soft error in the in-DRAM tag table — a line's
 *    capability tag flips, either forging a tag over data or dropping
 *    a legitimate one.
 *  - kDramBitFlip:   a single-bit soft error in a DRAM data line.
 *  - kTlbCorruption: a cached TLB entry's translation is rewritten to
 *    point at the wrong physical frame (the page table stays clean,
 *    so a refill self-heals).
 *  - kCacheTagDrop:  the capability tag of a resident tagged line is
 *    dropped coherently (every cache level plus the tag table), the
 *    failure the paper's unforgeability argument is about.
 *  - kMemoStaleness: a live entry of the CPU's data-memo fast path is
 *    repointed at a different resident L1D line — a host-optimization
 *    bug rather than a hardware fault, observable only with the data
 *    fast path enabled.
 *
 * Target selection inside a class is a pure function of the plan's
 * 'pick' value and the machine state, so a campaign with a fixed seed
 * reproduces byte-for-byte. A class that has no valid target in the
 * current machine state (no tagged resident line, no live memo, no
 * cached TLB entry) rotates to the next class in a fixed cyclic
 * order; the DRAM and tag-table classes always apply, so rotation
 * terminates.
 */

#ifndef CHERI_CHECK_FAULT_PLAN_H
#define CHERI_CHECK_FAULT_PLAN_H

#include <cstdint>
#include <string>

#include "core/machine.h"

namespace cheri::check
{

/** The injectable fault classes (see file comment). */
enum class FaultClass
{
    kTagTableFlip,
    kDramBitFlip,
    kTlbCorruption,
    kCacheTagDrop,
    kMemoStaleness,
};

constexpr unsigned kNumFaultClasses = 5;

/** Stable lower-case name used in reports and JSON keys. */
const char *faultClassName(FaultClass fault);

/** One planned injection. */
struct FaultPlan
{
    FaultClass fault = FaultClass::kDramBitFlip;
    /** Retired-instruction count at which the caller injects. */
    std::uint64_t inject_at = 0;
    /** Deterministic target selector within the class. */
    std::uint64_t pick = 0;
};

/** What applyFault actually did. */
struct FaultOutcome
{
    bool applied = false;
    /** Class that applied after rotation (== plan.fault when no
     *  rotation was needed). */
    FaultClass applied_class = FaultClass::kDramBitFlip;
    /** Human-readable description of the corrupted target. */
    std::string target;
};

/**
 * Apply the planned fault to the machine's current state. The caller
 * is responsible for having advanced the machine to plan.inject_at
 * retired instructions. Returns the class that actually applied (the
 * requested one, or the first applicable class in rotation order) and
 * a description of the target. 'applied' is false only for a machine
 * with no allocated physical frames.
 */
FaultOutcome applyFault(core::Machine &machine, const FaultPlan &plan);

} // namespace cheri::check

#endif // CHERI_CHECK_FAULT_PLAN_H
