/**
 * @file
 * The co-simulation reference interpreter. RefCpu re-implements the
 * architectural semantics of the emulated CHERI machine in the most
 * direct style possible — flat tagged memory, a page-table walk per
 * access, decode-every-fetch, no caches, no timing, no fast paths —
 * so that the optimized Cpu (predecode cache, TLB memos, cached PCC
 * window, tag-carrying cache hierarchy) can be checked against it
 * instruction by instruction. Any observable difference between the
 * two is, by construction, a bug in one of the optimizations or in
 * the reference: the Lockstep driver (lockstep.h) finds the first one
 * and reports it.
 *
 * RefCpu deliberately shares only the leaf semantic helpers with the
 * fast CPU (the cap_ops monotonic operations, checkFetch /
 * checkDataAccess, and the decoder): those are the single definitions
 * of the paper's Table 1 semantics. Everything layered above them —
 * fetch, translation, the memory system, tag propagation, delay
 * slots, trap delivery — is written independently here.
 */

#ifndef CHERI_CHECK_REF_CPU_H
#define CHERI_CHECK_REF_CPU_H

#include <array>
#include <cstdint>
#include <vector>

#include "cap/cap_ops.h"
#include "cap/reg_file.h"
#include "core/exceptions.h"
#include "isa/isa.h"
#include "mem/tag_manager.h"
#include "tlb/tlb.h"

namespace cheri::check
{

/**
 * Flat tagged physical memory: one byte array plus one tag bit per
 * 32-byte line, with the CHERI store semantics applied directly — a
 * data write clears the containing line's tag, a capability write
 * sets it from the stored capability. This is the reference model
 * the whole cache hierarchy + tag manager + tag table stack must be
 * observationally equivalent to.
 */
class RefMemory
{
  public:
    explicit RefMemory(std::uint64_t size_bytes);

    std::uint64_t size() const { return data_.size(); }

    /** Little-endian read of 1/2/4/8 bytes (tag-oblivious). */
    std::uint64_t read(std::uint64_t paddr, unsigned size) const;

    /** Little-endian write of 1/2/4/8 bytes; clears the line tag. */
    void write(std::uint64_t paddr, unsigned size, std::uint64_t value);

    /** Full 257-bit line view (CLC). */
    mem::TaggedLine readCapLine(std::uint64_t paddr) const;

    /** Full 257-bit line write (CSC). */
    void writeCapLine(std::uint64_t paddr, const mem::TaggedLine &line);

    /** Tag of the line containing paddr. */
    bool lineTag(std::uint64_t paddr) const;

    /** Raw bytes of the aligned line containing paddr. */
    mem::Line lineData(std::uint64_t paddr) const;

    /** Loader helper: copy bytes in without touching tags. */
    void writeBlock(std::uint64_t paddr, const std::uint8_t *src,
                    std::uint64_t len);

  private:
    std::uint64_t lineIndex(std::uint64_t paddr) const
    {
        return paddr / mem::kLineBytes;
    }

    std::vector<std::uint8_t> data_;
    std::vector<std::uint8_t> tags_; ///< one entry per line
};

/** Outcome of one RefCpu::step. */
struct RefStep
{
    /** False only when the instruction faulted at fetch (PCC, PC
     *  alignment, or translation) and therefore did not retire. */
    bool retired = false;
    bool trapped = false;
    bool hit_break = false;
    core::Trap trap; ///< valid when trapped
};

/**
 * The reference interpreter. Executes against a RefMemory and walks a
 * PageTable directly (translation results are identical to the TLB's,
 * which refills transparently from the same table). Keeps no caches,
 * charges no cycles, gathers no stats.
 */
class RefCpu
{
  public:
    RefCpu(RefMemory &memory, const tlb::PageTable &table);

    // --- architectural state (readable and settable so the lockstep
    // --- driver can initialize from and diff against the fast CPU) ---
    std::uint64_t gpr(unsigned index) const { return gpr_[index]; }
    void setGpr(unsigned index, std::uint64_t value);
    std::uint64_t hi() const { return hi_; }
    std::uint64_t lo() const { return lo_; }
    void setHi(std::uint64_t value) { hi_ = value; }
    void setLo(std::uint64_t value) { lo_ = value; }
    std::uint64_t pc() const { return pc_; }
    /** Reset control flow to pc (clears any pending delay slot). */
    void setPc(std::uint64_t pc);
    cap::CapRegFile &caps() { return caps_; }
    const cap::CapRegFile &caps() const { return caps_; }
    void setCp2Enabled(bool enabled) { cp2_enabled_ = enabled; }

    std::uint64_t totalInstructions() const { return instructions_; }

    /** Execute one instruction (or deliver one fetch-level fault). */
    RefStep step();

    /**
     * Physical line addresses written by the most recent step (data
     * stores, capability stores, successful SC). The lockstep driver
     * diffs exactly these lines against the fast machine's memory.
     */
    const std::vector<std::uint64_t> &linesWrittenLastStep() const
    {
        return lines_written_;
    }

  private:
    struct Translation
    {
        tlb::TlbFault fault = tlb::TlbFault::kNone;
        std::uint64_t paddr = 0;

        bool ok() const { return fault == tlb::TlbFault::kNone; }
    };

    /** Direct page-table walk with the TLB's permission semantics. */
    Translation translate(std::uint64_t vaddr, tlb::Access access) const;

    void raise(core::ExcCode code, std::uint64_t bad_vaddr = 0);
    void raiseCap(cap::CapCause cause, std::uint8_t cap_reg,
                  std::uint64_t bad_vaddr = 0);
    void branchTo(std::uint64_t target);

    bool checkedDataAccess(unsigned cap_index, std::uint64_t offset,
                           unsigned size, bool is_store, bool is_cap,
                           std::uint64_t &paddr_out);

    void noteWrite(std::uint64_t paddr);

    void execute(const isa::Instruction &inst);
    void executeCp2(const isa::Instruction &inst);
    void executeMemory(const isa::Instruction &inst);
    void executeCapMemory(const isa::Instruction &inst);

    RefMemory &memory_;
    const tlb::PageTable *table_;

    std::array<std::uint64_t, 32> gpr_{};
    std::uint64_t hi_ = 0, lo_ = 0;
    std::uint64_t pc_ = 0;
    std::uint64_t next_pc_ = 4;
    cap::CapRegFile caps_;
    bool cp2_enabled_ = true;

    bool ll_valid_ = false;
    std::uint64_t ll_addr_ = 0;

    std::uint64_t instructions_ = 0;

    std::uint64_t current_pc_ = 0;
    bool in_delay_slot_ = false;
    bool branch_pending_ = false;

    unsigned pcc_swap_countdown_ = 0;
    cap::Capability pending_pcc_;

    core::Trap pending_trap_;
    bool trap_pending_ = false;

    std::vector<std::uint64_t> lines_written_;
};

} // namespace cheri::check

#endif // CHERI_CHECK_REF_CPU_H
