#include "check/fault_campaign.h"

#include <cstdio>

#include <memory>

#include "check/lockstep.h"
#include "isa/assembler.h"
#include "support/logging.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace cheri::check
{

namespace
{

std::string
firstLine(const std::string &text)
{
    std::size_t pos = text.find('\n');
    return pos == std::string::npos ? text : text.substr(0, pos);
}

/** JSON string escape (quotes, backslash, control characters). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
num(std::uint64_t value)
{
    return std::to_string(value);
}

/**
 * One worker's private replay context: a machine loaded with the
 * guest and its own S0 checkpoint. Loading is deterministic, so every
 * worker's S0 is bit-identical to the calibration machine's — a trial
 * produces the same record on any worker.
 */
struct WorkerMachine
{
    WorkerMachine(const CampaignConfig &config,
                  const CampaignGuest &guest)
        : machine([&] {
              core::MachineConfig machine_config;
              machine_config.dram_bytes = config.dram_bytes;
              return machine_config;
          }())
    {
        guest.load(machine);
        machine.cpu().setDecodeCacheEnabled(config.fast_paths);
        machine.cpu().setDataFastPathEnabled(config.fast_paths);
        s0 = machine.saveSnapshot();
    }

    core::Machine machine;
    core::Machine::Snapshot s0;
};

/**
 * Replay one planned trial on a machine already sitting at the
 * guest's S0 checkpoint (deep-restored or COW-forked by the caller)
 * and classify it (see the header's outcome taxonomy).
 */
TrialRecord
runTrial(const CampaignGuest &guest, core::Machine &machine,
         const FaultPlan &plan, std::uint64_t trial_index,
         std::uint64_t clean_instructions)
{
    LockstepConfig oracle_config;
    oracle_config.final_memory_sweep = false;
    Lockstep oracle(machine, oracle_config);

    LockstepResult prefix = oracle.runFor(plan.inject_at);
    if (prefix.diverged || !prefix.hit_limit) {
        support::panic("campaign guest '%s' trial %llu: clean "
                       "prefix did not stay clean: %s",
                       guest.name.c_str(),
                       static_cast<unsigned long long>(trial_index),
                       prefix.divergence.c_str());
    }

    // Everything past the injection runs behind the guest-failure
    // barrier: a corruption that trips an internal state-integrity
    // check (support::guestFault) unwinds as a GuestFailure — either
    // caught by Cpu::run (surfacing as fast_internal_fault) or, from
    // code outside the run loop such as the final memory sweep,
    // caught here — and classifies the trial as detected_abort
    // instead of killing the whole campaign. The clean prefix above
    // deliberately runs outside the scope: an abort there is an
    // emulator bug, not an injected fault.
    TrialRecord record;
    record.index = trial_index;
    record.requested = plan.fault;
    record.inject_at = plan.inject_at;
    support::PanicScope barrier;
    try {
        FaultOutcome fault = applyFault(machine, plan);
        if (!fault.applied) {
            support::panic("campaign guest '%s' trial %llu: no fault "
                           "class applicable",
                           guest.name.c_str(),
                           static_cast<unsigned long long>(trial_index));
        }
        record.applied = fault.applied_class;
        record.target = fault.target;

        // Generous budget: a corrupted guest gets twice the remaining
        // clean instructions plus slack before the watchdog calls it
        // a timeout.
        std::uint64_t remaining = clean_instructions - plan.inject_at;
        LockstepResult post = oracle.runFor(2 * remaining + 10'000);

        record.instructions_after = post.instructions;
        if (post.fast_internal_fault) {
            record.outcome = TrialOutcome::kDetectedAbort;
            record.detail = post.fast_fault.subsystem + ": " +
                            firstLine(post.fast_fault.message);
        } else if (post.diverged) {
            record.outcome = post.fast_trapped
                                 ? TrialOutcome::kDetectedTrap
                                 : TrialOutcome::kDetectedDivergence;
            record.detail = firstLine(post.divergence);
        } else if (post.hit_limit) {
            record.outcome = TrialOutcome::kTimeout;
        } else {
            // The pair reached BREAK (or an identical trap) with all
            // architectural state matching; only lingering memory
            // corruption separates masked from silent.
            std::string sweep;
            if (oracle.finalStateMatches(sweep)) {
                record.outcome = TrialOutcome::kMasked;
            } else {
                record.outcome = TrialOutcome::kSilentCorruption;
                record.detail = firstLine(sweep);
            }
        }
    } catch (const support::GuestFailure &failure) {
        record.outcome = TrialOutcome::kDetectedAbort;
        record.detail =
            failure.subsystem() + ": " + firstLine(failure.message());
    }
    return record;
}

/** Run one guest's campaign; see the header's file comment. */
GuestReport
runGuest(const CampaignConfig &config, const CampaignGuest &guest,
         std::uint64_t guest_index)
{
    GuestReport report;
    report.name = guest.name;

    // The calibration machine doubles as worker 0's replay context.
    WorkerMachine calibration(config, guest);
    core::Machine &machine = calibration.machine;
    const core::Machine::Snapshot &s0 = calibration.s0;

    // Clean watchdog-bounded run to calibrate the injection window.
    core::RunLimits limits;
    limits.max_instructions = config.clean_budget;
    core::RunResult clean = machine.cpu().run(limits);
    if (clean.reason != core::StopReason::kBreak) {
        support::fatal("campaign guest '%s' did not reach BREAK "
                       "within %llu instructions",
                       guest.name.c_str(),
                       static_cast<unsigned long long>(
                           config.clean_budget));
    }
    report.clean_instructions = machine.cpu().totalInstructions();
    report.clean_cycles = machine.cpu().totalCycles();
    std::uint64_t clean_checksum = machine.cpu().gpr(isa::reg::v0);

    // Self-check: restoring S0 and re-running must reproduce the
    // clean counters exactly — snapshot/restore alone may not perturb
    // the simulation.
    machine.restoreSnapshot(s0);
    core::RunResult replay = machine.cpu().run(limits);
    report.restore_perturbed =
        replay.reason != core::StopReason::kBreak ||
        machine.cpu().totalInstructions() != report.clean_instructions ||
        machine.cpu().totalCycles() != report.clean_cycles ||
        machine.cpu().gpr(isa::reg::v0) != clean_checksum;

    if (report.clean_instructions < 16) {
        support::fatal("campaign guest '%s' retired only %llu "
                       "instructions; too short to inject into",
                       guest.name.c_str(),
                       static_cast<unsigned long long>(
                           report.clean_instructions));
    }

    // Draw every trial's plan up front from the single per-guest RNG,
    // in trial order — the draws are what tie the campaign to its
    // seed, so they must not depend on worker scheduling.
    support::Xoshiro256 rng(config.seed +
                            guest_index * 0x9e3779b97f4a7c15ULL);
    std::vector<FaultPlan> plans;
    plans.reserve(config.trials);
    for (std::uint64_t t = 0; t < config.trials; ++t) {
        FaultPlan plan;
        plan.fault =
            static_cast<FaultClass>(rng.nextBelow(kNumFaultClasses));
        // Leave room for the kernels' final capability consumption
        // (CLC + CLD just before BREAK) so a dropped tag is always
        // observed.
        plan.inject_at =
            rng.nextInRange(1, report.clean_instructions - 8);
        plan.pick = rng.next();
        plans.push_back(plan);
    }

    // In fork mode each trial runs on a throwaway COW fork, so the
    // parent must sit at S0 — the calibration machine just ran the
    // guest twice, so park it back on the checkpoint once up front.
    // (Other workers' machines are born at S0 and never run.)
    if (config.fork_machines)
        machine.restoreSnapshot(s0);

    // Replay trials across the pool. Worker 0 reuses the calibration
    // machine; the others lazily clone their own checkpointed machine
    // the first time they claim a trial. Records land in trial order.
    unsigned jobs = support::normalizeJobs(config.jobs);
    std::vector<std::unique_ptr<WorkerMachine>> workers(jobs);
    report.trials = support::parallelMapOrdered<TrialRecord>(
        plans.size(), jobs, [&](std::size_t index, unsigned worker) {
            WorkerMachine *context;
            if (worker == 0) {
                context = &calibration;
            } else {
                if (!workers[worker])
                    workers[worker] = std::make_unique<WorkerMachine>(
                        config, guest);
                context = workers[worker].get();
            }
            if (config.fork_machines) {
                // The worker machine stays pristine at S0; the trial
                // corrupts a lightweight fork that dies with the
                // trial. Forking only ever happens on the worker's
                // own thread, and shared pages are never written in
                // place, so sibling forks across workers are safe.
                std::unique_ptr<core::Machine> child =
                    context->machine.fork();
                return runTrial(guest, *child, plans[index], index,
                                report.clean_instructions);
            }
            context->machine.restoreSnapshot(context->s0);
            return runTrial(guest, context->machine, plans[index],
                            index, report.clean_instructions);
        });

    for (const TrialRecord &record : report.trials)
        report.counts[static_cast<unsigned>(record.applied)]
                     [static_cast<unsigned>(record.outcome)]++;
    return report;
}

} // namespace

const char *
trialOutcomeName(TrialOutcome outcome)
{
    switch (outcome) {
    case TrialOutcome::kDetectedTrap:
        return "detected_trap";
    case TrialOutcome::kDetectedDivergence:
        return "detected_divergence";
    case TrialOutcome::kDetectedAbort:
        return "detected_abort";
    case TrialOutcome::kTimeout:
        return "timeout";
    case TrialOutcome::kMasked:
        return "masked";
    case TrialOutcome::kSilentCorruption:
        return "silent_corruption";
    }
    return "unknown";
}

CampaignReport
runCampaign(const CampaignConfig &config,
            const std::vector<CampaignGuest> &guests)
{
    CampaignReport report;
    report.config = config;
    for (std::size_t i = 0; i < guests.size(); ++i)
        report.guests.push_back(runGuest(config, guests[i], i));
    return report;
}

std::string
CampaignReport::toJson() const
{
    std::string out = "{\n";
    out += "  \"config\": {\"dram_bytes\": " + num(config.dram_bytes) +
           ", \"fast_paths\": " +
           (config.fast_paths ? "true" : "false") +
           ", \"seed\": " + num(config.seed) +
           ", \"trials\": " + num(config.trials) + "},\n";

    GuestReport::OutcomeCounts totals{};
    out += "  \"guests\": [\n";
    for (std::size_t g = 0; g < guests.size(); ++g) {
        const GuestReport &guest = guests[g];
        out += "    {\n";
        out += "      \"clean_cycles\": " + num(guest.clean_cycles) +
               ",\n";
        out += "      \"clean_instructions\": " +
               num(guest.clean_instructions) + ",\n";
        out += "      \"name\": \"" + jsonEscape(guest.name) + "\",\n";
        out += std::string("      \"restore_perturbed\": ") +
               (guest.restore_perturbed ? "true" : "false") + ",\n";

        out += "      \"summary\": {";
        for (unsigned c = 0; c < kNumFaultClasses; ++c) {
            out += std::string(c == 0 ? "" : ", ") + "\"" +
                   faultClassName(static_cast<FaultClass>(c)) +
                   "\": {";
            for (unsigned o = 0; o < kNumTrialOutcomes; ++o) {
                totals[o] += guest.counts[c][o];
                out += std::string(o == 0 ? "" : ", ") + "\"" +
                       trialOutcomeName(
                           static_cast<TrialOutcome>(o)) +
                       "\": " + num(guest.counts[c][o]);
            }
            out += "}";
        }
        out += "},\n";

        out += "      \"trials\": [\n";
        for (std::size_t t = 0; t < guest.trials.size(); ++t) {
            const TrialRecord &trial = guest.trials[t];
            out += "        {\"applied\": \"" +
                   std::string(faultClassName(trial.applied)) +
                   "\", \"detail\": \"" + jsonEscape(trial.detail) +
                   "\", \"index\": " + num(trial.index) +
                   ", \"inject_at\": " + num(trial.inject_at) +
                   ", \"instructions_after\": " +
                   num(trial.instructions_after) +
                   ", \"outcome\": \"" +
                   trialOutcomeName(trial.outcome) +
                   "\", \"requested\": \"" +
                   std::string(faultClassName(trial.requested)) +
                   "\", \"target\": \"" + jsonEscape(trial.target) +
                   "\"}";
            out += t + 1 < guest.trials.size() ? ",\n" : "\n";
        }
        out += "      ]\n";
        out += g + 1 < guests.size() ? "    },\n" : "    }\n";
    }
    out += "  ],\n";

    out += "  \"totals\": {";
    for (unsigned o = 0; o < kNumTrialOutcomes; ++o) {
        out += std::string(o == 0 ? "" : ", ") + "\"" +
               trialOutcomeName(static_cast<TrialOutcome>(o)) +
               "\": " + num(totals[o]);
    }
    out += "}\n";
    out += "}\n";
    return out;
}

} // namespace cheri::check
