/**
 * @file
 * Capability-aware instruction fuzzer. Programs are generated as a
 * list of abstract FuzzOps whose parameters (registers, addresses,
 * offsets, sub-opcodes) are fully resolved at generation time, so that
 * assembling a spec — or any sublist of its ops, which is what the
 * ddmin shrinker produces — is a pure deterministic function. The
 * generator is biased toward the CHERI edge cases the paper's
 * guarantees live on: loads and stores at capability bounds
 * boundaries, CIncBase/CSetLen at limits, tag-clearing data stores
 * over in-memory capabilities, CJR/CJALR through sealed or untagged
 * capabilities, LL/SC interleavings, and TLB-exercising strides
 * including pages with the CHERI cap-load/cap-store PTE bits clear.
 *
 * Every generated program runs under the lockstep oracle
 * (check/lockstep.h) against both fast-CPU modes (fetch and data fast
 * paths on and off together by default; the data path can be forced
 * on or off independently to target one side); a divergence is shrunk
 * to a minimal op list and dumped as a .s reproducer that round-trips
 * through the text assembler.
 */

#ifndef CHERI_CHECK_FUZZ_H
#define CHERI_CHECK_FUZZ_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "check/lockstep.h"
#include "core/machine.h"

namespace cheri::check
{

/** Guest virtual address the fuzz program is loaded at. */
constexpr std::uint64_t kFuzzCodeBase = 0x10000;
/** Read-write arena c1 covers (tagged lines live here). */
constexpr std::uint64_t kFuzzArenaBase = 0x100000;
constexpr std::uint64_t kFuzzArenaLen = 0x20000;
/** Page with the CHERI cap-load/cap-store PTE bits clear. */
constexpr std::uint64_t kFuzzNoCapPage = 0x140000;
/** Read-only page (stores fault with TLB-modified). */
constexpr std::uint64_t kFuzzRoPage = 0x141000;
/** Large region for TLB-stride accesses. */
constexpr std::uint64_t kFuzzStrideBase = 0x200000;
constexpr std::uint64_t kFuzzStrideLen = 0x40000;
/** First unmapped address above the stride region. */
constexpr std::uint64_t kFuzzUnmapped = 0x260000;

/**
 * One abstract fuzz operation. Parameters a..d are kind-specific but
 * always concrete (register numbers, absolute addresses, resolved
 * offsets), so assembly needs no randomness.
 */
struct FuzzOp
{
    enum class Kind
    {
        kAluImm,
        kAluReg,
        kShift,
        kMulDiv,
        kLegacyLoad,
        kLegacyStore,
        kCapLoad,      ///< clb..cld through a capability
        kCapStore,     ///< csb..csd through a capability
        kCapLoadCap,   ///< CLC
        kCapStoreCap,  ///< CSC
        kTagClearStore,///< data store over a (potentially) tagged line
        kDerive,       ///< cincbase/csetlen/candperm/cfromptr/...
        kPermQuery,    ///< cgetbase/cgetlen/cgettag/cgetperm/...
        kSealUnseal,
        kBranch,       ///< forward conditional branch over 1..3 ops
        kCapBranch,    ///< cbtu/cbts over 1..3 ops
        kCapJumpTrap,  ///< cjr through sealed/untagged/no-exec cap
        kLlSc,         ///< lld/scd with optional interleaved store
        kTlbStride,    ///< strided loads across the big region
        kPtrRoundTrip, ///< ctoptr -> cfromptr remint, optionally
                       ///< ccleartag-poisoned or dereferenced — the
                       ///< managed-runtime GC's interop hot path
    };

    Kind kind = Kind::kAluImm;
    std::uint64_t a = 0, b = 0, c = 0, d = 0;
};

/** A complete generated program: seeded registers plus the op list. */
struct FuzzSpec
{
    std::uint64_t seed = 0;
    /** Initial values loaded into t0..t7 by the preamble. */
    std::array<std::uint64_t, 8> reg_seed{};
    std::vector<FuzzOp> ops;
};

/** Generate the spec for one seed (24..48 ops, biased as above). */
FuzzSpec generateSpec(std::uint64_t seed);

/**
 * Assemble a spec into a loadable program: a fixed preamble that
 * derives the capability cast (arena c1, sub-range c2, sealed c3,
 * seal-authority c4, untagged c5, load-only c6, restricted-page c13,
 * stride c14, and a capability stored at arena line 0), the ops, and
 * a final BREAK. Pure function of the spec.
 */
std::vector<std::uint32_t> assembleFuzzProgram(const FuzzSpec &spec);

/** Outcome of running one program under the oracle in both modes. */
struct FuzzRunResult
{
    bool diverged = false;
    /** Fast path enabled in the diverging mode. */
    bool fast_path = false;
    std::string divergence;
};

/**
 * How the CPU's data-side fast path is set during a fuzz run.
 * kFollow toggles it together with the fetch fast path (so the two
 * oracle passes compare all-fast against all-slow); kForceOn/kForceOff
 * pin it in both passes so the fetch toggle is isolated (kForceOn is
 * what the data-fastpath fuzz sweep uses: every pass exercises the
 * data memo while the oracle still diffs against the reference CPU).
 */
enum class DataFastPathMode
{
    kFollow,
    kForceOn,
    kForceOff,
};

/**
 * How the CPU's superblock tier is set during a fuzz run, same shape
 * as DataFastPathMode. kFollow toggles it with the fetch fast path
 * (the tier is inert without the decode cache anyway); kForceOn pins
 * the enable in both passes so the superblock sweep exercises the
 * tier on every fast pass while the oracle still diffs against the
 * reference CPU; kForceOff fuzzes the fast paths with the tier out
 * of the picture.
 */
enum class SuperblockMode
{
    kFollow,
    kForceOn,
    kForceOff,
};

/** The MachineConfig every fuzz pass runs under (4 MB DRAM). A
 *  fork parent handed to runFuzzWords must be a pristine machine of
 *  exactly this config. */
core::MachineConfig fuzzMachineConfig();

/**
 * Run an assembled program in lockstep against RefCpu with the fetch
 * fast path on and off; returns the first divergence (if any).
 * 'suppress_tag_clear' arms the hierarchy's behavioural fault (data
 * stores stop clearing tags) for oracle self-tests.
 * 'data_mode' selects the data fast path per pass (see above).
 * 'fork_parent', when non-null, must be a pristine (never-run)
 * fuzzMachineConfig() machine: each pass then runs on a lightweight
 * COW fork of it instead of a freshly constructed machine — exactly
 * the same simulated state, so the output is byte-identical.
 */
FuzzRunResult runFuzzWords(const std::vector<std::uint32_t> &words,
                           bool suppress_tag_clear = false,
                           std::uint64_t max_instructions = 20000,
                           DataFastPathMode data_mode =
                               DataFastPathMode::kFollow,
                           SuperblockMode sb_mode =
                               SuperblockMode::kFollow,
                           core::Machine *fork_parent = nullptr,
                           cache::PrefetchConfig prefetch = {});

/**
 * ddmin-style shrink: repeatedly delete chunks of ops while the
 * program still diverges with the tag-clear fault armed as given.
 * Returns the minimal op list found (the input spec's ops if nothing
 * can be removed).
 */
std::vector<FuzzOp> shrinkOps(const FuzzSpec &spec,
                              bool suppress_tag_clear,
                              std::uint64_t max_instructions = 20000,
                              DataFastPathMode data_mode =
                                  DataFastPathMode::kFollow,
                              SuperblockMode sb_mode =
                                  SuperblockMode::kFollow,
                              core::Machine *fork_parent = nullptr,
                              cache::PrefetchConfig prefetch = {});

/**
 * Render a .s reproducer: header comments (seed, divergence) plus one
 * ".word 0x... # addr: disasm" line per instruction. The output
 * round-trips through isa::assembleText at kFuzzCodeBase.
 */
std::string dumpReproducer(const std::vector<std::uint32_t> &words,
                           std::uint64_t seed,
                           const std::string &divergence);

/**
 * One whole fuzz sweep: the seed loop the cheri-fuzz CLI runs, hoisted
 * into the library so it can (a) fan seeds out across a worker pool
 * and (b) be byte-compared between serial and parallel runs in tests.
 */
struct FuzzCampaignConfig
{
    std::uint64_t seeds = 25;
    std::uint64_t start_seed = 1;
    bool shrink = false;
    /** Arm the hierarchy's skip-tag-clear fault (oracle self-test). */
    bool suppress_tag_clear = false;
    std::uint64_t max_instructions = 20000;
    DataFastPathMode data_mode = DataFastPathMode::kFollow;
    SuperblockMode sb_mode = SuperblockMode::kFollow;
    /** Omit per-seed "ok" lines (the CLI's --quiet). */
    bool quiet = false;
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    unsigned jobs = 1;
    /**
     * Draw each pass's machine as a COW fork of a per-worker
     * pristine parent instead of constructing a fresh 4 MB machine
     * per pass. Output is byte-identical either way (tests assert
     * it), so the sweep doubles as a fork correctness oracle.
     */
    bool fork_machines = false;
    /** Hardware prefetcher configuration for every fuzz machine
     *  (both oracle passes; default off). The lockstep oracle then
     *  doubles as a prefetch-transparency check: prefetched fills
     *  must never change architectural state. */
    cache::PrefetchConfig prefetch;
};

/** What one seed contributed to the sweep. */
struct FuzzSeedOutcome
{
    std::uint64_t seed = 0;
    bool diverged = false;
    /**
     * Exactly the text the CLI prints for this seed (ok line,
     * divergence report, shrink trace, reproducer) — empty for a
     * clean seed under quiet. Captured per seed so the parallel
     * scheduler can emit seeds in order, byte-identical to a serial
     * run.
     */
    std::string text;
};

/** Sweep results, ordered by seed. */
struct FuzzCampaignResult
{
    std::uint64_t diverged_count = 0;
    std::vector<FuzzSeedOutcome> outcomes;

    /** The trailing "cheri-fuzz: N/M seed(s) diverged" line. */
    std::string summaryLine() const;
    /** Full report: every seed's text in seed order + the summary. */
    std::string text() const;
};

/**
 * Run the sweep. Each seed is an independent job owning a private
 * Machine/RefCpu pair; config.jobs only changes wall-clock, never the
 * returned bytes (results are merged by seed index).
 */
FuzzCampaignResult runFuzzSeeds(const FuzzCampaignConfig &config);

} // namespace cheri::check

#endif // CHERI_CHECK_FUZZ_H
