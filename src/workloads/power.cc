/**
 * @file
 * power — the Olden power-system optimization benchmark: a fixed
 * hierarchy (root -> feeders -> laterals -> branches -> leaves) is
 * traversed repeatedly, passing prices down and summing demands up.
 * All values are 16.16 fixed point so results are exact across
 * compilation models. size_a scales the laterals per feeder,
 * size_b the optimization iterations.
 */

#include "workloads/olden.h"

namespace cheri::workloads
{

namespace
{

/** Node: {demand, price} words; {next, child} pointers. */
enum : unsigned
{
    kDemand = 0,
    kPrice = 1,
    kNext = 2,
    kChild = 3,
};

constexpr unsigned kFeeders = 4;
constexpr unsigned kBranchesPerLateral = 5;
constexpr unsigned kLeavesPerBranch = 10;
constexpr std::uint64_t kOne = 1 << 16; // 16.16 fixed point

/** Build a linked list of 'count' nodes, each with a child list
 *  created by 'make_child'. */
template <typename MakeChild>
ObjRef
buildList(Context &ctx, unsigned type, unsigned count,
          MakeChild &&make_child)
{
    ObjRef head = kNull;
    for (unsigned i = 0; i < count; ++i) {
        ctx.compute(kCallOverheadInstr);
        ObjRef node = ctx.alloc(type);
        ctx.storeWord(node, kDemand, 0);
        ctx.storeWord(node, kPrice, kOne);
        ctx.storePtr(node, kChild, make_child(i));
        ctx.storePtr(node, kNext, head);
        head = node;
    }
    return head;
}

/**
 * One optimization pass over a node list: push the price down,
 * collect demand up. Leaves compute demand = K / price.
 */
std::uint64_t
computeDemand(Context &ctx, ObjRef node, std::uint64_t price,
              std::uint64_t leaf_constant)
{
    std::uint64_t total = 0;
    for (; node != kNull; node = ctx.loadPtr(node, kNext)) {
        ctx.compute(kCallOverheadInstr);
        ctx.storeWord(node, kPrice, price);
        ObjRef child = ctx.loadPtr(node, kChild);
        std::uint64_t demand;
        if (child == kNull) {
            // Leaf: demand inversely proportional to price.
            demand = (leaf_constant << 16) / (price == 0 ? 1 : price);
            ctx.compute(6); // the division
        } else {
            // Interior: children see a slightly marked-up price.
            std::uint64_t child_price = price + price / 16;
            ctx.compute(3);
            demand = computeDemand(ctx, child, child_price,
                                   leaf_constant);
        }
        ctx.storeWord(node, kDemand, demand);
        total += demand;
        ctx.compute(2);
    }
    return total;
}

} // namespace

std::uint64_t
Power::run(Context &ctx, const WorkloadParams &params) const
{
    unsigned laterals =
        params.size_a == 0 ? 8 : static_cast<unsigned>(params.size_a);
    std::uint64_t iterations = params.size_b == 0 ? 4 : params.size_b;

    unsigned type = ctx.defineType({FieldKind::kWord, FieldKind::kWord,
                                    FieldKind::kPtr, FieldKind::kPtr});

    ctx.setPhase(Phase::kAlloc);
    ObjRef root = buildList(ctx, type, kFeeders, [&](unsigned) {
        return buildList(ctx, type, laterals, [&](unsigned) {
            return buildList(ctx, type, kBranchesPerLateral,
                             [&](unsigned) {
                                 return buildList(
                                     ctx, type, kLeavesPerBranch,
                                     [&](unsigned) { return kNull; });
                             });
        });
    });

    // Optimization loop: adjust the root price toward a demand target
    // (a deterministic stand-in for Olden's Newton iteration).
    ctx.setPhase(Phase::kCompute);
    std::uint64_t price = kOne;
    std::uint64_t demand = 0;
    const std::uint64_t target = 600 * kOne;
    for (std::uint64_t it = 0; it < iterations; ++it) {
        demand = computeDemand(ctx, root, price,
                               10 + params.seed % 7);
        ctx.compute(8);
        if (demand > target)
            price += price / 8;
        else
            price -= price / 8;
    }
    return demand + price;
}

WorkloadParams
Power::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    // Nodes are 32 B under MIPS; per lateral:
    // 1 + 5 branches + 50 leaves = 56 nodes; 4 feeders.
    std::uint64_t per_lateral = 56 * 32 * kFeeders;
    std::uint64_t laterals = heap_bytes / per_lateral;
    if (laterals == 0)
        laterals = 1;
    return {laterals, 4, 17};
}

} // namespace cheri::workloads
