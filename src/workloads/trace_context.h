/**
 * @file
 * Workload context that records the Section 7 limit-study trace: the
 * benchmark runs under the unprotected MIPS model and every malloc,
 * free, load and store is captured with its pointer classification,
 * exactly the events the paper extracted from its hardware traces.
 */

#ifndef CHERI_WORKLOADS_TRACE_CONTEXT_H
#define CHERI_WORKLOADS_TRACE_CONTEXT_H

#include "trace/trace.h"
#include "workloads/context.h"

namespace cheri::workloads
{

/** Records a baseline (MIPS) trace of a workload run. */
class TraceContext : public Context
{
  public:
    TraceContext() : Context(CompileModel::kMips) {}

    const trace::Trace &trace() const { return trace_; }

  protected:
    void
    onAlloc(std::uint64_t vaddr, std::uint64_t size) override
    {
        trace_.malloc(vaddr, size);
    }

    void
    onFree(std::uint64_t vaddr) override
    {
        trace_.free(vaddr);
    }

    void
    onLoad(std::uint64_t vaddr, std::uint64_t size, bool is_ptr,
           std::uint64_t target_size) override
    {
        if (is_ptr)
            trace_.loadPtr(vaddr, size, target_size);
        else
            trace_.load(vaddr, size);
    }

    void
    onStore(std::uint64_t vaddr, std::uint64_t size, bool is_ptr,
            std::uint64_t target_size, std::uint64_t /*target*/) override
    {
        if (is_ptr)
            trace_.storePtr(vaddr, size, target_size);
        else
            trace_.store(vaddr, size);
    }

    void
    onInstructions(std::uint64_t count) override
    {
        trace_.instructions(count);
    }

  private:
    trace::Trace trace_;
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_TRACE_CONTEXT_H
