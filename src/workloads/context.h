/**
 * @file
 * The workload execution context: Olden benchmark implementations are
 * written once against this interface and run under three compilation
 * models (Section 8) —
 *
 *   kMips   unprotected 64-bit MIPS: 8-byte pointers, no checks;
 *   kCcured CCured-style software enforcement: fat pointers plus
 *           explicit bounds-check instruction sequences;
 *   kCheri  CHERI capabilities: 32-byte pointers moved by single
 *           CLC/CSC accesses, hardware-implicit checks, one extra
 *           instruction per allocation to set bounds.
 *
 * The context lays out each object type according to the model's
 * pointer size and alignment (a bisort node is 24 bytes under MIPS
 * and 96 bytes under CHERI, exactly as Section 8 reports), maintains
 * a real backing store so the algorithms compute true results, and
 * reports every access to a subclass hook — the trace recorder for
 * the limit study, or the timing simulator for Figures 4 and 5.
 */

#ifndef CHERI_WORKLOADS_CONTEXT_H
#define CHERI_WORKLOADS_CONTEXT_H

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/logging.h"

namespace cheri::workloads
{

/** Which compiled form of the benchmark is being modeled. */
enum class CompileModel
{
    kMips,
    kCcured,
    kCheri,
    /** The proposed 128-bit production capability format (Section 7):
     *  16-byte pointers, still one transaction per move, hardware
     *  checks — the capability-size ablation of Section 8's closing
     *  observation that "CHERI will benefit from capability
     *  compression". */
    kCheri128,
};

/** Display name of a compilation model. */
const char *compileModelName(CompileModel model);

/** Execution phase for Figure 4's decomposition. */
enum class Phase
{
    kAlloc,
    kCompute,
};

/** Field kinds within an object type. */
enum class FieldKind
{
    kWord, ///< 8-byte integer data
    kPtr,  ///< pointer to another object
};

/** Reference to a simulated object (its virtual base address). */
using ObjRef = std::uint64_t;
constexpr ObjRef kNull = 0;

/** Per-model cost parameters (documented against Section 8). */
struct ModelCosts
{
    /** Bytes a pointer field occupies in memory. */
    std::uint64_t ptr_bytes = 8;
    /** Alignment of pointer fields (capabilities need 32). */
    std::uint64_t ptr_align = 8;
    /** Memory accesses needed to move one pointer. */
    unsigned ptr_refs = 1;
    /** Extra check instructions charged per object access. */
    std::uint64_t check_instrs = 0;
    /** Baseline allocator instructions per malloc: a realistic
     *  free-list malloc() costs on the order of a hundred
     *  instructions, identical across models (Section 4.2's point
     *  that allocation amortizes kernel entry). */
    std::uint64_t malloc_instrs = 120;
    /** Extra per-allocation setup (bounds/fat-pointer init). */
    std::uint64_t malloc_extra_instrs = 0;
};

/** Address-generation/loop instructions charged with every memory
 *  access: compiled pointer-chasing code spends a few ALU
 *  instructions per load or store, in every compilation model. */
constexpr std::uint64_t kAccessOverheadInstr = 2;

/** Call/return and frame instructions charged by workloads at each
 *  recursive call site, modeling compiled function prologues. */
constexpr std::uint64_t kCallOverheadInstr = 8;

/** Costs for a compilation model. */
ModelCosts modelCosts(CompileModel model);

/**
 * Abstract workload context. Subclasses observe the access stream
 * through the protected hooks.
 */
class Context
{
  public:
    explicit Context(CompileModel model);
    virtual ~Context() = default;

    CompileModel model() const { return model_; }
    const ModelCosts &costs() const { return costs_; }

    /** Define an object type from its field sequence. */
    unsigned defineType(std::vector<FieldKind> fields);

    /** Allocate one object of a defined type. */
    ObjRef alloc(unsigned type_id);

    /** Allocate an array of 'count' elements of the given kind. */
    ObjRef allocArray(FieldKind element, std::uint64_t count);

    /** Release an object (addresses are never reused; Section 11). */
    void free(ObjRef obj);

    // --- typed field access ---
    std::uint64_t loadWord(ObjRef obj, unsigned field);
    void storeWord(ObjRef obj, unsigned field, std::uint64_t value);
    ObjRef loadPtr(ObjRef obj, unsigned field);
    void storePtr(ObjRef obj, unsigned field, ObjRef value);

    // --- array element access ---
    std::uint64_t loadWordAt(ObjRef array, std::uint64_t index);
    void storeWordAt(ObjRef array, std::uint64_t index,
                     std::uint64_t value);
    ObjRef loadPtrAt(ObjRef array, std::uint64_t index);
    void storePtrAt(ObjRef array, std::uint64_t index, ObjRef value);

    /** Charge 'count' non-memory (ALU/branch) instructions. */
    void compute(std::uint64_t count);

    /** Switch Figure 4 phase accounting. */
    virtual void setPhase(Phase phase) { phase_ = phase; }
    Phase phase() const { return phase_; }

    /** Total simulated heap bytes allocated so far. */
    std::uint64_t heapBytes() const { return heap_bytes_; }
    /** Number of allocations so far. */
    std::uint64_t allocCount() const { return alloc_count_; }

  protected:
    // Subclass observation hooks. Sizes are in bytes; is_ptr marks
    // pointer moves; target_size is the pointee allocation size for
    // pointer values (0 for null/unknown). onStore additionally
    // carries the stored pointer value itself (the pointee's simulated
    // base address; 0 for data stores and null pointers) so a timing
    // context can write the real capability image — base and length —
    // into simulated memory, where the pointer-chase prefetcher
    // decodes it on fill.
    virtual void onAlloc(std::uint64_t vaddr, std::uint64_t size) = 0;
    virtual void onFree(std::uint64_t vaddr) = 0;
    virtual void onLoad(std::uint64_t vaddr, std::uint64_t size,
                        bool is_ptr, std::uint64_t target_size) = 0;
    virtual void onStore(std::uint64_t vaddr, std::uint64_t size,
                         bool is_ptr, std::uint64_t target_size,
                         std::uint64_t target) = 0;
    virtual void onInstructions(std::uint64_t count) = 0;

    /** Allocation size of the object at base vaddr (0 if unknown). */
    std::uint64_t allocationSize(ObjRef obj) const;

  private:
    struct TypeLayout
    {
        std::vector<FieldKind> fields;
        std::vector<std::uint64_t> offsets;
        std::uint64_t size = 0;
    };

    struct ArrayInfo
    {
        FieldKind element;
        std::uint64_t stride;
    };

    std::uint64_t fieldAddress(ObjRef obj, unsigned field,
                               FieldKind expected) const;
    std::uint64_t elementAddress(ObjRef array, std::uint64_t index,
                                 FieldKind &kind_out) const;
    ObjRef allocateRaw(std::uint64_t size);

    /** Raw backing store (word granular). */
    std::uint64_t loadRaw(std::uint64_t vaddr) const;
    void storeRaw(std::uint64_t vaddr, std::uint64_t value);

    CompileModel model_;
    ModelCosts costs_;
    Phase phase_ = Phase::kAlloc;

    std::vector<TypeLayout> types_;
    std::unordered_map<ObjRef, unsigned> obj_types_;
    std::unordered_map<ObjRef, ArrayInfo> arrays_;
    std::unordered_map<ObjRef, std::uint64_t> alloc_sizes_;
    /** Flat word-granular arena backing the bump-allocated heap. */
    std::vector<std::uint64_t> arena_;

    std::uint64_t next_vaddr_;
    std::uint64_t heap_bytes_ = 0;
    std::uint64_t alloc_count_ = 0;
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_CONTEXT_H
