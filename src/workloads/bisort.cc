/**
 * @file
 * bisort — adaptive bitonic sort over a perfect binary tree plus a
 * spare value, following the Olden benchmark's Bimerge/Bisort
 * recursion (Bilardi & Nicolau's algorithm). The access pattern is
 * the one Section 8 characterizes: tree traversal with value swaps,
 * dominated by cache misses once the tree outgrows the caches.
 */

#include "workloads/olden.h"

#include "support/rng.h"

namespace cheri::workloads
{

namespace
{

/** Field indices of a bisort node: {value, left, right}. */
enum : unsigned
{
    kValue = 0,
    kLeft = 1,
    kRight = 2,
};

/** Build a perfect tree of 'levels' levels with random values. */
ObjRef
buildTree(Context &ctx, unsigned type, unsigned levels,
          support::Xoshiro256 &rng)
{
    if (levels == 0)
        return kNull;
    ctx.compute(kCallOverheadInstr);
    ObjRef node = ctx.alloc(type);
    // Wide keys: the adaptive bitonic merge assumes (effectively)
    // distinct values, as the original's random() keys are.
    ctx.storeWord(node, kValue, rng.next() >> 1);
    ctx.storePtr(node, kLeft, buildTree(ctx, type, levels - 1, rng));
    ctx.storePtr(node, kRight, buildTree(ctx, type, levels - 1, rng));
    return node;
}

/**
 * Bitonic merge: (inorder(root), spare) is bitonic; make it sorted
 * ascending when dir is false, descending when true. Returns the new
 * spare value. The down-phase follows Olden's SwapValLeft /
 * SwapValRight: values are exchanged together with one pair of
 * subtree pointers, which is what makes the block exchange O(log n).
 */
std::uint64_t
bimerge(Context &ctx, ObjRef root, std::uint64_t spare, bool dir)
{
    std::uint64_t value = ctx.loadWord(root, kValue);
    bool rightexchange = (value > spare) != dir;
    ctx.compute(kCallOverheadInstr + 3);
    if (rightexchange) {
        ctx.storeWord(root, kValue, spare);
        spare = value;
    }

    ObjRef pl = ctx.loadPtr(root, kLeft);
    ObjRef pr = ctx.loadPtr(root, kRight);
    while (pl != kNull) {
        std::uint64_t lv = ctx.loadWord(pl, kValue);
        std::uint64_t rv = ctx.loadWord(pr, kValue);
        ObjRef pll = ctx.loadPtr(pl, kLeft);
        ObjRef plr = ctx.loadPtr(pl, kRight);
        ObjRef prl = ctx.loadPtr(pr, kLeft);
        ObjRef prr = ctx.loadPtr(pr, kRight);
        bool elementexchange = (lv > rv) != dir;
        ctx.compute(4);
        if (rightexchange) {
            if (elementexchange) {
                // SwapValRight: values + right subtrees.
                ctx.storeWord(pl, kValue, rv);
                ctx.storeWord(pr, kValue, lv);
                ctx.storePtr(pl, kRight, prr);
                ctx.storePtr(pr, kRight, plr);
                pl = pll;
                pr = prl;
            } else {
                pl = plr;
                pr = prr;
            }
        } else {
            if (elementexchange) {
                // SwapValLeft: values + left subtrees.
                ctx.storeWord(pl, kValue, rv);
                ctx.storeWord(pr, kValue, lv);
                ctx.storePtr(pl, kLeft, prl);
                ctx.storePtr(pr, kLeft, pll);
                pl = plr;
                pr = prr;
            } else {
                pl = pll;
                pr = prl;
            }
        }
    }

    ObjRef left = ctx.loadPtr(root, kLeft);
    if (left != kNull) {
        std::uint64_t root_value = ctx.loadWord(root, kValue);
        ctx.storeWord(root, kValue,
                      bimerge(ctx, left, root_value, dir));
        spare = bimerge(ctx, ctx.loadPtr(root, kRight), spare, dir);
    }
    return spare;
}

/** Bitonic sort of (inorder(root), spare); returns the new spare. */
std::uint64_t
bisort(Context &ctx, ObjRef root, std::uint64_t spare, bool dir)
{
    ObjRef left = ctx.loadPtr(root, kLeft);
    if (left == kNull) {
        ctx.compute(kCallOverheadInstr + 3);
        if ((ctx.loadWord(root, kValue) > spare) != dir) {
            std::uint64_t value = ctx.loadWord(root, kValue);
            ctx.storeWord(root, kValue, spare);
            spare = value;
        }
    } else {
        std::uint64_t root_value = ctx.loadWord(root, kValue);
        ctx.storeWord(root, kValue, bisort(ctx, left, root_value, dir));
        std::uint64_t val =
            bisort(ctx, ctx.loadPtr(root, kRight), spare, !dir);
        spare = bimerge(ctx, root, val, dir);
    }
    return spare;
}

/** In-order checksum (order-sensitive mix). */
std::uint64_t
checksum(Context &ctx, ObjRef root, std::uint64_t acc)
{
    if (root == kNull)
        return acc;
    acc = checksum(ctx, ctx.loadPtr(root, kLeft), acc);
    acc = acc * 1099511628211ULL + ctx.loadWord(root, kValue);
    return checksum(ctx, ctx.loadPtr(root, kRight), acc);
}

} // namespace

std::uint64_t
Bisort::run(Context &ctx, const WorkloadParams &params) const
{
    unsigned type = ctx.defineType(
        {FieldKind::kWord, FieldKind::kPtr, FieldKind::kPtr});

    // Round the requested size down to a perfect tree.
    unsigned levels = 1;
    while ((2ULL << levels) - 1 <= params.size_a)
        ++levels;

    support::Xoshiro256 rng(params.seed);
    ctx.setPhase(Phase::kAlloc);
    ObjRef root = buildTree(ctx, type, levels, rng);
    std::uint64_t spare = rng.next() >> 1;

    ctx.setPhase(Phase::kCompute);
    spare = bisort(ctx, root, spare, /*dir=*/false);
    return checksum(ctx, root, spare);
}

WorkloadParams
Bisort::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    // A MIPS node is 24 bytes (Section 8).
    std::uint64_t nodes = heap_bytes / 24;
    if (nodes < 3)
        nodes = 3;
    return {nodes, 0, 7};
}

} // namespace cheri::workloads
