/**
 * @file
 * perimeter — computes the perimeter of a raster region stored as a
 * quadtree, using Samet's equal-or-greater adjacent-neighbour
 * algorithm: neighbours are located by walking up parent pointers and
 * mirroring back down, so the benchmark is dominated by short
 * pointer chases in every direction through the tree.
 *
 * The image is a deterministic disk: a pixel is black when it lies
 * inside the inscribed circle, mirroring the original benchmark's
 * synthetic image.
 */

#include "workloads/olden.h"

#include <algorithm>

namespace cheri::workloads
{

namespace
{

/** Node colors. */
enum : std::uint64_t
{
    kWhite = 0,
    kBlack = 1,
    kGrey = 2,
};

/** Quadrants (child slots). */
constexpr std::uint64_t kNw = 0;
constexpr std::uint64_t kNe = 1;
constexpr std::uint64_t kSw = 2;
constexpr std::uint64_t kSe = 3;
constexpr std::uint64_t kNone = 4; // the root has no quadrant

/** Sides for neighbour queries. */
enum class Side
{
    kNorth,
    kEast,
    kSouth,
    kWest,
};

/** Fields: {color, quadrant} words; {parent, nw, ne, sw, se} ptrs. */
enum : unsigned
{
    kColor = 0,
    kQuad = 1,
    kParent = 2,
    kChild0 = 3, // nw; children are kChild0 + quadrant
};

struct Image
{
    std::uint64_t size; ///< image is size x size pixels

    /** Color of the square at (x, y) with side 'side': white, black
     *  or grey (mixed), by exact square-vs-disk intersection. */
    std::uint64_t
    classify(std::uint64_t x, std::uint64_t y, std::uint64_t side) const
    {
        std::int64_t cx = static_cast<std::int64_t>(size) / 2;
        std::int64_t cy = cx;
        std::int64_t r = static_cast<std::int64_t>(size) * 3 / 8;
        std::int64_t x0 = static_cast<std::int64_t>(x);
        std::int64_t y0 = static_cast<std::int64_t>(y);
        std::int64_t x1 = x0 + static_cast<std::int64_t>(side);
        std::int64_t y1 = y0 + static_cast<std::int64_t>(side);

        // Nearest point of the square to the disk center.
        std::int64_t nx = std::clamp(cx, x0, x1);
        std::int64_t ny = std::clamp(cy, y0, y1);
        std::int64_t min2 = (nx - cx) * (nx - cx) + (ny - cy) * (ny - cy);

        // Farthest corner from the center.
        std::int64_t fx = (cx - x0 > x1 - cx) ? x0 : x1;
        std::int64_t fy = (cy - y0 > y1 - cy) ? y0 : y1;
        std::int64_t max2 = (fx - cx) * (fx - cx) + (fy - cy) * (fy - cy);

        if (max2 <= r * r)
            return kBlack; // fully inside the disk
        if (min2 >= r * r)
            return kWhite; // fully outside
        return kGrey;
    }
};

ObjRef
buildQuadtree(Context &ctx, unsigned type, const Image &image,
              std::uint64_t x, std::uint64_t y, std::uint64_t side,
              ObjRef parent, std::uint64_t quadrant)
{
    ctx.compute(kCallOverheadInstr);
    ObjRef node = ctx.alloc(type);
    ctx.storeWord(node, kQuad, quadrant);
    ctx.storePtr(node, kParent, parent);

    std::uint64_t color = image.classify(x, y, side);
    ctx.compute(12); // corner classification arithmetic
    if (color == kGrey && side == 1)
        color = kBlack; // pixel granularity reached
    ctx.storeWord(node, kColor, color);

    if (color == kGrey) {
        std::uint64_t half = side / 2;
        ctx.storePtr(node, kChild0 + kNw,
                     buildQuadtree(ctx, type, image, x, y, half, node,
                                   kNw));
        ctx.storePtr(node, kChild0 + kNe,
                     buildQuadtree(ctx, type, image, x + half, y, half,
                                   node, kNe));
        ctx.storePtr(node, kChild0 + kSw,
                     buildQuadtree(ctx, type, image, x, y + half, half,
                                   node, kSw));
        ctx.storePtr(node, kChild0 + kSe,
                     buildQuadtree(ctx, type, image, x + half, y + half,
                                   half, node, kSe));
    } else {
        for (unsigned c = 0; c < 4; ++c)
            ctx.storePtr(node, kChild0 + c, kNull);
    }
    return node;
}

/** Is 'quadrant' adjacent to 'side' of its parent? */
bool
adjacent(Side side, std::uint64_t quadrant)
{
    switch (side) {
      case Side::kNorth: return quadrant == kNw || quadrant == kNe;
      case Side::kSouth: return quadrant == kSw || quadrant == kSe;
      case Side::kWest: return quadrant == kNw || quadrant == kSw;
      case Side::kEast: return quadrant == kNe || quadrant == kSe;
    }
    return false;
}

/** Mirror a quadrant across the axis perpendicular to 'side'. */
std::uint64_t
reflect(Side side, std::uint64_t quadrant)
{
    switch (side) {
      case Side::kNorth:
      case Side::kSouth:
        // swap north/south
        switch (quadrant) {
          case kNw: return kSw;
          case kNe: return kSe;
          case kSw: return kNw;
          case kSe: return kNe;
        }
        break;
      case Side::kEast:
      case Side::kWest:
        // swap east/west
        switch (quadrant) {
          case kNw: return kNe;
          case kNe: return kNw;
          case kSw: return kSe;
          case kSe: return kSw;
        }
        break;
    }
    return quadrant;
}

/**
 * Samet: the equal-or-greater-size neighbour of 'node' on 'side'
 * (kNull when outside the image).
 */
ObjRef
gtEqualAdjNeighbor(Context &ctx, ObjRef node, Side side)
{
    ObjRef parent = ctx.loadPtr(node, kParent);
    std::uint64_t quadrant = ctx.loadWord(node, kQuad);
    ctx.compute(kCallOverheadInstr + 3);

    ObjRef q;
    if (parent != kNull && adjacent(side, quadrant))
        q = gtEqualAdjNeighbor(ctx, parent, side);
    else
        q = parent;

    if (q != kNull && ctx.loadWord(q, kColor) == kGrey) {
        ctx.compute(2);
        return ctx.loadPtr(q, kChild0 + reflect(side, quadrant));
    }
    return q;
}

/** Children of a grey node on a given side (the two facing us). */
void
sideChildren(Side side, std::uint64_t &a, std::uint64_t &b)
{
    switch (side) {
      case Side::kNorth: a = kNw; b = kNe; break;
      case Side::kSouth: a = kSw; b = kSe; break;
      case Side::kWest: a = kNw; b = kSw; break;
      case Side::kEast: a = kNe; b = kSe; break;
    }
}

/**
 * Length of the border that white descendants of 'node' contribute
 * along 'side', where 'node' has edge length 'size'.
 */
std::uint64_t
sumAdjacent(Context &ctx, ObjRef node, Side side, std::uint64_t size)
{
    std::uint64_t color = ctx.loadWord(node, kColor);
    ctx.compute(kCallOverheadInstr + 2);
    if (color == kGrey) {
        std::uint64_t qa = kNw, qb = kNe;
        sideChildren(side, qa, qb);
        return sumAdjacent(ctx, ctx.loadPtr(node, kChild0 + qa), side,
                           size / 2) +
               sumAdjacent(ctx, ctx.loadPtr(node, kChild0 + qb), side,
                           size / 2);
    }
    return color == kWhite ? size : 0;
}

/** Total perimeter of the black region in the subtree. */
std::uint64_t
perimeter(Context &ctx, ObjRef node, std::uint64_t size)
{
    std::uint64_t color = ctx.loadWord(node, kColor);
    ctx.compute(kCallOverheadInstr + 2);
    if (color == kGrey) {
        std::uint64_t half = size / 2;
        std::uint64_t sum = 0;
        for (unsigned c = 0; c < 4; ++c)
            sum += perimeter(ctx, ctx.loadPtr(node, kChild0 + c), half);
        return sum;
    }
    if (color != kBlack)
        return 0;

    std::uint64_t perim = 0;
    const Side sides[4] = {Side::kNorth, Side::kEast, Side::kSouth,
                           Side::kWest};
    const Side opposite[4] = {Side::kSouth, Side::kWest, Side::kNorth,
                              Side::kEast};
    for (unsigned s = 0; s < 4; ++s) {
        ObjRef neighbor = gtEqualAdjNeighbor(ctx, node, sides[s]);
        ctx.compute(2);
        if (neighbor == kNull) {
            perim += size; // image boundary
        } else {
            std::uint64_t ncolor = ctx.loadWord(neighbor, kColor);
            if (ncolor == kWhite)
                perim += size;
            else if (ncolor == kGrey)
                perim += sumAdjacent(ctx, neighbor, opposite[s], size);
        }
    }
    return perim;
}

} // namespace

std::uint64_t
Perimeter::run(Context &ctx, const WorkloadParams &params) const
{
    unsigned levels = static_cast<unsigned>(params.size_a);
    if (levels == 0)
        levels = 1;
    if (levels > 16)
        levels = 16;

    unsigned type = ctx.defineType(
        {FieldKind::kWord, FieldKind::kWord, FieldKind::kPtr,
         FieldKind::kPtr, FieldKind::kPtr, FieldKind::kPtr,
         FieldKind::kPtr});

    Image image{1ULL << levels};

    ctx.setPhase(Phase::kAlloc);
    ObjRef root = buildQuadtree(ctx, type, image, 0, 0, image.size,
                                kNull, kNone);

    ctx.setPhase(Phase::kCompute);
    return perimeter(ctx, root, image.size);
}

WorkloadParams
Perimeter::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    // Under MIPS a node is 2 words + 5 pointers = 56 bytes; the disk
    // quadtree at depth L has roughly 6 * 2^L nodes (perimeter-
    // proportional growth).
    std::uint64_t levels = 1;
    while (levels < 16 &&
           6 * (1ULL << (levels + 1)) * 56 <= heap_bytes)
        ++levels;
    return {levels, 0, 5};
}

} // namespace cheri::workloads
