/**
 * @file
 * vm — the managed-runtime churn profile against the workload
 * Context. One round builds a linked list of pair records and folds
 * it; the round boundary drops the whole list, and a semispace-style
 * collector evacuates the survivors whenever the object budget of
 * the active space runs out. The profile is what distinguishes a
 * managed guest from the Olden kernels: allocation-dominated, with
 * periodic burst copies of every live object.
 */

#include "workloads/vm_guest.h"

namespace cheri::workloads
{

namespace
{

enum : unsigned
{
    kKind = 0,
    kValue = 1,
    kNext = 2,
};

} // namespace

std::uint64_t
VmChurn::run(Context &ctx, const WorkloadParams &params) const
{
    unsigned pair = ctx.defineType(
        {FieldKind::kWord, FieldKind::kWord, FieldKind::kPtr});
    std::uint64_t rounds = params.size_a ? params.size_a : 1;
    std::uint64_t units = params.size_b ? params.size_b : 1;
    // Headroom above the peak live count, like the guest's semispace:
    // tight enough that every round's garbage forces collections.
    std::uint64_t capacity = units + units / 2 + 2;

    std::uint64_t result = 0;
    std::uint64_t allocations = 0;
    std::uint64_t collections = 0;
    std::uint64_t in_space = 0; // objects (live or dead) in the space
    ObjRef head = kNull;

    // Evacuate the live list: a Cheney copy is one fresh allocation
    // plus a field-for-field move per survivor; the stale from-space
    // object is released. Mutator allocations are counted; copies
    // are the collector's own and are not.
    auto collect = [&] {
        ObjRef prev = kNull;
        ObjRef scan = head;
        head = kNull;
        std::uint64_t live = 0;
        while (scan != kNull) {
            ctx.compute(kCallOverheadInstr);
            ObjRef to = ctx.alloc(pair);
            ctx.storeWord(to, kKind, ctx.loadWord(scan, kKind));
            ctx.storeWord(to, kValue, ctx.loadWord(scan, kValue));
            ctx.storePtr(to, kNext, kNull);
            ObjRef next = ctx.loadPtr(scan, kNext);
            ctx.free(scan);
            if (prev == kNull)
                head = to;
            else
                ctx.storePtr(prev, kNext, to);
            prev = to;
            scan = next;
            ++live;
        }
        in_space = live;
        ++collections;
    };

    for (std::uint64_t round = 0; round < rounds; ++round) {
        head = kNull;
        for (std::uint64_t i = 1; i <= units; ++i) {
            if (in_space + 1 > capacity)
                collect();
            ctx.setPhase(Phase::kAlloc);
            ObjRef node = ctx.alloc(pair);
            ++allocations;
            ++in_space;
            ctx.storeWord(node, kKind, 1);
            ctx.storeWord(node, kValue, i);
            ctx.storePtr(node, kNext, head);
            head = node;
        }
        ctx.setPhase(Phase::kCompute);
        for (ObjRef p = head; p != kNull; p = ctx.loadPtr(p, kNext)) {
            result += ctx.loadWord(p, kValue);
            ctx.compute(2); // add + loop branch
        }
        // The round boundary drops the whole list: the objects stay
        // resident in the active space as garbage until the next
        // collection skips over them.
        head = kNull;
    }

    // The same fold the bytecode guest computes at kHalt.
    return (result * 31 + collections) * 31 + allocations;
}

WorkloadParams
VmChurn::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    // A pair record is 24 bytes under MIPS; roughly half the
    // allocations are collector copies, so budget mutator rounds at
    // half the node count.
    std::uint64_t units = 16;
    std::uint64_t nodes = heap_bytes / 24;
    std::uint64_t rounds = nodes / (2 * units);
    if (rounds == 0)
        rounds = 1;
    return {rounds, units, 3};
}

} // namespace cheri::workloads
