/**
 * @file
 * Experiment drivers tying workloads, traces, models, and the timing
 * simulator into the paper's three quantitative studies:
 *
 *  - Figure 3: the trace-driven limit study of eight protection
 *    models over the Olden suite;
 *  - Figure 4: execution-time overhead of CCured and CHERI versus
 *    unprotected MIPS for four benchmarks, split into allocation and
 *    computation phases;
 *  - Figure 5: CHERI slowdown as the working set sweeps across the
 *    L1, L2 and TLB capacities.
 *
 * The bench binaries print these results; the test suite checks their
 * invariants (checksum equality across models, expected orderings).
 */

#ifndef CHERI_WORKLOADS_EXPERIMENTS_H
#define CHERI_WORKLOADS_EXPERIMENTS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "models/protection_model.h"
#include "workloads/timing_context.h"
#include "workloads/workload.h"

namespace cheri::workloads
{

/** Figure 3: one protection model's overheads per workload + mean. */
struct LimitStudyModelResult
{
    std::string model;
    std::vector<models::Overheads> per_workload;
    models::Overheads mean;
};

/** Figure 3: the whole study. */
struct LimitStudyResult
{
    std::vector<std::string> workloads;
    std::vector<LimitStudyModelResult> models;
};

/**
 * Run the limit study: trace every Olden workload under the MIPS
 * baseline, then evaluate every Section 7 model on each trace.
 * paper_scale selects the paper's benchmark parameters (slower).
 */
LimitStudyResult runLimitStudy(bool paper_scale = false);

/** Figure 4: one benchmark's per-model costs. */
struct FpgaComparisonEntry
{
    std::string benchmark;
    struct PerModel
    {
        PhaseCosts alloc;
        PhaseCosts compute;
        std::uint64_t checksum = 0;
    };
    PerModel mips;
    PerModel ccured;
    PerModel cheri;
};

/**
 * Run the Figure 4 comparison over bisort, mst, treeadd and
 * perimeter. Checksums are verified identical across models.
 */
std::vector<FpgaComparisonEntry>
runFpgaComparison(bool paper_scale = false);

/** Figure 5: CHERI slowdown per heap size for one benchmark. */
struct HeapScalingSeries
{
    std::string benchmark;
    /** (heap KB, fractional slowdown) points. */
    std::vector<std::pair<std::uint64_t, double>> points;
};

/** Run the Figure 5 sweep (default: 4 KB to 1024 KB, doubling). */
std::vector<HeapScalingSeries> runHeapScaling(
    const std::vector<std::uint64_t> &heap_kb = {4, 8, 16, 32, 64, 128,
                                                 256, 512, 1024});

/** Capability-size ablation: one benchmark row. */
struct CapSizeAblationEntry
{
    std::string benchmark;
    std::uint64_t mips_cycles = 0;
    std::uint64_t cheri256_cycles = 0;
    std::uint64_t cheri128_cycles = 0;
};

/**
 * Ablation of Section 8's closing observation ("CHERI will benefit
 * from capability compression"): run the four FPGA benchmarks under
 * MIPS, 256-bit CHERI, and the proposed 128-bit format.
 */
std::vector<CapSizeAblationEntry>
runCapSizeAblation(bool paper_scale = false);

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_EXPERIMENTS_H
