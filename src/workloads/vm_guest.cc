#include "workloads/vm_guest.h"

#include <array>
#include <deque>

#include "isa/assembler.h"
#include "os/cap_allocator.h"
#include "support/logging.h"
#include "tlb/page_table.h"

namespace cheri::workloads
{

namespace
{

using isa::Assembler;
using namespace isa::reg;

/** Local-variable slots at the bottom of the slot array. */
constexpr unsigned kLocalCount = 6;
/** Operand-stack slots above the locals. */
constexpr unsigned kStackSlots = 16;
constexpr unsigned kTotalSlots = kLocalCount + kStackSlots;
/** One bytecode instruction: opcode dword + immediate dword. */
constexpr std::uint64_t kBytecodeInstBytes = 16;

/** CHERI model: one slot holds a full capability image. */
constexpr std::uint64_t kCapSlotBytes = 32;
constexpr std::uint64_t kCapObjBytes = 3 * kCapSlotBytes;
/** Integer models: one slot holds a raw or SMI-encoded dword. */
constexpr std::uint64_t kIntSlotBytes = 8;
constexpr std::uint64_t kIntObjBytes = 3 * kIntSlotBytes;

/** Distinct poison results so a defensive exit is attributable. */
constexpr std::int32_t kOomPoison = 0x000D00D;
constexpr std::int32_t kBadOpPoison = 0x00BAD07;
constexpr std::int32_t kTagLossPoison = 0x07A9055;
constexpr std::int32_t kBoundsPoison = 0x000B0D5;

std::uint64_t
objBytes(VmModel model)
{
    return model == VmModel::kCheri ? kCapObjBytes : kIntObjBytes;
}

// ---------------------------------------------------------------------
// Bytecode programs
// ---------------------------------------------------------------------

// Local-variable slot assignments shared by both programs.
constexpr unsigned kLocAcc = 0;
constexpr unsigned kLocHead = 1; // list head / tree root
constexpr unsigned kLocI = 2;
constexpr unsigned kLocRound = 3;
constexpr unsigned kLocCur = 4;
constexpr unsigned kLocTmp = 5;

/**
 * listChurn: every round rebuilds a fresh `units`-pair list (the
 * previous round's list becomes garbage) and folds its values into
 * acc by walking next-links. Result: rounds * units * (units+1) / 2.
 */
std::vector<VmAssembler::Inst>
buildListChurn(unsigned rounds, unsigned units)
{
    VmAssembler b;
    auto outer = b.newLabel();
    auto build = b.newLabel();
    auto walk = b.newLabel();
    auto walk_done = b.newLabel();

    b.pushi(0);
    b.storel(kLocAcc);
    b.pushi(static_cast<std::int32_t>(rounds));
    b.storel(kLocRound);

    b.bind(outer);
    b.pushnull();
    b.storel(kLocHead);
    b.pushi(static_cast<std::int32_t>(units));
    b.storel(kLocI);

    b.bind(build); // head = pair{i, head}
    b.loadl(kLocI);
    b.loadl(kLocHead);
    b.newpair();
    b.storel(kLocHead);
    b.loadl(kLocI);
    b.pushi(-1);
    b.add();
    b.storel(kLocI);
    b.loadl(kLocI);
    b.bnz(build);

    b.loadl(kLocHead);
    b.storel(kLocCur);
    b.bind(walk); // acc += cur.f0; cur = cur.f1
    b.loadl(kLocCur);
    b.isnull();
    b.bnz(walk_done);
    b.loadl(kLocCur);
    b.getf0();
    b.loadl(kLocAcc);
    b.add();
    b.storel(kLocAcc);
    b.loadl(kLocCur);
    b.getf1();
    b.storel(kLocCur);
    b.jmp(walk);

    b.bind(walk_done);
    b.loadl(kLocRound);
    b.pushi(-1);
    b.add();
    b.storel(kLocRound);
    b.loadl(kLocRound);
    b.bnz(outer);

    b.loadl(kLocAcc);
    b.halt();
    return b.finish();
}

/**
 * treeChurn: every round rebuilds a spine of `units` nodes whose
 * right children are value pairs (left child chains the spine down to
 * a base pair{0, null}), then walks it discriminating node/pair with
 * ISPAIR. Same arithmetic result as listChurn, twice the live graph.
 */
std::vector<VmAssembler::Inst>
buildTreeChurn(unsigned rounds, unsigned units)
{
    VmAssembler b;
    auto outer = b.newLabel();
    auto build = b.newLabel();
    auto walk = b.newLabel();
    auto walk_pair = b.newLabel();
    auto walk_done = b.newLabel();

    b.pushi(0);
    b.storel(kLocAcc);
    b.pushi(static_cast<std::int32_t>(rounds));
    b.storel(kLocRound);

    b.bind(outer); // root = pair{0, null}
    b.pushi(0);
    b.pushnull();
    b.newpair();
    b.storel(kLocHead);
    b.pushi(static_cast<std::int32_t>(units));
    b.storel(kLocI);

    b.bind(build); // root = node{root, pair{i, null}}
    b.loadl(kLocI);
    b.pushnull();
    b.newpair();
    b.storel(kLocTmp);
    b.loadl(kLocHead);
    b.loadl(kLocTmp);
    b.newnode();
    b.storel(kLocHead);
    b.loadl(kLocI);
    b.pushi(-1);
    b.add();
    b.storel(kLocI);
    b.loadl(kLocI);
    b.bnz(build);

    b.loadl(kLocHead);
    b.storel(kLocCur);
    b.bind(walk);
    b.loadl(kLocCur);
    b.isnull();
    b.bnz(walk_done);
    b.loadl(kLocCur);
    b.ispair();
    b.bnz(walk_pair);
    // node: acc += cur.f1.f0 (right leaf's value); cur = cur.f0
    b.loadl(kLocCur);
    b.getf1();
    b.getf0();
    b.loadl(kLocAcc);
    b.add();
    b.storel(kLocAcc);
    b.loadl(kLocCur);
    b.getf0();
    b.storel(kLocCur);
    b.jmp(walk);
    b.bind(walk_pair); // pair: acc += cur.f0; cur = cur.f1 (null)
    b.loadl(kLocCur);
    b.getf0();
    b.loadl(kLocAcc);
    b.add();
    b.storel(kLocAcc);
    b.loadl(kLocCur);
    b.getf1();
    b.storel(kLocCur);
    b.jmp(walk);

    b.bind(walk_done);
    b.loadl(kLocRound);
    b.pushi(-1);
    b.add();
    b.storel(kLocRound);
    b.loadl(kLocRound);
    b.bnz(outer);

    b.loadl(kLocAcc);
    b.halt();
    return b.finish();
}

std::vector<VmAssembler::Inst>
buildProgram(const VmConfig &config)
{
    if (config.rounds == 0 || config.units == 0)
        support::fatal("vm program needs rounds > 0 and units > 0");
    return config.program == VmProgram::kListChurn
               ? buildListChurn(config.rounds, config.units)
               : buildTreeChurn(config.rounds, config.units);
}

// ---------------------------------------------------------------------
// Region carving via the capability allocator
// ---------------------------------------------------------------------

/** Absolute guest addresses of the VM's four memory regions. */
struct VmRegions
{
    std::uint64_t bytecode = 0;
    std::uint64_t stack = 0;
    std::uint64_t space_a = 0;
    std::uint64_t space_b = 0;
};

/**
 * Carve the VM's regions out of the guest heap with os::CapAllocator,
 * deliberately beginning with an allocate/free cycle so the bytecode
 * region reuses a freed block — the first guest setup path to
 * exercise allocator reuse rather than pure bump allocation.
 */
VmRegions
carveRegions(const GuestLayout &layout, std::uint64_t bc_bytes,
             std::uint64_t stack_bytes, std::uint64_t space_bytes)
{
    cap::Capability heap = cap::Capability::make(
        layout.heap_base, layout.heap_bytes, cap::kPermAll);
    os::CapAllocator allocator(heap, os::ReusePolicy::kFirstFit);

    auto scratch = allocator.allocate(4096);
    if (!scratch)
        support::fatal("vm region carve: scratch allocation failed");
    allocator.free(*scratch);

    auto grab = [&](std::uint64_t bytes) {
        auto capability = allocator.allocate(bytes);
        if (!capability)
            support::fatal("vm region carve: allocation of %llu failed",
                           static_cast<unsigned long long>(bytes));
        return capability->base();
    };

    VmRegions regions;
    regions.bytecode = grab(bc_bytes); // reuses the freed scratch block
    regions.stack = grab(stack_bytes);
    regions.space_a = grab(space_bytes);
    regions.space_b = grab(space_bytes);
    return regions;
}

// ---------------------------------------------------------------------
// Host mirror
// ---------------------------------------------------------------------

struct MVal
{
    enum class Kind
    {
        kInt,
        kNull,
        kRef
    };
    Kind kind = Kind::kNull;
    std::int64_t i = 0;
    std::size_t obj = 0;
};

struct MObj
{
    int kind = 0; // 0 = pair, 1 = node
    MVal f0;
    MVal f1;
};

class MirrorVm
{
  public:
    MirrorVm(const std::vector<VmAssembler::Inst> &code, unsigned capacity)
        : code_(code), capacity_(capacity)
    {
    }

    VmMirror run();

  private:
    MVal popAny();
    std::int64_t popInt();
    MVal popRefOrNull();
    void push(MVal value);
    void maybeCollect();
    unsigned reachableCount() const;

    const std::vector<VmAssembler::Inst> &code_;
    unsigned capacity_;
    std::size_t pc_ = 0;
    std::array<MVal, kLocalCount> locals_{};
    std::vector<MVal> stack_;
    std::vector<MObj> objects_;
    unsigned in_space_ = 0;
    VmMirror out_;
};

MVal
MirrorVm::popAny()
{
    if (stack_.empty())
        support::fatal("vm mirror: operand stack underflow at pc %llu",
                       static_cast<unsigned long long>(pc_));
    MVal value = stack_.back();
    stack_.pop_back();
    return value;
}

std::int64_t
MirrorVm::popInt()
{
    MVal value = popAny();
    if (value.kind != MVal::Kind::kInt)
        support::fatal("vm mirror: expected int at pc %llu",
                       static_cast<unsigned long long>(pc_));
    return value.i;
}

MVal
MirrorVm::popRefOrNull()
{
    MVal value = popAny();
    if (value.kind == MVal::Kind::kInt)
        support::fatal("vm mirror: expected reference at pc %llu",
                       static_cast<unsigned long long>(pc_));
    return value;
}

void
MirrorVm::push(MVal value)
{
    if (stack_.size() >= kStackSlots)
        support::fatal("vm mirror: operand stack overflow at pc %llu",
                       static_cast<unsigned long long>(pc_));
    stack_.push_back(value);
}

unsigned
MirrorVm::reachableCount() const
{
    std::vector<bool> marked(objects_.size(), false);
    std::deque<std::size_t> work;
    auto root = [&](const MVal &value) {
        if (value.kind == MVal::Kind::kRef && !marked[value.obj]) {
            marked[value.obj] = true;
            work.push_back(value.obj);
        }
    };
    for (const MVal &local : locals_)
        root(local);
    for (const MVal &slot : stack_)
        root(slot);
    unsigned count = 0;
    while (!work.empty()) {
        std::size_t index = work.front();
        work.pop_front();
        ++count;
        root(objects_[index].f0);
        root(objects_[index].f1);
    }
    return count;
}

void
MirrorVm::maybeCollect()
{
    // The guest checks space (and runs the collector) before popping
    // the constructor operands, so they are still GC roots here.
    if (in_space_ < capacity_)
        return;
    ++out_.collections;
    in_space_ = reachableCount();
    if (in_space_ >= capacity_)
        support::fatal("vm shape overflows the semispace: %u live of "
                       "%u capacity after collection",
                       in_space_, capacity_);
}

VmMirror
MirrorVm::run()
{
    constexpr std::uint64_t kMaxSteps = 10'000'000;
    for (std::uint64_t steps = 0;; ++steps) {
        if (steps > kMaxSteps)
            support::fatal("vm mirror: program exceeded %llu steps",
                           static_cast<unsigned long long>(kMaxSteps));
        if (pc_ >= code_.size())
            support::fatal("vm mirror: pc %llu out of range",
                           static_cast<unsigned long long>(pc_));
        const VmAssembler::Inst inst = code_[pc_++];
        switch (inst.op) {
          case VmOp::kHalt: {
            std::int64_t result = popInt();
            out_.result = static_cast<std::uint64_t>(result);
            out_.checksum = (out_.result * 31 + out_.collections) * 31 +
                            out_.allocations;
            return out_;
          }
          case VmOp::kPushI:
            push(MVal{MVal::Kind::kInt, inst.imm, 0});
            break;
          case VmOp::kPushNull:
            push(MVal{MVal::Kind::kNull, 0, 0});
            break;
          case VmOp::kAdd: {
            std::int64_t x = popInt();
            std::int64_t y = popInt();
            push(MVal{MVal::Kind::kInt, x + y, 0});
            break;
          }
          case VmOp::kLoadL:
          case VmOp::kStoreL: {
            if (inst.imm < 0 ||
                static_cast<unsigned>(inst.imm) >= kLocalCount)
                support::fatal("vm mirror: bad local slot %d", inst.imm);
            auto slot = static_cast<std::size_t>(inst.imm);
            if (inst.op == VmOp::kLoadL)
                push(locals_[slot]);
            else
                locals_[slot] = popAny();
            break;
          }
          case VmOp::kNewPair:
          case VmOp::kNewNode: {
            maybeCollect();
            MVal f1 = popRefOrNull();
            MVal f0 = popAny();
            if (inst.op == VmOp::kNewPair &&
                f0.kind != MVal::Kind::kInt)
                support::fatal("vm mirror: pair value must be an int");
            if (inst.op == VmOp::kNewNode &&
                f0.kind == MVal::Kind::kInt)
                support::fatal("vm mirror: node child must be a ref");
            MObj object;
            object.kind = inst.op == VmOp::kNewPair ? 0 : 1;
            object.f0 = f0;
            object.f1 = f1;
            objects_.push_back(object);
            ++in_space_;
            ++out_.allocations;
            push(MVal{MVal::Kind::kRef, 0, objects_.size() - 1});
            break;
          }
          case VmOp::kGetF0:
          case VmOp::kGetF1: {
            MVal ref = popRefOrNull();
            if (ref.kind != MVal::Kind::kRef)
                support::fatal("vm mirror: field access on null at "
                               "pc %llu",
                               static_cast<unsigned long long>(pc_ - 1));
            const MObj &object = objects_[ref.obj];
            push(inst.op == VmOp::kGetF0 ? object.f0 : object.f1);
            break;
          }
          case VmOp::kIsNull: {
            MVal ref = popRefOrNull();
            push(MVal{MVal::Kind::kInt,
                      ref.kind == MVal::Kind::kNull ? 1 : 0, 0});
            break;
          }
          case VmOp::kIsPair: {
            MVal ref = popRefOrNull();
            if (ref.kind != MVal::Kind::kRef)
                support::fatal("vm mirror: ISPAIR on null");
            push(MVal{MVal::Kind::kInt,
                      objects_[ref.obj].kind == 0 ? 1 : 0, 0});
            break;
          }
          case VmOp::kJmp:
            pc_ = static_cast<std::size_t>(inst.imm);
            break;
          case VmOp::kBnz:
            if (popInt() != 0)
                pc_ = static_cast<std::size_t>(inst.imm);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Shared emission helpers
// ---------------------------------------------------------------------

/**
 * The exit scrub: after the checksum is computed (held in t5), the
 * guest overwrites every byte it had mapped — heap, stack region,
 * and its own already-executed code — before BREAK. A managed
 * runtime tearing down leaves no reachable state behind; for the
 * fault campaign this is what makes "zero silent corruption"
 * achievable at all, since an injected flip in memory the program
 * has finished with is either overwritten here (masked) or consumed
 * on the way (detected) instead of lingering into the final sweep.
 *
 * The code scrub cannot zero the instructions it is executing from:
 * the tail reads its own address with CGetPCC, zeroes [code_base,
 * tail), skips exactly `tail_bytes` of itself, and zeroes the
 * remaining page slack up to the next page boundary. `tail_bytes`
 * is measured by a scratch emission (the immediate does not change
 * any instruction's width, so the measurement is exact).
 */
void
emitScrubTailBody(Assembler &a, const GuestLayout &layout,
                  std::int32_t tail_bytes, bool pad)
{
    auto heap_loop = a.newLabel();
    auto stack_loop = a.newLabel();
    auto code_loop = a.newLabel();
    auto slack_loop = a.newLabel();
    auto slack_done = a.newLabel();

    a.cgetpcc(9, t1); // t1 = address of this instruction (tail start)
    // The dword at the heap tail is externally owned (cheri-serve
    // parks each guest's salt there) — carry it across the scrub.
    a.li64(t0, layout.heap_base + layout.heap_bytes - 8);
    a.ld(t6, t0, 0);
    a.li64(t0, layout.heap_base);
    a.li64(t2, layout.heap_base + layout.heap_bytes);
    a.bind(heap_loop);
    a.sd(zero, t0, 0);
    a.daddiu(t0, t0, 8);
    a.bne(t0, t2, heap_loop);
    a.nop();
    a.sd(t6, t0, -8); // salt back (the zeroing already cleared tags)
    a.li64(t0, layout.stack_top - layout.stack_bytes);
    a.li64(t2, layout.stack_top);
    a.bind(stack_loop);
    a.sd(zero, t0, 0);
    a.daddiu(t0, t0, 8);
    a.bne(t0, t2, stack_loop);
    a.nop();
    a.li64(t0, layout.code_base);
    a.bind(code_loop);
    a.sd(zero, t0, 0);
    a.daddiu(t0, t0, 8);
    a.bne(t0, t1, code_loop);
    a.nop();
    // Page slack past the text's end: [tail + tail_bytes, page end).
    a.daddiu(t2, t1, tail_bytes);
    a.move(t0, t2);
    a.daddiu(t2, t2, 4095);
    a.dsrl(t2, t2, 12);
    a.dsll(t2, t2, 12);
    a.beq(t0, t2, slack_done);
    a.nop();
    a.bind(slack_loop);
    a.sd(zero, t0, 0);
    a.daddiu(t0, t0, 8);
    a.bne(t0, t2, slack_loop);
    a.nop();
    a.bind(slack_done);
    // The tail's own lines are the one region no zeroing store ever
    // touches, so a forged tag-table bit there would survive to the
    // final sweep. Rewrite one dword per 32-byte line with its own
    // bytes: the general-purpose store clears the line's tag without
    // changing the (still-executing) code underneath it.
    auto rewrite_loop = a.newLabel();
    a.dsrl(t0, t1, 5);
    a.dsll(t0, t0, 5);
    a.daddiu(t2, t1, tail_bytes);
    a.bind(rewrite_loop);
    a.ld(t3, t0, 0);
    a.sd(t3, t0, 0);
    a.daddiu(t0, t0, 32);
    a.sltu(t3, t0, t2);
    a.bne(t3, zero, rewrite_loop);
    a.nop();
    a.move(s0, t5);
    a.move(v0, t5);
    if (pad) // keeps the tail a multiple of 8 bytes (see caller)
        a.nop();
    a.break_();
}

void
emitScrubTail(Assembler &a, const GuestLayout &layout)
{
    Assembler scratch(0);
    emitScrubTailBody(scratch, layout, 0, false);
    unsigned words = static_cast<unsigned>(scratch.finish().size());
    bool pad = words % 2 != 0;
    if (pad)
        ++words;
    // The dword scrub loops need an 8-aligned tail start and length.
    if (a.here() % 8 != 0)
        a.nop();
    emitScrubTailBody(a, layout, static_cast<std::int32_t>(4 * words),
                      pad);
}

/**
 * Materialize the bytecode stream into guest memory with a stepping
 * write pointer. The CHERI flavour stores through the (still
 * writable) bytecode capability; the integer flavour through an
 * absolute address.
 */
void
emitBytecodeImage(Assembler &a,
                  const std::vector<VmAssembler::Inst> &code,
                  bool cheri, std::uint64_t bc_base)
{
    if (cheri)
        a.move(t0, zero);
    else
        a.li64(t0, bc_base);
    for (const VmAssembler::Inst &inst : code) {
        a.li(t1, static_cast<std::int32_t>(inst.op));
        if (cheri)
            a.csd(t1, 1, t0, 0);
        else
            a.sd(t1, t0, 0);
        a.li(t1, inst.imm);
        if (cheri)
            a.csd(t1, 1, t0, 8);
        else
            a.sd(t1, t0, 8);
        a.daddiu(t0, t0, static_cast<std::int32_t>(kBytecodeInstBytes));
    }
}

// ---------------------------------------------------------------------
// CHERI-model emitter
// ---------------------------------------------------------------------

/*
 * Register map (CHERI model):
 *   s0 vm pc            s1 slot pointer (locals + operand stack)
 *   s2 alloc offset     s3 collections    s4 GC tag counter
 *   s5 allocations      gp semispace limit (bytes)
 *   c1 bytecode (load-only after setup)   c2 slot array
 *   c4 active space     c5 reserve space
 *   c7 evacuate arg/result   c8 newly minted object   c9/c10 scratch
 *   GC: a0 scan offset, a1 free offset, a2 saved ra, t3/t4 loops;
 *   evacuate clobbers t0/t1/t2 and c8/c9 only.
 */
void
emitCheriVm(Assembler &a, const std::vector<VmAssembler::Inst> &code,
            const VmConfig &config, const VmRegions &regions,
            std::uint64_t space_bytes, const GuestLayout &layout)
{
    const bool cap_copy = config.gc_copy == VmGcCopy::kCapability;

    auto scrub = a.newLabel();
    auto vm_loop = a.newLabel();
    auto bad_op = a.newLabel();
    auto oom_exit = a.newLabel();
    auto tag_loss_exit = a.newLabel();
    auto gc_fn = a.newLabel();
    auto evac_fn = a.newLabel();
    std::array<Assembler::Label, 14> handlers{};
    for (auto &label : handlers)
        label = a.newLabel();

    // --- prologue: derive region capabilities from almighty c0 ---
    auto derive = [&](unsigned cd, std::uint64_t base,
                      std::uint64_t bytes) {
        a.li64(t0, base);
        a.cincbase(cd, 0, t0);
        a.li(t1, static_cast<std::int32_t>(bytes));
        a.csetlen(cd, cd, t1);
    };
    derive(1, regions.bytecode, code.size() * kBytecodeInstBytes);
    derive(2, regions.stack, kTotalSlots * kCapSlotBytes);
    derive(4, regions.space_a, space_bytes);
    derive(5, regions.space_b, space_bytes);

    emitBytecodeImage(a, code, true, regions.bytecode);
    // Bytecode becomes execute-never, write-never data: load only.
    a.li(t1, static_cast<std::int32_t>(cap::kPermLoad));
    a.candperm(1, 1, t1);

    a.move(s0, zero);
    a.li(s1, static_cast<std::int32_t>(kLocalCount));
    a.li(s2, static_cast<std::int32_t>(kCapObjBytes));
    a.move(s3, zero);
    a.move(s4, zero);
    a.move(s5, zero);
    a.li(gp, static_cast<std::int32_t>(space_bytes));

    // --- dispatch loop ---
    a.bind(vm_loop);
    a.dsll(t0, s0, 4);
    a.cld(t1, 1, t0, 0);
    a.cld(t2, 1, t0, 8);
    a.daddiu(s0, s0, 1);
    a.beq(t1, zero, handlers[0]);
    a.nop();
    for (unsigned op = 1; op < handlers.size(); ++op) {
        a.daddiu(t3, t1, -static_cast<std::int32_t>(op));
        a.beq(t3, zero, handlers[op]);
        a.nop();
    }
    a.bind(bad_op);
    a.li(v0, kBadOpPoison);
    a.break_();

    auto pushSlotAddr = [&] { a.dsll(t4, s1, 5); };

    // kHalt: fold ((result * 31 + collections) * 31 + allocations).
    a.bind(handlers[static_cast<unsigned>(VmOp::kHalt)]);
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.cld(t5, 2, t4, 0);
    a.dsll(t6, t5, 5);
    a.dsubu(t5, t6, t5);
    a.daddu(t5, t5, s3);
    a.dsll(t6, t5, 5);
    a.dsubu(t5, t6, t5);
    a.daddu(t5, t5, s5);
    a.b(scrub); // checksum rides in t5 through the exit scrub
    a.nop();

    // kPushI: raw dword into the slot (csd clears the slot's tag).
    a.bind(handlers[static_cast<unsigned>(VmOp::kPushI)]);
    pushSlotAddr();
    a.csd(t2, 2, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kPushNull: CFromPtr(c, 0) mints the canonical untagged NULL.
    a.bind(handlers[static_cast<unsigned>(VmOp::kPushNull)]);
    a.cfromptr(9, 4, zero);
    pushSlotAddr();
    a.csc(9, 2, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kAdd.
    a.bind(handlers[static_cast<unsigned>(VmOp::kAdd)]);
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.cld(t5, 2, t4, 0);
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.cld(t6, 2, t4, 0);
    a.daddu(t5, t5, t6);
    a.csd(t5, 2, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kLoadL: full 32-byte slot image copy, tag included.
    a.bind(handlers[static_cast<unsigned>(VmOp::kLoadL)]);
    a.dsll(t4, t2, 5);
    a.clc(9, 2, t4, 0);
    pushSlotAddr();
    a.csc(9, 2, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kStoreL.
    a.bind(handlers[static_cast<unsigned>(VmOp::kStoreL)]);
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.clc(9, 2, t4, 0);
    a.dsll(t4, t2, 5);
    a.csc(9, 2, t4, 0);
    a.b(vm_loop);
    a.nop();

    // kNewPair / kNewNode share the allocation path; t7 = header kind.
    auto alloc_obj = a.newLabel();
    auto have_space = a.newLabel();
    a.bind(handlers[static_cast<unsigned>(VmOp::kNewPair)]);
    a.li(t7, 0);
    a.b(alloc_obj);
    a.nop();
    a.bind(handlers[static_cast<unsigned>(VmOp::kNewNode)]);
    a.li(t7, 1);
    a.bind(alloc_obj);
    // Space check before popping: the operands stay GC roots.
    a.daddiu(t4, s2, static_cast<std::int32_t>(kCapObjBytes));
    a.sltu(t5, gp, t4);
    a.beq(t5, zero, have_space);
    a.nop();
    a.jal(gc_fn);
    a.nop();
    a.daddiu(t4, s2, static_cast<std::int32_t>(kCapObjBytes));
    a.sltu(t5, gp, t4);
    a.bne(t5, zero, oom_exit);
    a.nop();
    a.bind(have_space);
    // Mint the object capability from the active space: CFromPtr of
    // the bump offset, then CSetLen to exactly one object.
    a.cfromptr(8, 4, s2);
    a.li(t6, static_cast<std::int32_t>(kCapObjBytes));
    a.csetlen(8, 8, t6);
    a.csd(t7, 8, zero, 0);
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.clc(9, 2, t4, 0);
    a.csc(9, 8, zero, 64); // field 1 (top of stack)
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.clc(9, 2, t4, 0);
    a.csc(9, 8, zero, 32); // field 0
    a.daddiu(s2, s2, static_cast<std::int32_t>(kCapObjBytes));
    a.daddiu(s5, s5, 1);
    pushSlotAddr();
    a.csc(8, 2, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kGetF0 / kGetF1: the second CLC is the deterministic trap site
    // when the integer-copy collector has stripped the reference's
    // tag — an untagged base register raises kTagViolation.
    auto emitGetField = [&](VmOp op, std::int32_t offset) {
        a.bind(handlers[static_cast<unsigned>(op)]);
        a.daddiu(s1, s1, -1);
        pushSlotAddr();
        a.clc(9, 2, t4, 0);
        a.clc(10, 9, zero, offset);
        a.csc(10, 2, t4, 0);
        a.daddiu(s1, s1, 1);
        a.b(vm_loop);
        a.nop();
    };
    emitGetField(VmOp::kGetF0, 32);
    emitGetField(VmOp::kGetF1, 64);

    // kIsNull: base == 0 distinguishes NULL from a real (or even a
    // tag-stripped) reference — a stripped reference still carries
    // its old nonzero base, so the walk proceeds into the trap above
    // instead of silently ending early.
    a.bind(handlers[static_cast<unsigned>(VmOp::kIsNull)]);
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.clc(9, 2, t4, 0);
    a.cgetbase(t5, 9);
    a.sltiu(t5, t5, 1);
    a.csd(t5, 2, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kIsPair: load the header kind through the reference.
    a.bind(handlers[static_cast<unsigned>(VmOp::kIsPair)]);
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.clc(9, 2, t4, 0);
    a.cld(t5, 9, zero, 0);
    a.sltiu(t5, t5, 1);
    a.csd(t5, 2, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kJmp.
    a.bind(handlers[static_cast<unsigned>(VmOp::kJmp)]);
    a.b(vm_loop);
    a.move(s0, t2); // delay slot

    // kBnz.
    a.bind(handlers[static_cast<unsigned>(VmOp::kBnz)]);
    a.daddiu(s1, s1, -1);
    pushSlotAddr();
    a.cld(t5, 2, t4, 0);
    a.beq(t5, zero, vm_loop);
    a.nop();
    a.b(vm_loop);
    a.move(s0, t2); // delay slot

    // --- collector ---
    auto root_loop = a.newLabel();
    auto root_next = a.newLabel();
    auto scan_loop = a.newLabel();
    auto scan_f1 = a.newLabel();
    auto scan_next = a.newLabel();
    auto gc_done = a.newLabel();

    a.bind(gc_fn);
    a.move(a2, ra);
    a.move(s4, zero);
    a.li(a0, static_cast<std::int32_t>(kCapObjBytes));
    a.li(a1, static_cast<std::int32_t>(kCapObjBytes));
    a.move(t3, zero);
    a.bind(root_loop); // every live slot (locals + operand stack)
    a.sltu(t4, t3, s1);
    a.beq(t4, zero, scan_loop);
    a.nop();
    a.dsll(t4, t3, 5);
    a.clc(7, 2, t4, 0);
    a.cbtu(7, root_next);
    a.nop();
    a.jal(evac_fn);
    a.nop();
    a.dsll(t4, t3, 5);
    a.csc(7, 2, t4, 0);
    a.bind(root_next);
    a.daddiu(t3, t3, 1);
    a.b(root_loop);
    a.nop();
    a.bind(scan_loop); // Cheney scan of the to-space frontier
    a.sltu(t3, a0, a1);
    a.beq(t3, zero, gc_done);
    a.nop();
    a.daddiu(t3, a0, 32);
    a.clc(7, 5, t3, 0);
    a.cbtu(7, scan_f1);
    a.nop();
    a.jal(evac_fn);
    a.nop();
    a.daddiu(t3, a0, 32);
    a.csc(7, 5, t3, 0);
    a.bind(scan_f1);
    a.daddiu(t3, a0, 64);
    a.clc(7, 5, t3, 0);
    a.cbtu(7, scan_next);
    a.nop();
    a.jal(evac_fn);
    a.nop();
    a.daddiu(t3, a0, 64);
    a.csc(7, 5, t3, 0);
    a.bind(scan_next);
    a.daddiu(a0, a0, static_cast<std::int32_t>(kCapObjBytes));
    a.b(scan_loop);
    a.nop();
    a.bind(gc_done);
    // Swap the spaces (CIncBase by zero is the capability move).
    a.cincbase(9, 4, zero);
    a.cincbase(4, 5, zero);
    a.cincbase(5, 9, zero);
    a.move(s2, a1);
    a.daddiu(s3, s3, 1);
    if (cap_copy) {
        // Tag-preservation invariant: the number of tagged fields in
        // the new active space must equal the count the evacuation
        // loop copied. The integer-copy mode deliberately omits this
        // check — that is the pitfall being reproduced.
        auto verify_loop = a.newLabel();
        auto verify_f1 = a.newLabel();
        auto verify_next = a.newLabel();
        auto verify_done = a.newLabel();
        a.move(t3, zero);
        a.li(t4, static_cast<std::int32_t>(kCapObjBytes));
        a.bind(verify_loop);
        a.sltu(t5, t4, s2);
        a.beq(t5, zero, verify_done);
        a.nop();
        a.daddiu(t5, t4, 32);
        a.clc(9, 4, t5, 0);
        a.cbtu(9, verify_f1);
        a.nop();
        a.daddiu(t3, t3, 1);
        a.bind(verify_f1);
        a.daddiu(t5, t4, 64);
        a.clc(9, 4, t5, 0);
        a.cbtu(9, verify_next);
        a.nop();
        a.daddiu(t3, t3, 1);
        a.bind(verify_next);
        a.daddiu(t4, t4, static_cast<std::int32_t>(kCapObjBytes));
        a.b(verify_loop);
        a.nop();
        a.bind(verify_done);
        a.bne(t3, s4, tag_loss_exit);
        a.nop();
    }
    a.jr(a2);
    a.nop();

    // --- evacuate one object: c7 in, c7 out ---
    auto evac_fwd = a.newLabel();
    a.bind(evac_fn);
    a.clc(9, 7, zero, 0);
    a.cbts(9, evac_fwd); // tagged header slot = forwarding pointer
    a.nop();
    // CToPtr interop: the object's bump offset within the active
    // space, used for the integer-indexed header load.
    a.ctoptr(t0, 7, 4);
    a.cld(t1, 4, t0, 0);
    a.cfromptr(8, 5, a1);
    a.li(t2, static_cast<std::int32_t>(kCapObjBytes));
    a.csetlen(8, 8, t2);
    a.csd(t1, 8, zero, 0);
    if (cap_copy) {
        // CLC/CSC field moves: the tag travels with the image.
        auto f0_done = a.newLabel();
        auto f1_done = a.newLabel();
        a.clc(9, 7, zero, 32);
        a.csc(9, 8, zero, 32);
        a.cbtu(9, f0_done);
        a.nop();
        a.daddiu(s4, s4, 1);
        a.bind(f0_done);
        a.clc(9, 7, zero, 64);
        a.csc(9, 8, zero, 64);
        a.cbtu(9, f1_done);
        a.nop();
        a.daddiu(s4, s4, 1);
        a.bind(f1_done);
    } else {
        // The CRuby pitfall: copying the fields through integer
        // loads/stores moves every byte faithfully — and the CSD
        // architecturally clears each destination line's tag, so
        // every reference field arrives untagged.
        for (std::int32_t off = 32; off < 96; off += 8) {
            a.cld(t1, 7, zero, off);
            a.csd(t1, 8, zero, off);
        }
    }
    a.csc(8, 7, zero, 0); // forwarding pointer into the old header
    a.daddiu(a1, a1, static_cast<std::int32_t>(kCapObjBytes));
    a.ccleartag(7, 7); // poison the stale from-space reference
    a.cincbase(7, 8, zero);
    a.jr(ra);
    a.nop();
    a.bind(evac_fwd);
    a.cincbase(7, 9, zero);
    a.jr(ra);
    a.nop();

    a.bind(oom_exit);
    a.li(v0, kOomPoison);
    a.break_();
    a.bind(tag_loss_exit);
    a.li(v0, kTagLossPoison);
    a.break_();

    // Exit scrub: must be the last code in the text (it zeroes all
    // code below itself, then the page slack above itself).
    a.bind(scrub);
    emitScrubTail(a, layout);
}

// ---------------------------------------------------------------------
// Integer-model emitter (plain MIPS and CCured)
// ---------------------------------------------------------------------

/*
 * Register map (integer models):
 *   s0 vm pc            s1 slot pointer   s2 alloc offset
 *   s3 collections      s5 allocations    gp semispace limit
 *   k0 bytecode base    k1 slot base
 *   s6 active base      s7 reserve base
 *   a3 evacuate arg/result; a0 scan, a1 free, a2 saved ra
 *   CCured only: s4 heap lower bound, fp heap upper bound.
 *   Integers are SMI-encoded ((v << 1) | 1); references are raw even
 *   addresses; null is 0.
 */
void
emitIntVm(Assembler &a, const std::vector<VmAssembler::Inst> &code,
          bool checks, const VmRegions &regions,
          std::uint64_t space_bytes, const GuestLayout &layout)
{
    auto scrub = a.newLabel();
    auto vm_loop = a.newLabel();
    auto bad_op = a.newLabel();
    auto oom_exit = a.newLabel();
    auto bounds_fail = a.newLabel();
    auto gc_fn = a.newLabel();
    auto evac_fn = a.newLabel();
    std::array<Assembler::Label, 14> handlers{};
    for (auto &label : handlers)
        label = a.newLabel();

    emitBytecodeImage(a, code, false, regions.bytecode);
    a.li64(k0, regions.bytecode);
    a.li64(k1, regions.stack);
    a.li64(s6, regions.space_a);
    a.li64(s7, regions.space_b);
    if (checks) {
        // CCured-style metadata: the heap's bounds, kept in
        // registers like a compiler would home a global fat-pointer
        // bound. (The runtime — GC and allocator — is trusted, as
        // CCured trusts its own runtime.)
        std::uint64_t lo = std::min(regions.space_a, regions.space_b);
        std::uint64_t hi =
            std::max(regions.space_a, regions.space_b) + space_bytes;
        a.li64(s4, lo);
        a.li64(fp, hi);
    }
    a.move(s0, zero);
    a.li(s1, static_cast<std::int32_t>(kLocalCount));
    a.li(s2, static_cast<std::int32_t>(kIntObjBytes));
    a.move(s3, zero);
    a.move(s5, zero);
    a.li(gp, static_cast<std::int32_t>(space_bytes));

    // --- dispatch loop ---
    a.bind(vm_loop);
    if (checks) {
        a.sltiu(t3, s0, static_cast<std::int32_t>(code.size()));
        a.beq(t3, zero, bounds_fail);
        a.nop();
    }
    a.dsll(t0, s0, 4);
    a.daddu(t0, k0, t0);
    a.ld(t1, t0, 0);
    a.ld(t2, t0, 8);
    a.daddiu(s0, s0, 1);
    a.beq(t1, zero, handlers[0]);
    a.nop();
    for (unsigned op = 1; op < handlers.size(); ++op) {
        a.daddiu(t3, t1, -static_cast<std::int32_t>(op));
        a.beq(t3, zero, handlers[op]);
        a.nop();
    }
    a.bind(bad_op);
    a.li(v0, kBadOpPoison);
    a.break_();

    auto slotAddr = [&] { // address of slot s1 -> t4
        a.dsll(t4, s1, 3);
        a.daddu(t4, k1, t4);
    };
    auto pushCheck = [&] {
        if (!checks)
            return;
        a.sltiu(t3, s1, static_cast<std::int32_t>(kTotalSlots));
        a.beq(t3, zero, bounds_fail);
        a.nop();
    };
    auto popCheck = [&] {
        if (!checks)
            return;
        a.sltiu(t3, s1, static_cast<std::int32_t>(kLocalCount + 1));
        a.bne(t3, zero, bounds_fail);
        a.nop();
    };
    auto heapCheck = [&](unsigned addr_reg) {
        if (!checks)
            return;
        a.sltu(t8, addr_reg, s4);
        a.bne(t8, zero, bounds_fail);
        a.nop();
        a.sltu(t8, addr_reg, fp);
        a.beq(t8, zero, bounds_fail);
        a.nop();
    };

    // kHalt: decode the SMI result, fold the checksum.
    a.bind(handlers[static_cast<unsigned>(VmOp::kHalt)]);
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t5, t4, 0);
    a.dsra(t5, t5, 1);
    a.dsll(t6, t5, 5);
    a.dsubu(t5, t6, t5);
    a.daddu(t5, t5, s3);
    a.dsll(t6, t5, 5);
    a.dsubu(t5, t6, t5);
    a.daddu(t5, t5, s5);
    a.b(scrub); // checksum rides in t5 through the exit scrub
    a.nop();

    // kPushI: SMI-encode the immediate.
    a.bind(handlers[static_cast<unsigned>(VmOp::kPushI)]);
    pushCheck();
    a.dsll(t5, t2, 1);
    a.ori(t5, t5, 1);
    slotAddr();
    a.sd(t5, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kPushNull.
    a.bind(handlers[static_cast<unsigned>(VmOp::kPushNull)]);
    pushCheck();
    slotAddr();
    a.sd(zero, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kAdd: (x<<1|1) + (y<<1|1) - 1 == ((x+y)<<1|1).
    a.bind(handlers[static_cast<unsigned>(VmOp::kAdd)]);
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t5, t4, 0);
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t6, t4, 0);
    a.daddu(t5, t5, t6);
    a.daddiu(t5, t5, -1);
    a.sd(t5, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kLoadL.
    a.bind(handlers[static_cast<unsigned>(VmOp::kLoadL)]);
    pushCheck();
    a.dsll(t4, t2, 3);
    a.daddu(t4, k1, t4);
    a.ld(t5, t4, 0);
    slotAddr();
    a.sd(t5, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kStoreL.
    a.bind(handlers[static_cast<unsigned>(VmOp::kStoreL)]);
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t5, t4, 0);
    a.dsll(t4, t2, 3);
    a.daddu(t4, k1, t4);
    a.sd(t5, t4, 0);
    a.b(vm_loop);
    a.nop();

    // kNewPair / kNewNode.
    auto alloc_obj = a.newLabel();
    auto have_space = a.newLabel();
    a.bind(handlers[static_cast<unsigned>(VmOp::kNewPair)]);
    a.li(t7, 0);
    a.b(alloc_obj);
    a.nop();
    a.bind(handlers[static_cast<unsigned>(VmOp::kNewNode)]);
    a.li(t7, 1);
    a.bind(alloc_obj);
    a.daddiu(t4, s2, static_cast<std::int32_t>(kIntObjBytes));
    a.sltu(t5, gp, t4);
    a.beq(t5, zero, have_space);
    a.nop();
    a.jal(gc_fn);
    a.nop();
    a.daddiu(t4, s2, static_cast<std::int32_t>(kIntObjBytes));
    a.sltu(t5, gp, t4);
    a.bne(t5, zero, oom_exit);
    a.nop();
    a.bind(have_space);
    a.daddu(t6, s6, s2); // object address
    a.sd(t7, t6, 0);
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t5, t4, 0);
    a.sd(t5, t6, 16); // field 1 (top of stack)
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t5, t4, 0);
    a.sd(t5, t6, 8); // field 0
    a.daddiu(s2, s2, static_cast<std::int32_t>(kIntObjBytes));
    a.daddiu(s5, s5, 1);
    slotAddr();
    a.sd(t6, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kGetF0 / kGetF1.
    auto emitGetField = [&](VmOp op, std::int32_t offset) {
        a.bind(handlers[static_cast<unsigned>(op)]);
        popCheck();
        a.daddiu(s1, s1, -1);
        slotAddr();
        a.ld(t5, t4, 0);
        heapCheck(t5);
        a.ld(t6, t5, offset);
        a.sd(t6, t4, 0);
        a.daddiu(s1, s1, 1);
        a.b(vm_loop);
        a.nop();
    };
    emitGetField(VmOp::kGetF0, 8);
    emitGetField(VmOp::kGetF1, 16);

    // kIsNull.
    a.bind(handlers[static_cast<unsigned>(VmOp::kIsNull)]);
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t5, t4, 0);
    a.sltiu(t5, t5, 1);
    a.dsll(t5, t5, 1);
    a.ori(t5, t5, 1);
    a.sd(t5, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kIsPair.
    a.bind(handlers[static_cast<unsigned>(VmOp::kIsPair)]);
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t5, t4, 0);
    heapCheck(t5);
    a.ld(t5, t5, 0);
    a.sltiu(t5, t5, 1);
    a.dsll(t5, t5, 1);
    a.ori(t5, t5, 1);
    a.sd(t5, t4, 0);
    a.daddiu(s1, s1, 1);
    a.b(vm_loop);
    a.nop();

    // kJmp.
    a.bind(handlers[static_cast<unsigned>(VmOp::kJmp)]);
    a.b(vm_loop);
    a.move(s0, t2); // delay slot

    // kBnz: SMI-encoded zero is 1.
    a.bind(handlers[static_cast<unsigned>(VmOp::kBnz)]);
    popCheck();
    a.daddiu(s1, s1, -1);
    slotAddr();
    a.ld(t5, t4, 0);
    a.daddiu(t5, t5, -1);
    a.beq(t5, zero, vm_loop);
    a.nop();
    a.b(vm_loop);
    a.move(s0, t2); // delay slot

    // --- collector ---
    auto root_loop = a.newLabel();
    auto root_next = a.newLabel();
    auto scan_loop = a.newLabel();
    auto scan_f1 = a.newLabel();
    auto scan_next = a.newLabel();
    auto gc_done = a.newLabel();

    // A reference is a nonzero even dword; SMIs are odd, null is 0.
    auto refTest = [&](unsigned value_reg, Assembler::Label skip) {
        a.beq(value_reg, zero, skip);
        a.nop();
        a.andi(t4, value_reg, 1);
        a.bne(t4, zero, skip);
        a.nop();
    };

    a.bind(gc_fn);
    a.move(a2, ra);
    a.li(a0, static_cast<std::int32_t>(kIntObjBytes));
    a.li(a1, static_cast<std::int32_t>(kIntObjBytes));
    a.move(t3, zero);
    a.bind(root_loop);
    a.sltu(t4, t3, s1);
    a.beq(t4, zero, scan_loop);
    a.nop();
    a.dsll(t4, t3, 3);
    a.daddu(t4, k1, t4);
    a.ld(a3, t4, 0);
    refTest(a3, root_next);
    a.jal(evac_fn);
    a.nop();
    a.dsll(t4, t3, 3);
    a.daddu(t4, k1, t4);
    a.sd(a3, t4, 0);
    a.bind(root_next);
    a.daddiu(t3, t3, 1);
    a.b(root_loop);
    a.nop();
    a.bind(scan_loop);
    a.sltu(t3, a0, a1);
    a.beq(t3, zero, gc_done);
    a.nop();
    a.daddu(t3, s7, a0);
    a.ld(a3, t3, 8);
    refTest(a3, scan_f1);
    a.jal(evac_fn);
    a.nop();
    a.daddu(t3, s7, a0);
    a.sd(a3, t3, 8);
    a.bind(scan_f1);
    a.daddu(t3, s7, a0);
    a.ld(a3, t3, 16);
    refTest(a3, scan_next);
    a.jal(evac_fn);
    a.nop();
    a.daddu(t3, s7, a0);
    a.sd(a3, t3, 16);
    a.bind(scan_next);
    a.daddiu(a0, a0, static_cast<std::int32_t>(kIntObjBytes));
    a.b(scan_loop);
    a.nop();
    a.bind(gc_done);
    a.move(t3, s6);
    a.move(s6, s7);
    a.move(s7, t3);
    a.move(s2, a1);
    a.daddiu(s3, s3, 1);
    a.jr(a2);
    a.nop();

    // --- evacuate one object: a3 in, a3 out ---
    auto evac_fwd = a.newLabel();
    a.bind(evac_fn);
    a.ld(t5, a3, 0);
    // Header kinds are 0/1; anything >= 2 is a forwarding address.
    a.sltiu(t6, t5, 2);
    a.beq(t6, zero, evac_fwd);
    a.nop();
    a.daddu(t6, s7, a1);
    a.sd(t5, t6, 0);
    a.ld(t7, a3, 8);
    a.sd(t7, t6, 8);
    a.ld(t7, a3, 16);
    a.sd(t7, t6, 16);
    a.sd(t6, a3, 0); // forwarding pointer
    a.daddiu(a1, a1, static_cast<std::int32_t>(kIntObjBytes));
    a.move(a3, t6);
    a.jr(ra);
    a.nop();
    a.bind(evac_fwd);
    a.move(a3, t5);
    a.jr(ra);
    a.nop();

    a.bind(oom_exit);
    a.li(v0, kOomPoison);
    a.break_();
    a.bind(bounds_fail);
    a.li(v0, kBoundsPoison);
    a.break_();

    // Exit scrub: must be the last code in the text (it zeroes all
    // code below itself, then the page slack above itself).
    a.bind(scrub);
    emitScrubTail(a, layout);
}

} // namespace

// ---------------------------------------------------------------------
// VmAssembler
// ---------------------------------------------------------------------

VmAssembler::Label
VmAssembler::newLabel()
{
    label_pcs_.push_back(-1);
    return label_pcs_.size() - 1;
}

void
VmAssembler::bind(Label label)
{
    if (label >= label_pcs_.size())
        support::fatal("VmAssembler::bind of unknown label");
    if (label_pcs_[label] >= 0)
        support::fatal("VmAssembler::bind of already-bound label");
    label_pcs_[label] = static_cast<std::int64_t>(insts_.size());
}

void
VmAssembler::emit(VmOp op, std::int32_t imm, bool is_label)
{
    if (finished_)
        support::fatal("VmAssembler::emit after finish");
    insts_.push_back(Raw{op, imm, is_label});
}

void VmAssembler::halt() { emit(VmOp::kHalt, 0); }
void VmAssembler::pushi(std::int32_t value) { emit(VmOp::kPushI, value); }
void VmAssembler::pushnull() { emit(VmOp::kPushNull, 0); }
void VmAssembler::add() { emit(VmOp::kAdd, 0); }

void
VmAssembler::loadl(unsigned slot)
{
    emit(VmOp::kLoadL, static_cast<std::int32_t>(slot));
}

void
VmAssembler::storel(unsigned slot)
{
    emit(VmOp::kStoreL, static_cast<std::int32_t>(slot));
}

void VmAssembler::newpair() { emit(VmOp::kNewPair, 0); }
void VmAssembler::newnode() { emit(VmOp::kNewNode, 0); }
void VmAssembler::getf0() { emit(VmOp::kGetF0, 0); }
void VmAssembler::getf1() { emit(VmOp::kGetF1, 0); }
void VmAssembler::isnull() { emit(VmOp::kIsNull, 0); }
void VmAssembler::ispair() { emit(VmOp::kIsPair, 0); }

void
VmAssembler::jmp(Label label)
{
    emit(VmOp::kJmp, static_cast<std::int32_t>(label), true);
}

void
VmAssembler::bnz(Label label)
{
    emit(VmOp::kBnz, static_cast<std::int32_t>(label), true);
}

std::vector<VmAssembler::Inst>
VmAssembler::finish()
{
    if (finished_)
        support::fatal("VmAssembler::finish called twice");
    finished_ = true;
    std::vector<Inst> resolved;
    resolved.reserve(insts_.size());
    for (const Raw &raw : insts_) {
        Inst inst;
        inst.op = raw.op;
        if (raw.is_label) {
            auto label = static_cast<std::size_t>(raw.imm);
            if (label >= label_pcs_.size() || label_pcs_[label] < 0)
                support::fatal("VmAssembler::finish: unbound label");
            inst.imm = static_cast<std::int32_t>(label_pcs_[label]);
        } else {
            inst.imm = static_cast<std::int32_t>(raw.imm);
        }
        resolved.push_back(inst);
    }
    return resolved;
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

const char *
vmModelName(VmModel model)
{
    switch (model) {
      case VmModel::kMips:
        return "mips";
      case VmModel::kCcured:
        return "ccured";
      case VmModel::kCheri:
        return "cheri";
    }
    return "?";
}

VmMirror
vmMirror(const VmConfig &config)
{
    std::vector<VmAssembler::Inst> code = buildProgram(config);
    return MirrorVm(code, config.semispace_objects).run();
}

GuestProgram
guestVm(const VmConfig &config)
{
    if (config.gc_copy == VmGcCopy::kInteger &&
        config.model != VmModel::kCheri)
        support::fatal("integer-copy GC mode exists to strip tags and "
                       "needs the CHERI model");
    if (config.semispace_objects < 2)
        support::fatal("vm semispace must hold at least 2 objects");

    std::vector<VmAssembler::Inst> code = buildProgram(config);
    VmMirror mirror = MirrorVm(code, config.semispace_objects).run();

    GuestProgram prog;
    prog.name = std::string("vm-") + vmModelName(config.model) +
                (config.program == VmProgram::kTreeChurn ? "-tree"
                                                         : "-list");
    if (config.gc_copy == VmGcCopy::kInteger)
        prog.name += "-intcopy";
    prog.expected_checksum = mirror.checksum;

    const bool cheri = config.model == VmModel::kCheri;
    const std::uint64_t stride = cheri ? kCapSlotBytes : kIntSlotBytes;
    const std::uint64_t space_bytes =
        (config.semispace_objects + 1) * objBytes(config.model);
    VmRegions regions = carveRegions(
        prog.layout, code.size() * kBytecodeInstBytes,
        kTotalSlots * stride, space_bytes);

    // Shrink the mapped footprint to the carved working set (the
    // regions are carved contiguously from the heap base) plus one
    // stack page: the exit scrub overwrites every mapped byte, so
    // unused mapped slack would only be dead weight to zero — and
    // dead space where an injected fault could hide from detection.
    const std::uint64_t page = tlb::kPageBytes;
    const std::uint64_t carved =
        regions.space_b + space_bytes - prog.layout.heap_base;
    prog.layout.heap_bytes = (carved + page - 1) / page * page;
    prog.layout.stack_bytes = page; // the VM never touches the stack

    Assembler a(prog.layout.code_base);
    if (cheri)
        emitCheriVm(a, code, config, regions, space_bytes,
                    prog.layout);
    else
        emitIntVm(a, code, config.model == VmModel::kCcured, regions,
                  space_bytes, prog.layout);
    prog.text = a.finish();
    return prog;
}

} // namespace cheri::workloads
