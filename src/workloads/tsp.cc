/**
 * @file
 * tsp — the Olden traveling-salesman benchmark: cities are stored in
 * a binary space-partition tree, and a tour is built bottom-up by
 * divide and conquer, splicing circular doubly-linked sub-tours
 * together. Coordinates are 16.16 fixed point; distances use an
 * integer approximation so the result is exact and model-independent.
 */

#include "workloads/olden.h"

#include "support/rng.h"

namespace cheri::workloads
{

namespace
{

/** City: {x, y} words; {left, right, prev, next} pointers. */
enum : unsigned
{
    kX = 0,
    kY = 1,
    kLeft = 2,
    kRight = 3,
    kPrev = 4,
    kNext = 5,
};

/** Integer distance approximation: |dx| + |dy| (exact, stable). */
std::uint64_t
distance(Context &ctx, ObjRef a, ObjRef b)
{
    std::int64_t dx = static_cast<std::int64_t>(ctx.loadWord(a, kX)) -
                      static_cast<std::int64_t>(ctx.loadWord(b, kX));
    std::int64_t dy = static_cast<std::int64_t>(ctx.loadWord(a, kY)) -
                      static_cast<std::int64_t>(ctx.loadWord(b, kY));
    ctx.compute(6);
    return static_cast<std::uint64_t>(dx < 0 ? -dx : dx) +
           static_cast<std::uint64_t>(dy < 0 ? -dy : dy);
}

/**
 * Build a BSP tree of 'count' cities inside the box [x0,x1) x [y0,y1),
 * alternating the split axis by depth (the Olden build_tree shape).
 */
ObjRef
buildTree(Context &ctx, unsigned type, std::uint64_t count,
          bool split_x, std::uint64_t x0, std::uint64_t x1,
          std::uint64_t y0, std::uint64_t y1,
          support::Xoshiro256 &rng)
{
    if (count == 0)
        return kNull;
    ctx.compute(kCallOverheadInstr);
    std::uint64_t xm = (x0 + x1) / 2;
    std::uint64_t ym = (y0 + y1) / 2;

    ObjRef node = ctx.alloc(type);
    // City placed pseudo-randomly inside its cell.
    ctx.storeWord(node, kX, x0 + rng.nextBelow(x1 - x0 == 0 ? 1
                                                            : x1 - x0));
    ctx.storeWord(node, kY, y0 + rng.nextBelow(y1 - y0 == 0 ? 1
                                                            : y1 - y0));
    ctx.storePtr(node, kPrev, kNull);
    ctx.storePtr(node, kNext, kNull);
    std::uint64_t left_count = (count - 1) / 2;
    std::uint64_t right_count = count - 1 - left_count;
    if (split_x) {
        ctx.storePtr(node, kLeft,
                     buildTree(ctx, type, left_count, false, x0, xm,
                               y0, y1, rng));
        ctx.storePtr(node, kRight,
                     buildTree(ctx, type, right_count, false, xm, x1,
                               y0, y1, rng));
    } else {
        ctx.storePtr(node, kLeft,
                     buildTree(ctx, type, left_count, true, x0, x1,
                               y0, ym, rng));
        ctx.storePtr(node, kRight,
                     buildTree(ctx, type, right_count, true, x0, x1,
                               ym, y1, rng));
    }
    return node;
}

/** Splice city 'c' into the circular tour after 'a' (a -> c -> ...). */
void
spliceAfter(Context &ctx, ObjRef a, ObjRef c)
{
    ObjRef b = ctx.loadPtr(a, kNext);
    ctx.storePtr(a, kNext, c);
    ctx.storePtr(c, kPrev, a);
    ctx.storePtr(c, kNext, b);
    ctx.storePtr(b, kPrev, c);
}

/** Find the tour position after which inserting 'c' is cheapest. */
ObjRef
cheapestEdge(Context &ctx, ObjRef tour, ObjRef c)
{
    ObjRef best = tour;
    std::uint64_t best_cost = ~0ULL;
    ObjRef a = tour;
    do {
        ObjRef b = ctx.loadPtr(a, kNext);
        std::uint64_t cost = distance(ctx, a, c) +
                             distance(ctx, c, b) -
                             distance(ctx, a, b);
        ctx.compute(4);
        if (cost < best_cost) {
            best_cost = cost;
            best = a;
        }
        a = b;
    } while (a != tour);
    return best;
}

/**
 * Conquer: turn the subtree into a circular tour. Small subtrees are
 * merged by cheapest-edge insertion of one side's cities into the
 * other's tour — the Olden merge structure without its geometric
 * special cases.
 */
ObjRef
conquer(Context &ctx, ObjRef node)
{
    if (node == kNull)
        return kNull;
    ctx.compute(kCallOverheadInstr);
    ObjRef left = conquer(ctx, ctx.loadPtr(node, kLeft));
    ObjRef right = conquer(ctx, ctx.loadPtr(node, kRight));

    // Self-loop for the root city.
    ctx.storePtr(node, kNext, node);
    ctx.storePtr(node, kPrev, node);

    // Merge both sub-tours into the root's tour, city by city.
    for (ObjRef sub : {left, right}) {
        while (sub != kNull) {
            // Detach one city from the sub-tour.
            ObjRef next = ctx.loadPtr(sub, kNext);
            ObjRef prev = ctx.loadPtr(sub, kPrev);
            ObjRef rest = kNull;
            if (next != sub) {
                ctx.storePtr(prev, kNext, next);
                ctx.storePtr(next, kPrev, prev);
                rest = next;
            }
            spliceAfter(ctx, cheapestEdge(ctx, node, sub), sub);
            sub = rest;
            ctx.compute(3);
        }
    }
    return node;
}

} // namespace

std::uint64_t
Tsp::run(Context &ctx, const WorkloadParams &params) const
{
    std::uint64_t cities = params.size_a == 0 ? 64 : params.size_a;

    unsigned type = ctx.defineType(
        {FieldKind::kWord, FieldKind::kWord, FieldKind::kPtr,
         FieldKind::kPtr, FieldKind::kPtr, FieldKind::kPtr});
    support::Xoshiro256 rng(params.seed);

    ctx.setPhase(Phase::kAlloc);
    ObjRef root = buildTree(ctx, type, cities, true, 0, 1 << 16, 0,
                            1 << 16, rng);

    ctx.setPhase(Phase::kCompute);
    ObjRef tour = conquer(ctx, root);

    // Tour length (exact integer) is the checksum.
    std::uint64_t length = 0;
    ObjRef city = tour;
    do {
        ObjRef next = ctx.loadPtr(city, kNext);
        length += distance(ctx, city, next);
        city = next;
    } while (city != tour);
    return length;
}

WorkloadParams
Tsp::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    std::uint64_t cities = heap_bytes / 48; // 2 words + 4 ptrs (MIPS)
    if (cities < 4)
        cities = 4;
    // Cheapest-edge insertion is quadratic; cap the Figure 5 sweep.
    if (cities > 4096)
        cities = 4096;
    return {cities, 0, 19};
}

} // namespace cheri::workloads
