/**
 * @file
 * em3d — models electromagnetic wave propagation: a bipartite graph
 * of E and H nodes, where each node's value is repeatedly updated
 * from its dependency nodes scaled by per-edge coefficients. Values
 * are 24.8 fixed-point integers so results are exact and identical
 * across compilation models.
 */

#include "workloads/olden.h"

#include "support/rng.h"

namespace cheri::workloads
{

namespace
{

/** Node fields: {value} word; {next, to_nodes, coeffs} pointers. */
enum : unsigned
{
    kValue = 0,
    kNext = 1,
    kToNodes = 2,
    kCoeffs = 3,
};

constexpr unsigned kFixedShift = 8;

/** Build one side of the bipartite graph as a linked list. */
std::vector<ObjRef>
buildSide(Context &ctx, unsigned type, std::uint64_t count,
          std::uint64_t degree, support::Xoshiro256 &rng)
{
    std::vector<ObjRef> nodes(count);
    ObjRef head = kNull;
    for (std::uint64_t i = count; i-- > 0;) {
        ObjRef node = ctx.alloc(type);
        ctx.storeWord(node, kValue, rng.nextBelow(1u << 16));
        ctx.storePtr(node, kNext, head);
        ctx.storePtr(node, kToNodes,
                     ctx.allocArray(FieldKind::kPtr, degree));
        ctx.storePtr(node, kCoeffs,
                     ctx.allocArray(FieldKind::kWord, degree));
        head = node;
        nodes[i] = node;
    }
    return nodes;
}

/** Wire each node's dependencies to random nodes of the other side. */
void
wire(Context &ctx, const std::vector<ObjRef> &from,
     const std::vector<ObjRef> &to, std::uint64_t degree,
     support::Xoshiro256 &rng)
{
    for (ObjRef node : from) {
        ObjRef to_nodes = ctx.loadPtr(node, kToNodes);
        ObjRef coeffs = ctx.loadPtr(node, kCoeffs);
        for (std::uint64_t d = 0; d < degree; ++d) {
            ctx.storePtrAt(to_nodes, d,
                           to[rng.nextBelow(to.size())]);
            ctx.storeWordAt(coeffs, d, rng.nextBelow(1u << kFixedShift));
        }
    }
}

/** One relaxation sweep over a node list. */
void
relax(Context &ctx, ObjRef head, std::uint64_t degree)
{
    for (ObjRef node = head; node != kNull;
         node = ctx.loadPtr(node, kNext)) {
        ObjRef to_nodes = ctx.loadPtr(node, kToNodes);
        ObjRef coeffs = ctx.loadPtr(node, kCoeffs);
        std::uint64_t value = ctx.loadWord(node, kValue);
        for (std::uint64_t d = 0; d < degree; ++d) {
            ObjRef other = ctx.loadPtrAt(to_nodes, d);
            std::uint64_t coeff = ctx.loadWordAt(coeffs, d);
            std::uint64_t contribution =
                (ctx.loadWord(other, kValue) * coeff) >> kFixedShift;
            value -= contribution;
            value &= 0xffffffffULL; // wrap like 32-bit fixed point
            ctx.compute(4);
        }
        ctx.storeWord(node, kValue, value);
    }
}

} // namespace

std::uint64_t
Em3d::run(Context &ctx, const WorkloadParams &params) const
{
    std::uint64_t n = params.size_a == 0 ? 16 : params.size_a;
    std::uint64_t degree = params.size_b == 0 ? 4 : params.size_b;
    constexpr unsigned kIterations = 4;

    unsigned type = ctx.defineType({FieldKind::kWord, FieldKind::kPtr,
                                    FieldKind::kPtr, FieldKind::kPtr});
    support::Xoshiro256 rng(params.seed);

    ctx.setPhase(Phase::kAlloc);
    std::vector<ObjRef> e_nodes = buildSide(ctx, type, n, degree, rng);
    std::vector<ObjRef> h_nodes = buildSide(ctx, type, n, degree, rng);
    wire(ctx, e_nodes, h_nodes, degree, rng);
    wire(ctx, h_nodes, e_nodes, degree, rng);

    ctx.setPhase(Phase::kCompute);
    for (unsigned it = 0; it < kIterations; ++it) {
        relax(ctx, e_nodes[0], degree);
        relax(ctx, h_nodes[0], degree);
    }

    std::uint64_t checksum = 0;
    for (ObjRef node = e_nodes[0]; node != kNull;
         node = ctx.loadPtr(node, kNext))
        checksum = checksum * 31 + ctx.loadWord(node, kValue);
    return checksum;
}

WorkloadParams
Em3d::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    // Per node under MIPS with degree 4: node 32 B + to array 32 B +
    // coeff array 32 B; two sides.
    std::uint64_t n = heap_bytes / (2 * 96);
    if (n < 2)
        n = 2;
    return {n, 4, 11};
}

} // namespace cheri::workloads
