/**
 * @file
 * Streaming workload profiler: computes the limit-study TraceProfile
 * incrementally, without materializing the event stream. Equivalent
 * to TraceContext + profileTrace (asserted by tests), but with O(1)
 * memory per event — what makes the paper-scale parameters (treeadd
 * 21: two million allocations) tractable.
 */

#ifndef CHERI_WORKLOADS_PROFILE_CONTEXT_H
#define CHERI_WORKLOADS_PROFILE_CONTEXT_H

#include <unordered_set>

#include "support/bits.h"
#include "trace/profile.h"
#include "workloads/context.h"

namespace cheri::workloads
{

/** Accumulates a TraceProfile directly from the access stream. */
class ProfileContext : public Context
{
  public:
    ProfileContext() : Context(CompileModel::kMips) {}

    /** The finished profile (valid once the workload returned). */
    trace::TraceProfile
    profile() const
    {
        trace::TraceProfile result = profile_;
        result.ptr_locations = ptr_locations_.size();
        result.ptr_pages = ptr_pages_.size();
        result.base.pages_touched = pages_.size();
        result.footprint_bytes = pages_.size() * 4096;
        return result;
    }

  protected:
    void
    onAlloc(std::uint64_t vaddr, std::uint64_t size) override
    {
        ++profile_.base.mallocs;
        profile_.base.heap_bytes += size;
        pages_.insert(vaddr / 4096);
        std::uint64_t segment = support::nextPowerOfTwo(size);
        profile_.pow2_padding_bytes += (segment - size) + segment / 4;
    }

    void
    onFree(std::uint64_t) override
    {
        ++profile_.base.frees;
    }

    void
    onLoad(std::uint64_t vaddr, std::uint64_t size, bool is_ptr,
           std::uint64_t target_size) override
    {
        access(vaddr, size, is_ptr, target_size);
        if (is_ptr)
            ++profile_.base.pointer_loads;
    }

    void
    onStore(std::uint64_t vaddr, std::uint64_t size, bool is_ptr,
            std::uint64_t target_size, std::uint64_t /*target*/) override
    {
        access(vaddr, size, is_ptr, target_size);
        if (is_ptr)
            ++profile_.base.pointer_stores;
    }

    void
    onInstructions(std::uint64_t count) override
    {
        profile_.base.instructions += count;
    }

  private:
    void
    access(std::uint64_t vaddr, std::uint64_t size, bool is_ptr,
           std::uint64_t target_size)
    {
        ++profile_.base.instructions;
        ++profile_.base.memory_refs;
        profile_.base.memory_bytes += size;
        ++profile_.derefs;
        pages_.insert(vaddr / 4096);
        if (!is_ptr)
            return;
        ++profile_.ptr_refs;
        ptr_locations_.insert(vaddr);
        ptr_pages_.insert(vaddr / 4096);
        bool compressible = target_size == 0 ||
                            (target_size <= 1024 &&
                             target_size % 4 == 0);
        if (compressible)
            ++profile_.compressible_ptr_refs;
    }

    trace::TraceProfile profile_;
    std::unordered_set<std::uint64_t> pages_;
    std::unordered_set<std::uint64_t> ptr_locations_;
    std::unordered_set<std::uint64_t> ptr_pages_;
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_PROFILE_CONTEXT_H
