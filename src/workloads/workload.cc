#include "workloads/workload.h"

#include "workloads/olden.h"
#include "workloads/vm_guest.h"

namespace cheri::workloads
{

std::vector<std::unique_ptr<Workload>>
fpgaBenchmarks()
{
    std::vector<std::unique_ptr<Workload>> suite;
    suite.push_back(std::make_unique<Bisort>());
    suite.push_back(std::make_unique<Mst>());
    suite.push_back(std::make_unique<Treeadd>());
    suite.push_back(std::make_unique<Perimeter>());
    return suite;
}

std::vector<std::unique_ptr<Workload>>
oldenSuite()
{
    std::vector<std::unique_ptr<Workload>> suite = fpgaBenchmarks();
    suite.push_back(std::make_unique<Em3d>());
    suite.push_back(std::make_unique<Health>());
    suite.push_back(std::make_unique<Power>());
    suite.push_back(std::make_unique<Tsp>());
    return suite;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (auto &workload : oldenSuite())
        if (workload->name() == name)
            return std::move(workload);
    // The managed-runtime churn profile is reachable by name but is
    // not part of the paper-figure suites above.
    if (name == "vm")
        return std::make_unique<VmChurn>();
    return nullptr;
}

} // namespace cheri::workloads
