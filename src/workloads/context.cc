#include "workloads/context.h"

#include "support/bits.h"

namespace cheri::workloads
{

namespace
{
/** Heap origin for simulated workloads (matches os::kHeapBase). */
constexpr std::uint64_t kWorkloadHeapBase = 0x1000000;
} // namespace

const char *
compileModelName(CompileModel model)
{
    switch (model) {
      case CompileModel::kMips: return "MIPS";
      case CompileModel::kCcured: return "CCured";
      case CompileModel::kCheri: return "CHERI";
      case CompileModel::kCheri128: return "128b CHERI";
    }
    return "?";
}

ModelCosts
modelCosts(CompileModel model)
{
    ModelCosts costs;
    switch (model) {
      case CompileModel::kMips:
        // Plain 64-bit pointers, no checks.
        break;
      case CompileModel::kCcured:
        // CCured-style fat pointers: pointer + metadata word moved by
        // separate loads, and an explicit null/lower/upper check
        // sequence on every object access (~6 instructions). The
        // allocation path runs the wide-pointer wrapper and, like
        // CCured, zero-initializes the block (Section 8: "the
        // software-enforcement case is significantly more complex").
        costs.ptr_bytes = 16;
        costs.ptr_align = 8;
        costs.ptr_refs = 2;
        costs.check_instrs = 6;
        costs.malloc_extra_instrs = 40;
        break;
      case CompileModel::kCheri:
        // 256-bit capabilities, one CLC/CSC per pointer move,
        // hardware-implicit checks, one extra instruction per
        // allocation to set bounds (Section 8).
        costs.ptr_bytes = 32;
        costs.ptr_align = 32;
        costs.ptr_refs = 1;
        costs.check_instrs = 0;
        costs.malloc_extra_instrs = 1;
        break;
      case CompileModel::kCheri128:
        // Compressed capabilities: half the footprint, same single
        // transaction and implicit checks.
        costs.ptr_bytes = 16;
        costs.ptr_align = 16;
        costs.ptr_refs = 1;
        costs.check_instrs = 0;
        costs.malloc_extra_instrs = 1;
        break;
    }
    return costs;
}

Context::Context(CompileModel model)
    : model_(model), costs_(modelCosts(model)),
      next_vaddr_(kWorkloadHeapBase)
{
}

unsigned
Context::defineType(std::vector<FieldKind> fields)
{
    TypeLayout layout;
    layout.fields = std::move(fields);
    std::uint64_t offset = 0;
    for (FieldKind field : layout.fields) {
        std::uint64_t align =
            field == FieldKind::kPtr ? costs_.ptr_align : 8;
        std::uint64_t size =
            field == FieldKind::kPtr ? costs_.ptr_bytes : 8;
        offset = support::roundUp(offset, align);
        layout.offsets.push_back(offset);
        offset += size;
    }
    // Round the object so arrays of it keep every field aligned.
    std::uint64_t max_align = 8;
    for (FieldKind field : layout.fields)
        if (field == FieldKind::kPtr)
            max_align = std::max<std::uint64_t>(max_align,
                                                costs_.ptr_align);
    layout.size = support::roundUp(offset, max_align);
    types_.push_back(std::move(layout));
    return static_cast<unsigned>(types_.size()) - 1;
}

ObjRef
Context::allocateRaw(std::uint64_t size)
{
    // Allocations are aligned to the model's pointer alignment (32
    // for CHERI so capabilities are storable; 8 otherwise, so MIPS
    // nodes pack densely — Section 8's 24-byte vs 96-byte bisort
    // nodes). Addresses are never reused.
    std::uint64_t vaddr = support::roundUp(
        next_vaddr_, std::max<std::uint64_t>(8, costs_.ptr_align));
    next_vaddr_ = vaddr + size;
    arena_.resize((next_vaddr_ - kWorkloadHeapBase + 7) / 8, 0);
    alloc_sizes_[vaddr] = size;
    heap_bytes_ += size;
    ++alloc_count_;
    onInstructions(costs_.malloc_instrs + costs_.malloc_extra_instrs);
    onAlloc(vaddr, size);
    if (model_ == CompileModel::kCcured) {
        // CCured zero-initializes every allocation for safety: one
        // store per word plus loop overhead.
        onInstructions(size / 8 + 2);
        for (std::uint64_t offset = 0; offset < size; offset += 8)
            onStore(vaddr + offset, 8, false, 0, 0);
    }
    return vaddr;
}

ObjRef
Context::alloc(unsigned type_id)
{
    if (type_id >= types_.size())
        support::panic("alloc of undefined type %u", type_id);
    ObjRef obj = allocateRaw(types_[type_id].size);
    obj_types_[obj] = type_id;
    return obj;
}

ObjRef
Context::allocArray(FieldKind element, std::uint64_t count)
{
    std::uint64_t stride =
        element == FieldKind::kPtr ? costs_.ptr_bytes : 8;
    ObjRef array = allocateRaw(stride * count);
    arrays_[array] = ArrayInfo{element, stride};
    return array;
}

void
Context::free(ObjRef obj)
{
    onFree(obj);
}

std::uint64_t
Context::allocationSize(ObjRef obj) const
{
    auto it = alloc_sizes_.find(obj);
    return it == alloc_sizes_.end() ? 0 : it->second;
}

std::uint64_t
Context::fieldAddress(ObjRef obj, unsigned field,
                      FieldKind expected) const
{
    auto type_it = obj_types_.find(obj);
    if (type_it == obj_types_.end())
        support::panic("field access on non-object 0x%llx",
                       static_cast<unsigned long long>(obj));
    const TypeLayout &layout = types_[type_it->second];
    if (field >= layout.fields.size())
        support::panic("field %u out of range", field);
    if (layout.fields[field] != expected)
        support::panic("field %u kind mismatch", field);
    return obj + layout.offsets[field];
}

std::uint64_t
Context::elementAddress(ObjRef array, std::uint64_t index,
                        FieldKind &kind_out) const
{
    auto it = arrays_.find(array);
    if (it == arrays_.end())
        support::panic("element access on non-array 0x%llx",
                       static_cast<unsigned long long>(array));
    kind_out = it->second.element;
    return array + index * it->second.stride;
}

std::uint64_t
Context::loadRaw(std::uint64_t vaddr) const
{
    std::uint64_t index = (vaddr - kWorkloadHeapBase) / 8;
    return index < arena_.size() ? arena_[index] : 0;
}

void
Context::storeRaw(std::uint64_t vaddr, std::uint64_t value)
{
    std::uint64_t index = (vaddr - kWorkloadHeapBase) / 8;
    if (index >= arena_.size())
        support::panic("workload store outside the allocated heap");
    arena_[index] = value;
}

std::uint64_t
Context::loadWord(ObjRef obj, unsigned field)
{
    std::uint64_t addr = fieldAddress(obj, field, FieldKind::kWord);
    onInstructions(1 + kAccessOverheadInstr + costs_.check_instrs);
    onLoad(addr, 8, false, 0);
    return loadRaw(addr);
}

void
Context::storeWord(ObjRef obj, unsigned field, std::uint64_t value)
{
    std::uint64_t addr = fieldAddress(obj, field, FieldKind::kWord);
    onInstructions(1 + kAccessOverheadInstr + costs_.check_instrs);
    onStore(addr, 8, false, 0, 0);
    storeRaw(addr, value);
}

ObjRef
Context::loadPtr(ObjRef obj, unsigned field)
{
    std::uint64_t addr = fieldAddress(obj, field, FieldKind::kPtr);
    ObjRef value = loadRaw(addr);
    onInstructions(costs_.ptr_refs + kAccessOverheadInstr + costs_.check_instrs);
    onLoad(addr, costs_.ptr_bytes, true, allocationSize(value));
    return value;
}

void
Context::storePtr(ObjRef obj, unsigned field, ObjRef value)
{
    std::uint64_t addr = fieldAddress(obj, field, FieldKind::kPtr);
    onInstructions(costs_.ptr_refs + kAccessOverheadInstr + costs_.check_instrs);
    onStore(addr, costs_.ptr_bytes, true, allocationSize(value),
            value);
    storeRaw(addr, value);
}

std::uint64_t
Context::loadWordAt(ObjRef array, std::uint64_t index)
{
    FieldKind kind;
    std::uint64_t addr = elementAddress(array, index, kind);
    if (kind != FieldKind::kWord)
        support::panic("loadWordAt on pointer array");
    onInstructions(1 + kAccessOverheadInstr + costs_.check_instrs);
    onLoad(addr, 8, false, 0);
    return loadRaw(addr);
}

void
Context::storeWordAt(ObjRef array, std::uint64_t index,
                     std::uint64_t value)
{
    FieldKind kind;
    std::uint64_t addr = elementAddress(array, index, kind);
    if (kind != FieldKind::kWord)
        support::panic("storeWordAt on pointer array");
    onInstructions(1 + kAccessOverheadInstr + costs_.check_instrs);
    onStore(addr, 8, false, 0, 0);
    storeRaw(addr, value);
}

ObjRef
Context::loadPtrAt(ObjRef array, std::uint64_t index)
{
    FieldKind kind;
    std::uint64_t addr = elementAddress(array, index, kind);
    if (kind != FieldKind::kPtr)
        support::panic("loadPtrAt on word array");
    ObjRef value = loadRaw(addr);
    onInstructions(costs_.ptr_refs + kAccessOverheadInstr + costs_.check_instrs);
    onLoad(addr, costs_.ptr_bytes, true, allocationSize(value));
    return value;
}

void
Context::storePtrAt(ObjRef array, std::uint64_t index, ObjRef value)
{
    FieldKind kind;
    std::uint64_t addr = elementAddress(array, index, kind);
    if (kind != FieldKind::kPtr)
        support::panic("storePtrAt on word array");
    onInstructions(costs_.ptr_refs + kAccessOverheadInstr + costs_.check_instrs);
    onStore(addr, costs_.ptr_bytes, true, allocationSize(value),
            value);
    storeRaw(addr, value);
}

void
Context::compute(std::uint64_t count)
{
    onInstructions(count);
}

} // namespace cheri::workloads
