/**
 * @file
 * A managed-runtime guest: a small stack-bytecode VM with a semispace
 * copying garbage collector, emitted as guest assembly and executed
 * by the real CPU interpreter like the guest Olden kernels. This is
 * the first guest that behaves like real managed software rather than
 * a pointer kernel: an interpreter dispatch loop, heap records
 * discriminated at runtime, and a Cheney-style evacuating collector
 * whose copy loop must preserve capability tags.
 *
 * The kernel is emitted for all three compilation models of the
 * paper's evaluation (Section 7): plain MIPS pointers, CCured-style
 * software bounds checks, and CHERI capabilities. Under the CHERI
 * model, heap objects are capability-addressed records, object
 * references are tagged capabilities, and the GC's copy loop moves
 * field slots with CLC/CSC so tags survive evacuation. A deliberate
 * "integer copy" mode reproduces the CRuby-on-CHERI tag-stripping
 * pitfall: the evacuation loop copies objects through CLD/CSD, which
 * architecturally clears the tags of the copied capability fields, so
 * the mutator's next dereference of a moved reference must raise a
 * tag-violation trap — never silently corrupt the heap.
 *
 * The VM's memory regions (bytecode, operand stack, both semispaces)
 * are carved out of the guest heap with os::CapAllocator in the setup
 * path — including an allocate/free/reallocate sequence, making this
 * the first guest to exercise allocator reuse — and the hot paths
 * exercise CFromPtr (object-capability minting from a bump offset),
 * CToPtr (capability-to-offset interop in the evacuator) and
 * CClearTag (poisoning the stale from-space capability).
 */

#ifndef CHERI_WORKLOADS_VM_GUEST_H
#define CHERI_WORKLOADS_VM_GUEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/guest_olden.h"
#include "workloads/workload.h"

namespace cheri::workloads
{

/** Compilation model the VM kernel is emitted for. */
enum class VmModel
{
    kMips,   ///< raw 8-byte pointers, no checks
    kCcured, ///< raw pointers + software bounds-check sequences
    kCheri,  ///< tagged capabilities, hardware-checked
};

/** Stable lower-case model name ("mips", "ccured", "cheri"). */
const char *vmModelName(VmModel model);

/** How the collector's evacuation loop copies object fields. */
enum class VmGcCopy
{
    kCapability, ///< CLC/CSC per field slot: tags survive the move
    kInteger,    ///< CLD/CSD over the raw bytes: the CRuby pitfall —
                 ///< tags are architecturally stripped, and the
                 ///< mutator's next dereference must trap
};

/**
 * Bytecode operations. One instruction is an (opcode, immediate)
 * pair of 64-bit words; the immediate is an integer constant, a
 * local-slot index, or an absolute bytecode pc for branches.
 */
enum class VmOp : std::uint32_t
{
    kHalt = 0, ///< pop the result int, checksum, BREAK
    kPushI,    ///< push the immediate as an int
    kPushNull, ///< push the null reference
    kAdd,      ///< pop two ints, push their sum
    kLoadL,    ///< push a copy of local slot imm
    kStoreL,   ///< pop into local slot imm
    kNewPair,  ///< pop next(ref), val(int); push pair{val, next}
    kNewNode,  ///< pop right(ref), left(ref); push node{left, right}
    kGetF0,    ///< pop ref, push field 0 (pair val / node left)
    kGetF1,    ///< pop ref, push field 1 (pair next / node right)
    kIsNull,   ///< pop ref, push 1 if null else 0
    kIsPair,   ///< pop ref, push 1 if pair else 0
    kJmp,      ///< pc = imm
    kBnz,      ///< pop int; if nonzero pc = imm
};

/**
 * The bytecode assembler used in the guest's setup path: programs are
 * authored against labels, then finish() resolves branch targets to
 * absolute bytecode pcs. The resulting (op, imm) stream is
 * materialized into the guest's bytecode region by the emitted
 * prologue and interpreted by the in-guest dispatch loop.
 */
class VmAssembler
{
  public:
    using Label = std::size_t;

    Label newLabel();
    void bind(Label label);

    void halt();
    void pushi(std::int32_t value);
    void pushnull();
    void add();
    void loadl(unsigned slot);
    void storel(unsigned slot);
    void newpair();
    void newnode();
    void getf0();
    void getf1();
    void isnull();
    void ispair();
    void jmp(Label label);
    void bnz(Label label);

    /** One resolved bytecode instruction. */
    struct Inst
    {
        VmOp op = VmOp::kHalt;
        std::int32_t imm = 0;
    };

    /** Resolve labels; every label must be bound exactly once. */
    std::vector<Inst> finish();

  private:
    void emit(VmOp op, std::int32_t imm, bool is_label = false);

    struct Raw
    {
        VmOp op;
        std::int64_t imm;
        bool is_label;
    };
    std::vector<Raw> insts_;
    std::vector<std::int64_t> label_pcs_;
    bool finished_ = false;
};

/** Which churn program the VM runs. */
enum class VmProgram
{
    kListChurn, ///< rebuild + walk a linked list of pairs each round
    kTreeChurn, ///< rebuild + walk a node spine with pair leaves
};

/** Shape of one VM guest. */
struct VmConfig
{
    VmModel model = VmModel::kCheri;
    VmGcCopy gc_copy = VmGcCopy::kCapability;
    VmProgram program = VmProgram::kListChurn;
    /** Churn rounds; each round's previous structure becomes garbage. */
    unsigned rounds = 6;
    /** List pairs (kListChurn) or spine nodes (kTreeChurn) per round. */
    unsigned units = 12;
    /** Live-object capacity of one semispace; must exceed the peak
     *  reachable count or the mirror rejects the shape as OOM. */
    unsigned semispace_objects = 18;
};

/** Host-mirror outcome of one VM run (model-independent). */
struct VmMirror
{
    std::uint64_t result = 0;
    std::uint64_t allocations = 0;
    std::uint64_t collections = 0;
    /** ((result * 31 + collections) * 31 + allocations), exactly the
     *  fold the guest computes at kHalt. */
    std::uint64_t checksum = 0;
};

/**
 * Simulate the configured program on the host, including the
 * semispace collection schedule, and return the expected outcome.
 * Fatals if the shape overflows the semispace or the operand stack —
 * the same shapes guestVm() would refuse.
 */
VmMirror vmMirror(const VmConfig &config);

/**
 * Emit the VM guest for one model. The returned program runs from
 * entry to BREAK with the mirror's checksum in v0; under
 * VmGcCopy::kInteger (CHERI model only) it instead deterministically
 * raises a capability tag-violation trap on the first dereference of
 * a reference whose tag the integer copy stripped.
 */
GuestProgram guestVm(const VmConfig &config);

/**
 * The managed-runtime profile as a Context workload: the same
 * list-churn + semispace-evacuation schedule as the bytecode guest,
 * modeled through the cost-accounting Context so the limit study and
 * timing machinery can weigh a GC-heavy, allocation-heavy profile
 * against the Olden pointer kernels. size_a = churn rounds, size_b =
 * list pairs per round; the collection schedule is counted in
 * objects, so the checksum is identical across compilation models.
 *
 * Reachable through makeWorkload("vm") only — it is deliberately not
 * part of fpgaBenchmarks()/oldenSuite(), which reproduce the paper's
 * figures.
 */
class VmChurn : public Workload
{
  public:
    std::string name() const override { return "vm"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {6, 12, 3}; }
    WorkloadParams paperParams() const override { return {48, 24, 3}; }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_VM_GUEST_H
