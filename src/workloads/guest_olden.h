/**
 * @file
 * Guest-assembly Olden kernels: pointer-chasing miniatures of treeadd
 * and bisort emitted through the structured assembler and executed by
 * the real CPU interpreter (Cpu::run), unlike the Context-based Olden
 * implementations which model timing from the host. These drive the
 * interpreter hot loop end to end — PCC check, TLB, L1I, decode,
 * execute — so they are the workloads for the emulator-throughput
 * benchmark and for the fetch fast-path invariance tests.
 */

#ifndef CHERI_WORKLOADS_GUEST_OLDEN_H
#define CHERI_WORKLOADS_GUEST_OLDEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.h"

namespace cheri::workloads
{

/** Virtual-memory layout shared by the guest kernels. */
struct GuestLayout
{
    std::uint64_t code_base = 0x10000;
    std::uint64_t heap_base = 0x100000;
    std::uint64_t heap_bytes = 2 * 1024 * 1024;
    std::uint64_t stack_top = 0x400000;
    std::uint64_t stack_bytes = 64 * 1024;
};

/** One assembled guest kernel plus its self-check. */
struct GuestProgram
{
    std::string name;
    std::vector<std::uint32_t> text;
    GuestLayout layout;
    /** Value the program must leave in v0 (and s0) at BREAK. */
    std::uint64_t expected_checksum = 0;
};

/**
 * treeadd: builds a complete binary tree of 2^levels - 1 heap nodes
 * (value, left, right — 24 bytes), then recursively sums it `repeats`
 * times through legacy loads/stores and a real call stack.
 */
GuestProgram guestTreeadd(unsigned levels, unsigned repeats);

/**
 * bisort (miniature): odd-even transposition sort of `elements`
 * descending dwords accessed exclusively through a bounded capability
 * (CLD/CSD via c1), followed by an order-sensitive checksum pass.
 */
GuestProgram guestBisort(unsigned elements);

/**
 * mst (miniature): Prim's minimum spanning tree over a dense `nodes` x
 * `nodes` graph. The adjacency matrix (weights w(i,j) =
 * ((i*7 + j*13) & 63) + 1) lives behind a bounded capability (CLD/CSD
 * via c1); the dist and in-tree arrays use legacy loads/stores. The
 * checksum is the total tree weight, mirrored on the host.
 */
GuestProgram guestMst(unsigned nodes);

/**
 * em3d (miniature): `iters` rounds of the electromagnetic propagation
 * kernel over `n` E nodes and `n` H nodes with `degree` dependencies
 * each, dep(i,d) = (i*3 + d*5 + 1) % n computed in the guest with
 * DDIVU/MFHI. E values are accessed only through a bounded capability
 * (via c1); H values through legacy loads/stores. The checksum folds
 * both arrays order-sensitively (x = 3x + v), mirrored on the host.
 */
GuestProgram guestEm3d(unsigned n, unsigned degree, unsigned iters);

/** Map the kernel's layout and load its text on a machine. */
void loadGuestProgram(core::Machine &machine, const GuestProgram &prog);

/**
 * Run a loaded kernel from its entry to BREAK and verify the
 * checksum; fatals on a trap or checksum mismatch so benchmarks
 * cannot silently time a broken run. Returns the RunResult.
 */
core::RunResult runGuestProgram(core::Machine &machine,
                                const GuestProgram &prog,
                                std::uint64_t max_insts = 1'000'000'000);

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_GUEST_OLDEN_H
