/**
 * @file
 * treeadd — build a balanced binary tree, then sum it by recursive
 * traversal. The simplest Olden benchmark; its profile is almost
 * identical to bisort's (Section 8).
 */

#include "workloads/olden.h"

namespace cheri::workloads
{

namespace
{

enum : unsigned
{
    kValue = 0,
    kLeft = 1,
    kRight = 2,
};

ObjRef
buildTree(Context &ctx, unsigned type, unsigned levels)
{
    if (levels == 0)
        return kNull;
    ctx.compute(kCallOverheadInstr);
    ObjRef node = ctx.alloc(type);
    ctx.storeWord(node, kValue, 1);
    ctx.storePtr(node, kLeft, buildTree(ctx, type, levels - 1));
    ctx.storePtr(node, kRight, buildTree(ctx, type, levels - 1));
    return node;
}

std::uint64_t
sumTree(Context &ctx, ObjRef node)
{
    if (node == kNull)
        return 0;
    std::uint64_t value = ctx.loadWord(node, kValue);
    ctx.compute(kCallOverheadInstr + 2); // call frame + add + branch
    return value + sumTree(ctx, ctx.loadPtr(node, kLeft)) +
           sumTree(ctx, ctx.loadPtr(node, kRight));
}

} // namespace

std::uint64_t
Treeadd::run(Context &ctx, const WorkloadParams &params) const
{
    unsigned type = ctx.defineType(
        {FieldKind::kWord, FieldKind::kPtr, FieldKind::kPtr});
    unsigned levels = static_cast<unsigned>(params.size_a);
    if (levels == 0)
        levels = 1;

    ctx.setPhase(Phase::kAlloc);
    ObjRef root = buildTree(ctx, type, levels);

    ctx.setPhase(Phase::kCompute);
    return sumTree(ctx, root); // == 2^levels - 1
}

WorkloadParams
Treeadd::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    std::uint64_t nodes = heap_bytes / 24; // 24-byte MIPS nodes
    unsigned levels = 1;
    while ((2ULL << levels) - 1 <= nodes)
        ++levels;
    return {levels, 0, 1};
}

} // namespace cheri::workloads
