/**
 * @file
 * health — the Columbian health-care simulation: a 4-ary tree of
 * villages, each with a waiting list of patients; each time step
 * generates patients at the leaves, treats them for a few steps, and
 * refers a fraction up toward the root. Linked-list heavy, with
 * allocation interleaved into the compute phase like the original.
 */

#include "workloads/olden.h"

#include "support/rng.h"

namespace cheri::workloads
{

namespace
{

/** Village fields: {seed, treated} words; {parent, c0..c3, list}. */
enum : unsigned
{
    kSeed = 0,
    kTreated = 1,
    kParent = 2,
    kChild0 = 3, // children are kChild0 + i, i in 0..3
    kList = 7,
};

/** Patient fields: {remaining, hops} words; {next} pointer. */
enum : unsigned
{
    kRemaining = 0,
    kHops = 1,
    kNext = 2,
};

ObjRef
buildVillages(Context &ctx, unsigned type, unsigned levels,
              ObjRef parent, std::uint64_t &seed_counter)
{
    if (levels == 0)
        return kNull;
    ObjRef village = ctx.alloc(type);
    ctx.storeWord(village, kSeed, seed_counter++);
    ctx.storeWord(village, kTreated, 0);
    ctx.storePtr(village, kParent, parent);
    ctx.storePtr(village, kList, kNull);
    for (unsigned c = 0; c < 4; ++c)
        ctx.storePtr(village, kChild0 + c,
                     buildVillages(ctx, type, levels - 1, village,
                                   seed_counter));
    return village;
}

/** One simulation step over the subtree. */
void
simulate(Context &ctx, unsigned patient_type, ObjRef village,
         std::uint64_t step, std::uint64_t seed)
{
    if (village == kNull)
        return;

    ctx.compute(kCallOverheadInstr);
    bool is_leaf = ctx.loadPtr(village, kChild0) == kNull;
    for (unsigned c = 0; c < 4 && !is_leaf; ++c)
        simulate(ctx, patient_type, ctx.loadPtr(village, kChild0 + c),
                 step, seed);

    // Leaves admit a new patient on a deterministic schedule.
    std::uint64_t vseed = ctx.loadWord(village, kSeed);
    ctx.compute(4);
    if (is_leaf && (vseed + step + seed) % 3 == 0) {
        ObjRef patient = ctx.alloc(patient_type);
        ctx.storeWord(patient, kRemaining, 1 + (vseed + step) % 4);
        ctx.storeWord(patient, kHops, 0);
        ctx.storePtr(patient, kNext, ctx.loadPtr(village, kList));
        ctx.storePtr(village, kList, patient);
    }

    // Treat the waiting list: finished patients leave (or refer up).
    ObjRef prev = kNull;
    ObjRef patient = ctx.loadPtr(village, kList);
    while (patient != kNull) {
        ObjRef next = ctx.loadPtr(patient, kNext);
        std::uint64_t remaining = ctx.loadWord(patient, kRemaining);
        ctx.compute(3);
        if (remaining > 0) {
            ctx.storeWord(patient, kRemaining, remaining - 1);
            prev = patient;
        } else {
            // Unlink.
            if (prev == kNull)
                ctx.storePtr(village, kList, next);
            else
                ctx.storePtr(prev, kNext, next);

            std::uint64_t hops = ctx.loadWord(patient, kHops);
            ObjRef parent = ctx.loadPtr(village, kParent);
            ctx.compute(2);
            if (parent != kNull && (vseed + hops) % 4 == 0) {
                // Refer one in four to the parent village.
                ctx.storeWord(patient, kRemaining, 2);
                ctx.storeWord(patient, kHops, hops + 1);
                ctx.storePtr(patient, kNext,
                             ctx.loadPtr(parent, kList));
                ctx.storePtr(parent, kList, patient);
            } else {
                ctx.storeWord(village, kTreated,
                              ctx.loadWord(village, kTreated) + 1);
                ctx.free(patient);
            }
        }
        patient = next;
    }
}

std::uint64_t
sumTreated(Context &ctx, ObjRef village)
{
    if (village == kNull)
        return 0;
    std::uint64_t total = ctx.loadWord(village, kTreated);
    for (unsigned c = 0; c < 4; ++c)
        total += sumTreated(ctx, ctx.loadPtr(village, kChild0 + c));
    return total;
}

} // namespace

std::uint64_t
Health::run(Context &ctx, const WorkloadParams &params) const
{
    unsigned levels = static_cast<unsigned>(params.size_a);
    if (levels == 0)
        levels = 2;
    if (levels > 7)
        levels = 7;
    std::uint64_t steps = params.size_b == 0 ? 20 : params.size_b;

    unsigned village_type = ctx.defineType(
        {FieldKind::kWord, FieldKind::kWord, FieldKind::kPtr,
         FieldKind::kPtr, FieldKind::kPtr, FieldKind::kPtr,
         FieldKind::kPtr, FieldKind::kPtr});
    unsigned patient_type = ctx.defineType(
        {FieldKind::kWord, FieldKind::kWord, FieldKind::kPtr});

    ctx.setPhase(Phase::kAlloc);
    std::uint64_t seed_counter = params.seed;
    ObjRef root =
        buildVillages(ctx, village_type, levels, kNull, seed_counter);

    // Like the original, allocation (patients) continues during the
    // simulation itself, so the compute phase includes malloc traffic.
    ctx.setPhase(Phase::kCompute);
    for (std::uint64_t step = 0; step < steps; ++step)
        simulate(ctx, patient_type, root, step, params.seed);

    return sumTreated(ctx, root);
}

WorkloadParams
Health::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    // Villages dominate: 80 B each under MIPS, (4^L - 1) / 3 of them.
    unsigned levels = 1;
    while (levels < 7) {
        std::uint64_t villages = ((1ULL << (2 * (levels + 1))) - 1) / 3;
        if (villages * 80 > heap_bytes)
            break;
        ++levels;
    }
    return {levels, 40, 13};
}

} // namespace cheri::workloads
