/**
 * @file
 * The individual Olden benchmarks. Each class reimplements the
 * published benchmark's data structures and traversal pattern against
 * the workload Context; deviations from the original C sources are
 * documented per class and in EXPERIMENTS.md.
 */

#ifndef CHERI_WORKLOADS_OLDEN_H
#define CHERI_WORKLOADS_OLDEN_H

#include "workloads/workload.h"

namespace cheri::workloads
{

/**
 * bisort: adaptive bitonic sort over a perfect binary tree with a
 * spare value (Bilardi & Nicolau), the algorithm the Olden benchmark
 * implements. size_a = node count (rounded down to 2^k - 1).
 * Paper invocation: "bisort 250000 0".
 */
class Bisort : public Workload
{
  public:
    std::string name() const override { return "bisort"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {4095, 0, 7}; }
    WorkloadParams paperParams() const override
    {
        return {250000, 0, 7};
    }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

/**
 * mst: minimum spanning tree with per-vertex hash tables of edge
 * weights (Prim with the Olden BlueRule scan). size_a = vertices,
 * size_b = neighbourhood degree. Paper invocation: "mst 1024 0".
 */
class Mst : public Workload
{
  public:
    std::string name() const override { return "mst"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {128, 16, 3}; }
    WorkloadParams paperParams() const override { return {1024, 32, 3}; }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

/**
 * treeadd: recursive sum over a balanced binary tree.
 * size_a = levels. Paper invocation: "treeadd 21 1 0".
 */
class Treeadd : public Workload
{
  public:
    std::string name() const override { return "treeadd"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {12, 0, 1}; }
    WorkloadParams paperParams() const override { return {21, 0, 1}; }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

/**
 * perimeter: perimeter of a raster region held in a quadtree, using
 * Samet's adjacent-neighbour algorithm over parent pointers.
 * size_a = maximum subdivision depth. Paper invocation:
 * "perimeter 12 0".
 */
class Perimeter : public Workload
{
  public:
    std::string name() const override { return "perimeter"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {6, 0, 5}; }
    WorkloadParams paperParams() const override { return {12, 0, 5}; }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

/**
 * em3d: electromagnetic wave propagation over a bipartite E/H node
 * graph; fixed-point arithmetic. size_a = nodes per side,
 * size_b = out-degree.
 */
class Em3d : public Workload
{
  public:
    std::string name() const override { return "em3d"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {256, 4, 11}; }
    WorkloadParams paperParams() const override { return {2000, 8, 11}; }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

/**
 * health: hierarchical health-care simulation over a 4-ary village
 * tree with per-village patient lists. size_a = tree levels,
 * size_b = simulated time steps.
 */
class Health : public Workload
{
  public:
    std::string name() const override { return "health"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {4, 40, 13}; }
    WorkloadParams paperParams() const override { return {5, 500, 13}; }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

/**
 * power: hierarchical power-system optimization over a fixed
 * feeder/lateral/branch/leaf tree of linked lists; repeated
 * price-down/demand-up passes in fixed point. size_a = laterals per
 * feeder, size_b = iterations.
 */
class Power : public Workload
{
  public:
    std::string name() const override { return "power"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {8, 4, 17}; }
    WorkloadParams paperParams() const override { return {64, 8, 17}; }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

/**
 * tsp: traveling-salesman tour construction — cities in a BSP tree,
 * tours as circular doubly-linked lists merged bottom-up by
 * cheapest-edge insertion. size_a = cities.
 */
class Tsp : public Workload
{
  public:
    std::string name() const override { return "tsp"; }
    std::uint64_t run(Context &context,
                      const WorkloadParams &params) const override;
    WorkloadParams defaultParams() const override { return {256, 0, 19}; }
    WorkloadParams paperParams() const override { return {1024, 0, 19}; }
    WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const override;
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_OLDEN_H
