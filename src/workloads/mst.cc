/**
 * @file
 * mst — minimum spanning tree over a graph whose adjacency weights
 * live in per-vertex hash tables, computed with a Prim/BlueRule scan
 * as in the Olden benchmark. The build phase is dominated by hash
 * insertion (Section 8: "the hash calculations that are the same in
 * both cases"); the compute phase is a linear scan of the vertex
 * list with hash lookups.
 *
 * Deviation from the original: edges connect each vertex to its
 * size_b nearest ring neighbours instead of the full O(n^2) clique,
 * so the heap size is parameterizable for the Figure 5 sweep.
 */

#include "workloads/olden.h"

#include "support/rng.h"

namespace cheri::workloads
{

namespace
{

constexpr std::uint64_t kInfinity = ~0ULL;
constexpr std::uint64_t kHashBuckets = 16;

/** Vertex: {mindist, inserted flag} words, {next, hash} pointers. */
enum : unsigned
{
    kVMindist = 0,
    kVInserted = 1,
    kVId = 2,
    kVNext = 3,
    kVHash = 4,
};

/** Hash entry: {key, weight} words, {next} pointer. */
enum : unsigned
{
    kEKey = 0,
    kEWeight = 1,
    kENext = 2,
};

std::uint64_t
bucketOf(std::uint64_t key)
{
    return (key * 2654435761ULL >> 16) % kHashBuckets;
}

/** Symmetric deterministic edge weight. */
std::uint64_t
edgeWeight(std::uint64_t a, std::uint64_t b, std::uint64_t seed)
{
    std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
    std::uint64_t x = (lo * 0x9e3779b97f4a7c15ULL) ^
                      (hi * 0xbf58476d1ce4e5b9ULL) ^ seed;
    x ^= x >> 31;
    return x % 2048 + 1;
}

void
hashInsert(Context &ctx, unsigned entry_type, ObjRef buckets,
           std::uint64_t key, std::uint64_t weight)
{
    std::uint64_t bucket = bucketOf(key);
    ctx.compute(5); // hash computation
    ObjRef entry = ctx.alloc(entry_type);
    ctx.storeWord(entry, kEKey, key);
    ctx.storeWord(entry, kEWeight, weight);
    ctx.storePtr(entry, kENext, ctx.loadPtrAt(buckets, bucket));
    ctx.storePtrAt(buckets, bucket, entry);
}

/** Lookup; returns kInfinity when the key is absent. */
std::uint64_t
hashLookup(Context &ctx, ObjRef buckets, std::uint64_t key)
{
    std::uint64_t bucket = bucketOf(key);
    ctx.compute(5);
    for (ObjRef entry = ctx.loadPtrAt(buckets, bucket); entry != kNull;
         entry = ctx.loadPtr(entry, kENext)) {
        ctx.compute(2);
        if (ctx.loadWord(entry, kEKey) == key)
            return ctx.loadWord(entry, kEWeight);
    }
    return kInfinity;
}

} // namespace

std::uint64_t
Mst::run(Context &ctx, const WorkloadParams &params) const
{
    std::uint64_t n = params.size_a < 2 ? 2 : params.size_a;
    std::uint64_t degree = params.size_b == 0 ? 8 : params.size_b;

    unsigned vertex_type = ctx.defineType(
        {FieldKind::kWord, FieldKind::kWord, FieldKind::kWord,
         FieldKind::kPtr, FieldKind::kPtr});
    unsigned entry_type = ctx.defineType(
        {FieldKind::kWord, FieldKind::kWord, FieldKind::kPtr});

    // --- build phase: vertex list + hash tables of edge weights ---
    ctx.setPhase(Phase::kAlloc);
    std::vector<ObjRef> vertices(n);
    ObjRef head = kNull;
    for (std::uint64_t i = n; i-- > 0;) {
        ObjRef v = ctx.alloc(vertex_type);
        ctx.storeWord(v, kVMindist, kInfinity);
        ctx.storeWord(v, kVInserted, 0);
        ctx.storeWord(v, kVId, i);
        ctx.storePtr(v, kVNext, head);
        ctx.storePtr(v, kVHash,
                     ctx.allocArray(FieldKind::kPtr, kHashBuckets));
        head = v;
        vertices[i] = v;
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        ObjRef buckets = ctx.loadPtr(vertices[i], kVHash);
        for (std::uint64_t d = 1; d <= degree / 2; ++d) {
            std::uint64_t j = (i + d) % n;
            std::uint64_t k = (i + n - d) % n;
            hashInsert(ctx, entry_type, buckets, j,
                       edgeWeight(i, j, params.seed));
            hashInsert(ctx, entry_type, buckets, k,
                       edgeWeight(i, k, params.seed));
        }
    }

    // --- compute phase: Prim with the BlueRule scan ---
    ctx.setPhase(Phase::kCompute);
    std::uint64_t total = 0;
    std::uint64_t last_id = 0;
    ctx.storeWord(vertices[0], kVInserted, 1);

    for (std::uint64_t step = 1; step < n; ++step) {
        // Scan the whole vertex list, refreshing mindist against the
        // last inserted vertex, and remember the global minimum.
        ObjRef best = kNull;
        std::uint64_t best_dist = kInfinity;
        for (ObjRef v = head; v != kNull; v = ctx.loadPtr(v, kVNext)) {
            ctx.compute(3);
            if (ctx.loadWord(v, kVInserted) != 0)
                continue;
            std::uint64_t dist = hashLookup(
                ctx, ctx.loadPtr(v, kVHash), last_id);
            std::uint64_t mindist = ctx.loadWord(v, kVMindist);
            if (dist < mindist) {
                mindist = dist;
                ctx.storeWord(v, kVMindist, dist);
            }
            ctx.compute(2);
            if (mindist < best_dist) {
                best_dist = mindist;
                best = v;
            }
        }
        if (best == kNull)
            break; // disconnected (cannot happen on the ring)
        ctx.storeWord(best, kVInserted, 1);
        // Fresh vertex invalidates everyone's cached distance to it.
        last_id = ctx.loadWord(best, kVId);
        total += best_dist;
        ctx.compute(2);
    }
    return total;
}

WorkloadParams
Mst::paramsForHeapBytes(std::uint64_t heap_bytes) const
{
    // Per vertex under MIPS: vertex (40 B) + bucket array (128 B) +
    // degree entries (24 B each). With degree 8: ~360 B.
    std::uint64_t n = heap_bytes / 360;
    if (n < 2)
        n = 2;
    return {n, 8, 3};
}

} // namespace cheri::workloads
