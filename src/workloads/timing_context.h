/**
 * @file
 * Workload context that simulates timing against the CHERI machine's
 * memory hierarchy (Section 8): every access runs through the TLB and
 * the L1/L2 caches of a dedicated Machine instance, and instruction
 * counts accrue at CPI 1, so the three compilation models differ in
 * exactly the ways the paper measures — pointer footprint (cache
 * pressure), per-access check instructions, and allocation cost.
 */

#ifndef CHERI_WORKLOADS_TIMING_CONTEXT_H
#define CHERI_WORKLOADS_TIMING_CONTEXT_H

#include <memory>

#include "core/machine.h"
#include "workloads/context.h"

namespace cheri::workloads
{

/** Instruction and cycle totals for one Figure 4 phase. */
struct PhaseCosts
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
};

/** Simulates a workload's timing under one compilation model. */
class TimingContext : public Context
{
  public:
    explicit TimingContext(CompileModel model,
                           core::MachineConfig config = {});

    PhaseCosts allocPhase() const { return costs_by_phase_[0]; }
    PhaseCosts computePhase() const { return costs_by_phase_[1]; }
    PhaseCosts total() const;

    core::Machine &machine() { return *machine_; }

  protected:
    void onAlloc(std::uint64_t vaddr, std::uint64_t size) override;
    void onFree(std::uint64_t vaddr) override;
    void onLoad(std::uint64_t vaddr, std::uint64_t size, bool is_ptr,
                std::uint64_t target_size) override;
    void onStore(std::uint64_t vaddr, std::uint64_t size, bool is_ptr,
                 std::uint64_t target_size, std::uint64_t target) override;
    void onInstructions(std::uint64_t count) override;

  private:
    PhaseCosts &current() { return costs_by_phase_[phase() ==
                                                   Phase::kAlloc
                                               ? 0
                                               : 1]; }

    /** One timed access through TLB and caches. For capability
     *  stores, target/target_size describe the stored pointer so the
     *  written line carries the real capability image. */
    void access(std::uint64_t vaddr, std::uint64_t size, bool is_ptr,
                bool is_store, std::uint64_t target,
                std::uint64_t target_size);

    std::unique_ptr<core::Machine> machine_;
    PhaseCosts costs_by_phase_[2];
};

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_TIMING_CONTEXT_H
