#include "workloads/guest_olden.h"

#include "isa/assembler.h"
#include "support/logging.h"

namespace cheri::workloads
{

using namespace isa::reg;
using isa::Assembler;

namespace
{

/** Emit t_addr = heap + t_index * 24 (node stride) using shifts. */
void
emitNodeAddress(Assembler &a, unsigned t_addr, unsigned t_index,
                unsigned heap, unsigned scratch)
{
    a.dsll(scratch, t_index, 4); // index * 16
    a.dsll(t_addr, t_index, 3);  // index * 8
    a.daddu(t_addr, t_addr, scratch);
    a.daddu(t_addr, t_addr, heap);
}

} // namespace

GuestProgram
guestTreeadd(unsigned levels, unsigned repeats)
{
    if (levels == 0 || levels > 20)
        support::fatal("guestTreeadd: levels %u out of range", levels);
    if (repeats == 0)
        support::fatal("guestTreeadd: repeats must be positive");

    GuestProgram prog;
    prog.layout = GuestLayout{};
    prog.name = "treeadd";

    const std::uint64_t node_count = (1ULL << levels) - 1;
    if (node_count * 24 > prog.layout.heap_bytes)
        support::fatal("guestTreeadd: %llu nodes exceed the heap",
                       static_cast<unsigned long long>(node_count));
    // Node i holds value i: the tree sum is sum(0..N-1) per traversal.
    prog.expected_checksum =
        static_cast<std::uint64_t>(repeats) * (node_count * (node_count - 1) / 2);

    Assembler a(prog.layout.code_base);
    auto build_loop = a.newLabel();
    auto repeat_loop = a.newLabel();
    auto treeadd_fn = a.newLabel();
    auto nonnull = a.newLabel();

    // --- entry: registers and tree build ---
    a.li64(sp, prog.layout.stack_top);
    a.li64(s7, prog.layout.heap_base);
    a.li(t7, static_cast<std::int32_t>(node_count));
    a.li(s6, static_cast<std::int32_t>(repeats));
    a.move(s5, zero); // running total over repeats
    a.move(t0, zero); // node index i
    a.bind(build_loop);
    emitNodeAddress(a, t1, t0, s7, t2);
    a.sd(t0, t1, 0); // value = i
    a.dsll(t2, t0, 1);
    a.daddiu(t4, t2, 1); // left index 2i+1
    emitNodeAddress(a, t5, t4, s7, t6);
    a.sltu(t6, t4, t7);
    a.movz(t5, zero, t6); // null when out of range
    a.sd(t5, t1, 8);
    a.daddiu(t4, t2, 2); // right index 2i+2
    emitNodeAddress(a, t5, t4, s7, t6);
    a.sltu(t6, t4, t7);
    a.movz(t5, zero, t6);
    a.sd(t5, t1, 16);
    a.daddiu(t0, t0, 1);
    a.sltu(t2, t0, t7);
    a.bne(t2, zero, build_loop);
    a.nop();

    // --- repeated traversals ---
    a.bind(repeat_loop);
    a.move(a0, s7); // root is node 0
    a.jal(treeadd_fn);
    a.nop();
    a.daddu(s5, s5, v0);
    a.daddiu(s6, s6, -1);
    a.bgtz(s6, repeat_loop);
    a.nop();
    a.move(s0, s5);
    a.move(v0, s5);
    a.break_();

    // --- uint64 treeadd(node *a0): real recursion over sp ---
    a.bind(treeadd_fn);
    a.bne(a0, zero, nonnull);
    a.nop();
    a.jr(ra);
    a.move(v0, zero); // delay slot: return 0 for null
    a.bind(nonnull);
    a.daddiu(sp, sp, -32);
    a.sd(ra, sp, 24);
    a.sd(s0, sp, 16);
    a.sd(s1, sp, 8);
    a.ld(s0, a0, 0);  // value
    a.ld(s1, a0, 16); // right
    a.ld(a0, a0, 8);  // left
    a.jal(treeadd_fn);
    a.nop();
    a.daddu(s0, s0, v0);
    a.jal(treeadd_fn);
    a.move(a0, s1); // delay slot: argument for the right subtree
    a.daddu(s0, s0, v0);
    a.move(v0, s0);
    a.ld(ra, sp, 24);
    a.ld(s1, sp, 8);
    a.ld(s0, sp, 16);
    a.jr(ra);
    a.daddiu(sp, sp, 32); // delay slot: pop the frame

    prog.text = a.finish();
    return prog;
}

GuestProgram
guestBisort(unsigned elements)
{
    if (elements < 2 || elements > 4096)
        support::fatal("guestBisort: elements %u out of range", elements);

    GuestProgram prog;
    prog.layout = GuestLayout{};
    prog.name = "bisort";

    // The array starts descending (N..1); after the sort it is 1..N
    // and the checksum folds it order-sensitively: x = 3x + a[i].
    std::uint64_t checksum = 0;
    for (unsigned i = 1; i <= elements; ++i)
        checksum = 3 * checksum + i;
    prog.expected_checksum = checksum;

    Assembler a(prog.layout.code_base);
    auto init_loop = a.newLabel();
    auto sort_round = a.newLabel();
    auto pass_loop = a.newLabel();
    auto no_swap = a.newLabel();
    auto pass_done = a.newLabel();
    auto sum_loop = a.newLabel();

    // Derive c1 = [heap_base, elements * 8) from almighty c0; every
    // array access below is capability-checked.
    a.li64(t0, prog.layout.heap_base);
    a.cincbase(1, 0, t0);
    a.li(t1, static_cast<std::int32_t>(elements) * 8);
    a.csetlen(1, 1, t1);
    a.li(t3, static_cast<std::int32_t>(elements));

    // --- init: a[i] = N - i (descending) ---
    a.move(t2, zero);
    a.bind(init_loop);
    a.dsubu(t4, t3, t2);
    a.dsll(t5, t2, 3);
    a.csd(t4, 1, t5, 0);
    a.daddiu(t2, t2, 1);
    a.sltu(t6, t2, t3);
    a.bne(t6, zero, init_loop);
    a.nop();

    // --- odd-even transposition sort: N rounds ---
    a.move(s1, zero); // round
    a.bind(sort_round);
    a.andi(t2, s1, 1); // i starts at round & 1
    a.bind(pass_loop);
    a.daddiu(t4, t2, 1);
    a.sltu(t5, t4, t3);
    a.beq(t5, zero, pass_done);
    a.nop();
    a.dsll(t5, t2, 3);
    a.cld(t6, 1, t5, 0); // a[i]
    a.cld(t7, 1, t5, 8); // a[i+1]
    a.sltu(t8, t7, t6);
    a.beq(t8, zero, no_swap);
    a.nop();
    a.csd(t7, 1, t5, 0);
    a.csd(t6, 1, t5, 8);
    a.bind(no_swap);
    a.b(pass_loop);
    a.daddiu(t2, t2, 2); // delay slot: i += 2
    a.bind(pass_done);
    a.daddiu(s1, s1, 1);
    a.sltu(t5, s1, t3);
    a.bne(t5, zero, sort_round);
    a.nop();

    // --- order-sensitive checksum: s0 = 3 * s0 + a[i] ---
    a.move(s0, zero);
    a.move(t2, zero);
    a.bind(sum_loop);
    a.dsll(t5, t2, 3);
    a.cld(t6, 1, t5, 0);
    a.dsll(t4, s0, 1);
    a.daddu(s0, s0, t4); // s0 *= 3
    a.daddu(s0, s0, t6);
    a.daddiu(t2, t2, 1);
    a.sltu(t5, t2, t3);
    a.bne(t5, zero, sum_loop);
    a.nop();
    a.move(v0, s0);
    a.break_();

    prog.text = a.finish();
    return prog;
}

void
loadGuestProgram(core::Machine &machine, const GuestProgram &prog)
{
    const GuestLayout &l = prog.layout;
    machine.mapRange(l.heap_base, l.heap_bytes);
    machine.mapRange(l.stack_top - l.stack_bytes, l.stack_bytes);
    machine.loadProgram(l.code_base, prog.text);
    machine.reset(l.code_base);
}

core::RunResult
runGuestProgram(core::Machine &machine, const GuestProgram &prog,
                std::uint64_t max_insts)
{
    machine.reset(prog.layout.code_base);
    core::RunResult result = machine.cpu().run(max_insts);
    if (result.reason != core::StopReason::kBreak)
        support::fatal("guest %s stopped without BREAK (reason %d)",
                       prog.name.c_str(),
                       static_cast<int>(result.reason));
    if (machine.cpu().gpr(v0) != prog.expected_checksum)
        support::fatal("guest %s checksum %llx != expected %llx",
                       prog.name.c_str(),
                       static_cast<unsigned long long>(
                           machine.cpu().gpr(v0)),
                       static_cast<unsigned long long>(
                           prog.expected_checksum));
    return result;
}

} // namespace cheri::workloads
