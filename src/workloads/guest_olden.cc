#include "workloads/guest_olden.h"

#include "isa/assembler.h"
#include "support/logging.h"

namespace cheri::workloads
{

using namespace isa::reg;
using isa::Assembler;

namespace
{

/** Emit t_addr = heap + t_index * 24 (node stride) using shifts. */
void
emitNodeAddress(Assembler &a, unsigned t_addr, unsigned t_index,
                unsigned heap, unsigned scratch)
{
    a.dsll(scratch, t_index, 4); // index * 16
    a.dsll(t_addr, t_index, 3);  // index * 8
    a.daddu(t_addr, t_addr, scratch);
    a.daddu(t_addr, t_addr, heap);
}

} // namespace

GuestProgram
guestTreeadd(unsigned levels, unsigned repeats)
{
    if (levels == 0 || levels > 20)
        support::fatal("guestTreeadd: levels %u out of range", levels);
    if (repeats == 0)
        support::fatal("guestTreeadd: repeats must be positive");

    GuestProgram prog;
    prog.layout = GuestLayout{};
    prog.name = "treeadd";

    const std::uint64_t node_count = (1ULL << levels) - 1;
    if (node_count * 24 > prog.layout.heap_bytes)
        support::fatal("guestTreeadd: %llu nodes exceed the heap",
                       static_cast<unsigned long long>(node_count));
    // Node i holds value i: the tree sum is sum(0..N-1) per traversal.
    prog.expected_checksum =
        static_cast<std::uint64_t>(repeats) * (node_count * (node_count - 1) / 2);

    Assembler a(prog.layout.code_base);
    auto build_loop = a.newLabel();
    auto repeat_loop = a.newLabel();
    auto treeadd_fn = a.newLabel();
    auto nonnull = a.newLabel();

    // --- entry: registers and tree build ---
    a.li64(sp, prog.layout.stack_top);
    a.li64(s7, prog.layout.heap_base);
    a.li(t7, static_cast<std::int32_t>(node_count));
    a.li(s6, static_cast<std::int32_t>(repeats));
    a.move(s5, zero); // running total over repeats
    a.move(t0, zero); // node index i
    a.bind(build_loop);
    emitNodeAddress(a, t1, t0, s7, t2);
    a.sd(t0, t1, 0); // value = i
    a.dsll(t2, t0, 1);
    a.daddiu(t4, t2, 1); // left index 2i+1
    emitNodeAddress(a, t5, t4, s7, t6);
    a.sltu(t6, t4, t7);
    a.movz(t5, zero, t6); // null when out of range
    a.sd(t5, t1, 8);
    a.daddiu(t4, t2, 2); // right index 2i+2
    emitNodeAddress(a, t5, t4, s7, t6);
    a.sltu(t6, t4, t7);
    a.movz(t5, zero, t6);
    a.sd(t5, t1, 16);
    a.daddiu(t0, t0, 1);
    a.sltu(t2, t0, t7);
    a.bne(t2, zero, build_loop);
    a.nop();

    // --- repeated traversals ---
    a.bind(repeat_loop);
    a.move(a0, s7); // root is node 0
    a.jal(treeadd_fn);
    a.nop();
    a.daddu(s5, s5, v0);
    a.daddiu(s6, s6, -1);
    a.bgtz(s6, repeat_loop);
    a.nop();
    a.move(s0, s5);
    a.move(v0, s5);
    a.break_();

    // --- uint64 treeadd(node *a0): real recursion over sp ---
    a.bind(treeadd_fn);
    a.bne(a0, zero, nonnull);
    a.nop();
    a.jr(ra);
    a.move(v0, zero); // delay slot: return 0 for null
    a.bind(nonnull);
    a.daddiu(sp, sp, -32);
    a.sd(ra, sp, 24);
    a.sd(s0, sp, 16);
    a.sd(s1, sp, 8);
    a.ld(s0, a0, 0);  // value
    a.ld(s1, a0, 16); // right
    a.ld(a0, a0, 8);  // left
    a.jal(treeadd_fn);
    a.nop();
    a.daddu(s0, s0, v0);
    a.jal(treeadd_fn);
    a.move(a0, s1); // delay slot: argument for the right subtree
    a.daddu(s0, s0, v0);
    a.move(v0, s0);
    a.ld(ra, sp, 24);
    a.ld(s1, sp, 8);
    a.ld(s0, sp, 16);
    a.jr(ra);
    a.daddiu(sp, sp, 32); // delay slot: pop the frame

    prog.text = a.finish();
    return prog;
}

GuestProgram
guestBisort(unsigned elements)
{
    if (elements < 2 || elements > 4096)
        support::fatal("guestBisort: elements %u out of range", elements);

    GuestProgram prog;
    prog.layout = GuestLayout{};
    prog.name = "bisort";

    // The array starts descending (N..1); after the sort it is 1..N
    // and the checksum folds it order-sensitively: x = 3x + a[i].
    std::uint64_t checksum = 0;
    for (unsigned i = 1; i <= elements; ++i)
        checksum = 3 * checksum + i;
    prog.expected_checksum = checksum;

    Assembler a(prog.layout.code_base);
    auto init_loop = a.newLabel();
    auto sort_round = a.newLabel();
    auto pass_loop = a.newLabel();
    auto no_swap = a.newLabel();
    auto pass_done = a.newLabel();
    auto sum_loop = a.newLabel();

    // Derive c1 = [heap_base, elements * 8) from almighty c0; every
    // array access below is capability-checked. c1 is spilled to a
    // capability home in memory (the line below the stack) and
    // reloaded at the top of every sort round, so the program's
    // correctness rests on the stored tag staying intact — the
    // pattern real CHERI code exhibits and the fault-injection
    // campaign perturbs.
    a.li64(t0, prog.layout.heap_base);
    a.cincbase(1, 0, t0);
    a.li(t1, static_cast<std::int32_t>(elements) * 8);
    a.csetlen(1, 1, t1);
    a.li64(s7, prog.layout.stack_top - prog.layout.stack_bytes);
    a.csc(1, 0, s7, 0);
    a.li(t3, static_cast<std::int32_t>(elements));

    // --- init: a[i] = N - i (descending) ---
    a.move(t2, zero);
    a.bind(init_loop);
    a.dsubu(t4, t3, t2);
    a.dsll(t5, t2, 3);
    a.csd(t4, 1, t5, 0);
    a.daddiu(t2, t2, 1);
    a.sltu(t6, t2, t3);
    a.bne(t6, zero, init_loop);
    a.nop();

    // --- odd-even transposition sort: N rounds ---
    a.move(s1, zero); // round
    a.bind(sort_round);
    a.clc(1, 0, s7, 0); // reload the array capability from its home
    a.andi(t2, s1, 1);  // i starts at round & 1
    a.bind(pass_loop);
    a.daddiu(t4, t2, 1);
    a.sltu(t5, t4, t3);
    a.beq(t5, zero, pass_done);
    a.nop();
    a.dsll(t5, t2, 3);
    a.cld(t6, 1, t5, 0); // a[i]
    a.cld(t7, 1, t5, 8); // a[i+1]
    a.sltu(t8, t7, t6);
    a.beq(t8, zero, no_swap);
    a.nop();
    a.csd(t7, 1, t5, 0);
    a.csd(t6, 1, t5, 8);
    a.bind(no_swap);
    a.b(pass_loop);
    a.daddiu(t2, t2, 2); // delay slot: i += 2
    a.bind(pass_done);
    a.daddiu(s1, s1, 1);
    a.sltu(t5, s1, t3);
    a.bne(t5, zero, sort_round);
    a.nop();

    // --- order-sensitive checksum: s0 = 3 * s0 + a[i] ---
    a.move(s0, zero);
    a.move(t2, zero);
    a.bind(sum_loop);
    a.dsll(t5, t2, 3);
    a.cld(t6, 1, t5, 0);
    a.dsll(t4, s0, 1);
    a.daddu(s0, s0, t4); // s0 *= 3
    a.daddu(s0, s0, t6);
    a.daddiu(t2, t2, 1);
    a.sltu(t5, t2, t3);
    a.bne(t5, zero, sum_loop);
    a.nop();
    // Final tag consumption: reload c1 from its home and load through
    // it (dead load — the checksum is already in s0). A dropped home
    // tag surfaces here at the latest, as a tag-violation trap.
    a.clc(1, 0, s7, 0);
    a.cld(at, 1, zero, 0);
    a.move(v0, s0);
    a.break_();

    prog.text = a.finish();
    return prog;
}

GuestProgram
guestMst(unsigned nodes)
{
    if (nodes < 2 || nodes > 64)
        support::fatal("guestMst: nodes %u out of range", nodes);

    GuestProgram prog;
    prog.layout = GuestLayout{};
    prog.name = "mst";

    auto weight = [](unsigned i, unsigned j) -> std::uint64_t {
        return ((i * 7 + j * 13) & 63) + 1;
    };

    // Host mirror of the guest's Prim run below.
    {
        constexpr std::uint64_t kInf = 0x7fffffff;
        std::vector<std::uint64_t> dist(nodes);
        std::vector<bool> in(nodes, false);
        in[0] = true;
        for (unsigned j = 0; j < nodes; ++j)
            dist[j] = weight(0, j);
        std::uint64_t total = 0;
        for (unsigned round = 1; round < nodes; ++round) {
            std::uint64_t best = kInf;
            unsigned u = 0;
            for (unsigned j = 0; j < nodes; ++j) {
                if (!in[j] && dist[j] < best) {
                    best = dist[j];
                    u = j;
                }
            }
            total += best;
            in[u] = true;
            for (unsigned j = 0; j < nodes; ++j) {
                if (!in[j] && weight(u, j) < dist[j])
                    dist[j] = weight(u, j);
            }
        }
        prog.expected_checksum = total;
    }

    const std::uint64_t matrix_bytes =
        static_cast<std::uint64_t>(nodes) * nodes * 8;
    if (matrix_bytes + 2 * nodes * 8 > prog.layout.heap_bytes)
        support::fatal("guestMst: %u nodes exceed the heap", nodes);

    Assembler a(prog.layout.code_base);
    auto fill_i = a.newLabel();
    auto fill_j = a.newLabel();
    auto init_loop = a.newLabel();
    auto outer = a.newLabel();
    auto scan = a.newLabel();
    auto scan_skip = a.newLabel();
    auto relax = a.newLabel();
    auto relax_skip = a.newLabel();

    // c1 = matrix capability; s6 = dist base, s2 = in-flag base.
    // c1 is spilled to its capability home (s7) and reloaded every
    // Prim round — see guestBisort for the rationale.
    a.li64(t0, prog.layout.heap_base);
    a.cincbase(1, 0, t0);
    a.li(t1, static_cast<std::int32_t>(matrix_bytes));
    a.csetlen(1, 1, t1);
    a.li64(s7, prog.layout.stack_top - prog.layout.stack_bytes);
    a.csc(1, 0, s7, 0);
    a.li(t3, static_cast<std::int32_t>(nodes));
    a.li64(s6, prog.layout.heap_base + matrix_bytes);
    a.li64(s2, prog.layout.heap_base + matrix_bytes + nodes * 8);
    a.move(s5, zero); // total tree weight

    // --- fill the adjacency matrix through c1 ---
    a.move(t0, zero); // i
    a.move(s4, zero); // row byte offset (i * nodes * 8)
    a.bind(fill_i);
    a.move(t1, zero); // j
    a.bind(fill_j);
    a.dsll(t4, t0, 3);
    a.dsubu(t4, t4, t0); // 7i
    a.dsll(t5, t1, 3);
    a.dsll(t6, t1, 2);
    a.daddu(t5, t5, t6);
    a.daddu(t5, t5, t1); // 13j
    a.daddu(t4, t4, t5);
    a.andi(t4, t4, 63);
    a.daddiu(t4, t4, 1); // w(i,j)
    a.dsll(t6, t1, 3);
    a.daddu(t6, t6, s4);
    a.csd(t4, 1, t6, 0);
    a.daddiu(t1, t1, 1);
    a.sltu(t6, t1, t3);
    a.bne(t6, zero, fill_j);
    a.nop();
    a.daddiu(t0, t0, 1);
    a.daddiu(s4, s4, static_cast<std::int32_t>(nodes) * 8);
    a.sltu(t6, t0, t3);
    a.bne(t6, zero, fill_i);
    a.nop();

    // --- init: in[0]=1, in[j>0]=0, dist[j] = w(0,j) (matrix row 0) ---
    a.move(t0, zero);
    a.bind(init_loop);
    a.dsll(t5, t0, 3);
    a.cld(t4, 1, t5, 0); // matrix[0*n + j]
    a.daddu(t6, s6, t5);
    a.sd(t4, t6, 0);
    a.daddu(t6, s2, t5);
    a.sd(zero, t6, 0);
    a.daddiu(t0, t0, 1);
    a.sltu(t5, t0, t3);
    a.bne(t5, zero, init_loop);
    a.nop();
    a.li(t4, 1);
    a.sd(t4, s2, 0); // in[0] = 1

    // --- Prim: nodes-1 rounds of pick-min + relax ---
    a.li(s1, static_cast<std::int32_t>(nodes) - 1);
    a.bind(outer);
    a.clc(1, 0, s7, 0);     // reload the matrix capability
    a.li64(t7, 0x7fffffff); // running min
    a.move(t9, zero);       // argmin
    a.move(t0, zero);
    a.bind(scan);
    a.dsll(t5, t0, 3);
    a.daddu(t6, s2, t5);
    a.ld(t4, t6, 0); // in-tree?
    a.bne(t4, zero, scan_skip);
    a.nop();
    a.daddu(t6, s6, t5);
    a.ld(t4, t6, 0); // dist[j]
    a.sltu(t6, t4, t7);
    a.beq(t6, zero, scan_skip);
    a.nop();
    a.move(t7, t4);
    a.move(t9, t0);
    a.bind(scan_skip);
    a.daddiu(t0, t0, 1);
    a.sltu(t5, t0, t3);
    a.bne(t5, zero, scan);
    a.nop();
    a.daddu(s5, s5, t7); // total += dist[u]
    a.dsll(t5, t9, 3);
    a.daddu(t6, s2, t5);
    a.li(t4, 1);
    a.sd(t4, t6, 0); // in[u] = 1
    a.li(t4, static_cast<std::int32_t>(nodes) * 8);
    a.dmultu(t9, t4);
    a.mflo(s4); // row byte offset of u
    a.move(t0, zero);
    a.bind(relax);
    a.dsll(t5, t0, 3);
    a.daddu(t6, s2, t5);
    a.ld(t4, t6, 0);
    a.bne(t4, zero, relax_skip);
    a.nop();
    a.daddu(t6, s4, t5);
    a.cld(t4, 1, t6, 0); // w(u,j)
    a.daddu(t2, s6, t5);
    a.ld(t1, t2, 0); // dist[j]
    a.sltu(t6, t4, t1);
    a.beq(t6, zero, relax_skip);
    a.nop();
    a.sd(t4, t2, 0);
    a.bind(relax_skip);
    a.daddiu(t0, t0, 1);
    a.sltu(t5, t0, t3);
    a.bne(t5, zero, relax);
    a.nop();
    a.daddiu(s1, s1, -1);
    a.bgtz(s1, outer);
    a.nop();

    // Final tag consumption (see guestBisort).
    a.clc(1, 0, s7, 0);
    a.cld(at, 1, zero, 0);
    a.move(s0, s5);
    a.move(v0, s5);
    a.break_();

    prog.text = a.finish();
    return prog;
}

GuestProgram
guestEm3d(unsigned n, unsigned degree, unsigned iters)
{
    if (n < 2 || n > 512)
        support::fatal("guestEm3d: n %u out of range", n);
    if (degree == 0 || degree > 8)
        support::fatal("guestEm3d: degree %u out of range", degree);
    if (iters == 0 || iters > 64)
        support::fatal("guestEm3d: iters %u out of range", iters);

    GuestProgram prog;
    prog.layout = GuestLayout{};
    prog.name = "em3d";

    // Host mirror (all arithmetic wraps mod 2^64, as in the guest).
    {
        std::vector<std::uint64_t> e(n), h(n);
        for (unsigned i = 0; i < n; ++i) {
            e[i] = static_cast<std::uint64_t>(i) * 7 + 1;
            h[i] = static_cast<std::uint64_t>(i) * 13 + 2;
        }
        for (unsigned it = 0; it < iters; ++it) {
            for (unsigned i = 0; i < n; ++i) {
                std::uint64_t sum = 0;
                for (unsigned d = 0; d < degree; ++d)
                    sum += h[(i * 3 + d * 5 + 1) % n];
                e[i] -= sum;
            }
            for (unsigned i = 0; i < n; ++i) {
                std::uint64_t sum = 0;
                for (unsigned d = 0; d < degree; ++d)
                    sum += e[(i * 5 + d * 3 + 2) % n];
                h[i] -= sum;
            }
        }
        std::uint64_t checksum = 0;
        for (unsigned i = 0; i < n; ++i)
            checksum = 3 * checksum + e[i];
        for (unsigned i = 0; i < n; ++i)
            checksum = 3 * checksum + h[i];
        prog.expected_checksum = checksum;
    }

    Assembler a(prog.layout.code_base);
    auto init_loop = a.newLabel();
    auto iter_loop = a.newLabel();
    auto e_loop = a.newLabel();
    auto e_dep = a.newLabel();
    auto h_loop = a.newLabel();
    auto h_dep = a.newLabel();
    auto sum_e = a.newLabel();
    auto sum_h = a.newLabel();

    // c1 = E-array capability; s6 = H-array base (legacy access).
    // c1 is spilled to its capability home (s7) and reloaded every
    // iteration — see guestBisort for the rationale.
    a.li64(t0, prog.layout.heap_base);
    a.cincbase(1, 0, t0);
    a.li(t1, static_cast<std::int32_t>(n) * 8);
    a.csetlen(1, 1, t1);
    a.li64(s7, prog.layout.stack_top - prog.layout.stack_bytes);
    a.csc(1, 0, s7, 0);
    a.li64(s6, prog.layout.heap_base + n * 8ULL);
    a.li(t3, static_cast<std::int32_t>(n));
    a.li(s3, static_cast<std::int32_t>(degree));

    // --- init: E[i] = 7i + 1 (cap store), H[i] = 13i + 2 (legacy) ---
    a.move(t0, zero);
    a.bind(init_loop);
    a.dsll(t4, t0, 3);
    a.dsubu(t4, t4, t0); // 7i
    a.daddiu(t4, t4, 1);
    a.dsll(t5, t0, 3);
    a.csd(t4, 1, t5, 0);
    a.dsll(t4, t0, 3);
    a.dsll(t6, t0, 2);
    a.daddu(t4, t4, t6);
    a.daddu(t4, t4, t0); // 13i
    a.daddiu(t4, t4, 2);
    a.daddu(t6, s6, t5);
    a.sd(t4, t6, 0);
    a.daddiu(t0, t0, 1);
    a.sltu(t5, t0, t3);
    a.bne(t5, zero, init_loop);
    a.nop();

    // --- iters rounds: E -= sum(H[dep]), then H -= sum(E[dep]) ---
    a.li(s1, static_cast<std::int32_t>(iters));
    a.bind(iter_loop);
    a.clc(1, 0, s7, 0); // reload the E-array capability

    // E pass: dep(i,d) = (3i + 5d + 1) % n, H read legacy.
    a.move(t0, zero); // i
    a.bind(e_loop);
    a.move(t2, zero); // sum
    a.move(t1, zero); // d
    a.bind(e_dep);
    a.dsll(t4, t0, 1);
    a.daddu(t4, t4, t0); // 3i
    a.dsll(t5, t1, 2);
    a.daddu(t5, t5, t1); // 5d
    a.daddu(t4, t4, t5);
    a.daddiu(t4, t4, 1);
    a.ddivu(t4, t3);
    a.mfhi(t4); // dep index
    a.dsll(t4, t4, 3);
    a.daddu(t4, t4, s6);
    a.ld(t5, t4, 0); // H[dep]
    a.daddu(t2, t2, t5);
    a.daddiu(t1, t1, 1);
    a.sltu(t5, t1, s3);
    a.bne(t5, zero, e_dep);
    a.nop();
    a.dsll(t5, t0, 3);
    a.cld(t4, 1, t5, 0); // E[i]
    a.dsubu(t4, t4, t2);
    a.csd(t4, 1, t5, 0);
    a.daddiu(t0, t0, 1);
    a.sltu(t5, t0, t3);
    a.bne(t5, zero, e_loop);
    a.nop();

    // H pass: dep(i,d) = (5i + 3d + 2) % n, E read through c1.
    a.move(t0, zero);
    a.bind(h_loop);
    a.move(t2, zero);
    a.move(t1, zero);
    a.bind(h_dep);
    a.dsll(t4, t0, 2);
    a.daddu(t4, t4, t0); // 5i
    a.dsll(t5, t1, 1);
    a.daddu(t5, t5, t1); // 3d
    a.daddu(t4, t4, t5);
    a.daddiu(t4, t4, 2);
    a.ddivu(t4, t3);
    a.mfhi(t4);
    a.dsll(t4, t4, 3);
    a.cld(t5, 1, t4, 0); // E[dep]
    a.daddu(t2, t2, t5);
    a.daddiu(t1, t1, 1);
    a.sltu(t5, t1, s3);
    a.bne(t5, zero, h_dep);
    a.nop();
    a.dsll(t5, t0, 3);
    a.daddu(t6, s6, t5);
    a.ld(t4, t6, 0); // H[i]
    a.dsubu(t4, t4, t2);
    a.sd(t4, t6, 0);
    a.daddiu(t0, t0, 1);
    a.sltu(t5, t0, t3);
    a.bne(t5, zero, h_loop);
    a.nop();

    a.daddiu(s1, s1, -1);
    a.bgtz(s1, iter_loop);
    a.nop();

    // --- checksum: fold E then H, x = 3x + v ---
    a.move(s0, zero);
    a.move(t0, zero);
    a.bind(sum_e);
    a.dsll(t5, t0, 3);
    a.cld(t6, 1, t5, 0);
    a.dsll(t4, s0, 1);
    a.daddu(s0, s0, t4);
    a.daddu(s0, s0, t6);
    a.daddiu(t0, t0, 1);
    a.sltu(t5, t0, t3);
    a.bne(t5, zero, sum_e);
    a.nop();
    a.move(t0, zero);
    a.bind(sum_h);
    a.dsll(t5, t0, 3);
    a.daddu(t6, s6, t5);
    a.ld(t6, t6, 0);
    a.dsll(t4, s0, 1);
    a.daddu(s0, s0, t4);
    a.daddu(s0, s0, t6);
    a.daddiu(t0, t0, 1);
    a.sltu(t5, t0, t3);
    a.bne(t5, zero, sum_h);
    a.nop();
    // Final tag consumption (see guestBisort).
    a.clc(1, 0, s7, 0);
    a.cld(at, 1, zero, 0);
    a.move(v0, s0);
    a.break_();

    prog.text = a.finish();
    return prog;
}

void
loadGuestProgram(core::Machine &machine, const GuestProgram &prog)
{
    const GuestLayout &l = prog.layout;
    machine.mapRange(l.heap_base, l.heap_bytes);
    machine.mapRange(l.stack_top - l.stack_bytes, l.stack_bytes);
    machine.loadProgram(l.code_base, prog.text);
    machine.reset(l.code_base);
}

core::RunResult
runGuestProgram(core::Machine &machine, const GuestProgram &prog,
                std::uint64_t max_insts)
{
    machine.reset(prog.layout.code_base);
    core::RunResult result = machine.cpu().run(max_insts);
    if (result.reason != core::StopReason::kBreak)
        support::fatal("guest %s stopped without BREAK (reason %s)",
                       prog.name.c_str(),
                       core::stopReasonName(result.reason));
    if (machine.cpu().gpr(v0) != prog.expected_checksum)
        support::fatal("guest %s checksum %llx != expected %llx",
                       prog.name.c_str(),
                       static_cast<unsigned long long>(
                           machine.cpu().gpr(v0)),
                       static_cast<unsigned long long>(
                           prog.expected_checksum));
    return result;
}

} // namespace cheri::workloads
