#include "workloads/experiments.h"

#include "models/limit_models.h"
#include "support/logging.h"
#include "trace/profile.h"
#include "workloads/profile_context.h"

namespace cheri::workloads
{

namespace
{

models::Overheads
meanOverheads(const std::vector<models::Overheads> &all)
{
    models::Overheads mean;
    if (all.empty())
        return mean;
    for (const models::Overheads &o : all) {
        mean.pages += o.pages;
        mean.traffic_bytes += o.traffic_bytes;
        mean.refs += o.refs;
        mean.instr_optimistic += o.instr_optimistic;
        mean.instr_pessimistic += o.instr_pessimistic;
        mean.syscalls += o.syscalls;
    }
    double n = static_cast<double>(all.size());
    mean.pages /= n;
    mean.traffic_bytes /= n;
    mean.refs /= n;
    mean.instr_optimistic /= n;
    mean.instr_pessimistic /= n;
    return mean;
}

} // namespace

LimitStudyResult
runLimitStudy(bool paper_scale)
{
    LimitStudyResult result;
    std::vector<trace::TraceProfile> profiles;

    for (const auto &workload : oldenSuite()) {
        result.workloads.push_back(workload->name());
        // Streaming profiler: O(1) memory per event, so the paper's
        // full benchmark parameters fit comfortably.
        ProfileContext ctx;
        WorkloadParams params = paper_scale ? workload->paperParams()
                                            : workload->defaultParams();
        workload->run(ctx, params);
        profiles.push_back(ctx.profile());
    }

    for (const auto &model : models::limitStudyModels()) {
        LimitStudyModelResult row;
        row.model = model->name();
        for (const trace::TraceProfile &profile : profiles)
            row.per_workload.push_back(model->evaluate(profile));
        row.mean = meanOverheads(row.per_workload);
        result.models.push_back(std::move(row));
    }
    return result;
}

namespace
{

FpgaComparisonEntry::PerModel
runTimed(const Workload &workload, const WorkloadParams &params,
         CompileModel model, core::MachineConfig config)
{
    TimingContext ctx(model, config);
    FpgaComparisonEntry::PerModel result;
    result.checksum = workload.run(ctx, params);
    result.alloc = ctx.allocPhase();
    result.compute = ctx.computePhase();
    return result;
}

core::MachineConfig
timingMachineConfig(bool paper_scale)
{
    core::MachineConfig config;
    if (paper_scale)
        config.dram_bytes = 512ULL * 1024 * 1024;
    return config;
}

} // namespace

std::vector<FpgaComparisonEntry>
runFpgaComparison(bool paper_scale)
{
    std::vector<FpgaComparisonEntry> results;
    core::MachineConfig config = timingMachineConfig(paper_scale);

    for (const auto &workload : fpgaBenchmarks()) {
        FpgaComparisonEntry entry;
        entry.benchmark = workload->name();
        WorkloadParams params = paper_scale ? workload->paperParams()
                                            : workload->defaultParams();
        entry.mips = runTimed(*workload, params, CompileModel::kMips,
                              config);
        entry.ccured = runTimed(*workload, params, CompileModel::kCcured,
                                config);
        entry.cheri = runTimed(*workload, params, CompileModel::kCheri,
                               config);
        if (entry.mips.checksum != entry.cheri.checksum ||
            entry.mips.checksum != entry.ccured.checksum) {
            support::panic(
                "%s: checksums diverge across compilation models",
                entry.benchmark.c_str());
        }
        results.push_back(std::move(entry));
    }
    return results;
}

std::vector<CapSizeAblationEntry>
runCapSizeAblation(bool paper_scale)
{
    std::vector<CapSizeAblationEntry> results;
    core::MachineConfig config = timingMachineConfig(paper_scale);

    for (const auto &workload : fpgaBenchmarks()) {
        CapSizeAblationEntry entry;
        entry.benchmark = workload->name();
        WorkloadParams params = paper_scale ? workload->paperParams()
                                            : workload->defaultParams();
        auto mips = runTimed(*workload, params, CompileModel::kMips,
                             config);
        auto c256 = runTimed(*workload, params, CompileModel::kCheri,
                             config);
        auto c128 = runTimed(*workload, params,
                             CompileModel::kCheri128, config);
        if (mips.checksum != c256.checksum ||
            mips.checksum != c128.checksum) {
            support::panic("%s: checksum divergence in ablation",
                           entry.benchmark.c_str());
        }
        entry.mips_cycles = mips.alloc.cycles + mips.compute.cycles;
        entry.cheri256_cycles = c256.alloc.cycles + c256.compute.cycles;
        entry.cheri128_cycles = c128.alloc.cycles + c128.compute.cycles;
        results.push_back(std::move(entry));
    }
    return results;
}

std::vector<HeapScalingSeries>
runHeapScaling(const std::vector<std::uint64_t> &heap_kb)
{
    std::vector<HeapScalingSeries> results;
    core::MachineConfig config; // default machine: 16K/64K caches

    for (const auto &workload : fpgaBenchmarks()) {
        HeapScalingSeries series;
        series.benchmark = workload->name();
        for (std::uint64_t kb : heap_kb) {
            WorkloadParams params =
                workload->paramsForHeapBytes(kb * 1024);
            FpgaComparisonEntry::PerModel mips = runTimed(
                *workload, params, CompileModel::kMips, config);
            FpgaComparisonEntry::PerModel cheri = runTimed(
                *workload, params, CompileModel::kCheri, config);
            if (mips.checksum != cheri.checksum)
                support::panic("%s: checksum divergence in heap sweep",
                               series.benchmark.c_str());
            double mips_cycles = static_cast<double>(
                mips.alloc.cycles + mips.compute.cycles);
            double cheri_cycles = static_cast<double>(
                cheri.alloc.cycles + cheri.compute.cycles);
            double slowdown =
                mips_cycles > 0.0 ? cheri_cycles / mips_cycles - 1.0
                                  : 0.0;
            series.points.emplace_back(kb, slowdown);
        }
        results.push_back(std::move(series));
    }
    return results;
}

} // namespace cheri::workloads
