#include "workloads/timing_context.h"

#include "cap/capability.h"
#include "cap/perms.h"
#include "mem/physical_memory.h"
#include "support/bits.h"

namespace cheri::workloads
{

TimingContext::TimingContext(CompileModel model,
                             core::MachineConfig config)
    : Context(model), machine_(std::make_unique<core::Machine>(config))
{
}

PhaseCosts
TimingContext::total() const
{
    return PhaseCosts{
        costs_by_phase_[0].instructions + costs_by_phase_[1].instructions,
        costs_by_phase_[0].cycles + costs_by_phase_[1].cycles};
}

void
TimingContext::onAlloc(std::uint64_t vaddr, std::uint64_t size)
{
    machine_->mapRange(vaddr, size == 0 ? 1 : size);
}

void
TimingContext::onFree(std::uint64_t)
{
    // No-reuse allocation: nothing to do.
}

void
TimingContext::access(std::uint64_t vaddr, std::uint64_t size,
                      bool is_ptr, bool is_store, std::uint64_t target,
                      std::uint64_t target_size)
{
    PhaseCosts &phase_costs = current();
    bool cheri_cap = is_ptr && (model() == CompileModel::kCheri ||
                                model() == CompileModel::kCheri128);

    // Capability moves are single tagged transactions (257-bit for
    // the 256-bit format, half-line for the 128-bit variant); other
    // models move pointers as one or two 8-byte words. Data accesses
    // over 8 bytes never happen in these workloads.
    std::uint64_t chunk = cheri_cap ? costs().ptr_bytes : 8;
    for (std::uint64_t done = 0; done < size; done += chunk) {
        std::uint64_t addr = vaddr + done;
        tlb::Access kind;
        if (cheri_cap)
            kind = is_store ? tlb::Access::kCapStore
                            : tlb::Access::kCapLoad;
        else
            kind = is_store ? tlb::Access::kStore : tlb::Access::kLoad;
        tlb::TlbResult tr = machine_->tlb().translate(addr, kind);
        phase_costs.cycles += tr.penalty_cycles;
        if (!tr.ok())
            support::panic("timing access fault at vaddr 0x%llx",
                           static_cast<unsigned long long>(addr));

        std::uint64_t cycles = 0;
        if (cheri_cap && chunk == mem::kLineBytes) {
            std::uint64_t line = support::roundDown(tr.paddr,
                                                    mem::kLineBytes);
            if (is_store) {
                // Write the real capability image (base = stored
                // pointer, length = pointee allocation size) so a
                // pointer-chase prefetcher can decode it on fill. The
                // tag is always set — the workloads only move valid
                // capabilities — so tag-manager traffic matches the
                // seed exactly.
                mem::TaggedLine tagged;
                tagged.tag = true;
                cap::Capability capv = cap::Capability::make(
                    target, target_size, cap::kPermAll);
                tagged.data = capv.raw();
                machine_->memory().writeCapLine(line, tagged, cycles);
            } else {
                machine_->memory().readCapLine(line, cycles);
            }
        } else if (cheri_cap) {
            // 128-bit capability: one naturally aligned half-line
            // transaction (tag handling identical at line granule).
            if (is_store)
                machine_->memory().write(tr.paddr, 8, 0, cycles);
            else
                machine_->memory().read(tr.paddr, 8, cycles);
        } else {
            std::uint64_t chunk_size = std::min<std::uint64_t>(
                8, size - done);
            if (is_store)
                machine_->memory().write(tr.paddr, chunk_size, 0,
                                         cycles);
            else
                machine_->memory().read(tr.paddr, chunk_size, cycles);
        }
        // The L1 hit latency of 1 overlaps with the issue cycle the
        // instruction already paid; only charge the stall beyond it.
        phase_costs.cycles += cycles > 0 ? cycles - 1 : 0;
    }
}

void
TimingContext::onLoad(std::uint64_t vaddr, std::uint64_t size,
                      bool is_ptr, std::uint64_t)
{
    access(vaddr, size, is_ptr, /*is_store=*/false, 0, 0);
}

void
TimingContext::onStore(std::uint64_t vaddr, std::uint64_t size,
                       bool is_ptr, std::uint64_t target_size,
                       std::uint64_t target)
{
    access(vaddr, size, is_ptr, /*is_store=*/true, target, target_size);
}

void
TimingContext::onInstructions(std::uint64_t count)
{
    PhaseCosts &phase_costs = current();
    phase_costs.instructions += count;
    phase_costs.cycles += count;
}

} // namespace cheri::workloads
