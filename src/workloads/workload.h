/**
 * @file
 * The Olden benchmark suite (Section 7/8): pointer-intensive
 * workloads reimplemented against the workload Context so one
 * implementation runs under every compilation model and both the
 * trace recorder and the timing simulator.
 *
 * The four benchmarks of Figure 4 (bisort, mst, treeadd, perimeter)
 * plus em3d and health for broader limit-study coverage.
 */

#ifndef CHERI_WORKLOADS_WORKLOAD_H
#define CHERI_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/context.h"

namespace cheri::workloads
{

/** Benchmark parameters; meaning is per-workload (like argv). */
struct WorkloadParams
{
    std::uint64_t size_a = 0; ///< primary size (nodes/levels/vertices)
    std::uint64_t size_b = 0; ///< secondary size (degree/iterations)
    std::uint64_t seed = 42;  ///< deterministic RNG seed
};

/** One Olden benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as the paper prints it. */
    virtual std::string name() const = 0;

    /**
     * Execute against a context. Returns a checksum that must be
     * identical across compilation models (the algorithms compute
     * real results; protection must not change them).
     */
    virtual std::uint64_t run(Context &context,
                              const WorkloadParams &params) const = 0;

    /** Scaled-down parameters suitable for CI-speed runs. */
    virtual WorkloadParams defaultParams() const = 0;

    /** The parameters used in the paper's evaluation (Section 8). */
    virtual WorkloadParams paperParams() const = 0;

    /**
     * Parameters sized so the MIPS-model heap is approximately
     * heap_bytes (the Figure 5 sweep).
     */
    virtual WorkloadParams
    paramsForHeapBytes(std::uint64_t heap_bytes) const = 0;
};

/** The four FPGA benchmarks of Figure 4, in the paper's order. */
std::vector<std::unique_ptr<Workload>> fpgaBenchmarks();

/** The full suite used for the Figure 3 limit study. */
std::vector<std::unique_ptr<Workload>> oldenSuite();

/** Look up one workload by name (nullptr when unknown). */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace cheri::workloads

#endif // CHERI_WORKLOADS_WORKLOAD_H
