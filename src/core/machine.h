/**
 * @file
 * Machine facade: wires DRAM, the tag table and tag manager, the
 * cache hierarchy, the page table and TLB, and the CPU into one
 * CHERI system, and provides the loader conveniences the OS layer,
 * examples and tests build on.
 */

#ifndef CHERI_CORE_MACHINE_H
#define CHERI_CORE_MACHINE_H

#include <cstdint>
#include <vector>

#include "cache/hierarchy.h"
#include "core/cpu.h"
#include "mem/physical_memory.h"
#include "mem/tag_manager.h"
#include "mem/tag_table.h"
#include "tlb/page_table.h"
#include "tlb/tlb.h"

namespace cheri::core
{

/** Top-level machine parameters. */
struct MachineConfig
{
    std::uint64_t dram_bytes = 64 * 1024 * 1024;
    mem::TagCacheConfig tag_cache;
    cache::HierarchyConfig caches;
    tlb::TlbConfig tlb;
    CpuTiming timing;
};

/** A complete emulated CHERI system. */
class Machine
{
  public:
    explicit Machine(MachineConfig config = {});

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    mem::PhysicalMemory &dram() { return dram_; }
    mem::TagTable &tagTable() { return tags_; }
    mem::TagManager &tagManager() { return tag_manager_; }
    cache::CacheHierarchy &memory() { return hierarchy_; }
    tlb::PageTable &pageTable() { return page_table_; }
    tlb::Tlb &tlb() { return tlb_; }
    Cpu &cpu() { return cpu_; }

    /** Allocate one physical frame (bump allocator); returns pfn. */
    std::uint64_t allocFrame();

    /**
     * Map [vaddr, vaddr+bytes) with fresh frames and the given flags;
     * pages already mapped are left untouched.
     */
    void mapRange(std::uint64_t vaddr, std::uint64_t bytes,
                  tlb::PteFlags flags = {});

    /**
     * Load a program image at vaddr: maps executable pages and writes
     * the words straight into DRAM (before caches warm, so the L1I
     * never observes stale lines).
     */
    void loadProgram(std::uint64_t vaddr,
                     const std::vector<std::uint32_t> &words);

    /** Point the CPU at an entry point with a fresh register state. */
    void reset(std::uint64_t entry_pc);

  private:
    MachineConfig config_;
    mem::PhysicalMemory dram_;
    mem::TagTable tags_;
    mem::TagManager tag_manager_;
    cache::CacheHierarchy hierarchy_;
    tlb::PageTable page_table_;
    tlb::Tlb tlb_;
    Cpu cpu_;
    std::uint64_t next_frame_ = 0;
};

} // namespace cheri::core

#endif // CHERI_CORE_MACHINE_H
