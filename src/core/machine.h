/**
 * @file
 * Machine facade: wires DRAM, the tag table and tag manager, the
 * cache hierarchy, the page table and TLB, and the CPU into one
 * CHERI system, and provides the loader conveniences the OS layer,
 * examples and tests build on.
 */

#ifndef CHERI_CORE_MACHINE_H
#define CHERI_CORE_MACHINE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/hierarchy.h"
#include "core/cpu.h"
#include "mem/cow_store.h"
#include "mem/physical_memory.h"
#include "mem/tag_manager.h"
#include "mem/tag_table.h"
#include "tlb/page_table.h"
#include "tlb/tlb.h"

namespace cheri::core
{

/** Top-level machine parameters. */
struct MachineConfig
{
    std::uint64_t dram_bytes = 64 * 1024 * 1024;
    mem::TagCacheConfig tag_cache;
    cache::HierarchyConfig caches;
    tlb::TlbConfig tlb;
    CpuTiming timing;
    CpuAccelConfig accel;
};

/** A complete emulated CHERI system. */
class Machine
{
  public:
    explicit Machine(MachineConfig config = {});

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    mem::PhysicalMemory &dram() { return dram_; }
    mem::TagTable &tagTable() { return tags_; }
    mem::TagManager &tagManager() { return tag_manager_; }
    cache::CacheHierarchy &memory() { return hierarchy_; }
    tlb::PageTable &pageTable() { return page_table_; }
    tlb::Tlb &tlb() { return tlb_; }
    Cpu &cpu() { return cpu_; }

    /**
     * Allocate one physical frame (bump allocator); nullopt when DRAM
     * is exhausted. The structured form — callers that can surface the
     * error to a user (loaders, CLIs) should prefer it over
     * allocFrame().
     */
    std::optional<std::uint64_t> tryAllocFrame();

    /**
     * Allocate one physical frame; exits via fatal() when DRAM is
     * exhausted (a configuration error: the guest asked for more
     * memory than the machine was given).
     */
    std::uint64_t allocFrame();

    /**
     * Map [vaddr, vaddr+bytes) with fresh frames and the given flags;
     * pages already mapped are left untouched. Returns false (with no
     * partial bookkeeping beyond the pages already mapped) when DRAM
     * runs out of frames.
     */
    [[nodiscard]] bool tryMapRange(std::uint64_t vaddr,
                                   std::uint64_t bytes,
                                   tlb::PteFlags flags = {});

    /**
     * Map [vaddr, vaddr+bytes); exits via fatal() when DRAM is
     * exhausted.
     */
    void mapRange(std::uint64_t vaddr, std::uint64_t bytes,
                  tlb::PteFlags flags = {});

    /** Frames handed out so far (fault injection bounds its DRAM
     *  corruption targets to allocated memory). */
    std::uint64_t allocatedFrames() const { return next_frame_; }

    /**
     * Load a program image at vaddr: maps executable pages and writes
     * the words straight into DRAM (before caches warm, so the L1I
     * never observes stale lines).
     */
    void loadProgram(std::uint64_t vaddr,
                     const std::vector<std::uint32_t> &words);

    /** Point the CPU at an entry point with a fresh register state. */
    void reset(std::uint64_t entry_pc);

    const MachineConfig &config() const { return config_; }

    /**
     * A full-machine checkpoint: every layer's simulated state (DRAM
     * bytes, tag table, tag cache, all three caches with dirty lines
     * and LRU, DRAM open-row state, TLB, page table, CPU core state)
     * plus every statistics counter — an exact deep copy. Nothing is
     * flushed or invalidated on save, so a restored machine replays
     * the identical transaction, hit/miss, and cycle sequence the
     * original would have from the checkpoint; host-only accelerators
     * (decode cache, fetch/data memos) are dropped on restore and
     * re-mint through effect-identical slow paths. Snapshots are only
     * valid for machines of the identical MachineConfig.
     */
    struct Snapshot
    {
        mem::PhysicalMemory::Snapshot dram;
        mem::TagTable::Snapshot tags;
        mem::TagManager::Snapshot tag_manager;
        cache::CacheHierarchy::Snapshot caches;
        tlb::PageTable::Snapshot page_table;
        tlb::Tlb::Snapshot tlb;
        Cpu::Snapshot cpu;
        std::uint64_t next_frame = 0;
    };

    /** Capture a full-machine checkpoint. */
    Snapshot saveSnapshot() const;

    /** Restore a full-machine checkpoint (same-config machine). */
    void restoreSnapshot(const Snapshot &snapshot);

    /**
     * Mint a lightweight child machine sharing this machine's DRAM
     * and tag pages copy-on-write. Cost is O(page count) pointer
     * copies plus the small-state snapshot (caches, TLB, CPU core) —
     * no DRAM bytes move until one side writes, when the faulting
     * store clones just that 4 KB page and its tag slice.
     *
     * The child is an exact simulated-state clone: it replays the
     * identical transaction, hit/miss, and cycle sequence the parent
     * would from this point. Host-only accelerator state (decode
     * cache, fetch/data memos, superblocks) is dropped in the child
     * exactly as restoreSnapshot() drops it — the child's cache Way
     * storage is a fresh copy, so any LineHandle memos pointing into
     * the parent's ways must not survive the fork. Host-side hooks
     * (syscall handler, store observers, armed behavioural faults)
     * are NOT copied; re-arm them on the child if needed.
     *
     * Forking a quiescent parent is thread-safe (shared pages are
     * never written in place); the parent must outlive no one, but
     * keeping it alive keeps every child's COW fault count — and so
     * any report derived from it — deterministic.
     */
    std::unique_ptr<Machine> fork() const;

    /** COW metrics for this machine's backing store. */
    const mem::CowStore &cowStore() const { return *store_; }

  private:
    Machine(const MachineConfig &config,
            std::shared_ptr<mem::CowStore> store);

    MachineConfig config_;
    std::shared_ptr<mem::CowStore> store_;
    mem::PhysicalMemory dram_;
    mem::TagTable tags_;
    mem::TagManager tag_manager_;
    cache::CacheHierarchy hierarchy_;
    tlb::PageTable page_table_;
    tlb::Tlb tlb_;
    Cpu cpu_;
    std::uint64_t next_frame_ = 0;
};

} // namespace cheri::core

#endif // CHERI_CORE_MACHINE_H
