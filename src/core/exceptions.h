/**
 * @file
 * Guest-visible exception model: MIPS-style cause codes plus the CP2
 * capability cause (CapCause + offending register), mirroring how the
 * paper's coprocessor delivers capability faults into the MIPS
 * exception path.
 */

#ifndef CHERI_CORE_EXCEPTIONS_H
#define CHERI_CORE_EXCEPTIONS_H

#include <cstdint>
#include <string>

#include "cap/cap_cause.h"

namespace cheri::core
{

/** MIPS-style exception codes (subset the emulator can raise). */
enum class ExcCode
{
    kNone,
    kTlbLoad,          ///< TLB miss / invalid on a load or fetch
    kTlbStore,         ///< TLB miss / invalid on a store
    kTlbModified,      ///< store to a read-only page
    kAddressErrorLoad, ///< unaligned load / fetch
    kAddressErrorStore,///< unaligned store
    kSyscall,
    kBreakpoint,
    kReservedInstruction,
    kCoprocessorUnusable, ///< CP2 instruction with CP2 disabled
    kCp2,              ///< capability exception (see cap_cause)
    /** CCall trap: the protected procedure-call instruction traps to
     *  the OS, which emulates the domain transition (Section 11). */
    kCCall,
    /** CReturn trap: the matching protected return. */
    kCReturn,
};

/** Human-readable exception-code name. */
const char *excCodeName(ExcCode code);

/** Full description of a delivered guest exception. */
struct Trap
{
    ExcCode code = ExcCode::kNone;
    /** Capability cause when code == kCp2. */
    cap::CapCause cap_cause = cap::CapCause::kNone;
    /** Capability register at fault when code == kCp2 (0xff = PCC);
     *  for kCCall, the sealed code-capability register. */
    std::uint8_t cap_reg = 0;
    /** For kCCall: the sealed data-capability register. */
    std::uint8_t cap_reg2 = 0;
    /** PC of the faulting instruction. */
    std::uint64_t epc = 0;
    /** Faulting virtual address for memory exceptions. */
    std::uint64_t bad_vaddr = 0;
    /** Whether the fault hit in a branch delay slot. */
    bool in_delay_slot = false;

    /** Diagnostic rendering. */
    std::string toString() const;
};

/** Register-number value meaning "the fault was against PCC". */
constexpr std::uint8_t kCapRegPcc = 0xff;

} // namespace cheri::core

#endif // CHERI_CORE_EXCEPTIONS_H
