#include "core/cpu.h"

#include "isa/disasm.h"
#include "support/bits.h"
#include "support/logging.h"

namespace cheri::core
{

using cap::CapCause;
using isa::Instruction;
using isa::Opcode;
using support::signExtend;

namespace
{

/** Sign-extend a 32-bit result as MIPS64 word operations require. */
std::uint64_t
sext32(std::uint64_t value)
{
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(value)));
}

} // namespace

Cpu::Cpu(cache::CacheHierarchy &memory, tlb::Tlb &tlb, CpuTiming timing)
    : memory_(memory), tlb_(tlb), timing_(timing),
      predictor_(timing.predictor_entries, 1), // weakly not-taken
      decode_cache_(kDecodeCacheLines), data_memo_(kDataMemoLines)
{
    memory_.setFetchListener(this);
    stat_alu_ = &stats_.counter("inst.alu");
    stat_muldiv_ = &stats_.counter("inst.muldiv");
    stat_branch_ = &stats_.counter("inst.branch");
    stat_syscall_ = &stats_.counter("inst.syscall");
    stat_break_ = &stats_.counter("inst.break");
    stat_mem_ = &stats_.counter("inst.mem");
    stat_capmem_ = &stats_.counter("inst.capmem");
    stat_cp2_ = &stats_.counter("inst.cp2");
    stat_mispredicts_ = &stats_.counter("branch.mispredicts");
}

Cpu::~Cpu()
{
    memory_.setFetchListener(nullptr);
}

const isa::Instruction &
Cpu::fetchDecoded(std::uint64_t paddr, std::uint64_t &cycles)
{
    std::uint64_t line_addr = paddr & ~(mem::kLineBytes - 1);
    std::size_t slot = (paddr % mem::kLineBytes) / 4;
    DecodedLine &entry = decode_cache_[decodeIndex(line_addr)];
    if (entry.line_paddr == line_addr &&
        entry.generation == decode_generation_) {
        // Hit: still perform the L1I line access the simple path
        // makes (stats, LRU, fill, cycles); only the byte reassembly
        // and decode are skipped.
        memory_.fetchLine(paddr, cycles);
        return entry.slots[slot];
    }
    const mem::TaggedLine *line = memory_.fetchLine(paddr, cycles);
    isa::decodeLine(line->data.data(), entry.slots.data(),
                    kSlotsPerLine);
    entry.line_paddr = line_addr;
    entry.generation = decode_generation_;
    return entry.slots[slot];
}

void
Cpu::onCodeLineModified(std::uint64_t line_paddr)
{
    DecodedLine &entry = decode_cache_[decodeIndex(line_paddr)];
    if (entry.line_paddr == line_paddr)
        entry.line_paddr = ~0ULL;
}

// --- data fast path ---
//
// Each tryFast helper validates host-side state with no simulated
// effects, and only once everything is proven fresh replays the exact
// effect sequence the slow path would produce for the same (known
// hitting) access: one TLB hit (stat bump + LRU move via replayHit)
// and one L1D access through the hierarchy's handle-validated entry
// points. The cycle formula is the slow path's verbatim: TLB hit
// penalty is zero, and of the mem_cycles only the stall beyond the
// one-cycle base CPI is charged.

bool
Cpu::tryFastRead(std::uint64_t vaddr, unsigned size, std::uint64_t &value)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    if (entry.vline != vline ||
        entry.hint.generation != tlb_.generation() ||
        !entry.hint.flags.readable)
        return false;
    std::uint64_t paddr =
        entry.paddr_line | (vaddr & (mem::kLineBytes - 1));
    std::uint64_t mem_cycles = 0;
    if (!memory_.readFast(entry.l1d, paddr, size, value, mem_cycles))
        return false;
    tlb_.replayHit(entry.hint);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    return true;
}

bool
Cpu::tryFastWrite(std::uint64_t vaddr, unsigned size, std::uint64_t value)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    if (entry.vline != vline ||
        entry.hint.generation != tlb_.generation() ||
        !entry.hint.flags.writable)
        return false;
    std::uint64_t paddr =
        entry.paddr_line | (vaddr & (mem::kLineBytes - 1));
    std::uint64_t mem_cycles = 0;
    if (!memory_.writeFast(entry.l1d, paddr, size, value, mem_cycles))
        return false;
    tlb_.replayHit(entry.hint);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    // Any store to the monitored line breaks the reservation.
    if (ll_valid_ && ll_addr_ == paddr)
        ll_valid_ = false;
    return true;
}

const mem::TaggedLine *
Cpu::tryFastCapRead(std::uint64_t vaddr)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    if (entry.vline != vline ||
        entry.hint.generation != tlb_.generation() ||
        !entry.hint.flags.readable || !entry.hint.flags.cap_load)
        return nullptr;
    std::uint64_t mem_cycles = 0;
    const mem::TaggedLine *line =
        memory_.readCapLineFast(entry.l1d, mem_cycles);
    if (line == nullptr)
        return nullptr;
    tlb_.replayHit(entry.hint);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    return line;
}

bool
Cpu::tryFastCapWrite(std::uint64_t vaddr, const mem::TaggedLine &line)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    if (entry.vline != vline ||
        entry.hint.generation != tlb_.generation() ||
        !entry.hint.flags.writable || !entry.hint.flags.cap_store)
        return false;
    std::uint64_t mem_cycles = 0;
    if (!memory_.writeCapLineFast(entry.l1d, entry.paddr_line, line,
                                  mem_cycles))
        return false;
    tlb_.replayHit(entry.hint);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    return true;
}

void
Cpu::mintDataMemo(std::uint64_t vaddr, std::uint64_t paddr)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    entry.vline = ~0ULL;
    if (!tlb_.probeDataHint(vaddr, entry.hint))
        return;
    if (!memory_.l1d().probeHandle(paddr, entry.l1d))
        return;
    entry.paddr_line = paddr & ~(mem::kLineBytes - 1ULL);
    entry.vline = vline;
}

void
Cpu::predictBranch(bool taken)
{
    std::uint8_t &counter =
        predictor_[(current_pc_ >> 2) & (predictor_.size() - 1)];
    bool predicted_taken = counter >= 2;
    if (predicted_taken != taken) {
        cycles_ += timing_.branch_mispredict_cycles;
        ++*stat_mispredicts_;
    }
    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
}

void
Cpu::setGpr(unsigned index, std::uint64_t value)
{
    if (index >= 32)
        support::panic("GPR index %u out of range", index);
    if (index != 0)
        gpr_[index] = value;
}

void
Cpu::setPc(std::uint64_t pc)
{
    pc_ = pc;
    next_pc_ = pc + 4;
    branch_pending_ = false;
    pcc_swap_countdown_ = 0;
}

void
Cpu::raise(ExcCode code, std::uint64_t bad_vaddr)
{
    pending_trap_ = Trap{};
    pending_trap_.code = code;
    pending_trap_.epc = current_pc_;
    pending_trap_.bad_vaddr = bad_vaddr;
    pending_trap_.in_delay_slot = in_delay_slot_;
    trap_pending_ = true;
}

void
Cpu::raiseCap(CapCause cause, std::uint8_t cap_reg,
              std::uint64_t bad_vaddr)
{
    raise(ExcCode::kCp2, bad_vaddr);
    pending_trap_.cap_cause = cause;
    pending_trap_.cap_reg = cap_reg;
}

void
Cpu::branchTo(std::uint64_t target)
{
    next_pc_ = target;
    branch_pending_ = true;
}

bool
Cpu::checkedDataAccess(unsigned cap_index, std::uint64_t offset,
                       unsigned size, bool is_store, bool is_cap,
                       std::uint64_t &paddr_out)
{
    const cap::Capability &capr = caps_.read(cap_index);
    std::uint32_t perm;
    if (is_cap)
        perm = is_store ? cap::kPermStoreCap : cap::kPermLoadCap;
    else
        perm = is_store ? cap::kPermStore : cap::kPermLoad;

    std::uint64_t vaddr = cap::effectiveAddress(capr, offset);
    CapCause cause =
        cap::checkDataAccess(capr, offset, size, perm, is_cap);
    if (cause != CapCause::kNone) {
        raiseCap(cause, static_cast<std::uint8_t>(cap_index), vaddr);
        return false;
    }

    if (!is_cap && vaddr % size != 0) {
        raise(is_store ? ExcCode::kAddressErrorStore
                       : ExcCode::kAddressErrorLoad,
              vaddr);
        return false;
    }

    tlb::Access access;
    if (is_cap)
        access = is_store ? tlb::Access::kCapStore : tlb::Access::kCapLoad;
    else
        access = is_store ? tlb::Access::kStore : tlb::Access::kLoad;

    tlb::TlbResult result = tlb_.translate(vaddr, access);
    cycles_ += result.penalty_cycles;
    if (!result.ok()) {
        switch (result.fault) {
          case tlb::TlbFault::kNoMapping:
          case tlb::TlbFault::kNotReadable:
            raise(is_store ? ExcCode::kTlbStore : ExcCode::kTlbLoad,
                  vaddr);
            break;
          case tlb::TlbFault::kNotWritable:
            raise(ExcCode::kTlbModified, vaddr);
            break;
          case tlb::TlbFault::kCapLoadDenied:
            raiseCap(CapCause::kTlbNoLoadCap,
                     static_cast<std::uint8_t>(cap_index), vaddr);
            break;
          case tlb::TlbFault::kCapStoreDenied:
            raiseCap(CapCause::kTlbNoStoreCap,
                     static_cast<std::uint8_t>(cap_index), vaddr);
            break;
          default:
            raise(ExcCode::kTlbLoad, vaddr);
            break;
        }
        return false;
    }
    paddr_out = result.paddr;
    return true;
}

Cpu::StepOutcome
Cpu::step()
{
    StepOutcome outcome;
    current_pc_ = pc_;
    in_delay_slot_ = branch_pending_;

    // A control transfer takes effect after its delay slot; the PCC
    // swap of CJR/CJALR activates at the same moment.
    if (pcc_swap_countdown_ > 0 && --pcc_swap_countdown_ == 0)
        caps_.setPcc(pending_pcc_);

    // --- fetch ---
    if (pcc_version_seen_ != caps_.pccVersion()) {
        pcc_version_seen_ = caps_.pccVersion();
        const cap::Capability &pcc = caps_.pcc();
        pcc_fetch_ok_ = pcc.tag() && !pcc.sealed() &&
                        pcc.hasPerms(cap::kPermExecute);
        pcc_fetch_base_ = pcc.base();
        pcc_fetch_top_ = pcc.top();
    }
    // Exactly cap::checkFetch(pcc, pc_) against the cached window; the
    // full check reruns on failure to name the architectural cause.
    if (!pcc_fetch_ok_ || pc_ < pcc_fetch_base_ || pc_ + 4 < pc_ ||
        pc_ + 4 > pcc_fetch_top_) {
        raiseCap(cap::checkFetch(caps_.pcc(), pc_), kCapRegPcc, pc_);
        outcome.trapped = true;
        return outcome;
    }
    if (pc_ % 4 != 0) {
        raise(ExcCode::kAddressErrorLoad, pc_);
        outcome.trapped = true;
        return outcome;
    }
    tlb::TlbResult fetch_tr =
        decode_cache_enabled_
            ? tlb_.translateFetch(pc_, fetch_hint_)
            : tlb_.translate(pc_, tlb::Access::kFetch);
    cycles_ += fetch_tr.penalty_cycles;
    if (!fetch_tr.ok()) {
        raise(ExcCode::kTlbLoad, pc_);
        outcome.trapped = true;
        return outcome;
    }
    // L1I hits overlap with the fetch stage; only the stall beyond
    // the hit latency costs cycles. Both arms perform exactly one L1I
    // line access, so fetch_cycles is mode-independent.
    std::uint64_t fetch_cycles = 0;
    Instruction decoded_word;
    const Instruction *inst_ptr;
    if (decode_cache_enabled_) {
        inst_ptr = &fetchDecoded(fetch_tr.paddr, fetch_cycles);
    } else {
        std::uint32_t word =
            memory_.fetch32(fetch_tr.paddr, fetch_cycles);
        decoded_word = isa::decode(word);
        inst_ptr = &decoded_word;
    }
    cycles_ += fetch_cycles > 0 ? fetch_cycles - 1 : 0;
    const Instruction &inst = *inst_ptr;
    if (trace_hook_)
        trace_hook_(current_pc_, inst);

    // --- advance control flow (branch targets land in next_pc_) ---
    pc_ = next_pc_;
    next_pc_ = pc_ + 4;
    branch_pending_ = false;

    // --- execute ---
    syscall_taken_ = false;
    execute(inst);
    ++instructions_;
    ++cycles_; // base CPI of 1

    if (trap_pending_) {
        outcome.trapped = true;
        return outcome;
    }
    if (syscall_taken_ && syscall_action_.exit) {
        outcome.exited = true;
        outcome.exit_code = syscall_action_.exit_code;
        return outcome;
    }
    if (inst.op == Opcode::kBreak)
        outcome.hit_break = true;
    return outcome;
}

RunResult
Cpu::run(std::uint64_t max_instructions)
{
    return run(RunLimits{max_instructions, ~0ULL});
}

RunResult
Cpu::run(const RunLimits &limits)
{
    RunResult result;
    std::uint64_t start_insts = instructions_;
    std::uint64_t start_cycles = cycles_;

    // Never stop between a taken branch and its delay slot: the
    // pending-branch state is microarchitectural, and a context
    // switch restored via setPc() would lose the target. Run the
    // delay slot before honouring either budget, so every stop is at
    // a clean commit boundary.
    while (instructions_ - start_insts < limits.max_instructions ||
           branch_pending_) {
        if (cycles_ - start_cycles >= limits.max_cycles &&
            !branch_pending_) {
            result.reason = StopReason::kCycleLimit;
            break;
        }
        trap_pending_ = false;
        StepOutcome outcome = step();
        if (outcome.trapped) {
            result.reason = StopReason::kTrap;
            result.trap = pending_trap_;
            break;
        }
        if (outcome.exited) {
            result.reason = StopReason::kExited;
            result.exit_code = outcome.exit_code;
            break;
        }
        if (outcome.hit_break) {
            result.reason = StopReason::kBreak;
            break;
        }
    }
    result.instructions = instructions_ - start_insts;
    result.cycles = cycles_ - start_cycles;
    return result;
}

Cpu::Snapshot
Cpu::save() const
{
    Snapshot snapshot;
    snapshot.gpr = gpr_;
    snapshot.hi = hi_;
    snapshot.lo = lo_;
    snapshot.pc = pc_;
    snapshot.next_pc = next_pc_;
    snapshot.caps = caps_.save();
    snapshot.cp2_enabled = cp2_enabled_;
    snapshot.ll_valid = ll_valid_;
    snapshot.ll_addr = ll_addr_;
    snapshot.predictor = predictor_;
    snapshot.cycles = cycles_;
    snapshot.instructions = instructions_;
    snapshot.current_pc = current_pc_;
    snapshot.in_delay_slot = in_delay_slot_;
    snapshot.branch_pending = branch_pending_;
    snapshot.pcc_swap_countdown = pcc_swap_countdown_;
    snapshot.pending_pcc = pending_pcc_;
    snapshot.pending_trap = pending_trap_;
    snapshot.trap_pending = trap_pending_;
    snapshot.stats = stats_;
    return snapshot;
}

void
Cpu::restore(const Snapshot &snapshot)
{
    gpr_ = snapshot.gpr;
    hi_ = snapshot.hi;
    lo_ = snapshot.lo;
    pc_ = snapshot.pc;
    next_pc_ = snapshot.next_pc;
    caps_.restore(snapshot.caps);
    cp2_enabled_ = snapshot.cp2_enabled;
    ll_valid_ = snapshot.ll_valid;
    ll_addr_ = snapshot.ll_addr;
    predictor_ = snapshot.predictor;
    cycles_ = snapshot.cycles;
    instructions_ = snapshot.instructions;
    current_pc_ = snapshot.current_pc;
    in_delay_slot_ = snapshot.in_delay_slot;
    branch_pending_ = snapshot.branch_pending;
    pcc_swap_countdown_ = snapshot.pcc_swap_countdown;
    pending_pcc_ = snapshot.pending_pcc;
    pending_trap_ = snapshot.pending_trap;
    trap_pending_ = snapshot.trap_pending;
    stats_.assignFrom(snapshot.stats);
    // Host-side accelerators are not snapshotted: drop them all and
    // let the slow paths re-mint. Each replays identical simulated
    // effects, so this cannot perturb counters.
    ++decode_generation_;
    fetch_hint_ = tlb::Tlb::FetchHint{};
    invalidateDataMemo();
    pcc_version_seen_ = ~0ULL;
}

bool
Cpu::injectMemoSkew(std::uint64_t pick)
{
    // Live memo entries in index order: deterministic for a given
    // machine state and pick.
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < data_memo_.size(); ++i) {
        const DataMemoEntry &entry = data_memo_[i];
        if (entry.vline != ~0ULL &&
            entry.hint.generation == tlb_.generation() &&
            memory_.l1d().handleValid(entry.l1d)) {
            live.push_back(i);
        }
    }
    if (live.empty())
        return false;
    DataMemoEntry &victim = data_memo_[live[pick % live.size()]];

    std::vector<std::uint64_t> resident = memory_.l1d().residentLines();
    if (resident.size() < 2)
        return false;
    std::size_t start = (pick / live.size()) % resident.size();
    for (std::size_t i = 0; i < resident.size(); ++i) {
        std::uint64_t line = resident[(start + i) % resident.size()];
        if (line == victim.paddr_line)
            continue;
        cache::Cache::LineHandle handle;
        if (memory_.l1d().probeHandle(line, handle)) {
            victim.l1d = handle;
            return true;
        }
    }
    return false;
}

void
Cpu::execute(const Instruction &inst)
{
    std::uint64_t rs = gpr_[inst.rs];
    std::uint64_t rt = gpr_[inst.rt];

    switch (inst.op) {
      // --- shifts ---
      case Opcode::kSll:
        ++*stat_alu_;
        setGpr(inst.rd, sext32(static_cast<std::uint32_t>(rt) << inst.sa));
        break;
      case Opcode::kSrl:
        ++*stat_alu_;
        setGpr(inst.rd, sext32(static_cast<std::uint32_t>(rt) >> inst.sa));
        break;
      case Opcode::kSra:
        ++*stat_alu_;
        setGpr(inst.rd,
               sext32(static_cast<std::uint32_t>(
                   static_cast<std::int32_t>(rt) >> inst.sa)));
        break;
      case Opcode::kSllv:
        ++*stat_alu_;
        setGpr(inst.rd,
               sext32(static_cast<std::uint32_t>(rt) << (rs & 31)));
        break;
      case Opcode::kSrlv:
        ++*stat_alu_;
        setGpr(inst.rd,
               sext32(static_cast<std::uint32_t>(rt) >> (rs & 31)));
        break;
      case Opcode::kSrav:
        ++*stat_alu_;
        setGpr(inst.rd,
               sext32(static_cast<std::uint32_t>(
                   static_cast<std::int32_t>(rt) >>
                   static_cast<int>(rs & 31))));
        break;
      case Opcode::kDsll:
        ++*stat_alu_;
        setGpr(inst.rd, rt << inst.sa);
        break;
      case Opcode::kDsrl:
        ++*stat_alu_;
        setGpr(inst.rd, rt >> inst.sa);
        break;
      case Opcode::kDsra:
        ++*stat_alu_;
        setGpr(inst.rd, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(rt) >> inst.sa));
        break;
      case Opcode::kDsll32:
        ++*stat_alu_;
        setGpr(inst.rd, rt << (inst.sa + 32));
        break;
      case Opcode::kDsrl32:
        ++*stat_alu_;
        setGpr(inst.rd, rt >> (inst.sa + 32));
        break;
      case Opcode::kDsra32:
        ++*stat_alu_;
        setGpr(inst.rd,
               static_cast<std::uint64_t>(static_cast<std::int64_t>(rt) >>
                                          (inst.sa + 32)));
        break;
      case Opcode::kDsllv:
        ++*stat_alu_;
        setGpr(inst.rd, rt << (rs & 63));
        break;
      case Opcode::kDsrlv:
        ++*stat_alu_;
        setGpr(inst.rd, rt >> (rs & 63));
        break;
      case Opcode::kDsrav:
        ++*stat_alu_;
        setGpr(inst.rd,
               static_cast<std::uint64_t>(static_cast<std::int64_t>(rt) >>
                                          static_cast<int>(rs & 63)));
        break;

      // --- ALU register ---
      case Opcode::kAddu:
        ++*stat_alu_;
        setGpr(inst.rd, sext32(rs + rt));
        break;
      case Opcode::kDaddu:
        ++*stat_alu_;
        setGpr(inst.rd, rs + rt);
        break;
      case Opcode::kSubu:
        ++*stat_alu_;
        setGpr(inst.rd, sext32(rs - rt));
        break;
      case Opcode::kDsubu:
        ++*stat_alu_;
        setGpr(inst.rd, rs - rt);
        break;
      case Opcode::kAnd:
        ++*stat_alu_;
        setGpr(inst.rd, rs & rt);
        break;
      case Opcode::kOr:
        ++*stat_alu_;
        setGpr(inst.rd, rs | rt);
        break;
      case Opcode::kXor:
        ++*stat_alu_;
        setGpr(inst.rd, rs ^ rt);
        break;
      case Opcode::kNor:
        ++*stat_alu_;
        setGpr(inst.rd, ~(rs | rt));
        break;
      case Opcode::kSlt:
        ++*stat_alu_;
        setGpr(inst.rd, static_cast<std::int64_t>(rs) <
                                static_cast<std::int64_t>(rt)
                            ? 1
                            : 0);
        break;
      case Opcode::kSltu:
        ++*stat_alu_;
        setGpr(inst.rd, rs < rt ? 1 : 0);
        break;
      case Opcode::kMovz:
        ++*stat_alu_;
        if (rt == 0)
            setGpr(inst.rd, rs);
        break;
      case Opcode::kMovn:
        ++*stat_alu_;
        if (rt != 0)
            setGpr(inst.rd, rs);
        break;
      case Opcode::kDmult: {
        ++*stat_muldiv_;
        cycles_ += timing_.mult_cycles;
        __int128 product = static_cast<__int128>(
                               static_cast<std::int64_t>(rs)) *
                           static_cast<std::int64_t>(rt);
        lo_ = static_cast<std::uint64_t>(product);
        hi_ = static_cast<std::uint64_t>(product >> 64);
        break;
      }
      case Opcode::kDmultu: {
        ++*stat_muldiv_;
        cycles_ += timing_.mult_cycles;
        unsigned __int128 product =
            static_cast<unsigned __int128>(rs) * rt;
        lo_ = static_cast<std::uint64_t>(product);
        hi_ = static_cast<std::uint64_t>(product >> 64);
        break;
      }
      case Opcode::kDdiv:
        ++*stat_muldiv_;
        cycles_ += timing_.div_cycles;
        if (rt != 0) {
            lo_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(rs) /
                static_cast<std::int64_t>(rt));
            hi_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(rs) %
                static_cast<std::int64_t>(rt));
        }
        break;
      case Opcode::kDdivu:
        ++*stat_muldiv_;
        cycles_ += timing_.div_cycles;
        if (rt != 0) {
            lo_ = rs / rt;
            hi_ = rs % rt;
        }
        break;
      case Opcode::kMfhi:
        ++*stat_alu_;
        setGpr(inst.rd, hi_);
        break;
      case Opcode::kMflo:
        ++*stat_alu_;
        setGpr(inst.rd, lo_);
        break;

      // --- ALU immediate ---
      case Opcode::kAddiu:
        ++*stat_alu_;
        setGpr(inst.rt, sext32(rs + static_cast<std::uint64_t>(
                                        static_cast<std::int64_t>(
                                            inst.imm))));
        break;
      case Opcode::kDaddiu:
        ++*stat_alu_;
        setGpr(inst.rt,
               rs + static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(inst.imm)));
        break;
      case Opcode::kSlti:
        ++*stat_alu_;
        setGpr(inst.rt, static_cast<std::int64_t>(rs) < inst.imm ? 1 : 0);
        break;
      case Opcode::kSltiu:
        ++*stat_alu_;
        setGpr(inst.rt,
               rs < static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(inst.imm))
                   ? 1
                   : 0);
        break;
      case Opcode::kAndi:
        ++*stat_alu_;
        setGpr(inst.rt, rs & (static_cast<std::uint32_t>(inst.imm) &
                              0xffff));
        break;
      case Opcode::kOri:
        ++*stat_alu_;
        setGpr(inst.rt, rs | (static_cast<std::uint32_t>(inst.imm) &
                              0xffff));
        break;
      case Opcode::kXori:
        ++*stat_alu_;
        setGpr(inst.rt, rs ^ (static_cast<std::uint32_t>(inst.imm) &
                              0xffff));
        break;
      case Opcode::kLui:
        ++*stat_alu_;
        setGpr(inst.rt, signExtend(
                            static_cast<std::uint64_t>(inst.imm & 0xffff)
                                << 16,
                            32));
        break;

      // --- control flow ---
      case Opcode::kJ:
        ++*stat_branch_;
        branchTo(((current_pc_ + 4) & ~0x0fffffffULL) |
                 (static_cast<std::uint64_t>(inst.target) << 2));
        break;
      case Opcode::kJal:
        ++*stat_branch_;
        setGpr(31, current_pc_ + 8);
        branchTo(((current_pc_ + 4) & ~0x0fffffffULL) |
                 (static_cast<std::uint64_t>(inst.target) << 2));
        break;
      case Opcode::kJr:
        ++*stat_branch_;
        branchTo(rs);
        break;
      case Opcode::kJalr:
        ++*stat_branch_;
        setGpr(inst.rd, current_pc_ + 8);
        branchTo(rs);
        break;
      case Opcode::kBeq: {
        ++*stat_branch_;
        bool taken = rs == rt;
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kBne: {
        ++*stat_branch_;
        bool taken = rs != rt;
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kBlez: {
        ++*stat_branch_;
        bool taken = static_cast<std::int64_t>(rs) <= 0;
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kBgtz: {
        ++*stat_branch_;
        bool taken = static_cast<std::int64_t>(rs) > 0;
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kBltz: {
        ++*stat_branch_;
        bool taken = static_cast<std::int64_t>(rs) < 0;
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kBgez: {
        ++*stat_branch_;
        bool taken = static_cast<std::int64_t>(rs) >= 0;
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kSyscall:
        ++*stat_syscall_;
        if (syscall_handler_) {
            syscall_action_ = syscall_handler_(*this);
            syscall_taken_ = true;
        } else {
            raise(ExcCode::kSyscall);
        }
        break;
      case Opcode::kBreak:
        ++*stat_break_;
        break;

      // --- memory ---
      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLw:
      case Opcode::kLwu:
      case Opcode::kLd:
      case Opcode::kSb:
      case Opcode::kSh:
      case Opcode::kSw:
      case Opcode::kSd:
      case Opcode::kLld:
      case Opcode::kScd:
        executeMemory(inst);
        break;

      case Opcode::kInvalid:
        raise(ExcCode::kReservedInstruction);
        break;

      default:
        // All remaining opcodes are CP2 (CHERI) instructions.
        if (!cp2_enabled_) {
            raise(ExcCode::kCoprocessorUnusable);
            break;
        }
        executeCp2(inst);
        break;
    }
}

void
Cpu::executeMemory(const Instruction &inst)
{
    ++*stat_mem_;
    unsigned size = 1u << isa::accessSizeLog2(inst.op);
    // Legacy accesses are implicitly offset via C0 (Section 4.1): the
    // integer address is an offset into the C0 segment.
    std::uint64_t offset =
        gpr_[inst.rs] +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.imm));
    bool is_store = inst.op == Opcode::kSb || inst.op == Opcode::kSh ||
                    inst.op == Opcode::kSw || inst.op == Opcode::kSd ||
                    inst.op == Opcode::kScd;

    if (inst.op == Opcode::kScd) {
        std::uint64_t paddr = 0;
        if (!checkedDataAccess(0, offset, size, true, false, paddr))
            return;
        if (ll_valid_ && ll_addr_ == paddr) {
            std::uint64_t mem_cycles = 0;
            memory_.write(paddr, size, gpr_[inst.rt], mem_cycles);
            cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
            setGpr(inst.rt, 1);
        } else {
            setGpr(inst.rt, 0);
        }
        ll_valid_ = false;
        return;
    }

    // Data fast path (LL excluded: it must record the reservation
    // paddr, which the slow path already produces). The capability and
    // alignment checks here are pure, so a fast-path miss falls to the
    // slow path with zero simulated effects applied.
    std::uint64_t vaddr = cap::effectiveAddress(caps_.read(0), offset);
    if (data_fastpath_enabled_ && inst.op != Opcode::kLld &&
        vaddr % size == 0 &&
        cap::checkDataAccess(caps_.read(0), offset, size,
                             is_store ? cap::kPermStore
                                      : cap::kPermLoad) ==
            CapCause::kNone) {
        if (is_store) {
            if (tryFastWrite(vaddr, size, gpr_[inst.rt]))
                return;
        } else {
            std::uint64_t value = 0;
            if (tryFastRead(vaddr, size, value)) {
                if (!isa::loadIsUnsigned(inst.op) && size < 8)
                    value = static_cast<std::uint64_t>(
                        signExtend(value, size * 8));
                setGpr(inst.rt, value);
                return;
            }
        }
    }

    std::uint64_t paddr = 0;
    if (!checkedDataAccess(0, offset, size, is_store, false, paddr))
        return;

    std::uint64_t mem_cycles = 0;
    if (is_store) {
        memory_.write(paddr, size, gpr_[inst.rt], mem_cycles);
        cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
        // Any store to the monitored line breaks the reservation.
        if (ll_valid_ && ll_addr_ == paddr)
            ll_valid_ = false;
        if (data_fastpath_enabled_)
            mintDataMemo(vaddr, paddr);
        return;
    }

    std::uint64_t value = memory_.read(paddr, size, mem_cycles);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    if (!isa::loadIsUnsigned(inst.op) && size < 8)
        value = static_cast<std::uint64_t>(
            signExtend(value, size * 8));
    setGpr(inst.rt, value);

    if (inst.op == Opcode::kLld) {
        ll_valid_ = true;
        ll_addr_ = paddr;
    } else if (data_fastpath_enabled_) {
        mintDataMemo(vaddr, paddr);
    }
}

void
Cpu::executeCapMemory(const Instruction &inst)
{
    ++*stat_capmem_;
    std::uint64_t offset =
        gpr_[inst.rt] +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.imm));

    if (inst.op == Opcode::kCLc || inst.op == Opcode::kCSc) {
        bool is_store = inst.op == Opcode::kCSc;

        // Data fast path for full-line capability transfers. The
        // checks are pure; a miss falls through effect-free.
        if (data_fastpath_enabled_ &&
            cap::checkDataAccess(caps_.read(inst.cb), offset,
                                 mem::kLineBytes,
                                 is_store ? cap::kPermStoreCap
                                          : cap::kPermLoadCap,
                                 true) == CapCause::kNone) {
            std::uint64_t vaddr =
                cap::effectiveAddress(caps_.read(inst.cb), offset);
            if (is_store) {
                const cap::Capability &src = caps_.read(inst.cd);
                mem::TaggedLine line{src.raw(), src.tag()};
                if (tryFastCapWrite(vaddr, line))
                    return;
            } else if (const mem::TaggedLine *line =
                           tryFastCapRead(vaddr)) {
                caps_.write(inst.cd, cap::Capability::fromRaw(
                                         line->data, line->tag));
                return;
            }
        }

        std::uint64_t paddr = 0;
        if (!checkedDataAccess(inst.cb, offset, mem::kLineBytes,
                               is_store, true, paddr))
            return;
        std::uint64_t mem_cycles = 0;
        if (is_store) {
            const cap::Capability &src = caps_.read(inst.cd);
            mem::TaggedLine line{src.raw(), src.tag()};
            memory_.writeCapLine(paddr, line, mem_cycles);
        } else {
            mem::TaggedLine line =
                memory_.readCapLine(paddr, mem_cycles);
            caps_.write(inst.cd,
                        cap::Capability::fromRaw(line.data, line.tag));
        }
        cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
        if (data_fastpath_enabled_) {
            mintDataMemo(cap::effectiveAddress(caps_.read(inst.cb),
                                               offset),
                         paddr);
        }
        return;
    }

    unsigned size = 1u << isa::accessSizeLog2(inst.op);
    bool is_store = inst.op == Opcode::kCsb || inst.op == Opcode::kCsh ||
                    inst.op == Opcode::kCsw || inst.op == Opcode::kCsd ||
                    inst.op == Opcode::kCscd;

    // Capability-relative data accesses must also be naturally
    // aligned; enforce through the same alignment exception MIPS uses.
    if (inst.op == Opcode::kCscd) {
        std::uint64_t paddr = 0;
        if (!checkedDataAccess(inst.cb, offset, size, true, false, paddr))
            return;
        if (ll_valid_ && ll_addr_ == paddr) {
            std::uint64_t mem_cycles = 0;
            memory_.write(paddr, size, gpr_[inst.rd], mem_cycles);
            cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
            setGpr(inst.rd, 1);
        } else {
            setGpr(inst.rd, 0);
        }
        ll_valid_ = false;
        return;
    }

    // Data fast path for capability-relative scalar accesses (CLLD
    // excluded for the same reservation reason as LL above).
    std::uint64_t vaddr =
        cap::effectiveAddress(caps_.read(inst.cb), offset);
    if (data_fastpath_enabled_ && inst.op != Opcode::kClld &&
        vaddr % size == 0 &&
        cap::checkDataAccess(caps_.read(inst.cb), offset, size,
                             is_store ? cap::kPermStore
                                      : cap::kPermLoad) ==
            CapCause::kNone) {
        if (is_store) {
            if (tryFastWrite(vaddr, size, gpr_[inst.rd]))
                return;
        } else {
            std::uint64_t value = 0;
            if (tryFastRead(vaddr, size, value)) {
                if (!isa::loadIsUnsigned(inst.op) && size < 8)
                    value = static_cast<std::uint64_t>(
                        signExtend(value, size * 8));
                setGpr(inst.rd, value);
                return;
            }
        }
    }

    std::uint64_t paddr = 0;
    if (!checkedDataAccess(inst.cb, offset, size, is_store, false, paddr))
        return;

    std::uint64_t mem_cycles = 0;
    if (is_store) {
        memory_.write(paddr, size, gpr_[inst.rd], mem_cycles);
        cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
        if (ll_valid_ && ll_addr_ == paddr)
            ll_valid_ = false;
        if (data_fastpath_enabled_)
            mintDataMemo(vaddr, paddr);
        return;
    }

    std::uint64_t value = memory_.read(paddr, size, mem_cycles);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    if (!isa::loadIsUnsigned(inst.op) && size < 8)
        value = static_cast<std::uint64_t>(signExtend(value, size * 8));
    setGpr(inst.rd, value);

    if (inst.op == Opcode::kClld) {
        ll_valid_ = true;
        ll_addr_ = paddr;
    } else if (data_fastpath_enabled_) {
        mintDataMemo(vaddr, paddr);
    }
}

void
Cpu::executeCp2(const Instruction &inst)
{
    if (inst.isCapMemory()) {
        executeCapMemory(inst);
        return;
    }
    ++*stat_cp2_;

    switch (inst.op) {
      case Opcode::kCGetBase:
        setGpr(inst.rd, caps_.read(inst.cb).base());
        break;
      case Opcode::kCGetLen:
        setGpr(inst.rd, caps_.read(inst.cb).length());
        break;
      case Opcode::kCGetTag:
        setGpr(inst.rd, caps_.read(inst.cb).tag() ? 1 : 0);
        break;
      case Opcode::kCGetPerm:
        setGpr(inst.rd, caps_.read(inst.cb).perms());
        break;
      case Opcode::kCGetPcc:
        caps_.write(inst.cd, caps_.pcc());
        setGpr(inst.rd, current_pc_);
        break;
      case Opcode::kCIncBase: {
        cap::CapOpResult result =
            cap::incBase(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCSetLen: {
        cap::CapOpResult result =
            cap::setLen(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCClearTag: {
        cap::Capability value = caps_.read(inst.cb);
        value.clearTag();
        caps_.write(inst.cd, value);
        break;
      }
      case Opcode::kCAndPerm: {
        cap::CapOpResult result = cap::andPerm(
            caps_.read(inst.cb),
            static_cast<std::uint32_t>(gpr_[inst.rt]));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCToPtr:
        setGpr(inst.rd,
               cap::toPtr(caps_.read(inst.cb), caps_.read(inst.ct)));
        break;
      case Opcode::kCFromPtr: {
        cap::CapOpResult result =
            cap::fromPtr(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCBtu: {
        ++*stat_branch_;
        bool taken = !caps_.read(inst.cb).tag();
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kCBts: {
        ++*stat_branch_;
        bool taken = caps_.read(inst.cb).tag();
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kCSeal: {
        cap::CapOpResult result =
            cap::seal(caps_.read(inst.cb), caps_.read(inst.ct));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCUnseal: {
        cap::CapOpResult result =
            cap::unseal(caps_.read(inst.cb), caps_.read(inst.ct));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCGetType: {
        const cap::Capability &sealed_cap = caps_.read(inst.cb);
        setGpr(inst.rd, sealed_cap.sealed() ? sealed_cap.otype()
                                            : ~0ULL);
        break;
      }
      case Opcode::kCCall:
        // The prototype traps to the OS to emulate a protected
        // procedure call (Section 11); the handler validates the
        // sealed pair and performs the domain transition.
        raise(ExcCode::kCCall);
        pending_trap_.cap_reg = inst.cb;
        pending_trap_.cap_reg2 = inst.ct;
        break;
      case Opcode::kCReturn:
        raise(ExcCode::kCReturn);
        break;
      case Opcode::kCJr:
      case Opcode::kCJalr: {
        ++*stat_branch_;
        const cap::Capability &target_cap = caps_.read(inst.cb);
        if (!target_cap.tag()) {
            raiseCap(CapCause::kTagViolation, inst.cb);
            break;
        }
        if (target_cap.sealed()) {
            raiseCap(CapCause::kSealViolation, inst.cb);
            break;
        }
        if (!target_cap.hasPerms(cap::kPermExecute)) {
            raiseCap(CapCause::kPermitExecuteViolation, inst.cb);
            break;
        }
        std::uint64_t target = target_cap.base() + gpr_[inst.rt];
        if (inst.op == Opcode::kCJalr) {
            // Link: cd receives the caller's PCC; ra receives the
            // return point as an offset within that PCC, so the
            // return sequence is simply "cjr ra(cd)".
            caps_.write(inst.cd, caps_.pcc());
            setGpr(31, current_pc_ + 8 - caps_.pcc().base());
        }
        pending_pcc_ = target_cap;
        pcc_swap_countdown_ = 2;
        branchTo(target);
        break;
      }
      default:
        raise(ExcCode::kReservedInstruction);
        break;
    }
}

bool
Cpu::debugRead(std::uint64_t vaddr, unsigned size, std::uint64_t &value)
{
    tlb::TlbResult result = tlb_.translate(vaddr, tlb::Access::kLoad);
    if (!result.ok())
        return false;
    std::uint64_t scratch = 0;
    value = memory_.read(result.paddr, size, scratch);
    return true;
}

bool
Cpu::debugWrite(std::uint64_t vaddr, unsigned size, std::uint64_t value)
{
    tlb::TlbResult result = tlb_.translate(vaddr, tlb::Access::kStore);
    if (!result.ok())
        return false;
    std::uint64_t scratch = 0;
    memory_.write(result.paddr, size, value, scratch);
    return true;
}

bool
Cpu::debugReadCap(std::uint64_t vaddr, cap::Capability &out)
{
    tlb::TlbResult result = tlb_.translate(vaddr, tlb::Access::kCapLoad);
    if (!result.ok())
        return false;
    std::uint64_t scratch = 0;
    mem::TaggedLine line = memory_.readCapLine(result.paddr, scratch);
    out = cap::Capability::fromRaw(line.data, line.tag);
    return true;
}

bool
Cpu::debugWriteCap(std::uint64_t vaddr, const cap::Capability &value)
{
    tlb::TlbResult result = tlb_.translate(vaddr, tlb::Access::kCapStore);
    if (!result.ok())
        return false;
    std::uint64_t scratch = 0;
    memory_.writeCapLine(result.paddr,
                         mem::TaggedLine{value.raw(), value.tag()},
                         scratch);
    return true;
}

} // namespace cheri::core
