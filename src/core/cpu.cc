#include "core/cpu.h"

#include <algorithm>

#include "isa/disasm.h"
#include "support/bits.h"
#include "support/logging.h"

namespace cheri::core
{

using cap::CapCause;
using isa::Instruction;
using isa::Opcode;
using support::signExtend;

namespace
{

/** Sign-extend a 32-bit result as MIPS64 word operations require. */
std::uint64_t
sext32(std::uint64_t value)
{
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(value)));
}

void
requirePow2(std::size_t value, const char *name)
{
    if (value == 0 || (value & (value - 1)) != 0)
        support::panic("CpuAccelConfig.%s (%zu) must be a power of two",
                       name, value);
}

} // namespace

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
    case StopReason::kInstLimit:
        return "inst_limit";
    case StopReason::kCycleLimit:
        return "cycle_limit";
    case StopReason::kExited:
        return "exited";
    case StopReason::kTrap:
        return "trap";
    case StopReason::kBreak:
        return "break";
    case StopReason::kInternalFault:
        return "internal_fault";
    }
    return "unknown";
}

Cpu::Cpu(cache::CacheHierarchy &memory, tlb::Tlb &tlb, CpuTiming timing,
         CpuAccelConfig accel)
    : memory_(memory), tlb_(tlb), timing_(timing),
      predictor_(timing.predictor_entries, 1), // weakly not-taken
      accel_(accel), decode_cache_(accel.decode_cache_lines),
      data_memo_(kDataMemoLines),
      superblock_cache_(accel.superblock_entries)
{
    requirePow2(accel.decode_cache_lines, "decode_cache_lines");
    requirePow2(accel.superblock_entries, "superblock_entries");
    if (accel.superblock_max_slots < 2)
        support::panic("CpuAccelConfig.superblock_max_slots (%zu) must "
                       "be at least 2 (a branch plus its delay slot)",
                       accel.superblock_max_slots);
    decode_index_mask_ = accel.decode_cache_lines - 1;
    superblock_index_mask_ = accel.superblock_entries - 1;
    memory_.setFetchListener(this);
    sb_hit_stall_ = memory_.fetchHitLatency() > 0
                        ? memory_.fetchHitLatency() - 1
                        : 0;
    stat_alu_ = &stats_.counter("inst.alu");
    stat_muldiv_ = &stats_.counter("inst.muldiv");
    stat_branch_ = &stats_.counter("inst.branch");
    stat_syscall_ = &stats_.counter("inst.syscall");
    stat_break_ = &stats_.counter("inst.break");
    stat_mem_ = &stats_.counter("inst.mem");
    stat_capmem_ = &stats_.counter("inst.capmem");
    stat_cp2_ = &stats_.counter("inst.cp2");
    stat_mispredicts_ = &stats_.counter("branch.mispredicts");
}

Cpu::~Cpu()
{
    memory_.setFetchListener(nullptr);
}

const isa::Instruction &
Cpu::fetchDecoded(std::uint64_t paddr, std::uint64_t &cycles)
{
    std::uint64_t line_addr = paddr & ~(mem::kLineBytes - 1);
    std::size_t slot = (paddr % mem::kLineBytes) / 4;
    DecodedLine &entry = decode_cache_[decodeIndex(line_addr)];
    if (entry.line_paddr == line_addr &&
        entry.generation == decode_generation_) {
        // Hit: still perform the L1I line access the simple path
        // makes (stats, LRU, fill, cycles); only the byte reassembly
        // and decode are skipped.
        memory_.fetchLine(paddr, cycles);
        return entry.slots[slot];
    }
    const mem::TaggedLine *line = memory_.fetchLine(paddr, cycles);
    isa::decodeLine(line->data.data(), entry.slots.data(),
                    kSlotsPerLine);
    entry.line_paddr = line_addr;
    entry.generation = decode_generation_;
    entry.mint_id = ++decode_mint_counter_;
    return entry.slots[slot];
}

void
Cpu::onCodeLineModified(std::uint64_t line_paddr)
{
    DecodedLine &entry = decode_cache_[decodeIndex(line_paddr)];
    if (entry.line_paddr == line_paddr) {
        entry.line_paddr = ~0ULL;
        // Every decode-entry mutation (refill or this clear) bumps the
        // mint counter so stamped superblock guards over the line fail.
        ++decode_mint_counter_;
    }
    // A store landing on a line the dispatching superblock was minted
    // over makes its remaining predecoded slots stale: flag the abort
    // so the block exits before the next slot and the per-instruction
    // path (which decodes fresh bytes) takes over bit-identically.
    if (sb_active_ != nullptr && !sb_smc_abort_) {
        for (const SuperblockLineRef &ref : sb_active_->lines) {
            if (ref.line_paddr == line_paddr) {
                sb_smc_abort_ = true;
                break;
            }
        }
    }
}

// --- data fast path ---
//
// Each tryFast helper validates host-side state with no simulated
// effects, and only once everything is proven fresh replays the exact
// effect sequence the slow path would produce for the same (known
// hitting) access: one TLB hit (stat bump + LRU move via replayHit)
// and one L1D access through the hierarchy's handle-validated entry
// points. The cycle formula is the slow path's verbatim: TLB hit
// penalty is zero, and of the mem_cycles only the stall beyond the
// one-cycle base CPI is charged.

CHERI_FORCE_INLINE bool
Cpu::tryFastRead(std::uint64_t vaddr, unsigned size, std::uint64_t &value)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    if (entry.vline != vline ||
        entry.hint.generation != tlb_.generation() ||
        !entry.hint.flags.readable)
        return false;
    std::uint64_t paddr =
        entry.paddr_line | (vaddr & (mem::kLineBytes - 1));
    std::uint64_t mem_cycles = 0;
    if (!memory_.readFast(entry.l1d, paddr, size, value, mem_cycles))
        return false;
    tlb_.replayHit(entry.hint);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    return true;
}

CHERI_FORCE_INLINE bool
Cpu::tryFastWrite(std::uint64_t vaddr, unsigned size, std::uint64_t value)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    if (entry.vline != vline ||
        entry.hint.generation != tlb_.generation() ||
        !entry.hint.flags.writable)
        return false;
    std::uint64_t paddr =
        entry.paddr_line | (vaddr & (mem::kLineBytes - 1));
    std::uint64_t mem_cycles = 0;
    if (!memory_.writeFast(entry.l1d, paddr, size, value, mem_cycles))
        return false;
    tlb_.replayHit(entry.hint);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    // Any store to the monitored line breaks the reservation.
    if (ll_valid_ && ll_addr_ == paddr)
        ll_valid_ = false;
    return true;
}

const mem::TaggedLine *
Cpu::tryFastCapRead(std::uint64_t vaddr)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    if (entry.vline != vline ||
        entry.hint.generation != tlb_.generation() ||
        !entry.hint.flags.readable || !entry.hint.flags.cap_load)
        return nullptr;
    std::uint64_t mem_cycles = 0;
    const mem::TaggedLine *line =
        memory_.readCapLineFast(entry.l1d, mem_cycles);
    if (line == nullptr)
        return nullptr;
    tlb_.replayHit(entry.hint);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    return line;
}

bool
Cpu::tryFastCapWrite(std::uint64_t vaddr, const mem::TaggedLine &line)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    if (entry.vline != vline ||
        entry.hint.generation != tlb_.generation() ||
        !entry.hint.flags.writable || !entry.hint.flags.cap_store)
        return false;
    std::uint64_t mem_cycles = 0;
    if (!memory_.writeCapLineFast(entry.l1d, entry.paddr_line, line,
                                  mem_cycles))
        return false;
    tlb_.replayHit(entry.hint);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    return true;
}

void
Cpu::mintDataMemo(std::uint64_t vaddr, std::uint64_t paddr)
{
    std::uint64_t vline = vaddr >> cache::kLineShift;
    DataMemoEntry &entry = data_memo_[dataMemoIndex(vline)];
    entry.vline = ~0ULL;
    if (!tlb_.probeDataHint(vaddr, entry.hint))
        return;
    if (!memory_.l1d().probeHandle(paddr, entry.l1d))
        return;
    entry.paddr_line = paddr & ~(mem::kLineBytes - 1ULL);
    entry.vline = vline;
}

CHERI_FORCE_INLINE void
Cpu::predictBranch(bool taken)
{
    std::uint8_t &counter =
        predictor_[(current_pc_ >> 2) & (predictor_.size() - 1)];
    bool predicted_taken = counter >= 2;
    if (predicted_taken != taken) {
        cycles_ += timing_.branch_mispredict_cycles;
        ++*stat_mispredicts_;
    }
    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
}

void
Cpu::setGpr(unsigned index, std::uint64_t value)
{
    if (index >= 32)
        support::panic("GPR index %u out of range", index);
    if (index != 0)
        gpr_[index] = value;
}

void
Cpu::setPc(std::uint64_t pc)
{
    pc_ = pc;
    next_pc_ = pc + 4;
    branch_pending_ = false;
    pcc_swap_countdown_ = 0;
}

void
Cpu::raise(ExcCode code, std::uint64_t bad_vaddr)
{
    pending_trap_ = Trap{};
    pending_trap_.code = code;
    pending_trap_.epc = current_pc_;
    pending_trap_.bad_vaddr = bad_vaddr;
    pending_trap_.in_delay_slot = in_delay_slot_;
    trap_pending_ = true;
}

void
Cpu::raiseCap(CapCause cause, std::uint8_t cap_reg,
              std::uint64_t bad_vaddr)
{
    raise(ExcCode::kCp2, bad_vaddr);
    pending_trap_.cap_cause = cause;
    pending_trap_.cap_reg = cap_reg;
}

void
Cpu::branchTo(std::uint64_t target)
{
    next_pc_ = target;
    branch_pending_ = true;
}

bool
Cpu::checkedDataAccess(unsigned cap_index, std::uint64_t offset,
                       unsigned size, bool is_store, bool is_cap,
                       std::uint64_t &paddr_out)
{
    const cap::Capability &capr = caps_.read(cap_index);
    std::uint32_t perm;
    if (is_cap)
        perm = is_store ? cap::kPermStoreCap : cap::kPermLoadCap;
    else
        perm = is_store ? cap::kPermStore : cap::kPermLoad;

    std::uint64_t vaddr = cap::effectiveAddress(capr, offset);
    CapCause cause =
        cap::checkDataAccess(capr, offset, size, perm, is_cap);
    if (cause != CapCause::kNone) {
        raiseCap(cause, static_cast<std::uint8_t>(cap_index), vaddr);
        return false;
    }

    if (!is_cap && vaddr % size != 0) {
        raise(is_store ? ExcCode::kAddressErrorStore
                       : ExcCode::kAddressErrorLoad,
              vaddr);
        return false;
    }

    tlb::Access access;
    if (is_cap)
        access = is_store ? tlb::Access::kCapStore : tlb::Access::kCapLoad;
    else
        access = is_store ? tlb::Access::kStore : tlb::Access::kLoad;

    tlb::TlbResult result = tlb_.translate(vaddr, access);
    cycles_ += result.penalty_cycles;
    if (!result.ok()) {
        switch (result.fault) {
          case tlb::TlbFault::kNoMapping:
          case tlb::TlbFault::kNotReadable:
            raise(is_store ? ExcCode::kTlbStore : ExcCode::kTlbLoad,
                  vaddr);
            break;
          case tlb::TlbFault::kNotWritable:
            raise(ExcCode::kTlbModified, vaddr);
            break;
          case tlb::TlbFault::kCapLoadDenied:
            raiseCap(CapCause::kTlbNoLoadCap,
                     static_cast<std::uint8_t>(cap_index), vaddr);
            break;
          case tlb::TlbFault::kCapStoreDenied:
            raiseCap(CapCause::kTlbNoStoreCap,
                     static_cast<std::uint8_t>(cap_index), vaddr);
            break;
          default:
            raise(ExcCode::kTlbLoad, vaddr);
            break;
        }
        return false;
    }
    paddr_out = result.paddr;
    return true;
}

Cpu::StepOutcome
Cpu::step()
{
    StepOutcome outcome;
    current_pc_ = pc_;
    in_delay_slot_ = branch_pending_;

    // A control transfer takes effect after its delay slot; the PCC
    // swap of CJR/CJALR activates at the same moment.
    if (pcc_swap_countdown_ > 0 && --pcc_swap_countdown_ == 0)
        caps_.setPcc(pending_pcc_);

    // --- fetch ---
    if (pcc_version_seen_ != caps_.pccVersion()) {
        pcc_version_seen_ = caps_.pccVersion();
        const cap::Capability &pcc = caps_.pcc();
        pcc_fetch_ok_ = pcc.tag() && !pcc.sealed() &&
                        pcc.hasPerms(cap::kPermExecute);
        pcc_fetch_base_ = pcc.base();
        pcc_fetch_top_ = pcc.top();
    }
    // Exactly cap::checkFetch(pcc, pc_) against the cached window; the
    // full check reruns on failure to name the architectural cause.
    if (!pcc_fetch_ok_ || pc_ < pcc_fetch_base_ || pc_ + 4 < pc_ ||
        pc_ + 4 > pcc_fetch_top_) {
        raiseCap(cap::checkFetch(caps_.pcc(), pc_), kCapRegPcc, pc_);
        outcome.trapped = true;
        return outcome;
    }
    if (pc_ % 4 != 0) {
        raise(ExcCode::kAddressErrorLoad, pc_);
        outcome.trapped = true;
        return outcome;
    }
    tlb::TlbResult fetch_tr =
        decode_cache_enabled_
            ? tlb_.translateFetch(pc_, fetch_hint_)
            : tlb_.translate(pc_, tlb::Access::kFetch);
    cycles_ += fetch_tr.penalty_cycles;
    if (!fetch_tr.ok()) {
        raise(ExcCode::kTlbLoad, pc_);
        outcome.trapped = true;
        return outcome;
    }
    // L1I hits overlap with the fetch stage; only the stall beyond
    // the hit latency costs cycles. Both arms perform exactly one L1I
    // line access, so fetch_cycles is mode-independent.
    std::uint64_t fetch_cycles = 0;
    Instruction decoded_word;
    const Instruction *inst_ptr;
    if (decode_cache_enabled_) {
        inst_ptr = &fetchDecoded(fetch_tr.paddr, fetch_cycles);
    } else {
        std::uint32_t word =
            memory_.fetch32(fetch_tr.paddr, fetch_cycles);
        decoded_word = isa::decode(word);
        inst_ptr = &decoded_word;
    }
    cycles_ += fetch_cycles > 0 ? fetch_cycles - 1 : 0;
    const Instruction &inst = *inst_ptr;
    if (trace_hook_)
        trace_hook_(current_pc_, inst);

    // --- advance control flow (branch targets land in next_pc_) ---
    pc_ = next_pc_;
    next_pc_ = pc_ + 4;
    branch_pending_ = false;

    // --- execute ---
    syscall_taken_ = false;
    execute(inst);
    ++instructions_;
    ++cycles_; // base CPI of 1

    if (trap_pending_) {
        outcome.trapped = true;
        return outcome;
    }
    if (syscall_taken_ && syscall_action_.exit) {
        outcome.exited = true;
        outcome.exit_code = syscall_action_.exit_code;
        return outcome;
    }
    if (inst.op == Opcode::kBreak)
        outcome.hit_break = true;
    return outcome;
}

RunResult
Cpu::run(std::uint64_t max_instructions)
{
    return run(RunLimits{max_instructions, ~0ULL});
}

RunResult
Cpu::run(const RunLimits &limits)
{
    RunResult result;
    std::uint64_t start_insts = instructions_;
    std::uint64_t start_cycles = cycles_;

    // Never stop between a taken branch and its delay slot: the
    // pending-branch state is microarchitectural, and a context
    // switch restored via setPc() would lose the target. Run the
    // delay slot before honouring either budget, so every stop is at
    // a clean commit boundary.
    //
    // The try block is the guest-failure barrier: a state-integrity
    // check that corrupted guest state can reach (support::guestFault)
    // throws under an active support::PanicScope, and the run turns it
    // into a structured kInternalFault stop with full context instead
    // of aborting the process. The faulting instruction was abandoned
    // mid-execute, so the machine is poisoned — the caller must roll
    // it back or discard it. Without a PanicScope the fault aborts
    // inside guestFault() and this catch never sees it.
    try {
        while (instructions_ - start_insts < limits.max_instructions ||
               branch_pending_) {
            if (cycles_ - start_cycles >= limits.max_cycles &&
                !branch_pending_) {
                result.reason = StopReason::kCycleLimit;
                break;
            }
            trap_pending_ = false;
            StepOutcome outcome;
            if (!superblocks_enabled_ || !decode_cache_enabled_ ||
                !trySuperblock(limits, start_insts, start_cycles,
                               outcome))
                outcome = step();
            if (outcome.trapped) {
                result.reason = StopReason::kTrap;
                result.trap = pending_trap_;
                break;
            }
            if (outcome.exited) {
                result.reason = StopReason::kExited;
                result.exit_code = outcome.exit_code;
                break;
            }
            if (outcome.hit_break) {
                result.reason = StopReason::kBreak;
                break;
            }
        }
    } catch (const support::GuestFailure &failure) {
        result.reason = StopReason::kInternalFault;
        result.fault.subsystem = failure.subsystem();
        result.fault.message = failure.message();
        result.fault.pc = current_pc_;
        result.fault.instructions = instructions_;
    }
    result.instructions = instructions_ - start_insts;
    result.cycles = cycles_ - start_cycles;
    return result;
}

Cpu::Snapshot
Cpu::save() const
{
    Snapshot snapshot;
    snapshot.gpr = gpr_;
    snapshot.hi = hi_;
    snapshot.lo = lo_;
    snapshot.pc = pc_;
    snapshot.next_pc = next_pc_;
    snapshot.caps = caps_.save();
    snapshot.cp2_enabled = cp2_enabled_;
    snapshot.ll_valid = ll_valid_;
    snapshot.ll_addr = ll_addr_;
    snapshot.predictor = predictor_;
    snapshot.cycles = cycles_;
    snapshot.instructions = instructions_;
    snapshot.current_pc = current_pc_;
    snapshot.in_delay_slot = in_delay_slot_;
    snapshot.branch_pending = branch_pending_;
    snapshot.pcc_swap_countdown = pcc_swap_countdown_;
    snapshot.pending_pcc = pending_pcc_;
    snapshot.pending_trap = pending_trap_;
    snapshot.trap_pending = trap_pending_;
    snapshot.stats = stats_;
    return snapshot;
}

void
Cpu::restore(const Snapshot &snapshot)
{
    gpr_ = snapshot.gpr;
    hi_ = snapshot.hi;
    lo_ = snapshot.lo;
    pc_ = snapshot.pc;
    next_pc_ = snapshot.next_pc;
    caps_.restore(snapshot.caps);
    cp2_enabled_ = snapshot.cp2_enabled;
    ll_valid_ = snapshot.ll_valid;
    ll_addr_ = snapshot.ll_addr;
    predictor_ = snapshot.predictor;
    cycles_ = snapshot.cycles;
    instructions_ = snapshot.instructions;
    current_pc_ = snapshot.current_pc;
    in_delay_slot_ = snapshot.in_delay_slot;
    branch_pending_ = snapshot.branch_pending;
    pcc_swap_countdown_ = snapshot.pcc_swap_countdown;
    pending_pcc_ = snapshot.pending_pcc;
    pending_trap_ = snapshot.pending_trap;
    trap_pending_ = snapshot.trap_pending;
    stats_.assignFrom(snapshot.stats);
    // Host-side accelerators are not snapshotted: drop them all and
    // let the slow paths re-mint. Each replays identical simulated
    // effects, so this cannot perturb counters.
    ++decode_generation_;
    fetch_hint_ = tlb::Tlb::FetchHint{};
    invalidateDataMemo();
    invalidateSuperblocks();
    sb_pending_leader_ = ~0ULL;
    pcc_version_seen_ = ~0ULL;
}

void
Cpu::invalidateSuperblocks()
{
    for (Superblock &sb : superblock_cache_) {
        if (sb.start_vaddr != ~0ULL) {
            sb.start_vaddr = ~0ULL;
            ++sb_stats_.invalidated;
        }
    }
}

bool
Cpu::injectMemoSkew(std::uint64_t pick)
{
    // Live memo entries in index order: deterministic for a given
    // machine state and pick.
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < data_memo_.size(); ++i) {
        const DataMemoEntry &entry = data_memo_[i];
        if (entry.vline != ~0ULL &&
            entry.hint.generation == tlb_.generation() &&
            memory_.l1d().handleValid(entry.l1d)) {
            live.push_back(i);
        }
    }
    if (live.empty())
        return false;
    DataMemoEntry &victim = data_memo_[live[pick % live.size()]];

    std::vector<std::uint64_t> resident = memory_.l1d().residentLines();
    if (resident.size() < 2)
        return false;
    std::size_t start = (pick / live.size()) % resident.size();
    for (std::size_t i = 0; i < resident.size(); ++i) {
        std::uint64_t line = resident[(start + i) % resident.size()];
        if (line == victim.paddr_line)
            continue;
        cache::Cache::LineHandle handle;
        if (memory_.l1d().probeHandle(line, handle)) {
            victim.l1d = handle;
            return true;
        }
    }
    return false;
}

/*
 * Per-opcode handler bodies, extracted verbatim from the old inline
 * execute() switch. The interpreter switch below still calls them
 * case by case (the compiler inlines them back, so the per-
 * instruction path keeps its baseline codegen), while the superblock
 * tier dispatches the very same functions through a pre-resolved
 * label table (computed goto) or function-pointer table — one source
 * of truth for instruction semantics, two dispatch mechanisms.
 */
struct CpuExec
{
    using Fn = void (*)(Cpu &, const Instruction &);

    static void invalid(Cpu &c, const Instruction &)
    {
        c.raise(ExcCode::kReservedInstruction);
    }

    // --- shifts ---
    static void sll(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, sext32(static_cast<std::uint32_t>(c.gpr_[i.rt])
                              << i.sa));
    }
    static void srl(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, sext32(static_cast<std::uint32_t>(c.gpr_[i.rt]) >>
                              i.sa));
    }
    static void sra(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd,
                 sext32(static_cast<std::uint32_t>(
                     static_cast<std::int32_t>(c.gpr_[i.rt]) >> i.sa)));
    }
    static void sllv(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, sext32(static_cast<std::uint32_t>(c.gpr_[i.rt])
                              << (c.gpr_[i.rs] & 31)));
    }
    static void srlv(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, sext32(static_cast<std::uint32_t>(c.gpr_[i.rt]) >>
                              (c.gpr_[i.rs] & 31)));
    }
    static void srav(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd,
                 sext32(static_cast<std::uint32_t>(
                     static_cast<std::int32_t>(c.gpr_[i.rt]) >>
                     static_cast<int>(c.gpr_[i.rs] & 31))));
    }
    static void dsll(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rt] << i.sa);
    }
    static void dsrl(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rt] >> i.sa);
    }
    static void dsra(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd,
                 static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(c.gpr_[i.rt]) >> i.sa));
    }
    static void dsll32(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rt] << (i.sa + 32));
    }
    static void dsrl32(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rt] >> (i.sa + 32));
    }
    static void dsra32(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(c.gpr_[i.rt]) >>
                           (i.sa + 32)));
    }
    static void dsllv(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rt] << (c.gpr_[i.rs] & 63));
    }
    static void dsrlv(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rt] >> (c.gpr_[i.rs] & 63));
    }
    static void dsrav(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd,
                 static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(c.gpr_[i.rt]) >>
                     static_cast<int>(c.gpr_[i.rs] & 63)));
    }

    // --- ALU register ---
    static void addu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, sext32(c.gpr_[i.rs] + c.gpr_[i.rt]));
    }
    static void daddu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rs] + c.gpr_[i.rt]);
    }
    static void subu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, sext32(c.gpr_[i.rs] - c.gpr_[i.rt]));
    }
    static void dsubu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rs] - c.gpr_[i.rt]);
    }
    static void and_(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rs] & c.gpr_[i.rt]);
    }
    static void or_(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rs] | c.gpr_[i.rt]);
    }
    static void xor_(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rs] ^ c.gpr_[i.rt]);
    }
    static void nor_(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, ~(c.gpr_[i.rs] | c.gpr_[i.rt]));
    }
    static void slt(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, static_cast<std::int64_t>(c.gpr_[i.rs]) <
                               static_cast<std::int64_t>(c.gpr_[i.rt])
                           ? 1
                           : 0);
    }
    static void sltu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.gpr_[i.rs] < c.gpr_[i.rt] ? 1 : 0);
    }
    static void movz(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        if (c.gpr_[i.rt] == 0)
            c.setGpr(i.rd, c.gpr_[i.rs]);
    }
    static void movn(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        if (c.gpr_[i.rt] != 0)
            c.setGpr(i.rd, c.gpr_[i.rs]);
    }
    static void dmult(Cpu &c, const Instruction &i)
    {
        ++*c.stat_muldiv_;
        c.cycles_ += c.timing_.mult_cycles;
        __int128 product = static_cast<__int128>(static_cast<std::int64_t>(
                               c.gpr_[i.rs])) *
                           static_cast<std::int64_t>(c.gpr_[i.rt]);
        c.lo_ = static_cast<std::uint64_t>(product);
        c.hi_ = static_cast<std::uint64_t>(product >> 64);
    }
    static void dmultu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_muldiv_;
        c.cycles_ += c.timing_.mult_cycles;
        unsigned __int128 product =
            static_cast<unsigned __int128>(c.gpr_[i.rs]) * c.gpr_[i.rt];
        c.lo_ = static_cast<std::uint64_t>(product);
        c.hi_ = static_cast<std::uint64_t>(product >> 64);
    }
    static void ddiv(Cpu &c, const Instruction &i)
    {
        ++*c.stat_muldiv_;
        c.cycles_ += c.timing_.div_cycles;
        std::uint64_t rs = c.gpr_[i.rs];
        std::uint64_t rt = c.gpr_[i.rt];
        if (rt != 0) {
            c.lo_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(rs) /
                static_cast<std::int64_t>(rt));
            c.hi_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(rs) %
                static_cast<std::int64_t>(rt));
        }
    }
    static void ddivu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_muldiv_;
        c.cycles_ += c.timing_.div_cycles;
        std::uint64_t rs = c.gpr_[i.rs];
        std::uint64_t rt = c.gpr_[i.rt];
        if (rt != 0) {
            c.lo_ = rs / rt;
            c.hi_ = rs % rt;
        }
    }
    static void mfhi(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.hi_);
    }
    static void mflo(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rd, c.lo_);
    }

    // --- ALU immediate ---
    static void addiu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rt,
                 sext32(c.gpr_[i.rs] +
                        static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(i.imm))));
    }
    static void daddiu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rt, c.gpr_[i.rs] +
                           static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(i.imm)));
    }
    static void slti(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rt,
                 static_cast<std::int64_t>(c.gpr_[i.rs]) < i.imm ? 1 : 0);
    }
    static void sltiu(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rt, c.gpr_[i.rs] <
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(i.imm))
                           ? 1
                           : 0);
    }
    static void andi(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rt, c.gpr_[i.rs] &
                           (static_cast<std::uint32_t>(i.imm) & 0xffff));
    }
    static void ori(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rt, c.gpr_[i.rs] |
                           (static_cast<std::uint32_t>(i.imm) & 0xffff));
    }
    static void xori(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rt, c.gpr_[i.rs] ^
                           (static_cast<std::uint32_t>(i.imm) & 0xffff));
    }
    static void lui(Cpu &c, const Instruction &i)
    {
        ++*c.stat_alu_;
        c.setGpr(i.rt,
                 signExtend(static_cast<std::uint64_t>(i.imm & 0xffff)
                                << 16,
                            32));
    }

    // --- control flow ---
    static void j(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        c.branchTo(((c.current_pc_ + 4) & ~0x0fffffffULL) |
                   (static_cast<std::uint64_t>(i.target) << 2));
    }
    static void jal(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        c.setGpr(31, c.current_pc_ + 8);
        c.branchTo(((c.current_pc_ + 4) & ~0x0fffffffULL) |
                   (static_cast<std::uint64_t>(i.target) << 2));
    }
    static void jr(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        c.branchTo(c.gpr_[i.rs]);
    }
    static void jalr(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        c.setGpr(i.rd, c.current_pc_ + 8);
        c.branchTo(c.gpr_[i.rs]);
    }
    static void beq(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        bool taken = c.gpr_[i.rs] == c.gpr_[i.rt];
        c.predictBranch(taken);
        if (taken)
            c.branchTo(c.current_pc_ + 4 +
                       (static_cast<std::int64_t>(i.imm) << 2));
    }
    static void bne(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        bool taken = c.gpr_[i.rs] != c.gpr_[i.rt];
        c.predictBranch(taken);
        if (taken)
            c.branchTo(c.current_pc_ + 4 +
                       (static_cast<std::int64_t>(i.imm) << 2));
    }
    static void blez(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        bool taken = static_cast<std::int64_t>(c.gpr_[i.rs]) <= 0;
        c.predictBranch(taken);
        if (taken)
            c.branchTo(c.current_pc_ + 4 +
                       (static_cast<std::int64_t>(i.imm) << 2));
    }
    static void bgtz(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        bool taken = static_cast<std::int64_t>(c.gpr_[i.rs]) > 0;
        c.predictBranch(taken);
        if (taken)
            c.branchTo(c.current_pc_ + 4 +
                       (static_cast<std::int64_t>(i.imm) << 2));
    }
    static void bltz(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        bool taken = static_cast<std::int64_t>(c.gpr_[i.rs]) < 0;
        c.predictBranch(taken);
        if (taken)
            c.branchTo(c.current_pc_ + 4 +
                       (static_cast<std::int64_t>(i.imm) << 2));
    }
    static void bgez(Cpu &c, const Instruction &i)
    {
        ++*c.stat_branch_;
        bool taken = static_cast<std::int64_t>(c.gpr_[i.rs]) >= 0;
        c.predictBranch(taken);
        if (taken)
            c.branchTo(c.current_pc_ + 4 +
                       (static_cast<std::int64_t>(i.imm) << 2));
    }
    static void syscall_(Cpu &c, const Instruction &)
    {
        ++*c.stat_syscall_;
        if (c.syscall_handler_) {
            c.syscall_action_ = c.syscall_handler_(c);
            c.syscall_taken_ = true;
        } else {
            c.raise(ExcCode::kSyscall);
        }
    }
    static void break_(Cpu &c, const Instruction &)
    {
        ++*c.stat_break_;
    }

    // --- memory ---
    //
    // Common legacy loads/stores get one handler per opcode so the
    // access size, signedness, and direction are compile-time
    // constants: the whole branch chain executeMemory walks to
    // rediscover them folds away, and the memo probe inlines into the
    // dispatch body. The simulated effect sequence is executeMemory's
    // verbatim — both the interpreter switch and the superblock
    // dispatch run these same handlers, so there is exactly one
    // implementation to keep exact. LL/SC keep the generic path (they
    // carry reservation state and are rare).
    template <unsigned kSize, bool kUnsigned>
    static CHERI_FORCE_INLINE void loadLegacy(Cpu &c, const Instruction &i)
    {
        ++*c.stat_mem_;
        std::uint64_t offset =
            c.gpr_[i.rs] +
            static_cast<std::uint64_t>(static_cast<std::int64_t>(i.imm));
        std::uint64_t vaddr =
            cap::effectiveAddress(c.caps_.read(0), offset);
        if (c.data_fastpath_enabled_ && vaddr % kSize == 0 &&
            cap::checkDataAccess(c.caps_.read(0), offset, kSize,
                                 cap::kPermLoad) == CapCause::kNone) {
            std::uint64_t value = 0;
            if (c.tryFastRead(vaddr, kSize, value)) {
                if constexpr (!kUnsigned && kSize < 8)
                    value = static_cast<std::uint64_t>(
                        signExtend(value, kSize * 8));
                c.setGpr(i.rt, value);
                return;
            }
        }
        std::uint64_t paddr = 0;
        if (!c.checkedDataAccess(0, offset, kSize, false, false, paddr))
            return;
        std::uint64_t mem_cycles = 0;
        std::uint64_t value = c.memory_.read(paddr, kSize, mem_cycles);
        c.cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
        if constexpr (!kUnsigned && kSize < 8)
            value = static_cast<std::uint64_t>(
                signExtend(value, kSize * 8));
        c.setGpr(i.rt, value);
        if (c.data_fastpath_enabled_)
            c.mintDataMemo(vaddr, paddr);
    }
    template <unsigned kSize>
    static CHERI_FORCE_INLINE void storeLegacy(Cpu &c, const Instruction &i)
    {
        ++*c.stat_mem_;
        std::uint64_t offset =
            c.gpr_[i.rs] +
            static_cast<std::uint64_t>(static_cast<std::int64_t>(i.imm));
        std::uint64_t vaddr =
            cap::effectiveAddress(c.caps_.read(0), offset);
        if (c.data_fastpath_enabled_ && vaddr % kSize == 0 &&
            cap::checkDataAccess(c.caps_.read(0), offset, kSize,
                                 cap::kPermStore) == CapCause::kNone) {
            if (c.tryFastWrite(vaddr, kSize, c.gpr_[i.rt]))
                return;
        }
        std::uint64_t paddr = 0;
        if (!c.checkedDataAccess(0, offset, kSize, true, false, paddr))
            return;
        std::uint64_t mem_cycles = 0;
        c.memory_.write(paddr, kSize, c.gpr_[i.rt], mem_cycles);
        c.cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
        if (c.ll_valid_ && c.ll_addr_ == paddr)
            c.ll_valid_ = false;
        if (c.data_fastpath_enabled_)
            c.mintDataMemo(vaddr, paddr);
    }
    static void lb(Cpu &c, const Instruction &i) { loadLegacy<1, false>(c, i); }
    static void lbu(Cpu &c, const Instruction &i) { loadLegacy<1, true>(c, i); }
    static void lh(Cpu &c, const Instruction &i) { loadLegacy<2, false>(c, i); }
    static void lhu(Cpu &c, const Instruction &i) { loadLegacy<2, true>(c, i); }
    static void lw(Cpu &c, const Instruction &i) { loadLegacy<4, false>(c, i); }
    static void lwu(Cpu &c, const Instruction &i) { loadLegacy<4, true>(c, i); }
    static void ld(Cpu &c, const Instruction &i) { loadLegacy<8, true>(c, i); }
    static void sb(Cpu &c, const Instruction &i) { storeLegacy<1>(c, i); }
    static void sh(Cpu &c, const Instruction &i) { storeLegacy<2>(c, i); }
    static void sw(Cpu &c, const Instruction &i) { storeLegacy<4>(c, i); }
    static void sd(Cpu &c, const Instruction &i) { storeLegacy<8>(c, i); }

    // LL/SC and anything else that needs reservation bookkeeping.
    static void memOp(Cpu &c, const Instruction &i)
    {
        c.executeMemory(i);
    }

    // --- CP2: every CHERI opcode funnels through executeCp2, which
    // routes capability memory to executeCapMemory itself ---
    static void cp2(Cpu &c, const Instruction &i)
    {
        if (!c.cp2_enabled_) {
            c.raise(ExcCode::kCoprocessorUnusable);
            return;
        }
        c.executeCp2(i);
    }
};

/**
 * (Opcode, handler) for every opcode, in exact Opcode declaration
 * order. The static_asserts below pin that correspondence, so the
 * dispatch tables built from this list may index by
 * static_cast<size_t>(op).
 */
#define CHERI_FOR_EACH_OPCODE(X) \
    X(kInvalid, invalid) \
    X(kSll, sll) X(kSrl, srl) X(kSra, sra) X(kSllv, sllv) \
    X(kSrlv, srlv) X(kSrav, srav) X(kDsll, dsll) X(kDsrl, dsrl) \
    X(kDsra, dsra) X(kDsll32, dsll32) X(kDsrl32, dsrl32) \
    X(kDsra32, dsra32) X(kDsllv, dsllv) X(kDsrlv, dsrlv) \
    X(kDsrav, dsrav) \
    X(kAddu, addu) X(kDaddu, daddu) X(kSubu, subu) X(kDsubu, dsubu) \
    X(kAnd, and_) X(kOr, or_) X(kXor, xor_) X(kNor, nor_) \
    X(kSlt, slt) X(kSltu, sltu) X(kMovz, movz) X(kMovn, movn) \
    X(kDmult, dmult) X(kDmultu, dmultu) X(kDdiv, ddiv) \
    X(kDdivu, ddivu) X(kMfhi, mfhi) X(kMflo, mflo) \
    X(kAddiu, addiu) X(kDaddiu, daddiu) X(kSlti, slti) \
    X(kSltiu, sltiu) X(kAndi, andi) X(kOri, ori) X(kXori, xori) \
    X(kLui, lui) \
    X(kJ, j) X(kJal, jal) X(kJr, jr) X(kJalr, jalr) X(kBeq, beq) \
    X(kBne, bne) X(kBlez, blez) X(kBgtz, bgtz) X(kBltz, bltz) \
    X(kBgez, bgez) X(kSyscall, syscall_) X(kBreak, break_) \
    X(kLb, lb) X(kLbu, lbu) X(kLh, lh) X(kLhu, lhu) \
    X(kLw, lw) X(kLwu, lwu) X(kLd, ld) X(kSb, sb) \
    X(kSh, sh) X(kSw, sw) X(kSd, sd) X(kLld, memOp) \
    X(kScd, memOp) \
    X(kCGetBase, cp2) X(kCGetLen, cp2) X(kCGetTag, cp2) \
    X(kCGetPerm, cp2) X(kCGetPcc, cp2) X(kCIncBase, cp2) \
    X(kCSetLen, cp2) X(kCClearTag, cp2) X(kCAndPerm, cp2) \
    X(kCToPtr, cp2) X(kCFromPtr, cp2) X(kCBtu, cp2) X(kCBts, cp2) \
    X(kCLc, cp2) X(kCSc, cp2) X(kClb, cp2) X(kClbu, cp2) \
    X(kClh, cp2) X(kClhu, cp2) X(kClw, cp2) X(kClwu, cp2) \
    X(kCld, cp2) X(kCsb, cp2) X(kCsh, cp2) X(kCsw, cp2) \
    X(kCsd, cp2) X(kClld, cp2) X(kCscd, cp2) X(kCJr, cp2) \
    X(kCJalr, cp2) X(kCSeal, cp2) X(kCUnseal, cp2) \
    X(kCGetType, cp2) X(kCCall, cp2) X(kCReturn, cp2)

/** The unique handlers, for defining one dispatch label each. */
#define CHERI_FOR_EACH_HANDLER(H) \
    H(invalid) H(sll) H(srl) H(sra) H(sllv) H(srlv) H(srav) H(dsll) \
    H(dsrl) H(dsra) H(dsll32) H(dsrl32) H(dsra32) H(dsllv) H(dsrlv) \
    H(dsrav) H(addu) H(daddu) H(subu) H(dsubu) H(and_) H(or_) \
    H(xor_) H(nor_) H(slt) H(sltu) H(movz) H(movn) H(dmult) \
    H(dmultu) H(ddiv) H(ddivu) H(mfhi) H(mflo) H(addiu) H(daddiu) \
    H(slti) H(sltiu) H(andi) H(ori) H(xori) H(lui) H(j) H(jal) \
    H(jr) H(jalr) H(beq) H(bne) H(blez) H(bgtz) H(bltz) H(bgez) \
    H(syscall_) H(break_) H(lb) H(lbu) H(lh) H(lhu) H(lw) H(lwu) \
    H(ld) H(sb) H(sh) H(sw) H(sd) H(memOp) H(cp2)

namespace
{

enum : std::size_t
{
#define X(op, fn) kOpIndex_##op,
    CHERI_FOR_EACH_OPCODE(X)
#undef X
    kOpIndexCount,
};
#define X(op, fn) \
    static_assert(kOpIndex_##op == static_cast<std::size_t>(Opcode::op), \
                  "CHERI_FOR_EACH_OPCODE is out of declaration order");
CHERI_FOR_EACH_OPCODE(X)
#undef X
static_assert(kOpIndexCount == isa::kNumOpcodes,
              "CHERI_FOR_EACH_OPCODE must cover every opcode");

#ifndef CHERI_HAVE_COMPUTED_GOTO
/** Pre-resolved handler table for the portable dispatch fallback. */
constexpr std::array<CpuExec::Fn, isa::kNumOpcodes> kExecTable = {
#define X(op, fn) &CpuExec::fn,
    CHERI_FOR_EACH_OPCODE(X)
#undef X
};
#endif

} // namespace

void
Cpu::execute(const Instruction &inst)
{
    switch (inst.op) {
#define X(op, fn) \
      case Opcode::op: \
        CpuExec::fn(*this, inst); \
        break;
        CHERI_FOR_EACH_OPCODE(X)
#undef X
    }
}

// --- superblock tier (DESIGN.md §12) ---

bool
Cpu::trySuperblock(const RunLimits &limits, std::uint64_t start_insts,
                   std::uint64_t start_cycles, StepOutcome &outcome)
{
    if (branch_pending_ || pcc_swap_countdown_ != 0)
        return false;

    // Hoisted PCC window refresh — the same pure refresh step()
    // performs; on a bad window step() raises the precise cause.
    if (pcc_version_seen_ != caps_.pccVersion()) {
        pcc_version_seen_ = caps_.pccVersion();
        const cap::Capability &pcc = caps_.pcc();
        pcc_fetch_ok_ = pcc.tag() && !pcc.sealed() &&
                        pcc.hasPerms(cap::kPermExecute);
        pcc_fetch_base_ = pcc.base();
        pcc_fetch_top_ = pcc.top();
    }
    if (!pcc_fetch_ok_)
        return false;

    Superblock &sb = superblock_cache_[superblockIndex(pc_)];
    if (sb.start_vaddr != pc_) {
        // Mint only at block leaders: branch targets (the last
        // retired instruction sat in a delay slot) and straight-line
        // continuations of a completed block. Everything else is
        // mid-block code the per-instruction path is already walking.
        if (!in_delay_slot_ && pc_ != sb_pending_leader_)
            return false;
        if (!mintSuperblock(sb))
            return false;
        ++sb_stats_.minted;
    } else if (!superblockGuardsHold(sb)) {
        ++sb_stats_.guard_fails;
        // Minting is pure, so rebuild in place over the fresh decode
        // lines; if they are cold the per-instruction path warms them
        // and a later probe re-mints.
        if (!mintSuperblock(sb))
            return false;
        ++sb_stats_.minted;
    }

    // Whole-block PCC bounds: every slot's per-step window check
    // collapses into one compare over the trace's vaddr hull.
    if (sb.va_lo < pcc_fetch_base_ || sb.va_hi > pcc_fetch_top_)
        return false;

    executeSuperblock(sb, limits, start_insts, start_cycles, outcome);
    return true;
}

bool
Cpu::superblockGuardsHold(Superblock &sb)
{
    // Translation guard: the block's page must still be cached with
    // the same frame. The stream hint may legitimately point at a
    // different page (the last fetch crossed away); re-probe purely
    // before declaring the block stale.
    if (fetch_hint_.generation != tlb_.generation() ||
        fetch_hint_.vpn != sb.vpn) {
        if (!tlb_.probeFetchHint(pc_, fetch_hint_))
            return false;
    }
    if (fetch_hint_.paddr_base != sb.paddr_base)
        return false; // page remapped since mint

    // Stamp fast path: every decode-entry mutation (refill, SMC
    // clear, wholesale invalidation) bumps decode_mint_counter_, so
    // an unchanged counter proves the per-line walk below would pass.
    if (sb.stamp_mint == decode_mint_counter_)
        return true;

    // Predecode guard: every line the block was minted over must
    // still hold the very decode (mint id) its slots were copied
    // from; any store, eviction, or wholesale invalidation since
    // breaks the chain.
    for (const SuperblockLineRef &ref : sb.lines) {
        const DecodedLine &entry = decode_cache_[ref.index];
        if (entry.line_paddr != ref.line_paddr ||
            entry.generation != decode_generation_ ||
            entry.mint_id != ref.mint_id)
            return false;
    }
    sb.stamp_mint = decode_mint_counter_;
    return true;
}

bool
Cpu::mintSuperblock(Superblock &sb)
{
    sb.start_vaddr = ~0ULL;
    sb.slots.clear();
    sb.lines.clear();
    if (pc_ % 4 != 0)
        return false;

    std::uint64_t vpn = pc_ / tlb::kPageBytes;
    if (fetch_hint_.generation != tlb_.generation() ||
        fetch_hint_.vpn != vpn) {
        if (!tlb_.probeFetchHint(pc_, fetch_hint_))
            return false;
    }
    std::uint64_t page_base = vpn * tlb::kPageBytes;
    std::uint64_t page_end = page_base + tlb::kPageBytes;

    // Pure host-side lookup of the predecoded instruction at va,
    // recording the covering line's guard on first touch. nullptr
    // when the line is cold or stale: the block simply ends there —
    // minting never fetches, so it has zero simulated effects.
    auto lookup = [&](std::uint64_t va) -> const Instruction * {
        std::uint64_t paddr = fetch_hint_.paddr_base + (va - page_base);
        std::uint64_t line = paddr & ~(mem::kLineBytes - 1ULL);
        std::size_t index = decodeIndex(line);
        const DecodedLine &entry = decode_cache_[index];
        if (entry.line_paddr != line ||
            entry.generation != decode_generation_)
            return nullptr;
        if (sb.lines.empty() || sb.lines.back().line_paddr != line) {
            sb.lines.push_back({static_cast<std::uint32_t>(index), line,
                                entry.mint_id});
        }
        return &entry.slots[(paddr % mem::kLineBytes) / 4];
    };

    std::uint64_t va = pc_;
    std::uint64_t va_lo = pc_;
    std::uint64_t va_hi = pc_;
    while (sb.slots.size() < accel_.superblock_max_slots &&
           va + 4 <= page_end) {
        const Instruction *inst = lookup(va);
        if (inst == nullptr)
            break;
        if (isa::superblockBody(inst->op)) {
            sb.slots.push_back(
                {*inst, fetch_hint_.paddr_base + (va - page_base)});
            sb.slots.back().full = !isa::superblockSimple(inst->op);
            va_lo = std::min(va_lo, va);
            va_hi = std::max(va_hi, va);
            va += 4;
            continue;
        }
        if (isa::superblockTerminal(inst->op) &&
            sb.slots.size() + 2 <= accel_.superblock_max_slots &&
            va + 8 <= page_end) {
            std::size_t lines_before = sb.lines.size();
            const Instruction *delay = lookup(va + 4);
            if (delay != nullptr && isa::superblockBody(delay->op)) {
                sb.slots.push_back(
                    {*inst, fetch_hint_.paddr_base + (va - page_base)});
                sb.slots.push_back(
                    {*delay,
                     fetch_hint_.paddr_base + (va + 4 - page_base)});
                sb.slots.back().is_delay = true;
                va_lo = std::min(va_lo, va);
                va_hi = std::max(va_hi, va + 4);
                if (isa::superblockFallsThrough(inst->op)) {
                    // A not-taken conditional branch falls through its
                    // delay slot, so keep minting the straight-line
                    // path; at run time the flagged delay slot exits
                    // the block the moment the branch was taken.
                    sb.slots.back().fallthrough_check = true;
                    va += 8;
                    continue;
                }
                if (inst->op == isa::Opcode::kJ ||
                    inst->op == isa::Opcode::kJal) {
                    // A direct jump's target is fixed by instruction
                    // bytes the line guards pin, so execution provably
                    // arrives there: keep minting at the target with
                    // no run-time check. Off-page targets end the
                    // trace (one translation covers the whole block).
                    std::uint64_t target =
                        ((va + 4) & ~0x0fffffffULL) |
                        (static_cast<std::uint64_t>(inst->target) << 2);
                    if (target / tlb::kPageBytes == vpn) {
                        va = target;
                        continue;
                    }
                }
            } else {
                // Drop the guard recorded for a delay-slot line the
                // block will not actually cover.
                sb.lines.resize(lines_before);
            }
        }
        break;
    }

    if (sb.slots.size() < 2) {
        // A 0/1-instruction block cannot amortize its entry guards.
        sb.slots.clear();
        sb.lines.clear();
        return false;
    }
    for (std::size_t i = 1; i < sb.slots.size(); ++i) {
        sb.slots[i].tlb_check =
            isa::touchesDataMemory(sb.slots[i - 1].inst.op);
    }
    if (va_hi + 4 < va_hi) {
        // Page at the very top of the address space: the hull's
        // one-past-the-end would wrap. Not worth a special case.
        sb.slots.clear();
        sb.lines.clear();
        return false;
    }
    sb.start_vaddr = pc_;
    sb.vpn = vpn;
    sb.paddr_base = fetch_hint_.paddr_base;
    sb.va_delta = page_base - fetch_hint_.paddr_base;
    sb.va_lo = va_lo;
    sb.va_hi = va_hi + 4;
    // The lookups above read the live decode entries, so the line
    // guards hold by construction at the current mint counter.
    sb.stamp_mint = decode_mint_counter_;
    return true;
}

void
Cpu::executeSuperblock(Superblock &sb, const RunLimits &limits,
                       std::uint64_t start_insts,
                       std::uint64_t start_cycles, StepOutcome &outcome)
{
    std::uint64_t entry_insts = instructions_;

    // Per-slot simulated-effect bookkeeping is deferred into host
    // registers and settled in batches, so the slot loop touches as
    // little member state as possible:
    //  - retired: instruction count, base CPI, and the TLB fetch-hit
    //    stat (every retired slot passed the fetch replay exactly
    //    once, so one counter serves all three).
    //  - l1i_hits: repeat fetches of the current line; settled (stat
    //    + one LRU touch + hit-stall cycles) at line changes and at
    //    exit. Only the first fetch of each line walks fetchLine.
    // Correct because everything mid-block only ADDS to instructions_
    // and cycles_ (handler latencies commute with the deferred adds)
    // and every read — bounded budget compares, chain seams, run()
    // after return — reconstructs or settles first. The deferred
    // state persists across chained blocks: between blocks there is
    // no commit boundary an observer could sample at.
    std::uint64_t cur_line = ~0ULL;
    cache::Cache::LineHandle l1i_handle;
    std::uint64_t l1i_hits = 0;
    std::uint64_t retired = 0;

    // A tracing observer samples current_pc_ before every dispatch,
    // so lazy PC materialization is disabled for the whole call.
    const bool force_full = trace_hook_ != nullptr;

#ifdef CHERI_HAVE_COMPUTED_GOTO
    // Label-per-opcode dispatch table in Opcode order (pinned by the
    // static_asserts above); shared handlers appear multiple times.
    static const void *const kLabels[isa::kNumOpcodes] = {
#define X(op, fn) &&dispatch_##fn,
        CHERI_FOR_EACH_OPCODE(X)
#undef X
    };
#endif

    Superblock *chain = &sb;
    for (;;) { // one iteration per chained block
    const Superblock &cur = *chain;
    ++sb_stats_.entered;
    sb_active_ = &cur;
    sb_smc_abort_ = false;

    const SuperblockSlot *slot = cur.slots.data();
    const SuperblockSlot *const last = slot + cur.slots.size() - 1;
    bool completed = false;
    bool taken_exit = false;

    // Most callers run with effectively-unlimited budgets; when the
    // whole block provably fits in both (cycles_ can never reach the
    // all-ones sentinel), the per-slot budget compares drop out of
    // the loop. Any finite cycle budget keeps them: a cycle overshoot
    // would retire work the per-instruction path would not.
    bool unbounded =
        limits.max_cycles == ~0ULL &&
        limits.max_instructions - (instructions_ + retired - start_insts) >
            cur.slots.size();

    for (;;) {
        // Fetch replay: the per-instruction path's exact simulated
        // effects — one TLB hit with LRU movement, one L1I line
        // access with stats/LRU/fill, the same stall formula — at the
        // precomputed physical address. The translation re-checks run
        // only where a preceding instruction could have perturbed the
        // TLB (slot->tlb_check); a data-side refill can evict the
        // hinted entry and bump the generation, in which case exit
        // with no effects applied so step() re-translates exactly.
        if (slot->tlb_check) {
            if (fetch_hint_.generation != tlb_.generation()) {
                // No effects applied for this slot, so the commit
                // boundary is the previous slot: reconstruct the PC
                // state if that slot's dispatch deferred it. The
                // first slot's predecessor is the (already exact)
                // seam or entry state.
                if (slot != cur.slots.data() && !slot[-1].full &&
                    !force_full) {
                    std::uint64_t va = slot[-1].paddr + cur.va_delta;
                    current_pc_ = va;
                    in_delay_slot_ = false;
                    pc_ = va + 4;
                    next_pc_ = va + 8;
                }
                break;
            }
            tlb_.replayFetchHitLru(fetch_hint_);
        }
        std::uint64_t slot_line = slot->paddr & ~(mem::kLineBytes - 1ULL);
        if (slot_line == cur_line) {
            ++l1i_hits;
        } else {
            memory_.applyDeferredFetchHits(l1i_handle, l1i_hits);
            cycles_ += l1i_hits * sb_hit_stall_;
            l1i_hits = 0;
            std::uint64_t fetch_cycles = 0;
            memory_.fetchLineHandle(slot->paddr, fetch_cycles,
                                    l1i_handle);
            cycles_ += fetch_cycles > 0 ? fetch_cycles - 1 : 0;
            cur_line = slot_line;
        }

        // Lazy PC materialization: pure-ALU slots (full == false)
        // cannot trap, branch, or read the PC, so the five
        // architectural PC-state writes are skipped across them and
        // reconstructed at the next full slot or commit boundary
        // from the slot's minted vaddr. Invariants that make the
        // reconstruction exact: branch_pending_ is false whenever a
        // lazy slot runs (delay slots are always full and clear it),
        // and a lazy slot is never a delay slot, so its state is
        // always {current_pc_ = va, in_delay_slot_ = false,
        // pc_ = va + 4, next_pc_ = va + 8}.
        const Instruction &inst = slot->inst;
        const bool full = slot->full | force_full;
        if (full) {
            std::uint64_t va = slot->paddr + cur.va_delta;
            current_pc_ = va;
            if (slot->is_delay) {
                // Consume the branch handler's live next_pc_ /
                // branch_pending_, exactly as step() would.
                in_delay_slot_ = branch_pending_;
                pc_ = next_pc_;
                next_pc_ = pc_ + 4;
                branch_pending_ = false;
            } else {
                in_delay_slot_ = false;
                pc_ = va + 4;
                next_pc_ = va + 8;
            }
            if (trace_hook_)
                trace_hook_(current_pc_, inst);
        }

#ifdef CHERI_HAVE_COMPUTED_GOTO
        goto *kLabels[static_cast<std::size_t>(inst.op)];
#define H(fn) \
    dispatch_##fn: \
        CpuExec::fn(*this, inst); \
        goto retire;
        CHERI_FOR_EACH_HANDLER(H)
#undef H
    retire:
#else
        kExecTable[static_cast<std::size_t>(inst.op)](*this, inst);
#endif
        ++retired; // instruction count + base CPI, settled at exit

        if (full) {
            if (trap_pending_) {
                outcome.trapped = true;
                break;
            }
            if (sb_smc_abort_) {
                // The block's own code was just overwritten, so its
                // remaining predecoded slots are stale. Leave; the
                // per-instruction path decodes the fresh bytes, and
                // the cleared decode line fails this block's entry
                // guard until a re-mint picks the new bytes up.
                sb_smc_abort_ = false;
                ++sb_stats_.invalidated;
                break;
            }
            // A taken mid-block branch: its delay slot just retired
            // and pc_ left the straight-line path, so the remaining
            // slots do not apply. in_delay_slot_ is still set,
            // qualifying the branch target as a mint leader on the
            // next probe.
            if (slot->fallthrough_check && pc_ != current_pc_ + 4) {
                taken_exit = true;
                break;
            }
        }
        if (slot == last) {
            // The chain seam below reads pc_, so a lazily dispatched
            // final slot settles its PC state here.
            if (!full) {
                std::uint64_t va = slot->paddr + cur.va_delta;
                current_pc_ = va;
                in_delay_slot_ = false;
                pc_ = va + 4;
                next_pc_ = va + 8;
            }
            completed = true;
            break;
        }
        // run()'s budgets, enforced at the same commit boundaries
        // (never stopping between a branch and its delay slot). The
        // deferred adds are reconstructed into the compare: retired
        // carries the instruction count and base CPI, l1i_hits the
        // current line's outstanding hit stalls.
        if (!unbounded && !branch_pending_ &&
            (instructions_ + retired - start_insts >=
                 limits.max_instructions ||
             cycles_ + retired + l1i_hits * sb_hit_stall_ -
                     start_cycles >=
                 limits.max_cycles)) {
            if (!full) {
                std::uint64_t va = slot->paddr + cur.va_delta;
                current_pc_ = va;
                in_delay_slot_ = false;
                pc_ = va + 4;
                next_pc_ = va + 8;
            }
            break;
        }
        ++slot;
    }

    if (completed) {
        // The pc after a fully executed block is a straight-line
        // continuation leader: a later probe may mint there even if
        // chaining below leaves through a different pc first.
        sb_pending_leader_ = pc_;
    }

    // Block-to-block chaining: a natural exit (block ran out, or a
    // taken branch left it) lands on a pc that may head an already
    // minted block. Entering it here skips a full run()-loop pass and
    // keeps the deferred fetch state warm across the seam. The budget
    // compare is the same one run()'s loop top would perform; guards
    // and PCC window are checked exactly as trySuperblock does.
    if (!completed && !taken_exit)
        break; // trap, SMC, budget stop, or stale translation
    if (instructions_ + retired - start_insts >= limits.max_instructions ||
        cycles_ + retired + l1i_hits * sb_hit_stall_ - start_cycles >=
            limits.max_cycles)
        break;
    Superblock &nxt = superblock_cache_[superblockIndex(pc_)];
    if (nxt.start_vaddr != pc_ || !superblockGuardsHold(nxt))
        break;
    if (nxt.va_lo < pcc_fetch_base_ || nxt.va_hi > pcc_fetch_top_)
        break;
    chain = &nxt;
    } // chain loop

    // Settle the deferred effects: every commit boundary (trap,
    // budget stop, run() exit) sees exactly the counters the
    // per-instruction path would have produced — instruction count,
    // base-CPI and hit-stall cycles, the TLB fetch-hit stat (one per
    // retired slot), and the final line's batched L1I hits.
    instructions_ += retired;
    cycles_ += retired + l1i_hits * sb_hit_stall_;
    memory_.applyDeferredFetchHits(l1i_handle, l1i_hits);
    tlb_.applyDeferredFetchHits(retired);

    // Host-side observability only, so one batched add at exit.
    sb_stats_.instructions += instructions_ - entry_insts;
    sb_active_ = nullptr;
}

void
Cpu::executeMemory(const Instruction &inst)
{
    ++*stat_mem_;
    unsigned size = 1u << isa::accessSizeLog2(inst.op);
    // Legacy accesses are implicitly offset via C0 (Section 4.1): the
    // integer address is an offset into the C0 segment.
    std::uint64_t offset =
        gpr_[inst.rs] +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.imm));
    bool is_store = inst.op == Opcode::kSb || inst.op == Opcode::kSh ||
                    inst.op == Opcode::kSw || inst.op == Opcode::kSd ||
                    inst.op == Opcode::kScd;

    if (inst.op == Opcode::kScd) {
        std::uint64_t paddr = 0;
        if (!checkedDataAccess(0, offset, size, true, false, paddr))
            return;
        if (ll_valid_ && ll_addr_ == paddr) {
            std::uint64_t mem_cycles = 0;
            memory_.write(paddr, size, gpr_[inst.rt], mem_cycles);
            cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
            setGpr(inst.rt, 1);
        } else {
            setGpr(inst.rt, 0);
        }
        ll_valid_ = false;
        return;
    }

    // Data fast path (LL excluded: it must record the reservation
    // paddr, which the slow path already produces). The capability and
    // alignment checks here are pure, so a fast-path miss falls to the
    // slow path with zero simulated effects applied.
    std::uint64_t vaddr = cap::effectiveAddress(caps_.read(0), offset);
    if (data_fastpath_enabled_ && inst.op != Opcode::kLld &&
        vaddr % size == 0 &&
        cap::checkDataAccess(caps_.read(0), offset, size,
                             is_store ? cap::kPermStore
                                      : cap::kPermLoad) ==
            CapCause::kNone) {
        if (is_store) {
            if (tryFastWrite(vaddr, size, gpr_[inst.rt]))
                return;
        } else {
            std::uint64_t value = 0;
            if (tryFastRead(vaddr, size, value)) {
                if (!isa::loadIsUnsigned(inst.op) && size < 8)
                    value = static_cast<std::uint64_t>(
                        signExtend(value, size * 8));
                setGpr(inst.rt, value);
                return;
            }
        }
    }

    std::uint64_t paddr = 0;
    if (!checkedDataAccess(0, offset, size, is_store, false, paddr))
        return;

    std::uint64_t mem_cycles = 0;
    if (is_store) {
        memory_.write(paddr, size, gpr_[inst.rt], mem_cycles);
        cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
        // Any store to the monitored line breaks the reservation.
        if (ll_valid_ && ll_addr_ == paddr)
            ll_valid_ = false;
        if (data_fastpath_enabled_)
            mintDataMemo(vaddr, paddr);
        return;
    }

    std::uint64_t value = memory_.read(paddr, size, mem_cycles);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    if (!isa::loadIsUnsigned(inst.op) && size < 8)
        value = static_cast<std::uint64_t>(
            signExtend(value, size * 8));
    setGpr(inst.rt, value);

    if (inst.op == Opcode::kLld) {
        ll_valid_ = true;
        ll_addr_ = paddr;
    } else if (data_fastpath_enabled_) {
        mintDataMemo(vaddr, paddr);
    }
}

void
Cpu::executeCapMemory(const Instruction &inst)
{
    ++*stat_capmem_;
    std::uint64_t offset =
        gpr_[inst.rt] +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.imm));

    if (inst.op == Opcode::kCLc || inst.op == Opcode::kCSc) {
        bool is_store = inst.op == Opcode::kCSc;

        // Data fast path for full-line capability transfers. The
        // checks are pure; a miss falls through effect-free.
        if (data_fastpath_enabled_ &&
            cap::checkDataAccess(caps_.read(inst.cb), offset,
                                 mem::kLineBytes,
                                 is_store ? cap::kPermStoreCap
                                          : cap::kPermLoadCap,
                                 true) == CapCause::kNone) {
            std::uint64_t vaddr =
                cap::effectiveAddress(caps_.read(inst.cb), offset);
            if (is_store) {
                const cap::Capability &src = caps_.read(inst.cd);
                mem::TaggedLine line{src.raw(), src.tag()};
                if (tryFastCapWrite(vaddr, line))
                    return;
            } else if (const mem::TaggedLine *line =
                           tryFastCapRead(vaddr)) {
                caps_.write(inst.cd, cap::Capability::fromRaw(
                                         line->data, line->tag));
                return;
            }
        }

        std::uint64_t paddr = 0;
        if (!checkedDataAccess(inst.cb, offset, mem::kLineBytes,
                               is_store, true, paddr))
            return;
        std::uint64_t mem_cycles = 0;
        if (is_store) {
            const cap::Capability &src = caps_.read(inst.cd);
            mem::TaggedLine line{src.raw(), src.tag()};
            memory_.writeCapLine(paddr, line, mem_cycles);
        } else {
            mem::TaggedLine line =
                memory_.readCapLine(paddr, mem_cycles);
            caps_.write(inst.cd,
                        cap::Capability::fromRaw(line.data, line.tag));
        }
        cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
        if (data_fastpath_enabled_) {
            mintDataMemo(cap::effectiveAddress(caps_.read(inst.cb),
                                               offset),
                         paddr);
        }
        return;
    }

    unsigned size = 1u << isa::accessSizeLog2(inst.op);
    bool is_store = inst.op == Opcode::kCsb || inst.op == Opcode::kCsh ||
                    inst.op == Opcode::kCsw || inst.op == Opcode::kCsd ||
                    inst.op == Opcode::kCscd;

    // Capability-relative data accesses must also be naturally
    // aligned; enforce through the same alignment exception MIPS uses.
    if (inst.op == Opcode::kCscd) {
        std::uint64_t paddr = 0;
        if (!checkedDataAccess(inst.cb, offset, size, true, false, paddr))
            return;
        if (ll_valid_ && ll_addr_ == paddr) {
            std::uint64_t mem_cycles = 0;
            memory_.write(paddr, size, gpr_[inst.rd], mem_cycles);
            cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
            setGpr(inst.rd, 1);
        } else {
            setGpr(inst.rd, 0);
        }
        ll_valid_ = false;
        return;
    }

    // Data fast path for capability-relative scalar accesses (CLLD
    // excluded for the same reservation reason as LL above).
    std::uint64_t vaddr =
        cap::effectiveAddress(caps_.read(inst.cb), offset);
    if (data_fastpath_enabled_ && inst.op != Opcode::kClld &&
        vaddr % size == 0 &&
        cap::checkDataAccess(caps_.read(inst.cb), offset, size,
                             is_store ? cap::kPermStore
                                      : cap::kPermLoad) ==
            CapCause::kNone) {
        if (is_store) {
            if (tryFastWrite(vaddr, size, gpr_[inst.rd]))
                return;
        } else {
            std::uint64_t value = 0;
            if (tryFastRead(vaddr, size, value)) {
                if (!isa::loadIsUnsigned(inst.op) && size < 8)
                    value = static_cast<std::uint64_t>(
                        signExtend(value, size * 8));
                setGpr(inst.rd, value);
                return;
            }
        }
    }

    std::uint64_t paddr = 0;
    if (!checkedDataAccess(inst.cb, offset, size, is_store, false, paddr))
        return;

    std::uint64_t mem_cycles = 0;
    if (is_store) {
        memory_.write(paddr, size, gpr_[inst.rd], mem_cycles);
        cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
        if (ll_valid_ && ll_addr_ == paddr)
            ll_valid_ = false;
        if (data_fastpath_enabled_)
            mintDataMemo(vaddr, paddr);
        return;
    }

    std::uint64_t value = memory_.read(paddr, size, mem_cycles);
    cycles_ += mem_cycles > 0 ? mem_cycles - 1 : 0;
    if (!isa::loadIsUnsigned(inst.op) && size < 8)
        value = static_cast<std::uint64_t>(signExtend(value, size * 8));
    setGpr(inst.rd, value);

    if (inst.op == Opcode::kClld) {
        ll_valid_ = true;
        ll_addr_ = paddr;
    } else if (data_fastpath_enabled_) {
        mintDataMemo(vaddr, paddr);
    }
}

void
Cpu::executeCp2(const Instruction &inst)
{
    if (inst.isCapMemory()) {
        executeCapMemory(inst);
        return;
    }
    ++*stat_cp2_;

    switch (inst.op) {
      case Opcode::kCGetBase:
        setGpr(inst.rd, caps_.read(inst.cb).base());
        break;
      case Opcode::kCGetLen:
        setGpr(inst.rd, caps_.read(inst.cb).length());
        break;
      case Opcode::kCGetTag:
        setGpr(inst.rd, caps_.read(inst.cb).tag() ? 1 : 0);
        break;
      case Opcode::kCGetPerm:
        setGpr(inst.rd, caps_.read(inst.cb).perms());
        break;
      case Opcode::kCGetPcc:
        caps_.write(inst.cd, caps_.pcc());
        setGpr(inst.rd, current_pc_);
        break;
      case Opcode::kCIncBase: {
        cap::CapOpResult result =
            cap::incBase(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCSetLen: {
        cap::CapOpResult result =
            cap::setLen(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCClearTag: {
        cap::Capability value = caps_.read(inst.cb);
        value.clearTag();
        caps_.write(inst.cd, value);
        break;
      }
      case Opcode::kCAndPerm: {
        cap::CapOpResult result = cap::andPerm(
            caps_.read(inst.cb),
            static_cast<std::uint32_t>(gpr_[inst.rt]));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCToPtr:
        setGpr(inst.rd,
               cap::toPtr(caps_.read(inst.cb), caps_.read(inst.ct)));
        break;
      case Opcode::kCFromPtr: {
        cap::CapOpResult result =
            cap::fromPtr(caps_.read(inst.cb), gpr_[inst.rt]);
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCBtu: {
        ++*stat_branch_;
        bool taken = !caps_.read(inst.cb).tag();
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kCBts: {
        ++*stat_branch_;
        bool taken = caps_.read(inst.cb).tag();
        predictBranch(taken);
        if (taken)
            branchTo(current_pc_ + 4 +
                     (static_cast<std::int64_t>(inst.imm) << 2));
        break;
      }
      case Opcode::kCSeal: {
        cap::CapOpResult result =
            cap::seal(caps_.read(inst.cb), caps_.read(inst.ct));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCUnseal: {
        cap::CapOpResult result =
            cap::unseal(caps_.read(inst.cb), caps_.read(inst.ct));
        if (!result.ok()) {
            raiseCap(result.cause, inst.cb);
            break;
        }
        caps_.write(inst.cd, result.value);
        break;
      }
      case Opcode::kCGetType: {
        const cap::Capability &sealed_cap = caps_.read(inst.cb);
        setGpr(inst.rd, sealed_cap.sealed() ? sealed_cap.otype()
                                            : ~0ULL);
        break;
      }
      case Opcode::kCCall:
        // The prototype traps to the OS to emulate a protected
        // procedure call (Section 11); the handler validates the
        // sealed pair and performs the domain transition.
        raise(ExcCode::kCCall);
        pending_trap_.cap_reg = inst.cb;
        pending_trap_.cap_reg2 = inst.ct;
        break;
      case Opcode::kCReturn:
        raise(ExcCode::kCReturn);
        break;
      case Opcode::kCJr:
      case Opcode::kCJalr: {
        ++*stat_branch_;
        const cap::Capability &target_cap = caps_.read(inst.cb);
        if (!target_cap.tag()) {
            raiseCap(CapCause::kTagViolation, inst.cb);
            break;
        }
        if (target_cap.sealed()) {
            raiseCap(CapCause::kSealViolation, inst.cb);
            break;
        }
        if (!target_cap.hasPerms(cap::kPermExecute)) {
            raiseCap(CapCause::kPermitExecuteViolation, inst.cb);
            break;
        }
        std::uint64_t target = target_cap.base() + gpr_[inst.rt];
        if (inst.op == Opcode::kCJalr) {
            // Link: cd receives the caller's PCC; ra receives the
            // return point as an offset within that PCC, so the
            // return sequence is simply "cjr ra(cd)".
            caps_.write(inst.cd, caps_.pcc());
            setGpr(31, current_pc_ + 8 - caps_.pcc().base());
        }
        pending_pcc_ = target_cap;
        pcc_swap_countdown_ = 2;
        branchTo(target);
        break;
      }
      default:
        raise(ExcCode::kReservedInstruction);
        break;
    }
}

bool
Cpu::debugRead(std::uint64_t vaddr, unsigned size, std::uint64_t &value)
{
    tlb::TlbResult result = tlb_.translate(vaddr, tlb::Access::kLoad);
    if (!result.ok())
        return false;
    std::uint64_t scratch = 0;
    value = memory_.read(result.paddr, size, scratch);
    return true;
}

bool
Cpu::debugWrite(std::uint64_t vaddr, unsigned size, std::uint64_t value)
{
    tlb::TlbResult result = tlb_.translate(vaddr, tlb::Access::kStore);
    if (!result.ok())
        return false;
    std::uint64_t scratch = 0;
    memory_.write(result.paddr, size, value, scratch);
    return true;
}

bool
Cpu::debugReadCap(std::uint64_t vaddr, cap::Capability &out)
{
    tlb::TlbResult result = tlb_.translate(vaddr, tlb::Access::kCapLoad);
    if (!result.ok())
        return false;
    std::uint64_t scratch = 0;
    mem::TaggedLine line = memory_.readCapLine(result.paddr, scratch);
    out = cap::Capability::fromRaw(line.data, line.tag);
    return true;
}

bool
Cpu::debugWriteCap(std::uint64_t vaddr, const cap::Capability &value)
{
    tlb::TlbResult result = tlb_.translate(vaddr, tlb::Access::kCapStore);
    if (!result.ok())
        return false;
    std::uint64_t scratch = 0;
    memory_.writeCapLine(result.paddr,
                         mem::TaggedLine{value.raw(), value.tag()},
                         scratch);
    return true;
}

} // namespace cheri::core
