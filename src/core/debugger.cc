#include "core/debugger.h"

namespace cheri::core
{

namespace
{
constexpr std::size_t kRecentPcLimit = 32;
} // namespace

Debugger::Debugger(Cpu &cpu) : cpu_(cpu)
{
    cpu_.setTraceHook(
        [this](std::uint64_t pc, const isa::Instruction &inst) {
            onInstruction(pc, inst);
        });
}

Debugger::~Debugger()
{
    cpu_.setTraceHook({});
}

void
Debugger::onInstruction(std::uint64_t pc, const isa::Instruction &)
{
    if (recent_pcs_.size() >= kRecentPcLimit)
        recent_pcs_.erase(recent_pcs_.begin());
    recent_pcs_.push_back(pc);
}

RunResult
Debugger::step()
{
    return cpu_.run(1);
}

DebugRunResult
Debugger::run(std::uint64_t max_instructions)
{
    DebugRunResult result;

    // Snapshot the watched registers.
    std::vector<std::pair<unsigned, cap::Capability>> watched;
    for (unsigned index : watched_)
        watched.emplace_back(index, cpu_.caps().read(index));

    for (std::uint64_t executed = 0; executed < max_instructions;
         ++executed) {
        // Breakpoints fire before the instruction executes — except
        // immediately after stopping at one, so run() can resume.
        if (breakpoints_.count(cpu_.pc()) != 0 && executed > 0) {
            result.stop = DebugStop::kBreakpoint;
            result.stop_pc = cpu_.pc();
            return result;
        }
        result.cpu = cpu_.run(1);
        if (result.cpu.reason != StopReason::kInstLimit) {
            result.stop = DebugStop::kCpuStopped;
            result.stop_pc =
                recent_pcs_.empty() ? cpu_.pc() : recent_pcs_.back();
            return result;
        }

        for (auto &[index, old_value] : watched) {
            const cap::Capability &now = cpu_.caps().read(index);
            if (!(now == old_value)) {
                result.stop = DebugStop::kCapWrite;
                result.cap_reg = index;
                result.stop_pc = recent_pcs_.empty()
                                     ? cpu_.pc()
                                     : recent_pcs_.back();
                return result;
            }
        }
    }
    result.stop = DebugStop::kCpuStopped;
    result.stop_pc = cpu_.pc();
    return result;
}

} // namespace cheri::core
