#include "core/machine.h"

#include "support/logging.h"

namespace cheri::core
{

Machine::Machine(MachineConfig config)
    : Machine(config,
              std::make_shared<mem::CowStore>(config.dram_bytes))
{
}

Machine::Machine(const MachineConfig &config,
                 std::shared_ptr<mem::CowStore> store)
    : config_(config), store_(std::move(store)), dram_(store_),
      tags_(store_), tag_manager_(dram_, tags_, config.tag_cache),
      hierarchy_(tag_manager_, config.caches), page_table_(),
      tlb_(page_table_, config.tlb),
      cpu_(hierarchy_, tlb_, config.timing, config.accel)
{
    // Prefetch wiring (body, not init list: the hierarchy is
    // constructed before the TLB). Runs for forks too — the child's
    // probe must consult the child's own TLB.
    hierarchy_.setPrefetchTranslator(
        [this](std::uint64_t vaddr, std::uint64_t &paddr) {
            return tlb_.probePrefetch(vaddr, paddr);
        });
    hierarchy_.setPrefetchPhysLimit(config_.dram_bytes);
}

std::unique_ptr<Machine>
Machine::fork() const
{
    std::unique_ptr<Machine> child(
        new Machine(config_, store_->fork()));
    // DRAM and tags came with the forked store; everything else is
    // small state carried over through the existing snapshot paths,
    // which also drop host accelerators in the child (its cache Way
    // storage is a fresh copy — parent LineHandle memos must not
    // survive into it).
    child->tag_manager_.restore(tag_manager_.save());
    child->hierarchy_.restore(hierarchy_.save());
    child->page_table_.restore(page_table_.save());
    child->tlb_.restore(tlb_.save());
    child->cpu_.restore(cpu_.save());
    // Host fast-path enables are deliberately outside Cpu::Snapshot
    // (restore never changes them); a fork must inherit them so the
    // child replays the parent's timing mode.
    child->cpu_.setDecodeCacheEnabled(cpu_.decodeCacheEnabled());
    child->cpu_.setDataFastPathEnabled(cpu_.dataFastPathEnabled());
    child->cpu_.setSuperblocksEnabled(cpu_.superblocksEnabled());
    child->next_frame_ = next_frame_;
    return child;
}

std::optional<std::uint64_t>
Machine::tryAllocFrame()
{
    std::uint64_t frames = config_.dram_bytes / tlb::kPageBytes;
    if (next_frame_ >= frames)
        return std::nullopt;
    return next_frame_++;
}

std::uint64_t
Machine::allocFrame()
{
    std::optional<std::uint64_t> pfn = tryAllocFrame();
    if (!pfn) {
        support::fatal("out of physical frames (%llu allocated, DRAM "
                       "is %llu MB)",
                       static_cast<unsigned long long>(next_frame_),
                       static_cast<unsigned long long>(
                           config_.dram_bytes / (1024 * 1024)));
    }
    return *pfn;
}

bool
Machine::tryMapRange(std::uint64_t vaddr, std::uint64_t bytes,
                     tlb::PteFlags flags)
{
    std::uint64_t first_vpn = vaddr / tlb::kPageBytes;
    std::uint64_t last_vpn = (vaddr + bytes - 1) / tlb::kPageBytes;
    for (std::uint64_t vpn = first_vpn; vpn <= last_vpn; ++vpn) {
        if (page_table_.lookup(vpn))
            continue;
        std::optional<std::uint64_t> pfn = tryAllocFrame();
        if (!pfn)
            return false;
        page_table_.map(vpn, *pfn, flags);
    }
    return true;
}

void
Machine::mapRange(std::uint64_t vaddr, std::uint64_t bytes,
                  tlb::PteFlags flags)
{
    if (!tryMapRange(vaddr, bytes, flags)) {
        support::fatal("cannot map [0x%llx, +0x%llx): out of physical "
                       "frames",
                       static_cast<unsigned long long>(vaddr),
                       static_cast<unsigned long long>(bytes));
    }
}

void
Machine::loadProgram(std::uint64_t vaddr,
                     const std::vector<std::uint32_t> &words)
{
    if (vaddr % 4 != 0)
        support::fatal("program load address 0x%llx not word aligned",
                       static_cast<unsigned long long>(vaddr));
    mapRange(vaddr, words.size() * 4);
    for (std::size_t i = 0; i < words.size(); ++i) {
        std::uint64_t va = vaddr + i * 4;
        auto pte = page_table_.lookup(va / tlb::kPageBytes);
        std::uint64_t paddr =
            pte->pfn * tlb::kPageBytes + va % tlb::kPageBytes;
        dram_.write(paddr, 4, words[i]);
    }
    // The words went into DRAM below the hierarchy's (and the decode
    // cache's) view; any predecoded lines for recycled frames are now
    // stale.
    cpu_.invalidateDecodeCache();
}

Machine::Snapshot
Machine::saveSnapshot() const
{
    Snapshot snapshot;
    snapshot.dram = dram_.save();
    snapshot.tags = tags_.save();
    snapshot.tag_manager = tag_manager_.save();
    snapshot.caches = hierarchy_.save();
    snapshot.page_table = page_table_.save();
    snapshot.tlb = tlb_.save();
    snapshot.cpu = cpu_.save();
    snapshot.next_frame = next_frame_;
    return snapshot;
}

void
Machine::restoreSnapshot(const Snapshot &snapshot)
{
    dram_.restore(snapshot.dram);
    tags_.restore(snapshot.tags);
    tag_manager_.restore(snapshot.tag_manager);
    hierarchy_.restore(snapshot.caches);
    page_table_.restore(snapshot.page_table);
    tlb_.restore(snapshot.tlb);
    cpu_.restore(snapshot.cpu);
    next_frame_ = snapshot.next_frame;
}

void
Machine::reset(std::uint64_t entry_pc)
{
    cpu_.setPc(entry_pc);
    cpu_.caps() = cap::CapRegFile(); // all registers almighty
}

} // namespace cheri::core
