#include "core/machine.h"

#include "support/logging.h"

namespace cheri::core
{

Machine::Machine(MachineConfig config)
    : config_(config), dram_(config.dram_bytes), tags_(config.dram_bytes),
      tag_manager_(dram_, tags_, config.tag_cache),
      hierarchy_(tag_manager_, config.caches), page_table_(),
      tlb_(page_table_, config.tlb), cpu_(hierarchy_, tlb_, config.timing, config.accel)
{
}

std::optional<std::uint64_t>
Machine::tryAllocFrame()
{
    std::uint64_t frames = config_.dram_bytes / tlb::kPageBytes;
    if (next_frame_ >= frames)
        return std::nullopt;
    return next_frame_++;
}

std::uint64_t
Machine::allocFrame()
{
    std::optional<std::uint64_t> pfn = tryAllocFrame();
    if (!pfn) {
        support::fatal("out of physical frames (%llu allocated, DRAM "
                       "is %llu MB)",
                       static_cast<unsigned long long>(next_frame_),
                       static_cast<unsigned long long>(
                           config_.dram_bytes / (1024 * 1024)));
    }
    return *pfn;
}

bool
Machine::tryMapRange(std::uint64_t vaddr, std::uint64_t bytes,
                     tlb::PteFlags flags)
{
    std::uint64_t first_vpn = vaddr / tlb::kPageBytes;
    std::uint64_t last_vpn = (vaddr + bytes - 1) / tlb::kPageBytes;
    for (std::uint64_t vpn = first_vpn; vpn <= last_vpn; ++vpn) {
        if (page_table_.lookup(vpn))
            continue;
        std::optional<std::uint64_t> pfn = tryAllocFrame();
        if (!pfn)
            return false;
        page_table_.map(vpn, *pfn, flags);
    }
    return true;
}

void
Machine::mapRange(std::uint64_t vaddr, std::uint64_t bytes,
                  tlb::PteFlags flags)
{
    if (!tryMapRange(vaddr, bytes, flags)) {
        support::fatal("cannot map [0x%llx, +0x%llx): out of physical "
                       "frames",
                       static_cast<unsigned long long>(vaddr),
                       static_cast<unsigned long long>(bytes));
    }
}

void
Machine::loadProgram(std::uint64_t vaddr,
                     const std::vector<std::uint32_t> &words)
{
    if (vaddr % 4 != 0)
        support::fatal("program load address 0x%llx not word aligned",
                       static_cast<unsigned long long>(vaddr));
    mapRange(vaddr, words.size() * 4);
    for (std::size_t i = 0; i < words.size(); ++i) {
        std::uint64_t va = vaddr + i * 4;
        auto pte = page_table_.lookup(va / tlb::kPageBytes);
        std::uint64_t paddr =
            pte->pfn * tlb::kPageBytes + va % tlb::kPageBytes;
        dram_.write(paddr, 4, words[i]);
    }
    // The words went into DRAM below the hierarchy's (and the decode
    // cache's) view; any predecoded lines for recycled frames are now
    // stale.
    cpu_.invalidateDecodeCache();
}

Machine::Snapshot
Machine::saveSnapshot() const
{
    Snapshot snapshot;
    snapshot.dram = dram_.save();
    snapshot.tags = tags_.save();
    snapshot.tag_manager = tag_manager_.save();
    snapshot.caches = hierarchy_.save();
    snapshot.page_table = page_table_.save();
    snapshot.tlb = tlb_.save();
    snapshot.cpu = cpu_.save();
    snapshot.next_frame = next_frame_;
    return snapshot;
}

void
Machine::restoreSnapshot(const Snapshot &snapshot)
{
    dram_.restore(snapshot.dram);
    tags_.restore(snapshot.tags);
    tag_manager_.restore(snapshot.tag_manager);
    hierarchy_.restore(snapshot.caches);
    page_table_.restore(snapshot.page_table);
    tlb_.restore(snapshot.tlb);
    cpu_.restore(snapshot.cpu);
    next_frame_ = snapshot.next_frame;
}

void
Machine::reset(std::uint64_t entry_pc)
{
    cpu_.setPc(entry_pc);
    cpu_.caps() = cap::CapRegFile(); // all registers almighty
}

} // namespace cheri::core
