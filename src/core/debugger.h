/**
 * @file
 * A small debugger over the CPU's trace hook: PC breakpoints,
 * single-stepping, and capability-register watch — the kind of
 * bring-up tooling the BERI/CHERI project shipped alongside the soft
 * core. Purely host-side; the guest cannot observe it.
 */

#ifndef CHERI_CORE_DEBUGGER_H
#define CHERI_CORE_DEBUGGER_H

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/cpu.h"

namespace cheri::core
{

/** Why Debugger::run stopped. */
enum class DebugStop
{
    kBreakpoint, ///< hit a PC breakpoint
    kCapWrite,   ///< a watched capability register changed
    kCpuStopped, ///< the CPU stopped itself (exit/trap/break/limit)
};

/** Result of a debugger-controlled run. */
struct DebugRunResult
{
    DebugStop stop = DebugStop::kCpuStopped;
    /** PC of the instruction that triggered the stop. */
    std::uint64_t stop_pc = 0;
    /** Watched register that changed (kCapWrite only). */
    unsigned cap_reg = 0;
    /** The underlying CPU result for the final segment. */
    RunResult cpu;
};

/**
 * Attaches to a Cpu by installing a trace hook; detaches (restoring
 * nothing — the hook slot is owned by the debugger while alive) on
 * destruction. Breakpoints take effect before the instruction at the
 * breakpoint executes.
 */
class Debugger
{
  public:
    explicit Debugger(Cpu &cpu);
    ~Debugger();

    Debugger(const Debugger &) = delete;
    Debugger &operator=(const Debugger &) = delete;

    /** Add/remove a PC breakpoint. */
    void setBreakpoint(std::uint64_t pc) { breakpoints_.insert(pc); }
    void clearBreakpoint(std::uint64_t pc) { breakpoints_.erase(pc); }

    /**
     * Watch a capability register: run() stops after any instruction
     * that changes its value (including its tag).
     */
    void watchCapReg(unsigned index) { watched_.insert(index); }

    /** Execute exactly one instruction. */
    RunResult step();

    /**
     * Run until a breakpoint/watch fires or the CPU stops, up to
     * max_instructions.
     */
    DebugRunResult run(std::uint64_t max_instructions = 1'000'000);

    /** PCs executed since attach (bounded ring of the last 32). */
    const std::vector<std::uint64_t> &recentPcs() const
    {
        return recent_pcs_;
    }

  private:
    void onInstruction(std::uint64_t pc, const isa::Instruction &inst);

    Cpu &cpu_;
    std::unordered_set<std::uint64_t> breakpoints_;
    std::unordered_set<unsigned> watched_;
    std::vector<std::uint64_t> recent_pcs_;

    // Hook-to-run communication.
    bool break_armed_ = false;
    bool break_hit_ = false;
    std::uint64_t break_pc_ = 0;
};

} // namespace cheri::core

#endif // CHERI_CORE_DEBUGGER_H
