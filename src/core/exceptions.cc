#include "core/exceptions.h"

#include "support/logging.h"

namespace cheri::core
{

const char *
excCodeName(ExcCode code)
{
    switch (code) {
      case ExcCode::kNone: return "none";
      case ExcCode::kTlbLoad: return "TLB (load/fetch)";
      case ExcCode::kTlbStore: return "TLB (store)";
      case ExcCode::kTlbModified: return "TLB modified";
      case ExcCode::kAddressErrorLoad: return "address error (load)";
      case ExcCode::kAddressErrorStore: return "address error (store)";
      case ExcCode::kSyscall: return "syscall";
      case ExcCode::kBreakpoint: return "breakpoint";
      case ExcCode::kReservedInstruction: return "reserved instruction";
      case ExcCode::kCoprocessorUnusable: return "coprocessor unusable";
      case ExcCode::kCp2: return "capability exception";
      case ExcCode::kCCall: return "CCall trap";
      case ExcCode::kCReturn: return "CReturn trap";
    }
    return "unknown";
}

std::string
Trap::toString() const
{
    if (code == ExcCode::kCp2) {
        return support::format(
            "capability exception: %s (reg %s%u) at pc 0x%llx vaddr "
            "0x%llx%s",
            cap::capCauseName(cap_cause),
            cap_reg == kCapRegPcc ? "PCC/" : "c",
            cap_reg == kCapRegPcc ? 0u : cap_reg,
            static_cast<unsigned long long>(epc),
            static_cast<unsigned long long>(bad_vaddr),
            in_delay_slot ? " (delay slot)" : "");
    }
    return support::format(
        "%s at pc 0x%llx vaddr 0x%llx%s", excCodeName(code),
        static_cast<unsigned long long>(epc),
        static_cast<unsigned long long>(bad_vaddr),
        in_delay_slot ? " (delay slot)" : "");
}

} // namespace cheri::core
