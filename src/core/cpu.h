/**
 * @file
 * The BERI/CHERI processor model: a single-issue in-order 64-bit MIPS
 * core with the CHERI capability coprocessor (CP2) tightly coupled to
 * its execute and memory stages (Section 4.4). Functionally complete
 * for the implemented subset; timing is cycle-accounted (CPI ~ 1 plus
 * cache, TLB, multiply/divide penalties) rather than pipelined in
 * detail — the substitution DESIGN.md documents for the paper's FPGA.
 *
 * Memory access order for a checked access (capability addressing
 * happens before translation, Section 1):
 *   1. capability check (tag, permissions, bounds) against the
 *      explicit register or C0/PCC;
 *   2. MIPS alignment check;
 *   3. TLB translation, including the CHERI PTE capability bits;
 *   4. cache-hierarchy access at the physical address.
 */

#ifndef CHERI_CORE_CPU_H
#define CHERI_CORE_CPU_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "cap/cap_ops.h"
#include "cap/reg_file.h"
#include "core/exceptions.h"
#include "isa/decoder.h"
#include "support/stats.h"
#include "tlb/tlb.h"

namespace cheri::core
{

/** Timing parameters of the core (Section 4 / R4000 parity). */
struct CpuTiming
{
    std::uint64_t mult_cycles = 8;
    std::uint64_t div_cycles = 64;
    /** Pipeline refill penalty for a mispredicted branch (BERI has a
     *  branch predictor and a 6-stage pipeline, Section 4). */
    std::uint64_t branch_mispredict_cycles = 3;
    /** Bimodal predictor table entries (power of two). */
    std::uint64_t predictor_entries = 512;
};

/**
 * Geometry of the CPU's host-side accelerators. These knobs change
 * host throughput only — never simulated timing or counters — so
 * tests shrink them to force eviction/aliasing without perturbing
 * the modeled machine. All sizes must be powers of two.
 */
struct CpuAccelConfig
{
    /** Direct-mapped predecode-cache lines. The default covers 32 KB
     *  of code, twice the modeled L1I, so it is never the
     *  bottleneck. */
    std::size_t decode_cache_lines = 1024;
    /** Direct-mapped superblock-cache entries (keyed by start pc). */
    std::size_t superblock_entries = 1024;
    /** Maximum instructions chained into one superblock. */
    std::size_t superblock_max_slots = 64;
};

/**
 * Host-side observability counters for the superblock tier. Kept
 * outside the Cpu StatSet deliberately: simulated counters must be
 * bit-identical across accelerator modes, and these by construction
 * are not (they count host events, not architectural ones).
 */
struct SuperblockStats
{
    std::uint64_t minted = 0;      ///< blocks built (incl. re-mints)
    std::uint64_t entered = 0;     ///< successful block entries
    std::uint64_t guard_fails = 0; ///< entry probes that found a stale block
    std::uint64_t invalidated = 0; ///< blocks dropped (restore, SMC abort)
    /** Instructions retired via superblock dispatch; the remainder of
     *  totalInstructions() went through the per-instruction path. */
    std::uint64_t instructions = 0;
};

/** Why Cpu::run returned. */
enum class StopReason
{
    kInstLimit,  ///< executed the requested number of instructions
    kCycleLimit, ///< exhausted the cycle budget (watchdog)
    kExited,     ///< syscall handler requested exit
    kTrap,       ///< unhandled guest exception (see Trap)
    kBreak,      ///< BREAK instruction
    /** A guest-induced internal failure crossed the supervision
     *  barrier: a state-integrity check (support::guestFault) fired
     *  under an active support::PanicScope and the run unwound
     *  cleanly instead of aborting. The machine stopped mid-
     *  instruction and is poisoned — roll it back (restoreSnapshot)
     *  or discard it (a supervisor re-forks); never resume it. */
    kInternalFault,
};

/** Stable lower-case stop-reason name used in reports and JSON. */
const char *stopReasonName(StopReason reason);

/**
 * Context captured when a run stops with kInternalFault: which
 * subsystem's integrity check fired, its message, the PC of the
 * instruction that was executing, and the retired-instruction count
 * at the stop (the faulting instruction itself did not retire).
 */
struct InternalFault
{
    std::string subsystem;
    std::string message;
    std::uint64_t pc = 0;
    std::uint64_t instructions = 0;
};

/**
 * Execution budget for Cpu::run. The cycle budget is the watchdog
 * half: a corrupted guest that spins or wanders returns a structured
 * kCycleLimit/kInstLimit result instead of hanging the host.
 */
struct RunLimits
{
    std::uint64_t max_instructions = ~0ULL;
    std::uint64_t max_cycles = ~0ULL;
};

/** Outcome of a run. */
struct RunResult
{
    StopReason reason = StopReason::kInstLimit;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    Trap trap;            ///< valid when reason == kTrap
    std::int64_t exit_code = 0; ///< valid when reason == kExited
    InternalFault fault;  ///< valid when reason == kInternalFault
};

/** What a syscall handler tells the CPU to do next. */
struct SyscallAction
{
    bool exit = false;
    std::int64_t exit_code = 0;
};

/**
 * The processor. Owns architectural state (integer registers, HI/LO,
 * PC, the CP2 capability register file); references the shared TLB
 * and cache hierarchy.
 *
 * The fetch fast path: the CPU keeps a direct-mapped cache of
 * predecoded instruction lines keyed by physical line address, plus a
 * TLB fetch hint, so the hot loop skips the per-instruction hash
 * lookups, byte reassembly, and decode. Every simulated effect of the
 * simple path (TLB stats and LRU, one L1I line access per fetch,
 * penalty cycles) is replayed exactly, so cycle counts and stats are
 * bit-identical with the fast path on or off — only host throughput
 * changes. Stores into cached lines invalidate the stale decodes via
 * the hierarchy's FetchInvalidationListener hook, so self-modifying
 * code decodes fresh bytes in both modes.
 *
 * The data fast path mirrors that design for loads and stores: a
 * direct-mapped memo keyed by virtual line fuses the TLB translation
 * (with a PTE permission snapshot) and a host pointer to the line's
 * resident L1D way, so an unsealed in-bounds access that hits the
 * memo skips checkedDataAccess and the full CacheHierarchy walk while
 * replaying every simulated effect — TLB hit stat and LRU, L1D
 * hit/LRU/latency, tag-clearing store semantics, fault injection,
 * fetch coherence, and the store observer — bit-identically. See
 * DESIGN.md §9.
 */
class Cpu : private cache::FetchInvalidationListener
{
  public:
    /**
     * Syscall upcall: invoked on SYSCALL with full access to the CPU;
     * the OS layer reads/writes registers and memory through it.
     */
    using SyscallHandler = std::function<SyscallAction(Cpu &)>;

    Cpu(cache::CacheHierarchy &memory, tlb::Tlb &tlb,
        CpuTiming timing = {}, CpuAccelConfig accel = {});
    ~Cpu() override;

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    // --- architectural state ---
    std::uint64_t gpr(unsigned index) const { return gpr_[index]; }
    void setGpr(unsigned index, std::uint64_t value);
    std::uint64_t pc() const { return pc_; }
    /** Reset the flow of control (clears any pending delay slot). */
    void setPc(std::uint64_t pc);
    cap::CapRegFile &caps() { return caps_; }
    const cap::CapRegFile &caps() const { return caps_; }
    std::uint64_t hi() const { return hi_; }
    std::uint64_t lo() const { return lo_; }

    /** Enable/disable CP2 (disabled => CHERI opcodes trap). */
    void setCp2Enabled(bool enabled) { cp2_enabled_ = enabled; }
    bool cp2Enabled() const { return cp2_enabled_; }

    void setSyscallHandler(SyscallHandler handler)
    {
        syscall_handler_ = std::move(handler);
    }

    /**
     * Per-instruction observer invoked after fetch/decode with the pc
     * and decoded instruction (tracing, debuggers, coverage). Pass an
     * empty function to disable.
     */
    using TraceHook =
        std::function<void(std::uint64_t pc, const isa::Instruction &)>;
    void setTraceHook(TraceHook hook) { trace_hook_ = std::move(hook); }

    /** Run up to max_instructions; stops early on exit/trap/break. */
    RunResult run(std::uint64_t max_instructions);

    /**
     * Run under an instruction and cycle budget; stops early on
     * exit/trap/break. Both budgets are checked between whole
     * instructions (never between a branch and its delay slot), so a
     * budgeted run retires a prefix of exactly the instructions an
     * unbudgeted run would.
     */
    RunResult run(const RunLimits &limits);

    /**
     * Toggle the fetch fast path (predecoded-instruction cache + TLB
     * fetch hint). Simulated timing and stats are identical either
     * way; disabling exists for the throughput benchmark's baseline
     * and for the timing-invariance tests.
     */
    void setDecodeCacheEnabled(bool enabled)
    {
        decode_cache_enabled_ = enabled;
    }
    bool decodeCacheEnabled() const { return decode_cache_enabled_; }

    /**
     * Drop every predecoded line. Needed after code is written below
     * the hierarchy's view (Machine::loadProgram pokes DRAM
     * directly); per-store invalidation is automatic.
     */
    void invalidateDecodeCache()
    {
        ++decode_generation_;
        // Every stamped superblock guard is now meaningless: the
        // bytes under any decode line may have changed. Bump the mint
        // counter so stamps fail, and drop the blocks themselves.
        ++decode_mint_counter_;
        invalidateSuperblocks();
    }

    /**
     * Toggle the data fast path (translation memo + L1D-hit
     * short-circuit through host line pointers). Simulated timing,
     * counters, and architectural behaviour are identical either way;
     * disabling exists for the throughput benchmark's baseline and
     * the invariance tests.
     */
    void setDataFastPathEnabled(bool enabled)
    {
        data_fastpath_enabled_ = enabled;
    }
    bool dataFastPathEnabled() const { return data_fastpath_enabled_; }

    /**
     * Drop every data-memo entry. Never required for correctness —
     * entries revalidate their TLB generation and L1D residency on
     * every use, and the memoized line pointer reads the same L1D
     * storage the slow path does — but exposed for tests and for
     * symmetry with invalidateDecodeCache.
     */
    void invalidateDataMemo()
    {
        for (DataMemoEntry &entry : data_memo_)
            entry.vline = ~0ULL;
    }

    /**
     * Toggle the superblock tier (straight-line blocks of predecoded
     * instructions executed via threaded dispatch, DESIGN.md §12).
     * Requires the decode cache: with it disabled the tier never
     * enters. Simulated timing, counters, and architectural behaviour
     * are identical either way — every per-instruction effect (TLB
     * hit + LRU, one L1I line access, cycle formulas) is replayed
     * exactly, and any guard failure falls back to the
     * per-instruction path before applying any effect.
     */
    void setSuperblocksEnabled(bool enabled)
    {
        superblocks_enabled_ = enabled;
    }
    bool superblocksEnabled() const { return superblocks_enabled_; }

    /**
     * Drop every superblock (counts them as invalidated). Like the
     * other host accelerators this is never required for correctness
     * — stale blocks fail their entry guards — but restore() uses it
     * so snapshots leave zero superblock state behind, and tests use
     * it to force re-mints.
     */
    void invalidateSuperblocks();

    /** Host-side superblock counters (not part of stats()). */
    const SuperblockStats &superblockStats() const { return sb_stats_; }

    /** Accelerator geometry this core was built with. */
    const CpuAccelConfig &accelConfig() const { return accel_; }

    /** Cycles accumulated over the CPU's lifetime. */
    std::uint64_t totalCycles() const { return cycles_; }
    /** Charge extra cycles (OS emulation of trapped instructions). */
    void chargeCycles(std::uint64_t cycles) { cycles_ += cycles; }
    /** Instructions retired over the CPU's lifetime. */
    std::uint64_t totalInstructions() const { return instructions_; }

    /** Per-opcode-class counters ("inst.alu", "inst.mem", ...). */
    const support::StatSet &stats() const { return stats_; }

    /**
     * Untimed virtual-memory access helpers for the OS layer and
     * tests. They traverse the TLB (without charging penalties) and
     * the cache hierarchy, so they stay coherent with guest accesses.
     */
    bool debugRead(std::uint64_t vaddr, unsigned size,
                   std::uint64_t &value);
    bool debugWrite(std::uint64_t vaddr, unsigned size,
                    std::uint64_t value);
    bool debugReadCap(std::uint64_t vaddr, cap::Capability &out);
    bool debugWriteCap(std::uint64_t vaddr, const cap::Capability &value);

    /**
     * Full architectural core state plus timing-visible
     * microarchitectural state (branch predictor, LL/SC monitor,
     * in-flight delay-slot/PCC-swap/trap bookkeeping) and counters,
     * captured for machine checkpointing. Host-only accelerators
     * (decode cache, fetch hint, data memo, PCC window) are *not*
     * saved — restore() invalidates them and they re-mint through
     * slow paths that replay identical simulated effects.
     */
    struct Snapshot
    {
        std::array<std::uint64_t, 32> gpr{};
        std::uint64_t hi = 0, lo = 0;
        std::uint64_t pc = 0, next_pc = 4;
        cap::CapRegFile::Snapshot caps;
        bool cp2_enabled = true;
        bool ll_valid = false;
        std::uint64_t ll_addr = 0;
        std::vector<std::uint8_t> predictor;
        std::uint64_t cycles = 0, instructions = 0;
        std::uint64_t current_pc = 0;
        bool in_delay_slot = false, branch_pending = false;
        unsigned pcc_swap_countdown = 0;
        cap::Capability pending_pcc;
        Trap pending_trap;
        bool trap_pending = false;
        support::StatSet stats;
    };

    /** Capture core state. */
    Snapshot save() const;

    /** Restore core state and invalidate every host-side memo. */
    void restore(const Snapshot &snapshot);

    /**
     * Fault injection: repoint one live data-memo entry's L1D line
     * handle at a different resident L1D line, modelling a stale host
     * memo that revalidation fails to catch. pick seeds the (wholly
     * deterministic) choice of entry and target line. Returns false
     * when no live entry or no distinct resident line exists (fault
     * inapplicable). Only observable when the data fast path is on.
     */
    bool injectMemoSkew(std::uint64_t pick);

  private:
    /** Per-opcode handler bodies (cpu.cc): shared verbatim between
     *  the interpreter switch and the superblock dispatch tables. */
    friend struct CpuExec;

    struct StepOutcome
    {
        bool trapped = false;
        bool exited = false;
        bool hit_break = false;
        std::int64_t exit_code = 0;
    };

    StepOutcome step();

    // --- fetch fast path ---

    static constexpr std::size_t kSlotsPerLine = mem::kLineBytes / 4;

    struct DecodedLine
    {
        std::uint64_t line_paddr = ~0ULL; ///< aligned; ~0 = invalid
        std::uint64_t generation = 0;
        /** Monotonic refill stamp: every decodeLine refill gets a
         *  fresh id, so a superblock can tell "same line, same
         *  generation, but refilled with different bytes" (SMC)
         *  apart from the line it was minted over. */
        std::uint64_t mint_id = 0;
        std::array<isa::Instruction, kSlotsPerLine> slots{};
    };

    /** Geometry is a constructor knob (CpuAccelConfig); the mask is
     *  cached so the per-fetch index stays one AND. */
    std::size_t decodeIndex(std::uint64_t line_paddr) const
    {
        return (line_paddr / mem::kLineBytes) & decode_index_mask_;
    }

    /**
     * Return the decoded instruction at physical address paddr,
     * refilling the predecode line on miss. Always performs exactly
     * one L1I line access (the same one fetch32 would make), so the
     * simulated cycles and stats match the simple path.
     */
    const isa::Instruction &fetchDecoded(std::uint64_t paddr,
                                         std::uint64_t &cycles);

    /** FetchInvalidationListener: a store hit a (potential) code line. */
    void onCodeLineModified(std::uint64_t line_paddr) override;

    // --- superblock tier (DESIGN.md §12) ---

    /** One chained instruction: the predecoded form plus its
     *  precomputed physical address (valid while the block's guards
     *  hold — same page translation, same decode-line mint ids). */
    struct SuperblockSlot
    {
        isa::Instruction inst;
        std::uint64_t paddr = 0;
        /** Re-check the fetch translation before this slot: set on
         *  block leaders and after any instruction that can touch the
         *  data side (only those can move the TLB's LRU or bump its
         *  generation). Pure-ALU runs skip the checks entirely. */
        bool tlb_check = true;
        /** This slot is the delay slot of a conditional branch with
         *  more block behind it: after it retires, leave the block
         *  unless pc_ is the sequential fall-through. */
        bool fallthrough_check = false;
        /** Dispatch must materialize the architectural PC state
         *  (current_pc_, in_delay_slot_, pc_, next_pc_) before this
         *  slot: anything that can trap, branch, or read the PC.
         *  Pure-ALU slots skip the writes; exits reconstruct them. */
        bool full = true;
        /** This slot sits in a delay slot (its predecessor is a
         *  branch or jump), so its PC advance must consume the live
         *  next_pc_/branch_pending_ the branch handler produced. */
        bool is_delay = false;
    };

    /** Guard record for one predecode line a block was minted over. */
    struct SuperblockLineRef
    {
        std::uint32_t index = 0;       ///< decode_cache_ slot
        std::uint64_t line_paddr = 0;
        std::uint64_t mint_id = 0;
    };

    /**
     * A superblock: a single-page trace of predecoded instructions —
     * straight-line runs, continued through not-taken conditional
     * branches (flagged delay slots exit at run time when the branch
     * was taken) and through direct jumps (J/JAL), whose targets are
     * fixed by the pinned instruction bytes and so need no run-time
     * check at all. The guard set (start pc, fetch-hint page
     * translation, per-line mint ids) pins down everything its
     * precomputed slots assumed; entry re-checks all of it and falls
     * back to the per-instruction path the moment anything moved.
     */
    struct Superblock
    {
        std::uint64_t start_vaddr = ~0ULL; ///< ~0 = invalid
        std::uint64_t vpn = 0;
        std::uint64_t paddr_base = 0; ///< page frame base at mint
        /** page_base - paddr_base (wrapping): maps a slot's paddr
         *  back to its vaddr, for the taken-branch exit compare. */
        std::uint64_t va_delta = 0;
        /** [va_lo, va_hi): vaddr hull of every slot; one PCC-window
         *  compare at entry covers each slot's per-step check (a
         *  conservative superset for traces with jumps — rejection
         *  just falls back to the per-instruction path). */
        std::uint64_t va_lo = 0;
        std::uint64_t va_hi = 0;
        std::vector<SuperblockSlot> slots;
        std::vector<SuperblockLineRef> lines;
        /** decode_mint_counter_ when the line guards last held. While
         *  it is unchanged no decode line can have been refilled,
         *  cleared, or invalidated, so re-entry skips the per-line
         *  walk (stamps are re-taken after every full check). */
        std::uint64_t stamp_mint = ~0ULL;
    };

    std::size_t superblockIndex(std::uint64_t vaddr) const
    {
        return (vaddr >> 2) & superblock_index_mask_;
    }

    /**
     * Probe/mint/execute a superblock at pc_. Returns true when a
     * block ran (outcome filled in, budgets honoured at the same
     * commit boundaries run()'s per-instruction loop uses); false
     * with zero simulated effects applied when the caller must take
     * the per-instruction path.
     */
    bool trySuperblock(const RunLimits &limits,
                       std::uint64_t start_insts,
                       std::uint64_t start_cycles, StepOutcome &outcome);

    /** Pure host-side block builder over the hot predecode lines;
     *  false (block left invalid) when pc_ is unmintable. */
    bool mintSuperblock(Superblock &sb);

    /** Pure entry-guard check for a block whose start matches pc_
     *  (may re-probe the fetch hint — host state only, no simulated
     *  effects). */
    bool superblockGuardsHold(Superblock &sb);

    /** Threaded-dispatch executor (computed goto where the build
     *  found support, function-pointer table otherwise). */
    void executeSuperblock(Superblock &sb, const RunLimits &limits,
                           std::uint64_t start_insts,
                           std::uint64_t start_cycles,
                           StepOutcome &outcome);

    // --- data fast path ---

    /** Direct-mapped data-memo geometry (covers 32 KB of data, twice
     *  the modeled L1D, so the memo is never the bottleneck). */
    static constexpr std::size_t kDataMemoLines = 1024;

    /**
     * One memoized data line: the virtual→physical translation memo
     * (a TLB hint with the PTE permission snapshot) fused with the
     * host line-pointer cache (a revalidated-on-use handle to the
     * line's resident L1D way). An entry is trusted only when its
     * virtual line matches, the TLB generation is unchanged (any TLB
     * write/flush or address-space switch bumps it), the PTE grants
     * the access kind, and the L1D way still holds the line — so
     * stale entries cost one failed compare chain and fall back to
     * the full path with no effects applied.
     */
    struct DataMemoEntry
    {
        std::uint64_t vline = ~0ULL; ///< vaddr >> cache::kLineShift
        std::uint64_t paddr_line = 0;
        tlb::Tlb::DataHint hint;
        cache::Cache::LineHandle l1d;
    };

    static std::size_t dataMemoIndex(std::uint64_t vline)
    {
        return vline & (kDataMemoLines - 1);
    }

    /**
     * Fast-path attempts for a capability-checked, naturally aligned
     * access at vaddr. On a memo hit they replay exactly the
     * simulated effects of the slow path (TLB hit stat + LRU, one
     * L1D hit with stat/LRU/latency, tag semantics, store observer,
     * fetch coherence) and return success; on any staleness they
     * apply no effects and return failure so the caller runs the
     * full path.
     */
    bool tryFastRead(std::uint64_t vaddr, unsigned size,
                     std::uint64_t &value);
    bool tryFastWrite(std::uint64_t vaddr, unsigned size,
                      std::uint64_t value);
    const mem::TaggedLine *tryFastCapRead(std::uint64_t vaddr);
    bool tryFastCapWrite(std::uint64_t vaddr,
                         const mem::TaggedLine &line);

    /** Refill the memo after a successful slow-path access. */
    void mintDataMemo(std::uint64_t vaddr, std::uint64_t paddr);

    /** Raise a guest exception for the instruction at epc. */
    void raise(ExcCode code, std::uint64_t bad_vaddr = 0);
    void raiseCap(cap::CapCause cause, std::uint8_t cap_reg,
                  std::uint64_t bad_vaddr = 0);

    /**
     * Checked data access through capability register index (or the
     * almighty-equivalent conventions for legacy ops via C0). Returns
     * false after raising the appropriate exception.
     */
    bool checkedDataAccess(unsigned cap_index, std::uint64_t offset,
                           unsigned size, bool is_store, bool is_cap,
                           std::uint64_t &paddr_out);

    void execute(const isa::Instruction &inst);
    void executeCp2(const isa::Instruction &inst);
    void executeMemory(const isa::Instruction &inst);
    void executeCapMemory(const isa::Instruction &inst);

    void branchTo(std::uint64_t target);

    /**
     * Consult/train the bimodal predictor for a conditional branch at
     * the current pc and charge the misprediction penalty when the
     * prediction disagrees with 'taken'.
     */
    void predictBranch(bool taken);

    cache::CacheHierarchy &memory_;
    tlb::Tlb &tlb_;
    CpuTiming timing_;

    std::array<std::uint64_t, 32> gpr_{};
    std::uint64_t hi_ = 0, lo_ = 0;
    std::uint64_t pc_ = 0;
    std::uint64_t next_pc_ = 4;
    cap::CapRegFile caps_;

    bool cp2_enabled_ = true;

    // LL/SC monitor (single core: address match only).
    bool ll_valid_ = false;
    std::uint64_t ll_addr_ = 0;

    /** Bimodal 2-bit branch predictor (0..3; >=2 predicts taken). */
    std::vector<std::uint8_t> predictor_;

    std::uint64_t cycles_ = 0;
    std::uint64_t instructions_ = 0;

    // Per-step bookkeeping.
    std::uint64_t current_pc_ = 0;   ///< pc of the executing instruction
    bool in_delay_slot_ = false;
    bool branch_pending_ = false;

    // CJR/CJALR swap PCC when control reaches the target (after the
    // delay slot); countdown 2 -> 1 -> apply.
    unsigned pcc_swap_countdown_ = 0;
    cap::Capability pending_pcc_;

    Trap pending_trap_;
    bool trap_pending_ = false;

    SyscallHandler syscall_handler_;
    SyscallAction syscall_action_;
    bool syscall_taken_ = false;
    TraceHook trace_hook_;

    // Fetch fast path state.
    CpuAccelConfig accel_;
    bool decode_cache_enabled_ = true;
    std::uint64_t decode_generation_ = 0;
    std::uint64_t decode_mint_counter_ = 0;
    std::size_t decode_index_mask_ = 0;
    std::vector<DecodedLine> decode_cache_;
    tlb::Tlb::FetchHint fetch_hint_;

    // Data fast path state.
    bool data_fastpath_enabled_ = true;
    std::vector<DataMemoEntry> data_memo_;

    // Superblock tier state.
    bool superblocks_enabled_ = true;
    std::size_t superblock_index_mask_ = 0;
    std::vector<Superblock> superblock_cache_;
    /** Next straight-line continuation leader: pc after a block
     *  exit, so fallthrough chains mint without waiting for a
     *  branch target. ~0 = none. */
    std::uint64_t sb_pending_leader_ = ~0ULL;
    /** Block currently dispatching (onCodeLineModified scans its
     *  lines so an in-block store to its own code aborts it). */
    const Superblock *sb_active_ = nullptr;
    bool sb_smc_abort_ = false;
    SuperblockStats sb_stats_;
    /** L1I hit latency minus the base cycle, hoisted from the
     *  hierarchy config at construction: the stall a deferred
     *  repeat fetch charges per slot. */
    std::uint64_t sb_hit_stall_ = 0;

    // Cached PCC fetch window, refreshed when CapRegFile::pccVersion
    // moves (once per jump/domain crossing, not once per step). The
    // per-step bounds check then collapses to two compares; the slow
    // cap::checkFetch runs only to name the precise cause on failure.
    std::uint64_t pcc_version_seen_ = ~0ULL;
    bool pcc_fetch_ok_ = false;
    std::uint64_t pcc_fetch_base_ = 0;
    std::uint64_t pcc_fetch_top_ = 0;

    support::StatSet stats_;
    // Pre-resolved per-class instruction counters (see
    // StatSet::counter); the hot loop bumps one of these per retired
    // instruction instead of doing a map lookup.
    std::uint64_t *stat_alu_ = nullptr;
    std::uint64_t *stat_muldiv_ = nullptr;
    std::uint64_t *stat_branch_ = nullptr;
    std::uint64_t *stat_syscall_ = nullptr;
    std::uint64_t *stat_break_ = nullptr;
    std::uint64_t *stat_mem_ = nullptr;
    std::uint64_t *stat_capmem_ = nullptr;
    std::uint64_t *stat_cp2_ = nullptr;
    std::uint64_t *stat_mispredicts_ = nullptr;
};

} // namespace cheri::core

#endif // CHERI_CORE_CPU_H
