#include "trace/trace.h"

#include <unordered_set>

namespace cheri::trace
{

BaselineStats
baselineStats(const Trace &trace)
{
    constexpr std::uint64_t kPage = 4096;
    BaselineStats stats;
    std::unordered_set<std::uint64_t> pages;

    for (const Event &event : trace.events()) {
        switch (event.kind) {
          case EventKind::kLoad:
          case EventKind::kLoadPtr:
          case EventKind::kStore:
          case EventKind::kStorePtr:
            ++stats.instructions;
            ++stats.memory_refs;
            stats.memory_bytes += event.size;
            pages.insert(event.addr / kPage);
            if (event.kind == EventKind::kLoadPtr)
                ++stats.pointer_loads;
            if (event.kind == EventKind::kStorePtr)
                ++stats.pointer_stores;
            break;
          case EventKind::kMalloc:
            ++stats.mallocs;
            stats.heap_bytes += event.size;
            pages.insert(event.addr / kPage);
            break;
          case EventKind::kFree:
            ++stats.frees;
            break;
          case EventKind::kInstrBlock:
            stats.instructions += event.size;
            break;
        }
    }
    stats.pages_touched = pages.size();
    return stats;
}

} // namespace cheri::trace
