/**
 * @file
 * Aggregate trace profile: everything the Section 7 protection models
 * need from a workload trace, computed once and shared by all eight
 * model evaluations.
 */

#ifndef CHERI_TRACE_PROFILE_H
#define CHERI_TRACE_PROFILE_H

#include <cstdint>

#include "trace/trace.h"

namespace cheri::trace
{

/** Derived quantities of one traced execution. */
struct TraceProfile
{
    BaselineStats base;

    /** Loads + stores: every access is a potential dereference. */
    std::uint64_t derefs = 0;
    /** Pointer loads + pointer stores. */
    std::uint64_t ptr_refs = 0;
    /** Distinct memory locations that ever held a pointer. */
    std::uint64_t ptr_locations = 0;
    /** Distinct 4 KB pages containing pointer locations. */
    std::uint64_t ptr_pages = 0;
    /**
     * Pointer references whose target object is Hardbound-compressible
     * (length <= 1024 bytes and 4-byte-word-aligned, Section 7).
     */
    std::uint64_t compressible_ptr_refs = 0;
    /** Extra bytes M-Machine power-of-two padding adds to the heap. */
    std::uint64_t pow2_padding_bytes = 0;
    /** Baseline footprint in bytes (pages touched x 4 KB). */
    std::uint64_t footprint_bytes = 0;
};

/** Analyze a trace into the shared profile. */
TraceProfile profileTrace(const Trace &trace);

} // namespace cheri::trace

#endif // CHERI_TRACE_PROFILE_H
