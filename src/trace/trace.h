/**
 * @file
 * Execution traces for the limit study (Section 7). The paper records
 * complete instruction traces of the Olden benchmarks on hardware and
 * extracts the events relevant to bounds checking: memory-management
 * calls (malloc/free) and all loads and stores, with their pointer
 * classification. This module is the in-memory equivalent: workloads
 * emit events while running against the baseline machine, and each
 * protection model consumes the trace to compute its overheads.
 */

#ifndef CHERI_TRACE_TRACE_H
#define CHERI_TRACE_TRACE_H

#include <cstdint>
#include <vector>

namespace cheri::trace
{

/** Kind of a trace event. */
enum class EventKind : std::uint8_t
{
    kLoad,       ///< data load (non-pointer)
    kStore,      ///< data store (non-pointer)
    kLoadPtr,    ///< load of a pointer value
    kStorePtr,   ///< store of a pointer value
    kMalloc,     ///< heap allocation
    kFree,       ///< heap free
    kInstrBlock, ///< 'count' non-memory instructions executed
};

/** One event. Meaning of fields depends on kind. */
struct Event
{
    EventKind kind;
    /** Virtual address (load/store) or block address (malloc/free). */
    std::uint64_t addr = 0;
    /** Access size, allocation size, or instruction count. */
    std::uint64_t size = 0;
    /**
     * For kLoadPtr/kStorePtr: size of the object the pointer value
     * refers to (0 when unknown, e.g. globals); lets the Hardbound
     * model decide pointer compressibility (length <= 1024 bytes,
     * word-aligned, Section 7).
     */
    std::uint64_t target_size = 0;
};

/** A recorded workload execution. */
class Trace
{
  public:
    void
    load(std::uint64_t addr, std::uint64_t size)
    {
        events_.push_back({EventKind::kLoad, addr, size, 0});
    }

    void
    store(std::uint64_t addr, std::uint64_t size)
    {
        events_.push_back({EventKind::kStore, addr, size, 0});
    }

    void
    loadPtr(std::uint64_t addr, std::uint64_t size,
            std::uint64_t target_size)
    {
        events_.push_back({EventKind::kLoadPtr, addr, size, target_size});
    }

    void
    storePtr(std::uint64_t addr, std::uint64_t size,
             std::uint64_t target_size)
    {
        events_.push_back(
            {EventKind::kStorePtr, addr, size, target_size});
    }

    void
    malloc(std::uint64_t addr, std::uint64_t size)
    {
        events_.push_back({EventKind::kMalloc, addr, size, 0});
    }

    void
    free(std::uint64_t addr)
    {
        events_.push_back({EventKind::kFree, addr, 0, 0});
    }

    /** Record 'count' non-memory instructions. */
    void
    instructions(std::uint64_t count)
    {
        if (!events_.empty() &&
            events_.back().kind == EventKind::kInstrBlock) {
            events_.back().size += count;
        } else {
            events_.push_back({EventKind::kInstrBlock, 0, count, 0});
        }
    }

    const std::vector<Event> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

  private:
    std::vector<Event> events_;
};

/** Baseline (unprotected 64-bit MIPS) aggregate figures of a trace. */
struct BaselineStats
{
    std::uint64_t instructions = 0;   ///< total baseline instructions
    std::uint64_t memory_refs = 0;    ///< loads + stores
    std::uint64_t memory_bytes = 0;   ///< bytes moved by loads/stores
    std::uint64_t pointer_loads = 0;
    std::uint64_t pointer_stores = 0;
    std::uint64_t mallocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t pages_touched = 0;  ///< distinct 4 KB pages referenced
    std::uint64_t heap_bytes = 0;     ///< total bytes allocated
};

/** Compute baseline statistics for a trace. */
BaselineStats baselineStats(const Trace &trace);

} // namespace cheri::trace

#endif // CHERI_TRACE_TRACE_H
