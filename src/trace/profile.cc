#include "trace/profile.h"

#include <unordered_set>

#include "support/bits.h"

namespace cheri::trace
{

TraceProfile
profileTrace(const Trace &trace)
{
    constexpr std::uint64_t kPage = 4096;
    TraceProfile profile;
    profile.base = baselineStats(trace);

    std::unordered_set<std::uint64_t> ptr_locations;
    std::unordered_set<std::uint64_t> ptr_pages;

    for (const Event &event : trace.events()) {
        switch (event.kind) {
          case EventKind::kLoad:
          case EventKind::kStore:
            ++profile.derefs;
            break;
          case EventKind::kLoadPtr:
          case EventKind::kStorePtr: {
            ++profile.derefs;
            ++profile.ptr_refs;
            ptr_locations.insert(event.addr);
            ptr_pages.insert(event.addr / kPage);
            // Null/unknown-target pointers carry no bounds in
            // Hardbound (no table entry is ever written for them), so
            // they are as cheap as compressed pointers; real
            // compression needs length <= 1024 and word alignment.
            bool compressible = event.target_size == 0 ||
                                (event.target_size <= 1024 &&
                                 event.target_size % 4 == 0);
            if (compressible)
                ++profile.compressible_ptr_refs;
            break;
          }
          case EventKind::kMalloc: {
            // M-Machine segments are power-of-two sized AND aligned
            // (Section 6.5), so each allocation pays both the size
            // padding and an expected alignment hole of a quarter
            // segment when sizes mix — the reason the M-Machine
            // "performs poorly by the page metric" (Section 7).
            std::uint64_t segment = support::nextPowerOfTwo(event.size);
            profile.pow2_padding_bytes +=
                (segment - event.size) + segment / 4;
            break;
          }
          case EventKind::kFree:
          case EventKind::kInstrBlock:
            break;
        }
    }

    profile.ptr_locations = ptr_locations.size();
    profile.ptr_pages = ptr_pages.size();
    profile.footprint_bytes = profile.base.pages_touched * kPage;
    return profile;
}

} // namespace cheri::trace
