/**
 * @file
 * Hardware prefetchers for the cache hierarchy. The paper concedes
 * that its worst overhead case — linear traversals of large
 * capability-bearing objects — "would be alleviated with cache
 * prefetching" (Section 8); this subsystem adds that machinery, plus
 * the CHERI-specific variant the tagged memory interface makes
 * possible: a line whose capability tag is set *announces that it
 * holds a capability*, so a prefetcher can decode the base/length it
 * carries on fill and chase the pointer graph ahead of the demand
 * stream.
 *
 * Prefetchers are pure candidate generators: they observe a demand
 * fill (the line address plus the 257-bit line content) and propose
 * physical line addresses to fill next. All state mutation — victim
 * choice, writebacks, counters — happens in Cache::prefetchFill, so
 * prefetched lines ride exactly the same eviction and coherence
 * machinery as demand fills. Decisions depend only on the simulated
 * miss stream (identical across the host's baseline / fast-path /
 * superblock execution modes), never on host state.
 */

#ifndef CHERI_CACHE_PREFETCH_H
#define CHERI_CACHE_PREFETCH_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/tag_manager.h"

namespace cheri::cache
{

/** Which prefetcher (if any) the hierarchy attaches. */
enum class PrefetchPolicy
{
    kNone,     ///< demand-only (the paper's configuration; default)
    kNextLine, ///< physically sequential next-N-lines baseline
    kCapChase, ///< capability pointer-chase on tagged fills
};

/** Stable CLI/JSON name of a policy. */
const char *prefetchPolicyName(PrefetchPolicy policy);

/** Parse a policy name ("none" | "nextline" | "capchase"). */
bool parsePrefetchPolicy(const char *text, PrefetchPolicy &out);

/** Prefetcher configuration carried on HierarchyConfig. */
struct PrefetchConfig
{
    PrefetchPolicy policy = PrefetchPolicy::kNone;
    /** Max prefetch fills issued per demand-fill trigger. */
    unsigned degree = 2;
    /** Attach points. The L1I is deliberately not an attach point:
     *  fetchLine hands out pointers into L1I way storage that must
     *  survive until the caller consumed them, and instruction lines
     *  never carry tags anyway. */
    bool attach_l1d = true;
    bool attach_l2 = true;
};

/**
 * Side-effect-free virtual-to-physical probe the pointer-chase
 * prefetcher translates through (Tlb::probePrefetch behind a
 * std::function so the cache layer stays independent of the TLB).
 * Returns false on any miss or permission problem — a prefetch is a
 * hint, never a fault. An empty function means "no translation
 * available" and disables pointer chasing.
 */
using PrefetchTranslator =
    std::function<bool(std::uint64_t vaddr, std::uint64_t &paddr)>;

/**
 * Candidate generator interface. Implementations must be stateless
 * across calls (beyond construction-time config): machine forks and
 * snapshot restores do not notify the prefetcher, so any per-call
 * state would break replay determinism.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * A demand miss filled line_paddr with the given content; append
     * physical line addresses worth prefetching to out. Proposals may
     * exceed the configured degree — the hierarchy cuts the budget —
     * and need not be bounds-checked against DRAM (the hierarchy
     * drops candidates past the physical limit).
     */
    virtual void proposeAfterFill(std::uint64_t line_paddr,
                                  const mem::TaggedLine &line,
                                  const PrefetchTranslator &translate,
                                  std::vector<std::uint64_t> &out) const = 0;

    /**
     * True when prefetched lines should themselves be fed back into
     * proposeAfterFill (pointer chasing through freshly prefetched
     * capabilities, still under the per-trigger degree budget).
     */
    virtual bool chasesPointers() const = 0;
};

/**
 * Baseline: propose the next `degree` physically sequential lines
 * after the filled one. Needs no translation (physical locality) and
 * is tag-oblivious — the control both the sweep and the lockstep
 * tests compare capchase against.
 */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned degree) : degree_(degree) {}

    void proposeAfterFill(std::uint64_t line_paddr,
                          const mem::TaggedLine &line,
                          const PrefetchTranslator &translate,
                          std::vector<std::uint64_t> &out) const override;
    bool chasesPointers() const override { return false; }

  private:
    unsigned degree_;
};

/**
 * Capability pointer-chase: when the filled line's tag is set, the
 * line is a 256-bit capability (Figure 1 layout: word 2 = base,
 * word 3 = length). Decode the pointee region, translate each of its
 * first lines through the side-effect-free probe, and propose them.
 * Untagged fills propose nothing, so the prefetcher is exactly as
 * aggressive as the program's live pointer graph.
 */
class CapChasePrefetcher : public Prefetcher
{
  public:
    explicit CapChasePrefetcher(unsigned degree) : degree_(degree) {}

    void proposeAfterFill(std::uint64_t line_paddr,
                          const mem::TaggedLine &line,
                          const PrefetchTranslator &translate,
                          std::vector<std::uint64_t> &out) const override;
    bool chasesPointers() const override { return true; }

  private:
    unsigned degree_;
};

/** Build the configured prefetcher; nullptr for kNone. */
std::unique_ptr<Prefetcher> makePrefetcher(const PrefetchConfig &config);

} // namespace cheri::cache

#endif // CHERI_CACHE_PREFETCH_H
