/**
 * @file
 * Write-back set-associative cache carrying the 257-bit tagged lines
 * of the CHERI memory interface (Section 4.2): every cached 32-byte
 * line travels with its capability tag, so tags accompany data through
 * the hierarchy and reach the CPU without extra table lookups.
 */

#ifndef CHERI_CACHE_CACHE_H
#define CHERI_CACHE_CACHE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/tag_manager.h"
#include "support/stats.h"

namespace cheri::cache
{

/**
 * Result of a line read from some level: a view of the line plus its
 * cost. The pointer refers into the source's storage and stays valid
 * only until the next operation on that source (or anything below
 * it); callers needing the data past that point must copy. Returning
 * a reference instead of a 32-byte struct keeps the interpreter's
 * fetch/load hot path free of per-access line copies.
 */
struct LineAccess
{
    const mem::TaggedLine *line = nullptr;
    std::uint64_t cycles = 0;
};

/**
 * Anything that can source and sink tagged lines: a lower cache level
 * or the DRAM/tag-manager endpoint.
 */
class LineSource
{
  public:
    virtual ~LineSource() = default;

    /** Read the aligned 32-byte line containing paddr. */
    virtual LineAccess readLine(std::uint64_t paddr) = 0;

    /** Write an aligned 32-byte line; returns the cycle cost. */
    virtual std::uint64_t writeLine(std::uint64_t paddr,
                                    const mem::TaggedLine &line) = 0;
};

/** log2(kLineBytes), for shift-based line indexing. */
inline constexpr unsigned kLineShift = 5;
static_assert((1ULL << kLineShift) == mem::kLineBytes);

class Cache;

/**
 * Notified when a *demand* read/RMW miss fills a line into a cache —
 * the prefetcher trigger point. Deliberately not fired for writeLine
 * fills (writebacks from above, coherence pushes, and full-line
 * capability stores allocate without wanting the old data) nor for
 * prefetch fills themselves. The listener must not recurse into the
 * cache synchronously; the hierarchy queues the trigger and issues
 * prefetches after the demand access completes (off the critical
 * path, which is also why prefetch fills charge no cycles).
 */
class FillListener
{
  public:
    virtual ~FillListener() = default;

    /** line_paddr is 32-byte aligned; line is the content as filled. */
    virtual void onDemandFill(Cache &cache, std::uint64_t line_paddr,
                              const mem::TaggedLine &line) = 0;
};

/**
 * DRAM timing parameters: a simple open-row model, calibrated to the
 * paper's 100 MHz FPGA core, where DDR2 is only on the order of ten
 * CPU cycles away — the reason capability-size overheads stay modest
 * even for miss-dominated traversals (Section 8).
 */
struct DramTiming
{
    /** Cycles for an access that opens a new row. */
    std::uint64_t row_miss_latency = 12;
    /** Cycles for an access falling in the currently open row —
     *  models row-buffer hits and burst locality, which is why
     *  adjacent lines of a large capability-bearing object do not
     *  each pay a full DRAM access (Section 8's observation that the
     *  linear case "would be alleviated with cache prefetching"). */
    std::uint64_t row_hit_latency = 3;
    /** Row size in bytes. */
    std::uint64_t row_bytes = 2048;
};

/** DRAM endpoint: TagManager access behind an open-row timing model. */
class DramSource : public LineSource
{
  public:
    DramSource(mem::TagManager &manager, DramTiming timing = {})
        : manager_(manager), timing_(timing)
    {
    }

    LineAccess readLine(std::uint64_t paddr) override;
    std::uint64_t writeLine(std::uint64_t paddr,
                            const mem::TaggedLine &line) override;

    /** Total line transactions (reads + writes), for traffic stats. */
    std::uint64_t transactions() const { return transactions_; }

    /** Transaction count + open-row state, for machine checkpointing. */
    struct Snapshot
    {
        std::uint64_t transactions = 0;
        std::uint64_t open_row = ~0ULL;
    };

    /** Capture transaction count and open-row state. */
    Snapshot save() const { return Snapshot{transactions_, open_row_}; }

    /** Restore transaction count and open-row state. */
    void
    restore(const Snapshot &snapshot)
    {
        transactions_ = snapshot.transactions;
        open_row_ = snapshot.open_row;
    }

  private:
    std::uint64_t accessLatency(std::uint64_t paddr);

    mem::TagManager &manager_;
    DramTiming timing_;
    std::uint64_t transactions_ = 0;
    std::uint64_t open_row_ = ~0ULL;
    /** Staging buffer backing the LineAccess view of the last read. */
    mem::TaggedLine read_buffer_;
};

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 16 * 1024;
    unsigned ways = 4;
    std::uint64_t hit_latency = 1;
};

/**
 * One cache level. Indexed by physical address; LRU within a set;
 * allocate-on-miss for both reads and writes; write-back.
 *
 * Stats (prefixed by config.name): ".hits", ".misses",
 * ".writebacks".
 */
class Cache : public LineSource
{
  private:
    struct Way;

  public:
    Cache(CacheConfig config, LineSource &below);

    LineAccess readLine(std::uint64_t paddr) override;
    std::uint64_t writeLine(std::uint64_t paddr,
                            const mem::TaggedLine &line) override;

    /**
     * Caller-held, revalidated-on-use pointer to a resident line — the
     * host line-pointer cache handed to the CPU's data fast path. A
     * handle names "the way that held line_key when probeHandle minted
     * it"; every use re-checks valid + addr_tag on that way, which any
     * eviction, invalidation, or flush falsifies, and (way, addr_tag)
     * uniquely identifies one physical line (the way pins the set).
     * Ways live in a vector sized once at construction, so the pointer
     * itself never dangles. Default-constructed handles never
     * validate.
     */
    struct LineHandle
    {
        Way *way = nullptr;
        std::uint64_t addr_tag = ~0ULL;
    };

    /**
     * Mint a handle for the line containing paddr if it is resident.
     * Pure host-side probe (no stats, LRU, or cycles) — call it after
     * an access that already counted its simulated effects.
     */
    bool probeHandle(std::uint64_t paddr, LineHandle &out)
    {
        Way *way = probeWay(paddr);
        if (way == nullptr)
            return false;
        out.way = way;
        out.addr_tag = addrTag(paddr);
        return true;
    }

    /** True while the handle still names its resident line. */
    bool
    handleValid(const LineHandle &handle) const
    {
        return handle.way != nullptr && handle.way->valid &&
               handle.way->addr_tag == handle.addr_tag;
    }

    /**
     * Handle-validated read hit: if the handle still names its line,
     * replay exactly the hit effects readLine would produce for it
     * (hit stat, LRU bump, hit latency) and return the line; else
     * nullptr and no effects. The line is resident, so the slow path
     * would have hit — the replay is identical by construction.
     */
    const mem::TaggedLine *
    readHitFast(const LineHandle &handle, std::uint64_t &cycles)
    {
        if (!handleValid(handle))
            return nullptr;
        ++*hits_;
        handle.way->lru = ++lru_clock_;
        cycles += config_.hit_latency;
        noteDemandTouch(*handle.way);
        return &handle.way->line;
    }

    /**
     * Settle n deferred repeat hits on the handle's line at once:
     * equivalent to n consecutive readHitFast calls, provided no
     * other access to this cache interleaved them (the superblock
     * tier guarantees that for the L1I — only fetches touch it, and
     * the deferral window covers one line's straight-line run). The
     * way may since have been invalidated by a store to its line; the
     * final LRU stamp still matches what the last replayed hit wrote
     * before the invalidation, and nothing reads an invalid way's
     * LRU before its next fill.
     */
    void
    applyDeferredHits(const LineHandle &handle, std::uint64_t n)
    {
        if (n == 0)
            return;
        *hits_ += n;
        lru_clock_ += n;
        handle.way->lru = lru_clock_;
    }

    /** Hit latency in cycles (the deferred-replay per-slot stall). */
    std::uint64_t hitLatency() const { return config_.hit_latency; }

    /**
     * Handle-validated store hit: replays both halves of
     * storeAccess's read-modify-write (two hit stats, two LRU bumps,
     * twice the hit latency, dirty) and returns the line for in-place
     * modification; nullptr and no effects when the handle is stale.
     */
    mem::TaggedLine *
    storeHitFast(const LineHandle &handle, std::uint64_t &cycles)
    {
        if (!handleValid(handle))
            return nullptr;
        *hits_ += 2; // read half + guaranteed-hit write half
        lru_clock_ += 2;
        handle.way->lru = lru_clock_;
        cycles += 2 * config_.hit_latency;
        handle.way->dirty = true;
        noteDemandTouch(*handle.way);
        return &handle.way->line;
    }

    /**
     * Handle-validated full-line write hit: replays exactly what
     * writeLine does when it hits (one hit stat, one LRU bump, one
     * hit latency, dirty) and installs the line; false and no effects
     * when the handle is stale.
     */
    bool
    writeLineHitFast(const LineHandle &handle, const mem::TaggedLine &line,
                     std::uint64_t &cycles)
    {
        if (!handleValid(handle))
            return false;
        ++*hits_;
        handle.way->lru = ++lru_clock_;
        cycles += config_.hit_latency;
        handle.way->line = line;
        handle.way->dirty = true;
        noteDemandTouch(*handle.way);
        return true;
    }

    /**
     * Header-inline entry to readLine for the interpreter hot path: a
     * repeat access to a recently memoized line replays the hit
     * effects (hit stat, LRU bump, hit latency) right here, without
     * the cross-TU call into findOrFill; anything else falls through
     * to readLine. Simulated behaviour is identical by construction —
     * this is the same memo findOrFill itself checks first.
     */
    LineAccess
    readLineFast(std::uint64_t paddr)
    {
        std::uint64_t line_key = paddr >> kLineShift;
        const Memo &memo = memo_[line_key & (memo_.size() - 1)];
        if (memo.line_key == line_key && memo.way->valid &&
            memo.way->addr_tag == (line_key >> set_shift_)) {
            ++*hits_;
            memo.way->lru = ++lru_clock_;
            noteDemandTouch(*memo.way);
            return {&memo.way->line, config_.hit_latency};
        }
        return readLine(paddr);
    }

    /**
     * readLineFast that also mints a LineHandle for the accessed
     * line, without a second set scan: every findOrFill path (memo
     * hit, set-scan hit, fill) leaves the memo naming the accessed
     * line's way, so the handle comes straight from the memo. The
     * handle always validates on return — the line is resident by
     * construction.
     */
    LineAccess
    readLineFastHandle(std::uint64_t paddr, LineHandle &out)
    {
        std::uint64_t line_key = paddr >> kLineShift;
        std::uint64_t tag = line_key >> set_shift_;
        const Memo &memo = memo_[line_key & (memo_.size() - 1)];
        if (memo.line_key == line_key && memo.way->valid &&
            memo.way->addr_tag == tag) {
            ++*hits_;
            memo.way->lru = ++lru_clock_;
            noteDemandTouch(*memo.way);
            out.way = memo.way;
            out.addr_tag = tag;
            return {&memo.way->line, config_.hit_latency};
        }
        LineAccess access = readLine(paddr);
        const Memo &filled = memo_[line_key & (memo_.size() - 1)];
        out.way = filled.way;
        out.addr_tag = tag;
        return access;
    }

    /** Header-inline entry to storeAccess, same contract as
     *  readLineFast: the memo-hit case replays both halves of the
     *  read-modify-write here, everything else falls through. */
    mem::TaggedLine &
    storeAccessFast(std::uint64_t paddr, std::uint64_t &cycles)
    {
        std::uint64_t line_key = paddr >> kLineShift;
        const Memo &memo = memo_[line_key & (memo_.size() - 1)];
        if (memo.line_key == line_key && memo.way->valid &&
            memo.way->addr_tag == (line_key >> set_shift_)) {
            *hits_ += 2; // read half + guaranteed-hit write half
            lru_clock_ += 2;
            memo.way->lru = lru_clock_;
            cycles += 2 * config_.hit_latency;
            memo.way->dirty = true;
            noteDemandTouch(*memo.way);
            return memo.way->line;
        }
        return storeAccess(paddr, cycles);
    }

    /**
     * Combined sub-line store access: equivalent to readLine(paddr)
     * followed by writeLine(paddr, modified) — the second access is a
     * guaranteed hit on the just-touched line, so its stat bump, LRU
     * update, and hit latency are applied directly. Returns the line
     * for in-place modification (caller must not grow the access past
     * the line); the line is marked dirty. Saves the second set scan
     * and two 32-byte copies on every store.
     */
    mem::TaggedLine &storeAccess(std::uint64_t paddr,
                                 std::uint64_t &cycles);

    /** Write back every dirty line and invalidate (context purge). */
    void flush();

    // --- prefetch support (see cache/prefetch.h and DESIGN.md §14) ---

    /**
     * Register the (single) listener told about demand fills; nullptr
     * detaches. Fired only from the readLine/storeAccess miss paths —
     * never for writeLine allocations or prefetch fills.
     */
    void setFillListener(FillListener *listener)
    {
        fill_listener_ = listener;
    }

    /**
     * Mint the prefetch counters (".prefetch_issued" / "_useful" /
     * "_late" / "_inaccurate"). Deliberately lazy: a hierarchy with
     * prefetching off never mints them, so collectStats output — and
     * every byte of downstream JSON — is unchanged from the seed.
     */
    void armPrefetch();

    /**
     * Fill paddr's line speculatively: same victim choice, dirty
     * writeback, and below-level traffic as a demand miss, but no
     * hit/miss accounting and no cycle cost (prefetches run off the
     * critical path; their latency is modeled as hidden). If the line
     * is already resident this counts ".prefetch_late" and does
     * nothing else. Returns the filled line (for pointer chasing) or
     * nullptr when resident. The findOrFill memo is deliberately not
     * updated — it must keep naming the last *demand* access. Only
     * call after armPrefetch().
     */
    const mem::TaggedLine *prefetchFill(std::uint64_t paddr);

    // --- coherence probes (no stats, no LRU effect, no cycles) ---
    // Used by the hierarchy to keep instruction fetch coherent with
    // stores; they model snoop machinery, not timed accesses.

    /** True when the line containing paddr is resident. */
    bool contains(std::uint64_t paddr) const;

    /** The resident line iff it is dirty, else nullptr. */
    const mem::TaggedLine *peekDirtyLine(std::uint64_t paddr) const;

    /** Drop the line containing paddr, writing it back first if dirty. */
    void invalidateLine(std::uint64_t paddr);

    const support::StatSet &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    const CacheConfig &config() const { return config_; }

    // --- fault-injection introspection (host-side; no stats, no LRU
    // effect, no cycles) ---

    /**
     * Physical line addresses of every resident line, in way-index
     * order — a deterministic enumeration for fault-candidate
     * selection.
     */
    std::vector<std::uint64_t> residentLines() const;

    /** Resident lines whose capability tag is currently set. */
    std::vector<std::uint64_t> residentTaggedLines() const;

    /**
     * Clear the capability tag on the resident copy of paddr's line
     * (fault injection). Returns false when the line is not resident.
     */
    bool clearTagIfResident(std::uint64_t paddr);

    /**
     * Full cache state (every way, the LRU clock, statistics),
     * captured for machine checkpointing.
     */
    struct Snapshot
    {
        std::vector<Way> ways;
        std::uint64_t lru_clock = 0;
        support::StatSet stats;
    };

    /** Capture full cache state. */
    Snapshot save() const { return Snapshot{ways_, lru_clock_, stats_}; }

    /**
     * Restore full cache state; the geometry must match. The findOrFill
     * memo is cleared — memo hits replay identical simulated effects,
     * so this cannot perturb counters, it only drops stale way links.
     */
    void restore(const Snapshot &snapshot);

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        /** Filled by prefetchFill and not yet demand-touched. Cleared
         *  (counting ".prefetch_useful") by the first demand hit —
         *  every hit path, including the handle/memo replays, runs
         *  noteDemandTouch so the counter is host-mode invariant. */
        bool prefetched = false;
        std::uint64_t addr_tag = 0;
        std::uint64_t lru = 0; ///< larger = more recently used
        mem::TaggedLine line;
    };

    /**
     * First demand touch of a prefetched line: the prefetch proved
     * useful. Behind the way's own flag so the default-off hot path
     * pays one never-taken branch; the counter null check guards the
     * (unreachable by construction) unarmed case.
     */
    void noteDemandTouch(Way &way)
    {
        if (way.prefetched) {
            way.prefetched = false;
            if (prefetch_useful_ != nullptr)
                ++*prefetch_useful_;
        }
    }

    /**
     * Locate (and on miss, fill) the way holding paddr's line. A fill
     * notifies the FillListener only when demand_fill is set (the
     * readLine/storeAccess entries; writeLine allocations pass false).
     */
    Way &findOrFill(std::uint64_t paddr, std::uint64_t &cycles,
                    bool demand_fill);

    /** Host-side probe for the resident way of paddr's line, if any. */
    Way *probeWay(std::uint64_t paddr)
    {
        Way *set = &ways_[setIndex(paddr) * config_.ways];
        std::uint64_t tag = addrTag(paddr);
        for (unsigned w = 0; w < config_.ways; ++w)
            if (set[w].valid && set[w].addr_tag == tag)
                return &set[w];
        return nullptr;
    }

    // Set count is a power of two, so indexing is shift/mask — no
    // per-access division on the hot path.
    std::uint64_t setIndex(std::uint64_t paddr) const
    {
        return (paddr >> kLineShift) & set_mask_;
    }
    std::uint64_t addrTag(std::uint64_t paddr) const
    {
        return (paddr >> kLineShift) >> set_shift_;
    }

    CacheConfig config_;
    LineSource &below_;
    std::uint64_t num_sets_;
    std::uint64_t set_mask_ = 0;
    unsigned set_shift_ = 0;
    /** All ways, flattened: set s occupies [s*ways, (s+1)*ways). */
    std::vector<Way> ways_;
    std::uint64_t lru_clock_ = 0;
    /**
     * Direct-mapped memo of recently touched lines (indexed by line
     * number): repeat accesses replay the hit effects (hit stat, LRU
     * bump, hit latency) without rescanning the set. Multi-entry so
     * workloads alternating between a handful of lines (tree node +
     * stack, two arrays) keep hitting it. Sound because an entry is
     * only trusted after re-checking valid + addr_tag on the
     * remembered way, which any eviction, invalidation, or flush
     * falsifies; way pointers themselves never dangle (ways_ is sized
     * once at construction).
     */
    struct Memo
    {
        std::uint64_t line_key = ~0ULL; ///< paddr >> kLineShift
        Way *way = nullptr;
    };
    std::array<Memo, 64> memo_{};
    support::StatSet stats_;
    // Pre-resolved counter slots; bumping these avoids a string
    // concatenation plus map lookup on every access (see
    // StatSet::counter for the lifetime guarantee).
    std::uint64_t *hits_ = nullptr;
    std::uint64_t *misses_ = nullptr;
    std::uint64_t *writebacks_ = nullptr;
    // Prefetch counters; nullptr until armPrefetch() mints them (lazy
    // so a prefetch-off hierarchy's stat set is byte-identical to the
    // seed's). way.prefetched implies armed, so the hit paths only
    // dereference them when they exist.
    std::uint64_t *prefetch_issued_ = nullptr;
    std::uint64_t *prefetch_useful_ = nullptr;
    std::uint64_t *prefetch_late_ = nullptr;
    std::uint64_t *prefetch_inaccurate_ = nullptr;
    FillListener *fill_listener_ = nullptr;
};

} // namespace cheri::cache

#endif // CHERI_CACHE_CACHE_H
