/**
 * @file
 * Write-back set-associative cache carrying the 257-bit tagged lines
 * of the CHERI memory interface (Section 4.2): every cached 32-byte
 * line travels with its capability tag, so tags accompany data through
 * the hierarchy and reach the CPU without extra table lookups.
 */

#ifndef CHERI_CACHE_CACHE_H
#define CHERI_CACHE_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "mem/tag_manager.h"
#include "support/stats.h"

namespace cheri::cache
{

/** Result of a line read from some level: the line plus its cost. */
struct LineAccess
{
    mem::TaggedLine line;
    std::uint64_t cycles = 0;
};

/**
 * Anything that can source and sink tagged lines: a lower cache level
 * or the DRAM/tag-manager endpoint.
 */
class LineSource
{
  public:
    virtual ~LineSource() = default;

    /** Read the aligned 32-byte line containing paddr. */
    virtual LineAccess readLine(std::uint64_t paddr) = 0;

    /** Write an aligned 32-byte line; returns the cycle cost. */
    virtual std::uint64_t writeLine(std::uint64_t paddr,
                                    const mem::TaggedLine &line) = 0;
};

/**
 * DRAM timing parameters: a simple open-row model, calibrated to the
 * paper's 100 MHz FPGA core, where DDR2 is only on the order of ten
 * CPU cycles away — the reason capability-size overheads stay modest
 * even for miss-dominated traversals (Section 8).
 */
struct DramTiming
{
    /** Cycles for an access that opens a new row. */
    std::uint64_t row_miss_latency = 12;
    /** Cycles for an access falling in the currently open row —
     *  models row-buffer hits and burst locality, which is why
     *  adjacent lines of a large capability-bearing object do not
     *  each pay a full DRAM access (Section 8's observation that the
     *  linear case "would be alleviated with cache prefetching"). */
    std::uint64_t row_hit_latency = 3;
    /** Row size in bytes. */
    std::uint64_t row_bytes = 2048;
};

/** DRAM endpoint: TagManager access behind an open-row timing model. */
class DramSource : public LineSource
{
  public:
    DramSource(mem::TagManager &manager, DramTiming timing = {})
        : manager_(manager), timing_(timing)
    {
    }

    LineAccess readLine(std::uint64_t paddr) override;
    std::uint64_t writeLine(std::uint64_t paddr,
                            const mem::TaggedLine &line) override;

    /** Total line transactions (reads + writes), for traffic stats. */
    std::uint64_t transactions() const { return transactions_; }

  private:
    std::uint64_t accessLatency(std::uint64_t paddr);

    mem::TagManager &manager_;
    DramTiming timing_;
    std::uint64_t transactions_ = 0;
    std::uint64_t open_row_ = ~0ULL;
};

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 16 * 1024;
    unsigned ways = 4;
    std::uint64_t hit_latency = 1;
};

/**
 * One cache level. Indexed by physical address; LRU within a set;
 * allocate-on-miss for both reads and writes; write-back.
 *
 * Stats (prefixed by config.name): ".hits", ".misses",
 * ".writebacks".
 */
class Cache : public LineSource
{
  public:
    Cache(CacheConfig config, LineSource &below);

    LineAccess readLine(std::uint64_t paddr) override;
    std::uint64_t writeLine(std::uint64_t paddr,
                            const mem::TaggedLine &line) override;

    /** Write back every dirty line and invalidate (context purge). */
    void flush();

    const support::StatSet &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    const CacheConfig &config() const { return config_; }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t addr_tag = 0;
        std::uint64_t lru = 0; ///< larger = more recently used
        mem::TaggedLine line;
    };

    /** Locate (and on miss, fill) the way holding paddr's line. */
    Way &findOrFill(std::uint64_t paddr, std::uint64_t &cycles);

    std::uint64_t setIndex(std::uint64_t paddr) const;
    std::uint64_t addrTag(std::uint64_t paddr) const;

    CacheConfig config_;
    LineSource &below_;
    std::uint64_t num_sets_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t lru_clock_ = 0;
    support::StatSet stats_;
};

} // namespace cheri::cache

#endif // CHERI_CACHE_CACHE_H
