#include "cache/cache.h"

#include "support/bits.h"
#include "support/logging.h"

namespace cheri::cache
{

std::uint64_t
DramSource::accessLatency(std::uint64_t paddr)
{
    std::uint64_t row = paddr / timing_.row_bytes;
    std::uint64_t latency = row == open_row_ ? timing_.row_hit_latency
                                             : timing_.row_miss_latency;
    open_row_ = row;
    return latency;
}

LineAccess
DramSource::readLine(std::uint64_t paddr)
{
    ++transactions_;
    return LineAccess{manager_.readLine(paddr), accessLatency(paddr)};
}

std::uint64_t
DramSource::writeLine(std::uint64_t paddr, const mem::TaggedLine &line)
{
    ++transactions_;
    manager_.writeLine(paddr, line);
    return accessLatency(paddr);
}

Cache::Cache(CacheConfig config, LineSource &below)
    : config_(std::move(config)), below_(below)
{
    std::uint64_t lines = config_.size_bytes / mem::kLineBytes;
    if (config_.ways == 0 || lines % config_.ways != 0)
        support::fatal("cache %s: %u ways do not divide %llu lines",
                       config_.name.c_str(), config_.ways,
                       static_cast<unsigned long long>(lines));
    num_sets_ = lines / config_.ways;
    if (!support::isPowerOfTwo(num_sets_))
        support::fatal("cache %s: set count %llu not a power of two",
                       config_.name.c_str(),
                       static_cast<unsigned long long>(num_sets_));
    sets_.assign(num_sets_, std::vector<Way>(config_.ways));
}

std::uint64_t
Cache::setIndex(std::uint64_t paddr) const
{
    return (paddr / mem::kLineBytes) % num_sets_;
}

std::uint64_t
Cache::addrTag(std::uint64_t paddr) const
{
    return (paddr / mem::kLineBytes) / num_sets_;
}

Cache::Way &
Cache::findOrFill(std::uint64_t paddr, std::uint64_t &cycles)
{
    std::vector<Way> &set = sets_[setIndex(paddr)];
    std::uint64_t tag = addrTag(paddr);

    for (Way &way : set) {
        if (way.valid && way.addr_tag == tag) {
            stats_.add(config_.name + ".hits");
            way.lru = ++lru_clock_;
            cycles += config_.hit_latency;
            return way;
        }
    }

    stats_.add(config_.name + ".misses");
    // Victim: invalid way if any, else LRU.
    Way *victim = &set[0];
    for (Way &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lru < victim->lru)
            victim = &way;
    }
    std::uint64_t line_addr = support::roundDown(paddr, mem::kLineBytes);
    if (victim->valid && victim->dirty) {
        stats_.add(config_.name + ".writebacks");
        std::uint64_t victim_addr =
            (victim->addr_tag * num_sets_ + setIndex(paddr)) *
            mem::kLineBytes;
        cycles += below_.writeLine(victim_addr, victim->line);
    }
    LineAccess fill = below_.readLine(line_addr);
    cycles += fill.cycles + config_.hit_latency;
    victim->valid = true;
    victim->dirty = false;
    victim->addr_tag = tag;
    victim->lru = ++lru_clock_;
    victim->line = fill.line;
    return *victim;
}

LineAccess
Cache::readLine(std::uint64_t paddr)
{
    std::uint64_t cycles = 0;
    Way &way = findOrFill(paddr, cycles);
    return LineAccess{way.line, cycles};
}

std::uint64_t
Cache::writeLine(std::uint64_t paddr, const mem::TaggedLine &line)
{
    std::uint64_t cycles = 0;
    Way &way = findOrFill(paddr, cycles);
    way.line = line;
    way.dirty = true;
    return cycles;
}

void
Cache::flush()
{
    for (std::uint64_t set = 0; set < num_sets_; ++set) {
        for (Way &way : sets_[set]) {
            if (way.valid && way.dirty) {
                std::uint64_t addr =
                    (way.addr_tag * num_sets_ + set) * mem::kLineBytes;
                below_.writeLine(addr, way.line);
            }
            way.valid = false;
            way.dirty = false;
        }
    }
}

} // namespace cheri::cache
