#include "cache/cache.h"

#include "support/bits.h"
#include "support/logging.h"

namespace cheri::cache
{

std::uint64_t
DramSource::accessLatency(std::uint64_t paddr)
{
    std::uint64_t row = paddr / timing_.row_bytes;
    std::uint64_t latency = row == open_row_ ? timing_.row_hit_latency
                                             : timing_.row_miss_latency;
    open_row_ = row;
    return latency;
}

LineAccess
DramSource::readLine(std::uint64_t paddr)
{
    ++transactions_;
    read_buffer_ = manager_.readLine(paddr);
    return LineAccess{&read_buffer_, accessLatency(paddr)};
}

std::uint64_t
DramSource::writeLine(std::uint64_t paddr, const mem::TaggedLine &line)
{
    ++transactions_;
    manager_.writeLine(paddr, line);
    return accessLatency(paddr);
}

Cache::Cache(CacheConfig config, LineSource &below)
    : config_(std::move(config)), below_(below)
{
    std::uint64_t lines = config_.size_bytes / mem::kLineBytes;
    if (config_.ways == 0 || lines % config_.ways != 0)
        support::fatal("cache %s: %u ways do not divide %llu lines",
                       config_.name.c_str(), config_.ways,
                       static_cast<unsigned long long>(lines));
    num_sets_ = lines / config_.ways;
    if (!support::isPowerOfTwo(num_sets_))
        support::fatal("cache %s: set count %llu not a power of two",
                       config_.name.c_str(),
                       static_cast<unsigned long long>(num_sets_));
    ways_.assign(num_sets_ * config_.ways, Way{});
    set_mask_ = num_sets_ - 1;
    while ((1ULL << set_shift_) < num_sets_)
        ++set_shift_;
    hits_ = &stats_.counter(config_.name + ".hits");
    misses_ = &stats_.counter(config_.name + ".misses");
    writebacks_ = &stats_.counter(config_.name + ".writebacks");
}

Cache::Way &
Cache::findOrFill(std::uint64_t paddr, std::uint64_t &cycles,
                  bool demand_fill)
{
    std::uint64_t line_key = paddr >> kLineShift;
    std::uint64_t tag = line_key >> set_shift_;

    // Repeat access to a recently memoized line: replay the hit
    // effects without the set scan. The valid + addr_tag re-check
    // makes this safe against any intervening eviction/invalidation.
    Memo &memo = memo_[line_key & (memo_.size() - 1)];
    if (memo.line_key == line_key && memo.way->valid &&
        memo.way->addr_tag == tag) {
        ++*hits_;
        memo.way->lru = ++lru_clock_;
        cycles += config_.hit_latency;
        noteDemandTouch(*memo.way);
        return *memo.way;
    }

    Way *set = &ways_[(line_key & set_mask_) * config_.ways];

    for (unsigned w = 0; w < config_.ways; ++w) {
        Way &way = set[w];
        if (way.valid && way.addr_tag == tag) {
            ++*hits_;
            way.lru = ++lru_clock_;
            cycles += config_.hit_latency;
            noteDemandTouch(way);
            memo.line_key = line_key;
            memo.way = &way;
            return way;
        }
    }

    ++*misses_;
    // Victim: invalid way if any, else LRU.
    Way *victim = &set[0];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Way &way = set[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lru < victim->lru)
            victim = &way;
    }
    std::uint64_t line_addr = support::roundDown(paddr, mem::kLineBytes);
    if (victim->valid && victim->dirty) {
        ++*writebacks_;
        std::uint64_t victim_addr =
            (victim->addr_tag * num_sets_ + setIndex(paddr)) *
            mem::kLineBytes;
        cycles += below_.writeLine(victim_addr, victim->line);
    }
    if (victim->prefetched) {
        // Evicted before any demand touch: the prefetch was wasted.
        victim->prefetched = false;
        if (prefetch_inaccurate_ != nullptr)
            ++*prefetch_inaccurate_;
    }
    LineAccess fill = below_.readLine(line_addr);
    cycles += fill.cycles + config_.hit_latency;
    victim->valid = true;
    victim->dirty = false;
    victim->addr_tag = tag;
    victim->lru = ++lru_clock_;
    victim->line = *fill.line;
    memo.line_key = line_key;
    memo.way = victim;
    if (demand_fill && fill_listener_ != nullptr)
        fill_listener_->onDemandFill(*this, line_addr, victim->line);
    return *victim;
}

LineAccess
Cache::readLine(std::uint64_t paddr)
{
    std::uint64_t cycles = 0;
    Way &way = findOrFill(paddr, cycles, /*demand_fill=*/true);
    return LineAccess{&way.line, cycles};
}

std::uint64_t
Cache::writeLine(std::uint64_t paddr, const mem::TaggedLine &line)
{
    std::uint64_t cycles = 0;
    Way &way = findOrFill(paddr, cycles, /*demand_fill=*/false);
    way.line = line;
    way.dirty = true;
    return cycles;
}

mem::TaggedLine &
Cache::storeAccess(std::uint64_t paddr, std::uint64_t &cycles)
{
    // the read half
    Way &way = findOrFill(paddr, cycles, /*demand_fill=*/true);
    // The write half re-hits the line findOrFill just touched; replay
    // its effects (hit stat, LRU bump, hit latency) without rescanning.
    ++*hits_;
    way.lru = ++lru_clock_;
    cycles += config_.hit_latency;
    way.dirty = true;
    return way.line;
}

void
Cache::armPrefetch()
{
    if (prefetch_issued_ != nullptr)
        return;
    prefetch_issued_ =
        &stats_.counter(config_.name + ".prefetch_issued");
    prefetch_useful_ =
        &stats_.counter(config_.name + ".prefetch_useful");
    prefetch_late_ = &stats_.counter(config_.name + ".prefetch_late");
    prefetch_inaccurate_ =
        &stats_.counter(config_.name + ".prefetch_inaccurate");
}

const mem::TaggedLine *
Cache::prefetchFill(std::uint64_t paddr)
{
    if (probeWay(paddr) != nullptr) {
        // Already resident: the demand stream (or an earlier prefetch)
        // beat this one to the line.
        ++*prefetch_late_;
        return nullptr;
    }
    std::uint64_t line_key = paddr >> kLineShift;
    std::uint64_t tag = line_key >> set_shift_;
    Way *set = &ways_[(line_key & set_mask_) * config_.ways];
    // Same victim policy as a demand miss: invalid way if any, else
    // LRU — prefetched lines ride the ordinary eviction machinery.
    Way *victim = &set[0];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Way &way = set[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lru < victim->lru)
            victim = &way;
    }
    std::uint64_t line_addr = support::roundDown(paddr, mem::kLineBytes);
    if (victim->valid && victim->dirty) {
        // The writeback transaction is real (it moves DRAM traffic);
        // its cycles are dropped with the rest of the prefetch cost.
        ++*writebacks_;
        std::uint64_t victim_addr =
            (victim->addr_tag * num_sets_ + setIndex(paddr)) *
            mem::kLineBytes;
        below_.writeLine(victim_addr, victim->line);
    }
    if (victim->prefetched)
        ++*prefetch_inaccurate_;
    LineAccess fill = below_.readLine(line_addr);
    victim->valid = true;
    victim->dirty = false;
    victim->addr_tag = tag;
    victim->lru = ++lru_clock_;
    victim->line = *fill.line;
    victim->prefetched = true;
    ++*prefetch_issued_;
    // No memo_ update: the memo must keep naming the last demand
    // access (readLineFastHandle mints handles straight from it).
    return &victim->line;
}

bool
Cache::contains(std::uint64_t paddr) const
{
    const Way *set = &ways_[setIndex(paddr) * config_.ways];
    std::uint64_t tag = addrTag(paddr);
    for (unsigned w = 0; w < config_.ways; ++w)
        if (set[w].valid && set[w].addr_tag == tag)
            return true;
    return false;
}

const mem::TaggedLine *
Cache::peekDirtyLine(std::uint64_t paddr) const
{
    const Way *set = &ways_[setIndex(paddr) * config_.ways];
    std::uint64_t tag = addrTag(paddr);
    for (unsigned w = 0; w < config_.ways; ++w)
        if (set[w].valid && set[w].dirty && set[w].addr_tag == tag)
            return &set[w].line;
    return nullptr;
}

void
Cache::invalidateLine(std::uint64_t paddr)
{
    Way *set = &ways_[setIndex(paddr) * config_.ways];
    std::uint64_t tag = addrTag(paddr);
    for (unsigned w = 0; w < config_.ways; ++w) {
        Way &way = set[w];
        if (way.valid && way.addr_tag == tag) {
            if (way.dirty) {
                std::uint64_t addr =
                    support::roundDown(paddr, mem::kLineBytes);
                below_.writeLine(addr, way.line);
            }
            if (way.prefetched) {
                way.prefetched = false;
                if (prefetch_inaccurate_ != nullptr)
                    ++*prefetch_inaccurate_;
            }
            way.valid = false;
            way.dirty = false;
            return;
        }
    }
}

std::vector<std::uint64_t>
Cache::residentLines() const
{
    std::vector<std::uint64_t> lines;
    for (std::uint64_t set = 0; set < num_sets_; ++set) {
        for (unsigned w = 0; w < config_.ways; ++w) {
            const Way &way = ways_[set * config_.ways + w];
            if (way.valid)
                lines.push_back((way.addr_tag * num_sets_ + set) *
                                mem::kLineBytes);
        }
    }
    return lines;
}

std::vector<std::uint64_t>
Cache::residentTaggedLines() const
{
    std::vector<std::uint64_t> lines;
    for (std::uint64_t set = 0; set < num_sets_; ++set) {
        for (unsigned w = 0; w < config_.ways; ++w) {
            const Way &way = ways_[set * config_.ways + w];
            if (way.valid && way.line.tag)
                lines.push_back((way.addr_tag * num_sets_ + set) *
                                mem::kLineBytes);
        }
    }
    return lines;
}

bool
Cache::clearTagIfResident(std::uint64_t paddr)
{
    Way *way = probeWay(paddr);
    if (way == nullptr)
        return false;
    way->line.tag = false;
    return true;
}

void
Cache::restore(const Snapshot &snapshot)
{
    if (snapshot.ways.size() != ways_.size()) {
        support::panic("cache %s: snapshot has %llu ways, cache has "
                       "%llu",
                       config_.name.c_str(),
                       static_cast<unsigned long long>(
                           snapshot.ways.size()),
                       static_cast<unsigned long long>(ways_.size()));
    }
    ways_ = snapshot.ways;
    lru_clock_ = snapshot.lru_clock;
    stats_.assignFrom(snapshot.stats);
    memo_.fill(Memo{});
}

void
Cache::flush()
{
    for (std::uint64_t set = 0; set < num_sets_; ++set) {
        for (unsigned w = 0; w < config_.ways; ++w) {
            Way &way = ways_[set * config_.ways + w];
            if (way.valid && way.dirty) {
                std::uint64_t addr =
                    (way.addr_tag * num_sets_ + set) * mem::kLineBytes;
                below_.writeLine(addr, way.line);
            }
            if (way.prefetched) {
                way.prefetched = false;
                if (way.valid && prefetch_inaccurate_ != nullptr)
                    ++*prefetch_inaccurate_;
            }
            way.valid = false;
            way.dirty = false;
        }
    }
}

} // namespace cheri::cache
