#include "cache/prefetch.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>

#include "support/bits.h"

namespace cheri::cache
{

namespace
{

/** log2(kLineBytes) without depending on cache.h's constant. */
constexpr unsigned kShift = 5;
static_assert((1ULL << kShift) == mem::kLineBytes);

/**
 * Little-endian 64-bit word of a capability image (mirrors the
 * fixed-word layout in cap/capability.h: word 2 = base, word 3 =
 * length). Decoded by hand so the cache library does not grow a
 * dependency on the capability layer.
 */
std::uint64_t
capWord(const mem::Line &data, unsigned index)
{
    std::uint64_t value;
    std::memcpy(&value, data.data() + index * 8, 8);
    if constexpr (std::endian::native == std::endian::big)
        value = __builtin_bswap64(value);
    return value;
}

} // namespace

const char *
prefetchPolicyName(PrefetchPolicy policy)
{
    switch (policy) {
      case PrefetchPolicy::kNone:
        return "none";
      case PrefetchPolicy::kNextLine:
        return "nextline";
      case PrefetchPolicy::kCapChase:
        return "capchase";
    }
    return "?";
}

bool
parsePrefetchPolicy(const char *text, PrefetchPolicy &out)
{
    std::string name(text);
    if (name == "none")
        out = PrefetchPolicy::kNone;
    else if (name == "nextline")
        out = PrefetchPolicy::kNextLine;
    else if (name == "capchase")
        out = PrefetchPolicy::kCapChase;
    else
        return false;
    return true;
}

void
NextLinePrefetcher::proposeAfterFill(std::uint64_t line_paddr,
                                     const mem::TaggedLine &,
                                     const PrefetchTranslator &,
                                     std::vector<std::uint64_t> &out) const
{
    std::uint64_t line = support::roundDown(line_paddr, mem::kLineBytes);
    for (unsigned k = 1; k <= degree_; ++k) {
        std::uint64_t next = line + k * mem::kLineBytes;
        if (next < line) // physical address wrap
            break;
        out.push_back(next);
    }
}

void
CapChasePrefetcher::proposeAfterFill(std::uint64_t,
                                     const mem::TaggedLine &line,
                                     const PrefetchTranslator &translate,
                                     std::vector<std::uint64_t> &out) const
{
    if (!line.tag || !translate)
        return;
    std::uint64_t base = capWord(line.data, 2);
    std::uint64_t length = capWord(line.data, 3);
    if (length == 0)
        return;
    // Cover the pointee's first lines, up to degree lines or its
    // length, whichever runs out first. Each line translates on its
    // own (the region may cross a page); any probe miss just skips
    // that candidate.
    std::uint64_t span =
        std::min<std::uint64_t>(length,
                                std::uint64_t{degree_} * mem::kLineBytes);
    std::uint64_t first = support::roundDown(base, mem::kLineBytes);
    std::uint64_t last_byte = base + span - 1;
    if (last_byte < base) // virtual wrap: clamp to the first line
        last_byte = base;
    std::uint64_t last = support::roundDown(last_byte, mem::kLineBytes);
    unsigned proposed = 0;
    for (std::uint64_t va = first; va <= last && proposed < degree_;
         va += mem::kLineBytes, ++proposed) {
        std::uint64_t pa = 0;
        if (translate(va, pa))
            out.push_back(support::roundDown(pa, mem::kLineBytes));
        if (va + mem::kLineBytes < va) // virtual wrap
            break;
    }
}

std::unique_ptr<Prefetcher>
makePrefetcher(const PrefetchConfig &config)
{
    switch (config.policy) {
      case PrefetchPolicy::kNone:
        return nullptr;
      case PrefetchPolicy::kNextLine:
        return std::make_unique<NextLinePrefetcher>(config.degree);
      case PrefetchPolicy::kCapChase:
        return std::make_unique<CapChasePrefetcher>(config.degree);
    }
    return nullptr;
}

} // namespace cheri::cache
