#include "cache/hierarchy.h"

#include "support/bits.h"
#include "support/logging.h"

namespace cheri::cache
{

CacheHierarchy::CacheHierarchy(mem::TagManager &manager,
                               HierarchyConfig config)
    : dram_(manager, config.dram), l2_(config.l2, dram_),
      l1i_(config.l1i, l2_), l1d_(config.l1d, l2_)
{
}

void
CacheHierarchy::checkContained(std::uint64_t paddr, unsigned size) const
{
    if (paddr / mem::kLineBytes !=
        (paddr + size - 1) / mem::kLineBytes) {
        support::panic("access [0x%llx, +%u) straddles a cache line",
                       static_cast<unsigned long long>(paddr), size);
    }
}

std::uint32_t
CacheHierarchy::fetch32(std::uint64_t paddr, std::uint64_t &cycles)
{
    checkContained(paddr, 4);
    LineAccess access = l1i_.readLine(paddr);
    cycles += access.cycles;
    std::uint64_t offset = paddr % mem::kLineBytes;
    std::uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i) {
        word |= static_cast<std::uint32_t>(access.line.data[offset + i])
                << (8 * i);
    }
    return word;
}

std::uint64_t
CacheHierarchy::read(std::uint64_t paddr, unsigned size,
                     std::uint64_t &cycles)
{
    checkContained(paddr, size);
    LineAccess access = l1d_.readLine(paddr);
    cycles += access.cycles;
    std::uint64_t offset = paddr % mem::kLineBytes;
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        value |= static_cast<std::uint64_t>(access.line.data[offset + i])
                 << (8 * i);
    }
    return value;
}

void
CacheHierarchy::write(std::uint64_t paddr, unsigned size,
                      std::uint64_t value, std::uint64_t &cycles)
{
    checkContained(paddr, size);
    LineAccess access = l1d_.readLine(paddr);
    cycles += access.cycles;
    mem::TaggedLine line = access.line;
    std::uint64_t offset = paddr % mem::kLineBytes;
    for (unsigned i = 0; i < size; ++i)
        line.data[offset + i] =
            static_cast<std::uint8_t>(value >> (8 * i));
    line.tag = false; // general-purpose store clears the tag
    cycles += l1d_.writeLine(paddr, line);
}

mem::TaggedLine
CacheHierarchy::readCapLine(std::uint64_t paddr, std::uint64_t &cycles)
{
    if (paddr % mem::kLineBytes != 0)
        support::panic("capability load at unaligned 0x%llx",
                       static_cast<unsigned long long>(paddr));
    LineAccess access = l1d_.readLine(paddr);
    cycles += access.cycles;
    return access.line;
}

void
CacheHierarchy::writeCapLine(std::uint64_t paddr,
                             const mem::TaggedLine &line,
                             std::uint64_t &cycles)
{
    if (paddr % mem::kLineBytes != 0)
        support::panic("capability store at unaligned 0x%llx",
                       static_cast<unsigned long long>(paddr));
    cycles += l1d_.writeLine(paddr, line);
}

void
CacheHierarchy::flushAll()
{
    // L1s first so their dirty lines land in L2 before L2 drains.
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
}

support::StatSet
CacheHierarchy::collectStats() const
{
    support::StatSet merged;
    for (const Cache *cache : {&l1i_, &l1d_, &l2_})
        for (const auto &[name, value] : cache->stats().all())
            merged.add(name, value);
    merged.add("dram.transactions", dram_.transactions());
    return merged;
}

void
CacheHierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
}

} // namespace cheri::cache
