#include "cache/hierarchy.h"

#include "support/bits.h"
#include "support/logging.h"

namespace cheri::cache
{

CacheHierarchy::CacheHierarchy(mem::TagManager &manager,
                               HierarchyConfig config)
    : dram_(manager, config.dram), l2_(config.l2, dram_),
      l1i_(config.l1i, l2_), l1d_(config.l1d, l2_),
      tag_manager_(&manager), prefetch_(config.prefetch),
      prefetcher_(makePrefetcher(config.prefetch))
{
    // ~0 is never a line address; 0 is (physical line 0).
    fetched_lines_.fill(~0ULL);
    written_lines_.fill(~0ULL);
    static_assert(std::tuple_size_v<decltype(fetched_lines_)> ==
                  std::tuple_size_v<decltype(written_lines_)>);
    if (prefetcher_ != nullptr) {
        if (prefetch_.attach_l1d) {
            l1d_.armPrefetch();
            l1d_.setFillListener(this);
        }
        if (prefetch_.attach_l2) {
            l2_.armPrefetch();
            l2_.setFillListener(this);
        }
    }
}

void
CacheHierarchy::straddlePanic(std::uint64_t paddr, unsigned size) const
{
    support::guestFault("cache",
                        "access [0x%llx, +%u) straddles a cache line",
                        static_cast<unsigned long long>(paddr), size);
}

std::uint32_t
CacheHierarchy::fetch32(std::uint64_t paddr, std::uint64_t &cycles)
{
    checkContained(paddr, 4);
    const mem::TaggedLine *line = fetchLine(paddr, cycles);
    std::uint64_t offset = paddr % mem::kLineBytes;
    std::uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i) {
        word |= static_cast<std::uint32_t>(line->data[offset + i])
                << (8 * i);
    }
    return word;
}

void
CacheHierarchy::fetchCoherencePush(std::uint64_t paddr,
                                   std::uint64_t line_addr)
{
    if (!l1i_.contains(paddr)) {
        if (const mem::TaggedLine *dirty = l1d_.peekDirtyLine(paddr)) {
            l2_.writeLine(line_addr, *dirty); // cost intentionally dropped
        }
    }
}

mem::TaggedLine
CacheHierarchy::readCapLine(std::uint64_t paddr, std::uint64_t &cycles)
{
    if (paddr % mem::kLineBytes != 0)
        support::guestFault("cache",
                            "capability load at unaligned 0x%llx",
                            static_cast<unsigned long long>(paddr));
    LineAccess access = l1d_.readLine(paddr);
    cycles += access.cycles;
    mem::TaggedLine copy = *access.line;
    maybeDrainPrefetch(); // after the copy: the drain may evict the way
    return copy;
}

void
CacheHierarchy::writeCapLine(std::uint64_t paddr,
                             const mem::TaggedLine &line,
                             std::uint64_t &cycles)
{
    if (paddr % mem::kLineBytes != 0)
        support::guestFault("cache",
                            "capability store at unaligned 0x%llx",
                            static_cast<unsigned long long>(paddr));
    cycles += l1d_.writeLine(paddr, line);
    noteCodeWriteFiltered(paddr);
    if (store_hooks_armed_ && store_observer_ != nullptr)
        store_observer_->onLineWritten(paddr);
    // writeLine fills never trigger prefetch on their own cache, but
    // an L1D write-allocate miss pulls the old line through the L2 —
    // that L2 demand fill can queue.
    maybeDrainPrefetch();
}

void
CacheHierarchy::drainPrefetch()
{
    in_prefetch_ = true;
    for (std::size_t t = 0; t < pending_.size(); ++t) {
        // By-value copy: onDemandFill is suppressed while in_prefetch_,
        // so pending_ cannot grow (or reallocate) under us, but the
        // copy keeps this robust and the trigger is 48 bytes.
        PendingTrigger trigger = pending_[t];
        unsigned budget = prefetch_.degree;
        prefetch_candidates_.clear();
        prefetcher_->proposeAfterFill(trigger.line_paddr, trigger.line,
                                      prefetch_translate_,
                                      prefetch_candidates_);
        // Candidates may grow mid-loop: a chasing prefetcher appends
        // the targets it decodes from freshly prefetched lines.
        // Bounded by the degree budget on fills (each fill appends at
        // most degree candidates and fills are capped at degree).
        for (std::size_t c = 0;
             c < prefetch_candidates_.size() && budget > 0; ++c) {
            std::uint64_t paddr = prefetch_candidates_[c];
            if (prefetch_phys_limit_ == 0 ||
                paddr + mem::kLineBytes > prefetch_phys_limit_)
                continue;
            if (paddr == trigger.line_paddr)
                continue; // self-referential capability
            const mem::TaggedLine *filled =
                trigger.cache->prefetchFill(paddr);
            if (filled == nullptr)
                continue; // already resident: counted as late
            --budget;
            if (budget > 0 && prefetcher_->chasesPointers())
                prefetcher_->proposeAfterFill(paddr, *filled,
                                              prefetch_translate_,
                                              prefetch_candidates_);
        }
    }
    pending_.clear();
    in_prefetch_ = false;
}

void
CacheHierarchy::noteCodeWrite(std::uint64_t paddr)
{
    // The L1I never holds dirty lines, so dropping its copy is silent:
    // no writeback, no stats, no cycles. The next fetch re-misses and
    // picks the new bytes up from the L2 (or via the dirty-push in
    // fetchLine), in both decode-cache modes alike.
    l1i_.invalidateLine(paddr);
    fetched_lines_[(paddr >> kLineShift) & (fetched_lines_.size() - 1)] =
        ~0ULL;
    if (fetch_listener_ != nullptr) {
        fetch_listener_->onCodeLineModified(
            support::roundDown(paddr, mem::kLineBytes));
    }
}

void
CacheHierarchy::flushAll()
{
    // L1s first so their dirty lines land in L2 before L2 drains.
    fetched_lines_.fill(~0ULL);
    written_lines_.fill(~0ULL);
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
}

CacheHierarchy::Snapshot
CacheHierarchy::save() const
{
    Snapshot snapshot;
    snapshot.l2 = l2_.save();
    snapshot.l1i = l1i_.save();
    snapshot.l1d = l1d_.save();
    snapshot.dram = dram_.save();
    snapshot.fetched_lines = fetched_lines_;
    snapshot.written_lines = written_lines_;
    return snapshot;
}

void
CacheHierarchy::restore(const Snapshot &snapshot)
{
    l2_.restore(snapshot.l2);
    l1i_.restore(snapshot.l1i);
    l1d_.restore(snapshot.l1d);
    dram_.restore(snapshot.dram);
    fetched_lines_ = snapshot.fetched_lines;
    written_lines_ = snapshot.written_lines;
    // The trigger queue is empty at every operation boundary —
    // snapshots are only taken there — so there is nothing to
    // capture; just drop anything a mid-operation caller left behind.
    pending_.clear();
}

support::StatSet
CacheHierarchy::collectStats() const
{
    support::StatSet merged;
    for (const Cache *cache : {&l1i_, &l1d_, &l2_})
        merged.merge(cache->stats());
    merged.add("dram.transactions", dram_.transactions());
    // Tag-manager counters (tag.cache_hits/_misses, tag.table_*,
    // dram.reads/writes) ride along so consumers — the prefetch sweep
    // in particular — see tag-cache pressure without a side channel.
    merged.merge(tag_manager_->stats());
    return merged;
}

void
CacheHierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
}

} // namespace cheri::cache
