#include "cache/hierarchy.h"

#include "support/bits.h"
#include "support/logging.h"

namespace cheri::cache
{

CacheHierarchy::CacheHierarchy(mem::TagManager &manager,
                               HierarchyConfig config)
    : dram_(manager, config.dram), l2_(config.l2, dram_),
      l1i_(config.l1i, l2_), l1d_(config.l1d, l2_)
{
    // ~0 is never a line address; 0 is (physical line 0).
    fetched_lines_.fill(~0ULL);
    written_lines_.fill(~0ULL);
    static_assert(std::tuple_size_v<decltype(fetched_lines_)> ==
                  std::tuple_size_v<decltype(written_lines_)>);
}

void
CacheHierarchy::straddlePanic(std::uint64_t paddr, unsigned size) const
{
    support::panic("access [0x%llx, +%u) straddles a cache line",
                   static_cast<unsigned long long>(paddr), size);
}

std::uint32_t
CacheHierarchy::fetch32(std::uint64_t paddr, std::uint64_t &cycles)
{
    checkContained(paddr, 4);
    const mem::TaggedLine *line = fetchLine(paddr, cycles);
    std::uint64_t offset = paddr % mem::kLineBytes;
    std::uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i) {
        word |= static_cast<std::uint32_t>(line->data[offset + i])
                << (8 * i);
    }
    return word;
}

void
CacheHierarchy::fetchCoherencePush(std::uint64_t paddr,
                                   std::uint64_t line_addr)
{
    if (!l1i_.contains(paddr)) {
        if (const mem::TaggedLine *dirty = l1d_.peekDirtyLine(paddr)) {
            l2_.writeLine(line_addr, *dirty); // cost intentionally dropped
        }
    }
}

mem::TaggedLine
CacheHierarchy::readCapLine(std::uint64_t paddr, std::uint64_t &cycles)
{
    if (paddr % mem::kLineBytes != 0)
        support::panic("capability load at unaligned 0x%llx",
                       static_cast<unsigned long long>(paddr));
    LineAccess access = l1d_.readLine(paddr);
    cycles += access.cycles;
    return *access.line;
}

void
CacheHierarchy::writeCapLine(std::uint64_t paddr,
                             const mem::TaggedLine &line,
                             std::uint64_t &cycles)
{
    if (paddr % mem::kLineBytes != 0)
        support::panic("capability store at unaligned 0x%llx",
                       static_cast<unsigned long long>(paddr));
    cycles += l1d_.writeLine(paddr, line);
    noteCodeWriteFiltered(paddr);
    if (store_hooks_armed_ && store_observer_ != nullptr)
        store_observer_->onLineWritten(paddr);
}

void
CacheHierarchy::noteCodeWrite(std::uint64_t paddr)
{
    // The L1I never holds dirty lines, so dropping its copy is silent:
    // no writeback, no stats, no cycles. The next fetch re-misses and
    // picks the new bytes up from the L2 (or via the dirty-push in
    // fetchLine), in both decode-cache modes alike.
    l1i_.invalidateLine(paddr);
    fetched_lines_[(paddr >> kLineShift) & (fetched_lines_.size() - 1)] =
        ~0ULL;
    if (fetch_listener_ != nullptr) {
        fetch_listener_->onCodeLineModified(
            support::roundDown(paddr, mem::kLineBytes));
    }
}

void
CacheHierarchy::flushAll()
{
    // L1s first so their dirty lines land in L2 before L2 drains.
    fetched_lines_.fill(~0ULL);
    written_lines_.fill(~0ULL);
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
}

CacheHierarchy::Snapshot
CacheHierarchy::save() const
{
    Snapshot snapshot;
    snapshot.l2 = l2_.save();
    snapshot.l1i = l1i_.save();
    snapshot.l1d = l1d_.save();
    snapshot.dram = dram_.save();
    snapshot.fetched_lines = fetched_lines_;
    snapshot.written_lines = written_lines_;
    return snapshot;
}

void
CacheHierarchy::restore(const Snapshot &snapshot)
{
    l2_.restore(snapshot.l2);
    l1i_.restore(snapshot.l1i);
    l1d_.restore(snapshot.l1d);
    dram_.restore(snapshot.dram);
    fetched_lines_ = snapshot.fetched_lines;
    written_lines_ = snapshot.written_lines;
}

support::StatSet
CacheHierarchy::collectStats() const
{
    support::StatSet merged;
    for (const Cache *cache : {&l1i_, &l1d_, &l2_})
        merged.merge(cache->stats());
    merged.add("dram.transactions", dram_.transactions());
    return merged;
}

void
CacheHierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
}

} // namespace cheri::cache
