/**
 * @file
 * The CHERI cache hierarchy of Section 4: split 16 KB L1 instruction
 * and data caches, a shared 64 KB L2, 32-byte lines throughout, and
 * the tag manager as the DRAM endpoint. Implements the CHERI tag
 * semantics — a general-purpose store clears the line's capability
 * tag; a capability store sets it from the source register — so
 * capability unforgeability holds at every level (Section 4.2).
 */

#ifndef CHERI_CACHE_HIERARCHY_H
#define CHERI_CACHE_HIERARCHY_H

#include <cstdint>
#include <memory>

#include "cache/cache.h"
#include "mem/tag_manager.h"
#include "support/stats.h"

namespace cheri::cache
{

/** Geometry of the full hierarchy (paper defaults, Sections 8/9). */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 16 * 1024, 4, 1};
    CacheConfig l1d{"l1d", 16 * 1024, 4, 1};
    CacheConfig l2{"l2", 64 * 1024, 8, 4};
    DramTiming dram;
};

/**
 * CPU-facing memory system operating on physical addresses (the TLB
 * has already translated). Sub-line accesses must be naturally
 * aligned and line-contained — the CPU raises address-error faults
 * before calling in.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(mem::TagManager &manager, HierarchyConfig config = {});

    /** Instruction fetch of one 32-bit word through the L1I. */
    std::uint32_t fetch32(std::uint64_t paddr, std::uint64_t &cycles);

    /** General-purpose load of 1/2/4/8 bytes (tag-oblivious). */
    std::uint64_t read(std::uint64_t paddr, unsigned size,
                       std::uint64_t &cycles);

    /**
     * General-purpose store of 1/2/4/8 bytes. Clears the capability
     * tag of the containing line — the architectural guarantee that
     * data writes cannot forge capabilities.
     */
    void write(std::uint64_t paddr, unsigned size, std::uint64_t value,
               std::uint64_t &cycles);

    /** Capability load: the full 257-bit line (CLC). */
    mem::TaggedLine readCapLine(std::uint64_t paddr,
                                std::uint64_t &cycles);

    /** Capability store: full line plus tag (CSC). */
    void writeCapLine(std::uint64_t paddr, const mem::TaggedLine &line,
                      std::uint64_t &cycles);

    /** Write back and invalidate everything (used by tests). */
    void flushAll();

    /** DRAM line transactions so far (memory-traffic metric). */
    std::uint64_t dramTransactions() const { return dram_.transactions(); }

    /** Merge all per-level stats into one set. */
    support::StatSet collectStats() const;

    void resetStats();

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

  private:
    void checkContained(std::uint64_t paddr, unsigned size) const;

    DramSource dram_;
    Cache l2_;
    Cache l1i_;
    Cache l1d_;
};

} // namespace cheri::cache

#endif // CHERI_CACHE_HIERARCHY_H
