/**
 * @file
 * The CHERI cache hierarchy of Section 4: split 16 KB L1 instruction
 * and data caches, a shared 64 KB L2, 32-byte lines throughout, and
 * the tag manager as the DRAM endpoint. Implements the CHERI tag
 * semantics — a general-purpose store clears the line's capability
 * tag; a capability store sets it from the source register — so
 * capability unforgeability holds at every level (Section 4.2).
 */

#ifndef CHERI_CACHE_HIERARCHY_H
#define CHERI_CACHE_HIERARCHY_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "cache/prefetch.h"
#include "mem/tag_manager.h"
#include "support/stats.h"

namespace cheri::cache
{

/**
 * Notified when a store touches a physical line that may hold code,
 * so fetch-side structures above the hierarchy (the CPU's predecoded
 * instruction cache) can drop stale decodes. Purely a host-side
 * coherence hook: it carries no simulated cost.
 */
class FetchInvalidationListener
{
  public:
    virtual ~FetchInvalidationListener() = default;

    /** line_paddr is the 32-byte-aligned address of the stored-to line. */
    virtual void onCodeLineModified(std::uint64_t line_paddr) = 0;
};

/**
 * Notified after every architectural store (data or capability) with
 * the 32-byte-aligned address of the written line. Host-side only — no
 * simulated cost — used by the co-simulation lockstep driver
 * (check/lockstep.h) to know which lines to diff against the reference
 * memory after each retire.
 */
class StoreObserver
{
  public:
    virtual ~StoreObserver() = default;

    virtual void onLineWritten(std::uint64_t line_paddr) = 0;
};

/** Geometry of the full hierarchy (paper defaults, Sections 8/9). */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 16 * 1024, 4, 1};
    CacheConfig l1d{"l1d", 16 * 1024, 4, 1};
    CacheConfig l2{"l2", 64 * 1024, 8, 4};
    DramTiming dram;
    /** Prefetcher selection and attach points (default: off). */
    PrefetchConfig prefetch;
};

/**
 * CPU-facing memory system operating on physical addresses (the TLB
 * has already translated). Sub-line accesses must be naturally
 * aligned and line-contained — the CPU raises address-error faults
 * before calling in.
 */
class CacheHierarchy : private FillListener
{
  public:
    CacheHierarchy(mem::TagManager &manager, HierarchyConfig config = {});

    /** Instruction fetch of one 32-bit word through the L1I. */
    std::uint32_t fetch32(std::uint64_t paddr, std::uint64_t &cycles);

    /**
     * Instruction fetch of the whole 32-byte line containing paddr
     * through the L1I (used by the CPU's predecode fill, which wants
     * every slot of the line at once). Timing and stats are identical
     * to fetch32 at the same address: one L1I line access. The
     * returned pointer is valid until the next hierarchy operation.
     * Inline: this runs once per simulated instruction.
     */
    const mem::TaggedLine *
    fetchLine(std::uint64_t paddr, std::uint64_t &cycles)
    {
        std::uint64_t line_addr = paddr & ~(mem::kLineBytes - 1ULL);
        std::uint64_t index =
            (line_addr >> kLineShift) & (fetched_lines_.size() - 1);
        std::uint64_t &slot = fetched_lines_[index];
        if (slot != line_addr) {
            fetchCoherencePush(paddr, line_addr);
            slot = line_addr;
            // This line is (about to be) L1I-resident again: the next
            // store to it must run the full noteCodeWrite.
            written_lines_[index] = ~0ULL;
        }
        LineAccess access = l1i_.readLineFast(paddr);
        cycles += access.cycles;
        // An L1I miss that also missed the L2 may have queued L2
        // prefetch triggers; issue them now. The drain never touches
        // L1I way storage (prefetchers attach L1D/L2 only), so the
        // returned pointer stays valid.
        maybeDrainPrefetch();
        return access.line;
    }

    /**
     * Mint a pure host-side handle naming the L1I-resident line
     * containing paddr (no stats, LRU, or cycles) — the superblock
     * tier's repeat-fetch shortcut. See Cache::probeHandle.
     */
    bool probeFetchHandle(std::uint64_t paddr, Cache::LineHandle &out)
    {
        return l1i_.probeHandle(paddr, out);
    }

    /**
     * fetchLine that also mints the L1I handle for the fetched line
     * in the same probe (see Cache::readLineFastHandle) — the
     * superblock tier's line-change step, replacing a fetchLine +
     * probeFetchHandle pair. The handle always validates on return.
     */
    const mem::TaggedLine *
    fetchLineHandle(std::uint64_t paddr, std::uint64_t &cycles,
                    Cache::LineHandle &out)
    {
        std::uint64_t line_addr = paddr & ~(mem::kLineBytes - 1ULL);
        std::uint64_t index =
            (line_addr >> kLineShift) & (fetched_lines_.size() - 1);
        std::uint64_t &slot = fetched_lines_[index];
        if (slot != line_addr) {
            fetchCoherencePush(paddr, line_addr);
            slot = line_addr;
            written_lines_[index] = ~0ULL;
        }
        LineAccess access = l1i_.readLineFastHandle(paddr, out);
        cycles += access.cycles;
        maybeDrainPrefetch(); // see fetchLine
        return access.line;
    }

    /**
     * Settle n deferred repeat fetches of the handle's line: exactly
     * the effects n fetchLine calls produce when the fetch memo and
     * the L1I both hit — n L1I hits with LRU bumps, nothing on the
     * memo side. Valid only while the caller knows the line was
     * fetched since the last store to it (so fetchLine's dirty-push
     * probe would find nothing and its memos carry no simulated
     * effects); the superblock tier guarantees that by aborting the
     * block on any store to a covered line. The per-fetch hit
     * latency is NOT applied here — the caller charges it per slot
     * via fetchHitLatency().
     */
    void
    applyDeferredFetchHits(const Cache::LineHandle &handle,
                           std::uint64_t n)
    {
        l1i_.applyDeferredHits(handle, n);
    }

    /** The L1I hit latency a deferred repeat fetch stalls for. */
    std::uint64_t fetchHitLatency() const { return l1i_.hitLatency(); }

    /** General-purpose load of 1/2/4/8 bytes (tag-oblivious). */
    std::uint64_t
    read(std::uint64_t paddr, unsigned size, std::uint64_t &cycles)
    {
        checkContained(paddr, size);
        LineAccess access = l1d_.readLineFast(paddr);
        cycles += access.cycles;
        std::uint64_t offset = paddr % mem::kLineBytes;
        std::uint64_t value = 0;
        for (unsigned i = 0; i < size; ++i) {
            value |= static_cast<std::uint64_t>(
                         access.line->data[offset + i])
                     << (8 * i);
        }
        maybeDrainPrefetch(); // after the line bytes are consumed
        return value;
    }

    /**
     * General-purpose store of 1/2/4/8 bytes. Clears the capability
     * tag of the containing line — the architectural guarantee that
     * data writes cannot forge capabilities.
     */
    void
    write(std::uint64_t paddr, unsigned size, std::uint64_t value,
          std::uint64_t &cycles)
    {
        checkContained(paddr, size);
        // Combined read-modify-write: same simulated effects as a
        // readLine followed by a writeLine of the modified copy.
        mem::TaggedLine &line = l1d_.storeAccessFast(paddr, cycles);
        std::uint64_t offset = paddr % mem::kLineBytes;
        for (unsigned i = 0; i < size; ++i)
            line.data[offset + i] =
                static_cast<std::uint8_t>(value >> (8 * i));
        finishDataStore(line, paddr);
        maybeDrainPrefetch();
    }

    // --- data fast path (see DESIGN.md §9) ---
    //
    // Handle-validated L1D short-circuits for the CPU's data memo.
    // Each replays *exactly* what the corresponding slow entry does
    // on an L1D hit — stats, LRU, latency, tag semantics, fetch
    // coherence, fault injection, store observer — or touches nothing
    // and returns failure when the handle went stale, so the caller
    // can take the full path with no effects double-counted.

    /** Fast read(): load 1/2/4/8 naturally aligned bytes. */
    bool
    readFast(const cache::Cache::LineHandle &handle, std::uint64_t paddr,
             unsigned size, std::uint64_t &value, std::uint64_t &cycles)
    {
        const mem::TaggedLine *line = l1d_.readHitFast(handle, cycles);
        if (line == nullptr)
            return false;
        std::uint64_t offset = paddr % mem::kLineBytes;
        value = 0;
        for (unsigned i = 0; i < size; ++i) {
            value |= static_cast<std::uint64_t>(line->data[offset + i])
                     << (8 * i);
        }
        return true;
    }

    /** Fast write(): store 1/2/4/8 naturally aligned bytes. */
    bool
    writeFast(const cache::Cache::LineHandle &handle, std::uint64_t paddr,
              unsigned size, std::uint64_t value, std::uint64_t &cycles)
    {
        mem::TaggedLine *line = l1d_.storeHitFast(handle, cycles);
        if (line == nullptr)
            return false;
        std::uint64_t offset = paddr % mem::kLineBytes;
        for (unsigned i = 0; i < size; ++i)
            line->data[offset + i] =
                static_cast<std::uint8_t>(value >> (8 * i));
        finishDataStore(*line, paddr);
        return true;
    }

    /** Fast readCapLine(): the full 257-bit line (CLC). */
    const mem::TaggedLine *
    readCapLineFast(const cache::Cache::LineHandle &handle,
                    std::uint64_t &cycles)
    {
        return l1d_.readHitFast(handle, cycles);
    }

    /** Fast writeCapLine(): full line plus tag (CSC). */
    bool
    writeCapLineFast(const cache::Cache::LineHandle &handle,
                     std::uint64_t paddr, const mem::TaggedLine &line,
                     std::uint64_t &cycles)
    {
        if (!l1d_.writeLineHitFast(handle, line, cycles))
            return false;
        noteCodeWriteFiltered(paddr);
        if (store_hooks_armed_ && store_observer_ != nullptr)
            store_observer_->onLineWritten(paddr);
        return true;
    }

    /** Capability load: the full 257-bit line (CLC). */
    mem::TaggedLine readCapLine(std::uint64_t paddr,
                                std::uint64_t &cycles);

    /** Capability store: full line plus tag (CSC). */
    void writeCapLine(std::uint64_t paddr, const mem::TaggedLine &line,
                      std::uint64_t &cycles);

    /** Write back and invalidate everything (used by tests). */
    void flushAll();

    // --- prefetch wiring (see DESIGN.md §14) ---

    /**
     * Install the side-effect-free virtual-to-physical probe the
     * pointer-chase prefetcher translates through (the Machine wires
     * this to Tlb::probePrefetch; forks re-wire it in their own
     * constructor). An empty translator disables pointer chasing.
     */
    void setPrefetchTranslator(PrefetchTranslator translate)
    {
        prefetch_translate_ = std::move(translate);
    }

    /**
     * Physical memory size in bytes; prefetch candidates at or past
     * it are dropped. 0 (the default for a bare hierarchy) drops
     * every candidate — the Machine always sets the real size, so
     * prefetching is only live behind a known DRAM bound.
     */
    void setPrefetchPhysLimit(std::uint64_t bytes)
    {
        prefetch_phys_limit_ = bytes;
    }

    /** The active prefetch configuration. */
    const PrefetchConfig &prefetchConfig() const { return prefetch_; }

    /** DRAM line transactions so far (memory-traffic metric). */
    std::uint64_t dramTransactions() const { return dram_.transactions(); }

    /** Merge all per-level stats into one set. */
    support::StatSet collectStats() const;

    void resetStats();

    /**
     * Register the (single) listener told about stores into lines
     * that may hold code; nullptr detaches. See
     * FetchInvalidationListener.
     */
    void setFetchListener(FetchInvalidationListener *listener)
    {
        fetch_listener_ = listener;
    }

    /**
     * Register the (single) observer of architectural stores; nullptr
     * detaches. See StoreObserver.
     */
    void setStoreObserver(StoreObserver *observer)
    {
        store_observer_ = observer;
        updateStoreHooks();
    }

    /**
     * Arm (or disarm) the behavioural fault where data stores no
     * longer clear the containing line's capability tag — breaking the
     * paper's unforgeability guarantee. Used by the oracle/fuzzer
     * self-tests and the fault-injection campaign (check/fault_plan.h
     * holds the full fault-class taxonomy; this is the only fault that
     * lives in the store path itself rather than being a one-shot
     * state corruption). Never enabled outside tests and campaigns.
     */
    void setStoreTagClearSuppressed(bool suppressed)
    {
        suppress_store_tag_clear_ = suppressed;
        updateStoreHooks();
    }

    /**
     * Full hierarchy state (all three caches, DRAM open-row/transaction
     * state, the fetch-coherence memos), captured for machine
     * checkpointing. An exact deep copy — nothing is flushed, so a
     * restored machine replays the same hit/miss/writeback sequence as
     * the original.
     */
    struct Snapshot
    {
        Cache::Snapshot l2;
        Cache::Snapshot l1i;
        Cache::Snapshot l1d;
        DramSource::Snapshot dram;
        std::array<std::uint64_t, 64> fetched_lines{};
        std::array<std::uint64_t, 64> written_lines{};
    };

    /** Capture full hierarchy state. */
    Snapshot save() const;

    /** Restore full hierarchy state (geometry must match). */
    void restore(const Snapshot &snapshot);

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }

  private:
    /**
     * Tail of every general-purpose store: the architectural tag
     * clear, fetch coherence, and the host-side hooks. The hooks
     * (StoreObserver, tag-clear suppression) are rare — only the lockstep
     * oracle and fault-injection self-tests arm them — so the
     * non-observed hot path pays a single predictable branch on
     * store_hooks_armed_ and never touches the pointer or the
     * injection enum.
     */
    void
    finishDataStore(mem::TaggedLine &line, std::uint64_t paddr)
    {
        if (!store_hooks_armed_) {
            line.tag = false; // general-purpose store clears the tag
        } else {
            if (!suppress_store_tag_clear_)
                line.tag = false;
            if (store_observer_ != nullptr)
                store_observer_->onLineWritten(
                    paddr & ~(mem::kLineBytes - 1ULL));
        }
        noteCodeWriteFiltered(paddr);
    }

    /** Recompute the merged cheap guard for the store-path hooks. */
    void updateStoreHooks()
    {
        store_hooks_armed_ =
            store_observer_ != nullptr || suppress_store_tag_clear_;
    }

    void
    checkContained(std::uint64_t paddr, unsigned size) const
    {
        if (paddr / mem::kLineBytes !=
            (paddr + size - 1) / mem::kLineBytes)
            straddlePanic(paddr, size);
    }

    [[noreturn]] void straddlePanic(std::uint64_t paddr,
                                    unsigned size) const;

    /**
     * Fetch-side half of fetch coherence (cold path of fetchLine): if
     * the L1I is about to refill this line, make sure a dirty L1D copy
     * (self-modifying code whose stores have not left the L1D) reaches
     * the shared L2 first, so the refill observes the new bytes. The
     * push models snoop hardware and costs no simulated cycles; it
     * happens on the same occasions in both decode-cache modes.
     */
    void fetchCoherencePush(std::uint64_t paddr,
                            std::uint64_t line_addr);

    /**
     * Store-side half of fetch coherence: invalidate any L1I copy of
     * the stored-to line (the L1I never holds dirty lines, so this is
     * a silent drop) and notify the fetch listener. Modelled as part
     * of the store pipeline — no extra simulated cycles — and runs
     * identically whether or not the CPU's decode cache is enabled,
     * so timing cannot diverge between the two modes.
     */
    void noteCodeWrite(std::uint64_t paddr);

    /**
     * Per-store entry to noteCodeWrite. A hit in written_lines_ means
     * this line was already noted since the last fetch of it, so the
     * L1I copy is gone, the decode-cache entry is cleared, and neither
     * can have been refilled (only a fetch refills them, and a fetch
     * clears the slot) — the whole notification is a no-op and is
     * skipped. noteCodeWrite has no simulated effects (the L1I never
     * holds dirty lines, so the invalidation is silent), and the skip
     * criterion depends only on the store/fetch stream, so timing
     * invariance between decode-cache modes is preserved.
     */
    void
    noteCodeWriteFiltered(std::uint64_t paddr)
    {
        std::uint64_t line_addr = paddr & ~(mem::kLineBytes - 1ULL);
        std::uint64_t &slot =
            written_lines_[(line_addr >> kLineShift) &
                           (written_lines_.size() - 1)];
        if (slot != line_addr) {
            noteCodeWrite(paddr);
            slot = line_addr;
        }
    }

    /**
     * FillListener: a demand miss filled a line into the L1D or L2.
     * Only queues the trigger — prefetches issue in drainPrefetch at
     * the end of the current hierarchy operation, so the demand
     * access's own fill sequence is never interleaved with
     * speculative traffic. Fills caused by prefetching itself (an L1D
     * prefetch pulling its line through the L2) are suppressed, or
     * one trigger could chase forever.
     */
    void onDemandFill(Cache &cache, std::uint64_t line_paddr,
                      const mem::TaggedLine &line) override
    {
        if (in_prefetch_)
            return;
        pending_.push_back(PendingTrigger{&cache, line_paddr, line});
    }

    /**
     * Issue queued prefetch triggers. Called at the end of every
     * public operation that can miss; the queue is empty at every
     * operation boundary, so snapshots/forks need no prefetch state
     * and the fast-path replays (hits only — they can never enqueue)
     * need no drain hook.
     */
    void maybeDrainPrefetch()
    {
        if (!pending_.empty())
            drainPrefetch();
    }

    void drainPrefetch();

    DramSource dram_;
    Cache l2_;
    Cache l1i_;
    Cache l1d_;
    mem::TagManager *tag_manager_;
    PrefetchConfig prefetch_;
    std::unique_ptr<Prefetcher> prefetcher_;
    PrefetchTranslator prefetch_translate_;
    std::uint64_t prefetch_phys_limit_ = 0;
    /** True while drainPrefetch issues fills (suppresses re-triggering). */
    bool in_prefetch_ = false;
    /** One queued demand-fill trigger (line content copied at fill
     *  time, before the demand store that may have caused it mutates
     *  the line — deterministic in every host mode because fast-path
     *  replays are hits and never reach here). */
    struct PendingTrigger
    {
        Cache *cache;
        std::uint64_t line_paddr;
        mem::TaggedLine line;
    };
    std::vector<PendingTrigger> pending_;
    /** Scratch candidate list reused across drains. */
    std::vector<std::uint64_t> prefetch_candidates_;
    FetchInvalidationListener *fetch_listener_ = nullptr;
    StoreObserver *store_observer_ = nullptr;
    bool suppress_store_tag_clear_ = false;
    /** True iff an observer or a fault injection is armed (merged
     *  guard so the store hot path checks one flag, not two). */
    bool store_hooks_armed_ = false;

    // Direct-mapped memo of recently fetched line addresses (64
    // entries, indexed by line number). A hit means the line was
    // fetched since the last store to it (noteCodeWrite clears the
    // matching slot) and since the last flush, so the dirty-push
    // probe in fetchLine can be skipped: any dirty L1D copy of the
    // line predates that earlier fetch, whose probe already pushed
    // the bytes to the L2, and no store has dirtied it since. The
    // probe itself has no simulated effects and the skip criterion
    // depends only on the fetch/store stream — identical in both
    // decode-cache modes — so timing invariance is preserved.
    std::array<std::uint64_t, 64> fetched_lines_{};

    // Companion memo for the store side (see noteCodeWriteFiltered):
    // lines whose modification has been noted since their last fetch.
    std::array<std::uint64_t, 64> written_lines_{};
};

} // namespace cheri::cache

#endif // CHERI_CACHE_HIERARCHY_H
