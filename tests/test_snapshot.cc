/**
 * @file
 * Machine snapshot/restore determinism. The core guarantee the
 * fault-injection campaign rests on: saving a full-machine snapshot
 * mid-kernel and restoring it later must be invisible to the
 * simulation — the restored run retires the same instructions, burns
 * the same cycles, and takes the same cache/TLB/tag hits as an
 * uninterrupted run, bit for bit, with the host-side fast paths on or
 * off. Also covers the watchdog budgets (structured kInstLimit /
 * kCycleLimit results), the structured allocation errors on
 * core::Machine, and the fault-campaign engine's reproducibility.
 */

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/fault_campaign.h"
#include "check/fault_plan.h"
#include "isa/assembler.h"
#include "workloads/guest_olden.h"

namespace
{

using namespace cheri;

workloads::GuestProgram
kernelByName(const std::string &name)
{
    if (name == "treeadd")
        return workloads::guestTreeadd(5, 2);
    if (name == "bisort")
        return workloads::guestBisort(48);
    if (name == "mst")
        return workloads::guestMst(12);
    return workloads::guestEm3d(10, 3, 2);
}

core::Machine
makeMachine()
{
    core::MachineConfig config;
    config.dram_bytes = 8 * 1024 * 1024;
    return core::Machine(config);
}

/**
 * Every observable counter in the machine: retired instructions,
 * cycles, and all CPU / cache / TLB / tag-manager stats. Two runs are
 * "the same" iff these vectors are equal.
 */
std::vector<std::pair<std::string, std::uint64_t>>
allCounters(core::Machine &machine)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.emplace_back("instructions",
                     machine.cpu().totalInstructions());
    out.emplace_back("cycles", machine.cpu().totalCycles());
    for (const auto &entry : machine.cpu().stats().all())
        out.push_back(entry);
    support::StatSet memory_stats = machine.memory().collectStats();
    for (const auto &entry : memory_stats.all())
        out.push_back(entry);
    for (const auto &entry : machine.tlb().stats().all())
        out.push_back(entry);
    for (const auto &entry : machine.tagManager().stats().all())
        out.push_back(entry);
    return out;
}

class SnapshotOlden
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(SnapshotOlden, SaveAndRestoreAreInvisible)
{
    const auto &[name, fast_path] = GetParam();
    workloads::GuestProgram prog = kernelByName(name);

    // Uninterrupted baseline.
    core::Machine baseline = makeMachine();
    workloads::loadGuestProgram(baseline, prog);
    baseline.cpu().setDecodeCacheEnabled(fast_path);
    baseline.cpu().setDataFastPathEnabled(fast_path);
    core::RunResult clean = baseline.cpu().run(core::RunLimits{});
    ASSERT_EQ(clean.reason, core::StopReason::kBreak);
    ASSERT_EQ(baseline.cpu().gpr(isa::reg::v0), prog.expected_checksum);
    auto expected = allCounters(baseline);
    std::uint64_t clean_instructions =
        baseline.cpu().totalInstructions();
    ASSERT_GT(clean_instructions, 100u);

    // Same run, but snapshot mid-kernel. Taking the snapshot must not
    // perturb the continuation...
    core::Machine machine = makeMachine();
    workloads::loadGuestProgram(machine, prog);
    machine.cpu().setDecodeCacheEnabled(fast_path);
    machine.cpu().setDataFastPathEnabled(fast_path);
    core::RunLimits half;
    half.max_instructions = clean_instructions / 2;
    core::RunResult mid = machine.cpu().run(half);
    ASSERT_EQ(mid.reason, core::StopReason::kInstLimit);
    core::Machine::Snapshot snapshot = machine.saveSnapshot();
    core::RunResult rest = machine.cpu().run(core::RunLimits{});
    ASSERT_EQ(rest.reason, core::StopReason::kBreak);
    EXPECT_EQ(allCounters(machine), expected);
    EXPECT_EQ(machine.cpu().gpr(isa::reg::v0), prog.expected_checksum);

    // ...and restoring it must replay the identical tail, twice.
    for (int round = 0; round < 2; ++round) {
        machine.restoreSnapshot(snapshot);
        EXPECT_EQ(machine.cpu().totalInstructions(),
                  half.max_instructions);
        core::RunResult replay = machine.cpu().run(core::RunLimits{});
        ASSERT_EQ(replay.reason, core::StopReason::kBreak);
        EXPECT_EQ(allCounters(machine), expected) << "round " << round;
        EXPECT_EQ(machine.cpu().gpr(isa::reg::v0),
                  prog.expected_checksum);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SnapshotOlden,
    ::testing::Combine(::testing::Values("treeadd", "bisort", "mst",
                                         "em3d"),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_fast" : "_slow");
    });

TEST(Snapshot, RollbackAndRetryAfterFault)
{
    // Rollback-and-retry: corrupt the machine, observe the damage,
    // restore, and the clean run must complete as if nothing happened.
    workloads::GuestProgram prog = kernelByName("bisort");
    core::Machine machine = makeMachine();
    workloads::loadGuestProgram(machine, prog);
    core::Machine::Snapshot snapshot = machine.saveSnapshot();

    core::RunLimits prefix;
    prefix.max_instructions = 500;
    ASSERT_EQ(machine.cpu().run(prefix).reason,
              core::StopReason::kInstLimit);
    check::FaultPlan plan;
    plan.fault = check::FaultClass::kDramBitFlip;
    plan.pick = 12345;
    check::FaultOutcome outcome = check::applyFault(machine, plan);
    ASSERT_TRUE(outcome.applied);

    machine.restoreSnapshot(snapshot);
    core::RunResult replay = machine.cpu().run(core::RunLimits{});
    ASSERT_EQ(replay.reason, core::StopReason::kBreak);
    EXPECT_EQ(machine.cpu().gpr(isa::reg::v0), prog.expected_checksum);
}

TEST(Watchdog, CycleBudgetReturnsStructuredResult)
{
    // An infinite loop must come back as kCycleLimit, not hang.
    isa::Assembler a(0x10000);
    isa::Assembler::Label spin = a.newLabel();
    a.bind(spin);
    a.b(spin);
    a.nop();

    core::Machine machine;
    machine.loadProgram(0x10000, a.finish());
    machine.reset(0x10000);

    core::RunLimits limits;
    limits.max_cycles = 10'000;
    core::RunResult result = machine.cpu().run(limits);
    EXPECT_EQ(result.reason, core::StopReason::kCycleLimit);
    EXPECT_GE(machine.cpu().totalCycles(), limits.max_cycles);

    // The instruction budget fires the same way.
    core::RunLimits insts;
    insts.max_instructions = 100;
    result = machine.cpu().run(insts);
    EXPECT_EQ(result.reason, core::StopReason::kInstLimit);
}

TEST(MachineAlloc, StructuredErrorsInsteadOfAbort)
{
    core::MachineConfig config;
    config.dram_bytes = 4 * tlb::kPageBytes; // four frames only
    core::Machine machine(config);

    // Mapping more than DRAM can back fails cleanly...
    EXPECT_FALSE(machine.tryMapRange(0x100000, 8 * tlb::kPageBytes));

    // ...and frame allocation reports exhaustion via nullopt.
    while (machine.tryAllocFrame())
        ;
    EXPECT_EQ(machine.tryAllocFrame(), std::nullopt);
    EXPECT_EQ(machine.allocatedFrames(), 4u);
}

TEST(FaultCampaign, ReportIsReproducible)
{
    workloads::GuestProgram prog = kernelByName("treeadd");
    check::CampaignGuest guest{
        "treeadd", [prog](core::Machine &machine) {
            workloads::loadGuestProgram(machine, prog);
        }};
    check::CampaignConfig config;
    config.trials = 5;
    config.seed = 42;

    check::CampaignReport first =
        check::runCampaign(config, {guest});
    check::CampaignReport second =
        check::runCampaign(config, {guest});
    EXPECT_EQ(first.toJson(), second.toJson());
    ASSERT_EQ(first.guests.size(), 1u);
    EXPECT_FALSE(first.guests[0].restore_perturbed);
    EXPECT_EQ(first.guests[0].trials.size(), config.trials);
}

} // namespace
