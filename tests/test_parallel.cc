/**
 * @file
 * The determinism contract of the parallel runner (support/parallel.h)
 * and the harnesses built on it: a fuzz sweep or fault campaign run at
 * --jobs N must be byte-identical to the serial run — the worker pool
 * may only change wall-clock, never output. Also covers the CLI/RNG
 * hardening that rode along: strict numeric parsing (support/parse.h)
 * and the Xoshiro256 full-range overflow fix.
 */

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "check/fault_campaign.h"
#include "check/fuzz.h"
#include "support/parallel.h"
#include "support/parse.h"
#include "support/rng.h"
#include "workloads/guest_olden.h"

namespace
{

using namespace cheri;

// --- the scheduler itself -------------------------------------------

TEST(ParallelFor, OrderedResultsAcrossWorkers)
{
    constexpr std::size_t kCount = 300;
    std::vector<int> results =
        support::parallelMapOrdered<int>(
            kCount, 4, [](std::size_t index, unsigned) {
                return static_cast<int>(index * 3);
            });
    ASSERT_EQ(results.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(results[i], static_cast<int>(i * 3));
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce)
{
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> hits(kCount);
    support::parallelFor(kCount, 8,
                         [&](std::size_t index, unsigned worker) {
                             EXPECT_LT(worker, 8u);
                             hits[index].fetch_add(1);
                         });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialPathRunsInlineInOrder)
{
    std::vector<std::size_t> order;
    support::parallelFor(10, 1,
                         [&](std::size_t index, unsigned worker) {
                             EXPECT_EQ(worker, 0u);
                             order.push_back(index);
                         });
    std::vector<std::size_t> expected(10);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ParallelFor, HandlesEmptyAndOversubscribed)
{
    int runs = 0;
    support::parallelFor(0, 4,
                         [&](std::size_t, unsigned) { ++runs; });
    EXPECT_EQ(runs, 0);

    // More workers than jobs: the pool clamps, every job still runs.
    std::vector<std::atomic<int>> hits(3);
    support::parallelFor(3, 16,
                         [&](std::size_t index, unsigned) {
                             hits[index].fetch_add(1);
                         });
    for (auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, FirstExceptionPropagates)
{
    EXPECT_THROW(
        support::parallelFor(100, 4,
                             [](std::size_t index, unsigned) {
                                 if (index == 37)
                                     throw std::runtime_error("job 37");
                             }),
        std::runtime_error);
}

TEST(ParallelJobs, NormalizeClampsAndDefaults)
{
    EXPECT_GE(support::defaultJobs(), 1u);
    EXPECT_EQ(support::normalizeJobs(0), support::defaultJobs());
    EXPECT_EQ(support::normalizeJobs(3), 3u);
    EXPECT_EQ(support::normalizeJobs(1u << 30), support::kMaxJobs);
}

// --- strict CLI numeric parsing -------------------------------------

TEST(ParseU64, AcceptsWellFormedValues)
{
    std::uint64_t value = 0;
    EXPECT_TRUE(support::parseU64("123", value));
    EXPECT_EQ(value, 123u);
    EXPECT_TRUE(support::parseU64("0x40", value));
    EXPECT_EQ(value, 0x40u);
    EXPECT_TRUE(support::parseU64("0", value));
    EXPECT_EQ(value, 0u);
    EXPECT_TRUE(support::parseU64("ff", value, 16));
    EXPECT_EQ(value, 0xffu);
    EXPECT_TRUE(support::parseU64("18446744073709551615", value));
    EXPECT_EQ(value, ~0ULL);
}

TEST(ParseU64, RejectsGarbageInsteadOfReturningZero)
{
    std::uint64_t value = 42;
    EXPECT_FALSE(support::parseU64("banana", value));
    EXPECT_FALSE(support::parseU64("", value));
    EXPECT_FALSE(support::parseU64(nullptr, value));
    EXPECT_FALSE(support::parseU64("123abc", value));
    EXPECT_FALSE(support::parseU64("-5", value));
    EXPECT_FALSE(support::parseU64("+5", value));
    EXPECT_FALSE(support::parseU64(" 5", value));
    EXPECT_FALSE(support::parseU64("18446744073709551616", value));
    // A failed parse must leave the caller's value untouched.
    EXPECT_EQ(value, 42u);
}

// --- Xoshiro256 range-overflow regression ---------------------------

TEST(Rng, FullRangeDoesNotWrapToZeroBound)
{
    // hi - lo + 1 wraps to 0 here; the old code handed 0 to
    // nextBelow, whose modulo was undefined behaviour.
    support::Xoshiro256 rng(7);
    support::Xoshiro256 raw(7);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(rng.nextInRange(0, ~0ULL), raw.next());
}

TEST(Rng, DegenerateAndOffsetRanges)
{
    support::Xoshiro256 rng(11);
    EXPECT_EQ(rng.nextInRange(5, 5), 5u);
    EXPECT_EQ(rng.nextInRange(~0ULL, ~0ULL), ~0ULL);
    for (int i = 0; i < 256; ++i) {
        std::uint64_t v = rng.nextInRange(100, 107);
        EXPECT_GE(v, 100u);
        EXPECT_LE(v, 107u);
    }
    // Near-full range ending at 2^64 - 1 must stay in bounds too.
    for (int i = 0; i < 64; ++i)
        EXPECT_GE(rng.nextInRange(1, ~0ULL), 1u);
}

TEST(Rng, UnchangedSequenceForNormalRanges)
{
    // The wrap guard must not perturb existing seeded streams: every
    // corpus seed and campaign plan depends on them.
    support::Xoshiro256 rng(123);
    support::Xoshiro256 manual(123);
    for (int i = 0; i < 128; ++i)
        EXPECT_EQ(rng.nextInRange(10, 20),
                  10 + manual.next() % 11);
}

TEST(RngDeathTest, PreconditionViolationsPanic)
{
    support::Xoshiro256 rng(1);
    EXPECT_DEATH(rng.nextBelow(0), "zero bound");
    EXPECT_DEATH(rng.nextInRange(3, 2), "lo > hi");
}

// --- fuzz sweep: parallel == serial, byte for byte ------------------

TEST(ParallelFuzz, SweepIsByteIdenticalAcrossJobCounts)
{
    check::FuzzCampaignConfig config;
    config.seeds = 12;
    config.start_seed = 1;
    config.jobs = 1;
    check::FuzzCampaignResult serial = check::runFuzzSeeds(config);

    config.jobs = 4;
    check::FuzzCampaignResult parallel = check::runFuzzSeeds(config);

    EXPECT_EQ(serial.diverged_count, parallel.diverged_count);
    EXPECT_EQ(serial.text(), parallel.text());
}

TEST(ParallelFuzz, ShrunkReproducersMatchSerialShrinking)
{
    // The armed tag-clear fault makes seeds diverge, so the parallel
    // sweep exercises shrinking + reproducer dumping on the workers.
    check::FuzzCampaignConfig config;
    config.seeds = 4;
    config.start_seed = 1;
    config.suppress_tag_clear = true;
    config.shrink = true;
    config.jobs = 1;
    check::FuzzCampaignResult serial = check::runFuzzSeeds(config);
    ASSERT_GT(serial.diverged_count, 0u)
        << "tag-clear fault no longer causes any divergence";

    config.jobs = 4;
    check::FuzzCampaignResult parallel = check::runFuzzSeeds(config);
    EXPECT_EQ(serial.text(), parallel.text());
}

// --- fault campaign: parallel == serial, byte for byte --------------

TEST(ParallelCampaign, ReportIsByteIdenticalAcrossJobCounts)
{
    workloads::GuestProgram treeadd = workloads::guestTreeadd(5, 2);
    workloads::GuestProgram bisort = workloads::guestBisort(48);
    std::vector<check::CampaignGuest> guests = {
        {"treeadd",
         [treeadd](core::Machine &machine) {
             workloads::loadGuestProgram(machine, treeadd);
         }},
        {"bisort",
         [bisort](core::Machine &machine) {
             workloads::loadGuestProgram(machine, bisort);
         }},
    };

    check::CampaignConfig config;
    config.trials = 8;
    config.seed = 42;
    config.jobs = 1;
    check::CampaignReport serial = check::runCampaign(config, guests);

    config.jobs = 4;
    check::CampaignReport parallel =
        check::runCampaign(config, guests);

    EXPECT_EQ(serial.toJson(), parallel.toJson());
    ASSERT_EQ(parallel.guests.size(), 2u);
    for (const check::GuestReport &guest : parallel.guests) {
        EXPECT_FALSE(guest.restore_perturbed);
        EXPECT_EQ(guest.trials.size(), config.trials);
    }
}

} // namespace
