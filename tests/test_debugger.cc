/**
 * @file
 * Tests for the host-side debugger: breakpoints fire before the
 * target instruction, runs resume past them, capability-register
 * watches catch derivations, and the recent-PC ring records history.
 */

#include <gtest/gtest.h>

#include "core/debugger.h"
#include "core/machine.h"
#include "isa/assembler.h"

namespace cheri::core
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

constexpr std::uint64_t kCodeBase = 0x10000;

struct Fixture
{
    Machine machine;

    explicit Fixture(Assembler &assembler)
    {
        machine.loadProgram(kCodeBase, assembler.finish());
        machine.reset(kCodeBase);
    }
};

TEST(Debugger, BreakpointStopsBeforeInstruction)
{
    Assembler a(kCodeBase);
    a.li(t0, 1);  // word 0
    a.li(t1, 2);  // word 1
    a.li(t2, 3);  // word 2 <- breakpoint
    a.break_();

    Fixture fixture(a);
    Debugger debugger(fixture.machine.cpu());
    debugger.setBreakpoint(kCodeBase + 8);

    DebugRunResult result = debugger.run();
    EXPECT_EQ(result.stop, DebugStop::kBreakpoint);
    EXPECT_EQ(result.stop_pc, kCodeBase + 8);
    EXPECT_EQ(fixture.machine.cpu().gpr(t1), 2u);
    EXPECT_EQ(fixture.machine.cpu().gpr(t2), 0u); // not yet executed
}

TEST(Debugger, ResumeRunsPastBreakpoint)
{
    Assembler a(kCodeBase);
    a.li(t0, 1);
    a.li(t1, 2);
    a.break_();

    Fixture fixture(a);
    Debugger debugger(fixture.machine.cpu());
    debugger.setBreakpoint(kCodeBase + 4);

    DebugRunResult first = debugger.run();
    ASSERT_EQ(first.stop, DebugStop::kBreakpoint);

    DebugRunResult second = debugger.run();
    EXPECT_EQ(second.stop, DebugStop::kCpuStopped);
    EXPECT_EQ(second.cpu.reason, StopReason::kBreak);
    EXPECT_EQ(fixture.machine.cpu().gpr(t1), 2u);
}

TEST(Debugger, SingleStep)
{
    Assembler a(kCodeBase);
    a.li(t0, 1);
    a.li(t1, 2);
    a.break_();

    Fixture fixture(a);
    Debugger debugger(fixture.machine.cpu());
    debugger.step();
    EXPECT_EQ(fixture.machine.cpu().gpr(t0), 1u);
    EXPECT_EQ(fixture.machine.cpu().gpr(t1), 0u);
    debugger.step();
    EXPECT_EQ(fixture.machine.cpu().gpr(t1), 2u);
}

TEST(Debugger, CapWatchFiresOnDerivation)
{
    Assembler a(kCodeBase);
    a.li(t0, 0x100);
    a.li(t1, 0x200);
    a.cincbase(5, 0, t0); // <- changes c5
    a.li(t2, 3);
    a.break_();

    Fixture fixture(a);
    Debugger debugger(fixture.machine.cpu());
    debugger.watchCapReg(5);

    DebugRunResult result = debugger.run();
    EXPECT_EQ(result.stop, DebugStop::kCapWrite);
    EXPECT_EQ(result.cap_reg, 5u);
    EXPECT_EQ(result.stop_pc, kCodeBase + 8);
    EXPECT_EQ(fixture.machine.cpu().gpr(t2), 0u); // stopped promptly
}

TEST(Debugger, RecentPcsRecordHistory)
{
    Assembler a(kCodeBase);
    for (int i = 0; i < 5; ++i)
        a.nop();
    a.break_();

    Fixture fixture(a);
    Debugger debugger(fixture.machine.cpu());
    debugger.run();
    ASSERT_GE(debugger.recentPcs().size(), 6u);
    EXPECT_EQ(debugger.recentPcs().front(), kCodeBase);
    EXPECT_EQ(debugger.recentPcs().back(), kCodeBase + 20);
}

TEST(Debugger, StopsWhenCpuTraps)
{
    Assembler a(kCodeBase);
    a.li64(t0, 0x7000000);
    a.ld(t1, t0, 0); // unmapped
    a.break_();

    Fixture fixture(a);
    Debugger debugger(fixture.machine.cpu());
    DebugRunResult result = debugger.run();
    EXPECT_EQ(result.stop, DebugStop::kCpuStopped);
    EXPECT_EQ(result.cpu.reason, StopReason::kTrap);
}

} // namespace
} // namespace cheri::core
