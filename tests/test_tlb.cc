/**
 * @file
 * Unit tests for the page table and TLB, including the CHERI PTE
 * extension bits that gate capability loads and stores.
 */

#include <gtest/gtest.h>

#include "tlb/page_table.h"
#include "tlb/tlb.h"

namespace cheri::tlb
{
namespace
{

PteFlags
flagsAll()
{
    return PteFlags{};
}

TEST(PageTable, MapLookupUnmap)
{
    PageTable table;
    EXPECT_FALSE(table.lookup(5).has_value());
    table.map(5, 100);
    auto pte = table.lookup(5);
    ASSERT_TRUE(pte.has_value());
    EXPECT_EQ(pte->pfn, 100u);
    table.unmap(5);
    EXPECT_FALSE(table.lookup(5).has_value());
}

TEST(PageTable, ProtectUpdatesFlags)
{
    PageTable table;
    table.map(1, 2);
    PteFlags flags;
    flags.writable = false;
    EXPECT_TRUE(table.protect(1, flags));
    EXPECT_FALSE(table.lookup(1)->flags.writable);
    EXPECT_FALSE(table.protect(9, flags));
}

TEST(Tlb, TranslatesThroughPageTable)
{
    PageTable table;
    table.map(0x10, 0x20, flagsAll());
    Tlb tlb(table);
    TlbResult result =
        tlb.translate(0x10 * kPageBytes + 0x123, Access::kLoad);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.paddr, 0x20 * kPageBytes + 0x123);
}

TEST(Tlb, MissThenHit)
{
    PageTable table;
    table.map(1, 1, flagsAll());
    Tlb tlb(table);

    TlbResult first = tlb.translate(kPageBytes, Access::kLoad);
    EXPECT_TRUE(first.ok());
    EXPECT_GT(first.penalty_cycles, 0u);
    EXPECT_EQ(tlb.stats().get("tlb.misses"), 1u);

    TlbResult second = tlb.translate(kPageBytes + 8, Access::kLoad);
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.penalty_cycles, 0u);
    EXPECT_EQ(tlb.stats().get("tlb.hits"), 1u);
}

TEST(Tlb, UnmappedFaults)
{
    PageTable table;
    Tlb tlb(table);
    TlbResult result = tlb.translate(0x5000, Access::kLoad);
    EXPECT_EQ(result.fault, TlbFault::kNoMapping);
}

TEST(Tlb, PermissionFaults)
{
    PageTable table;
    PteFlags read_only;
    read_only.writable = false;
    read_only.executable = false;
    table.map(0, 0, read_only);
    Tlb tlb(table);

    EXPECT_TRUE(tlb.translate(0, Access::kLoad).ok());
    EXPECT_EQ(tlb.translate(4, Access::kStore).fault,
              TlbFault::kNotWritable);
    EXPECT_EQ(tlb.translate(8, Access::kFetch).fault,
              TlbFault::kNotExecutable);
}

TEST(Tlb, CapabilityPteBitsGateCapAccess)
{
    PageTable table;
    PteFlags no_caps;
    no_caps.cap_load = false;
    no_caps.cap_store = false;
    table.map(0, 0, no_caps);
    Tlb tlb(table);

    // Ordinary data access is unaffected (Section 6.1: shared memory
    // that cannot act as a capability channel).
    EXPECT_TRUE(tlb.translate(0, Access::kLoad).ok());
    EXPECT_TRUE(tlb.translate(0, Access::kStore).ok());
    EXPECT_EQ(tlb.translate(0, Access::kCapLoad).fault,
              TlbFault::kCapLoadDenied);
    EXPECT_EQ(tlb.translate(0, Access::kCapStore).fault,
              TlbFault::kCapStoreDenied);
}

TEST(Tlb, CapacityEviction)
{
    PageTable table;
    for (std::uint64_t vpn = 0; vpn < 10; ++vpn)
        table.map(vpn, vpn, flagsAll());
    Tlb tlb(table, TlbConfig{4, 30});

    // Touch 5 pages; with 4 entries the first one is evicted.
    for (std::uint64_t vpn = 0; vpn < 5; ++vpn)
        tlb.translate(vpn * kPageBytes, Access::kLoad);
    EXPECT_EQ(tlb.stats().get("tlb.misses"), 5u);

    TlbResult result = tlb.translate(0, Access::kLoad);
    EXPECT_TRUE(result.ok());
    EXPECT_GT(result.penalty_cycles, 0u); // refilled again
    EXPECT_EQ(tlb.stats().get("tlb.misses"), 6u);
}

TEST(Tlb, DefaultCoversOneMegabyte)
{
    // 256 entries x 4 KB pages = 1 MB, the Figure 5 knee.
    TlbConfig config;
    EXPECT_EQ(config.entries * kPageBytes, 1024u * 1024u);
}

TEST(Tlb, FlushDropsEntries)
{
    PageTable table;
    table.map(0, 0, flagsAll());
    Tlb tlb(table);
    tlb.translate(0, Access::kLoad);
    tlb.flush();
    TlbResult result = tlb.translate(0, Access::kLoad);
    EXPECT_GT(result.penalty_cycles, 0u);
}

TEST(Tlb, FlushPageIsSelective)
{
    PageTable table;
    table.map(0, 0, flagsAll());
    table.map(1, 1, flagsAll());
    Tlb tlb(table);
    tlb.translate(0, Access::kLoad);
    tlb.translate(kPageBytes, Access::kLoad);

    tlb.flushPage(0);
    EXPECT_EQ(tlb.translate(kPageBytes, Access::kLoad).penalty_cycles,
              0u);
    EXPECT_GT(tlb.translate(0, Access::kLoad).penalty_cycles, 0u);
}

TEST(Tlb, RevocationViaUnmapTakesEffectAfterFlush)
{
    // The OS revocation path (Section 6.1): unmap the page, flush the
    // TLB; stale capabilities then fault on use.
    PageTable table;
    table.map(0, 0, flagsAll());
    Tlb tlb(table);
    EXPECT_TRUE(tlb.translate(0, Access::kLoad).ok());

    table.unmap(0);
    tlb.flush();
    EXPECT_EQ(tlb.translate(0, Access::kLoad).fault,
              TlbFault::kNoMapping);
}

TEST(Tlb, SetTableSwitchesAddressSpace)
{
    PageTable a, b;
    a.map(0, 1, flagsAll());
    b.map(0, 2, flagsAll());
    Tlb tlb(a);
    EXPECT_EQ(tlb.translate(0, Access::kLoad).paddr, kPageBytes);
    tlb.setTable(b);
    EXPECT_EQ(tlb.translate(0, Access::kLoad).paddr, 2 * kPageBytes);
}

} // namespace
} // namespace cheri::tlb
