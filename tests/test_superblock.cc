/**
 * @file
 * Superblock-tier hazards and invariance. The tier is a host
 * accelerator: chained straight-line blocks with hoisted guards must
 * be invisible to guest semantics and to simulated timing.
 *
 *  - Self-modifying code landing mid-superblock: a store that
 *    overwrites a later instruction of the very block it executes
 *    from must abort the block before the stale slot dispatches, and
 *    the next entry must fail the guard and re-mint fresh bytes.
 *  - Snapshot restore: restoreSnapshot drops every minted block
 *    (never captures one), and the counter-invisible re-mint replays
 *    the identical tail.
 *  - Timing invariance: every guest Olden kernel retires identical
 *    instruction/cycle counts and identical memory/TLB/CPU counters
 *    with the tier on and off — including under a deliberately tiny
 *    accelerator geometry that forces eviction and re-minting.
 */

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/machine.h"
#include "isa/assembler.h"
#include "support/stats.h"
#include "workloads/guest_olden.h"

namespace
{

using namespace cheri;
using isa::Assembler;
namespace reg = isa::reg;

constexpr std::uint64_t kCodeBase = 0x10000;

core::Machine
makeMachine(core::CpuAccelConfig accel = {})
{
    core::MachineConfig config;
    config.dram_bytes = 8 * 1024 * 1024;
    config.accel = accel;
    return core::Machine(config);
}

/** Every observable simulated counter in the machine. */
std::vector<std::pair<std::string, std::uint64_t>>
allCounters(core::Machine &machine)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.emplace_back("instructions",
                     machine.cpu().totalInstructions());
    out.emplace_back("cycles", machine.cpu().totalCycles());
    for (const auto &entry : machine.cpu().stats().all())
        out.push_back(entry);
    support::StatSet memory_stats = machine.memory().collectStats();
    for (const auto &entry : memory_stats.all())
        out.push_back(entry);
    for (const auto &entry : machine.tlb().stats().all())
        out.push_back(entry);
    for (const auto &entry : machine.tagManager().stats().all())
        out.push_back(entry);
    return out;
}

/*
 * A loop whose store patches an instruction BELOW it in the SAME
 * block execution. Iteration 1 runs per-instruction (the loop head
 * is not yet a leader) and stores the site's existing bytes, so
 * nothing changes semantically; the taken back-branch makes the head
 * a mint leader, and iteration 2 enters a freshly minted block whose
 * slots still encode `daddiu v0, zero, 7`. The store this time
 * writes the 99-encoding — the tier must abort the block after the
 * store retires, before the stale predecoded slot behind it can
 * dispatch. s0 accumulates 7 + 99 = 106 iff the fresh bytes ran;
 * a stale mid-block slot would leave 7 + 7 = 14. Layout is assembled
 * to a fixpoint because the li64 length depends on the patch address.
 */
struct MidBlockSmc
{
    std::vector<std::uint32_t> text;
    static constexpr std::uint64_t kExpected = 106; // 7 + 99
};

MidBlockSmc
makeMidBlockSmc()
{
    std::uint32_t old_word, new_word;
    {
        Assembler enc(0);
        enc.daddiu(reg::v0, reg::zero, 7);
        old_word = enc.finish()[0];
    }
    {
        Assembler enc(0);
        enc.daddiu(reg::v0, reg::zero, 99);
        new_word = enc.finish()[0];
    }

    std::uint64_t patch_addr = kCodeBase;
    for (int iter = 0; iter < 8; ++iter) {
        Assembler a(kCodeBase);
        auto loop = a.newLabel();
        a.li64(reg::t1, patch_addr);
        a.li(reg::t0, static_cast<std::int32_t>(old_word));
        a.li(reg::t2, static_cast<std::int32_t>(new_word));
        a.li(reg::s1, 2);
        a.move(reg::s0, reg::zero);
        a.bind(loop);
        a.sw(reg::t0, reg::t1, 0); // iter 1: same bytes; iter 2: patch
        a.move(reg::t0, reg::t2);  // next pass stores the 99-encoding
        std::uint64_t actual = a.here();
        a.daddiu(reg::v0, reg::zero, 7); // the patch site
        a.daddu(reg::s0, reg::s0, reg::v0);
        a.daddiu(reg::s1, reg::s1, -1);
        a.bgtz(reg::s1, loop);
        a.nop();
        a.move(reg::v0, reg::s0);
        a.break_();

        MidBlockSmc prog;
        prog.text = a.finish();
        if (actual == patch_addr)
            return prog;
        patch_addr = actual;
    }
    ADD_FAILURE() << "mid-block SMC layout did not converge";
    return {};
}

std::uint64_t
runMidBlockSmc(bool superblocks, core::SuperblockStats *stats = nullptr)
{
    MidBlockSmc prog = makeMidBlockSmc();
    core::Machine machine = makeMachine();
    machine.cpu().setSuperblocksEnabled(superblocks);
    machine.loadProgram(kCodeBase, prog.text);
    machine.reset(kCodeBase);
    core::RunResult result = machine.cpu().run(10'000);
    EXPECT_EQ(result.reason, core::StopReason::kBreak);
    if (stats != nullptr)
        *stats = machine.cpu().superblockStats();
    return machine.cpu().gpr(reg::v0);
}

TEST(SuperblockSmc, StoreIntoOwnBlockExecutesFreshBytes)
{
    core::SuperblockStats stats;
    EXPECT_EQ(runMidBlockSmc(true, &stats), MidBlockSmc::kExpected);
    // The run actually went through the tier and the covered store
    // aborted a live block.
    EXPECT_GT(stats.entered, 0u);
    EXPECT_GT(stats.invalidated, 0u);
}

TEST(SuperblockSmc, StoreIntoOwnBlockExecutesFreshBytesTierOff)
{
    EXPECT_EQ(runMidBlockSmc(false), MidBlockSmc::kExpected);
}

/**
 * The full stale-block life cycle, one event per loop iteration: a
 * six-pass loop whose body is patched exactly once, on the third
 * pass. Pass 1 warms the decode; pass 2 mints the block; pass 3
 * patches the site from INSIDE the running block (SMC abort); pass 4
 * finds the stale block, fails the entry guard, and re-warms; pass 5
 * re-mints with the fresh bytes; pass 6 re-enters the new block. The
 * accumulated sum proves the fresh bytes ran from the patch on:
 * 3 x 7 + 3 x 99 = 318.
 */
TEST(SuperblockSmc, PatchedBlockRemintsBeforeNextEntry)
{
    std::uint32_t new_word;
    {
        Assembler enc(0);
        enc.daddiu(reg::v0, reg::zero, 99);
        new_word = enc.finish()[0];
    }
    std::uint64_t patch_addr = kCodeBase;
    std::vector<std::uint32_t> text;
    for (int iter = 0; iter < 8; ++iter) {
        Assembler a(kCodeBase);
        auto loop = a.newLabel();
        auto skip = a.newLabel();
        a.li64(reg::t1, patch_addr);
        a.li(reg::t0, static_cast<std::int32_t>(new_word));
        a.li(reg::s1, 6);
        a.li(reg::t3, 4); // patch when s1 == 4 (the third pass)
        a.move(reg::s0, reg::zero);
        a.bind(loop);
        std::uint64_t actual = a.here();
        a.daddiu(reg::v0, reg::zero, 7); // the patch site
        a.daddu(reg::s0, reg::s0, reg::v0);
        a.bne(reg::s1, reg::t3, skip);
        a.nop();
        a.sw(reg::t0, reg::t1, 0); // one-time patch, mid-block
        a.bind(skip);
        a.daddiu(reg::s1, reg::s1, -1);
        a.bgtz(reg::s1, loop);
        a.nop();
        a.move(reg::v0, reg::s0);
        a.break_();
        text = a.finish();
        if (actual == patch_addr)
            break;
        patch_addr = actual;
        text.clear();
    }
    ASSERT_FALSE(text.empty()) << "SMC loop layout did not converge";

    for (bool superblocks : {true, false}) {
        core::Machine machine = makeMachine();
        machine.cpu().setSuperblocksEnabled(superblocks);
        machine.loadProgram(kCodeBase, text);
        machine.reset(kCodeBase);
        core::RunResult result = machine.cpu().run(10'000);
        ASSERT_EQ(result.reason, core::StopReason::kBreak);
        EXPECT_EQ(machine.cpu().gpr(reg::v0), 3u * 7u + 3u * 99u);
        if (!superblocks)
            continue;
        const core::SuperblockStats &stats =
            machine.cpu().superblockStats();
        EXPECT_GT(stats.entered, 0u);
        EXPECT_GT(stats.invalidated, 0u); // the mid-block abort
        EXPECT_GT(stats.guard_fails, 0u); // the stale next entry
        EXPECT_GT(stats.minted, 1u);      // the fresh re-mint
    }
}

workloads::GuestProgram
kernelByName(const std::string &name)
{
    if (name == "treeadd")
        return workloads::guestTreeadd(8, 2);
    if (name == "bisort")
        return workloads::guestBisort(64);
    if (name == "mst")
        return workloads::guestMst(12);
    return workloads::guestEm3d(10, 3, 2);
}

struct ModeRun
{
    core::RunResult result;
    std::uint64_t checksum = 0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    core::SuperblockStats sb;
};

ModeRun
runKernel(const workloads::GuestProgram &prog, bool superblocks,
          core::CpuAccelConfig accel = {})
{
    core::Machine machine = makeMachine(accel);
    machine.cpu().setSuperblocksEnabled(superblocks);
    workloads::loadGuestProgram(machine, prog);
    ModeRun run;
    run.result = workloads::runGuestProgram(machine, prog);
    run.checksum = machine.cpu().gpr(reg::v0);
    run.counters = allCounters(machine);
    run.sb = machine.cpu().superblockStats();
    return run;
}

class SuperblockTimingInvariance
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuperblockTimingInvariance, IdenticalAcrossModes)
{
    workloads::GuestProgram prog = kernelByName(GetParam());
    ModeRun sb = runKernel(prog, true);
    ModeRun base = runKernel(prog, false);

    EXPECT_EQ(sb.checksum, prog.expected_checksum);
    EXPECT_EQ(sb.checksum, base.checksum);
    EXPECT_EQ(sb.result.instructions, base.result.instructions);
    EXPECT_EQ(sb.result.cycles, base.result.cycles);
    // Full counter-by-counter equality: one extra or missing cache/
    // TLB/tag event anywhere would show up here.
    EXPECT_EQ(sb.counters, base.counters);
    // The tier actually carried the run...
    EXPECT_GT(sb.sb.entered, 0u);
    EXPECT_GT(sb.sb.instructions, sb.result.instructions / 2);
    // ...and was fully out of the picture when disabled.
    EXPECT_EQ(base.sb.entered, 0u);
    EXPECT_EQ(base.sb.instructions, 0u);
}

/**
 * Tiny accelerator geometry: 4 decode-cache lines (128 bytes of code
 * coverage), 4 superblock entries, 4-slot blocks. Every kernel is
 * larger than that, so blocks are continually evicted, guard-failed,
 * and re-minted — and none of it may leak into simulated state.
 */
TEST_P(SuperblockTimingInvariance, TinyGeometryIdenticalToDefault)
{
    workloads::GuestProgram prog = kernelByName(GetParam());
    core::CpuAccelConfig tiny;
    tiny.decode_cache_lines = 4;
    tiny.superblock_entries = 4;
    tiny.superblock_max_slots = 4;
    ModeRun small = runKernel(prog, true, tiny);
    ModeRun big = runKernel(prog, true);

    EXPECT_EQ(small.checksum, prog.expected_checksum);
    EXPECT_EQ(small.result.instructions, big.result.instructions);
    EXPECT_EQ(small.result.cycles, big.result.cycles);
    EXPECT_EQ(small.counters, big.counters);
    // The squeeze was real: conflicting blocks were evicted and
    // re-minted far more often than under the default geometry.
    // (Evictions surface as cold re-mints, not guard failures —
    // those are covered deterministically by SuperblockSmc.)
    EXPECT_GT(small.sb.minted, big.sb.minted);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SuperblockTimingInvariance,
                         ::testing::Values("treeadd", "bisort", "mst",
                                           "em3d"),
                         [](const auto &info) { return info.param; });

/**
 * Snapshot restore drops all superblock state: the restored machine
 * re-mints from scratch and replays the identical tail, bit for bit
 * — the PR 4 memo proof extended to the tier.
 */
TEST(SuperblockSnapshot, RestoreLeavesNoSuperblockState)
{
    workloads::GuestProgram prog = workloads::guestTreeadd(8, 2);

    // Uninterrupted baseline, tier on.
    core::Machine baseline = makeMachine();
    baseline.cpu().setSuperblocksEnabled(true);
    workloads::loadGuestProgram(baseline, prog);
    core::RunResult clean = baseline.cpu().run(core::RunLimits{});
    ASSERT_EQ(clean.reason, core::StopReason::kBreak);
    ASSERT_EQ(baseline.cpu().gpr(reg::v0), prog.expected_checksum);
    auto expected = allCounters(baseline);
    std::uint64_t clean_instructions =
        baseline.cpu().totalInstructions();

    // Snapshot mid-kernel — mid-superblock-working-set by
    // construction, since the tier covers essentially every retired
    // instruction of the kernel.
    core::Machine machine = makeMachine();
    machine.cpu().setSuperblocksEnabled(true);
    workloads::loadGuestProgram(machine, prog);
    core::RunLimits half;
    half.max_instructions = clean_instructions / 2;
    core::RunResult mid = machine.cpu().run(half);
    ASSERT_EQ(mid.reason, core::StopReason::kInstLimit);
    ASSERT_GT(machine.cpu().superblockStats().entered, 0u);
    core::Machine::Snapshot snapshot = machine.saveSnapshot();

    // Taking the snapshot must not perturb the continuation.
    core::RunResult rest = machine.cpu().run(core::RunLimits{});
    ASSERT_EQ(rest.reason, core::StopReason::kBreak);
    EXPECT_EQ(allCounters(machine), expected);

    // Restoring must replay the identical tail, twice, re-minting
    // every block it needs (counter-invisibly).
    for (int round = 0; round < 2; ++round) {
        machine.restoreSnapshot(snapshot);
        EXPECT_EQ(machine.cpu().totalInstructions(),
                  half.max_instructions);
        std::uint64_t minted_before =
            machine.cpu().superblockStats().minted;
        core::RunResult replay = machine.cpu().run(core::RunLimits{});
        ASSERT_EQ(replay.reason, core::StopReason::kBreak);
        EXPECT_EQ(allCounters(machine), expected) << "round " << round;
        EXPECT_EQ(machine.cpu().gpr(reg::v0), prog.expected_checksum);
        // The tail re-minted blocks from scratch: restore left none.
        EXPECT_GT(machine.cpu().superblockStats().minted,
                  minted_before)
            << "round " << round;
    }
}

} // namespace
