/**
 * @file
 * Unit tests for the ISA layer: encoder/decoder round trips for every
 * instruction in Table 1 and the MIPS subset, assembler label fixups,
 * and disassembler sanity.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/decoder.h"
#include "isa/disasm.h"
#include "isa/encoder.h"
#include <set>

#include "support/rng.h"

namespace cheri::isa
{
namespace
{

using namespace reg;

TEST(Decoder, NopIsSllZero)
{
    Instruction inst = decode(0);
    EXPECT_EQ(inst.op, Opcode::kSll);
    EXPECT_EQ(inst.rd, 0);
}

TEST(Decoder, AluRegisterForms)
{
    Instruction inst = decode(encode::alu(Opcode::kDaddu, 3, 4, 5));
    EXPECT_EQ(inst.op, Opcode::kDaddu);
    EXPECT_EQ(inst.rd, 3);
    EXPECT_EQ(inst.rs, 4);
    EXPECT_EQ(inst.rt, 5);
}

TEST(Decoder, ShiftAmount)
{
    Instruction inst = decode(encode::alu(Opcode::kDsll, 2, 0, 7, 13));
    EXPECT_EQ(inst.op, Opcode::kDsll);
    EXPECT_EQ(inst.rt, 7);
    EXPECT_EQ(inst.sa, 13);
}

TEST(Decoder, ITypeSignExtension)
{
    Instruction inst = decode(encode::iType(kMajDaddiu, 4, 5, -100));
    EXPECT_EQ(inst.op, Opcode::kDaddiu);
    EXPECT_EQ(inst.imm, -100);
    EXPECT_EQ(inst.rs, 4);
    EXPECT_EQ(inst.rt, 5);
}

TEST(Decoder, MemoryForms)
{
    Instruction inst = decode(encode::iType(kMajLd, sp, t0, 16));
    EXPECT_EQ(inst.op, Opcode::kLd);
    EXPECT_EQ(inst.rs, sp);
    EXPECT_EQ(inst.rt, t0);
    EXPECT_EQ(inst.imm, 16);
}

TEST(Decoder, Cop2RegisterOps)
{
    Instruction inst = decode(encode::cop2(kC2IncBase, 1, 2, 3));
    EXPECT_EQ(inst.op, Opcode::kCIncBase);
    EXPECT_EQ(inst.cd, 1);
    EXPECT_EQ(inst.cb, 2);
    EXPECT_EQ(inst.rt, 3);
}

TEST(Decoder, CapBranches)
{
    Instruction inst = decode(encode::capBranch(true, 5, -4));
    EXPECT_EQ(inst.op, Opcode::kCBts);
    EXPECT_EQ(inst.cb, 5);
    EXPECT_EQ(inst.imm, -4);

    inst = decode(encode::capBranch(false, 6, 100));
    EXPECT_EQ(inst.op, Opcode::kCBtu);
    EXPECT_EQ(inst.imm, 100);
}

TEST(Decoder, CapMemScaledImmediates)
{
    // Immediate scaled by access size.
    Instruction inst =
        decode(encode::capMem(true, false, 3, 7, 8, 9, -64));
    EXPECT_EQ(inst.op, Opcode::kCld);
    EXPECT_EQ(inst.rd, 7);
    EXPECT_EQ(inst.cb, 8);
    EXPECT_EQ(inst.rt, 9);
    EXPECT_EQ(inst.imm, -64);

    inst = decode(encode::capMem(true, true, 0, 1, 2, 3, 100));
    EXPECT_EQ(inst.op, Opcode::kClbu);
    EXPECT_EQ(inst.imm, 100);
}

TEST(Decoder, CapCapMem)
{
    Instruction inst = decode(encode::capCapMem(true, 4, 5, 6, -96));
    EXPECT_EQ(inst.op, Opcode::kCLc);
    EXPECT_EQ(inst.cd, 4);
    EXPECT_EQ(inst.cb, 5);
    EXPECT_EQ(inst.rt, 6);
    EXPECT_EQ(inst.imm, -96);

    inst = decode(encode::capCapMem(false, 1, 2, 0, 32 * 1023));
    EXPECT_EQ(inst.op, Opcode::kCSc);
    EXPECT_EQ(inst.imm, 32 * 1023);
}

TEST(Decoder, UnknownEncodingsAreInvalid)
{
    EXPECT_EQ(decode(0x1fu << 26).op, Opcode::kInvalid); // unused major
    EXPECT_EQ(decode((0x12u << 26) | (31u << 21)).op, Opcode::kInvalid);
    EXPECT_EQ(decode(0x01u).op, Opcode::kInvalid); // unused funct
}

/** Every Table 1 instruction must decode back from its encoding. */
TEST(Decoder, Table1Complete)
{
    struct Case
    {
        std::uint32_t word;
        Opcode expected;
    };
    const Case cases[] = {
        {encode::cop2(kC2GetBase, 1, 2, 0), Opcode::kCGetBase},
        {encode::cop2(kC2GetLen, 1, 2, 0), Opcode::kCGetLen},
        {encode::cop2(kC2GetTag, 1, 2, 0), Opcode::kCGetTag},
        {encode::cop2(kC2GetPerm, 1, 2, 0), Opcode::kCGetPerm},
        {encode::cop2(kC2GetPcc, 1, 2, 0), Opcode::kCGetPcc},
        {encode::cop2(kC2IncBase, 1, 2, 3), Opcode::kCIncBase},
        {encode::cop2(kC2SetLen, 1, 2, 3), Opcode::kCSetLen},
        {encode::cop2(kC2ClearTag, 1, 2, 0), Opcode::kCClearTag},
        {encode::cop2(kC2AndPerm, 1, 2, 3), Opcode::kCAndPerm},
        {encode::cop2(kC2ToPtr, 1, 2, 3), Opcode::kCToPtr},
        {encode::cop2(kC2FromPtr, 1, 2, 3), Opcode::kCFromPtr},
        {encode::capBranch(false, 1, 0), Opcode::kCBtu},
        {encode::capBranch(true, 1, 0), Opcode::kCBts},
        {encode::capCapMem(true, 1, 2, 3, 0), Opcode::kCLc},
        {encode::capCapMem(false, 1, 2, 3, 0), Opcode::kCSc},
        {encode::capMem(true, false, 0, 1, 2, 3, 0), Opcode::kClb},
        {encode::capMem(true, true, 0, 1, 2, 3, 0), Opcode::kClbu},
        {encode::capMem(true, false, 1, 1, 2, 3, 0), Opcode::kClh},
        {encode::capMem(true, true, 1, 1, 2, 3, 0), Opcode::kClhu},
        {encode::capMem(true, false, 2, 1, 2, 3, 0), Opcode::kClw},
        {encode::capMem(true, true, 2, 1, 2, 3, 0), Opcode::kClwu},
        {encode::capMem(true, false, 3, 1, 2, 3, 0), Opcode::kCld},
        {encode::capMem(false, false, 0, 1, 2, 3, 0), Opcode::kCsb},
        {encode::capMem(false, false, 1, 1, 2, 3, 0), Opcode::kCsh},
        {encode::capMem(false, false, 2, 1, 2, 3, 0), Opcode::kCsw},
        {encode::capMem(false, false, 3, 1, 2, 3, 0), Opcode::kCsd},
        {encode::cop2(kC2Lld, 1, 2, 3), Opcode::kClld},
        {encode::cop2(kC2Scd, 1, 2, 3), Opcode::kCscd},
        {encode::cop2(kC2Jr, 1, 2, 0), Opcode::kCJr},
        {encode::cop2(kC2Jalr, 1, 2, 3), Opcode::kCJalr},
    };
    for (const Case &c : cases)
        EXPECT_EQ(decode(c.word).op, c.expected)
            << disassemble(decode(c.word));
}

TEST(Assembler, SimpleSequence)
{
    Assembler a;
    a.li(t0, 5);
    a.daddiu(t0, t0, 1);
    std::vector<std::uint32_t> code = a.finish();
    ASSERT_EQ(code.size(), 2u);
    EXPECT_EQ(decode(code[0]).op, Opcode::kDaddiu);
    EXPECT_EQ(decode(code[1]).imm, 1);
}

TEST(Assembler, BackwardBranchOffset)
{
    Assembler a;
    auto loop = a.newLabel();
    a.bind(loop);
    a.nop();
    a.bne(t0, zero, loop); // branch at word 1, target word 0
    a.nop();
    std::vector<std::uint32_t> code = a.finish();
    Instruction branch = decode(code[1]);
    // Offset relative to the delay slot: 0 - 2 = -2 words.
    EXPECT_EQ(branch.imm, -2);
}

TEST(Assembler, ForwardBranchOffset)
{
    Assembler a;
    auto done = a.newLabel();
    a.beq(zero, zero, done); // word 0
    a.nop();                 // word 1 (delay)
    a.nop();                 // word 2
    a.bind(done);            // word 3
    a.nop();
    std::vector<std::uint32_t> code = a.finish();
    EXPECT_EQ(decode(code[0]).imm, 2); // 3 - (0+1)
}

TEST(Assembler, JumpTargetAbsolute)
{
    Assembler a(0x10000);
    auto target = a.newLabel();
    a.j(target);
    a.nop();
    a.bind(target);
    a.nop();
    std::vector<std::uint32_t> code = a.finish();
    Instruction jump = decode(code[0]);
    EXPECT_EQ(jump.target << 2, 0x10008u);
}

TEST(Assembler, Li64RoundTrip)
{
    // Check the emitted sequence loads the constant by interpreting
    // it symbolically.
    const std::uint64_t kValue = 0xdeadbeefcafe1234ULL;
    Assembler a;
    a.li64(t0, kValue);
    std::vector<std::uint32_t> code = a.finish();

    std::uint64_t reg = 0;
    for (std::uint32_t word : code) {
        Instruction inst = decode(word);
        switch (inst.op) {
          case Opcode::kLui:
            reg = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int32_t>(
                    (inst.imm & 0xffff) << 16)));
            break;
          case Opcode::kOri:
            reg |= static_cast<std::uint32_t>(inst.imm) & 0xffff;
            break;
          case Opcode::kDsll:
            reg <<= inst.sa;
            break;
          default:
            FAIL() << "unexpected opcode in li64 expansion";
        }
    }
    EXPECT_EQ(reg, kValue);
}

TEST(Assembler, UnboundLabelPanics)
{
    Assembler a;
    auto label = a.newLabel();
    a.beq(zero, zero, label);
    a.nop();
    EXPECT_DEATH(a.finish(), "never bound");
}

TEST(Assembler, CapInstructionEmission)
{
    Assembler a;
    a.cincbase(1, 0, t0);
    a.csetlen(1, 1, t1);
    a.clc(2, 1, zero, 32);
    a.csc(2, 1, zero, -32);
    a.cld(t2, 1, t3, 8);
    std::vector<std::uint32_t> code = a.finish();
    EXPECT_EQ(decode(code[0]).op, Opcode::kCIncBase);
    EXPECT_EQ(decode(code[1]).op, Opcode::kCSetLen);
    EXPECT_EQ(decode(code[2]).op, Opcode::kCLc);
    EXPECT_EQ(decode(code[2]).imm, 32);
    EXPECT_EQ(decode(code[3]).op, Opcode::kCSc);
    EXPECT_EQ(decode(code[3]).imm, -32);
    EXPECT_EQ(decode(code[4]).op, Opcode::kCld);
    EXPECT_EQ(decode(code[4]).imm, 8);
}

TEST(Disasm, RendersRegisterNames)
{
    Assembler a;
    a.daddu(v0, a0, a1);
    std::vector<std::uint32_t> code = a.finish();
    EXPECT_EQ(disassemble(decode(code[0])), "daddu v0, a0, a1");
}

TEST(Disasm, RendersCapOps)
{
    Instruction inst = decode(encode::cop2(kC2IncBase, 1, 0, 8));
    EXPECT_EQ(disassemble(inst), "cincbase c1, c0, t0");
}

TEST(Disasm, NopSpecialCase)
{
    EXPECT_EQ(disassemble(decode(0)), "nop");
}

TEST(Instruction, DelaySlotClassification)
{
    EXPECT_TRUE(decode(encode::iType(kMajBeq, 0, 0, 0)).hasDelaySlot());
    EXPECT_TRUE(decode(encode::capBranch(true, 0, 0)).hasDelaySlot());
    EXPECT_TRUE(decode(encode::cop2(kC2Jr, 1, 0, 0)).hasDelaySlot());
    EXPECT_FALSE(
        decode(encode::alu(Opcode::kDaddu, 1, 2, 3)).hasDelaySlot());
}

TEST(Instruction, CapMemoryClassification)
{
    EXPECT_TRUE(decode(encode::capCapMem(true, 1, 2, 0, 0)).isCapMemory());
    EXPECT_TRUE(
        decode(encode::capMem(false, false, 3, 1, 2, 0, 0)).isCapMemory());
    EXPECT_FALSE(decode(encode::iType(kMajLd, 0, 1, 0)).isCapMemory());
}

/** Property: random register/immediate choices round-trip. */
TEST(Decoder, RandomizedRoundTrip)
{
    support::Xoshiro256 rng(11);
    for (int i = 0; i < 2000; ++i) {
        unsigned r1 = static_cast<unsigned>(rng.nextBelow(32));
        unsigned r2 = static_cast<unsigned>(rng.nextBelow(32));
        unsigned r3 = static_cast<unsigned>(rng.nextBelow(32));
        std::int32_t imm16 = static_cast<std::int32_t>(
            rng.nextInRange(0, 0xffff)) - 0x8000;

        Instruction inst = decode(encode::iType(kMajDaddiu, r1, r2,
                                                imm16));
        EXPECT_EQ(inst.rs, r1);
        EXPECT_EQ(inst.rt, r2);
        EXPECT_EQ(inst.imm, imm16);

        inst = decode(encode::cop2(kC2FromPtr, r1, r2, r3));
        EXPECT_EQ(inst.cd, r1);
        EXPECT_EQ(inst.cb, r2);
        EXPECT_EQ(inst.rt, r3);

        std::int32_t imm8 = static_cast<std::int32_t>(
                                rng.nextInRange(0, 0xff)) - 0x80;
        unsigned size = static_cast<unsigned>(rng.nextBelow(4));
        inst = decode(encode::capMem(true, false, size, r1, r2, r3,
                                     imm8 * (1 << size)));
        EXPECT_EQ(inst.rd, r1);
        EXPECT_EQ(inst.cb, r2);
        EXPECT_EQ(inst.rt, r3);
        EXPECT_EQ(inst.imm, imm8 * (1 << size));
    }
}

/** Disassembler totality: every valid encoding renders real text. */
TEST(Disasm, TotalOverValidEncodings)
{
    support::Xoshiro256 rng(55);
    unsigned rendered = 0;
    for (int i = 0; i < 50000; ++i) {
        std::uint32_t word = static_cast<std::uint32_t>(rng.next());
        Instruction inst = decode(word);
        std::string text = disassemble(inst);
        EXPECT_FALSE(text.empty());
        if (inst.op != Opcode::kInvalid) {
            ++rendered;
            EXPECT_EQ(text.find("invalid"), std::string::npos) << text;
        }
    }
    // A good chunk of random words decode (dense opcode map).
    EXPECT_GT(rendered, 1000u);
}

/** Every named opcode has a distinct mnemonic string. */
TEST(Isa, OpcodeNamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (int op = static_cast<int>(Opcode::kSll);
         op <= static_cast<int>(Opcode::kCReturn); ++op) {
        std::string name = opcodeName(static_cast<Opcode>(op));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate mnemonic " << name;
    }
}

} // namespace
} // namespace cheri::isa
